package selfishmining

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cancelAfterChecks is a context whose Err() flips to context.Canceled
// after n observations. The solver layers poll ctx.Err() at their
// deterministic checkpoints (value-iteration sweep boundaries and
// binary-search steps), so this fixture cancels an analysis at an exact,
// reproducible checkpoint — no timing, no flakes. Done() is inherited from
// the embedded Background context (nil channel), which is fine: the paths
// under test poll Err().
type cancelAfterChecks struct {
	context.Context
	n     int64
	calls atomic.Int64
}

func (c *cancelAfterChecks) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

// cancelFamilyCases is one small configuration per registered model
// family, sized so an analysis takes hundreds of checkpoints (plenty of
// room to cancel mid-flight) but finishes fast.
var cancelFamilyCases = []struct {
	name   string
	params AttackParams
}{
	{"fork", AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 3}},
	{"singletree", AttackParams{Model: "singletree", Adversary: 0.3, Switching: 0.5, Depth: 1, Forks: 3, MaxForkLen: 3}},
	{"nakamoto", AttackParams{Model: "nakamoto", Adversary: 0.4, Switching: 0, Depth: 1, Forks: 1, MaxForkLen: 8}},
}

// TestCancelAndRetryDeterminism is the determinism suite's cancellation
// property: cancel a solve at a random sweep boundary, re-run it to
// completion on the SAME service (so any cache poisoning would show), and
// the result must be bitwise identical to an uncancelled cold solve on a
// fresh service — for every model family.
func TestCancelAndRetryDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for _, tc := range cancelFamilyCases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := NewService(ServiceConfig{}).AnalyzeContext(context.Background(), tc.params, WithEpsilon(1e-3))
			if err != nil {
				t.Fatalf("cold reference: %v", err)
			}
			for trial := 0; trial < 3; trial++ {
				svc := NewService(ServiceConfig{})
				n := 1 + rng.Int63n(60)
				cctx := &cancelAfterChecks{Context: context.Background(), n: n}
				_, cerr := svc.AnalyzeContext(cctx, tc.params, WithEpsilon(1e-3))
				if cerr == nil {
					t.Fatalf("trial %d: solve survived cancellation after %d checkpoints", trial, n)
				}
				if !errors.Is(cerr, ErrCanceled) {
					t.Fatalf("trial %d: error %v does not match ErrCanceled", trial, cerr)
				}
				if !errors.Is(cerr, context.Canceled) {
					t.Fatalf("trial %d: error %v does not match context.Canceled", trial, cerr)
				}
				got, err := svc.AnalyzeContext(context.Background(), tc.params, WithEpsilon(1e-3))
				if err != nil {
					t.Fatalf("trial %d: retry after cancel: %v", trial, err)
				}
				equalAnalyses(t, tc.name, ref, got)
				st := svc.Stats()
				if st.Canceled != 1 {
					t.Errorf("trial %d: Canceled = %d, want 1", trial, st.Canceled)
				}
				if st.DeadlineExceeded != 0 {
					t.Errorf("trial %d: DeadlineExceeded = %d, want 0", trial, st.DeadlineExceeded)
				}
			}
		})
	}
}

// TestCancelErrorMetadata: an interrupted analysis reports the certified
// partial bracket, and the bracket is a genuine enclosure of the final
// answer.
func TestCancelErrorMetadata(t *testing.T) {
	params := cancelFamilyCases[0].params
	ref, err := Analyze(params, WithEpsilon(1e-3), WithBoundOnly())
	if err != nil {
		t.Fatal(err)
	}
	// Enough checkpoints to get into the first solves, not enough to
	// finish (the determinism test shows this model needs far more).
	cctx := &cancelAfterChecks{Context: context.Background(), n: 50}
	_, cerr := AnalyzeContext(cctx, params, WithEpsilon(1e-3), WithBoundOnly())
	if cerr == nil {
		t.Fatal("solve finished before 50 checkpoints; cancellation never engaged")
	}
	var ce *CancelError
	if !errors.As(cerr, &ce) {
		t.Fatalf("error %T is not a *CancelError: %v", cerr, cerr)
	}
	if ce.BetaLow > ref.ERRev || ce.BetaUp < ref.ERRev {
		t.Errorf("partial bracket [%v, %v] does not enclose the final ERRev %v", ce.BetaLow, ce.BetaUp, ref.ERRev)
	}
	if ce.BetaLow < 0 || ce.BetaUp > 1 || ce.BetaLow > ce.BetaUp {
		t.Errorf("malformed partial bracket [%v, %v]", ce.BetaLow, ce.BetaUp)
	}
	if ce.Sweeps == 0 {
		t.Error("CancelError.Sweeps = 0 for a mid-solve cancellation")
	}
}

// TestDeadlineClassification: a deadline interruption matches both
// ErrCanceled and context.DeadlineExceeded (not context.Canceled), and is
// tallied on the DeadlineExceeded counter.
func TestDeadlineClassification(t *testing.T) {
	svc := NewService(ServiceConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // deadline has certainly passed
	_, err := svc.AnalyzeContext(ctx, cancelFamilyCases[0].params, WithEpsilon(1e-3))
	if err == nil {
		t.Fatal("expired deadline produced a result")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v must match ErrCanceled and context.DeadlineExceeded", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deadline error %v must not match context.Canceled", err)
	}
	st := svc.Stats()
	if st.DeadlineExceeded != 1 || st.Canceled != 0 {
		t.Errorf("counters (canceled=%d, deadline=%d), want (0, 1)", st.Canceled, st.DeadlineExceeded)
	}
	if st.Solves != 0 {
		t.Errorf("Solves = %d for a request dead on arrival, want 0", st.Solves)
	}
}

// TestCoalescedFollowerCancel is the satellite regression test: a
// coalesced follower that cancels its wait must return promptly with
// ErrCanceled while the leader's solve finishes undisturbed — no solve
// counters incremented by the follower, no result-cache or warm-start
// entries evicted or poisoned.
func TestCoalescedFollowerCancel(t *testing.T) {
	svc := NewService(ServiceConfig{})
	params := AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 3}

	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	leaderDone := make(chan *Analysis, 1)
	go func() {
		// The leader parks inside its solve on the first progress call,
		// guaranteeing the follower coalesces against a live in-flight
		// entry (no timing races).
		res, err := svc.AnalyzeContext(context.Background(), params,
			WithEpsilon(1e-3),
			WithProgress(func(lo, up float64, iter int) {
				once.Do(func() { close(started) })
				<-gate
			}))
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		leaderDone <- res
	}()
	<-started

	fctx, fcancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		// Identical request and options (the progress callback is not part
		// of the key): this coalesces behind the parked leader.
		_, err := svc.AnalyzeContext(fctx, params, WithEpsilon(1e-3))
		followerErr <- err
	}()
	// Let the follower reach the singleflight wait, then cancel it. The
	// sleep only makes the intended interleaving overwhelmingly likely;
	// the assertions below hold in either interleaving.
	time.Sleep(50 * time.Millisecond)
	fcancel()
	select {
	case err := <-followerErr:
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("follower error %v, want ErrCanceled/context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower did not unblock while the leader was parked")
	}
	if n := svc.Stats().Solves; n != 1 {
		t.Errorf("Solves = %d after follower cancel, want 1 (leader only)", n)
	}

	close(gate) // release the leader
	var leaderRes *Analysis
	select {
	case leaderRes = <-leaderDone:
	case <-time.After(30 * time.Second):
		t.Fatal("leader did not finish")
	}
	if leaderRes == nil {
		t.Fatal("leader returned no result")
	}

	// The leader's result must have been cached untainted, and a re-run
	// must replay it bitwise.
	res, info, err := svc.AnalyzeDetailedContext(context.Background(), params, WithEpsilon(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Error("leader's result missing from the cache after follower cancel")
	}
	if math.Float64bits(res.ERRev) != math.Float64bits(leaderRes.ERRev) {
		t.Errorf("cached ERRev %v != leader's %v", res.ERRev, leaderRes.ERRev)
	}
	st := svc.Stats()
	if st.Solves != 1 {
		t.Errorf("Solves = %d after replay, want 1", st.Solves)
	}
	if st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1 (the follower)", st.Canceled)
	}
	if st.WarmPuts == 0 {
		t.Error("leader's warm-start vector was not retained")
	}
}

// TestQueuedRequestCancel: a request parked on the MaxConcurrent semaphore
// unblocks immediately on its own cancellation without ever counting as a
// solve or touching the slot.
func TestQueuedRequestCancel(t *testing.T) {
	svc := NewService(ServiceConfig{MaxConcurrent: 1})
	occupant := AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 3}
	queued := AttackParams{Adversary: 0.25, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 3}

	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	occupantDone := make(chan error, 1)
	go func() {
		_, err := svc.AnalyzeContext(context.Background(), occupant,
			WithEpsilon(1e-3),
			WithProgress(func(lo, up float64, iter int) {
				once.Do(func() { close(started) })
				<-gate
			}))
		occupantDone <- err
	}()
	<-started // the only slot is now held, inside a parked solve

	qctx, qcancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := svc.AnalyzeContext(qctx, queued, WithEpsilon(1e-3))
		queuedErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the semaphore wait
	qcancel()
	select {
	case err := <-queuedErr:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("queued request error %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled queued request did not unblock")
	}
	if n := svc.Stats().Solves; n != 1 {
		t.Errorf("Solves = %d, want 1 (the occupant; the queued request never started)", n)
	}

	close(gate)
	if err := <-occupantDone; err != nil {
		t.Fatalf("occupant: %v", err)
	}
	// The canceled wait must not have corrupted the semaphore: the queued
	// request runs fine when retried.
	if _, err := svc.AnalyzeContext(context.Background(), queued, WithEpsilon(1e-3)); err != nil {
		t.Fatalf("retry of canceled queued request: %v", err)
	}
}

// TestSweepStreamingDeliversEveryPoint: OnPoint receives one callback per
// attack-curve grid point (including the p=0 shortcut), each bitwise equal
// to the final figure's value, and streaming leaves the figure itself
// untouched.
func TestSweepStreamingDeliversEveryPoint(t *testing.T) {
	opts := SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.2, 0.3},
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
		Workers:    4,
	}
	var mu sync.Mutex
	streamed := map[SweepPoint]bool{}
	opts.OnPoint = func(pt SweepPoint) {
		mu.Lock()
		defer mu.Unlock()
		key := SweepPoint{Config: pt.Config, Series: pt.Series, PIndex: pt.PIndex, P: pt.P, Gamma: pt.Gamma, ERRev: pt.ERRev}
		if streamed[key] {
			t.Errorf("point %+v streamed twice", pt)
		}
		streamed[key] = true
	}
	fig, err := SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(opts.Configs) * len(opts.PGrid)
	if len(streamed) != want {
		t.Fatalf("streamed %d points, want %d", len(streamed), want)
	}
	// Every streamed value must be bitwise the figure's value, under the
	// figure's own series name. The attack series follow the two baseline
	// series (honest, single-tree).
	for ci, cfg := range opts.Configs {
		series := fig.Series[2+ci]
		for pi, p := range opts.PGrid {
			key := SweepPoint{Config: cfg, Series: series.Name, PIndex: pi, P: p, Gamma: opts.Gamma, ERRev: series.Values[pi]}
			if !streamed[key] {
				t.Errorf("series %q point %d (p=%v, errev=%v) missing from the stream", series.Name, pi, p, series.Values[pi])
			}
		}
	}
}

// TestSweepCancelAndRetry: a canceled sweep returns ErrCanceled, and
// re-running it on the same service (reusing whatever points completed)
// still produces the bitwise-identical panel.
func TestSweepCancelAndRetry(t *testing.T) {
	opts := SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.2, 0.3},
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
		Workers:    1, // serial draw order makes the cancellation point land mid-panel
	}
	ref, err := SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ServiceConfig{})
	cctx := &cancelAfterChecks{Context: context.Background(), n: 300}
	if _, cerr := svc.SweepContext(cctx, opts); cerr == nil {
		t.Skip("sweep finished before 300 checkpoints; grid too small for this assertion")
	} else if !errors.Is(cerr, ErrCanceled) {
		t.Fatalf("sweep cancel error %v, want ErrCanceled", cerr)
	}
	if n := svc.Stats().Canceled; n != 1 {
		t.Errorf("Canceled = %d after one canceled sweep, want 1", n)
	}
	got, err := svc.SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatalf("retry after canceled sweep: %v", err)
	}
	for i, s := range ref.Series {
		for j := range s.Values {
			if math.Float64bits(got.Series[i].Values[j]) != math.Float64bits(s.Values[j]) {
				t.Errorf("series %q point %d: retry %v != reference %v", s.Name, j, got.Series[i].Values[j], s.Values[j])
			}
		}
	}
}

// TestProgressCallback: WithProgress reports every binary-search step with
// a monotonically narrowing bracket ending at the result's bracket.
func TestProgressCallback(t *testing.T) {
	params := cancelFamilyCases[0].params
	type step struct {
		lo, up float64
		iter   int
	}
	var steps []step
	res, err := AnalyzeContext(context.Background(), params,
		WithEpsilon(1e-3), WithBoundOnly(),
		WithProgress(func(lo, up float64, iter int) {
			steps = append(steps, step{lo, up, iter})
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != res.Iterations {
		t.Fatalf("progress fired %d times, result reports %d iterations", len(steps), res.Iterations)
	}
	prevWidth := 1.0
	for i, st := range steps {
		if st.iter != i+1 {
			t.Errorf("step %d reported iteration %d", i, st.iter)
		}
		if w := st.up - st.lo; w > prevWidth {
			t.Errorf("step %d: bracket widened to %v from %v", i, w, prevWidth)
		} else {
			prevWidth = st.up - st.lo
		}
	}
	last := steps[len(steps)-1]
	if math.Float64bits(last.lo) != math.Float64bits(res.ERRev) || math.Float64bits(last.up) != math.Float64bits(res.ERRevUpper) {
		t.Errorf("final progress bracket [%v, %v] != result bracket [%v, %v]", last.lo, last.up, res.ERRev, res.ERRevUpper)
	}
}

// TestDeprecatedWrappersBitwise: the context-free v1 names must stay exact
// aliases of the v2 entry points under context.Background().
func TestDeprecatedWrappersBitwise(t *testing.T) {
	params := cancelFamilyCases[0].params
	v2, err := AnalyzeContext(context.Background(), params, WithEpsilon(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Analyze(params, WithEpsilon(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	equalAnalyses(t, "Analyze vs AnalyzeContext", v1, v2)
}

// TestFollowerSurvivesLeaderCancel: a follower coalesced behind a leader
// whose OWN context dies must not inherit that cancellation — its context
// is live, so it retries as a fresh leader and gets a real result. (The
// review scenario: client A sets a 1ms deadline, client B none; B must be
// solved, not answered 504.)
func TestFollowerSurvivesLeaderCancel(t *testing.T) {
	svc := NewService(ServiceConfig{})
	params := AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 3}
	ref, err := NewService(ServiceConfig{}).AnalyzeContext(context.Background(), params, WithEpsilon(1e-3))
	if err != nil {
		t.Fatal(err)
	}

	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	leaderErr := make(chan error, 1)
	go func() {
		// The leader parks mid-solve on its first progress call so the
		// follower can coalesce deterministically.
		_, err := svc.AnalyzeContext(lctx, params,
			WithEpsilon(1e-3),
			WithProgress(func(lo, up float64, iter int) {
				once.Do(func() { close(started) })
				<-gate
			}))
		leaderErr <- err
	}()
	<-started

	type res struct {
		a   *Analysis
		err error
	}
	followerDone := make(chan res, 1)
	go func() {
		a, err := svc.AnalyzeContext(context.Background(), params, WithEpsilon(1e-3))
		followerDone <- res{a, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the follower coalesce
	lcancel()                         // kill the LEADER's context only
	close(gate)                       // leader resumes, observes its cancel at the next checkpoint

	select {
	case err := <-leaderErr:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("leader err = %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader never returned")
	}
	select {
	case r := <-followerDone:
		if r.err != nil {
			t.Fatalf("follower with a live context inherited the leader's fate: %v", r.err)
		}
		equalAnalyses(t, "follower-after-leader-cancel", ref, r.a)
	case <-time.After(30 * time.Second):
		t.Fatal("follower never completed")
	}
	st := svc.Stats()
	if st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1 (the leader only)", st.Canceled)
	}
	if st.Solves != 2 {
		t.Errorf("Solves = %d, want 2 (canceled leader + follower's retry)", st.Solves)
	}
}
