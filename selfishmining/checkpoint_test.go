package selfishmining

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestResumeDeterminismPerFamily is the resume half of the determinism
// suite: for every registered model family, cancel an analysis at a
// binary-search checkpoint, resume it from the persisted snapshot on a
// FRESH service (no caches to hide behind), and the result must be bitwise
// identical — ERRev, bracket, counters, and the full strategy — to an
// uninterrupted cold solve.
func TestResumeDeterminismPerFamily(t *testing.T) {
	for _, tc := range cancelFamilyCases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := NewService(ServiceConfig{}).AnalyzeContext(context.Background(), tc.params, WithEpsilon(1e-3))
			if err != nil {
				t.Fatalf("cold reference: %v", err)
			}
			if ref.Iterations < 3 {
				t.Fatalf("reference finished in %d steps; too few to cancel mid-search", ref.Iterations)
			}
			// Cancel cooperatively after the 2nd binary-search step: the
			// progress hook flips the context, and the search observes it at
			// the next step boundary — a deterministic checkpoint, no timing.
			for stop := 1; stop < ref.Iterations; stop += max(ref.Iterations/3, 1) {
				ctx, cancel := context.WithCancel(context.Background())
				var last *Checkpoint
				_, cerr := NewService(ServiceConfig{}).AnalyzeContext(ctx, tc.params,
					WithEpsilon(1e-3),
					WithProgress(func(lo, up float64, iter int) {
						if iter >= stop {
							cancel()
						}
					}),
					WithCheckpoints(func(ck Checkpoint) { last = &ck }),
				)
				cancel()
				if cerr == nil {
					t.Fatalf("stop=%d: solve survived cancellation", stop)
				}
				if !errors.Is(cerr, ErrCanceled) {
					t.Fatalf("stop=%d: error %v does not match ErrCanceled", stop, cerr)
				}
				if last == nil {
					t.Fatalf("stop=%d: no checkpoint emitted before cancellation", stop)
				}
				if last.Iterations < stop {
					t.Fatalf("stop=%d: last checkpoint is from step %d", stop, last.Iterations)
				}
				got, err := NewService(ServiceConfig{}).AnalyzeContext(context.Background(), tc.params,
					WithEpsilon(1e-3), WithResume(last))
				if err != nil {
					t.Fatalf("stop=%d: resume: %v", stop, err)
				}
				equalAnalyses(t, tc.name, ref, got)
			}
		})
	}
}

// TestResumeSharesResultCache: a resumed solve is bitwise identical to the
// cold one, so it lands in (and is served from) the same cache entry.
func TestResumeSharesResultCache(t *testing.T) {
	params := cancelFamilyCases[0].params
	svc := NewService(ServiceConfig{})
	var cks []Checkpoint
	ref, err := svc.AnalyzeContext(context.Background(), params, WithEpsilon(1e-3),
		WithCheckpoints(func(ck Checkpoint) { cks = append(cks, ck) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	// The resume request must be answered from the result cache — no new
	// solve — because its result could not differ.
	before := svc.Stats().Solves
	got, info, err := svc.AnalyzeDetailedContext(context.Background(), params, WithEpsilon(1e-3),
		WithResume(&cks[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Error("resumed request with a cached twin was not served from cache")
	}
	if svc.Stats().Solves != before {
		t.Error("resumed request re-solved a cached analysis")
	}
	equalAnalyses(t, "cached resume", ref, got)
}

// TestCheckpointsMatchProgress: checkpoints carry the same bracket the
// progress hook reports, and their value vectors have the model's size.
func TestCheckpointsMatchProgress(t *testing.T) {
	params := cancelFamilyCases[0].params
	type step struct{ lo, up float64 }
	var progress []step
	var cks []Checkpoint
	res, err := Analyze(params, WithEpsilon(1e-3),
		WithProgress(func(lo, up float64, iter int) { progress = append(progress, step{lo, up}) }),
		WithCheckpoints(func(ck Checkpoint) { cks = append(cks, ck) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != len(progress) || len(cks) != res.Iterations {
		t.Fatalf("%d checkpoints, %d progress calls, %d iterations", len(cks), len(progress), res.Iterations)
	}
	for i, ck := range cks {
		if math.Float64bits(ck.BetaLow) != math.Float64bits(progress[i].lo) ||
			math.Float64bits(ck.BetaUp) != math.Float64bits(progress[i].up) {
			t.Errorf("step %d: checkpoint bracket [%v, %v] != progress [%v, %v]",
				i+1, ck.BetaLow, ck.BetaUp, progress[i].lo, progress[i].up)
		}
		if ck.Iterations != i+1 {
			t.Errorf("checkpoint %d has Iterations %d", i, ck.Iterations)
		}
		if len(ck.Values) != res.NumStates {
			t.Errorf("checkpoint %d carries %d values for a %d-state model", i, len(ck.Values), res.NumStates)
		}
	}
}
