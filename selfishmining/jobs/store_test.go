package jobs

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/selfishmining"
)

func TestCheckpointRecordRoundTripBitwise(t *testing.T) {
	ck := &selfishmining.Checkpoint{
		BetaLow: 0.25, BetaUp: 0.375, Iterations: 7, Sweeps: 1234,
		Values: []float64{0, -0.0, 1.5, math.Pi, -2.75e-17, math.Inf(1), math.MaxFloat64},
	}
	got, err := encodeCheckpoint(ck).decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.BetaLow != ck.BetaLow || got.BetaUp != ck.BetaUp ||
		got.Iterations != ck.Iterations || got.Sweeps != ck.Sweeps {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Values) != len(ck.Values) {
		t.Fatalf("%d values, want %d", len(got.Values), len(ck.Values))
	}
	for i := range ck.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(ck.Values[i]) {
			t.Errorf("value %d: %x != %x", i, math.Float64bits(got.Values[i]), math.Float64bits(ck.Values[i]))
		}
	}
	// Empty and nil round-trip too.
	if got, err := encodeCheckpoint(&selfishmining.Checkpoint{BetaUp: 1}).decode(); err != nil || got.Values != nil {
		t.Errorf("empty checkpoint: %+v, %v", got, err)
	}
	if encodeCheckpoint(nil) != nil {
		t.Error("nil checkpoint encodes to non-nil")
	}
}

func TestCheckpointRecordRejectsCorruptPayloads(t *testing.T) {
	cases := []*CheckpointRecord{
		{NumValues: 2, ValuesB64: "not base64!!"},
		{NumValues: 3, ValuesB64: "AAAA"}, // length mismatch
	}
	for i, rec := range cases {
		if _, err := rec.decode(); err == nil {
			t.Errorf("case %d: corrupt checkpoint decoded", i)
		}
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().Round(0)
	fin := now.Add(time.Second)
	rec := &Record{
		Status: Status{
			ID: "jabc123", Kind: KindAnalyze, State: StateCanceled, Priority: 3,
			Analyze:  &AnalyzeSpec{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, Len: 3, Epsilon: 1e-3},
			Progress: Progress{BetaLow: 0.2, BetaUp: 0.3, Iterations: 4, Sweeps: 99},
			Error:    "canceled", ErrorCode: "canceled", HasCheckpoint: true, Resumes: 1,
			SubmittedAt: now, FinishedAt: &fin,
		},
		Checkpoint: encodeCheckpoint(&selfishmining.Checkpoint{
			BetaLow: 0.2, BetaUp: 0.3, Iterations: 4, Sweeps: 99, Values: []float64{1, 2, 3},
		}),
	}
	if err := store.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Get("jabc123")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got.ID != rec.ID || got.State != rec.State || got.Priority != 3 ||
		got.Analyze == nil || got.Analyze.P != 0.3 || got.Error != "canceled" || got.Resumes != 1 {
		t.Errorf("round trip lost fields: %+v", got.Status)
	}
	if !got.SubmittedAt.Equal(now) || got.FinishedAt == nil || !got.FinishedAt.Equal(fin) {
		t.Errorf("timestamps: %v / %v", got.SubmittedAt, got.FinishedAt)
	}
	ck, err := got.Checkpoint.decode()
	if err != nil || len(ck.Values) != 3 || ck.Values[2] != 3 {
		t.Errorf("checkpoint: %+v, %v", ck, err)
	}
	recs, err := store.List()
	if err != nil || len(recs) != 1 {
		t.Fatalf("List: %d records, err %v", len(recs), err)
	}
	if err := store.Delete("jabc123"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := store.Get("jabc123"); ok {
		t.Error("record survived Delete")
	}
	if err := store.Delete("jabc123"); err != nil {
		t.Errorf("double delete: %v", err)
	}
	// Updating in place replaces the snapshot.
	if err := store.Put(rec); err != nil {
		t.Fatal(err)
	}
	rec2 := *rec
	rec2.State = StateDone
	if err := store.Put(&rec2); err != nil {
		t.Fatal(err)
	}
	got, _, _ = store.Get("jabc123")
	if got.State != StateDone {
		t.Errorf("upsert did not replace: %s", got.State)
	}
}

func TestDiskStoreRejectsHostileIDs(t *testing.T) {
	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", `a\b`, "x..y"} {
		if err := store.Put(&Record{Status: Status{ID: id, Kind: KindAnalyze}}); err == nil {
			t.Errorf("Put accepted id %q", id)
		}
		if _, _, err := store.Get(id); err == nil {
			t.Errorf("Get accepted id %q", id)
		}
	}
}

func TestDiskStoreCorruptFileRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := &Record{Status: Status{ID: "jgood", Kind: KindAnalyze, State: StateDone, SubmittedAt: time.Now()}}
	if err := store.Put(good); err != nil {
		t.Fatal(err)
	}
	// Torn write, garbage, and a structurally empty record.
	if err := os.WriteFile(filepath.Join(dir, "jtorn.json"), []byte(`{"id":"jtorn","ki`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jjunk.json"), []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jempty.json"), []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := store.List()
	if err != nil {
		t.Fatalf("List with corrupt files: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "jgood" {
		t.Fatalf("List returned %d records", len(recs))
	}
	if n := store.CorruptFiles(); n != 3 {
		t.Errorf("CorruptFiles = %d, want 3", n)
	}
	// Quarantined, not deleted: the bytes survive for post-mortems, and a
	// re-scan does not recount them.
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quarantined) != 3 {
		t.Errorf("%d quarantined files, want 3", len(quarantined))
	}
	if _, err := store.List(); err != nil {
		t.Fatal(err)
	}
	if n := store.CorruptFiles(); n != 3 {
		t.Errorf("re-scan recounted corrupt files: %d", n)
	}
	// A manager still starts over the damaged directory.
	m, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store})
	if err != nil {
		t.Fatalf("New over damaged store: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	}()
	if _, err := m.Get("jgood"); err != nil {
		t.Errorf("surviving record not recovered: %v", err)
	}
}

// TestRestartResumeBitwise is the acceptance pin for durable resume: a job
// canceled mid-search in one manager, with its checkpoint persisted to
// disk, resumes in a NEW manager over the same directory (a process
// restart) and finishes bitwise identical to an uninterrupted solve.
func TestRestartResumeBitwise(t *testing.T) {
	for _, tc := range familySpecs {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, tc.spec)
			dir := t.TempDir()
			store1, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			m1, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store1})
			if err != nil {
				t.Fatal(err)
			}
			m1.progressGate = func(id string, iter int) {
				if iter == 2 {
					m1.Cancel(id)
				}
			}
			st, err := m1.Submit(Request{Kind: KindAnalyze, Analyze: &tc.spec})
			if err != nil {
				t.Fatal(err)
			}
			canceled := waitState(t, m1, st.ID, StateCanceled)
			if !canceled.HasCheckpoint {
				t.Fatal("no checkpoint persisted on cancel")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := m1.Close(ctx); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// "Restart": a fresh manager, fresh service, same directory.
			store2, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store2})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				m2.Close(ctx)
			}()
			rec, err := m2.Get(st.ID)
			if err != nil {
				t.Fatalf("job lost across restart: %v", err)
			}
			if rec.State != StateCanceled || !rec.HasCheckpoint {
				t.Fatalf("recovered job %s, checkpoint %v", rec.State, rec.HasCheckpoint)
			}
			if _, err := m2.Resume(st.ID); err != nil {
				t.Fatalf("Resume after restart: %v", err)
			}
			done := waitState(t, m2, st.ID, StateDone)
			equalJobResults(t, tc.name, want, done.Result)
		})
	}
}

// TestShutdownCheckpointsRunningJobs: Close interrupts a running job at
// its next deterministic checkpoint and re-queues it (state "queued",
// interrupted, checkpoint persisted) instead of discarding it; the next
// manager over the same store picks it up automatically and completes it
// bitwise identical to an uninterrupted solve.
func TestShutdownCheckpointsRunningJobs(t *testing.T) {
	spec := familySpecs[0].spec
	want := reference(t, spec)
	dir := t.TempDir()
	store1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One worker: the ErrClosed-probe submissions below must stay queued —
	// on a second worker a probe could be mid-solve when Close lands and
	// be checkpoint-interrupted too, breaking the Interrupted accounting
	// this test pins to exactly the gated job.
	m1, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan struct{})
	release := make(chan struct{})
	var once bool
	m1.progressGate = func(id string, iter int) {
		if iter == 2 && !once {
			once = true
			close(reached)
			<-release
		}
	}
	st, err := m1.Submit(Request{Kind: KindAnalyze, Analyze: &spec})
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	// Initiate shutdown; once Submit observes ErrClosed the in-flight
	// contexts are already canceled (Close cancels them under the lock),
	// so releasing the gate lets the solve observe the interruption.
	closeErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		closeErr <- m1.Close(ctx)
	}()
	for {
		if _, err := m1.Submit(Request{Kind: KindAnalyze, Analyze: &spec}); errors.Is(err, ErrClosed) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, ok, err := store1.Get(st.ID)
	if err != nil || !ok {
		t.Fatalf("record missing after shutdown: ok=%v err=%v", ok, err)
	}
	if rec.State != StateQueued || !rec.Interrupted || rec.Checkpoint == nil {
		t.Fatalf("shutdown persisted state=%s interrupted=%v checkpoint=%v",
			rec.State, rec.Interrupted, rec.Checkpoint != nil)
	}

	store2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m2.Close(ctx)
	}()
	// No Resume needed: queued jobs re-enter the queue on recovery.
	done := waitState(t, m2, st.ID, StateDone)
	if !done.Interrupted {
		t.Error("Interrupted flag lost (it should record the restart)")
	}
	equalJobResults(t, "shutdown-resume", want, done.Result)
	if got := m2.Stats().Interrupted; got != 1 {
		t.Errorf("Stats.Interrupted = %d, want 1", got)
	}
}

// TestManagerRecoversFinishedJobs: done jobs (and their results) survive a
// restart and stay queryable.
func TestManagerRecoversFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m1, st.ID, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m2.Close(ctx)
	}()
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("recovered state %s", got.State)
	}
	equalJobResults(t, "recovered", done.Result, got.Result)
	// Event rings are process-local, but sequence numbering continues from
	// the persisted high-water mark: a fresh stream replays from a leading
	// snapshot, and a pre-restart cursor (numerically below the recovered
	// mark) must NOT alias into the new numbering — it is reset with a
	// status snapshot too, never a silent mid-stream suffix.
	evs, err := m2.Events(context.Background(), st.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Type != "status" {
		t.Fatalf("recovered event stream: %+v", evs)
	}
	if head := evs[len(evs)-1].Seq; head < 2 {
		t.Fatalf("recovered events restart numbering at %d; expected continuation past the old process's events", head)
	}
	stale, err := m2.Events(context.Background(), st.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) == 0 || stale[0].Type != "status" {
		t.Fatalf("stale pre-restart cursor was not reset with a status snapshot: %+v", stale)
	}
	if !strings.HasPrefix(st.ID, "j") {
		t.Errorf("unexpected id shape %q", st.ID)
	}
}
