package jobs

import (
	"errors"
	"time"
)

// Lease errors. Acquire/Renew/Release/PutLeased wrap these with detail;
// match with errors.Is.
var (
	// ErrLeaseHeld: the job is leased by another replica whose lease has
	// not expired (Acquire), or an unleased Put would clobber a live
	// lease holder's writes (Put on a LeaseStore).
	ErrLeaseHeld = errors.New("jobs: lease held by another replica")
	// ErrLeaseLost: the presented lease no longer matches the store's
	// lease state — the job was stolen (token advanced) or released.
	ErrLeaseLost = errors.New("jobs: lease lost")
	// ErrStaleToken: a fenced write presented a token below the store's
	// high-water mark. The writer must stop touching the job.
	ErrStaleToken = errors.New("jobs: stale fencing token")
)

// Lease is one replica's claim on one job, carrying a monotonic fencing
// token. Tokens are the safety mechanism: every Acquire — including a
// steal of an expired lease — bumps the job's token above every token
// ever issued for it, and fenced writes (PutLeased) are rejected unless
// they present the current token. Expiry is only a liveness mechanism:
// it decides when other replicas may steal, and is judged against local
// clocks, so clock skew can delay or hasten a steal but can never let
// two writers both pass the fence.
type Lease struct {
	JobID   string    `json:"job"`
	Owner   string    `json:"owner"`
	Token   uint64    `json:"token"`
	Expires time.Time `json:"expires"`
}

// Expired reports whether the lease's TTL has lapsed at now. An expired
// lease is stealable, but remains valid for fenced writes until someone
// actually steals it (bumping the token).
func (l Lease) Expired(now time.Time) bool { return now.After(l.Expires) }

// LeaseStore is a Store shared by multiple Manager replicas. It adds
// lease claims with monotonic fencing tokens and a replica presence
// registry. On a LeaseStore, plain Put is a conditional write: it is
// rejected with ErrLeaseHeld while another replica holds a live,
// unexpired lease on the record's job (submitters and recoverers write
// unleased; running jobs write through PutLeased).
type LeaseStore interface {
	Store
	// Acquire claims the job for owner with the given TTL, bumping the
	// job's fencing token above every previously issued token. It fails
	// with ErrLeaseHeld while another owner's unexpired lease is live;
	// an expired lease is stolen by acquiring over it.
	Acquire(id, owner string, ttl time.Duration) (Lease, error)
	// Renew extends the lease's expiry, keeping its token. It fails with
	// ErrLeaseLost when the lease was stolen or released. Renewing an
	// expired-but-unstolen lease succeeds: expiry is liveness, not
	// safety.
	Renew(l Lease, ttl time.Duration) (Lease, error)
	// Release ends the lease, letting others acquire (with a higher
	// token) immediately. It fails with ErrLeaseLost when the lease was
	// already stolen or released.
	Release(l Lease) error
	// PutLeased is the fenced record write: it stores rec only while l
	// is the job's current lease, and fails with ErrStaleToken once the
	// token has advanced (or the lease was released).
	PutLeased(rec *Record, l Lease) error
	// Leases returns the live lease per job id, including expired ones
	// that have not been stolen or released (callers judge expiry).
	Leases() (map[string]Lease, error)
	// PublishReplica upserts this replica's presence record for
	// cross-replica visibility (stats endpoints).
	PublishReplica(info ReplicaInfo) error
	// Replicas lists every published replica presence record.
	Replicas() ([]ReplicaInfo, error)
}

// LeaseStats counts one replica's lease-protocol events.
type LeaseStats struct {
	// Acquired counts successful lease acquisitions (including steals).
	Acquired uint64 `json:"acquired"`
	// Renewed counts successful heartbeat renewals.
	Renewed uint64 `json:"renewed"`
	// Released counts leases released after the job finished locally.
	Released uint64 `json:"released"`
	// Stolen counts expired foreign leases this replica converted into
	// local queue entries (the subsequent Acquire fences the old owner).
	Stolen uint64 `json:"stolen"`
	// Lost counts leases this replica lost mid-run (failed renewal or a
	// rejected fenced write); the running job is canceled locally.
	Lost uint64 `json:"lost"`
	// StaleWrites counts fenced writes rejected with ErrStaleToken.
	StaleWrites uint64 `json:"stale_writes"`
}

// ReplicaInfo is one replica's published presence record: identity plus
// a heartbeat-refreshed snapshot of its load and lease counters.
type ReplicaInfo struct {
	Replica    string     `json:"replica"`
	PID        int        `json:"pid,omitempty"`
	StartedAt  time.Time  `json:"started_at"`
	UpdatedAt  time.Time  `json:"updated_at"`
	Running    int        `json:"running"`
	QueueDepth int        `json:"queue_depth"`
	Leases     LeaseStats `json:"leases"`
}
