package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DirStore is the zero-dependency LeaseStore over a shared directory:
// multiple server replicas (processes, containers, NFS mounts) point at
// one directory and coordinate through files alone. Layout:
//
//	<dir>/jobs/<id>.json   one atomic JSON snapshot per job (a DiskStore)
//	<dir>/leases.log       append-only JSON-lines lease log, compacted
//	<dir>/lock             short-lived mutual-exclusion lock file
//	<dir>/replicas/<r>.json  per-replica presence records
//
// Crash safety rests on three primitives only: O_EXCL-equivalent lock
// creation via hard links (exactly one winner), atomic temp-file +
// rename for every snapshot and for log compaction (readers never see a
// torn file), and an append-only lease log whose replay reconstructs
// the token high-water mark per job — preserved across release and
// compaction, so a writer that slept through a steal is fenced no
// matter how late it wakes. The lock file itself carries an expiry:
// a crashed holder's lock is broken by an atomic rename, which at most
// one breaker wins.
type DirStore struct {
	dir      string
	recs     *DiskStore
	lockPath string
	logPath  string
	repDir   string

	// self is this process's unique lock-owner token; staleSeq
	// uniquifies stale-lock rename targets.
	self     string
	staleSeq atomic.Uint64

	// mu serializes this process's lease-log critical sections (the
	// lock file serializes across processes).
	mu sync.Mutex

	// lockTTL is how long a held dir lock is honored before other
	// processes may break it as crashed; lockWait bounds how long an
	// operation spins for the lock.
	lockTTL  time.Duration
	lockWait time.Duration
	// maxLog is the lease-log line count that triggers compaction.
	maxLog int
}

const (
	dirLockTTL  = 5 * time.Second
	dirLockWait = 15 * time.Second
	dirMaxLog   = 4096
)

// NewDirStore opens (creating if needed) the shared directory.
func NewDirStore(dir string) (*DirStore, error) {
	recs, err := NewDiskStore(filepath.Join(dir, "jobs"))
	if err != nil {
		return nil, err
	}
	repDir := filepath.Join(dir, "replicas")
	if err := os.MkdirAll(repDir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: dir store: %w", err)
	}
	host, _ := os.Hostname()
	return &DirStore{
		dir:      dir,
		recs:     recs,
		lockPath: filepath.Join(dir, "lock"),
		logPath:  filepath.Join(dir, "leases.log"),
		repDir:   repDir,
		self:     fmt.Sprintf("%s:%d:%d", host, os.Getpid(), time.Now().UnixNano()),
		lockTTL:  dirLockTTL,
		lockWait: dirLockWait,
		maxLog:   dirMaxLog,
	}, nil
}

// Dir returns the shared directory.
func (s *DirStore) Dir() string { return s.dir }

// CorruptFiles counts job snapshots quarantined because they failed to
// parse (since this store was opened).
func (s *DirStore) CorruptFiles() uint64 { return s.recs.CorruptFiles() }

// Healthy reports whether the shared directory layout is still reachable:
// the job-snapshot directory and the replica registry must both exist.
// Implements HealthChecker for Manager.Ready.
func (s *DirStore) Healthy() error {
	if err := s.recs.Healthy(); err != nil {
		return err
	}
	if _, err := os.Stat(s.repDir); err != nil {
		return fmt.Errorf("jobs: dir store: %w", err)
	}
	return nil
}

// --- directory lock ------------------------------------------------------

// dirLock is the lock file's content: who holds it and until when other
// processes must honor it.
type dirLock struct {
	Owner   string `json:"owner"`
	Expires int64  `json:"expires"` // unix nanoseconds
}

// lock takes the cross-process directory lock, returning the unlock
// func. Lock creation is an atomic hard link (EEXIST = held). A lock
// whose expiry has passed — its holder crashed mid-operation — is
// broken by renaming it aside, which exactly one breaker wins.
func (s *DirStore) lock() (func(), error) {
	content, err := json.Marshal(dirLock{Owner: s.self, Expires: time.Now().Add(s.lockTTL).UnixNano()})
	if err != nil {
		return nil, fmt.Errorf("jobs: dir store: %w", err)
	}
	deadline := time.Now().Add(s.lockWait)
	for {
		tmp, err := os.CreateTemp(s.dir, ".lock-tmp-")
		if err != nil {
			return nil, fmt.Errorf("jobs: dir store: %w", err)
		}
		_, werr := tmp.Write(content)
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			_ = os.Remove(tmp.Name())
			return nil, fmt.Errorf("jobs: dir store: lock: %w", errors.Join(werr, cerr))
		}
		linkErr := os.Link(tmp.Name(), s.lockPath)
		_ = os.Remove(tmp.Name())
		if linkErr == nil {
			return s.unlock, nil
		}
		if !errors.Is(linkErr, fs.ErrExist) {
			return nil, fmt.Errorf("jobs: dir store: lock: %w", linkErr)
		}
		s.breakIfStale()
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("jobs: dir store: lock on %s held past %v", s.dir, s.lockWait)
		}
		time.Sleep(time.Millisecond)
	}
}

// breakIfStale renames an expired lock aside. The rename is atomic, so
// when several processes judge the same lock stale, exactly one wins
// the break; the others' renames fail and they simply retry.
func (s *DirStore) breakIfStale() {
	data, err := os.ReadFile(s.lockPath)
	if err != nil {
		return // vanished (released) — retry the acquire
	}
	var lk dirLock
	stale := false
	if json.Unmarshal(data, &lk) == nil && lk.Expires > 0 {
		stale = time.Now().UnixNano() > lk.Expires
	} else if fi, err := os.Stat(s.lockPath); err == nil {
		// Torn/garbage lock content: judge by file age.
		stale = time.Since(fi.ModTime()) > s.lockTTL
	}
	if !stale {
		return
	}
	aside := fmt.Sprintf("%s.stale-%s-%d", s.lockPath, filepath.Base(s.self), s.staleSeq.Add(1))
	if os.Rename(s.lockPath, aside) == nil {
		_ = os.Remove(aside)
	}
}

// unlock releases the directory lock — but only if it is still ours.
// (If we overheld past lockTTL and another process broke our lock, the
// file now belongs to someone else and must not be removed.)
func (s *DirStore) unlock() {
	data, err := os.ReadFile(s.lockPath)
	if err != nil {
		return
	}
	var lk dirLock
	if json.Unmarshal(data, &lk) == nil && lk.Owner == s.self {
		_ = os.Remove(s.lockPath)
	}
}

// --- lease log -----------------------------------------------------------

// leaseLogEntry is one line of leases.log.
//
//	acquire: owner claims job at token (steals bump past the high water)
//	renew:   extend expiry; owner+token must match the live lease
//	release: end the live lease; the token high-water mark survives
//	token:   compaction artifact: a released job's high-water mark
//	drop:    the job was deleted; forget its lease state entirely
type leaseLogEntry struct {
	Op      string `json:"op"`
	Job     string `json:"job"`
	Owner   string `json:"owner,omitempty"`
	Token   uint64 `json:"token,omitempty"`
	Expires int64  `json:"expires,omitempty"` // unix nanoseconds
}

// leaseState is one job's replayed lease state: the token high-water
// mark plus the live lease, if any.
type leaseState struct {
	token   uint64 // highest token ever issued for the job
	live    bool
	owner   string
	expires time.Time
}

// loadLocked replays leases.log. Unparseable lines (a torn final append
// after a crash) are skipped — every complete line before them already
// replayed. Callers hold the directory lock.
func (s *DirStore) loadLocked() (map[string]*leaseState, int, error) {
	states := make(map[string]*leaseState)
	f, err := os.Open(s.logPath)
	if errors.Is(err, fs.ErrNotExist) {
		return states, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: dir store: %w", err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		lines++
		var e leaseLogEntry
		if json.Unmarshal(sc.Bytes(), &e) != nil || e.Job == "" {
			continue
		}
		st := states[e.Job]
		if st == nil && e.Op != "drop" {
			st = &leaseState{}
			states[e.Job] = st
		}
		switch e.Op {
		case "acquire":
			if e.Token > st.token {
				st.token = e.Token
			}
			st.live = true
			st.owner = e.Owner
			st.expires = time.Unix(0, e.Expires)
		case "renew":
			if st.live && st.owner == e.Owner && st.token == e.Token {
				st.expires = time.Unix(0, e.Expires)
			}
		case "release":
			if st.live && st.owner == e.Owner && st.token == e.Token {
				st.live = false
			}
		case "token":
			if e.Token > st.token {
				st.token = e.Token
			}
		case "drop":
			delete(states, e.Job)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("jobs: dir store: lease log: %w", err)
	}
	return states, lines, nil
}

// appendLocked appends one entry, compacting the log first when it has
// grown past maxLog lines. Callers hold the directory lock and pass the
// states map and line count from loadLocked — with the new entry NOT
// yet applied to states.
func (s *DirStore) appendLocked(states map[string]*leaseState, lines int, e leaseLogEntry) error {
	if lines >= s.maxLog {
		if err := s.compactLocked(states); err != nil {
			return err
		}
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("jobs: dir store: %w", err)
	}
	f, err := os.OpenFile(s.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: dir store: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	cerr := f.Close()
	if werr != nil || cerr != nil {
		return fmt.Errorf("jobs: dir store: lease log: %w", errors.Join(werr, cerr))
	}
	return nil
}

// compactLocked rewrites the log as one entry per job: a live lease
// becomes its acquire line, a released job keeps a bare token line so
// its high-water mark — the fence against resurrected writers — is
// never forgotten. Atomic via temp + rename.
func (s *DirStore) compactLocked(states map[string]*leaseState) error {
	ids := make([]string, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var buf strings.Builder
	for _, id := range ids {
		st := states[id]
		var e leaseLogEntry
		switch {
		case st.live:
			e = leaseLogEntry{Op: "acquire", Job: id, Owner: st.owner, Token: st.token, Expires: st.expires.UnixNano()}
		case st.token > 0:
			e = leaseLogEntry{Op: "token", Job: id, Token: st.token}
		default:
			continue
		}
		data, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("jobs: dir store: %w", err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(s.dir, ".leases-tmp-")
	if err != nil {
		return fmt.Errorf("jobs: dir store: %w", err)
	}
	_, werr := tmp.WriteString(buf.String())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: dir store: compact: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.logPath); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: dir store: compact: %w", err)
	}
	return nil
}

// --- LeaseStore ----------------------------------------------------------

func (s *DirStore) Acquire(id, owner string, ttl time.Duration) (Lease, error) {
	if id == "" || owner == "" || ttl <= 0 {
		return Lease{}, fmt.Errorf("jobs: dir store: acquire needs id, owner and ttl > 0 (got %q, %q, %v)", id, owner, ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return Lease{}, err
	}
	defer unlock()
	states, lines, err := s.loadLocked()
	if err != nil {
		return Lease{}, err
	}
	now := time.Now()
	st := states[id]
	if st != nil && st.live && st.owner != owner && now.Before(st.expires) {
		return Lease{}, fmt.Errorf("%w: job %s leased by %s until %s",
			ErrLeaseHeld, id, st.owner, st.expires.Format(time.RFC3339Nano))
	}
	var token uint64 = 1
	if st != nil {
		token = st.token + 1
	}
	l := Lease{JobID: id, Owner: owner, Token: token, Expires: now.Add(ttl)}
	e := leaseLogEntry{Op: "acquire", Job: id, Owner: owner, Token: token, Expires: l.Expires.UnixNano()}
	if err := s.appendLocked(states, lines, e); err != nil {
		return Lease{}, err
	}
	return l, nil
}

func (s *DirStore) Renew(l Lease, ttl time.Duration) (Lease, error) {
	if ttl <= 0 {
		return Lease{}, fmt.Errorf("jobs: dir store: renew needs ttl > 0, got %v", ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return Lease{}, err
	}
	defer unlock()
	states, lines, err := s.loadLocked()
	if err != nil {
		return Lease{}, err
	}
	st := states[l.JobID]
	if st == nil || !st.live || st.owner != l.Owner || st.token != l.Token {
		return Lease{}, fmt.Errorf("%w: job %s token %d (owner %s)", ErrLeaseLost, l.JobID, l.Token, l.Owner)
	}
	nl := l
	nl.Expires = time.Now().Add(ttl)
	e := leaseLogEntry{Op: "renew", Job: l.JobID, Owner: l.Owner, Token: l.Token, Expires: nl.Expires.UnixNano()}
	if err := s.appendLocked(states, lines, e); err != nil {
		return Lease{}, err
	}
	return nl, nil
}

func (s *DirStore) Release(l Lease) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	states, lines, err := s.loadLocked()
	if err != nil {
		return err
	}
	st := states[l.JobID]
	if st == nil || !st.live || st.owner != l.Owner || st.token != l.Token {
		return fmt.Errorf("%w: job %s token %d (owner %s)", ErrLeaseLost, l.JobID, l.Token, l.Owner)
	}
	e := leaseLogEntry{Op: "release", Job: l.JobID, Owner: l.Owner, Token: l.Token}
	return s.appendLocked(states, lines, e)
}

func (s *DirStore) PutLeased(rec *Record, l Lease) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	states, _, err := s.loadLocked()
	if err != nil {
		return err
	}
	st := states[rec.ID]
	if st == nil || !st.live || st.owner != l.Owner || st.token != l.Token {
		have := uint64(0)
		if st != nil {
			have = st.token
		}
		return fmt.Errorf("%w: job %s write fenced (presented token %d, store high water %d)",
			ErrStaleToken, rec.ID, l.Token, have)
	}
	// The record write happens under the directory lock: once a steal
	// bumps the token, no straggler PutLeased can land afterwards, so a
	// post-acquire Get always reads the final fenced snapshot.
	return s.recs.Put(rec)
}

func (s *DirStore) Leases() (map[string]Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return nil, err
	}
	defer unlock()
	states, _, err := s.loadLocked()
	if err != nil {
		return nil, err
	}
	out := make(map[string]Lease)
	for id, st := range states {
		if st.live {
			out[id] = Lease{JobID: id, Owner: st.owner, Token: st.token, Expires: st.expires}
		}
	}
	return out, nil
}

// --- Store ---------------------------------------------------------------

// Put is the unleased conditional write: rejected while another
// replica's unexpired lease is live (its fenced writes must not be
// clobbered by a stale snapshot). Submitting replicas and recovery
// re-persists write through here.
func (s *DirStore) Put(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	states, _, err := s.loadLocked()
	if err != nil {
		return err
	}
	if st := states[rec.ID]; st != nil && st.live && time.Now().Before(st.expires) {
		return fmt.Errorf("%w: job %s leased by %s", ErrLeaseHeld, rec.ID, st.owner)
	}
	return s.recs.Put(rec)
}

func (s *DirStore) Get(id string) (*Record, bool, error) { return s.recs.Get(id) }

func (s *DirStore) List() ([]*Record, error) { return s.recs.List() }

// Delete removes the record and forgets the job's lease state (the
// token fence is only needed while the job exists).
func (s *DirStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	states, lines, err := s.loadLocked()
	if err != nil {
		return err
	}
	if _, ok := states[id]; ok {
		if err := s.appendLocked(states, lines, leaseLogEntry{Op: "drop", Job: id}); err != nil {
			return err
		}
	}
	return s.recs.Delete(id)
}

// --- replica registry ----------------------------------------------------

func (s *DirStore) PublishReplica(info ReplicaInfo) error {
	if info.Replica == "" || strings.ContainsAny(info.Replica, `/\`) || strings.Contains(info.Replica, "..") {
		return fmt.Errorf("jobs: dir store: invalid replica id %q", info.Replica)
	}
	data, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("jobs: dir store: %w", err)
	}
	tmp, err := os.CreateTemp(s.repDir, "."+info.Replica+".tmp-")
	if err != nil {
		return fmt.Errorf("jobs: dir store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: dir store: replica %s: %w", info.Replica, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.repDir, info.Replica+".json")); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: dir store: %w", err)
	}
	return nil
}

func (s *DirStore) Replicas() ([]ReplicaInfo, error) {
	entries, err := os.ReadDir(s.repDir)
	if err != nil {
		return nil, fmt.Errorf("jobs: dir store: %w", err)
	}
	var out []ReplicaInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.repDir, name))
		if err != nil {
			continue
		}
		var info ReplicaInfo
		if json.Unmarshal(data, &info) != nil || info.Replica == "" {
			continue // torn or garbage presence file — presence is advisory
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out, nil
}
