package jobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// SSEWriter frames Server-Sent Events onto an HTTP response: one
// `id:`/`event:`/`data:` block per Send, flushed immediately so events
// reach the client as they happen. It is the shared SSE surface of the
// jobs endpoints (GET /v1/jobs/{id}/events) and the sweep SSE stream, and
// is not safe for concurrent Sends.
type SSEWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// NewSSEWriter prepares w for an event stream: sets the text/event-stream
// content type, disables intermediary buffering, and writes the headers.
func NewSSEWriter(w http.ResponseWriter) *SSEWriter {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	s := &SSEWriter{w: w, fl: fl}
	s.flush()
	return s
}

// Send writes one event: id (the reconnect cursor; omitted when negative),
// the event name, and data JSON-encoded on the data line. A write error
// means the client is gone; stop sending.
func (s *SSEWriter) Send(id int64, event string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("jobs: encoding SSE %s event: %w", event, err)
	}
	var b strings.Builder
	if id >= 0 {
		fmt.Fprintf(&b, "id: %d\n", id)
	}
	fmt.Fprintf(&b, "event: %s\n", event)
	// json.Marshal never emits raw newlines, so one data line suffices.
	fmt.Fprintf(&b, "data: %s\n\n", payload)
	if _, err := s.w.Write([]byte(b.String())); err != nil {
		return err
	}
	s.flush()
	return nil
}

// Comment writes a comment line (": text"), the SSE keep-alive idiom —
// clients ignore it, proxies see traffic.
func (s *SSEWriter) Comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *SSEWriter) flush() {
	if s.fl != nil {
		s.fl.Flush()
	}
}

// LastEventID extracts the client's reconnect cursor: the standard
// Last-Event-ID header (set automatically by EventSource on reconnect), or
// a last_event_id query parameter for clients that cannot set headers.
// Returns -1 when absent or unparseable (meaning: replay from the start).
func LastEventID(r *http.Request) int64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return -1
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id < 0 {
		return -1
	}
	return id
}
