package jobs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// mutationTestRecord builds a record exercising every shared-slice and
// pointer field of Status plus both checkpoint kinds.
func mutationTestRecord(id string) *Record {
	started := time.Now()
	strategyER := 0.25
	spec := smallSpec
	return &Record{
		Status: Status{
			ID: id, Kind: KindSweep, State: StateDone,
			Analyze: &spec,
			Sweep: &SweepSpec{
				Gamma: 0.5, PGrid: []float64{0, 0.1, 0.2},
				Configs: []SweepConfig{{Depth: 2, Forks: 1}},
				Len:     3, Epsilon: 1e-3,
			},
			Result: &AnalyzeResult{ERRev: 0.3, Strategy: []int{1, 2, 3}, StrategyERRev: &strategyER},
			SweepResult: &SweepResult{
				X:      []float64{0, 0.1, 0.2},
				Series: []SweepSeries{{Name: "attack", Values: []float64{0.1, 0.2, 0.3}}},
			},
			SubmittedAt: started, StartedAt: &started,
		},
		Checkpoint:      &CheckpointRecord{BetaLow: 0.1, BetaUp: 0.2, NumValues: 0},
		SweepCheckpoint: []SweepPoint{{P: 0.1}},
	}
}

// TestStoreImmutability pins the Store contract on every implementation:
// stored records share no mutable state with the caller. Mutating the
// record after Put, or mutating what Get/List returned, must never reach
// the store.
func TestStoreImmutability(t *testing.T) {
	stores := map[string]Store{"mem": NewMemStore()}
	if ds, err := NewDiskStore(t.TempDir()); err == nil {
		stores["disk"] = ds
	} else {
		t.Fatal(err)
	}
	if rs, err := NewDirStore(t.TempDir()); err == nil {
		stores["dir"] = rs
	} else {
		t.Fatal(err)
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			rec := mutationTestRecord("j1")
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
			// Scribble over everything the caller still holds.
			rec.State = StateFailed
			rec.Sweep.PGrid[0] = 99
			rec.Result.Strategy[0] = -1
			*rec.Result.StrategyERRev = 99
			rec.SweepResult.X[0] = 99
			rec.SweepResult.Series[0].Values[0] = 99
			rec.Checkpoint.BetaLow = 99
			rec.SweepCheckpoint[0].P = 99
			rec.StartedAt.Add(time.Hour)

			assertPristine := func(got *Record, how string) {
				t.Helper()
				switch {
				case got.State != StateDone:
					t.Errorf("%s: state mutated to %s", how, got.State)
				case got.Sweep.PGrid[0] != 0:
					t.Errorf("%s: PGrid mutated to %v", how, got.Sweep.PGrid[0])
				case got.Result.Strategy[0] != 1:
					t.Errorf("%s: strategy mutated to %d", how, got.Result.Strategy[0])
				case *got.Result.StrategyERRev != 0.25:
					t.Errorf("%s: strategy ERRev mutated to %v", how, *got.Result.StrategyERRev)
				case got.SweepResult.X[0] != 0 || got.SweepResult.Series[0].Values[0] != 0.1:
					t.Errorf("%s: sweep result mutated", how)
				case got.Checkpoint.BetaLow != 0.1:
					t.Errorf("%s: checkpoint mutated to %v", how, got.Checkpoint.BetaLow)
				case got.SweepCheckpoint[0].P != 0.1:
					t.Errorf("%s: sweep checkpoint mutated to %v", how, got.SweepCheckpoint[0].P)
				}
			}
			got, ok, err := s.Get("j1")
			if err != nil || !ok {
				t.Fatalf("Get = %v, %v", ok, err)
			}
			assertPristine(got, "after caller mutation")

			// Mutating what Get handed out must not poison later reads.
			got.Sweep.PGrid[0] = 77
			got.Result.Strategy[0] = 77
			again, _, err := s.Get("j1")
			if err != nil {
				t.Fatal(err)
			}
			assertPristine(again, "after reader mutation")

			// Same for List.
			all, err := s.List()
			if err != nil || len(all) != 1 {
				t.Fatalf("List = %d records, %v", len(all), err)
			}
			all[0].SweepResult.X[0] = 55
			final, _, err := s.Get("j1")
			if err != nil {
				t.Fatal(err)
			}
			assertPristine(final, "after list mutation")
		})
	}
}

// TestDiskStoreConcurrentAccess hammers one DiskStore with interleaved
// Put/Get/Delete/List from many goroutines under -race: no torn reads,
// no panics, and every record that survives still parses.
func TestDiskStoreConcurrentAccess(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", w)
			for i := 0; i < rounds; i++ {
				shared := fmt.Sprintf("shared-%d", i%3)
				for _, id := range []string{own, shared} {
					if err := s.Put(mutationTestRecord(id)); err != nil {
						t.Errorf("Put(%s): %v", id, err)
					}
				}
				if rec, ok, err := s.Get(shared); err != nil {
					t.Errorf("Get(%s): %v", shared, err)
				} else if ok && rec.ID != shared {
					t.Errorf("Get(%s) returned record %s", shared, rec.ID)
				}
				if i%5 == 0 {
					if err := s.Delete(shared); err != nil {
						t.Errorf("Delete(%s): %v", shared, err)
					}
				}
				if _, err := s.List(); err != nil {
					t.Errorf("List: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if n := s.CorruptFiles(); n != 0 {
		t.Errorf("%d snapshots quarantined as corrupt under concurrent access", n)
	}
	all, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range all {
		if rec.ID == "" || rec.Sweep == nil {
			t.Errorf("surviving record lost fields: %+v", rec.Status)
		}
	}
	if len(all) < workers {
		t.Errorf("only %d records survived, want at least the %d per-worker ids", len(all), workers)
	}
}
