package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// ValidateRemoteFlags checks the -server/-submit/-resume/-wait flag
// contract shared by the analyze and sweep CLIs: the remote actions need
// a server, a server needs a remote action, submit and resume exclude
// each other, and -wait only makes sense with one of them.
func ValidateRemoteFlags(server string, submit bool, resumeID string, wait bool) error {
	remote := submit || resumeID != ""
	switch {
	case remote && server == "":
		return fmt.Errorf("-submit/-resume need -server")
	case server != "" && !remote:
		return fmt.Errorf("-server needs -submit or -resume")
	case submit && resumeID != "":
		return fmt.Errorf("-submit and -resume are mutually exclusive")
	case wait && !remote:
		return fmt.Errorf("-wait needs -submit or -resume")
	}
	return nil
}

// Client talks to the job endpoints of a running cmd/serve instance, so
// CLIs (and other Go programs) can submit work, poll it, cancel it and
// resume it without holding a connection open for the solve's lifetime.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

func (c *Client) hc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one JSON request/response round trip. Error bodies ({"error":
// ...}) become Go errors carrying the server's message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("jobs: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, body)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return fmt.Errorf("jobs: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("jobs: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("jobs: server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("jobs: server returned HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("jobs: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Submit posts a job and returns its initial snapshot (state "queued").
func (c *Client) Submit(ctx context.Context, req Request) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a job's current snapshot. includeStrategy additionally
// inlines a done analyze job's O(states) strategy.
func (c *Client) Get(ctx context.Context, id string, includeStrategy bool) (*Status, error) {
	path := "/v1/jobs/" + url.PathEscape(id)
	if includeStrategy {
		path += "?include_strategy=1"
	}
	var st Status
	if err := c.do(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches snapshots of every retained job, optionally filtered by
// state and kind (empty = all). The filter's pagination fields walk the
// server page by page transparently; use Page for explicit control.
func (c *Client) List(ctx context.Context, f Filter) ([]*Status, error) {
	var all []*Status
	for {
		page, next, err := c.Page(ctx, f)
		if err != nil {
			return nil, err
		}
		all = append(all, page...)
		if next == "" {
			return all, nil
		}
		f.Cursor = next
	}
}

// Page fetches one page of the filtered job listing plus the cursor for
// the next page ("" at the end). Filter.Limit caps the page size (0 =
// everything in one page).
func (c *Client) Page(ctx context.Context, f Filter) ([]*Status, string, error) {
	q := url.Values{}
	if f.State != "" {
		q.Set("state", string(f.State))
	}
	if f.Kind != "" {
		q.Set("kind", string(f.Kind))
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	if f.Cursor != "" {
		q.Set("cursor", f.Cursor)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out struct {
		Jobs       []*Status `json:"jobs"`
		NextCursor string    `json:"next_cursor"`
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, "", err
	}
	return out.Jobs, out.NextCursor, nil
}

// Cancel requests cancellation and returns the job's snapshot (a running
// job transitions once its solve reaches the next checkpoint).
func (c *Client) Cancel(ctx context.Context, id string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Resume re-enqueues a canceled or failed job (replaying a persisted
// checkpoint when one exists) and returns its snapshot.
func (c *Client) Resume(ctx context.Context, id string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/resume", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job until it reaches a terminal state (or ctx ends),
// invoking onUpdate — if non-nil — with every snapshot whose state or
// progress moved. poll <= 0 defaults to 500ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, onUpdate func(*Status)) (*Status, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	var last *Status
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		st, err := c.Get(ctx, id, false)
		if err != nil {
			return nil, err
		}
		if onUpdate != nil && (last == nil || last.State != st.State || last.Progress != st.Progress) {
			onUpdate(st)
		}
		last = st
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
