package jobs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestDirStore(t *testing.T) *DirStore {
	t.Helper()
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func leaseTestRecord(id string) *Record {
	spec := smallSpec
	return &Record{Status: Status{
		ID: id, Kind: KindAnalyze, State: StateRunning,
		Analyze: &spec, SubmittedAt: time.Now(),
	}}
}

func TestDirStoreLeaseLifecycle(t *testing.T) {
	s := newTestDirStore(t)
	l1, err := s.Acquire("j1", "a", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Token != 1 || l1.Owner != "a" {
		t.Fatalf("first lease = %+v, want token 1 owner a", l1)
	}
	// A live lease blocks other owners...
	if _, err := s.Acquire("j1", "b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("acquire over a live lease: %v, want ErrLeaseHeld", err)
	}
	// ...but not other jobs.
	if _, err := s.Acquire("j2", "b", time.Minute); err != nil {
		t.Fatalf("acquire of a different job: %v", err)
	}
	// Renewal extends expiry and keeps the token.
	nl, err := s.Renew(l1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Token != l1.Token || !nl.Expires.After(l1.Expires) {
		t.Fatalf("renewal = %+v (from %+v): want same token, later expiry", nl, l1)
	}
	// Release lets the next owner in, at a strictly higher token.
	if err := s.Release(nl); err != nil {
		t.Fatal(err)
	}
	l2, err := s.Acquire("j1", "b", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Token <= nl.Token {
		t.Fatalf("post-release token %d not above %d", l2.Token, nl.Token)
	}
	// The released lease is dead for every operation.
	if _, err := s.Renew(nl, time.Minute); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew of a released lease: %v, want ErrLeaseLost", err)
	}
	if err := s.Release(nl); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("double release: %v, want ErrLeaseLost", err)
	}
	leases, err := s.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 2 || leases["j1"].Owner != "b" || leases["j2"].Owner != "b" {
		t.Fatalf("leases = %+v, want j1 and j2 held by b", leases)
	}
}

// TestDirStoreFencing pins the safety core: once a lease is stolen, the
// old owner's writes, renewals and releases are all rejected — no
// matter what its clock thinks.
func TestDirStoreFencing(t *testing.T) {
	s := newTestDirStore(t)
	rec := leaseTestRecord("j1")
	old, err := s.Acquire("j1", "a", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutLeased(rec, old); err != nil {
		t.Fatalf("fenced write under a live lease: %v", err)
	}
	// Let the lease expire without a steal: the owner may still renew
	// and write — expiry is liveness, the token is safety.
	time.Sleep(20 * time.Millisecond)
	if err := s.PutLeased(rec, old); err != nil {
		t.Fatalf("fenced write on an expired-but-unstolen lease: %v", err)
	}
	if _, err := s.Renew(old, 10*time.Millisecond); err != nil {
		t.Fatalf("renewal of an expired-but-unstolen lease: %v", err)
	}
	// Now the steal: a second owner acquires over the lapsed lease.
	time.Sleep(20 * time.Millisecond)
	stolen, err := s.Acquire("j1", "b", time.Minute)
	if err != nil {
		t.Fatalf("steal of an expired lease: %v", err)
	}
	if stolen.Token <= old.Token {
		t.Fatalf("steal token %d not above the old token %d", stolen.Token, old.Token)
	}
	// The resurrected old owner is fenced out of everything.
	if err := s.PutLeased(rec, old); !errors.Is(err, ErrStaleToken) {
		t.Fatalf("stale-token write: %v, want ErrStaleToken", err)
	}
	if _, err := s.Renew(old, time.Minute); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale renewal: %v, want ErrLeaseLost", err)
	}
	if err := s.Release(old); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale release: %v, want ErrLeaseLost", err)
	}
	// The thief's writes land; unleased Puts are blocked while it lives.
	if err := s.PutLeased(rec, stolen); err != nil {
		t.Fatalf("new owner's fenced write: %v", err)
	}
	if err := s.Put(rec); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("unleased Put over a live lease: %v, want ErrLeaseHeld", err)
	}
	// After release, plain Puts work again, but the released lease's
	// token is spent forever.
	if err := s.Release(stolen); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec); err != nil {
		t.Fatalf("unleased Put after release: %v", err)
	}
	if err := s.PutLeased(rec, stolen); !errors.Is(err, ErrStaleToken) {
		t.Fatalf("fenced write under a released lease: %v, want ErrStaleToken", err)
	}
}

// TestDirStoreTokenHighWaterSurvivesCompaction forces many log
// compactions and checks the monotonic-token invariant across them: a
// released job's high-water mark must never be forgotten, or a
// resurrected writer could slip a stale write past the fence.
func TestDirStoreTokenHighWaterSurvivesCompaction(t *testing.T) {
	s := newTestDirStore(t)
	s.maxLog = 4 // compact every few appends
	var last uint64
	var stale []Lease
	for i := 0; i < 40; i++ {
		l, err := s.Acquire("j1", fmt.Sprintf("r%d", i%3), time.Minute)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if l.Token <= last {
			t.Fatalf("acquire %d: token %d not above %d (high water lost in compaction)", i, l.Token, last)
		}
		last = l.Token
		stale = append(stale, l)
		if err := s.Release(l); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	rec := leaseTestRecord("j1")
	for i, l := range stale {
		if err := s.PutLeased(rec, l); !errors.Is(err, ErrStaleToken) {
			t.Fatalf("spent lease %d accepted for a fenced write: %v", i, err)
		}
	}
	// The log actually compacted (it would be 80+ lines otherwise).
	if _, lines, err := s.loadLocked(); err != nil || lines > s.maxLog+1 {
		t.Fatalf("log has %d lines (err %v), want <= %d after compaction", lines, err, s.maxLog+1)
	}
}

// TestDirStoreAcquireMutualExclusion is the lease-invariant property
// test: however many replicas race, at most one holds a valid lease on
// a job at any time, and every handoff strictly increases the token.
func TestDirStoreAcquireMutualExclusion(t *testing.T) {
	s := newTestDirStore(t)
	const replicas, rounds = 8, 15
	var lastToken uint64
	for round := 0; round < rounds; round++ {
		var (
			wg      sync.WaitGroup
			winners atomic.Int32
			mu      sync.Mutex
			winner  Lease
		)
		for r := 0; r < replicas; r++ {
			owner := fmt.Sprintf("r%d", r)
			wg.Add(1)
			go func() {
				defer wg.Done()
				l, err := s.Acquire("contended", owner, time.Minute)
				switch {
				case err == nil:
					winners.Add(1)
					mu.Lock()
					winner = l
					mu.Unlock()
				case !errors.Is(err, ErrLeaseHeld):
					t.Errorf("loser saw %v, want ErrLeaseHeld", err)
				}
			}()
		}
		wg.Wait()
		if n := winners.Load(); n != 1 {
			t.Fatalf("round %d: %d replicas acquired the same live lease", round, n)
		}
		if winner.Token <= lastToken {
			t.Fatalf("round %d: token %d not above %d", round, winner.Token, lastToken)
		}
		lastToken = winner.Token
		if err := s.Release(winner); err != nil {
			t.Fatalf("round %d release: %v", round, err)
		}
	}
}

// TestDirStoreConcurrentLeaseChurn hammers one store from many
// goroutines under -race: tokens stay strictly monotonic per job, and
// fenced writes only ever succeed or fail with ErrStaleToken.
func TestDirStoreConcurrentLeaseChurn(t *testing.T) {
	s := newTestDirStore(t)
	s.maxLog = 16 // keep compaction in the loop
	jobs := []string{"a", "b"}
	var tokenMu sync.Mutex
	lastToken := map[string]uint64{}
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		owner := fmt.Sprintf("r%d", r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := jobs[i%len(jobs)]
				l, err := s.Acquire(id, owner, 5*time.Millisecond)
				if err != nil {
					if !errors.Is(err, ErrLeaseHeld) {
						t.Errorf("acquire: %v", err)
					}
					time.Sleep(time.Millisecond)
					continue
				}
				tokenMu.Lock()
				if l.Token <= lastToken[id] {
					t.Errorf("job %s: token %d not above %d", id, l.Token, lastToken[id])
				}
				lastToken[id] = l.Token
				tokenMu.Unlock()
				if err := s.PutLeased(leaseTestRecord(id), l); err != nil && !errors.Is(err, ErrStaleToken) {
					t.Errorf("fenced write: %v", err)
				}
				if i%2 == 0 {
					_ = s.Release(l) // otherwise abandon: the next acquire steals
				}
			}
		}()
	}
	wg.Wait()
}

// TestDirStoreLockRecovery: a crashed holder's lock file (expired
// content, or unparseable garbage with an old mtime) must be broken,
// never deadlock the store.
func TestDirStoreLockRecovery(t *testing.T) {
	s := newTestDirStore(t)
	// An expired lock left by a crashed process.
	expired, _ := os.Create(s.lockPath)
	fmt.Fprintf(expired, `{"owner":"dead:1:1","expires":%d}`, time.Now().Add(-time.Minute).UnixNano())
	expired.Close()
	if _, err := s.Acquire("j1", "a", time.Minute); err != nil {
		t.Fatalf("acquire past an expired lock: %v", err)
	}
	// Garbage lock content: judged stale by mtime.
	if err := os.WriteFile(s.lockPath, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(s.lockPath, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Leases(); err != nil {
		t.Fatalf("leases past a garbage lock: %v", err)
	}
	// A live (unexpired) foreign lock makes operations wait, then fail.
	s.lockWait = 50 * time.Millisecond
	live, _ := os.Create(s.lockPath)
	fmt.Fprintf(live, `{"owner":"other:1:1","expires":%d}`, time.Now().Add(time.Minute).UnixNano())
	live.Close()
	if _, err := s.Acquire("j2", "a", time.Minute); err == nil {
		t.Fatal("acquire succeeded through a live foreign lock")
	}
	_ = os.Remove(s.lockPath)
}

// TestDirStoreDeleteDropsLeaseState: deleting a job forgets its lease
// bookkeeping so the log cannot grow monotonically with job turnover.
func TestDirStoreDeleteDropsLeaseState(t *testing.T) {
	s := newTestDirStore(t)
	l, err := s.Acquire("j1", "a", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(l); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("j1"); err != nil {
		t.Fatal(err)
	}
	states, _, err := s.loadLocked()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := states["j1"]; ok {
		t.Fatal("deleted job still has lease state")
	}
	// A fresh job under the recycled id starts over at token 1.
	if l, err = s.Acquire("j1", "b", time.Minute); err != nil || l.Token != 1 {
		t.Fatalf("acquire after delete = %+v, %v; want token 1", l, err)
	}
}

func TestDirStoreReplicaRegistry(t *testing.T) {
	s := newTestDirStore(t)
	if err := s.PublishReplica(ReplicaInfo{Replica: "../evil"}); err == nil {
		t.Fatal("hostile replica id accepted")
	}
	for _, name := range []string{"b", "a"} {
		if err := s.PublishReplica(ReplicaInfo{Replica: name, Running: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PublishReplica(ReplicaInfo{Replica: "a", Running: 7}); err != nil {
		t.Fatal(err)
	}
	// A torn presence file is skipped, not fatal.
	if err := os.WriteFile(filepath.Join(s.repDir, "torn.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	reps, err := s.Replicas()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Replica != "a" || reps[0].Running != 7 || reps[1].Replica != "b" {
		t.Fatalf("replicas = %+v, want updated a then b", reps)
	}
}

// TestDirStoreRecordRoundTrip: the Store surface delegates to the
// snapshot-per-job layout and keeps the conditional-write contract.
func TestDirStoreRecordRoundTrip(t *testing.T) {
	s := newTestDirStore(t)
	rec := leaseTestRecord("j1")
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("j1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if got.ID != "j1" || got.Kind != KindAnalyze {
		t.Fatalf("round-tripped record = %+v", got.Status)
	}
	all, err := s.List()
	if err != nil || len(all) != 1 {
		t.Fatalf("List = %d records, %v", len(all), err)
	}
	if err := s.Delete("j1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("j1"); ok {
		t.Fatal("deleted record still present")
	}
}
