package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// DiskStore persists each job as one JSON snapshot file (<id>.json) in a
// directory, giving a Manager restart survival: a new Manager over the
// same directory re-indexes every finished job, re-queues interrupted
// ones, and resumes checkpointed analyses bitwise identically.
//
// Writes are atomic (temp file + rename), so a crash mid-write leaves the
// previous snapshot intact. Files that fail to parse are quarantined —
// renamed to <name>.corrupt and skipped, never fatal — so one torn or
// hand-mangled record cannot take the whole store down; CorruptFiles
// counts them.
type DiskStore struct {
	dir     string
	mu      sync.Mutex
	corrupt atomic.Uint64
}

// NewDiskStore opens (creating if needed) the snapshot directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the snapshot directory.
func (s *DiskStore) Dir() string { return s.dir }

// Healthy reports whether the snapshot directory is still a reachable
// directory (it can disappear after open: an unmounted volume, a deleted
// tree). Implements HealthChecker for Manager.Ready.
func (s *DiskStore) Healthy() error {
	info, err := os.Stat(s.dir)
	if err != nil {
		return fmt.Errorf("jobs: disk store: %w", err)
	}
	if !info.IsDir() {
		return fmt.Errorf("jobs: disk store: %s is not a directory", s.dir)
	}
	return nil
}

// CorruptFiles counts snapshot files quarantined because they failed to
// parse (since this store was opened).
func (s *DiskStore) CorruptFiles() uint64 { return s.corrupt.Load() }

// path maps a job id onto its snapshot file, rejecting ids that could
// escape the directory (the Manager only generates hex ids; this guards
// direct Store users).
func (s *DiskStore) path(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, `/\`) || strings.Contains(id, "..") {
		return "", fmt.Errorf("jobs: disk store: invalid job id %q", id)
	}
	return filepath.Join(s.dir, id+".json"), nil
}

func (s *DiskStore) Put(rec *Record) error {
	path, err := s.path(rec.ID)
	if err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: disk store: encoding %s: %w", rec.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "."+rec.ID+".tmp-")
	if err != nil {
		return fmt.Errorf("jobs: disk store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: disk store: writing %s: %w", rec.ID, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: disk store: %w", err)
	}
	return nil
}

func (s *DiskStore) Get(id string) (*Record, bool, error) {
	path, err := s.path(id)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, err := s.read(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		// Quarantined as corrupt: absent, not fatal.
		return nil, false, nil
	}
	return rec, true, nil
}

func (s *DiskStore) Delete(id string) error {
	path, err := s.path(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("jobs: disk store: %w", err)
	}
	return nil
}

func (s *DiskStore) List() ([]*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: disk store: %w", err)
	}
	var out []*Record
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		rec, err := s.read(filepath.Join(s.dir, name))
		if err != nil {
			continue // quarantined (or vanished) — recovery must not abort
		}
		out = append(out, rec)
	}
	return out, nil
}

// read loads and validates one snapshot, quarantining it on parse
// failure. Callers hold s.mu.
func (s *DiskStore) read(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err == nil && rec.ID != "" && rec.Kind != "" {
		return &rec, nil
	}
	// Unparseable or structurally empty: move it aside so every future
	// scan does not re-read garbage, and keep the bytes for post-mortems.
	s.corrupt.Add(1)
	if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
		_ = os.Remove(path)
	}
	return nil, fmt.Errorf("jobs: disk store: corrupt snapshot %s", filepath.Base(path))
}
