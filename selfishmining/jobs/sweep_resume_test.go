package jobs

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/results"
	"repro/selfishmining"
)

// adaptiveSweepSpec is a small adaptive fork sweep that refines: the
// attack curve has real curvature on [0, 0.3] at this tolerance.
func adaptiveSweepSpec() SweepSpec {
	return SweepSpec{
		Gamma: 0.5, PGrid: []float64{0, 0.1, 0.2, 0.3},
		Configs: []SweepConfig{{Depth: 2, Forks: 1}}, Len: 3, Epsilon: 1e-3,
		Adaptive: true, Tolerance: 1e-3, MaxDepth: 2,
	}
}

// equalFigures asserts two figures are bitwise identical in x and values.
func equalFigures(t *testing.T, label string, want, got *results.Figure) {
	t.Helper()
	if len(got.X) != len(want.X) {
		t.Fatalf("%s: %d x points, want %d", label, len(got.X), len(want.X))
	}
	for i, x := range want.X {
		if math.Float64bits(got.X[i]) != math.Float64bits(x) {
			t.Fatalf("%s: x[%d] = %v, want %v", label, i, got.X[i], x)
		}
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: %d series, want %d", label, len(got.Series), len(want.Series))
	}
	for i, s := range want.Series {
		if got.Series[i].Name != s.Name {
			t.Fatalf("%s: series %d named %q, want %q", label, i, got.Series[i].Name, s.Name)
		}
		for k, v := range s.Values {
			if math.Float64bits(got.Series[i].Values[k]) != math.Float64bits(v) {
				t.Errorf("%s: series %s point %d: %v != %v", label, s.Name, k, got.Series[i].Values[k], v)
			}
		}
	}
}

// referenceSweep solves the spec uninterrupted on a fresh service.
func referenceSweep(t *testing.T, spec SweepSpec) *results.Figure {
	t.Helper()
	fig, err := selfishmining.NewService(selfishmining.ServiceConfig{}).
		SweepContext(context.Background(), spec.options())
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	return fig
}

// TestJobAdaptiveSpecValidation pins the adaptive fields' normalization.
func TestJobAdaptiveSpecValidation(t *testing.T) {
	m := newTestManager(t, Config{})
	bad := []SweepSpec{
		{Gamma: 0.5, Tolerance: 1e-3},                                 // adaptive option without adaptive
		{Gamma: 0.5, MaxDepth: 2},                                     // ditto
		{Gamma: 0.5, Adaptive: true, PGrid: []float64{0.1}},           // one-point coarse grid
		{Gamma: 0.5, Adaptive: true, PGrid: []float64{0.1, 0.1, 0.2}}, // not strictly increasing
		{Gamma: 0.5, Adaptive: true, PGrid: []float64{0, 0.1}, MaxDepth: -1},
		{Gamma: 0.5, Adaptive: true, PGrid: []float64{0, 0.1}, Tolerance: -1},
	}
	for i, spec := range bad {
		s := spec
		if _, err := m.Submit(Request{Kind: KindSweep, Sweep: &s}); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	st, err := m.Submit(Request{Kind: KindSweep, Sweep: &SweepSpec{
		Gamma: 0.5, PGrid: []float64{0, 0.1}, Adaptive: true,
		Configs: []SweepConfig{{Depth: 1, Forks: 1}}, Len: 3, Epsilon: 1e-3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sweep.Tolerance != selfishmining.DefaultSweepTolerance || st.Sweep.MaxDepth != selfishmining.DefaultSweepMaxDepth {
		t.Errorf("defaults not filled: tolerance %v depth %d", st.Sweep.Tolerance, st.Sweep.MaxDepth)
	}
	waitState(t, m, st.ID, StateDone)
}

// TestJobAdaptiveSweepCancelMidRefinementResume cancels an adaptive sweep
// after refinement has started and resumes it: the resumed job must
// replay the checkpointed points and converge on a figure bitwise
// identical to an uninterrupted run.
func TestJobAdaptiveSweepCancelMidRefinementResume(t *testing.T) {
	spec := adaptiveSweepSpec()
	coarse := len(spec.PGrid)
	m := newTestManager(t, Config{})
	var once sync.Once
	m.pointGate = func(id string, done int) {
		// Past the coarse pass: the cancel lands mid-refinement.
		if done == coarse+1 {
			once.Do(func() { m.Cancel(id) })
		}
	}
	st, err := m.Submit(Request{Kind: KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sweep == nil || !st.Sweep.Adaptive || st.Sweep.Tolerance != 1e-3 {
		t.Fatalf("submitted spec lost its adaptive options: %+v", st.Sweep)
	}
	canceled := waitState(t, m, st.ID, StateCanceled)
	if canceled.Progress.PointsDone <= coarse {
		t.Fatalf("canceled after %d points; the gate fires mid-refinement at %d", canceled.Progress.PointsDone, coarse+1)
	}
	if !canceled.HasCheckpoint {
		t.Fatal("canceled mid-refinement without a sweep checkpoint")
	}
	if _, err := m.Resume(st.ID); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.HasCheckpoint {
		t.Error("finished job still advertises a checkpoint")
	}
	if done.SweepResult == nil {
		t.Fatal("resumed sweep has no result")
	}
	got, err := done.SweepResult.Figure()
	if err != nil {
		t.Fatal(err)
	}
	equalFigures(t, "resumed adaptive sweep", referenceSweep(t, spec), got)
	if len(got.X) <= coarse {
		t.Fatalf("adaptive sweep never refined: %d x points", len(got.X))
	}
}

// TestJobSweepCheckpointSurvivesRestart interrupts an adaptive sweep,
// closes the manager, and reopens the same DiskStore over a fresh (cold)
// service: the resumed job must replay every persisted point without
// re-solving it and still produce the bitwise-identical figure.
func TestJobSweepCheckpointSurvivesRestart(t *testing.T) {
	spec := adaptiveSweepSpec()
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	m1, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	m1.pointGate = func(id string, done int) {
		if done == len(spec.PGrid)+1 {
			once.Do(func() { m1.Cancel(id) })
		}
	}
	st, err := m1.Submit(Request{Kind: KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	canceled := waitState(t, m1, st.ID, StateCanceled)
	checkpointed := canceled.Progress.PointsDone
	if checkpointed <= len(spec.PGrid) {
		t.Fatalf("canceled after %d points, want > %d (mid-refinement)", checkpointed, len(spec.PGrid))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": same store, fresh service with empty caches.
	store2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := selfishmining.NewService(selfishmining.ServiceConfig{})
	m2, err := New(svc2, Config{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m2.Close(ctx)
	})
	rec, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCanceled || !rec.HasCheckpoint {
		t.Fatalf("recovered job is %s (checkpoint %v), want canceled with a checkpoint", rec.State, rec.HasCheckpoint)
	}
	if _, err := m2.Resume(st.ID); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m2, st.ID, StateDone)
	got, err := done.SweepResult.Figure()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceSweep(t, spec)
	equalFigures(t, "restart-resumed adaptive sweep", want, got)

	// The replayed points must not have been re-solved: the cold service
	// behind m2 may solve at most the attack-curve points the checkpoint
	// does not cover. (Baseline series do not go through the service's
	// solver, so Solves counts attack points only.)
	attackPoints := len(want.X) * len(spec.Configs)
	if solves := int(svc2.Stats().Solves); solves > attackPoints-checkpointed {
		t.Errorf("resumed run solved %d points, want <= %d (%d attack points, %d checkpointed)",
			solves, attackPoints-checkpointed, attackPoints, checkpointed)
	}
}
