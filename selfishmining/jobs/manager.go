package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/selfishmining"
	"repro/selfishmining/obs"
)

// Defaults for Config's zero values.
const (
	DefaultWorkers     = 2
	DefaultQueueLimit  = 1024
	DefaultTTL         = time.Hour
	DefaultMaxFinished = 4096
	DefaultEventBuffer = 256
	// DefaultLeaseTTL and DefaultPollInterval tune multi-replica mode
	// (Config.ReplicaID over a LeaseStore); the heartbeat defaults to a
	// third of the lease TTL.
	DefaultLeaseTTL     = 15 * time.Second
	DefaultPollInterval = 2 * time.Second
)

// Config tunes a Manager. The zero value gives serving defaults; see each
// field for the negative-value escape hatches.
type Config struct {
	// Store persists job records (nil = a fresh in-memory MemStore). A
	// DiskStore makes jobs survive process restarts.
	Store Store
	// Workers bounds the jobs executing at once (default 2). The
	// underlying Service's MaxConcurrent additionally bounds total solves
	// across jobs and synchronous requests.
	Workers int
	// QueueLimit bounds jobs waiting in the queue; Submit fails with
	// ErrQueueFull beyond it (default 1024).
	QueueLimit int
	// TTL is how long finished (done/failed/canceled) jobs are retained
	// before eviction (default 1h; negative disables eviction).
	TTL time.Duration
	// MaxFinished caps retained finished jobs regardless of TTL, evicting
	// oldest-finished first (default 4096; negative removes the cap).
	MaxFinished int
	// EventBuffer is the per-job event-log ring size for SSE replay
	// (default 256). Reconnects older than the ring receive a fresh status
	// snapshot first.
	EventBuffer int
	// Gates installs deterministic lifecycle hooks for tests (nil in
	// production). See Gates.
	Gates *Gates
	// Logger receives structured lifecycle logs (submit, start, finish,
	// steal, resume) with job_id/request_id attributes (nil = discard).
	Logger *slog.Logger

	// ReplicaID names this manager among the replicas sharing a
	// LeaseStore, enabling multi-replica mode: workers lease jobs
	// before running them (fenced writes, heartbeat renewal), a poller
	// mirrors the shared store and steals expired leases, and the
	// replica publishes presence records for /v1/stats. Required when
	// Store implements LeaseStore; ignored otherwise.
	ReplicaID string
	// LeaseTTL is how long a job lease lives without renewal before
	// other replicas may steal it (default 15s). Safety never depends
	// on it — fencing tokens do — only failover latency.
	LeaseTTL time.Duration
	// Heartbeat is the lease-renewal (and presence-publish) period
	// (default LeaseTTL/3). It must be shorter than LeaseTTL.
	Heartbeat time.Duration
	// PollInterval is how often the replica re-reads the shared store
	// for jobs submitted, advanced, or abandoned elsewhere (default 2s).
	PollInterval time.Duration
}

// Gates are deterministic lifecycle hooks that let tests pin a job at an
// exact execution point — for example, block inside Progress until a
// Cancel has landed, making cancel-while-running tests race-free. Each
// hook runs on the solving goroutine with no manager locks held, so a
// hook may block indefinitely (the job stays StateRunning) and may call
// back into the Manager. Install via Config.Gates before New; the hooks
// must not be changed afterwards.
type Gates struct {
	// Run fires at the start of every job body.
	Run func(id string)
	// Progress fires after every analyze binary-search progress update.
	Progress func(id string, iteration int)
	// Point fires after every completed sweep grid point.
	Point func(id string, pointsDone int)
}

func (c *Config) defaults() {
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.Workers == 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.TTL == 0 {
		c.TTL = DefaultTTL
	}
	if c.MaxFinished == 0 {
		c.MaxFinished = DefaultMaxFinished
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = DefaultEventBuffer
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = DefaultPollInterval
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
}

// Sentinel errors of the job API.
var (
	// ErrNotFound: no job with that id (possibly evicted).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrQueueFull: the queue is at Config.QueueLimit.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrClosed: the manager has shut down.
	ErrClosed = errors.New("jobs: manager is closed")
	// ErrNotResumable: Resume on a job that is not canceled or failed.
	ErrNotResumable = errors.New("jobs: job is not resumable")
	// ErrFinished: Cancel on a job that already reached a terminal state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrRemote: Cancel on a job currently leased by another replica
	// (multi-replica mode); cancel it on its owning replica.
	ErrRemote = errors.New("jobs: job is running on another replica")
)

// job is the manager-internal record. Immutable identity fields are set
// at construction; everything mutable is guarded by the manager's mutex.
type job struct {
	id        string
	kind      Kind
	priority  int
	seq       int64 // submit order; FIFO tiebreak within a priority
	requestID string
	analyze   *AnalyzeSpec
	sweep     *SweepSpec

	state       State
	submitted   time.Time
	started     *time.Time
	finished    *time.Time
	progress    Progress
	result      *AnalyzeResult
	sweepResult *SweepResult
	errMsg      string
	errCode     string
	interrupted bool
	resumes     int

	checkpoint      *selfishmining.Checkpoint
	sweepCK         []SweepPoint       // completed sweep points, in completion order
	cancel          context.CancelFunc // non-nil while running
	cancelRequested bool

	// Multi-replica state (all zero outside shared-LeaseStore mode).
	// lease is held from a worker's successful Acquire until finish;
	// while it is non-nil (or claiming is set) the poller leaves the
	// job alone — this replica's view is authoritative. leaseLost marks
	// a lease stolen or renewal-failed mid-run: the job body is being
	// canceled and nothing more may be persisted under the old token.
	lease     *Lease
	claiming  bool
	leaseLost bool
	// remoteOwner/remoteToken/remoteExpires mirror another replica's
	// lease for status display while the job runs elsewhere.
	remoteOwner   string
	remoteToken   uint64
	remoteExpires time.Time

	events   []Event
	firstSeq int64
	nextSeq  int64
	eventCh  chan struct{} // closed and replaced on every append
	heapIdx  int           // position in the queue heap (-1 when not queued)

	// persistMu orders store writes of this job without the manager-wide
	// mutex: snapshots are taken under m.mu (persistSeq stamps them), but
	// the O(states) checkpoint encoding and the disk write run under
	// persistMu only, and a snapshot older than what already landed
	// (persisted) is skipped.
	persistMu  sync.Mutex
	persistSeq int64 // under m.mu
	persisted  int64 // under persistMu
}

// logAttrs builds a job's standard log attributes — identity fields only,
// all immutable after construction, so callers need no lock — followed by
// any extra key/value pairs.
func (j *job) logAttrs(extra ...any) []any {
	attrs := []any{"job_id", j.id, "kind", string(j.kind)}
	if j.requestID != "" {
		attrs = append(attrs, "request_id", j.requestID)
	}
	return append(attrs, extra...)
}

// jobQueue is a priority queue: higher Priority first, submit order
// within a priority.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx, q[j].heapIdx = i, j
}
func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*q = old[:n-1]
	return j
}

// Manager runs jobs over a selfishmining.Service: a worker pool fed from
// the priority queue, durable records in a Store, per-job event logs for
// SSE, TTL retention, and checkpoint-resume for analyze jobs (see the
// package documentation). All methods are safe for concurrent use.
type Manager struct {
	svc *selfishmining.Service
	cfg Config
	log *slog.Logger

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	queue  jobQueue
	closed bool

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	seq       int64 // submit-order tiebreak, spans recovered and new jobs

	// ls is non-nil in multi-replica mode (Config.Store implements
	// LeaseStore); replicaStart timestamps this replica's presence;
	// lastBeat is the unix-nano timestamp of the last completed heartbeat
	// pass, read lock-free by Ready.
	ls           LeaseStore
	replicaStart time.Time
	lastBeat     atomic.Int64

	// Process-lifetime counters (guarded by mu; snapshot via Stats).
	submitted, started, completed, failed uint64
	canceled, resumed, evicted            uint64
	interruptedCount                      uint64
	// Lease-protocol counters (multi-replica mode).
	leasesAcquired, leasesRenewed, leasesReleased uint64
	leasesStolen, leasesLost, staleWrites         uint64

	// Test-only gates (installed via Config.Gates, or set directly by
	// in-package tests), set before any Submit and never changed: runGate
	// runs at the start of every job body, progressGate after every
	// analyze progress update, pointGate after every sweep point. All run
	// on the solving goroutine with no locks held, letting tests pin a
	// job at an exact lifecycle point.
	runGate      func(id string)
	progressGate func(id string, iteration int)
	pointGate    func(id string, pointsDone int)
}

// New builds a Manager over svc and recovers the store's records: finished
// jobs are re-indexed (visible to Get/List/Resume), queued jobs re-enter
// the queue, and jobs that were running when the previous process stopped
// are re-queued as interrupted — resuming from their persisted checkpoint
// if one was written (graceful shutdowns write one; crashes may not).
// Event logs are process-local, so recovered jobs start a fresh event
// sequence (SSE reconnects receive a status snapshot first).
func New(svc *selfishmining.Service, cfg Config) (*Manager, error) {
	if svc == nil {
		return nil, fmt.Errorf("jobs: New needs a selfishmining.Service")
	}
	cfg.defaults()
	ls, _ := cfg.Store.(LeaseStore)
	if ls != nil {
		if cfg.ReplicaID == "" {
			return nil, fmt.Errorf("jobs: a shared LeaseStore needs Config.ReplicaID")
		}
		if cfg.Heartbeat >= cfg.LeaseTTL {
			return nil, fmt.Errorf("jobs: heartbeat %v must be shorter than the lease TTL %v", cfg.Heartbeat, cfg.LeaseTTL)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		svc:          svc,
		cfg:          cfg,
		log:          cfg.Logger,
		ls:           ls,
		replicaStart: time.Now(),
		jobs:         make(map[string]*job),
		baseCtx:      ctx,
		cancelAll:    cancel,
	}
	if g := cfg.Gates; g != nil {
		m.runGate, m.progressGate, m.pointGate = g.Run, g.Progress, g.Point
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.recover(); err != nil {
		cancel()
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	if m.ls != nil {
		m.lastBeat.Store(time.Now().UnixNano())
		m.publishReplica()
		m.wg.Add(2)
		go m.heartbeat()
		go m.poll()
	}
	return m, nil
}

// Readiness errors: Ready wraps these with detail; match with errors.Is
// to tell a failing store apart from a stalled lease heartbeat.
var (
	// ErrStoreUnhealthy: the job store failed its health check.
	ErrStoreUnhealthy = errors.New("jobs: store unhealthy")
	// ErrHeartbeatStale: the lease heartbeat has not completed a pass
	// recently (multi-replica mode); leases held here may be stolen.
	ErrHeartbeatStale = errors.New("jobs: lease heartbeat stale")
)

// Ready reports whether the manager can accept and run jobs right now:
// not closed, the store passes its health check (when it has one), and —
// in multi-replica mode — the lease heartbeat has completed a pass within
// three periods. A nil error means ready; the error otherwise wraps
// ErrClosed, ErrStoreUnhealthy, or ErrHeartbeatStale so readiness
// endpoints can name the failing dependency.
func (m *Manager) Ready() error {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if hc, ok := m.cfg.Store.(HealthChecker); ok {
		if err := hc.Healthy(); err != nil {
			return fmt.Errorf("%w: %v", ErrStoreUnhealthy, err)
		}
	}
	if m.ls != nil {
		stale := time.Since(time.Unix(0, m.lastBeat.Load()))
		if stale > 3*m.cfg.Heartbeat {
			return fmt.Errorf("%w: last pass %v ago (period %v)",
				ErrHeartbeatStale, stale.Round(time.Millisecond), m.cfg.Heartbeat)
		}
	}
	return nil
}

// recover loads every stored record into the live index. In
// multi-replica mode, records running under another replica's live
// lease stay remote (the poller watches them); records whose lease
// lapsed — or that our own previous process held before crashing — are
// re-queued as interrupted steal candidates.
func (m *Manager) recover() error {
	recs, err := m.cfg.Store.List()
	if err != nil {
		return fmt.Errorf("jobs: recovering store: %w", err)
	}
	var leases map[string]Lease
	if m.ls != nil {
		if leases, err = m.ls.Leases(); err != nil {
			return fmt.Errorf("jobs: recovering leases: %w", err)
		}
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].SubmittedAt.Before(recs[k].SubmittedAt) })
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range recs {
		j := m.indexRecordLocked(rec)
		if j.state == StateRunning {
			if l, ok := leases[j.id]; ok && l.Owner != m.cfg.ReplicaID && !l.Expired(now) {
				// Running on a live replica right now: index read-only.
				j.remoteOwner, j.remoteToken, j.remoteExpires = l.Owner, l.Token, l.Expires
			} else {
				// The owning process died mid-run (single-replica mode, our
				// own pre-crash lease, or an expired foreign lease); whatever
				// checkpoint made it to the store is the resume point.
				if l, ok := leases[j.id]; ok && l.Owner != m.cfg.ReplicaID {
					m.leasesStolen++
				}
				j.state = StateQueued
				j.interrupted = true
				j.started = nil
			}
		}
		if j.state == StateQueued && j.interrupted {
			// Re-queued across a restart — by the crash path above or by a
			// previous graceful shutdown — lands in this process's counter.
			m.interruptedCount++
		}
		if j.state == StateQueued {
			heap.Push(&m.queue, j)
		}
		// Every live job carries at least one event (the event ring is
		// process-local), so event streams have a well-defined replay start.
		m.emitStatusLocked(j)
		if m.ls == nil {
			// Startup runs single-threaded; writing inline under the lock is
			// harmless here. Replicas sharing a store skip the re-persist:
			// their copy is not authoritative (the crash-conversion above is
			// a local decision until a worker's Acquire makes it real).
			m.persistFnLocked(j)()
		}
	}
	return nil
}

// indexRecordLocked builds the in-memory job for a stored record and
// adds it to the live index; queue membership and lease display are the
// caller's decisions.
func (m *Manager) indexRecordLocked(rec *Record) *job {
	ck, err := rec.Checkpoint.decode()
	if err != nil {
		// A checkpoint that fails to decode costs the warm resume, not
		// the job: it re-runs cold with the identical result.
		ck = nil
	}
	m.seq++
	j := &job{
		id: rec.ID, kind: rec.Kind, priority: rec.Priority, seq: m.seq,
		requestID: rec.RequestID,
		analyze:   rec.Analyze, sweep: rec.Sweep,
		state: rec.State, submitted: rec.SubmittedAt,
		started: rec.StartedAt, finished: rec.FinishedAt,
		progress: rec.Progress,
		result:   rec.Result, sweepResult: rec.SweepResult,
		errMsg: rec.Error, errCode: rec.ErrorCode,
		interrupted: rec.Interrupted, resumes: rec.Resumes,
		checkpoint: ck,
		// Copy: the job appends to sweepCK as it runs, and stored
		// records must stay immutable.
		sweepCK: append([]SweepPoint(nil), rec.SweepCheckpoint...),
		eventCh: make(chan struct{}),
		heapIdx: -1,
		// Event numbering continues where the previous process left
		// off, so pre-restart Last-Event-ID cursors never alias into
		// this process's events — they fall before the (empty) ring and
		// are made whole with a status snapshot.
		firstSeq: rec.EventSeq,
		nextSeq:  rec.EventSeq,
	}
	m.jobs[j.id] = j
	return j
}

// newID generates a collision-resistant job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id bytes: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates the request, enqueues the job and returns its initial
// snapshot. Sweep specs are normalized first (defaults filled, every grid
// point validated), so the returned spec says exactly what will run.
func (m *Manager) Submit(req Request) (*Status, error) {
	j := &job{
		id: newID(), priority: req.Priority, requestID: req.RequestID,
		state: StateQueued, submitted: time.Now(),
		eventCh: make(chan struct{}), heapIdx: -1,
	}
	switch req.Kind {
	case KindAnalyze:
		if req.Analyze == nil || req.Sweep != nil {
			return nil, fmt.Errorf("jobs: kind %q needs exactly the analyze spec", req.Kind)
		}
		spec := *req.Analyze
		if err := spec.validate(); err != nil {
			return nil, err
		}
		j.kind, j.analyze = KindAnalyze, &spec
		j.progress = Progress{BetaLow: 0, BetaUp: 1}
	case KindSweep:
		if req.Sweep == nil || req.Analyze != nil {
			return nil, fmt.Errorf("jobs: kind %q needs exactly the sweep spec", req.Kind)
		}
		spec := *req.Sweep
		if err := spec.Normalize(); err != nil {
			return nil, err
		}
		j.kind, j.sweep = KindSweep, &spec
		j.progress = Progress{PointsTotal: spec.points()}
	default:
		return nil, fmt.Errorf("jobs: unknown job kind %q (want %q or %q)", req.Kind, KindAnalyze, KindSweep)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.queue) >= m.cfg.QueueLimit {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	evicted := m.evictLocked(time.Now()) // opportunistic retention pass
	m.seq++
	j.seq = m.seq
	m.submitted++
	m.jobs[j.id] = j
	heap.Push(&m.queue, j)
	m.emitStatusLocked(j)
	persist := m.persistFnLocked(j)
	st := m.statusLocked(j)
	m.cond.Signal()
	m.mu.Unlock()
	for _, id := range evicted {
		_ = m.cfg.Store.Delete(id)
	}
	m.log.Info("job submitted", j.logAttrs("priority", j.priority)...)
	persist()
	return st, nil
}

// Get returns a job's current snapshot.
func (m *Manager) Get(id string) (*Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// Filter narrows List and Page.
type Filter struct {
	// State / Kind keep only matching jobs when non-empty.
	State State
	Kind  Kind
	// Limit caps the snapshots Page returns (0 = no cap).
	Limit int
	// Cursor resumes a paged listing where the previous page's
	// NextCursor left off ("" = from the start). Cursors are opaque;
	// Page rejects ones it did not issue with ErrBadCursor.
	Cursor string
}

// ErrBadCursor: Page was handed a cursor it did not issue.
var ErrBadCursor = errors.New("jobs: malformed list cursor")

// List returns snapshots of every retained job (newest submission first),
// optionally filtered. Filter's pagination fields are ignored — use Page.
func (m *Manager) List(f Filter) []*Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.listLocked(f)
}

// Page returns one page of the filtered listing plus the cursor for the
// next page ("" when this page reaches the end). The ordering is the
// stable List ordering — newest submission first, ID as tiebreak — and
// cursors key on (submitted_at, id), so a page boundary survives jobs
// being submitted or evicted between calls.
func (m *Manager) Page(f Filter) ([]*Status, string, error) {
	after, ok := decodeCursor(f.Cursor)
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", ErrBadCursor, f.Cursor)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	all := m.listLocked(f)
	start := 0
	if f.Cursor != "" {
		// The first item strictly after the cursor position in the
		// (SubmittedAt desc, ID desc) ordering.
		for start < len(all) {
			st := all[start]
			if st.SubmittedAt.Before(after.submitted) ||
				(st.SubmittedAt.Equal(after.submitted) && st.ID < after.id) {
				break
			}
			start++
		}
	}
	all = all[start:]
	next := ""
	if f.Limit > 0 && len(all) > f.Limit {
		all = all[:f.Limit]
		last := all[len(all)-1]
		next = encodeCursor(cursorPos{submitted: last.SubmittedAt, id: last.ID})
	}
	return all, next, nil
}

// listLocked builds the sorted, filtered listing.
func (m *Manager) listLocked(f Filter) []*Status {
	out := make([]*Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		if f.State != "" && j.state != f.State {
			continue
		}
		if f.Kind != "" && j.kind != f.Kind {
			continue
		}
		out = append(out, m.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].SubmittedAt.Equal(out[k].SubmittedAt) {
			return out[i].SubmittedAt.After(out[k].SubmittedAt)
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// cursorPos is a page boundary: the last returned item's position in
// the stable listing order.
type cursorPos struct {
	submitted time.Time
	id        string
}

// encodeCursor packs the position into an opaque URL-safe token.
func encodeCursor(p cursorPos) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(fmt.Sprintf("%d|%s", p.submitted.UnixNano(), p.id)))
}

// decodeCursor unpacks a cursor ("" decodes to the zero position).
func decodeCursor(s string) (cursorPos, bool) {
	if s == "" {
		return cursorPos{}, true
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return cursorPos{}, false
	}
	nanos, id, ok := strings.Cut(string(raw), "|")
	if !ok || id == "" {
		return cursorPos{}, false
	}
	n, err := strconv.ParseInt(nanos, 10, 64)
	if err != nil {
		return cursorPos{}, false
	}
	return cursorPos{submitted: time.Unix(0, n), id: id}, true
}

// Cancel stops a job: a queued job is canceled immediately; a running job
// has its context canceled and transitions once the solve observes it at
// the next deterministic checkpoint (its latest binary-search checkpoint
// is persisted for Resume). Cancel of an already-canceled job is
// idempotent; other terminal states return ErrFinished.
func (m *Manager) Cancel(id string) (*Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	persist := func() {}
	switch j.state {
	case StateQueued:
		if j.heapIdx >= 0 {
			heap.Remove(&m.queue, j.heapIdx)
		}
		now := time.Now()
		j.state = StateCanceled
		j.finished = &now
		j.errMsg = "canceled while queued"
		j.errCode = "canceled"
		m.canceled++
		terminalSeconds.Observe(now.Sub(j.submitted).Seconds())
		m.emitStatusLocked(j)
		persist = m.persistFnLocked(j)
		m.log.Info("job canceled while queued", j.logAttrs()...)
	case StateRunning:
		if m.ls != nil && j.lease == nil && !j.claiming {
			// Leased by another replica: its context is out of our reach.
			owner := j.remoteOwner
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %s is leased by %q", ErrRemote, id, owner)
		}
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	case StateCanceled:
		// Idempotent.
	default:
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrFinished, id, j.state)
	}
	st := m.statusLocked(j)
	m.mu.Unlock()
	persist()
	return st, nil
}

// Resume re-enqueues a canceled or failed job. An analyze job with a
// persisted checkpoint replays Algorithm 1 from it, with a result bitwise
// identical to an uninterrupted solve; without one (canceled while queued,
// or a crash before any step completed) it simply runs from the start. A
// resumed sweep replays every point of its per-point checkpoint verbatim
// (no solves) and computes only the points the interrupted run never
// reached — including the refined midpoints of an adaptive sweep — again
// bitwise identical to an uninterrupted run, even across a process
// restart through a DiskStore.
func (m *Manager) Resume(id string) (*Status, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.state != StateCanceled && j.state != StateFailed {
		st := j.state
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrNotResumable, id, st)
	}
	if len(m.queue) >= m.cfg.QueueLimit {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	j.state = StateQueued
	j.started, j.finished = nil, nil
	j.errMsg, j.errCode = "", ""
	j.interrupted = false
	j.cancelRequested = false
	j.resumes++
	m.resumed++
	heap.Push(&m.queue, j)
	m.emitStatusLocked(j)
	persist := m.persistFnLocked(j)
	st := m.statusLocked(j)
	m.cond.Signal()
	m.mu.Unlock()
	m.log.Info("job resumed", j.logAttrs("resumes", st.Resumes)...)
	persist()
	return st, nil
}

// Events returns the job's buffered events with Seq > after (pass -1 to
// replay from the start), blocking until at least one is available, the
// job is terminal with nothing newer (returning an empty slice — the
// stream is over), or ctx ends. When after predates the event ring (an
// SSE reconnect after a long gap) or postdates it (a cursor from before a
// manager restart — event logs are process-local), the slice leads with a
// synthetic status snapshot so the consumer is made whole before the
// replay continues.
func (m *Manager) Events(ctx context.Context, id string, after int64) ([]Event, error) {
	for {
		m.mu.Lock()
		j, ok := m.jobs[id]
		if !ok {
			m.mu.Unlock()
			return nil, ErrNotFound
		}
		evs := m.eventsSinceLocked(j, after)
		terminal := j.state.Terminal()
		ch := j.eventCh
		m.mu.Unlock()
		if len(evs) > 0 || terminal {
			return evs, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// eventsSinceLocked collects buffered events with Seq > after, resetting
// stale or trimmed-past cursors with a leading status snapshot (whose Seq
// is one before the oldest replayed event, or negative — "no id" on the
// wire — when the replay starts at 0).
func (m *Manager) eventsSinceLocked(j *job, after int64) []Event {
	var evs []Event
	if after >= j.nextSeq {
		// A cursor this process never issued (pre-restart stream): replay
		// from the beginning.
		after = -1
	}
	if after < j.firstSeq-1 {
		// The ring was trimmed past the cursor: lead with a snapshot.
		evs = append(evs, Event{Seq: j.firstSeq - 1, Type: "status", Status: m.statusLocked(j)})
		after = j.firstSeq - 1
	}
	for _, ev := range j.events {
		if ev.Seq > after {
			evs = append(evs, ev)
		}
	}
	return evs
}

// Close shuts the manager down: no new submissions, queued jobs stay
// queued in the store, and running jobs are interrupted at their next
// deterministic checkpoint and re-queued with their latest checkpoint
// persisted — a Manager reopened over the same store resumes them with
// bitwise-identical results. Close waits for the workers to finish
// checkpointing, up to ctx's deadline.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.closed = true
	// Cancel in-flight job contexts before releasing the lock, so once any
	// caller observes ErrClosed the interruption is already in motion.
	m.cancelAll()
	m.cond.Broadcast()
	m.mu.Unlock()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown incomplete: %w", ctx.Err())
	}
}

// worker pulls jobs off the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.queue).(*job)
		if m.ls != nil && !m.claimLocked(j) {
			continue
		}
		now := time.Now()
		wait := now.Sub(j.submitted)
		j.state = StateRunning
		j.started = &now
		// Sweep progress is incremental (OnPoint counts up), so a re-run —
		// resume or post-shutdown re-queue — restarts the counter; analyze
		// progress is absolute and overwrites itself.
		if j.kind == KindSweep {
			j.progress.PointsDone = 0
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.cancel = cancel
		m.started++
		m.emitStatusLocked(j)
		persist := m.persistFnLocked(j)
		m.mu.Unlock()

		queueWaitSeconds.Observe(wait.Seconds())
		m.log.Info("job started", j.logAttrs("queue_wait", wait.Seconds())...)
		persist()
		m.run(ctx, j)
		cancel()

		m.mu.Lock()
	}
}

// claimLocked acquires the shared-store lease for a just-popped job,
// releasing m.mu around the store I/O (claiming keeps the poller away
// meanwhile). It returns false when the job must not run here — the
// lease is held elsewhere, the store failed, or the job was canceled
// while we acquired — leaving the job off the local queue; the poller
// re-evaluates it on its next pass. On success the freshest stored
// snapshot is adopted before running: a stolen job resumes from the
// previous owner's last fenced write, which the store's locking
// guarantees is final once our Acquire bumped the token.
func (m *Manager) claimLocked(j *job) bool {
	j.claiming = true
	m.mu.Unlock()
	lease, err := m.ls.Acquire(j.id, m.cfg.ReplicaID, m.cfg.LeaseTTL)
	var fresh *Record
	if err == nil {
		if rec, ok, gerr := m.ls.Get(j.id); gerr == nil && ok {
			fresh = rec
		}
	}
	m.mu.Lock()
	j.claiming = false
	if err != nil {
		return false
	}
	release := func() {
		m.mu.Unlock()
		_ = m.ls.Release(lease)
		m.mu.Lock()
	}
	if j.state != StateQueued {
		// Canceled (or otherwise moved on) while we were acquiring.
		release()
		return false
	}
	if fresh != nil && fresh.State.Terminal() {
		// Another replica finished the job after our local copy went
		// stale; adopt its outcome instead of re-running.
		if m.adoptRecordLocked(j, fresh) {
			m.emitStatusLocked(j)
		}
		release()
		return false
	}
	m.leasesAcquired++
	j.lease = &lease
	j.leaseLost = false
	j.remoteOwner, j.remoteToken = "", 0
	j.remoteExpires = time.Time{}
	if fresh != nil {
		// Adopt checkpoints only — lifecycle fields are about to be
		// rewritten by the run itself.
		if ck, err := fresh.Checkpoint.decode(); err == nil && ck != nil {
			j.checkpoint = ck
		}
		if len(fresh.SweepCheckpoint) > len(j.sweepCK) {
			j.sweepCK = append([]SweepPoint(nil), fresh.SweepCheckpoint...)
		}
		if fresh.Resumes > j.resumes {
			j.resumes = fresh.Resumes
		}
		if fresh.Interrupted {
			j.interrupted = true
		}
	}
	return true
}

// adoptRecordLocked replaces the job's mutable state with another
// replica's persisted snapshot, reporting whether the lifecycle state
// changed. Only jobs this replica does not lease are adopted — the
// store is authoritative for them.
func (m *Manager) adoptRecordLocked(j *job, rec *Record) (stateChanged bool) {
	stateChanged = j.state != rec.State
	j.state = rec.State
	j.priority = rec.Priority
	j.progress = rec.Progress
	j.result, j.sweepResult = rec.Result, rec.SweepResult
	j.errMsg, j.errCode = rec.Error, rec.ErrorCode
	j.interrupted = rec.Interrupted
	j.resumes = rec.Resumes
	j.started, j.finished = rec.StartedAt, rec.FinishedAt
	if ck, err := rec.Checkpoint.decode(); err == nil {
		j.checkpoint = ck
	}
	j.sweepCK = append([]SweepPoint(nil), rec.SweepCheckpoint...)
	return stateChanged
}

// sweepSeenKey identifies one attack-curve point of a sweep checkpoint:
// the attack configuration plus the exact bit pattern of p (the bitwise
// determinism contract is what makes exact float matching sound).
type sweepSeenKey struct {
	depth, forks int
	pbits        uint64
}

// run executes one job body (no locks held) and records the outcome.
func (m *Manager) run(ctx context.Context, j *job) {
	if m.runGate != nil {
		m.runGate(j.id)
	}
	switch j.kind {
	case KindAnalyze:
		m.mu.Lock()
		resume := j.checkpoint
		m.mu.Unlock()
		opts := j.analyze.options()
		opts = append(opts,
			selfishmining.WithProgress(func(lo, up float64, iter int) {
				m.mu.Lock()
				j.progress.BetaLow, j.progress.BetaUp, j.progress.Iterations = lo, up, iter
				m.emitLocked(j, Event{Type: "progress", Progress: cloneProgress(j.progress)})
				m.mu.Unlock()
				if m.progressGate != nil {
					m.progressGate(j.id, iter)
				}
			}),
			selfishmining.WithCheckpoints(func(ck selfishmining.Checkpoint) {
				m.mu.Lock()
				defer m.mu.Unlock()
				j.checkpoint = &ck
				j.progress.Sweeps = ck.Sweeps
			}),
		)
		if resume != nil {
			opts = append(opts, selfishmining.WithResume(resume))
		}
		res, err := m.svc.AnalyzeContext(ctx, j.analyze.Params(), opts...)
		var out *AnalyzeResult
		if err == nil {
			out = analyzeResult(res)
		}
		m.finish(j, err, func() {
			j.result = out
			j.progress.Iterations = out.Iterations
			j.progress.Sweeps = out.Sweeps
			j.progress.BetaLow, j.progress.BetaUp = out.ERRev, out.ERRevUpper
		})
	case KindSweep:
		opts := j.sweep.options()
		// Feed the per-point checkpoint back as a resume set, and index it
		// so re-emitted (replayed) points are not re-appended below. The
		// key matches selfishmining's resume lookup: attack configuration
		// plus the exact bit pattern of p.
		m.mu.Lock()
		seen := make(map[sweepSeenKey]bool, len(j.sweepCK))
		if len(j.sweepCK) > 0 {
			resume := &selfishmining.SweepCheckpoint{
				Points: make([]selfishmining.SweepPoint, 0, len(j.sweepCK)),
			}
			for _, sp := range j.sweepCK {
				seen[sweepSeenKey{sp.Depth, sp.Forks, math.Float64bits(sp.P)}] = true
				resume.Points = append(resume.Points, selfishmining.SweepPoint{
					Config: selfishmining.AttackConfig{Depth: sp.Depth, Forks: sp.Forks},
					Series: sp.Series,
					PIndex: sp.PIndex, P: sp.P, Gamma: j.sweep.Gamma,
					Depth: sp.RefineDepth, ERRev: sp.ERRev, Sweeps: sp.Sweeps,
				})
			}
			opts.Resume = resume
		}
		m.mu.Unlock()
		opts.OnPoint = func(pt selfishmining.SweepPoint) {
			m.mu.Lock()
			j.progress.PointsDone++
			done := j.progress.PointsDone
			sp := SweepPoint{
				Series: pt.Series, Depth: pt.Config.Depth, Forks: pt.Config.Forks,
				PIndex: pt.PIndex, P: pt.P, RefineDepth: pt.Depth,
				ERRev: pt.ERRev, Sweeps: pt.Sweeps,
			}
			m.emitLocked(j, Event{Type: "point", Progress: cloneProgress(j.progress), Point: &sp})
			persist := func() {}
			if k := (sweepSeenKey{sp.Depth, sp.Forks, math.Float64bits(sp.P)}); !seen[k] {
				seen[k] = true
				j.sweepCK = append(j.sweepCK, sp)
				// Persist per completed point: a cancel, crash, or shutdown
				// at any moment loses at most the points still in flight.
				persist = m.persistFnLocked(j)
			}
			m.mu.Unlock()
			persist()
			if m.pointGate != nil {
				m.pointGate(j.id, done)
			}
		}
		fig, err := m.svc.SweepContext(ctx, opts)
		var out *SweepResult
		if err == nil {
			out = sweepResult(fig)
		}
		m.finish(j, err, func() { j.sweepResult = out })
	}
}

// finish classifies a job body's outcome and records the transition.
// onDone installs the result under the lock when err is nil.
func (m *Manager) finish(j *job, err error, onDone func()) {
	m.mu.Lock()
	j.cancel = nil
	now := time.Now()
	started := j.started
	if j.leaseLost {
		// The lease was stolen or its renewal failed mid-run: the job
		// belongs to another replica now and our fencing token is dead,
		// so nothing we computed may be persisted or released. Surrender
		// the local copy — back to queued, off our heap — and let the
		// poller adopt the store's authoritative state on its next pass.
		j.lease = nil
		j.leaseLost = false
		j.state = StateQueued
		j.started = nil
		j.interrupted = true
		m.emitStatusLocked(j)
		m.mu.Unlock()
		m.log.Warn("job surrendered after lease loss", j.logAttrs()...)
		return
	}
	switch {
	case err == nil:
		j.state = StateDone
		j.finished = &now
		j.checkpoint = nil // a finished search has nothing to resume
		j.sweepCK = nil
		onDone()
		m.completed++
	case errors.Is(err, selfishmining.ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.cancelRequested || !m.closed {
			// Canceled by Cancel (or an unexpected context end while the
			// manager is live): terminal, resumable from the checkpoint.
			j.state = StateCanceled
			j.finished = &now
			j.errMsg = err.Error()
			j.errCode = "canceled"
			m.canceled++
		} else {
			// Graceful shutdown: checkpoint and hand the job to the next
			// process instead of discarding the work.
			j.state = StateQueued
			j.started = nil
			j.interrupted = true
			m.interruptedCount++
		}
	default:
		j.state = StateFailed
		j.finished = &now
		j.errMsg = err.Error()
		j.errCode = "solver"
		m.failed++
	}
	if j.state.Terminal() {
		if started != nil {
			runSeconds.Observe(now.Sub(*started).Seconds())
		}
		terminalSeconds.Observe(now.Sub(j.submitted).Seconds())
	}
	state, errMsg := j.state, j.errMsg
	m.emitStatusLocked(j)
	persist := m.persistFnLocked(j)
	var release *Lease
	if j.lease != nil {
		// The final snapshot above still writes under the lease's fence;
		// only then is the lease released so another replica can claim
		// (Resume, or the post-shutdown re-queue) and read that snapshot.
		l := *j.lease
		release = &l
		j.lease = nil
	}
	m.mu.Unlock()
	if state.Terminal() {
		attrs := j.logAttrs("state", string(state))
		if errMsg != "" {
			attrs = append(attrs, "error", errMsg)
		}
		m.log.Info("job finished", attrs...)
	} else {
		m.log.Info("job interrupted by shutdown, re-queued", j.logAttrs()...)
	}
	persist()
	if release != nil {
		if m.ls.Release(*release) == nil {
			m.mu.Lock()
			m.leasesReleased++
			m.mu.Unlock()
		}
	}
}

// janitor evicts expired jobs periodically.
func (m *Manager) janitor() {
	defer m.wg.Done()
	if m.cfg.TTL < 0 && m.cfg.MaxFinished < 0 {
		return
	}
	period := m.cfg.TTL / 4
	if period < time.Second {
		period = time.Second
	}
	if period > time.Minute {
		period = time.Minute
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			m.mu.Lock()
			evicted := m.evictLocked(time.Now())
			m.mu.Unlock()
			for _, id := range evicted {
				_ = m.cfg.Store.Delete(id)
			}
		case <-m.baseCtx.Done():
			return
		}
	}
}

// heartbeat renews this replica's held leases and republishes its
// presence record every Config.Heartbeat (multi-replica mode only).
func (m *Manager) heartbeat() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			m.renewLeases()
			m.publishReplica()
			m.lastBeat.Store(time.Now().UnixNano())
		case <-m.baseCtx.Done():
			return
		}
	}
}

// renewLeases extends every held lease by the configured TTL. A renewal
// rejected with ErrLeaseLost means the job was stolen (our process
// stalled past the TTL): the job body is canceled and its writes are
// fenced from here on. Other store errors are retried on the next beat
// — the lease stays valid until its TTL actually lapses.
func (m *Manager) renewLeases() {
	m.mu.Lock()
	held := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if j.lease != nil && !j.leaseLost {
			held = append(held, j)
		}
	}
	m.mu.Unlock()
	for _, j := range held {
		m.mu.Lock()
		if j.lease == nil || j.leaseLost {
			m.mu.Unlock()
			continue
		}
		l := *j.lease
		m.mu.Unlock()
		nl, err := m.ls.Renew(l, m.cfg.LeaseTTL)
		m.mu.Lock()
		if j.lease != nil && j.lease.Token == l.Token {
			switch {
			case err == nil:
				j.lease = &nl
				m.leasesRenewed++
			case errors.Is(err, ErrLeaseLost):
				m.noteLeaseLostLocked(j)
			}
		}
		m.mu.Unlock()
	}
}

// noteLeaseLostLocked marks a running job's lease as lost and cancels
// its body; finish surrenders the job without persisting.
func (m *Manager) noteLeaseLostLocked(j *job) {
	if j.leaseLost {
		return
	}
	j.leaseLost = true
	m.leasesLost++
	if j.cancel != nil {
		j.cancel()
	}
}

// publishReplica upserts this replica's presence record (best effort).
func (m *Manager) publishReplica() {
	m.mu.Lock()
	info := ReplicaInfo{
		Replica:    m.cfg.ReplicaID,
		PID:        os.Getpid(),
		StartedAt:  m.replicaStart,
		UpdatedAt:  time.Now(),
		QueueDepth: len(m.queue),
		Leases: LeaseStats{
			Acquired: m.leasesAcquired, Renewed: m.leasesRenewed,
			Released: m.leasesReleased, Stolen: m.leasesStolen,
			Lost: m.leasesLost, StaleWrites: m.staleWrites,
		},
	}
	for _, j := range m.jobs {
		if j.state == StateRunning && j.lease != nil {
			info.Running++
		}
	}
	m.mu.Unlock()
	_ = m.ls.PublishReplica(info)
}

// poll mirrors the shared store every Config.PollInterval: jobs
// submitted on other replicas join the local index and queue, remote
// progress and terminal transitions are adopted (feeding local event
// streams), expired leases are stolen, and records evicted elsewhere
// are dropped (multi-replica mode only).
func (m *Manager) poll() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			m.pollOnce()
		case <-m.baseCtx.Done():
			return
		}
	}
}

// pollOnce is one mirror pass over the shared store.
func (m *Manager) pollOnce() {
	recs, err := m.ls.List()
	if err != nil {
		return
	}
	leases, err := m.ls.Leases()
	if err != nil {
		return
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	wake := 0
	seen := make(map[string]struct{}, len(recs))
	for _, rec := range recs {
		seen[rec.ID] = struct{}{}
		j, ok := m.jobs[rec.ID]
		if !ok {
			// A job first seen through the store (submitted elsewhere).
			j = m.indexRecordLocked(rec)
			if j.state == StateRunning {
				if l, lok := leases[j.id]; lok && l.Owner != m.cfg.ReplicaID && !l.Expired(now) {
					j.remoteOwner, j.remoteToken, j.remoteExpires = l.Owner, l.Token, l.Expires
				} else {
					m.stealLocked(j, leases[j.id])
				}
			}
			if j.state == StateQueued && j.heapIdx < 0 {
				heap.Push(&m.queue, j)
				wake++
			}
			m.emitStatusLocked(j)
			continue
		}
		if j.lease != nil || j.claiming {
			continue // ours right now: our fenced writes are authoritative
		}
		m.refreshLocked(j, rec, leases, now, &wake)
	}
	for id, j := range m.jobs {
		if _, ok := seen[id]; ok || j.lease != nil || j.claiming {
			continue
		}
		// Gone from the store. Terminal jobs were evicted by another
		// replica's janitor; a running record can vanish only after
		// finishing (then evicting) elsewhere, so absent a live lease it
		// is gone too. Locally queued jobs are kept: their Put may still
		// be in flight.
		_, live := leases[id]
		if j.state.Terminal() || (j.state == StateRunning && !live) {
			if j.heapIdx >= 0 {
				heap.Remove(&m.queue, j.heapIdx)
			}
			m.dropLocked(j)
		}
	}
	for ; wake > 0; wake-- {
		m.cond.Signal()
	}
}

// refreshLocked folds another replica's persisted snapshot into the
// local copy of a job this replica does not lease, then fixes up queue
// membership and lease display for the adopted state.
func (m *Manager) refreshLocked(j *job, rec *Record, leases map[string]Lease, now time.Time, wake *int) {
	if rec.State == StateRunning && j.state == StateQueued && j.heapIdx >= 0 {
		if l, ok := leases[j.id]; !ok || l.Expired(now) {
			// The record is the dead owner's last write and we already
			// queued the job as a steal candidate — keep our view.
			return
		}
	}
	changed := j.state != rec.State || j.progress != rec.Progress ||
		j.errMsg != rec.Error || j.resumes != rec.Resumes ||
		j.interrupted != rec.Interrupted || len(j.sweepCK) != len(rec.SweepCheckpoint)
	stateChanged, progressChanged := j.state != rec.State, j.progress != rec.Progress
	if changed {
		m.adoptRecordLocked(j, rec)
	}
	switch j.state {
	case StateQueued:
		j.remoteOwner, j.remoteToken = "", 0
		j.remoteExpires = time.Time{}
		if j.heapIdx < 0 {
			heap.Push(&m.queue, j)
			*wake++
		}
	case StateRunning:
		if l, ok := leases[j.id]; ok && !l.Expired(now) {
			// Claimed (or still held) elsewhere: mirror the lease and make
			// sure we are not also racing to run it.
			if j.heapIdx >= 0 {
				heap.Remove(&m.queue, j.heapIdx)
			}
			j.remoteOwner, j.remoteToken, j.remoteExpires = l.Owner, l.Token, l.Expires
		} else if j.heapIdx < 0 {
			// The lease lapsed: steal. The worker's Acquire is the real
			// claim; replicas racing here converge on one winner.
			m.stealLocked(j, leases[j.id])
			heap.Push(&m.queue, j)
			*wake++
			stateChanged = true
		}
	default: // terminal
		j.remoteOwner, j.remoteToken = "", 0
		j.remoteExpires = time.Time{}
		if j.heapIdx >= 0 {
			heap.Remove(&m.queue, j.heapIdx)
		}
	}
	if stateChanged {
		m.emitStatusLocked(j)
	} else if progressChanged {
		m.emitLocked(j, Event{Type: "progress", Progress: cloneProgress(j.progress)})
	}
}

// stealLocked converts a running record whose lease lapsed into a
// locally queued, interrupted steal candidate. Only a worker's Acquire
// makes the steal real — it bumps the fencing token, so however many
// replicas convert concurrently, exactly one becomes the new owner and
// the old owner's unfinished writes are rejected.
func (m *Manager) stealLocked(j *job, l Lease) {
	j.state = StateQueued
	j.started = nil
	j.interrupted = true
	m.interruptedCount++
	if l.Owner != "" && l.Owner != m.cfg.ReplicaID {
		m.leasesStolen++
		m.log.Warn("stealing expired lease", j.logAttrs("prev_owner", l.Owner)...)
	}
	j.remoteOwner, j.remoteToken = "", 0
	j.remoteExpires = time.Time{}
}

// evictLocked applies the retention policy — finished jobs past TTL go,
// then oldest-finished beyond MaxFinished — and returns the evicted ids.
// The store deletes are the CALLER's job, after releasing m.mu: like
// persistFnLocked's writes, store I/O must not stall the manager-wide
// mutex (a big eviction pass would otherwise block every progress hook
// and API call). A pending persist racing an eviction is harmless in
// practice: eviction fires at least a TTL after the job's last
// transition, long after its final snapshot landed.
func (m *Manager) evictLocked(now time.Time) (evicted []string) {
	var finished []*job
	for _, j := range m.jobs {
		if !j.state.Terminal() || j.finished == nil {
			continue
		}
		if m.cfg.TTL >= 0 && now.Sub(*j.finished) > m.cfg.TTL {
			evicted = append(evicted, m.dropLocked(j))
			continue
		}
		finished = append(finished, j)
	}
	if m.cfg.MaxFinished >= 0 && len(finished) > m.cfg.MaxFinished {
		sort.Slice(finished, func(i, k int) bool { return finished[i].finished.Before(*finished[k].finished) })
		for _, j := range finished[:len(finished)-m.cfg.MaxFinished] {
			evicted = append(evicted, m.dropLocked(j))
		}
	}
	return evicted
}

// dropLocked removes the job from the live index (the caller deletes its
// store record) and returns its id.
func (m *Manager) dropLocked(j *job) string {
	delete(m.jobs, j.id)
	m.evicted++
	// Wake any event stream still attached so it observes ErrNotFound.
	close(j.eventCh)
	j.eventCh = make(chan struct{})
	return j.id
}

// emitStatusLocked appends a lifecycle event.
func (m *Manager) emitStatusLocked(j *job) {
	m.emitLocked(j, Event{Type: "status", Status: m.statusLocked(j)})
}

// emitLocked appends ev to the job's ring and wakes waiting streams.
func (m *Manager) emitLocked(j *job, ev Event) {
	ev.Seq = j.nextSeq
	j.nextSeq++
	j.events = append(j.events, ev)
	if over := len(j.events) - m.cfg.EventBuffer; over > 0 {
		j.events = append(j.events[:0], j.events[over:]...)
		j.firstSeq += int64(over)
	}
	close(j.eventCh)
	j.eventCh = make(chan struct{})
}

// cloneProgress snapshots the progress for an event payload.
func cloneProgress(p Progress) *Progress { cp := p; return &cp }

// statusLocked snapshots a job's public view.
func (m *Manager) statusLocked(j *job) *Status {
	st := &Status{
		ID: j.id, Kind: j.kind, State: j.state, Priority: j.priority,
		RequestID: j.requestID,
		Analyze:   j.analyze, Sweep: j.sweep,
		Progress: j.progress,
		Result:   j.result, SweepResult: j.sweepResult,
		Error: j.errMsg, ErrorCode: j.errCode,
		HasCheckpoint: j.checkpoint != nil || len(j.sweepCK) > 0,
		Interrupted:   j.interrupted,
		Resumes:       j.resumes,
		SubmittedAt:   j.submitted,
	}
	if j.started != nil {
		t := *j.started
		st.StartedAt = &t
	}
	if j.finished != nil {
		t := *j.finished
		st.FinishedAt = &t
	}
	if j.lease != nil {
		st.Owner = j.lease.Owner
		st.LeaseToken = j.lease.Token
		t := j.lease.Expires
		st.LeaseExpires = &t
	} else if j.remoteOwner != "" {
		st.Owner = j.remoteOwner
		st.LeaseToken = j.remoteToken
		t := j.remoteExpires
		st.LeaseExpires = &t
	}
	return st
}

// persistFnLocked snapshots the job's durable state under m.mu and
// returns the write to run AFTER the manager lock is released: the
// O(states) checkpoint encoding and the store I/O must not stall every
// other job's progress hooks and every API call on m.mu. Per-job ordering
// is kept by persistMu + the persistSeq stamp — a snapshot that lost the
// race to a newer one is skipped, so the store always converges on the
// latest state. Store failures are deliberately non-fatal to the job
// itself (the in-memory record stays authoritative); a broken disk
// surfaces on restart, not mid-solve.
func (m *Manager) persistFnLocked(j *job) func() {
	rec := &Record{Status: *m.statusLocked(j), EventSeq: j.nextSeq}
	ck := j.checkpoint // replaced wholesale, never mutated: safe to share
	// sweepCK is append-only while the job runs, so a capacity-clamped
	// prefix is a stable snapshot even as later points land.
	rec.SweepCheckpoint = j.sweepCK[:len(j.sweepCK):len(j.sweepCK)]
	j.persistSeq++
	seq := j.persistSeq
	// Snapshot the lease with the record: the write must be fenced by
	// the token the job held when this state was current, not whatever
	// it holds when the write finally runs.
	var lease *Lease
	if j.lease != nil && !j.leaseLost {
		l := *j.lease
		lease = &l
	}
	return func() {
		j.persistMu.Lock()
		defer j.persistMu.Unlock()
		if seq <= j.persisted {
			return // a newer snapshot already landed
		}
		rec.Checkpoint = encodeCheckpoint(ck)
		var err error
		if lease != nil {
			err = m.ls.PutLeased(rec, *lease)
		} else {
			err = m.cfg.Store.Put(rec)
		}
		j.persisted = seq
		if err == nil || m.ls == nil {
			return
		}
		if errors.Is(err, ErrStaleToken) {
			// Fenced out: the job was stolen. Stop the body; persist
			// nothing further under this token.
			m.mu.Lock()
			m.staleWrites++
			if lease != nil && j.lease != nil && j.lease.Token == lease.Token {
				m.noteLeaseLostLocked(j)
			}
			m.mu.Unlock()
		}
		// ErrLeaseHeld on an unleased write: another replica's live
		// lease owns the record — its fenced snapshots are newer than
		// ours, so dropping this write is exactly right.
	}
}

// Stats is a point-in-time snapshot of the manager's counters.
type Stats struct {
	// Submitted..Evicted are process-lifetime event counters. Resumed
	// counts Resume calls; Interrupted counts shutdown/restart re-queues.
	Submitted   uint64 `json:"submitted"`
	Started     uint64 `json:"started"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
	Resumed     uint64 `json:"resumed"`
	Evicted     uint64 `json:"evicted"`
	Interrupted uint64 `json:"interrupted"`
	// QueueDepth and Running are current gauges; Retained counts every
	// job still indexed (any state). In multi-replica mode QueueDepth
	// counts this replica's local queue (replicas race to claim, so
	// shared queued jobs appear in several replicas' depths).
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	Retained   int `json:"retained"`
	// Replica identifies this manager in multi-replica mode (empty
	// otherwise); RemoteRunning gauges jobs running on other replicas;
	// Leases counts this replica's lease-protocol events.
	Replica       string      `json:"replica,omitempty"`
	RemoteRunning int         `json:"remote_running,omitempty"`
	Leases        *LeaseStats `json:"leases,omitempty"`
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Submitted: m.submitted, Started: m.started, Completed: m.completed,
		Failed: m.failed, Canceled: m.canceled, Resumed: m.resumed,
		Evicted: m.evicted, Interrupted: m.interruptedCount,
		QueueDepth: len(m.queue), Retained: len(m.jobs),
	}
	for _, j := range m.jobs {
		if j.state != StateRunning {
			continue
		}
		if m.ls != nil && j.lease == nil {
			st.RemoteRunning++
		} else {
			st.Running++
		}
	}
	if m.ls != nil {
		st.Replica = m.cfg.ReplicaID
		st.Leases = &LeaseStats{
			Acquired: m.leasesAcquired, Renewed: m.leasesRenewed,
			Released: m.leasesReleased, Stolen: m.leasesStolen,
			Lost: m.leasesLost, StaleWrites: m.staleWrites,
		}
	}
	return st
}

// Replicas lists the presence records of every replica sharing this
// manager's store (nil outside multi-replica mode).
func (m *Manager) Replicas() ([]ReplicaInfo, error) {
	if m.ls == nil {
		return nil, nil
	}
	return m.ls.Replicas()
}
