package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/selfishmining"
)

// Defaults for Config's zero values.
const (
	DefaultWorkers     = 2
	DefaultQueueLimit  = 1024
	DefaultTTL         = time.Hour
	DefaultMaxFinished = 4096
	DefaultEventBuffer = 256
)

// Config tunes a Manager. The zero value gives serving defaults; see each
// field for the negative-value escape hatches.
type Config struct {
	// Store persists job records (nil = a fresh in-memory MemStore). A
	// DiskStore makes jobs survive process restarts.
	Store Store
	// Workers bounds the jobs executing at once (default 2). The
	// underlying Service's MaxConcurrent additionally bounds total solves
	// across jobs and synchronous requests.
	Workers int
	// QueueLimit bounds jobs waiting in the queue; Submit fails with
	// ErrQueueFull beyond it (default 1024).
	QueueLimit int
	// TTL is how long finished (done/failed/canceled) jobs are retained
	// before eviction (default 1h; negative disables eviction).
	TTL time.Duration
	// MaxFinished caps retained finished jobs regardless of TTL, evicting
	// oldest-finished first (default 4096; negative removes the cap).
	MaxFinished int
	// EventBuffer is the per-job event-log ring size for SSE replay
	// (default 256). Reconnects older than the ring receive a fresh status
	// snapshot first.
	EventBuffer int
	// Gates installs deterministic lifecycle hooks for tests (nil in
	// production). See Gates.
	Gates *Gates
}

// Gates are deterministic lifecycle hooks that let tests pin a job at an
// exact execution point — for example, block inside Progress until a
// Cancel has landed, making cancel-while-running tests race-free. Each
// hook runs on the solving goroutine with no manager locks held, so a
// hook may block indefinitely (the job stays StateRunning) and may call
// back into the Manager. Install via Config.Gates before New; the hooks
// must not be changed afterwards.
type Gates struct {
	// Run fires at the start of every job body.
	Run func(id string)
	// Progress fires after every analyze binary-search progress update.
	Progress func(id string, iteration int)
	// Point fires after every completed sweep grid point.
	Point func(id string, pointsDone int)
}

func (c *Config) defaults() {
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.Workers == 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.TTL == 0 {
		c.TTL = DefaultTTL
	}
	if c.MaxFinished == 0 {
		c.MaxFinished = DefaultMaxFinished
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = DefaultEventBuffer
	}
}

// Sentinel errors of the job API.
var (
	// ErrNotFound: no job with that id (possibly evicted).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrQueueFull: the queue is at Config.QueueLimit.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrClosed: the manager has shut down.
	ErrClosed = errors.New("jobs: manager is closed")
	// ErrNotResumable: Resume on a job that is not canceled or failed.
	ErrNotResumable = errors.New("jobs: job is not resumable")
	// ErrFinished: Cancel on a job that already reached a terminal state.
	ErrFinished = errors.New("jobs: job already finished")
)

// job is the manager-internal record. Immutable identity fields are set
// at construction; everything mutable is guarded by the manager's mutex.
type job struct {
	id       string
	kind     Kind
	priority int
	seq      int64 // submit order; FIFO tiebreak within a priority
	analyze  *AnalyzeSpec
	sweep    *SweepSpec

	state       State
	submitted   time.Time
	started     *time.Time
	finished    *time.Time
	progress    Progress
	result      *AnalyzeResult
	sweepResult *SweepResult
	errMsg      string
	errCode     string
	interrupted bool
	resumes     int

	checkpoint      *selfishmining.Checkpoint
	sweepCK         []SweepPoint       // completed sweep points, in completion order
	cancel          context.CancelFunc // non-nil while running
	cancelRequested bool

	events   []Event
	firstSeq int64
	nextSeq  int64
	eventCh  chan struct{} // closed and replaced on every append
	heapIdx  int           // position in the queue heap (-1 when not queued)

	// persistMu orders store writes of this job without the manager-wide
	// mutex: snapshots are taken under m.mu (persistSeq stamps them), but
	// the O(states) checkpoint encoding and the disk write run under
	// persistMu only, and a snapshot older than what already landed
	// (persisted) is skipped.
	persistMu  sync.Mutex
	persistSeq int64 // under m.mu
	persisted  int64 // under persistMu
}

// jobQueue is a priority queue: higher Priority first, submit order
// within a priority.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx, q[j].heapIdx = i, j
}
func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*q = old[:n-1]
	return j
}

// Manager runs jobs over a selfishmining.Service: a worker pool fed from
// the priority queue, durable records in a Store, per-job event logs for
// SSE, TTL retention, and checkpoint-resume for analyze jobs (see the
// package documentation). All methods are safe for concurrent use.
type Manager struct {
	svc *selfishmining.Service
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	queue  jobQueue
	closed bool

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	seq       int64 // submit-order tiebreak, spans recovered and new jobs

	// Process-lifetime counters (guarded by mu; snapshot via Stats).
	submitted, started, completed, failed uint64
	canceled, resumed, evicted            uint64
	interruptedCount                      uint64

	// Test-only gates (installed via Config.Gates, or set directly by
	// in-package tests), set before any Submit and never changed: runGate
	// runs at the start of every job body, progressGate after every
	// analyze progress update, pointGate after every sweep point. All run
	// on the solving goroutine with no locks held, letting tests pin a
	// job at an exact lifecycle point.
	runGate      func(id string)
	progressGate func(id string, iteration int)
	pointGate    func(id string, pointsDone int)
}

// New builds a Manager over svc and recovers the store's records: finished
// jobs are re-indexed (visible to Get/List/Resume), queued jobs re-enter
// the queue, and jobs that were running when the previous process stopped
// are re-queued as interrupted — resuming from their persisted checkpoint
// if one was written (graceful shutdowns write one; crashes may not).
// Event logs are process-local, so recovered jobs start a fresh event
// sequence (SSE reconnects receive a status snapshot first).
func New(svc *selfishmining.Service, cfg Config) (*Manager, error) {
	if svc == nil {
		return nil, fmt.Errorf("jobs: New needs a selfishmining.Service")
	}
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		svc:       svc,
		cfg:       cfg,
		jobs:      make(map[string]*job),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	if g := cfg.Gates; g != nil {
		m.runGate, m.progressGate, m.pointGate = g.Run, g.Progress, g.Point
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.recover(); err != nil {
		cancel()
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	return m, nil
}

// recover loads every stored record into the live index.
func (m *Manager) recover() error {
	recs, err := m.cfg.Store.List()
	if err != nil {
		return fmt.Errorf("jobs: recovering store: %w", err)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].SubmittedAt.Before(recs[k].SubmittedAt) })
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range recs {
		ck, err := rec.Checkpoint.decode()
		if err != nil {
			// A checkpoint that fails to decode costs the warm resume, not
			// the job: it re-runs cold with the identical result.
			ck = nil
		}
		m.seq++
		j := &job{
			id: rec.ID, kind: rec.Kind, priority: rec.Priority, seq: m.seq,
			analyze: rec.Analyze, sweep: rec.Sweep,
			state: rec.State, submitted: rec.SubmittedAt,
			started: rec.StartedAt, finished: rec.FinishedAt,
			progress: rec.Progress,
			result:   rec.Result, sweepResult: rec.SweepResult,
			errMsg: rec.Error, errCode: rec.ErrorCode,
			interrupted: rec.Interrupted, resumes: rec.Resumes,
			checkpoint: ck,
			// Copy: the job appends to sweepCK as it runs, and stored
			// records must stay immutable.
			sweepCK: append([]SweepPoint(nil), rec.SweepCheckpoint...),
			eventCh: make(chan struct{}),
			heapIdx: -1,
			// Event numbering continues where the previous process left
			// off, so pre-restart Last-Event-ID cursors never alias into
			// this process's events — they fall before the (empty) ring and
			// are made whole with a status snapshot.
			firstSeq: rec.EventSeq,
			nextSeq:  rec.EventSeq,
		}
		if j.state == StateRunning {
			// The previous process died mid-run; whatever checkpoint made it
			// to disk is the resume point.
			j.state = StateQueued
			j.interrupted = true
			j.started = nil
		}
		if j.state == StateQueued && j.interrupted {
			// Re-queued across a restart — by the crash path above or by a
			// previous graceful shutdown — lands in this process's counter.
			m.interruptedCount++
		}
		m.jobs[j.id] = j
		if j.state == StateQueued {
			heap.Push(&m.queue, j)
		}
		// Every live job carries at least one event (the event ring is
		// process-local), so event streams have a well-defined replay start.
		m.emitStatusLocked(j)
		// Startup runs single-threaded; writing inline under the lock is
		// harmless here.
		m.persistFnLocked(j)()
	}
	return nil
}

// newID generates a collision-resistant job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id bytes: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates the request, enqueues the job and returns its initial
// snapshot. Sweep specs are normalized first (defaults filled, every grid
// point validated), so the returned spec says exactly what will run.
func (m *Manager) Submit(req Request) (*Status, error) {
	j := &job{
		id: newID(), priority: req.Priority,
		state: StateQueued, submitted: time.Now(),
		eventCh: make(chan struct{}), heapIdx: -1,
	}
	switch req.Kind {
	case KindAnalyze:
		if req.Analyze == nil || req.Sweep != nil {
			return nil, fmt.Errorf("jobs: kind %q needs exactly the analyze spec", req.Kind)
		}
		spec := *req.Analyze
		if err := spec.validate(); err != nil {
			return nil, err
		}
		j.kind, j.analyze = KindAnalyze, &spec
		j.progress = Progress{BetaLow: 0, BetaUp: 1}
	case KindSweep:
		if req.Sweep == nil || req.Analyze != nil {
			return nil, fmt.Errorf("jobs: kind %q needs exactly the sweep spec", req.Kind)
		}
		spec := *req.Sweep
		if err := spec.Normalize(); err != nil {
			return nil, err
		}
		j.kind, j.sweep = KindSweep, &spec
		j.progress = Progress{PointsTotal: spec.points()}
	default:
		return nil, fmt.Errorf("jobs: unknown job kind %q (want %q or %q)", req.Kind, KindAnalyze, KindSweep)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.queue) >= m.cfg.QueueLimit {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	evicted := m.evictLocked(time.Now()) // opportunistic retention pass
	m.seq++
	j.seq = m.seq
	m.submitted++
	m.jobs[j.id] = j
	heap.Push(&m.queue, j)
	m.emitStatusLocked(j)
	persist := m.persistFnLocked(j)
	st := m.statusLocked(j)
	m.cond.Signal()
	m.mu.Unlock()
	for _, id := range evicted {
		_ = m.cfg.Store.Delete(id)
	}
	persist()
	return st, nil
}

// Get returns a job's current snapshot.
func (m *Manager) Get(id string) (*Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// Filter narrows List.
type Filter struct {
	// State / Kind keep only matching jobs when non-empty.
	State State
	Kind  Kind
}

// List returns snapshots of every retained job (newest submission first),
// optionally filtered.
func (m *Manager) List(f Filter) []*Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		if f.State != "" && j.state != f.State {
			continue
		}
		if f.Kind != "" && j.kind != f.Kind {
			continue
		}
		out = append(out, m.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].SubmittedAt.Equal(out[k].SubmittedAt) {
			return out[i].SubmittedAt.After(out[k].SubmittedAt)
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// Cancel stops a job: a queued job is canceled immediately; a running job
// has its context canceled and transitions once the solve observes it at
// the next deterministic checkpoint (its latest binary-search checkpoint
// is persisted for Resume). Cancel of an already-canceled job is
// idempotent; other terminal states return ErrFinished.
func (m *Manager) Cancel(id string) (*Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	persist := func() {}
	switch j.state {
	case StateQueued:
		if j.heapIdx >= 0 {
			heap.Remove(&m.queue, j.heapIdx)
		}
		now := time.Now()
		j.state = StateCanceled
		j.finished = &now
		j.errMsg = "canceled while queued"
		j.errCode = "canceled"
		m.canceled++
		m.emitStatusLocked(j)
		persist = m.persistFnLocked(j)
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	case StateCanceled:
		// Idempotent.
	default:
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrFinished, id, j.state)
	}
	st := m.statusLocked(j)
	m.mu.Unlock()
	persist()
	return st, nil
}

// Resume re-enqueues a canceled or failed job. An analyze job with a
// persisted checkpoint replays Algorithm 1 from it, with a result bitwise
// identical to an uninterrupted solve; without one (canceled while queued,
// or a crash before any step completed) it simply runs from the start. A
// resumed sweep replays every point of its per-point checkpoint verbatim
// (no solves) and computes only the points the interrupted run never
// reached — including the refined midpoints of an adaptive sweep — again
// bitwise identical to an uninterrupted run, even across a process
// restart through a DiskStore.
func (m *Manager) Resume(id string) (*Status, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.state != StateCanceled && j.state != StateFailed {
		st := j.state
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrNotResumable, id, st)
	}
	if len(m.queue) >= m.cfg.QueueLimit {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	j.state = StateQueued
	j.started, j.finished = nil, nil
	j.errMsg, j.errCode = "", ""
	j.interrupted = false
	j.cancelRequested = false
	j.resumes++
	m.resumed++
	heap.Push(&m.queue, j)
	m.emitStatusLocked(j)
	persist := m.persistFnLocked(j)
	st := m.statusLocked(j)
	m.cond.Signal()
	m.mu.Unlock()
	persist()
	return st, nil
}

// Events returns the job's buffered events with Seq > after (pass -1 to
// replay from the start), blocking until at least one is available, the
// job is terminal with nothing newer (returning an empty slice — the
// stream is over), or ctx ends. When after predates the event ring (an
// SSE reconnect after a long gap) or postdates it (a cursor from before a
// manager restart — event logs are process-local), the slice leads with a
// synthetic status snapshot so the consumer is made whole before the
// replay continues.
func (m *Manager) Events(ctx context.Context, id string, after int64) ([]Event, error) {
	for {
		m.mu.Lock()
		j, ok := m.jobs[id]
		if !ok {
			m.mu.Unlock()
			return nil, ErrNotFound
		}
		evs := m.eventsSinceLocked(j, after)
		terminal := j.state.Terminal()
		ch := j.eventCh
		m.mu.Unlock()
		if len(evs) > 0 || terminal {
			return evs, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// eventsSinceLocked collects buffered events with Seq > after, resetting
// stale or trimmed-past cursors with a leading status snapshot (whose Seq
// is one before the oldest replayed event, or negative — "no id" on the
// wire — when the replay starts at 0).
func (m *Manager) eventsSinceLocked(j *job, after int64) []Event {
	var evs []Event
	if after >= j.nextSeq {
		// A cursor this process never issued (pre-restart stream): replay
		// from the beginning.
		after = -1
	}
	if after < j.firstSeq-1 {
		// The ring was trimmed past the cursor: lead with a snapshot.
		evs = append(evs, Event{Seq: j.firstSeq - 1, Type: "status", Status: m.statusLocked(j)})
		after = j.firstSeq - 1
	}
	for _, ev := range j.events {
		if ev.Seq > after {
			evs = append(evs, ev)
		}
	}
	return evs
}

// Close shuts the manager down: no new submissions, queued jobs stay
// queued in the store, and running jobs are interrupted at their next
// deterministic checkpoint and re-queued with their latest checkpoint
// persisted — a Manager reopened over the same store resumes them with
// bitwise-identical results. Close waits for the workers to finish
// checkpointing, up to ctx's deadline.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.closed = true
	// Cancel in-flight job contexts before releasing the lock, so once any
	// caller observes ErrClosed the interruption is already in motion.
	m.cancelAll()
	m.cond.Broadcast()
	m.mu.Unlock()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown incomplete: %w", ctx.Err())
	}
}

// worker pulls jobs off the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.queue).(*job)
		now := time.Now()
		j.state = StateRunning
		j.started = &now
		// Sweep progress is incremental (OnPoint counts up), so a re-run —
		// resume or post-shutdown re-queue — restarts the counter; analyze
		// progress is absolute and overwrites itself.
		if j.kind == KindSweep {
			j.progress.PointsDone = 0
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.cancel = cancel
		m.started++
		m.emitStatusLocked(j)
		persist := m.persistFnLocked(j)
		m.mu.Unlock()

		persist()
		m.run(ctx, j)
		cancel()

		m.mu.Lock()
	}
}

// sweepSeenKey identifies one attack-curve point of a sweep checkpoint:
// the attack configuration plus the exact bit pattern of p (the bitwise
// determinism contract is what makes exact float matching sound).
type sweepSeenKey struct {
	depth, forks int
	pbits        uint64
}

// run executes one job body (no locks held) and records the outcome.
func (m *Manager) run(ctx context.Context, j *job) {
	if m.runGate != nil {
		m.runGate(j.id)
	}
	switch j.kind {
	case KindAnalyze:
		m.mu.Lock()
		resume := j.checkpoint
		m.mu.Unlock()
		opts := j.analyze.options()
		opts = append(opts,
			selfishmining.WithProgress(func(lo, up float64, iter int) {
				m.mu.Lock()
				j.progress.BetaLow, j.progress.BetaUp, j.progress.Iterations = lo, up, iter
				m.emitLocked(j, Event{Type: "progress", Progress: cloneProgress(j.progress)})
				m.mu.Unlock()
				if m.progressGate != nil {
					m.progressGate(j.id, iter)
				}
			}),
			selfishmining.WithCheckpoints(func(ck selfishmining.Checkpoint) {
				m.mu.Lock()
				defer m.mu.Unlock()
				j.checkpoint = &ck
				j.progress.Sweeps = ck.Sweeps
			}),
		)
		if resume != nil {
			opts = append(opts, selfishmining.WithResume(resume))
		}
		res, err := m.svc.AnalyzeContext(ctx, j.analyze.Params(), opts...)
		var out *AnalyzeResult
		if err == nil {
			out = analyzeResult(res)
		}
		m.finish(j, err, func() {
			j.result = out
			j.progress.Iterations = out.Iterations
			j.progress.Sweeps = out.Sweeps
			j.progress.BetaLow, j.progress.BetaUp = out.ERRev, out.ERRevUpper
		})
	case KindSweep:
		opts := j.sweep.options()
		// Feed the per-point checkpoint back as a resume set, and index it
		// so re-emitted (replayed) points are not re-appended below. The
		// key matches selfishmining's resume lookup: attack configuration
		// plus the exact bit pattern of p.
		m.mu.Lock()
		seen := make(map[sweepSeenKey]bool, len(j.sweepCK))
		if len(j.sweepCK) > 0 {
			resume := &selfishmining.SweepCheckpoint{
				Points: make([]selfishmining.SweepPoint, 0, len(j.sweepCK)),
			}
			for _, sp := range j.sweepCK {
				seen[sweepSeenKey{sp.Depth, sp.Forks, math.Float64bits(sp.P)}] = true
				resume.Points = append(resume.Points, selfishmining.SweepPoint{
					Config: selfishmining.AttackConfig{Depth: sp.Depth, Forks: sp.Forks},
					Series: sp.Series,
					PIndex: sp.PIndex, P: sp.P, Gamma: j.sweep.Gamma,
					Depth: sp.RefineDepth, ERRev: sp.ERRev, Sweeps: sp.Sweeps,
				})
			}
			opts.Resume = resume
		}
		m.mu.Unlock()
		opts.OnPoint = func(pt selfishmining.SweepPoint) {
			m.mu.Lock()
			j.progress.PointsDone++
			done := j.progress.PointsDone
			sp := SweepPoint{
				Series: pt.Series, Depth: pt.Config.Depth, Forks: pt.Config.Forks,
				PIndex: pt.PIndex, P: pt.P, RefineDepth: pt.Depth,
				ERRev: pt.ERRev, Sweeps: pt.Sweeps,
			}
			m.emitLocked(j, Event{Type: "point", Progress: cloneProgress(j.progress), Point: &sp})
			persist := func() {}
			if k := (sweepSeenKey{sp.Depth, sp.Forks, math.Float64bits(sp.P)}); !seen[k] {
				seen[k] = true
				j.sweepCK = append(j.sweepCK, sp)
				// Persist per completed point: a cancel, crash, or shutdown
				// at any moment loses at most the points still in flight.
				persist = m.persistFnLocked(j)
			}
			m.mu.Unlock()
			persist()
			if m.pointGate != nil {
				m.pointGate(j.id, done)
			}
		}
		fig, err := m.svc.SweepContext(ctx, opts)
		var out *SweepResult
		if err == nil {
			out = sweepResult(fig)
		}
		m.finish(j, err, func() { j.sweepResult = out })
	}
}

// finish classifies a job body's outcome and records the transition.
// onDone installs the result under the lock when err is nil.
func (m *Manager) finish(j *job, err error, onDone func()) {
	m.mu.Lock()
	j.cancel = nil
	now := time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.finished = &now
		j.checkpoint = nil // a finished search has nothing to resume
		j.sweepCK = nil
		onDone()
		m.completed++
	case errors.Is(err, selfishmining.ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.cancelRequested || !m.closed {
			// Canceled by Cancel (or an unexpected context end while the
			// manager is live): terminal, resumable from the checkpoint.
			j.state = StateCanceled
			j.finished = &now
			j.errMsg = err.Error()
			j.errCode = "canceled"
			m.canceled++
		} else {
			// Graceful shutdown: checkpoint and hand the job to the next
			// process instead of discarding the work.
			j.state = StateQueued
			j.started = nil
			j.interrupted = true
			m.interruptedCount++
		}
	default:
		j.state = StateFailed
		j.finished = &now
		j.errMsg = err.Error()
		j.errCode = "solver"
		m.failed++
	}
	m.emitStatusLocked(j)
	persist := m.persistFnLocked(j)
	m.mu.Unlock()
	persist()
}

// janitor evicts expired jobs periodically.
func (m *Manager) janitor() {
	defer m.wg.Done()
	if m.cfg.TTL < 0 && m.cfg.MaxFinished < 0 {
		return
	}
	period := m.cfg.TTL / 4
	if period < time.Second {
		period = time.Second
	}
	if period > time.Minute {
		period = time.Minute
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			m.mu.Lock()
			evicted := m.evictLocked(time.Now())
			m.mu.Unlock()
			for _, id := range evicted {
				_ = m.cfg.Store.Delete(id)
			}
		case <-m.baseCtx.Done():
			return
		}
	}
}

// evictLocked applies the retention policy — finished jobs past TTL go,
// then oldest-finished beyond MaxFinished — and returns the evicted ids.
// The store deletes are the CALLER's job, after releasing m.mu: like
// persistFnLocked's writes, store I/O must not stall the manager-wide
// mutex (a big eviction pass would otherwise block every progress hook
// and API call). A pending persist racing an eviction is harmless in
// practice: eviction fires at least a TTL after the job's last
// transition, long after its final snapshot landed.
func (m *Manager) evictLocked(now time.Time) (evicted []string) {
	var finished []*job
	for _, j := range m.jobs {
		if !j.state.Terminal() || j.finished == nil {
			continue
		}
		if m.cfg.TTL >= 0 && now.Sub(*j.finished) > m.cfg.TTL {
			evicted = append(evicted, m.dropLocked(j))
			continue
		}
		finished = append(finished, j)
	}
	if m.cfg.MaxFinished >= 0 && len(finished) > m.cfg.MaxFinished {
		sort.Slice(finished, func(i, k int) bool { return finished[i].finished.Before(*finished[k].finished) })
		for _, j := range finished[:len(finished)-m.cfg.MaxFinished] {
			evicted = append(evicted, m.dropLocked(j))
		}
	}
	return evicted
}

// dropLocked removes the job from the live index (the caller deletes its
// store record) and returns its id.
func (m *Manager) dropLocked(j *job) string {
	delete(m.jobs, j.id)
	m.evicted++
	// Wake any event stream still attached so it observes ErrNotFound.
	close(j.eventCh)
	j.eventCh = make(chan struct{})
	return j.id
}

// emitStatusLocked appends a lifecycle event.
func (m *Manager) emitStatusLocked(j *job) {
	m.emitLocked(j, Event{Type: "status", Status: m.statusLocked(j)})
}

// emitLocked appends ev to the job's ring and wakes waiting streams.
func (m *Manager) emitLocked(j *job, ev Event) {
	ev.Seq = j.nextSeq
	j.nextSeq++
	j.events = append(j.events, ev)
	if over := len(j.events) - m.cfg.EventBuffer; over > 0 {
		j.events = append(j.events[:0], j.events[over:]...)
		j.firstSeq += int64(over)
	}
	close(j.eventCh)
	j.eventCh = make(chan struct{})
}

// cloneProgress snapshots the progress for an event payload.
func cloneProgress(p Progress) *Progress { cp := p; return &cp }

// statusLocked snapshots a job's public view.
func (m *Manager) statusLocked(j *job) *Status {
	st := &Status{
		ID: j.id, Kind: j.kind, State: j.state, Priority: j.priority,
		Analyze: j.analyze, Sweep: j.sweep,
		Progress: j.progress,
		Result:   j.result, SweepResult: j.sweepResult,
		Error: j.errMsg, ErrorCode: j.errCode,
		HasCheckpoint: j.checkpoint != nil || len(j.sweepCK) > 0,
		Interrupted:   j.interrupted,
		Resumes:       j.resumes,
		SubmittedAt:   j.submitted,
	}
	if j.started != nil {
		t := *j.started
		st.StartedAt = &t
	}
	if j.finished != nil {
		t := *j.finished
		st.FinishedAt = &t
	}
	return st
}

// persistFnLocked snapshots the job's durable state under m.mu and
// returns the write to run AFTER the manager lock is released: the
// O(states) checkpoint encoding and the store I/O must not stall every
// other job's progress hooks and every API call on m.mu. Per-job ordering
// is kept by persistMu + the persistSeq stamp — a snapshot that lost the
// race to a newer one is skipped, so the store always converges on the
// latest state. Store failures are deliberately non-fatal to the job
// itself (the in-memory record stays authoritative); a broken disk
// surfaces on restart, not mid-solve.
func (m *Manager) persistFnLocked(j *job) func() {
	rec := &Record{Status: *m.statusLocked(j), EventSeq: j.nextSeq}
	ck := j.checkpoint // replaced wholesale, never mutated: safe to share
	// sweepCK is append-only while the job runs, so a capacity-clamped
	// prefix is a stable snapshot even as later points land.
	rec.SweepCheckpoint = j.sweepCK[:len(j.sweepCK):len(j.sweepCK)]
	j.persistSeq++
	seq := j.persistSeq
	return func() {
		j.persistMu.Lock()
		defer j.persistMu.Unlock()
		if seq <= j.persisted {
			return // a newer snapshot already landed
		}
		rec.Checkpoint = encodeCheckpoint(ck)
		_ = m.cfg.Store.Put(rec)
		j.persisted = seq
	}
}

// Stats is a point-in-time snapshot of the manager's counters.
type Stats struct {
	// Submitted..Evicted are process-lifetime event counters. Resumed
	// counts Resume calls; Interrupted counts shutdown/restart re-queues.
	Submitted   uint64 `json:"submitted"`
	Started     uint64 `json:"started"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Canceled    uint64 `json:"canceled"`
	Resumed     uint64 `json:"resumed"`
	Evicted     uint64 `json:"evicted"`
	Interrupted uint64 `json:"interrupted"`
	// QueueDepth and Running are current gauges; Retained counts every
	// job still indexed (any state).
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	Retained   int `json:"retained"`
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Submitted: m.submitted, Started: m.started, Completed: m.completed,
		Failed: m.failed, Canceled: m.canceled, Resumed: m.resumed,
		Evicted: m.evicted, Interrupted: m.interruptedCount,
		QueueDepth: len(m.queue), Retained: len(m.jobs),
	}
	for _, j := range m.jobs {
		if j.state == StateRunning {
			st.Running++
		}
	}
	return st
}
