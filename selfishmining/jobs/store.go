package jobs

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/selfishmining"
)

// Record is the durable form of one job: its public Status plus the
// private resume checkpoint (which Status only advertises as
// HasCheckpoint — the O(states) value vector never rides job listings).
type Record struct {
	Status
	// Checkpoint is the persisted resume snapshot of an interrupted
	// analyze job.
	Checkpoint *CheckpointRecord `json:"checkpoint,omitempty"`
	// SweepCheckpoint is the persisted resume snapshot of an interrupted
	// sweep job: every attack-curve point completed so far, in completion
	// order. JSON float64 round-trips exactly in Go, so the plain wire form
	// preserves the bitwise resume guarantee without base64.
	SweepCheckpoint []SweepPoint `json:"sweep_checkpoint,omitempty"`
	// EventSeq is the job's event-sequence high-water mark at persist
	// time. A recovered job continues numbering from here, so a client's
	// pre-restart Last-Event-ID can never alias into the new process's
	// events — stale cursors land before the ring and are reset with a
	// status snapshot.
	EventSeq int64 `json:"event_seq,omitempty"`
}

// CheckpointRecord is the wire form of a selfishmining.Checkpoint. The
// value vector is base64 of the little-endian float64 bits — exact (the
// resume guarantee is bitwise) and about 40% of the size of a JSON number
// array.
type CheckpointRecord struct {
	BetaLow    float64 `json:"beta_low"`
	BetaUp     float64 `json:"beta_up"`
	Iterations int     `json:"iterations"`
	Sweeps     int     `json:"sweeps"`
	NumValues  int     `json:"num_values"`
	ValuesB64  string  `json:"values_b64,omitempty"`
}

// encodeCheckpoint converts a live checkpoint to its durable form.
func encodeCheckpoint(ck *selfishmining.Checkpoint) *CheckpointRecord {
	if ck == nil {
		return nil
	}
	buf := make([]byte, 8*len(ck.Values))
	for i, v := range ck.Values {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return &CheckpointRecord{
		BetaLow: ck.BetaLow, BetaUp: ck.BetaUp,
		Iterations: ck.Iterations, Sweeps: ck.Sweeps,
		NumValues: len(ck.Values),
		ValuesB64: base64.StdEncoding.EncodeToString(buf),
	}
}

// decode reconstructs the live checkpoint, bit for bit.
func (r *CheckpointRecord) decode() (*selfishmining.Checkpoint, error) {
	if r == nil {
		return nil, nil
	}
	buf, err := base64.StdEncoding.DecodeString(r.ValuesB64)
	if err != nil {
		return nil, fmt.Errorf("jobs: checkpoint values: %w", err)
	}
	if len(buf) != 8*r.NumValues {
		return nil, fmt.Errorf("jobs: checkpoint has %d value bytes, header says %d values", len(buf), r.NumValues)
	}
	ck := &selfishmining.Checkpoint{
		BetaLow: r.BetaLow, BetaUp: r.BetaUp,
		Iterations: r.Iterations, Sweeps: r.Sweeps,
	}
	if r.NumValues > 0 {
		ck.Values = make([]float64, r.NumValues)
		for i := range ck.Values {
			ck.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return ck, nil
}

// Clone returns a deep copy of the record: no slice or pointer is
// shared with the original, so mutating one side can never corrupt the
// other. Stores use it to enforce their immutability contract.
func (r *Record) Clone() *Record {
	if r == nil {
		return nil
	}
	c := *r
	c.Status = *r.Status.clone()
	if r.Checkpoint != nil {
		ck := *r.Checkpoint
		c.Checkpoint = &ck
	}
	if r.SweepCheckpoint != nil {
		c.SweepCheckpoint = append([]SweepPoint(nil), r.SweepCheckpoint...)
	}
	return &c
}

// clone deep-copies a status snapshot (specs, results, timestamps).
func (s *Status) clone() *Status {
	c := *s
	if s.Analyze != nil {
		a := *s.Analyze
		c.Analyze = &a
	}
	if s.Sweep != nil {
		sw := *s.Sweep
		sw.PGrid = append([]float64(nil), s.Sweep.PGrid...)
		sw.Configs = append([]SweepConfig(nil), s.Sweep.Configs...)
		c.Sweep = &sw
	}
	if s.Result != nil {
		res := *s.Result
		res.Strategy = append([]int(nil), s.Result.Strategy...)
		if s.Result.StrategyERRev != nil {
			v := *s.Result.StrategyERRev
			res.StrategyERRev = &v
		}
		c.Result = &res
	}
	if s.SweepResult != nil {
		sr := *s.SweepResult
		sr.X = append([]float64(nil), s.SweepResult.X...)
		sr.Series = make([]SweepSeries, len(s.SweepResult.Series))
		for i, ser := range s.SweepResult.Series {
			sr.Series[i] = SweepSeries{Name: ser.Name, Values: append([]float64(nil), ser.Values...)}
		}
		c.SweepResult = &sr
	}
	if s.StartedAt != nil {
		t := *s.StartedAt
		c.StartedAt = &t
	}
	if s.FinishedAt != nil {
		t := *s.FinishedAt
		c.FinishedAt = &t
	}
	if s.LeaseExpires != nil {
		t := *s.LeaseExpires
		c.LeaseExpires = &t
	}
	return &c
}

// Store persists job records. The Manager writes a fresh snapshot on
// every lifecycle transition and reads everything back at startup;
// implementations must treat stored records as immutable. All methods
// must be safe for concurrent use.
type Store interface {
	// Put upserts the record under rec.ID.
	Put(rec *Record) error
	// Get returns the record for id (ok false when absent).
	Get(id string) (rec *Record, ok bool, err error)
	// Delete removes id (a no-op when absent).
	Delete(id string) error
	// List returns every stored record, in no particular order.
	List() ([]*Record, error)
}

// HealthChecker is the optional health probe a Store may implement.
// Manager.Ready consults it, so readiness endpoints can report a store
// that went away (an unmounted directory, revoked permissions) before a
// job write discovers it.
type HealthChecker interface {
	// Healthy returns nil while the store can serve reads and writes.
	Healthy() error
}

// MemStore is the in-memory Store: job records live and die with the
// process. It is the default for Managers that do not need restart
// survival.
type MemStore struct {
	mu   sync.Mutex
	recs map[string]*Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: make(map[string]*Record)}
}

// Put stores a deep copy, so later caller-side mutation of rec cannot
// reach the stored record.
func (s *MemStore) Put(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[rec.ID] = rec.Clone()
	return nil
}

// Get returns a deep copy — the stored record stays immutable no matter
// what the caller does with the result.
func (s *MemStore) Get(id string) (*Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	return rec.Clone(), ok, nil
}

func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.recs, id)
	return nil
}

// List returns deep copies (see Get).
func (s *MemStore) List() ([]*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, rec.Clone())
	}
	return out, nil
}
