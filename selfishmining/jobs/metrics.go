package jobs

import "repro/selfishmining/obs"

// Job-latency histograms, on the shared default registry. They tick at
// lifecycle transitions only — worker pickup and terminal classification —
// never inside a running job body.
var (
	queueWaitSeconds = obs.Default().Histogram("jobs_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", obs.DefBuckets())
	runSeconds = obs.Default().Histogram("jobs_run_seconds",
		"Wall time of job bodies that reached a terminal state.", obs.DefBuckets())
	terminalSeconds = obs.Default().Histogram("jobs_terminal_seconds",
		"Submit-to-terminal latency of finished jobs.", obs.DefBuckets())
)

// RegisterMetrics wires this manager's accounting into a metrics registry
// as scrape-time collector series mirrored from Stats(): the lifecycle
// counters, the queue/running/retained gauges, and — in multi-replica
// mode — the lease-protocol counters labeled with this replica's id.
// Values are snapshot at each exposition, so the job lifecycle carries no
// extra instrumentation; register a Manager on at most one registry
// (typically the per-server registry cmd/serve exposes on /metrics).
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	submitted := r.Counter("jobs_submitted_total",
		"Jobs accepted by Submit.")
	started := r.Counter("jobs_started_total",
		"Job bodies started by workers (resumes and steals start again).")
	completed := r.Counter("jobs_completed_total",
		"Jobs that finished in state done.")
	failed := r.Counter("jobs_failed_total",
		"Jobs that finished in state failed.")
	canceled := r.Counter("jobs_canceled_total",
		"Jobs that finished in state canceled.")
	resumed := r.Counter("jobs_resumed_total",
		"Resume calls that re-enqueued a terminal job.")
	evicted := r.Counter("jobs_evicted_total",
		"Finished jobs evicted by the retention policy.")
	interrupted := r.Counter("jobs_interrupted_total",
		"Running jobs re-queued by shutdown, crash recovery, or a lease steal.")
	queueDepth := r.Gauge("jobs_queue_depth",
		"Jobs waiting in this replica's local queue.")
	running := r.Gauge("jobs_running",
		"Jobs this replica is running right now.")
	retained := r.Gauge("jobs_retained",
		"Jobs still indexed, in any state.")
	remoteRunning := r.Gauge("jobs_remote_running",
		"Jobs running under another replica's lease (multi-replica mode).")
	leaseOps := r.CounterVec("jobs_lease_operations_total",
		"Lease-protocol events of this replica, by operation "+
			"(acquire, renew, release, steal, lost, stale_reject).",
		"replica", "op")
	r.OnCollect(func() {
		st := m.Stats()
		submitted.Store(st.Submitted)
		started.Store(st.Started)
		completed.Store(st.Completed)
		failed.Store(st.Failed)
		canceled.Store(st.Canceled)
		resumed.Store(st.Resumed)
		evicted.Store(st.Evicted)
		interrupted.Store(st.Interrupted)
		queueDepth.Set(float64(st.QueueDepth))
		running.Set(float64(st.Running))
		retained.Set(float64(st.Retained))
		remoteRunning.Set(float64(st.RemoteRunning))
		if st.Leases != nil {
			leaseOps.With(st.Replica, "acquire").Store(st.Leases.Acquired)
			leaseOps.With(st.Replica, "renew").Store(st.Leases.Renewed)
			leaseOps.With(st.Replica, "release").Store(st.Leases.Released)
			leaseOps.With(st.Replica, "steal").Store(st.Leases.Stolen)
			leaseOps.With(st.Replica, "lost").Store(st.Leases.Lost)
			leaseOps.With(st.Replica, "stale_reject").Store(st.Leases.StaleWrites)
		}
	})
}
