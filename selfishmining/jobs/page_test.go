package jobs

import (
	"errors"
	"testing"
)

// pagedManager builds a manager with no workers, so submitted jobs stay
// queued and the listing is deterministic.
func pagedManager(t *testing.T, n int) (*Manager, []string) {
	t.Helper()
	m := newTestManager(t, Config{Workers: -1})
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		spec := smallSpec
		st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &spec})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	return m, ids
}

// collectPages walks the full listing in pages of limit.
func collectPages(t *testing.T, m *Manager, f Filter, limit int) ([]string, int) {
	t.Helper()
	f.Limit = limit
	f.Cursor = ""
	var ids []string
	pages := 0
	for {
		page, next, err := m.Page(f)
		if err != nil {
			t.Fatalf("Page(cursor %q): %v", f.Cursor, err)
		}
		pages++
		if len(page) > limit {
			t.Fatalf("page of %d items exceeds limit %d", len(page), limit)
		}
		for _, st := range page {
			ids = append(ids, st.ID)
		}
		if next == "" {
			return ids, pages
		}
		if len(page) < limit {
			t.Fatalf("short page (%d < %d) still returned a cursor", len(page), limit)
		}
		f.Cursor = next
	}
}

func idsOf(sts []*Status) []string {
	out := make([]string, len(sts))
	for i, st := range sts {
		out[i] = st.ID
	}
	return out
}

func equalIDs(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d ids, want %d (%v vs %v)", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: id[%d] = %s, want %s", label, i, got[i], want[i])
		}
	}
}

// TestPageWalksFullListing: pages of every size reproduce List exactly,
// in the same stable order, with no duplicates or gaps.
func TestPageWalksFullListing(t *testing.T) {
	m, _ := pagedManager(t, 7)
	full := idsOf(m.List(Filter{}))
	if len(full) != 7 {
		t.Fatalf("listing has %d jobs, want 7", len(full))
	}
	for _, limit := range []int{1, 2, 3, 7, 50} {
		got, pages := collectPages(t, m, Filter{}, limit)
		equalIDs(t, "paged listing", full, got)
		wantPages := (len(full) + limit - 1) / limit
		if limit >= len(full) {
			wantPages = 1
		}
		if pages != wantPages {
			t.Errorf("limit %d took %d pages, want %d", limit, pages, wantPages)
		}
	}
	// Limit 0 means unpaged: everything, no cursor.
	all, next, err := m.Page(Filter{})
	if err != nil || next != "" {
		t.Fatalf("unpaged Page: next %q, err %v", next, err)
	}
	equalIDs(t, "unpaged listing", full, idsOf(all))
}

// TestPageRejectsForeignCursors: cursors the manager did not issue fail
// with ErrBadCursor, never a silent wrong page.
func TestPageRejectsForeignCursors(t *testing.T) {
	m, _ := pagedManager(t, 2)
	for _, cursor := range []string{"not base64!", "bm9wZQ", "MTIzNDU", "fDEyMw"} {
		if _, _, err := m.Page(Filter{Limit: 1, Cursor: cursor}); !errors.Is(err, ErrBadCursor) {
			t.Errorf("cursor %q: err %v, want ErrBadCursor", cursor, err)
		}
	}
}

// TestPageBoundarySurvivesChanges: a cursor stays valid when jobs are
// submitted after it was issued (they sort newer than the boundary and
// must not shift it) and when the boundary job itself leaves the
// filtered listing.
func TestPageBoundarySurvivesChanges(t *testing.T) {
	m, _ := pagedManager(t, 6)
	before := idsOf(m.List(Filter{}))

	page1, cursor, err := m.Page(Filter{Limit: 2})
	if err != nil || cursor == "" {
		t.Fatalf("first page: cursor %q, err %v", cursor, err)
	}
	// A submission between pages lands at the head of the listing, not
	// inside the remaining pages.
	spec := smallSpec
	if _, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &spec}); err != nil {
		t.Fatal(err)
	}
	rest, _, err := m.Page(Filter{Limit: 10, Cursor: cursor})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 2 {
		t.Fatalf("first page has %d items, want 2", len(page1))
	}
	equalIDs(t, "pages after submission", before[2:], idsOf(rest))

	// Cancel the boundary job: it drops out of the queued-only listing,
	// and the cursor keyed on it still resumes at the right spot.
	queued, qCursor, err := m.Page(Filter{State: StateQueued, Limit: 3})
	if err != nil || qCursor == "" {
		t.Fatalf("queued page: cursor %q, err %v", qCursor, err)
	}
	boundary := queued[len(queued)-1].ID
	wantRest := idsOf(m.List(Filter{State: StateQueued}))[3:]
	if _, err := m.Cancel(boundary); err != nil {
		t.Fatal(err)
	}
	after, _, err := m.Page(Filter{State: StateQueued, Limit: 10, Cursor: qCursor})
	if err != nil {
		t.Fatal(err)
	}
	equalIDs(t, "page past a vanished boundary", wantRest, idsOf(after))
}

// TestPageFilters: state and kind filters compose with pagination.
func TestPageFilters(t *testing.T) {
	m, ids := pagedManager(t, 5)
	if _, err := m.Cancel(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(ids[3]); err != nil {
		t.Fatal(err)
	}
	got, _ := collectPages(t, m, Filter{State: StateQueued}, 2)
	equalIDs(t, "queued pages", idsOf(m.List(Filter{State: StateQueued})), got)
	if len(got) != 3 {
		t.Fatalf("queued listing has %d jobs, want 3", len(got))
	}
	canceled, _ := collectPages(t, m, Filter{State: StateCanceled}, 1)
	if len(canceled) != 2 {
		t.Fatalf("canceled listing has %d jobs, want 2", len(canceled))
	}
	none, next, err := m.Page(Filter{Kind: KindSweep, Limit: 4})
	if err != nil || next != "" || len(none) != 0 {
		t.Fatalf("sweep page = %d items, next %q, err %v; want empty", len(none), next, err)
	}
}
