package jobs

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/selfishmining"
)

// fastReplicaConfig is the shared-store timing used by the in-process
// failover tests: everything is sped up so the poll/heartbeat machinery
// turns over many times within a test.
func fastReplicaConfig(store LeaseStore, id string) Config {
	return Config{
		Store: store, ReplicaID: id, Workers: 1,
		LeaseTTL:     500 * time.Millisecond,
		Heartbeat:    100 * time.Millisecond,
		PollInterval: 50 * time.Millisecond,
	}
}

func newReplica(t *testing.T, dir, id string) (*Manager, *selfishmining.Service) {
	t.Helper()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := selfishmining.NewService(selfishmining.ServiceConfig{})
	m, err := New(svc, fastReplicaConfig(store, id))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m, svc
}

// TestTwoReplicasShareQueue runs two replicas over one shared directory:
// jobs submitted on one replica are claimed exactly once across the
// fleet, and both replicas' views converge on identical results.
func TestTwoReplicasShareQueue(t *testing.T) {
	dir := t.TempDir()
	mA, _ := newReplica(t, dir, "a")
	mB, _ := newReplica(t, dir, "b")

	specs := []AnalyzeSpec{smallSpec, smallSpec, smallSpec, smallSpec}
	specs[1].P, specs[2].P, specs[3].P = 0.25, 0.35, 0.2
	ids := make([]string, len(specs))
	for i := range specs {
		st, err := mA.Submit(Request{Kind: KindAnalyze, Analyze: &specs[i]})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		fromA := waitState(t, mA, id, StateDone)
		// B discovers A's submissions on its next poll; wait for that
		// before asserting on its mirrored view.
		known := time.Now().Add(10 * time.Second)
		for {
			if _, err := mB.Get(id); err == nil {
				break
			} else if time.Now().After(known) {
				t.Fatalf("replica b never discovered job %s: %v", id, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		fromB := waitState(t, mB, id, StateDone) // B mirrors via poll even when A ran it
		equalJobResults(t, fmt.Sprintf("job %d via A", i), reference(t, specs[i]), fromA.Result)
		equalJobResults(t, fmt.Sprintf("job %d via B", i), fromA.Result, fromB.Result)
	}

	// Exactly one claim and one release per job across the fleet: the
	// lease protocol, not luck, keeps replicas from double-running.
	stA, stB := mA.Stats(), mB.Stats()
	if stA.Leases == nil || stB.Leases == nil {
		t.Fatalf("shared-mode stats missing lease counters: %+v / %+v", stA, stB)
	}
	if got := stA.Leases.Acquired + stB.Leases.Acquired; got != uint64(len(specs)) {
		t.Errorf("fleet acquired %d leases for %d jobs", got, len(specs))
	}
	if got := stA.Leases.Released + stB.Leases.Released; got != uint64(len(specs)) {
		t.Errorf("fleet released %d leases for %d jobs", got, len(specs))
	}
	if stA.Replica != "a" || stB.Replica != "b" {
		t.Errorf("stats replica ids = %q, %q", stA.Replica, stB.Replica)
	}

	// Both replicas publish presence; each sees the other.
	deadline := time.Now().Add(5 * time.Second)
	for {
		reps, err := mB.Replicas()
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) == 2 && reps[0].Replica == "a" && reps[1].Replica == "b" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica registry = %+v, want a and b", reps)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepHandoffAcrossReplicas interrupts an adaptive sweep on replica
// A, shuts A down, and resumes the job on a brand-new replica B over the
// same directory: B must adopt A's persisted checkpoint through the
// lease claim, replay it without re-solving, and finish bitwise
// identical to an uninterrupted run — under a strictly higher token.
func TestSweepHandoffAcrossReplicas(t *testing.T) {
	spec := adaptiveSweepSpec()
	dir := t.TempDir()

	storeA, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mA, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), fastReplicaConfig(storeA, "a"))
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	mA.pointGate = func(id string, done int) {
		if done == len(spec.PGrid)+1 {
			once.Do(func() { mA.Cancel(id) })
		}
	}
	st, err := mA.Submit(Request{Kind: KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	canceled := waitState(t, mA, st.ID, StateCanceled)
	checkpointed := canceled.Progress.PointsDone
	if checkpointed <= len(spec.PGrid) {
		t.Fatalf("canceled after %d points, want > %d (mid-refinement)", checkpointed, len(spec.PGrid))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mA.Close(ctx); err != nil {
		t.Fatal(err)
	}

	storeB, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svcB := selfishmining.NewService(selfishmining.ServiceConfig{})
	mB, err := New(svcB, fastReplicaConfig(storeB, "b"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mB.Close(ctx)
	})
	if _, err := mB.Resume(st.ID); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, mB, st.ID, StateDone)
	got, err := done.SweepResult.Figure()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceSweep(t, spec)
	equalFigures(t, "handed-off adaptive sweep", want, got)

	// The checkpointed points were replayed, not re-solved, on B's cold
	// service (baseline series never touch the solver).
	attackPoints := len(want.X) * len(spec.Configs)
	if solves := int(svcB.Stats().Solves); solves > attackPoints-checkpointed {
		t.Errorf("handed-off run solved %d points, want <= %d (%d attack points, %d checkpointed)",
			solves, attackPoints-checkpointed, attackPoints, checkpointed)
	}
	stB := mB.Stats()
	if stB.Leases == nil || stB.Leases.Acquired < 1 || stB.Leases.Stolen != 0 {
		t.Errorf("clean handoff lease counters = %+v, want >=1 acquired, 0 stolen", stB.Leases)
	}
	// The final snapshot was persisted under B's fencing token, which is
	// strictly above A's spent token.
	rec, ok, err := storeB.Get(st.ID)
	if err != nil || !ok {
		t.Fatalf("final record: %v, %v", ok, err)
	}
	if rec.Owner != "b" || rec.LeaseToken < 2 {
		t.Errorf("final record owned by %q at token %d, want b at token >= 2", rec.Owner, rec.LeaseToken)
	}
}

// TestReplicaFailoverKillMidSweep is the crash test the in-process tests
// cannot be: a real replica process is SIGKILLed while holding a lease
// mid-sweep (its heartbeat dies with it), and a second replica steals
// the lapsed lease, resumes from the persisted checkpoint, and finishes
// bitwise identical to an uninterrupted run.
func TestReplicaFailoverKillMidSweep(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestReplicaCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "JOBS_REPLICA_HELPER=1", "JOBS_REPLICA_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The helper prints its job ID, then HOLDING once the sweep is
	// parked mid-refinement with >= coarse+1 points persisted.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var jobID string
	holding := false
	timeout := time.After(90 * time.Second)
	for !holding {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("helper replica exited before holding (job %q)", jobID)
			}
			if rest, found := strings.CutPrefix(line, "JOB "); found {
				jobID = rest
			}
			if line == "HOLDING" {
				holding = true
			}
		case <-timeout:
			t.Fatal("helper replica never reached the hold point")
		}
	}
	if jobID == "" {
		t.Fatal("helper replica never printed its job ID")
	}
	// Crash: no cleanup, no release — the lease dies by expiry alone.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	storeB, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svcB := selfishmining.NewService(selfishmining.ServiceConfig{})
	mB, err := New(svcB, Config{
		Store: storeB, ReplicaID: "crash-b", Workers: 1,
		LeaseTTL: time.Second, Heartbeat: 200 * time.Millisecond, PollInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mB.Close(ctx)
	})

	spec := adaptiveSweepSpec()
	done := waitState(t, mB, jobID, StateDone)
	got, err := done.SweepResult.Figure()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceSweep(t, spec)
	equalFigures(t, "stolen adaptive sweep", want, got)

	// The dead replica persisted exactly coarse+1 points before its hold;
	// the thief replays them from the checkpoint instead of re-solving.
	checkpointed := len(spec.PGrid) + 1
	attackPoints := len(want.X) * len(spec.Configs)
	if solves := int(svcB.Stats().Solves); solves > attackPoints-checkpointed {
		t.Errorf("failover run solved %d points, want <= %d (%d attack points, %d checkpointed)",
			solves, attackPoints-checkpointed, attackPoints, checkpointed)
	}
	stB := mB.Stats()
	if stB.Leases == nil || stB.Leases.Stolen < 1 {
		t.Errorf("failover lease counters = %+v, want >= 1 stolen", stB.Leases)
	}
	// The final snapshot landed under the thief's higher fencing token.
	rec, ok, err := storeB.Get(jobID)
	if err != nil || !ok {
		t.Fatalf("final record: %v, %v", ok, err)
	}
	if rec.Owner != "crash-b" || rec.LeaseToken < 2 {
		t.Errorf("final record owned by %q at token %d, want crash-b at token >= 2", rec.Owner, rec.LeaseToken)
	}
	// The dead replica's presence record survives alongside the thief's.
	reps, err := mB.Replicas()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Replica != "crash-a" || reps[1].Replica != "crash-b" {
		t.Errorf("replica registry = %+v, want crash-a and crash-b", reps)
	}
}

// TestReplicaCrashHelper is the victim process for
// TestReplicaFailoverKillMidSweep; it only runs when re-executed by that
// test with the JOBS_REPLICA_HELPER environment set. It starts an
// adaptive sweep over the shared directory, parks the worker forever
// once the checkpoint holds coarse+1 points (heartbeats keep renewing
// the lease), and waits to be killed.
func TestReplicaCrashHelper(t *testing.T) {
	if os.Getenv("JOBS_REPLICA_HELPER") != "1" {
		t.Skip("helper process for TestReplicaFailoverKillMidSweep")
	}
	dir := os.Getenv("JOBS_REPLICA_DIR")
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := adaptiveSweepSpec()
	hold := make(chan struct{}) // never closed: only SIGKILL ends this process
	m, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), Config{
		Store: store, ReplicaID: "crash-a", Workers: 1,
		LeaseTTL: time.Second, Heartbeat: 200 * time.Millisecond, PollInterval: 100 * time.Millisecond,
		Gates: &Gates{Point: func(id string, done int) {
			if done == len(spec.PGrid)+1 {
				fmt.Println("HOLDING")
				<-hold
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(Request{Kind: KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("JOB %s\n", st.ID)
	<-hold
}
