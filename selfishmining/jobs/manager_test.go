package jobs

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/selfishmining"
)

// smallSpec is a quick full analysis used throughout the tests.
var smallSpec = AnalyzeSpec{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, Len: 3, Epsilon: 1e-3}

// familySpecs mirrors the determinism suite's per-family configurations.
var familySpecs = []struct {
	name string
	spec AnalyzeSpec
}{
	{"fork", AnalyzeSpec{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, Len: 3, Epsilon: 1e-3}},
	{"singletree", AnalyzeSpec{Model: "singletree", P: 0.3, Gamma: 0.5, Depth: 1, Forks: 3, Len: 3, Epsilon: 1e-3}},
	{"nakamoto", AnalyzeSpec{Model: "nakamoto", P: 0.4, Gamma: 0, Depth: 1, Forks: 1, Len: 8, Epsilon: 1e-3}},
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(selfishmining.NewService(selfishmining.ServiceConfig{}), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m
}

// waitState polls until the job reaches want (or a terminal state that is
// not want, which fails fast).
func waitState(t *testing.T, m *Manager, id string, want State) *Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s in time", id, want)
	return nil
}

// equalJobResults asserts bitwise equality of two analyze results.
func equalJobResults(t *testing.T, label string, want, got *AnalyzeResult) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: result missing (want %v, got %v)", label, want != nil, got != nil)
	}
	if math.Float64bits(want.ERRev) != math.Float64bits(got.ERRev) ||
		math.Float64bits(want.ERRevUpper) != math.Float64bits(got.ERRevUpper) {
		t.Errorf("%s: bracket [%v, %v] != [%v, %v]", label, got.ERRev, got.ERRevUpper, want.ERRev, want.ERRevUpper)
	}
	switch {
	case want.StrategyERRev == nil != (got.StrategyERRev == nil):
		t.Errorf("%s: strategy ERRev presence differs", label)
	case want.StrategyERRev != nil && math.Float64bits(*want.StrategyERRev) != math.Float64bits(*got.StrategyERRev):
		t.Errorf("%s: strategy ERRev %v != %v", label, *got.StrategyERRev, *want.StrategyERRev)
	}
	if want.Iterations != got.Iterations || want.Sweeps != got.Sweeps {
		t.Errorf("%s: (%d iters, %d sweeps) != (%d iters, %d sweeps)",
			label, got.Iterations, got.Sweeps, want.Iterations, want.Sweeps)
	}
	if len(want.Strategy) != len(got.Strategy) {
		t.Fatalf("%s: strategy lengths %d != %d", label, len(got.Strategy), len(want.Strategy))
	}
	for s := range want.Strategy {
		if want.Strategy[s] != got.Strategy[s] {
			t.Fatalf("%s: strategy diverges at state %d", label, s)
		}
	}
}

// reference solves the spec directly (uninterrupted, fresh service) in the
// stored-result form.
func reference(t *testing.T, spec AnalyzeSpec) *AnalyzeResult {
	t.Helper()
	res, err := selfishmining.NewService(selfishmining.ServiceConfig{}).
		AnalyzeContext(context.Background(), spec.Params(), spec.options()...)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	return analyzeResult(res)
}

func TestJobLifecycleAnalyze(t *testing.T) {
	m := newTestManager(t, Config{})
	st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != StateQueued || st.ID == "" || st.Kind != KindAnalyze {
		t.Fatalf("initial snapshot %+v", st)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.FinishedAt == nil || done.StartedAt == nil {
		t.Error("done job missing timestamps")
	}
	if done.HasCheckpoint {
		t.Error("done job still advertises a checkpoint")
	}
	equalJobResults(t, "lifecycle", reference(t, smallSpec), done.Result)
	if done.Progress.Iterations != done.Result.Iterations {
		t.Errorf("final progress %d iterations, result %d", done.Progress.Iterations, done.Result.Iterations)
	}

	// The event log replays the full lifecycle: queued and running and done
	// status events, with progress events in between, in one sequence.
	evs, err := m.Events(context.Background(), st.ID, -1)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	var states []State
	var progressEvents int
	for i, ev := range evs {
		if int64(i) > 0 && ev.Seq != evs[i-1].Seq+1 {
			t.Errorf("event sequence gap: %d then %d", evs[i-1].Seq, ev.Seq)
		}
		switch ev.Type {
		case "status":
			states = append(states, ev.Status.State)
		case "progress":
			progressEvents++
		}
	}
	if len(states) != 3 || states[0] != StateQueued || states[1] != StateRunning || states[2] != StateDone {
		t.Errorf("status events %v, want [queued running done]", states)
	}
	if progressEvents != done.Result.Iterations {
		t.Errorf("%d progress events for %d binary-search steps", progressEvents, done.Result.Iterations)
	}

	// Replay from a mid-stream cursor yields exactly the suffix.
	mid := evs[len(evs)/2].Seq
	tail, err := m.Events(context.Background(), st.ID, mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(evs)-int(mid)-1 {
		t.Errorf("cursor %d replayed %d events, want %d", mid, len(tail), len(evs)-int(mid)-1)
	}
}

func TestJobCancelResumeDeterminismPerFamily(t *testing.T) {
	for _, tc := range familySpecs {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, tc.spec)
			if want.Iterations < 3 {
				t.Fatalf("reference finished in %d steps; too few to cancel mid-search", want.Iterations)
			}
			// The progress gate cancels the job from its own solving
			// goroutine after step 2 — a deterministic mid-search stop.
			m := newTestManager(t, Config{})
			m.progressGate = func(id string, iter int) {
				if iter == 2 {
					if _, err := m.Cancel(id); err != nil {
						t.Errorf("Cancel from gate: %v", err)
					}
				}
			}
			st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &tc.spec})
			if err != nil {
				t.Fatal(err)
			}
			canceled := waitState(t, m, st.ID, StateCanceled)
			if !canceled.HasCheckpoint {
				t.Fatal("canceled mid-search without a checkpoint")
			}
			if canceled.ErrorCode != "canceled" || canceled.Error == "" {
				t.Errorf("canceled job error %q code %q", canceled.Error, canceled.ErrorCode)
			}
			if canceled.Progress.Iterations < 2 {
				t.Errorf("canceled after %d iterations, gate fired at 2", canceled.Progress.Iterations)
			}
			resumed, err := m.Resume(st.ID)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if resumed.Resumes != 1 {
				t.Errorf("Resumes = %d, want 1", resumed.Resumes)
			}
			done := waitState(t, m, st.ID, StateDone)
			equalJobResults(t, tc.name, want, done.Result)

			stats := m.Stats()
			if stats.Canceled != 1 || stats.Resumed != 1 || stats.Completed != 1 {
				t.Errorf("stats %+v: want 1 canceled, 1 resumed, 1 completed", stats)
			}
		})
	}
}

func TestJobSweepLifecycle(t *testing.T) {
	spec := SweepSpec{
		Gamma: 0.5, PGrid: []float64{0, 0.1, 0.2},
		Configs: []SweepConfig{{Depth: 1, Forks: 1}}, Len: 3, Epsilon: 1e-3,
	}
	m := newTestManager(t, Config{})
	st, err := m.Submit(Request{Kind: KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.PointsTotal != 3 {
		t.Errorf("PointsTotal %d, want 3", st.Progress.PointsTotal)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.Progress.PointsDone != 3 {
		t.Errorf("PointsDone %d, want 3", done.Progress.PointsDone)
	}
	if done.SweepResult == nil {
		t.Fatal("sweep job finished without a result")
	}
	want, err := selfishmining.SweepContext(context.Background(), spec.options())
	if err != nil {
		t.Fatal(err)
	}
	got, err := done.SweepResult.Figure()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%d series, want %d", len(got.Series), len(want.Series))
	}
	for i, s := range want.Series {
		for k, v := range s.Values {
			if math.Float64bits(got.Series[i].Values[k]) != math.Float64bits(v) {
				t.Errorf("series %s point %d: %v != %v", s.Name, k, got.Series[i].Values[k], v)
			}
		}
	}
	// Point events streamed one per grid point.
	evs, err := m.Events(context.Background(), st.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	points := 0
	for _, ev := range evs {
		if ev.Type == "point" {
			points++
			if ev.Point == nil || ev.Progress == nil {
				t.Error("point event missing payloads")
			}
		}
	}
	if points != 3 {
		t.Errorf("%d point events, want 3", points)
	}
}

func TestJobPriorityAndFIFO(t *testing.T) {
	gate := make(chan struct{})
	var gated bool
	m := newTestManager(t, Config{Workers: 1})
	m.runGate = func(id string) {
		if !gated {
			gated = true // only the first job blocks
			<-gate
		}
	}
	blocker, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	// With the only worker pinned, these all queue; the heap must order
	// them priority-first, submit-order within a priority.
	low1, _ := m.Submit(Request{Kind: KindAnalyze, Priority: 0, Analyze: &smallSpec})
	high, _ := m.Submit(Request{Kind: KindAnalyze, Priority: 5, Analyze: &smallSpec})
	low2, _ := m.Submit(Request{Kind: KindAnalyze, Priority: 0, Analyze: &smallSpec})
	if d := m.Stats().QueueDepth; d != 3 {
		t.Fatalf("queue depth %d, want 3", d)
	}
	close(gate)
	for _, id := range []string{blocker.ID, low1.ID, high.ID, low2.ID} {
		waitState(t, m, id, StateDone)
	}
	get := func(id string) *Status {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if !get(high.ID).StartedAt.Before(*get(low1.ID).StartedAt) {
		t.Error("high-priority job started after a low-priority one")
	}
	if !get(low1.ID).StartedAt.Before(*get(low2.ID).StartedAt) {
		t.Error("FIFO violated within a priority")
	}
}

func TestJobQueueLimitAndClosed(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, QueueLimit: 1})
	m.runGate = func(string) { <-gate }
	first, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	if _, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec}); err != nil {
		t.Fatalf("submit within limit: %v", err)
	}
	if _, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit over limit: %v, want ErrQueueFull", err)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func TestJobValidation(t *testing.T) {
	m := newTestManager(t, Config{})
	cases := []Request{
		{Kind: KindAnalyze},                    // missing spec
		{Kind: KindSweep},                      // missing spec
		{Kind: "mystery", Analyze: &smallSpec}, // unknown kind
		{Kind: KindAnalyze, Analyze: &smallSpec, Sweep: &SweepSpec{}}, // both specs
		{Kind: KindAnalyze, Analyze: &AnalyzeSpec{P: 1.5, Gamma: 0.5, Depth: 1, Forks: 1, Len: 2}},
		{Kind: KindAnalyze, Analyze: &AnalyzeSpec{Model: "no-such-family", P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, Len: 2}},
		{Kind: KindSweep, Sweep: &SweepSpec{Gamma: 2}},
		{Kind: KindSweep, Sweep: &SweepSpec{Gamma: 0.5, PGrid: []float64{0.1}, Configs: []SweepConfig{{Depth: 0, Forks: 1}}, Len: 2}},
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Errorf("rejected submissions counted: %+v", st)
	}
}

func TestJobSweepSpecNormalization(t *testing.T) {
	m := newTestManager(t, Config{})
	gate := make(chan struct{})
	m.runGate = func(string) { <-gate }
	defer close(gate)
	st, err := m.Submit(Request{Kind: KindSweep, Sweep: &SweepSpec{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sweep.PGrid) != 31 {
		t.Errorf("default grid has %d points, want 31", len(st.Sweep.PGrid))
	}
	if len(st.Sweep.Configs) != len(selfishmining.Figure2Configs) {
		t.Errorf("default configs %d, want %d", len(st.Sweep.Configs), len(selfishmining.Figure2Configs))
	}
	if st.Sweep.Len != selfishmining.DefaultSweepMaxForkLen || st.Sweep.TreeWidth != 5 {
		t.Errorf("defaults not applied: l=%d width=%d", st.Sweep.Len, st.Sweep.TreeWidth)
	}
	if st.Progress.PointsTotal != 31*len(selfishmining.Figure2Configs) {
		t.Errorf("PointsTotal %d", st.Progress.PointsTotal)
	}
}

func TestJobCancelQueuedAndTerminalTransitions(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1})
	m.runGate = func(string) { <-gate }
	running, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	// A queued job cancels instantly, without a checkpoint, and leaves the
	// queue.
	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.HasCheckpoint {
		t.Errorf("canceled queued job: %+v", st)
	}
	if d := m.Stats().QueueDepth; d != 0 {
		t.Errorf("queue depth %d after canceling the only queued job", d)
	}
	// Cancel is idempotent on canceled jobs; resume re-queues them.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Errorf("re-cancel of canceled job: %v", err)
	}
	if _, err := m.Resume(queued.ID); err != nil {
		t.Fatalf("Resume of queued-canceled job: %v", err)
	}
	// Resume of queued/running jobs is rejected.
	if _, err := m.Resume(running.ID); !errors.Is(err, ErrNotResumable) {
		t.Errorf("Resume of running job: %v", err)
	}
	close(gate)
	done := waitState(t, m, running.ID, StateDone)
	if _, err := m.Cancel(done.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("Cancel of done job: %v", err)
	}
	if _, err := m.Resume(done.ID); !errors.Is(err, ErrNotResumable) {
		t.Errorf("Resume of done job: %v", err)
	}
	waitState(t, m, queued.ID, StateDone)
}

func TestJobEviction(t *testing.T) {
	m := newTestManager(t, Config{TTL: 20 * time.Millisecond})
	st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	time.Sleep(40 * time.Millisecond)
	// Submit triggers an opportunistic retention pass.
	if _, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired job still retrievable: %v", err)
	}
	if ev := m.Stats().Evicted; ev != 1 {
		t.Errorf("Evicted = %d, want 1", ev)
	}
}

func TestJobMaxFinishedCap(t *testing.T) {
	m := newTestManager(t, Config{TTL: -1, MaxFinished: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, st.ID, StateDone)
		ids = append(ids, st.ID)
	}
	// The 5th submit's retention pass must keep only the 2 newest finished.
	if _, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec}); err != nil {
		t.Fatal(err)
	}
	retained := 0
	for _, id := range ids {
		if _, err := m.Get(id); err == nil {
			retained++
		}
	}
	if retained != 2 {
		t.Errorf("retained %d finished jobs, cap is 2", retained)
	}
}

func TestJobListFilters(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1})
	m.runGate = func(string) { <-gate }
	a, _ := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	waitState(t, m, a.ID, StateRunning)
	s, _ := m.Submit(Request{Kind: KindSweep, Sweep: &SweepSpec{
		Gamma: 0.5, PGrid: []float64{0.1}, Configs: []SweepConfig{{Depth: 1, Forks: 1}}, Len: 3, Epsilon: 1e-3,
	}})
	if got := len(m.List(Filter{})); got != 2 {
		t.Errorf("List all: %d, want 2", got)
	}
	if got := m.List(Filter{Kind: KindSweep}); len(got) != 1 || got[0].ID != s.ID {
		t.Errorf("List sweep: %+v", got)
	}
	if got := m.List(Filter{State: StateQueued}); len(got) != 1 || got[0].ID != s.ID {
		t.Errorf("List queued: %+v", got)
	}
	// Newest first.
	if all := m.List(Filter{}); all[0].ID != s.ID {
		t.Error("List not ordered newest-first")
	}
	close(gate)
	waitState(t, m, s.ID, StateDone)
}

// TestJobEventStreamLive subscribes before the job finishes and follows
// the stream to its terminal event, as the SSE handler does.
func TestJobEventStreamLive(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, Config{})
	m.runGate = func(string) { <-release }
	st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	type streamResult struct {
		states []State
		err    error
	}
	got := make(chan streamResult, 1)
	go func() {
		var out streamResult
		after := int64(-1)
		for {
			evs, err := m.Events(context.Background(), st.ID, after)
			if err != nil {
				out.err = err
				break
			}
			if len(evs) == 0 {
				break // terminal and caught up
			}
			for _, ev := range evs {
				if ev.Type == "status" {
					out.states = append(out.states, ev.Status.State)
				}
				after = ev.Seq
			}
		}
		got <- out
	}()
	close(release)
	out := <-got
	if out.err != nil {
		t.Fatalf("stream: %v", out.err)
	}
	want := []State{StateQueued, StateRunning, StateDone}
	if len(out.states) != len(want) {
		t.Fatalf("stream states %v, want %v", out.states, want)
	}
	for i := range want {
		if out.states[i] != want[i] {
			t.Fatalf("stream states %v, want %v", out.states, want)
		}
	}
}

// TestJobEventRingGapSnapshot: a cursor older than the retained ring gets
// a leading status snapshot, then the surviving suffix.
func TestJobEventRingGapSnapshot(t *testing.T) {
	m := newTestManager(t, Config{EventBuffer: 4})
	st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &smallSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	evs, err := m.Events(context.Background(), st.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 {
		t.Fatalf("replay returned %d events, want snapshot + 4 retained", len(evs))
	}
	if evs[0].Type != "status" || evs[0].Status == nil || evs[0].Status.State != StateDone {
		t.Errorf("gap replay does not lead with a terminal status snapshot: %+v", evs[0])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[0].Seq+int64(i) {
			t.Errorf("replay not contiguous at %d", i)
		}
	}
	// A stale cursor beyond the head is reset the same way.
	stale, err := m.Events(context.Background(), st.ID, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != len(evs) || stale[0].Type != "status" {
		t.Errorf("stale cursor replay: %d events", len(stale))
	}
}

func TestJobEventsUnknownJob(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, err := m.Events(context.Background(), "jdeadbeef", -1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Events on unknown job: %v", err)
	}
	if _, err := m.Get("jdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on unknown job: %v", err)
	}
	if _, err := m.Cancel("jdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel on unknown job: %v", err)
	}
	if _, err := m.Resume("jdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Resume on unknown job: %v", err)
	}
}

// TestJobsRaceStress hammers every manager surface concurrently; its value
// is under -race (the weekly CI race job runs it full-length).
func TestJobsRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; run without -short (weekly race job)")
	}
	m := newTestManager(t, Config{Workers: 4, TTL: 50 * time.Millisecond})
	specs := []AnalyzeSpec{
		{P: 0.25, Gamma: 0.5, Depth: 1, Forks: 1, Len: 3, Epsilon: 1e-3, BoundOnly: true},
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, Len: 3, Epsilon: 1e-3},
		{P: 0.35, Gamma: 0.5, Depth: 2, Forks: 1, Len: 3, Epsilon: 1e-3, BoundOnly: true},
	}
	stop := make(chan struct{})
	done := make(chan struct{}, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				spec := specs[(g+i)%len(specs)]
				st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &spec})
				if err != nil {
					continue // queue full etc.
				}
				if i%3 == 0 {
					m.Cancel(st.ID)
					m.Resume(st.ID)
				}
				m.Get(st.ID)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range m.List(Filter{}) {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
					m.Events(ctx, st.ID, -1)
					cancel()
				}
				m.Stats()
			}
		}()
	}
	time.Sleep(1500 * time.Millisecond)
	close(stop)
	for i := 0; i < 8; i++ {
		<-done
	}
}

// BenchmarkJobSubmitOverhead measures the job layer's per-job cost —
// submit, queue, dispatch, record, events — with the solve itself answered
// from the service's result cache, so the harness is what is timed.
func BenchmarkJobSubmitOverhead(b *testing.B) {
	svc := selfishmining.NewService(selfishmining.ServiceConfig{})
	spec := AnalyzeSpec{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, Len: 3, Epsilon: 1e-3}
	if _, err := svc.AnalyzeContext(context.Background(), spec.Params(), spec.options()...); err != nil {
		b.Fatal(err)
	}
	m, err := New(svc, Config{Workers: 2, TTL: -1, MaxFinished: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := m.Submit(Request{Kind: KindAnalyze, Analyze: &spec})
		if err != nil {
			b.Fatal(err)
		}
		after := int64(-1)
		for {
			evs, err := m.Events(context.Background(), st.ID, after)
			if err != nil {
				b.Fatal(err)
			}
			if len(evs) == 0 {
				break
			}
			after = evs[len(evs)-1].Seq
		}
	}
}

// TestJobSweepResumeResetsPointProgress: a sweep canceled mid-grid and
// resumed recomputes from scratch, so the re-run's point counter restarts
// instead of accumulating past PointsTotal.
func TestJobSweepResumeResetsPointProgress(t *testing.T) {
	spec := SweepSpec{
		Gamma: 0.5, PGrid: []float64{0, 0.05, 0.1, 0.15, 0.2},
		Configs: []SweepConfig{{Depth: 1, Forks: 1}}, Len: 3, Epsilon: 1e-3,
	}
	m := newTestManager(t, Config{})
	var once sync.Once
	m.pointGate = func(id string, done int) {
		if done == 2 {
			once.Do(func() { m.Cancel(id) }) // only the first run is interrupted
		}
	}
	st, err := m.Submit(Request{Kind: KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	canceled := waitState(t, m, st.ID, StateCanceled)
	if canceled.Progress.PointsDone < 2 {
		t.Fatalf("canceled after %d points, gate fired at 2", canceled.Progress.PointsDone)
	}
	if _, err := m.Resume(st.ID); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.Progress.PointsDone != done.Progress.PointsTotal {
		t.Errorf("resumed sweep ended at %d/%d points; the counter must reset on re-run",
			done.Progress.PointsDone, done.Progress.PointsTotal)
	}
	if done.SweepResult == nil || len(done.SweepResult.Series) == 0 {
		t.Error("resumed sweep has no panel")
	}
}
