// Package jobs is the asynchronous job layer over the selfish-mining
// analysis pipeline: it wraps selfishmining.Service behind durable job
// records with a full lifecycle (queued → running → done | failed |
// canceled), so analyses and sweeps can outlive the HTTP request or
// terminal session that started them.
//
// A Manager owns a bounded worker pool fed from a priority/FIFO queue,
// per-job progress snapshots driven by the pipeline's progress hooks, a
// per-job event log consumed by Server-Sent-Events streams (with
// Last-Event-ID reconnect), TTL-based retention with eviction, and a
// pluggable Store — in-memory by default, or a JSON-snapshot DiskStore
// that survives process restarts.
//
// # Checkpoint-resume
//
// The load-bearing property is checkpoint-resume: a running analyze job
// snapshots Algorithm 1's binary search after every step (the certified β
// bracket plus the warm value vector, via selfishmining.WithCheckpoints).
// When the job is canceled — or interrupted by a graceful shutdown — the
// latest checkpoint is persisted with the record, and Resume re-enqueues
// the job to replay the search from it (selfishmining.WithResume). A
// resumed job's result is bitwise identical to an uninterrupted solve —
// ERRev, bracket, counters, and the full strategy — even across a process
// restart through a DiskStore; see selfishmining.Checkpoint for why.
// Sweep jobs checkpoint per completed grid point: every point streamed
// through OnPoint is appended to the record's sweep checkpoint, and a
// resumed sweep (uniform or adaptive) replays those points verbatim
// through selfishmining.SweepOptions.Resume instead of re-solving them —
// again bitwise identical, again across restarts.
package jobs

import (
	"fmt"
	"math"
	"time"

	"repro/internal/results"
	"repro/selfishmining"
)

// Kind names a job's workload.
type Kind string

const (
	// KindAnalyze is one attack-configuration analysis
	// (Service.AnalyzeContext).
	KindAnalyze Kind = "analyze"
	// KindSweep is one Figure-2 panel (Service.SweepContext).
	KindSweep Kind = "sweep"
)

// State is a job's lifecycle state. The transitions are
//
//	queued → running → done | failed | canceled
//
// plus running → queued when a graceful shutdown interrupts a job (it is
// checkpointed and re-queued, not discarded), and canceled | failed →
// queued on Resume.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (absent a Resume).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// AnalyzeSpec is the serializable description of one analyze job. Field
// names match the HTTP wire form of cmd/serve's /v1/analyze.
type AnalyzeSpec struct {
	// Model selects the attack-model family ("" = the default fork model).
	Model string  `json:"model,omitempty"`
	P     float64 `json:"p"`
	Gamma float64 `json:"gamma"`
	Depth int     `json:"d"`
	Forks int     `json:"f"`
	Len   int     `json:"l"`
	// Epsilon is the analysis precision (0 = the default 1e-4).
	Epsilon float64 `json:"epsilon,omitempty"`
	// SkipEval skips the independent exact evaluation of the strategy.
	SkipEval bool `json:"skip_eval,omitempty"`
	// BoundOnly certifies the revenue bracket without extracting a
	// strategy.
	BoundOnly bool `json:"bound_only,omitempty"`
	// Kernel selects the value-iteration kernel variant ("" = the default
	// deterministic Jacobi kernel; see selfishmining.KernelVariants). All
	// variants certify the same result.
	Kernel string `json:"kernel,omitempty"`
}

// Params maps the spec onto the public parameter type.
func (s AnalyzeSpec) Params() selfishmining.AttackParams {
	return selfishmining.AttackParams{
		Model:     s.Model,
		Adversary: s.P, Switching: s.Gamma,
		Depth: s.Depth, Forks: s.Forks, MaxForkLen: s.Len,
	}
}

// validate rejects specs the pipeline would reject, up front at Submit.
func (s AnalyzeSpec) validate() error {
	if err := s.Params().Validate(); err != nil {
		return err
	}
	if s.Epsilon < 0 || math.IsNaN(s.Epsilon) || math.IsInf(s.Epsilon, 0) {
		return fmt.Errorf("jobs: epsilon %v: need >= 0 (0 = default)", s.Epsilon)
	}
	if err := selfishmining.ValidateKernel(s.Kernel); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// options assembles the analysis options the spec encodes (the manager
// appends its progress, checkpoint and resume hooks).
func (s AnalyzeSpec) options() []selfishmining.Option {
	var opts []selfishmining.Option
	if s.Epsilon > 0 {
		opts = append(opts, selfishmining.WithEpsilon(s.Epsilon))
	}
	if s.SkipEval {
		opts = append(opts, selfishmining.WithoutStrategyEval())
	}
	if s.BoundOnly {
		opts = append(opts, selfishmining.WithBoundOnly())
	}
	if s.Kernel != "" {
		opts = append(opts, selfishmining.WithKernel(s.Kernel))
	}
	return opts
}

// SweepConfig is one (d, f) attack curve of a sweep job.
type SweepConfig struct {
	Depth int `json:"d"`
	Forks int `json:"f"`
}

// SweepSpec is the serializable description of one sweep job. Submit
// normalizes it — defaults filled in, every grid point validated — so the
// stored record says exactly what will run.
type SweepSpec struct {
	// Model selects the attack-model family of the panel's curves.
	Model string  `json:"model,omitempty"`
	Gamma float64 `json:"gamma"`
	// PGrid lists the adversary resource fractions (nil = the paper's
	// 0..0.3 in steps of 0.01, filled in at Submit).
	PGrid []float64 `json:"p_grid,omitempty"`
	// Configs lists the attack curves (nil = the family's default, filled
	// in at Submit).
	Configs []SweepConfig `json:"configs,omitempty"`
	// Len is the fork length bound l (0 = the family default).
	Len int `json:"l,omitempty"`
	// TreeWidth is the single-tree baseline width (0 = 5).
	TreeWidth int `json:"tree_width,omitempty"`
	// Epsilon is the per-point precision (0 = 1e-4).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Kernel selects the value-iteration kernel variant every grid point is
	// solved with ("" = the default deterministic Jacobi kernel; see
	// selfishmining.KernelVariants). The figure is identical either way.
	Kernel string `json:"kernel,omitempty"`
	// Adaptive switches the sweep to threshold-refining bisection: PGrid
	// becomes the coarse pass (it must be strictly increasing with at
	// least two points), and cells that prove curvature beyond Tolerance
	// are recursively bisected up to MaxDepth. See
	// selfishmining.SweepOptions.Adaptive.
	Adaptive bool `json:"adaptive,omitempty"`
	// Tolerance is the adaptive refinement tolerance (0 = the default
	// selfishmining.DefaultSweepTolerance, filled in at Submit).
	Tolerance float64 `json:"tolerance,omitempty"`
	// MaxDepth bounds the bisection depth (0 = the default
	// selfishmining.DefaultSweepMaxDepth, filled in at Submit).
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxPoints, when > 0, caps the refined points the sweep may add.
	MaxPoints int `json:"max_points,omitempty"`
}

// Normalize fills defaults (mirroring SweepOptions) and validates every
// grid point, so a bad point is a Submit error, never a late job failure.
func (s *SweepSpec) Normalize() error {
	info, ok := selfishmining.ModelInfoFor(s.Model)
	if !ok {
		// Produce the registry's unknown-family error, listing valid names.
		bad := selfishmining.AttackParams{Model: s.Model, Depth: 1, Forks: 1, MaxForkLen: 1}
		return bad.Validate()
	}
	if s.Gamma < 0 || s.Gamma > 1 || math.IsNaN(s.Gamma) {
		return fmt.Errorf("jobs: sweep gamma = %v outside [0, 1]", s.Gamma)
	}
	if s.Epsilon < 0 || math.IsNaN(s.Epsilon) || math.IsInf(s.Epsilon, 0) {
		return fmt.Errorf("jobs: epsilon %v: need >= 0 (0 = default)", s.Epsilon)
	}
	if err := selfishmining.ValidateKernel(s.Kernel); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if s.PGrid == nil {
		s.PGrid = results.Grid(0, 0.3, 0.01)
	}
	if len(s.PGrid) == 0 {
		return fmt.Errorf("jobs: sweep has an empty p-grid")
	}
	isFork := selfishmining.IsDefaultModel(s.Model)
	if s.Len == 0 {
		s.Len = selfishmining.DefaultSweepMaxForkLen
		if !isFork {
			s.Len = info.DefaultMaxForkLen
		}
	}
	if len(s.Configs) == 0 {
		if isFork {
			for _, c := range selfishmining.Figure2Configs {
				s.Configs = append(s.Configs, SweepConfig{Depth: c.Depth, Forks: c.Forks})
			}
		} else {
			s.Configs = []SweepConfig{{Depth: info.DefaultDepth, Forks: info.DefaultForks}}
		}
	}
	if s.TreeWidth == 0 {
		s.TreeWidth = 5
	}
	if s.TreeWidth < 1 {
		return fmt.Errorf("jobs: tree width %d: need >= 1", s.TreeWidth)
	}
	if !s.Adaptive && (s.Tolerance != 0 || s.MaxDepth != 0 || s.MaxPoints != 0) {
		return fmt.Errorf("jobs: tolerance/max_depth/max_points require adaptive = true")
	}
	if s.Adaptive {
		if len(s.PGrid) < 2 {
			return fmt.Errorf("jobs: adaptive sweep needs a coarse grid of >= 2 points, got %d", len(s.PGrid))
		}
		for i := 1; i < len(s.PGrid); i++ {
			if !(s.PGrid[i] > s.PGrid[i-1]) {
				return fmt.Errorf("jobs: adaptive sweep grid must be strictly increasing, got p[%d] = %v after %v",
					i, s.PGrid[i], s.PGrid[i-1])
			}
		}
		if s.Tolerance < 0 || math.IsNaN(s.Tolerance) || math.IsInf(s.Tolerance, 0) {
			return fmt.Errorf("jobs: tolerance %v: need >= 0 (0 = default)", s.Tolerance)
		}
		if s.Tolerance == 0 {
			s.Tolerance = selfishmining.DefaultSweepTolerance
		}
		if s.MaxDepth < 0 {
			return fmt.Errorf("jobs: max depth %d: need >= 0 (0 = default)", s.MaxDepth)
		}
		if s.MaxDepth == 0 {
			s.MaxDepth = selfishmining.DefaultSweepMaxDepth
		}
		if s.MaxPoints < 0 {
			return fmt.Errorf("jobs: max points %d: need >= 0 (0 = unlimited)", s.MaxPoints)
		}
	}
	for _, cfg := range s.Configs {
		for _, p := range s.PGrid {
			if p == 0 {
				continue // the sweep's no-resource shortcut, any family
			}
			params := selfishmining.AttackParams{
				Model:     s.Model,
				Adversary: p, Switching: s.Gamma,
				Depth: cfg.Depth, Forks: cfg.Forks, MaxForkLen: s.Len,
			}
			if err := params.Validate(); err != nil {
				return fmt.Errorf("jobs: sweep point d=%d f=%d p=%g: %w", cfg.Depth, cfg.Forks, p, err)
			}
		}
	}
	return nil
}

// options assembles the sweep options the spec encodes (the manager
// attaches its OnPoint hook).
func (s SweepSpec) options() selfishmining.SweepOptions {
	opts := selfishmining.SweepOptions{
		Model:      s.Model,
		Gamma:      s.Gamma,
		PGrid:      s.PGrid,
		MaxForkLen: s.Len,
		TreeWidth:  s.TreeWidth,
		Epsilon:    s.Epsilon,
		Kernel:     s.Kernel,
		Adaptive:   s.Adaptive,
		Tolerance:  s.Tolerance,
		MaxDepth:   s.MaxDepth,
		MaxPoints:  s.MaxPoints,
	}
	for _, c := range s.Configs {
		opts.Configs = append(opts.Configs, selfishmining.AttackConfig{Depth: c.Depth, Forks: c.Forks})
	}
	return opts
}

// points is the total attack-curve grid-point count over the requested
// grid (the progress denominator), valid after normalize. An adaptive
// sweep refines beyond this coarse total, so its PointsDone may exceed it.
func (s SweepSpec) points() int { return len(s.PGrid) * len(s.Configs) }

// Request submits one job.
type Request struct {
	// Kind selects the workload; it must match the populated spec.
	Kind Kind `json:"kind"`
	// Priority orders the queue: higher runs first, FIFO within a
	// priority.
	Priority int `json:"priority,omitempty"`
	// RequestID tags the job with the HTTP request id that submitted it,
	// correlating job records, logs, and event streams with the original
	// request's access-log line ("" = untagged).
	RequestID string `json:"request_id,omitempty"`
	// Analyze is the spec of a KindAnalyze job.
	Analyze *AnalyzeSpec `json:"analyze,omitempty"`
	// Sweep is the spec of a KindSweep job.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// Progress is a job's live progress snapshot. For analyze jobs the
// certified ERRev bracket and the binary-search counters advance; for
// sweep jobs the point counters do.
type Progress struct {
	// BetaLow and BetaUp are the certified ERRev bracket narrowed so far
	// (analyze jobs; [0, 1] until the first step completes).
	BetaLow float64 `json:"beta_low"`
	BetaUp  float64 `json:"beta_up"`
	// Iterations counts completed binary-search steps (analyze jobs).
	Iterations int `json:"iterations"`
	// Sweeps counts value-iteration sweeps at the last checkpoint
	// (analyze jobs).
	Sweeps int `json:"sweeps"`
	// PointsDone / PointsTotal count completed attack-curve grid points
	// (sweep jobs). PointsTotal counts the requested (coarse) grid; an
	// adaptive sweep's PointsDone can exceed it as refinement adds points.
	PointsDone  int `json:"points_done"`
	PointsTotal int `json:"points_total"`
}

// AnalyzeResult is the stored outcome of a done analyze job.
type AnalyzeResult struct {
	NumStates    int     `json:"num_states"`
	ERRev        float64 `json:"errev"`
	ERRevUpper   float64 `json:"errev_upper"`
	ChainQuality float64 `json:"chain_quality"`
	// StrategyERRev is absent when evaluation was skipped (the NaN marker
	// cannot ride JSON).
	StrategyERRev *float64 `json:"strategy_errev,omitempty"`
	Iterations    int      `json:"iterations"`
	Sweeps        int      `json:"sweeps"`
	// Strategy is the ε-optimal positional strategy (nil for bound-only
	// jobs). O(states) — HTTP surfaces inline it only on request.
	Strategy []int `json:"strategy,omitempty"`
}

// analyzeResult converts a completed analysis into its stored form.
func analyzeResult(a *selfishmining.Analysis) *AnalyzeResult {
	res := &AnalyzeResult{
		NumStates:    a.NumStates,
		ERRev:        a.ERRev,
		ERRevUpper:   a.ERRevUpper,
		ChainQuality: a.ChainQuality(),
		Iterations:   a.Iterations,
		Sweeps:       a.Sweeps,
		Strategy:     a.Strategy,
	}
	if !selfishmining.IsSkipped(a.StrategyERRev) {
		v := a.StrategyERRev
		res.StrategyERRev = &v
	}
	return res
}

// SweepSeries is one named curve of a sweep job's panel.
type SweepSeries struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// SweepResult is the stored outcome of a done sweep job: the assembled
// Figure-2 panel.
type SweepResult struct {
	Title  string        `json:"title"`
	X      []float64     `json:"x"`
	Series []SweepSeries `json:"series"`
}

// Figure reconstructs the panel as a results.Figure (for CSV/Markdown
// rendering by CLI consumers).
func (r *SweepResult) Figure() (*results.Figure, error) {
	fig := &results.Figure{Title: r.Title, X: r.X}
	for _, s := range r.Series {
		if err := fig.AddSeries(s.Name, s.Values); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// sweepResult converts an assembled figure into its stored form.
func sweepResult(fig *results.Figure) *SweepResult {
	res := &SweepResult{Title: fig.Title, X: fig.X}
	for _, s := range fig.Series {
		res.Series = append(res.Series, SweepSeries{Name: s.Name, Values: s.Values})
	}
	return res
}

// Status is a point-in-time snapshot of one job, as returned by Submit,
// Get, List, Cancel and Resume and serialized by the HTTP job endpoints.
// Slices (strategy, grids, series) may be shared with the manager's
// record; treat them as read-only.
type Status struct {
	ID    string `json:"id"`
	Kind  Kind   `json:"kind"`
	State State  `json:"state"`
	// Priority echoes the submit-time queue priority.
	Priority int `json:"priority,omitempty"`
	// Analyze / Sweep echo the (normalized) spec of the matching kind.
	Analyze *AnalyzeSpec `json:"analyze,omitempty"`
	Sweep   *SweepSpec   `json:"sweep,omitempty"`
	// Progress is the live progress snapshot.
	Progress Progress `json:"progress"`
	// Result / SweepResult carry the outcome of a done job.
	Result      *AnalyzeResult `json:"result,omitempty"`
	SweepResult *SweepResult   `json:"sweep_result,omitempty"`
	// Error and ErrorCode describe a failed or canceled job ("canceled" /
	// "solver").
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
	// HasCheckpoint reports a persisted resume checkpoint (analyze jobs
	// interrupted mid-search); Resume replays from it.
	HasCheckpoint bool `json:"has_checkpoint,omitempty"`
	// Interrupted marks a job re-queued by a graceful shutdown or crash
	// recovery rather than by an explicit Resume; it survives completion as
	// a historical marker (an explicit Resume clears it).
	Interrupted bool `json:"interrupted,omitempty"`
	// Resumes counts how many times the job was re-queued via Resume.
	Resumes int `json:"resumes,omitempty"`
	// RequestID echoes the submitting request's id (see Request.RequestID).
	RequestID string `json:"request_id,omitempty"`
	// Owner, LeaseToken and LeaseExpires describe the lease on a job
	// running against a shared LeaseStore: which replica holds it, its
	// monotonic fencing token, and when the lease lapses absent a
	// heartbeat renewal. Empty outside multi-replica mode.
	Owner        string     `json:"owner,omitempty"`
	LeaseToken   uint64     `json:"lease_token,omitempty"`
	LeaseExpires *time.Time `json:"lease_expires,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt timestamp the lifecycle (the
	// pointers are nil until the job reaches the respective state).
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Event is one entry of a job's event log, streamed over SSE. Seq is the
// job-local sequence number (the SSE event id) — reconnect with
// Last-Event-ID to receive only what followed.
type Event struct {
	Seq int64 `json:"seq"`
	// Type is "status" (lifecycle transition; Status set), "progress"
	// (analyze step; Progress set), or "point" (sweep grid point; Point
	// and Progress set).
	Type     string      `json:"type"`
	Status   *Status     `json:"status,omitempty"`
	Progress *Progress   `json:"progress,omitempty"`
	Point    *SweepPoint `json:"point,omitempty"`
}

// SweepPoint is one completed grid point of a sweep job's event stream.
// It doubles as the per-point entry of a sweep job's resume checkpoint
// (Record.SweepCheckpoint): JSON float64 round-trips are exact, so the
// persisted values replay bitwise.
type SweepPoint struct {
	Series string `json:"series"`
	Depth  int    `json:"d"`
	Forks  int    `json:"f"`
	// PIndex is the point's index into the requested grid, or -1 for the
	// refined midpoints of an adaptive sweep.
	PIndex int     `json:"p_index"`
	P      float64 `json:"p"`
	// RefineDepth is the bisection depth of an adaptive sweep's point (0
	// for coarse-grid and uniform points). Distinct from Depth, which is
	// the attack configuration's d.
	RefineDepth int     `json:"refine_depth,omitempty"`
	ERRev       float64 `json:"errev"`
	Sweeps      int     `json:"sweeps"`
}
