package selfishmining

import "repro/internal/families"

// DefaultModel is the family used when AttackParams.Model is empty: the
// paper's fork model.
const DefaultModel = families.DefaultName

// ModelInfo describes one registered attack-model family for discovery
// (the /v1/models endpoint of cmd/serve renders this verbatim).
type ModelInfo struct {
	// Name is the identifier accepted by AttackParams.Model and every
	// -model flag.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description"`
	// Depth, Forks and MaxForkLen document the family's reading of the
	// corresponding AttackParams shape fields.
	Depth      string `json:"depth"`
	Forks      string `json:"forks"`
	MaxForkLen string `json:"max_fork_len"`
	// DefaultDepth, DefaultForks and DefaultMaxForkLen are a sensible
	// small shape for the family.
	DefaultDepth      int `json:"default_depth"`
	DefaultForks      int `json:"default_forks"`
	DefaultMaxForkLen int `json:"default_max_fork_len"`
}

// IsDefaultModel reports whether name selects the default fork family
// (the empty name does).
func IsDefaultModel(name string) bool {
	return name == "" || name == DefaultModel
}

// ModelInfoFor resolves the discovery metadata of one family name, with
// the empty name meaning DefaultModel; ok is false for unknown names
// (validate via AttackParams.Validate for the error with the valid list).
func ModelInfoFor(name string) (info ModelInfo, ok bool) {
	if name == "" {
		name = DefaultModel
	}
	for _, m := range Models() {
		if m.Name == name {
			return m, true
		}
	}
	return ModelInfo{}, false
}

// Models lists the registered attack-model families in name order. Every
// listed name is valid for AttackParams.Model, the -model CLI flags, and
// the HTTP "model" field.
func Models() []ModelInfo {
	fams := families.All()
	infos := make([]ModelInfo, 0, len(fams))
	for _, f := range fams {
		doc := f.ShapeDoc()
		d, fk, l := f.DefaultShape()
		infos = append(infos, ModelInfo{
			Name:              f.Name(),
			Description:       f.Description(),
			Depth:             doc.Depth,
			Forks:             doc.Forks,
			MaxForkLen:        doc.MaxLen,
			DefaultDepth:      d,
			DefaultForks:      fk,
			DefaultMaxForkLen: l,
		})
	}
	return infos
}
