package selfishmining

import (
	"math"
	"sync"
	"testing"
)

// equalAnalyses asserts that two analyses are bitwise identical: the bound,
// the bracket, the search and sweep counts, the independently evaluated
// strategy revenue, and the strategy itself.
func equalAnalyses(t *testing.T, label string, a, b *Analysis) {
	t.Helper()
	if math.Float64bits(a.ERRev) != math.Float64bits(b.ERRev) {
		t.Errorf("%s: ERRev %v != %v", label, a.ERRev, b.ERRev)
	}
	if math.Float64bits(a.ERRevUpper) != math.Float64bits(b.ERRevUpper) {
		t.Errorf("%s: ERRevUpper %v != %v", label, a.ERRevUpper, b.ERRevUpper)
	}
	if math.Float64bits(a.StrategyERRev) != math.Float64bits(b.StrategyERRev) {
		t.Errorf("%s: StrategyERRev %v != %v", label, a.StrategyERRev, b.StrategyERRev)
	}
	if a.Iterations != b.Iterations || a.Sweeps != b.Sweeps {
		t.Errorf("%s: search (%d iters, %d sweeps) != (%d iters, %d sweeps)",
			label, a.Iterations, a.Sweeps, b.Iterations, b.Sweeps)
	}
	if len(a.Strategy) != len(b.Strategy) {
		t.Fatalf("%s: strategy lengths %d != %d", label, len(a.Strategy), len(b.Strategy))
	}
	for s := range a.Strategy {
		if a.Strategy[s] != b.Strategy[s] {
			t.Fatalf("%s: strategy diverges at state %d: %d vs %d", label, s, a.Strategy[s], b.Strategy[s])
		}
	}
}

// TestAnalyzeWorkersDeterminism is the end-to-end half of the chunked-sweep
// determinism argument: Analyze returns bitwise identical results at
// Workers=1 and Workers=4, on both solver backends, across several (d, f)
// configurations.
func TestAnalyzeWorkersDeterminism(t *testing.T) {
	cases := []struct {
		name     string
		params   AttackParams
		backends []bool // values for WithCompiled
	}{
		{"d1_f1", AttackParams{Adversary: 0.25, Switching: 0.5, Depth: 1, Forks: 1, MaxForkLen: 4}, []bool{false, true}},
		{"d2_f1", AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 4}, []bool{false, true}},
		{"d2_f2", AttackParams{Adversary: 0.3, Switching: 0.25, Depth: 2, Forks: 2, MaxForkLen: 4}, []bool{true}},
	}
	for _, tc := range cases {
		for _, compiled := range tc.backends {
			serial, err := Analyze(tc.params, WithWorkers(1), WithCompiled(compiled))
			if err != nil {
				t.Fatalf("%s compiled=%v workers=1: %v", tc.name, compiled, err)
			}
			parallel, err := Analyze(tc.params, WithWorkers(4), WithCompiled(compiled))
			if err != nil {
				t.Fatalf("%s compiled=%v workers=4: %v", tc.name, compiled, err)
			}
			equalAnalyses(t, tc.name, serial, parallel)
		}
	}
}

// sweepPanel runs a reduced Figure-2 panel at the given pool size.
func sweepPanel(t *testing.T, workers int) []struct {
	Name   string
	Values []float64
} {
	t.Helper()
	fig, err := Sweep(SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.2, 0.3},
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
		Workers:    workers,
	})
	if err != nil {
		t.Fatalf("Sweep(workers=%d): %v", workers, err)
	}
	out := make([]struct {
		Name   string
		Values []float64
	}, len(fig.Series))
	for i, s := range fig.Series {
		out[i].Name, out[i].Values = s.Name, s.Values
	}
	return out
}

// TestSweepWorkersDeterminism: a sweep panel is bitwise identical whether
// the grid points run on one worker or race through a pool of four.
func TestSweepWorkersDeterminism(t *testing.T) {
	serial := sweepPanel(t, 1)
	for _, w := range []int{3, 4} {
		pooled := sweepPanel(t, w)
		if len(pooled) != len(serial) {
			t.Fatalf("workers=%d: %d series, serial %d", w, len(pooled), len(serial))
		}
		for i := range serial {
			if pooled[i].Name != serial[i].Name {
				t.Errorf("workers=%d: series %d named %q, serial %q", w, i, pooled[i].Name, serial[i].Name)
			}
			for j := range serial[i].Values {
				if math.Float64bits(pooled[i].Values[j]) != math.Float64bits(serial[i].Values[j]) {
					t.Errorf("workers=%d: series %q point %d: %v != serial %v",
						w, serial[i].Name, j, pooled[i].Values[j], serial[i].Values[j])
				}
			}
		}
	}
}

// TestAnalyzeConcurrent runs several multi-worker analyses at once; under
// -race this checks that concurrent Analyze calls (each fanning out its own
// sweep goroutines) share no state.
func TestAnalyzeConcurrent(t *testing.T) {
	grid := []float64{0.15, 0.2, 0.25, 0.3}
	want := make([]float64, len(grid))
	for i, p := range grid {
		res, err := Analyze(AttackParams{Adversary: p, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 4},
			WithWorkers(1), WithoutStrategyEval())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.ERRev
	}
	var wg sync.WaitGroup
	for i := range grid {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Analyze(AttackParams{Adversary: grid[i], Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 4},
				WithWorkers(2), WithoutStrategyEval())
			if err != nil {
				t.Errorf("p=%v: %v", grid[i], err)
				return
			}
			if math.Float64bits(res.ERRev) != math.Float64bits(want[i]) {
				t.Errorf("p=%v: concurrent ERRev %v != serial %v", grid[i], res.ERRev, want[i])
			}
		}(i)
	}
	wg.Wait()
}

// TestSweepEmptyGrid: a non-nil empty p-grid (or config list) bypasses the
// defaults and must yield an empty figure, not a panic in the pool setup.
func TestSweepEmptyGrid(t *testing.T) {
	fig, err := Sweep(SweepOptions{
		Gamma:   0.5,
		PGrid:   []float64{},
		Configs: []AttackConfig{{Depth: 1, Forks: 1}},
		Workers: 4,
	})
	if err != nil {
		t.Fatalf("Sweep on empty grid: %v", err)
	}
	if len(fig.X) != 0 {
		t.Errorf("empty grid produced %d x-points", len(fig.X))
	}
	for _, s := range fig.Series {
		if len(s.Values) != 0 {
			t.Errorf("series %q has %d values on an empty grid", s.Name, len(s.Values))
		}
	}
	if _, err := Sweep(SweepOptions{
		Gamma:   0.5,
		PGrid:   []float64{0.1},
		Configs: []AttackConfig{},
		Workers: 4,
	}); err != nil {
		t.Fatalf("Sweep with empty config list: %v", err)
	}
}

// TestSweepWorkersOption sanity-checks the pool against the serial
// reference values of the seed's TestSweepSmallGrid shape expectations.
func TestSweepWorkersOption(t *testing.T) {
	fig, err := Sweep(SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.3},
		Configs:    []AttackConfig{{Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
		Workers:    4,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	honest, ours := fig.Series[0], fig.Series[2]
	for i := range fig.X {
		if ours.Values[i] < honest.Values[i]-2e-3 {
			t.Errorf("p=%v: ours %v below honest %v", fig.X[i], ours.Values[i], honest.Values[i])
		}
	}
	if ours.Values[0] != 0 {
		t.Errorf("p=0 point = %v, want exact 0", ours.Values[0])
	}
}
