package selfishmining

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestModelsCatalog: the discovery list carries every registered family
// with usable metadata, fork first by name order contract (sorted).
func TestModelsCatalog(t *testing.T) {
	models := Models()
	if len(models) < 3 {
		t.Fatalf("expected at least 3 families, got %d", len(models))
	}
	seen := map[string]bool{}
	for _, m := range models {
		seen[m.Name] = true
		if m.Description == "" || m.Depth == "" || m.Forks == "" || m.MaxForkLen == "" {
			t.Errorf("family %q has empty metadata: %+v", m.Name, m)
		}
		p := AttackParams{
			Model:     m.Name,
			Adversary: 0.1, Switching: 0.5,
			Depth: m.DefaultDepth, Forks: m.DefaultForks, MaxForkLen: m.DefaultMaxForkLen,
		}
		if err := p.Validate(); err != nil {
			t.Errorf("family %q default shape does not validate: %v", m.Name, err)
		}
	}
	for _, want := range []string{"fork", "singletree", "nakamoto"} {
		if !seen[want] {
			t.Errorf("family %q missing from Models()", want)
		}
	}
	if DefaultModel != "fork" {
		t.Errorf("DefaultModel = %q", DefaultModel)
	}
}

// requireUnknownFamilyError asserts the error names the bad family and
// lists every valid one.
func requireUnknownFamilyError(t *testing.T, err error, context string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: unknown family accepted", context)
	}
	msg := err.Error()
	if !strings.Contains(msg, "bogus") {
		t.Errorf("%s: error %q does not name the unknown family", context, msg)
	}
	for _, m := range Models() {
		if !strings.Contains(msg, m.Name) {
			t.Errorf("%s: error %q does not list valid family %q", context, msg, m.Name)
		}
	}
}

func TestUnknownFamilyErrors(t *testing.T) {
	bad := AttackParams{Model: "bogus", Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 4}

	requireUnknownFamilyError(t, bad.Validate(), "AttackParams.Validate")

	_, err := Analyze(bad)
	requireUnknownFamilyError(t, err, "Analyze")

	svc := NewService(ServiceConfig{})
	_, err = svc.Analyze(bad)
	requireUnknownFamilyError(t, err, "Service.Analyze")

	_, err = svc.AnalyzeBatch([]AttackParams{bad})
	requireUnknownFamilyError(t, err, "Service.AnalyzeBatch")

	_, err = svc.Sweep(SweepOptions{Model: "bogus", Gamma: 0.5, PGrid: []float64{0.1}})
	requireUnknownFamilyError(t, err, "Service.Sweep")

	if n := bad.NumStates(); n != 0 {
		t.Errorf("NumStates of unknown family = %d, want 0", n)
	}
}

// TestNonForkFamilyThroughService: the serving layer solves, caches and
// coalesces non-fork families; singletree must agree with the exact
// baseline it models.
func TestNonForkFamilyThroughService(t *testing.T) {
	svc := NewService(ServiceConfig{})
	p := AttackParams{
		Model:     "singletree",
		Adversary: 0.3, Switching: 0.5,
		Depth: 1, Forks: 3, MaxForkLen: 3,
	}
	res, err := svc.Analyze(p, WithEpsilon(1e-6), WithBoundOnly())
	if err != nil {
		t.Fatalf("Analyze(singletree): %v", err)
	}
	want, err := SingleTreeRevenue(0.3, 0.5, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ERRev-want) > 1e-5 {
		t.Errorf("service singletree ERRev %v, baseline %v", res.ERRev, want)
	}
	_, info, err := svc.AnalyzeDetailed(p, WithEpsilon(1e-6), WithBoundOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Error("repeated singletree request missed the result cache")
	}
	// The same shape under a different family must NOT collide in any
	// cache: nakamoto (1,1,l) vs fork (1,1,l) is the dangerous pair.
	nak := AttackParams{Model: "nakamoto", Adversary: 0.3, Switching: 0.5, Depth: 1, Forks: 1, MaxForkLen: 4}
	fork := AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 1, Forks: 1, MaxForkLen: 4}
	nakRes, err := svc.Analyze(nak, WithEpsilon(1e-4), WithBoundOnly())
	if err != nil {
		t.Fatalf("Analyze(nakamoto): %v", err)
	}
	forkRes, err := svc.Analyze(fork, WithEpsilon(1e-4), WithBoundOnly())
	if err != nil {
		t.Fatalf("Analyze(fork): %v", err)
	}
	if nakRes.ERRev == forkRes.ERRev {
		t.Errorf("nakamoto and fork at the same shape returned identical ERRev %v — cache key collision?", nakRes.ERRev)
	}
}

// TestNonForkFullAnalysisAndSubstrateGates: a full (strategy-extracting)
// non-fork analysis works through the compiled kernel, but the physical
// fork substrate (Simulate/Profile/WriteStrategy) is gated off.
func TestNonForkFullAnalysisAndSubstrateGates(t *testing.T) {
	res, err := Analyze(AttackParams{
		Model:     "nakamoto",
		Adversary: 0.4, Switching: 0,
		Depth: 1, Forks: 1, MaxForkLen: 10,
	}, WithEpsilon(1e-4))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(res.Strategy) != res.Params.NumStates() {
		t.Errorf("strategy covers %d states, model has %d", len(res.Strategy), res.Params.NumStates())
	}
	if IsSkipped(res.StrategyERRev) {
		t.Error("full analysis skipped the strategy evaluation")
	}
	if math.Abs(res.StrategyERRev-res.ERRev) > 1e-3 {
		t.Errorf("strategy ERRev %v far from certified bound %v", res.StrategyERRev, res.ERRev)
	}
	if _, err := res.Simulate(1000, 1); !errors.Is(err, ErrNoSubstrate) {
		t.Errorf("Simulate on non-fork family: err = %v, want ErrNoSubstrate", err)
	}
	if _, err := res.Profile(); !errors.Is(err, ErrNoSubstrate) {
		t.Errorf("Profile on non-fork family: err = %v, want ErrNoSubstrate", err)
	}
	if err := res.WriteStrategy(&strings.Builder{}); !errors.Is(err, ErrNoSubstrate) {
		t.Errorf("WriteStrategy on non-fork family: err = %v, want ErrNoSubstrate", err)
	}
	// The generic backend is fork-only.
	if _, err := Analyze(AttackParams{
		Model: "nakamoto", Adversary: 0.4, Depth: 1, Forks: 1, MaxForkLen: 10,
	}, WithCompiled(false)); err == nil {
		t.Error("WithCompiled(false) accepted for a non-fork family")
	}
}

// TestNonForkSweep: a sweep over a non-fork family produces the honest
// baseline plus one curve per config, with family-named series.
func TestNonForkSweep(t *testing.T) {
	fig, err := Sweep(SweepOptions{
		Model:   "nakamoto",
		Gamma:   0,
		PGrid:   []float64{0, 0.2, 0.4},
		Epsilon: 1e-3,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("got %d series, want 2 (honest + nakamoto default shape)", len(fig.Series))
	}
	if fig.Series[0].Name != "honest" {
		t.Errorf("first series %q, want honest", fig.Series[0].Name)
	}
	if !strings.HasPrefix(fig.Series[1].Name, "nakamoto(") {
		t.Errorf("attack series %q not named after the family", fig.Series[1].Name)
	}
	// p=0.4, γ=0 is above the threshold: the optimal attack beats honest.
	if fig.Series[1].Values[2] <= fig.Series[0].Values[2] {
		t.Errorf("nakamoto %v does not beat honest %v at p=0.4", fig.Series[1].Values[2], fig.Series[0].Values[2])
	}
	// p=0 shortcut applies to every family.
	if fig.Series[1].Values[0] != 0 {
		t.Errorf("p=0 point = %v, want 0", fig.Series[1].Values[0])
	}
}

// TestSingletreeSweepRejectsPOne: per-point family validation runs before
// any solving (singletree is non-ergodic at p=1).
func TestSingletreeSweepRejectsPOne(t *testing.T) {
	_, err := Sweep(SweepOptions{
		Model:   "singletree",
		Gamma:   0.5,
		PGrid:   []float64{0.5, 1},
		Epsilon: 1e-3,
	})
	if err == nil {
		t.Fatal("singletree sweep accepted p=1")
	}
}
