package selfishmining

import (
	"math"
	"strings"
	"testing"
)

// nonDefaultKernels lists every variant name except the default Jacobi.
func nonDefaultKernels() []string { return KernelVariants()[1:] }

// TestKernelVariantsCertifySameERRev: the kernel variants change the solve
// trajectory, never the answer — every variant must certify bitwise the
// same ERRev bracket as the compiled Jacobi default, across families and
// (p, γ) anchor points. The binary search consumes only exact sign
// certificates, so the midpoint sequences coincide exactly.
func TestKernelVariantsCertifySameERRev(t *testing.T) {
	anchors := []struct{ p, gamma float64 }{{0.25, 0.5}, {0.3, 0.9}}
	for _, fam := range Models() {
		p := AttackParams{
			Model: fam.Name,
			Depth: fam.DefaultDepth, Forks: fam.DefaultForks, MaxForkLen: fam.DefaultMaxForkLen,
		}
		for _, a := range anchors {
			p.Adversary, p.Switching = a.p, a.gamma
			ref, err := Analyze(p, WithCompiled(true), WithBoundOnly())
			if err != nil {
				t.Fatalf("%s jacobi at (%v, %v): %v", fam.Name, a.p, a.gamma, err)
			}
			for _, kv := range nonDefaultKernels() {
				res, err := Analyze(p, WithKernel(kv), WithBoundOnly())
				if err != nil {
					t.Fatalf("%s kernel %q at (%v, %v): %v", fam.Name, kv, a.p, a.gamma, err)
				}
				if math.Float64bits(res.ERRev) != math.Float64bits(ref.ERRev) ||
					math.Float64bits(res.ERRevUpper) != math.Float64bits(ref.ERRevUpper) {
					t.Errorf("%s kernel %q at (%v, %v): bracket [%v, %v], jacobi [%v, %v]",
						fam.Name, kv, a.p, a.gamma, res.ERRev, res.ERRevUpper, ref.ERRev, ref.ERRevUpper)
				}
			}
		}
	}
}

// TestKernelVariantFullAnalysisAgrees: with strategy extraction on, a
// variant solve must return the same certified bound and a strategy whose
// independently evaluated revenue lands in the same bracket.
func TestKernelVariantFullAnalysisAgrees(t *testing.T) {
	p := smallParams()
	ref, err := Analyze(p, WithCompiled(true))
	if err != nil {
		t.Fatalf("jacobi: %v", err)
	}
	for _, kv := range []string{"gs", "explore32"} {
		res, err := Analyze(p, WithKernel(kv))
		if err != nil {
			t.Fatalf("kernel %q: %v", kv, err)
		}
		if math.Float64bits(res.ERRev) != math.Float64bits(ref.ERRev) {
			t.Errorf("kernel %q: ERRev %v, jacobi %v", kv, res.ERRev, ref.ERRev)
		}
		if math.Abs(res.StrategyERRev-ref.StrategyERRev) > 1e-6 {
			t.Errorf("kernel %q: StrategyERRev %v, jacobi %v", kv, res.StrategyERRev, ref.StrategyERRev)
		}
	}
}

// TestKernelValidation: unknown names fail up front with the valid list;
// the compiled-only variants cannot be forced onto the generic backend;
// the generic backend does accept its own relaxation variants.
func TestKernelValidation(t *testing.T) {
	p := smallParams()
	if _, err := Analyze(p, WithKernel("turbo")); err == nil || !strings.Contains(err.Error(), "jacobi") {
		t.Errorf("unknown kernel error %v does not list the valid names", err)
	}
	for _, kv := range []string{"spec", "explore32"} {
		if _, err := Analyze(p, WithCompiled(false), WithKernel(kv)); err == nil ||
			!strings.Contains(err.Error(), "compiled backend") {
			t.Errorf("WithCompiled(false)+%q: err = %v, want compiled-backend rejection", kv, err)
		}
	}
	ref, err := Analyze(p, WithCompiled(false), WithBoundOnly())
	if err != nil {
		t.Fatalf("generic jacobi: %v", err)
	}
	res, err := Analyze(p, WithCompiled(false), WithKernel("gs"), WithBoundOnly())
	if err != nil {
		t.Fatalf("generic gs: %v", err)
	}
	if math.Float64bits(res.ERRev) != math.Float64bits(ref.ERRev) {
		t.Errorf("generic gs ERRev %v, generic jacobi %v", res.ERRev, ref.ERRev)
	}
	if err := ValidateKernel("gauss-seidel"); err != nil {
		t.Errorf("ValidateKernel rejected a documented alias: %v", err)
	}
	if err := ValidateKernel("turbo"); err == nil {
		t.Error("ValidateKernel accepted an unknown name")
	}
}

// TestServiceKernelCacheKeys: the result cache keys on the canonical
// variant name — aliases of one variant share an entry, distinct variants
// do not (their Sweeps accounting differs even though the figures agree).
func TestServiceKernelCacheKeys(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	p := smallParams()
	first, info, err := svc.AnalyzeDetailed(p, WithKernel("gs"))
	if err != nil {
		t.Fatalf("gs: %v", err)
	}
	if info.Cached {
		t.Error("first gs call reported Cached")
	}
	aliased, info, err := svc.AnalyzeDetailed(p, WithKernel("gauss-seidel"))
	if err != nil {
		t.Fatalf("gauss-seidel: %v", err)
	}
	if !info.Cached {
		t.Error("alias \"gauss-seidel\" missed the \"gs\" cache entry")
	}
	equalAnalyses(t, "alias vs canonical", first, aliased)
	if _, info, err = svc.AnalyzeDetailed(p, WithKernel("sor")); err != nil {
		t.Fatalf("sor: %v", err)
	} else if info.Cached {
		t.Error("sor was served from the gs cache entry")
	}
	if st := svc.Stats(); st.Solves != 2 {
		t.Errorf("Solves = %d, want 2 (gs solved once, sor once)", st.Solves)
	}
	if _, _, err := svc.AnalyzeDetailed(p, WithKernel("turbo")); err == nil {
		t.Error("service accepted an unknown kernel")
	}
}

// TestSweepKernelMatchesDefaultFigure: a sweep under a non-default kernel
// reproduces the default sweep's figure bitwise — same certified values at
// every grid point.
func TestSweepKernelMatchesDefaultFigure(t *testing.T) {
	base := SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0.1, 0.25},
		Configs:    []AttackConfig{{Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
	}
	ref, err := Sweep(base)
	if err != nil {
		t.Fatalf("default sweep: %v", err)
	}
	withGS := base
	withGS.Kernel = "gs"
	fig, err := Sweep(withGS)
	if err != nil {
		t.Fatalf("gs sweep: %v", err)
	}
	if len(fig.Series) != len(ref.Series) {
		t.Fatalf("series count %d, want %d", len(fig.Series), len(ref.Series))
	}
	for i, s := range fig.Series {
		for j, v := range s.Values {
			if math.Float64bits(v) != math.Float64bits(ref.Series[i].Values[j]) {
				t.Errorf("series %q point %d: %v, default %v", s.Name, j, v, ref.Series[i].Values[j])
			}
		}
	}
	bad := base
	bad.Kernel = "turbo"
	if _, err := Sweep(bad); err == nil {
		t.Error("sweep accepted an unknown kernel")
	}
}
