package selfishmining_test

import (
	"context"
	"fmt"

	"repro/selfishmining"
)

// ExampleModels lists the registered attack-model families: the values
// accepted by AttackParams.Model, the -model CLI flags, and the HTTP
// "model" field.
func ExampleModels() {
	for _, m := range selfishmining.Models() {
		fmt.Println(m.Name)
	}
	// Output:
	// fork
	// nakamoto
	// singletree
}

// ExampleAnalyzeContext_modelFamily analyzes a non-default family: the classic
// Nakamoto d=1 selfish-mining state space. Every family runs through the
// same Algorithm-1 binary search on the protocol-agnostic kernel, so the
// result is a certified ε-tight lower bound exactly as for the fork model.
func ExampleAnalyzeContext_modelFamily() {
	res, err := selfishmining.AnalyzeContext(context.Background(), selfishmining.AttackParams{
		Model:     "nakamoto",
		Adversary: 0.4, Switching: 0,
		Depth: 1, Forks: 1, MaxForkLen: 10,
	}, selfishmining.WithEpsilon(1e-3), selfishmining.WithBoundOnly())
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal Nakamoto selfish mining at p=0.4: ERRev >= %.3f\n", res.ERRev)
	// Output:
	// optimal Nakamoto selfish mining at p=0.4: ERRev >= 0.476
}

// ExampleAnalyzeContext_singletree runs the Eyal–Sirer single-tree baseline as an
// MDP family; its certified bound reproduces the exact stationary chain
// analysis (SingleTreeRevenue) to the requested precision — the
// cross-validation anchor of the family registry.
func ExampleAnalyzeContext_singletree() {
	res, err := selfishmining.AnalyzeContext(context.Background(), selfishmining.AttackParams{
		Model:     "singletree",
		Adversary: 0.3, Switching: 0.5,
		Depth: 1, Forks: 5, MaxForkLen: 4,
	}, selfishmining.WithEpsilon(1e-6), selfishmining.WithBoundOnly())
	if err != nil {
		panic(err)
	}
	exact, err := selfishmining.SingleTreeRevenue(0.3, 0.5, 4, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("family %.4f, exact chain analysis %.4f\n", res.ERRev, exact)
	// Output:
	// family 0.3136, exact chain analysis 0.3136
}

// ExampleAttackParams_Validate shows the unknown-family error: it names
// the bad family and lists every valid one.
func ExampleAttackParams_Validate() {
	p := selfishmining.AttackParams{
		Model:     "bogus",
		Adversary: 0.3, Switching: 0.5,
		Depth: 2, Forks: 2, MaxForkLen: 4,
	}
	fmt.Println(p.Validate())
	// Output:
	// families: unknown model family "bogus" (valid families: fork, nakamoto, singletree)
}
