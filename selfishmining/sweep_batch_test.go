package selfishmining

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/families"
	"repro/internal/results"
)

// TestSplitWorkers pins the pool-split arithmetic: the whole worker budget
// is handed out whenever it is at least the pool size, with the remainder
// spread over the leading slots (the PR-8 fix for the 8-workers/3-tasks
// split, which used to strand two cores on a uniform 2/2/2).
func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		workers, poolSize int
		want              []int
	}{
		{workers: 8, poolSize: 3, want: []int{3, 3, 2}},
		{workers: 8, poolSize: 4, want: []int{2, 2, 2, 2}},
		{workers: 7, poolSize: 2, want: []int{4, 3}},
		{workers: 5, poolSize: 5, want: []int{1, 1, 1, 1, 1}},
		{workers: 3, poolSize: 5, want: []int{1, 1, 1, 1, 1}}, // floor at 1
		{workers: 1, poolSize: 1, want: []int{1}},
	}
	for _, c := range cases {
		total := 0
		for w := 0; w < c.poolSize; w++ {
			got := splitWorkers(c.workers, c.poolSize, w)
			if got != c.want[w] {
				t.Errorf("splitWorkers(%d, %d, %d) = %d, want %d", c.workers, c.poolSize, w, got, c.want[w])
			}
			total += got
		}
		if c.workers >= c.poolSize && total != c.workers {
			t.Errorf("splitWorkers(%d, %d, ·) hands out %d workers, want the full budget", c.workers, c.poolSize, total)
		}
	}
}

func figuresBitwiseEqual(t *testing.T, tag string, got, want *results.Figure) {
	t.Helper()
	if len(got.X) != len(want.X) {
		t.Fatalf("%s: %d x-values, want %d", tag, len(got.X), len(want.X))
	}
	for i := range want.X {
		if math.Float64bits(got.X[i]) != math.Float64bits(want.X[i]) {
			t.Fatalf("%s: X[%d] = %.17g, want %.17g", tag, i, got.X[i], want.X[i])
		}
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: %d series, want %d", tag, len(got.Series), len(want.Series))
	}
	bySeries := make(map[string][]float64, len(want.Series))
	for _, s := range want.Series {
		bySeries[s.Name] = s.Values
	}
	for _, s := range got.Series {
		ref, ok := bySeries[s.Name]
		if !ok {
			t.Errorf("%s: unexpected series %q", tag, s.Name)
			continue
		}
		for i := range ref {
			if math.Float64bits(s.Values[i]) != math.Float64bits(ref[i]) {
				t.Errorf("%s: series %q point %d: %.17g, want %.17g", tag, s.Name, i, s.Values[i], ref[i])
			}
		}
	}
}

// TestBatchedSweepMatchesSoloFigure is the sweep-level pin of the batching
// contract: for every registered family, the figure computed with lane
// batching (auto-sized and forced counts, including a count larger than
// the grid) is bitwise identical to the solo per-point sweep's, and the
// OnPoint stream still delivers every attack point exactly once with the
// figure's exact values.
func TestBatchedSweepMatchesSoloFigure(t *testing.T) {
	grid := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	for _, name := range families.Names() {
		opts := SweepOptions{Model: name, Gamma: 0.5, PGrid: grid, Epsilon: 1e-3}
		if name == families.DefaultName {
			opts.Configs = []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}, {Depth: 2, Forks: 2}}
		}
		want, err := NewService(ServiceConfig{}).SweepContext(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s: solo sweep: %v", name, err)
		}
		for _, lanes := range []int{AutoBatchLanes, 3, len(grid) + 5} {
			bOpts := opts
			bOpts.BatchLanes = lanes
			type pointKey struct {
				series string
				pbits  uint64
			}
			var mu sync.Mutex
			streamed := make(map[pointKey]SweepPoint)
			bOpts.OnPoint = func(pt SweepPoint) {
				mu.Lock()
				defer mu.Unlock()
				k := pointKey{pt.Series, math.Float64bits(pt.P)}
				if _, dup := streamed[k]; dup {
					t.Errorf("%s lanes=%d: point %v streamed twice", name, lanes, k)
				}
				streamed[k] = pt
			}
			got, err := NewService(ServiceConfig{}).SweepContext(context.Background(), bOpts)
			if err != nil {
				t.Fatalf("%s lanes=%d: batched sweep: %v", name, lanes, err)
			}
			figuresBitwiseEqual(t, name, got, want)
			nAttack := len(bOpts.Configs)
			if nAttack == 0 {
				nAttack = 1 // non-fork families default to one config
			}
			if len(streamed) != nAttack*len(grid) {
				t.Errorf("%s lanes=%d: %d streamed points, want %d", name, lanes, len(streamed), nAttack*len(grid))
			}
			for _, s := range got.Series {
				for i, v := range s.Values {
					pt, ok := streamed[pointKey{s.Name, math.Float64bits(got.X[i])}]
					if !ok {
						continue // baseline series are not streamed
					}
					if math.Float64bits(pt.ERRev) != math.Float64bits(v) {
						t.Errorf("%s lanes=%d: streamed %q p=%g ERRev %.17g != figure %.17g",
							name, lanes, s.Name, got.X[i], pt.ERRev, v)
					}
				}
			}
		}
	}
}

// TestBatchedSweepServesResultCache: a repeat batched sweep on the same
// service must answer every point from the result cache the first run
// populated — no fresh solves — and still produce the identical figure.
func TestBatchedSweepServesResultCache(t *testing.T) {
	svc := NewService(ServiceConfig{})
	opts := SweepOptions{
		Gamma: 0.5, PGrid: []float64{0, 0.1, 0.2, 0.3},
		Configs: []AttackConfig{{Depth: 2, Forks: 1}}, MaxForkLen: 3,
		Epsilon: 1e-3, BatchLanes: AutoBatchLanes,
	}
	first, err := svc.SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatalf("first batched sweep: %v", err)
	}
	solves := svc.Stats().Solves
	second, err := svc.SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatalf("second batched sweep: %v", err)
	}
	if got := svc.Stats().Solves; got != solves {
		t.Errorf("repeat batched sweep ran %d fresh solves, want 0", got-solves)
	}
	figuresBitwiseEqual(t, "cached repeat", second, first)
}

// TestBatchedSweepResume: a checkpoint collected from a batched sweep's
// OnPoint stream must let a second batched run skip those points and still
// assemble the bitwise-identical figure (the batched scheduler keeps the
// per-point resume semantics).
func TestBatchedSweepResume(t *testing.T) {
	opts := SweepOptions{
		Gamma: 0.5, PGrid: []float64{0, 0.1, 0.2, 0.3},
		Configs: []AttackConfig{{Depth: 2, Forks: 1}}, MaxForkLen: 3,
		Epsilon: 1e-3, BatchLanes: 2,
	}
	var ck SweepCheckpoint
	full := opts
	full.OnPoint = func(pt SweepPoint) { ck.Points = append(ck.Points, pt) }
	want, err := NewService(ServiceConfig{}).SweepContext(context.Background(), full)
	if err != nil {
		t.Fatalf("checkpoint sweep: %v", err)
	}
	// Resume from a strict prefix so the second run has genuine work left.
	resumed := opts
	resumed.Resume = &SweepCheckpoint{Points: ck.Points[:len(ck.Points)/2]}
	got, err := NewService(ServiceConfig{}).SweepContext(context.Background(), resumed)
	if err != nil {
		t.Fatalf("resumed batched sweep: %v", err)
	}
	figuresBitwiseEqual(t, "resumed", got, want)
}

// TestGoldenAdaptiveBatchSweepBitwise reruns the adaptive golden sweep
// through the batched scheduler: the refined x-axis and every series value
// must match the pinned pre-batching constants bit for bit.
func TestGoldenAdaptiveBatchSweepBitwise(t *testing.T) {
	fig, err := Sweep(SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.2, 0.3},
		Configs:    []AttackConfig{{Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
		Adaptive:   true,
		Tolerance:  1e-3,
		MaxDepth:   2,
		BatchLanes: AutoBatchLanes,
	})
	if err != nil {
		t.Fatalf("adaptive batched Sweep: %v", err)
	}
	if len(fig.X) != len(goldenAdaptiveX) {
		t.Fatalf("got %d x-values, golden %d: %v", len(fig.X), len(goldenAdaptiveX), fig.X)
	}
	for i, want := range goldenAdaptiveX {
		if math.Float64bits(fig.X[i]) != math.Float64bits(want) {
			t.Errorf("X[%d]: %.17g, golden %.17g", i, fig.X[i], want)
		}
	}
	for _, s := range fig.Series {
		want, ok := goldenAdaptiveSeries[s.Name]
		if !ok {
			t.Errorf("unexpected series %q", s.Name)
			continue
		}
		for i := range want {
			if math.Float64bits(s.Values[i]) != math.Float64bits(want[i]) {
				t.Errorf("series %q point %d: %.17g, golden %.17g", s.Name, i, s.Values[i], want[i])
			}
		}
	}
}

// TestBatchedSweepValidation covers the BatchLanes option surface.
func TestBatchedSweepValidation(t *testing.T) {
	base := SweepOptions{
		Gamma: 0.5, PGrid: []float64{0, 0.1},
		Configs: []AttackConfig{{Depth: 1, Forks: 1}}, MaxForkLen: 3, Epsilon: 1e-3,
	}
	bad := base
	bad.BatchLanes = -2
	if _, err := Sweep(bad); err == nil {
		t.Error("sweep accepted BatchLanes = -2")
	}
	gs := base
	gs.BatchLanes = 4
	gs.Kernel = "gs"
	if _, err := Sweep(gs); err == nil {
		t.Error("batched sweep accepted a non-jacobi kernel")
	}
	solo := base
	solo.BatchLanes = 1 // explicit solo: valid, forces the per-point path
	if _, err := Sweep(solo); err != nil {
		t.Errorf("BatchLanes = 1: %v", err)
	}
}
