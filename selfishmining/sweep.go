package selfishmining

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/families"
	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/results"
	adaptive "repro/internal/sweep"
)

// sweepModel canonicalizes the sweep's family name for cache keys.
func sweepModel(opts SweepOptions) string {
	if opts.Model == "" {
		return families.DefaultName
	}
	return opts.Model
}

// attackSeriesName names one attack curve of a panel. The assembled figure
// and every streamed SweepPoint use this single naming, which is what lets
// stream consumers (like cmd/serve's NDJSON endpoint) match points to the
// summary's series by string equality.
func attackSeriesName(opts SweepOptions, cfg AttackConfig) string {
	model := sweepModel(opts)
	if model == families.DefaultName {
		return fmt.Sprintf("ours(d=%d,f=%d)", cfg.Depth, cfg.Forks)
	}
	return fmt.Sprintf("%s(d=%d,f=%d)", model, cfg.Depth, cfg.Forks)
}

// AttackConfig names one (d, f) curve of the paper's Figure 2.
type AttackConfig struct {
	Depth, Forks int
}

// DefaultSweepMaxForkLen is the fork length bound SweepOptions defaults to
// (the paper's l = 4). Exported so callers that must size-check a sweep
// before running it (cmd/serve's -max-states guard) resolve the same
// default the sweep will use.
const DefaultSweepMaxForkLen = 4

// AutoBatchLanes, as SweepOptions.BatchLanes, sizes each batched lane
// group automatically: the lane count is chosen so one group's per-lane
// data (probabilities plus value vectors) fits a fixed cache budget,
// clamped to [2, 16] lanes.
const AutoBatchLanes = -1

// Defaults of the adaptive refinement options (see SweepOptions.Adaptive).
// Exported so the HTTP and CLI layers document and apply the same values
// the sweep would substitute.
const (
	// DefaultSweepTolerance is the refinement tolerance substituted when
	// an adaptive sweep leaves Tolerance unset.
	DefaultSweepTolerance = 1e-3
	// DefaultSweepMaxDepth is the bisection depth bound substituted when
	// an adaptive sweep leaves MaxDepth unset: each coarse cell splits
	// into at most 2^4 = 16 subcells.
	DefaultSweepMaxDepth = 4
)

// Figure2Configs are the five attack configurations evaluated in the paper.
var Figure2Configs = []AttackConfig{
	{Depth: 1, Forks: 1},
	{Depth: 2, Forks: 1},
	{Depth: 2, Forks: 2},
	{Depth: 3, Forks: 2},
	{Depth: 4, Forks: 2},
}

// SweepOptions configures a Figure-2-style parameter sweep for one γ.
type SweepOptions struct {
	// Model selects the attack-model family the attack curves are computed
	// over ("" means DefaultModel, the paper's fork model). The honest
	// baseline is included for every family; the single-tree baseline
	// series only accompanies the fork family (it is that figure's
	// comparator).
	Model string
	// Gamma is the switching probability of the sweep.
	Gamma float64
	// PGrid lists the adversary resource fractions (x-axis). Defaults to
	// 0..0.3 in steps of 0.01, as in the paper. An adaptive sweep
	// additionally requires the grid to be strictly increasing with at
	// least two points — it is the coarse grid refinement starts from.
	PGrid []float64
	// Configs lists the attack curves to compute. Defaults to
	// Figure2Configs for the fork family and to the family's default shape
	// otherwise.
	Configs []AttackConfig
	// MaxForkLen is the length bound l (default 4 for the fork family, as
	// in the paper; the family default shape's bound otherwise).
	MaxForkLen int
	// TreeWidth is the single-tree baseline width (default 5, as in the
	// paper; its depth equals MaxForkLen).
	TreeWidth int
	// Epsilon is the per-point analysis precision (default 1e-4).
	Epsilon float64
	// Kernel selects the value-iteration kernel variant every grid point is
	// solved with ("" or "jacobi" for the bitwise-deterministic default; see
	// KernelVariants). All variants certify the same ERRev values — the
	// figure is identical — but their sweep counts and runtimes differ.
	Kernel string
	// Workers is the size of the worker pool the (configuration, p) grid
	// points are distributed over; 0, the default, uses runtime.NumCPU().
	// Each attack structure is compiled once and shared; every worker
	// solves on its own clone (private probability and value buffers).
	// The computed figure is bitwise identical at every worker count.
	Workers int
	// BatchLanes groups same-configuration grid points into multi-lane
	// batched solves: K nearby p values ride one pass over the shared
	// compiled structure per value-iteration sweep (kernel.Batch), which
	// is substantially faster on memory-bound models than K separate
	// solves. 0, the default, keeps the solo per-point path;
	// AutoBatchLanes sizes lane groups to a cache budget from the panel's
	// structure sizes; 1 forces the solo path; K >= 2 forces K-lane
	// groups. Batched sweeps require the default "jacobi" kernel — the
	// batch replicates exactly its floating-point op sequence — and
	// compute bitwise-identical figures: batching changes scheduling,
	// never results. OnPoint streaming, Resume checkpoints and the result
	// cache keep their per-point semantics in either mode.
	BatchLanes int

	// Adaptive switches the sweep from the uniform grid to threshold-
	// refining bisection: PGrid is solved as a coarse pass, then cells
	// whose corner values disagree by more than Tolerance are recursively
	// bisected (up to MaxDepth) wherever the midpoint proves genuine
	// curvature — which concentrates solves around the profitability
	// threshold instead of spreading them uniformly. The figure's X axis
	// becomes the union of the coarse grid and every refined midpoint.
	// Refinement decisions depend only on solved values, never on timing
	// or caches, so adaptive figures inherit the bitwise-determinism
	// contract: every emitted point is bit-identical to the same point of
	// a uniform sweep. See internal/sweep for the cell tests.
	Adaptive bool
	// Tolerance is the adaptive refinement tolerance (default
	// DefaultSweepTolerance). A cell is left alone once every curve moves
	// by at most Tolerance across it, and recursion stops once midpoints
	// sit within Tolerance of their cell's secant — so the piecewise-
	// linear rendering of the refined curve is accurate to ~Tolerance.
	Tolerance float64
	// MaxDepth bounds the bisection depth of an adaptive sweep (default
	// DefaultSweepMaxDepth); each coarse cell splits into at most
	// 2^MaxDepth subcells.
	MaxDepth int
	// MaxPoints, when > 0, caps the refined (depth ≥ 1) x-values an
	// adaptive sweep may add, truncating deterministically in ascending-p
	// order once the budget runs out.
	MaxPoints int
	// Exhaustive, with Adaptive, bisects every cell to MaxDepth ignoring
	// the tolerance tests: the uniformly refined grid with bitwise the
	// same midpoint arithmetic as an adaptive run. It is the equal-
	// fidelity uniform reference cmd/bench and the property tests compare
	// adaptive runs against.
	Exhaustive bool
	// Resume carries completed points of an earlier identical sweep (a
	// job checkpoint). Points found here are emitted verbatim without
	// solving; the bitwise-determinism contract makes the resumed sweep
	// indistinguishable from an uninterrupted one. The checkpoint must
	// come from a sweep with the same Model, Gamma, MaxForkLen, Epsilon
	// and Kernel — the sweep trusts its values verbatim.
	Resume *SweepCheckpoint

	// Progress, if non-nil, receives one line per completed point. Calls
	// are serialized, but their order across points follows the parallel
	// completion order.
	Progress func(format string, args ...any)
	// OnPoint, if non-nil, streams every attack-curve grid point as soon as
	// it completes — solved, coalesced, answered from the result cache, or
	// short-circuited (p = 0) — instead of only appearing in the final
	// figure. Calls are serialized but follow the parallel completion
	// order; the values streamed are exactly the values the final figure
	// will carry (bitwise — streaming changes delivery, never results).
	// Adaptive sweeps instead emit deterministically: refinement proceeds
	// in waves (one per bisection depth), and within a wave points are
	// held back so they stream in task order — config-major, ascending p.
	// The callback runs on sweep worker goroutines and must return
	// promptly. Baseline series (honest, single-tree) are not streamed;
	// they arrive with the figure.
	OnPoint func(SweepPoint)
}

// SweepPoint is one completed attack-curve grid point of a streaming sweep
// (SweepOptions.OnPoint).
type SweepPoint struct {
	// Config is the attack configuration (d, f) the point belongs to, and
	// Series the name of the figure series that will carry it — the same
	// string SweepContext puts on the assembled panel, so streamed points
	// can be matched to the final figure without re-deriving the naming.
	Config AttackConfig
	Series string
	// PIndex is the point's index into SweepOptions.PGrid; P is the grid
	// value there and Gamma the sweep's switching probability. Refined
	// points of an adaptive sweep lie between grid entries and carry
	// PIndex = -1.
	PIndex int
	P      float64
	Gamma  float64
	// Depth is the point's bisection depth in an adaptive sweep: 0 for
	// coarse-grid points (and every point of a uniform sweep), 1..MaxDepth
	// for refined midpoints.
	Depth int
	// ERRev is the certified lower bound at this point, bitwise equal to
	// the final figure's value.
	ERRev float64
	// Sweeps reports the value-iteration sweeps the point's analysis
	// performed when it was first solved (0 for the p = 0 shortcut; the
	// originally recorded count when served from the result cache or a
	// resume checkpoint).
	Sweeps int
}

// SweepCheckpoint carries the completed points of an interrupted sweep so
// an identical re-run can skip their solves (SweepOptions.Resume). The
// jobs layer accumulates one from the OnPoint stream and persists it with
// the job; only Config, P, ERRev and Sweeps are consulted on resume.
type SweepCheckpoint struct {
	Points []SweepPoint
}

// sweepResumeKey indexes a resume checkpoint by attack configuration and
// the exact bit pattern of p — the bitwise contract is what makes exact
// float matching sound.
type sweepResumeKey struct {
	depth, forks int
	pbits        uint64
}

// resumePoints indexes a checkpoint for O(1) lookup; nil checkpoints give
// a nil (always-missing) map.
func resumePoints(ck *SweepCheckpoint) map[sweepResumeKey]SweepPoint {
	if ck == nil || len(ck.Points) == 0 {
		return nil
	}
	m := make(map[sweepResumeKey]SweepPoint, len(ck.Points))
	for _, pt := range ck.Points {
		if math.IsNaN(pt.P) {
			continue
		}
		m[sweepResumeKey{pt.Config.Depth, pt.Config.Forks, math.Float64bits(pt.P)}] = pt
	}
	return m
}

func (o *SweepOptions) defaults() {
	if o.PGrid == nil {
		o.PGrid = results.Grid(0, 0.3, 0.01)
	}
	isFork := o.Model == "" || o.Model == families.DefaultName
	if o.Configs == nil {
		if isFork {
			o.Configs = Figure2Configs
		} else if fam, err := families.Get(o.Model); err == nil {
			d, f, _ := fam.DefaultShape()
			o.Configs = []AttackConfig{{Depth: d, Forks: f}}
		}
	}
	if o.MaxForkLen <= 0 {
		o.MaxForkLen = DefaultSweepMaxForkLen
		if !isFork {
			if fam, err := families.Get(o.Model); err == nil {
				_, _, l := fam.DefaultShape()
				o.MaxForkLen = l
			}
		}
	}
	if o.TreeWidth <= 0 {
		o.TreeWidth = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.Adaptive {
		if o.Tolerance <= 0 {
			o.Tolerance = DefaultSweepTolerance
		}
		if o.MaxDepth <= 0 {
			o.MaxDepth = DefaultSweepMaxDepth
		}
		if o.MaxPoints < 0 {
			o.MaxPoints = 0
		}
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// validateAdaptive checks the adaptive-only option surface (after
// defaults). The refinement engine re-validates; these duplicate the
// checks a caller can get wrong, with package-appropriate messages.
func (o *SweepOptions) validateAdaptive() error {
	if len(o.PGrid) < 2 {
		return fmt.Errorf("selfishmining: adaptive sweep needs a coarse grid of >= 2 points, got %d", len(o.PGrid))
	}
	for i := 1; i < len(o.PGrid); i++ {
		if !(o.PGrid[i] > o.PGrid[i-1]) {
			return fmt.Errorf("selfishmining: adaptive sweep grid must be strictly increasing, got p[%d] = %v after %v",
				i, o.PGrid[i], o.PGrid[i-1])
		}
	}
	if math.IsNaN(o.Tolerance) || math.IsInf(o.Tolerance, 0) {
		return fmt.Errorf("selfishmining: adaptive tolerance = %v is not finite", o.Tolerance)
	}
	return nil
}

// Sweep is SweepContext under context.Background().
//
// Deprecated: use SweepContext, the canonical v2 entry point, which adds
// cancellation, deadlines and point streaming. Sweep remains a thin
// wrapper and computes bit-identical figures.
func Sweep(opts SweepOptions) (*results.Figure, error) {
	return SweepContext(context.Background(), opts)
}

// SweepContext regenerates one panel of the paper's Figure 2: ERRev as a
// function of the adversary's resource p for the honest baseline, the
// single-tree baseline, and each requested attack configuration, at fixed
// γ.
//
// SweepContext runs through an ephemeral Service, so every call benefits
// from the serving layer's structure sharing (each attack structure is
// compiled once) and warm starts (each grid point seeds value iteration
// from the nearest solved p). Long-lived callers that sweep repeatedly
// should hold their own Service and call its SweepContext method, which
// additionally reuses results and structures across calls. The computed
// figure is bitwise identical at every worker count and cache state.
func SweepContext(ctx context.Context, opts SweepOptions) (*results.Figure, error) {
	return NewService(ServiceConfig{}).SweepContext(ctx, opts)
}

// Sweep is SweepContext under context.Background().
//
// Deprecated: use SweepContext, which adds cancellation, deadlines and
// point streaming; this wrapper computes bit-identical figures.
func (s *Service) Sweep(opts SweepOptions) (*results.Figure, error) {
	return s.SweepContext(context.Background(), opts)
}

// SweepContext computes one Figure-2 panel through the service's caches:
// attack structures come from the structure cache, every grid point is
// answered from the result cache when possible (and coalesced with
// identical in-flight points otherwise), and fresh points warm-start from
// the nearest solved p. See the package-level SweepContext for the panel's
// contents.
//
// With opts.Adaptive the x-axis is refined around the profitability
// threshold instead of staying on the uniform grid: PGrid becomes the
// coarse pass, and cells that prove curvature beyond opts.Tolerance are
// recursively bisected. Refined midpoints warm-start from their just-
// solved neighbors, so deep refinement is much cheaper per point than the
// coarse pass.
//
// The figure is bitwise identical at every worker count and cache state:
// grid points are bound-only analyses, whose certified bracket depends
// only on exact sign decisions (see the Service determinism notes). The
// adaptive point set is likewise deterministic — refinement decisions
// depend only on solved values — and each of its points is bit-identical
// to the same (p, γ) point of a uniform sweep.
//
// ctx cancels the sweep: workers stop drawing new grid points, the point
// being solved stops at its next value-iteration sweep boundary, and the
// call returns a *CancelError (ErrCanceled). Completed points stay in the
// result and warm-start caches — they are full, untainted solves — so a
// re-run resumes from them and still produces the bitwise-identical
// panel. SweepOptions.OnPoint streams each completed point; points
// delivered before a cancellation are exactly the values the full panel
// would have carried, and a checkpoint built from them can skip their
// solves in a later run (SweepOptions.Resume).
func (s *Service) SweepContext(ctx context.Context, opts SweepOptions) (*results.Figure, error) {
	opts.defaults()
	if opts.Gamma < 0 || opts.Gamma > 1 || math.IsNaN(opts.Gamma) {
		return nil, fmt.Errorf("selfishmining: sweep gamma = %v outside [0, 1]", opts.Gamma)
	}
	if err := ValidateKernel(opts.Kernel); err != nil {
		return nil, fmt.Errorf("selfishmining: %w", err)
	}
	if opts.BatchLanes < AutoBatchLanes {
		return nil, fmt.Errorf("selfishmining: sweep BatchLanes = %d (want 0 to disable, AutoBatchLanes, or a positive lane count)", opts.BatchLanes)
	}
	if opts.BatchLanes != 0 {
		if kv, _ := kernel.ParseVariant(opts.Kernel); kv != kernel.VariantJacobi {
			return nil, fmt.Errorf("selfishmining: batched sweeps support only the default %q kernel, got %q", kernel.VariantJacobi, kv)
		}
	}
	if opts.Adaptive {
		if err := opts.validateAdaptive(); err != nil {
			return nil, err
		}
	}
	fam, err := families.Get(opts.Model)
	if err != nil {
		return nil, err
	}
	isFork := fam.Name() == families.DefaultName
	// Validate every (config, p) grid point up front, so one bad point
	// cannot waste a partially solved panel. Adaptive midpoints lie
	// strictly between grid entries, and every family's validity region
	// in p is an interval, so validating the grid covers them too.
	for _, cfg := range opts.Configs {
		for _, p := range opts.PGrid {
			if p == 0 {
				continue // served by the no-resource shortcut, any family
			}
			cp := core.Params{P: p, Gamma: opts.Gamma, Depth: cfg.Depth, Forks: cfg.Forks, MaxLen: opts.MaxForkLen}
			if err := fam.Validate(cp); err != nil {
				return nil, fmt.Errorf("selfishmining: sweep point %v: %w", cp, err)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, s.countCancel(cancelError(err, nil))
	}
	workers := par.Workers(opts.Workers)
	if s.cfg.MaxConcurrent > 0 && workers > s.cfg.MaxConcurrent {
		workers = s.cfg.MaxConcurrent
	}
	var progressMu sync.Mutex
	progress := func(format string, args ...any) {
		progressMu.Lock()
		defer progressMu.Unlock()
		opts.Progress(format, args...)
	}
	title := fmt.Sprintf("Expected relative revenue vs adversary resource (gamma=%g)", opts.Gamma)
	if !isFork {
		title = fmt.Sprintf("Expected relative revenue vs adversary resource (model=%s, gamma=%g)", fam.Name(), opts.Gamma)
	}
	fig := &results.Figure{
		Title:  title,
		XLabel: "p",
		YLabel: "ERRev",
	}

	if opts.Adaptive {
		// Adaptive sweeps discover their x-axis, so the attack curves run
		// first and the baselines follow on the refined grid.
		res, err := s.sweepAdaptive(ctx, opts, workers, progress)
		if err != nil {
			return nil, s.countCancel(err)
		}
		fig.X = res.X
		if err := s.addBaselines(fig, res.X, opts, workers, isFork); err != nil {
			return nil, err
		}
		progress("baselines done (gamma=%g, %d points)", opts.Gamma, len(res.X))
		for ci, cfg := range opts.Configs {
			if err := fig.AddSeries(attackSeriesName(opts, cfg), res.Values[ci]); err != nil {
				return nil, err
			}
		}
		return fig, nil
	}

	fig.X = opts.PGrid
	if err := s.addBaselines(fig, opts.PGrid, opts, workers, isFork); err != nil {
		return nil, err
	}
	progress("baselines done (gamma=%g, %d points)", opts.Gamma, len(opts.PGrid))

	series, err := s.sweepConfigs(ctx, opts, workers, progress)
	if err != nil {
		return nil, s.countCancel(err)
	}
	for ci, cfg := range opts.Configs {
		if err := fig.AddSeries(attackSeriesName(opts, cfg), series[ci]); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// addBaselines appends the honest series — and, for the fork family, the
// single-tree baseline — to fig, evaluated over xs. Baseline points are
// independent exact chain analyses; the single-tree points spread over a
// pool (the honest closed form is too cheap to bother).
func (s *Service) addBaselines(fig *results.Figure, xs []float64, opts SweepOptions, workers int, isFork bool) error {
	honest := make([]float64, len(xs))
	for i, p := range xs {
		v, err := baseline.HonestERRev(p)
		if err != nil {
			return err
		}
		honest[i] = v
	}
	if err := fig.AddSeries("honest", honest); err != nil {
		return err
	}
	if !isFork {
		// The single-tree baseline accompanies the fork figure only — for
		// the singletree family it IS the curve.
		return nil
	}
	tree := make([]float64, len(xs))
	treeErrs := make([]error, len(xs))
	par.For(len(xs), workers, func(_, from, to int) {
		for i := from; i < to; i++ {
			tree[i], treeErrs[i] = baseline.SingleTreeERRev(baseline.SingleTreeParams{
				P: xs[i], Gamma: opts.Gamma, MaxDepth: opts.MaxForkLen, MaxWidth: opts.TreeWidth,
			})
		}
	})
	for _, err := range treeErrs {
		if err != nil {
			return err
		}
	}
	return fig.AddSeries(fmt.Sprintf("single-tree(f=%d)", opts.TreeWidth), tree)
}

// sweepBases resolves each config's (d, f, l) structure once, in parallel
// across configs (cache hits return immediately; misses compile). The
// bases' own mutable buffers stay idle while workers solve on clones,
// because a worker adopting a base would race its parameter mutation
// against other workers cloning from it.
func (s *Service) sweepBases(opts SweepOptions, workers int) ([]*core.Compiled, error) {
	bases := make([]*core.Compiled, len(opts.Configs))
	structErrs := make([]error, len(opts.Configs))
	par.For(len(opts.Configs), workers, func(_, from, to int) {
		for ci := from; ci < to; ci++ {
			cfg := opts.Configs[ci]
			bases[ci], structErrs[ci] = s.structure(structKey{sweepModel(opts), cfg.Depth, cfg.Forks, opts.MaxForkLen})
		}
	})
	for ci, err := range structErrs {
		if err != nil {
			return nil, fmt.Errorf("selfishmining: compiling d=%d f=%d: %w",
				opts.Configs[ci].Depth, opts.Configs[ci].Forks, err)
		}
	}
	return bases, nil
}

// gridTask is one (configuration, p) point a sweep pool must answer.
type gridTask struct {
	ci     int // index into opts.Configs
	wi     int // index into the batch's p slice (uniform sweeps: == pIndex)
	pIndex int // index into opts.PGrid, or -1 for adaptive refined points
	depth  int // bisection depth (0 for coarse and uniform points)
	p      float64
}

// solveTasks answers one batch of grid points on a worker pool: from the
// resume checkpoint when present, the p = 0 shortcut, the result cache,
// or a fresh (warm-started, coalesced) solve. onDone runs exactly once
// per task, serialized under one mutex, in parallel completion order; ctx
// stops workers from drawing new points and interrupts the one being
// solved at its next sweep boundary.
func (s *Service) solveTasks(ctx context.Context, opts SweepOptions, bases []*core.Compiled, workers int,
	resume map[sweepResumeKey]SweepPoint, tasks []gridTask, onDone func(ti int, errev float64, sweeps int)) error {
	if len(tasks) == 0 {
		return nil
	}
	if lanes := opts.batchLanes(bases); lanes >= 2 {
		return s.solveTasksBatched(ctx, opts, bases, workers, lanes, resume, tasks, onDone)
	}
	errs := make([]error, len(tasks))
	var doneMu sync.Mutex
	done := func(ti int, errev float64, sweeps int) {
		doneMu.Lock()
		defer doneMu.Unlock()
		onDone(ti, errev, sweeps)
	}
	poolSize := min(workers, len(tasks))
	var cursor atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		// Split the worker budget: the pool takes the outer (point) level;
		// any leftover cores deepen the per-solve sweep parallelism, with
		// the remainder spread so no core idles. Neither split affects
		// results.
		innerWorkers := splitWorkers(workers, poolSize, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker solves on a clone of the drawn config's base:
			// shared immutable structure, private buffers. Only the current
			// config's clone is retained — tasks are drawn in config-major
			// order, so a worker re-clones at most once per config while
			// peak memory stays at one clone per worker even when the panel
			// includes multi-million-state configurations.
			cloneOf := -1
			var comp *core.Compiled
			for !failed.Load() {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(tasks) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[idx] = cancelError(err, nil)
					failed.Store(true)
					return
				}
				tk := tasks[idx]
				cfg := opts.Configs[tk.ci]
				if tk.p == 0 {
					done(idx, 0, 0) // no resource, no revenue; the p=0 MDP is degenerate
					continue
				}
				if pt, ok := resume[sweepResumeKey{cfg.Depth, cfg.Forks, math.Float64bits(tk.p)}]; ok {
					// Checkpointed by an earlier run of this same sweep:
					// the bitwise contract lets the recorded value stand in
					// for the solve verbatim.
					done(idx, pt.ERRev, pt.Sweeps)
					continue
				}
				if cloneOf != tk.ci {
					comp = bases[tk.ci].Clone()
					comp.SetWorkers(innerWorkers)
					cloneOf = tk.ci
				}
				res, err := s.sweepPoint(ctx, comp, cfg, tk.p, opts)
				if err != nil {
					errs[idx] = fmt.Errorf("selfishmining: sweeping d=%d f=%d: p=%g: %w", cfg.Depth, cfg.Forks, tk.p, err)
					failed.Store(true)
					return
				}
				done(idx, res.ERRev, res.Sweeps)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitWorkers apportions a worker budget over a pool: slot w of poolSize
// gets workers/poolSize cores, with the remainder spread over the first
// workers%poolSize slots — so 8 workers over 3 slots split 3/3/2 instead
// of stranding two cores on a uniform 2/2/2. Worker counts never change
// results, so any split is sound; this one just wastes nothing.
func splitWorkers(workers, poolSize, w int) int {
	base := workers / poolSize
	if w < workers%poolSize {
		base++
	}
	return max(base, 1)
}

// batchLanes resolves the sweep's effective lane count: 0 and 1 keep the
// solo per-point path, AutoBatchLanes is sized from the panel's compiled
// structures, and explicit counts pass through.
func (o *SweepOptions) batchLanes(bases []*core.Compiled) int {
	if o.BatchLanes == AutoBatchLanes {
		return autoBatchLanes(bases)
	}
	return o.BatchLanes
}

// autoBatchLanes sizes a lane group from the panel's largest structure:
// each lane adds a float32 probability per transition and two float64
// value-vector entries per state, and the group works best while that
// per-lane footprint times the lane count stays cache-resident. The 8 MiB
// budget approximates a shared L3 slice; the result is clamped to [2, 8],
// and any budget allowing 8 or more lanes snaps to exactly 8 — the width
// the kernel's hand-specialized dense sweep is built for (see
// kernel.NewBatch), which holds all eight action accumulators in registers
// and is where batching's per-lane advantage over a solo sweep comes from.
func autoBatchLanes(bases []*core.Compiled) int {
	const budget = 8 << 20
	laneBytes := int64(1)
	for _, b := range bases {
		lb := b.NumTransitions()*4 + int64(b.NumStates())*16
		if lb > laneBytes {
			laneBytes = lb
		}
	}
	k := budget / laneBytes
	if k < 2 {
		return 2
	}
	if k > 8 {
		return 8
	}
	return int(k)
}

// BatchLaneCount reports the lane count AutoBatchLanes resolves to for one
// attack structure — deterministic across machines, since it depends only
// on the structure's size and a fixed cache budget. Exported so tooling
// (cmd/bench) can stamp the effective group size into artifacts.
func BatchLaneCount(model string, cfg AttackConfig, maxLen int) (int, error) {
	if model == "" {
		model = families.DefaultName
	}
	// Chain parameters are placeholders; lane sizing reads only the
	// structure's state and transition counts.
	comp, err := families.Compile(model, core.Params{
		P: 0.1, Gamma: 0.5,
		Depth: cfg.Depth, Forks: cfg.Forks, MaxLen: maxLen,
	})
	if err != nil {
		return 0, err
	}
	return autoBatchLanes([]*core.Compiled{comp}), nil
}

// sweepPointKey is the result-cache key of one (configuration, p) sweep
// point — the same key sweepPoint builds, shared by the batched scheduler
// (batched and solo solves are bitwise identical, so sharing entries is
// sound).
func (s *Service) sweepPointKey(opts SweepOptions, cfg AttackConfig, p float64) resultKey {
	params := AttackParams{
		Model:     sweepModel(opts),
		Adversary: p, Switching: opts.Gamma,
		Depth: cfg.Depth, Forks: cfg.Forks, MaxForkLen: opts.MaxForkLen,
	}
	pointCfg := config{epsilon: opts.Epsilon, boundOnly: true, skipEval: true, kernel: opts.Kernel}
	return s.key(params, &pointCfg)
}

// solveTasksBatched is solveTasks' multi-lane twin: points answered by the
// p = 0 shortcut, the resume checkpoint or the result cache are emitted
// up front, and each configuration's remaining points are solved in lane
// groups — one batched bound-only analysis per group, streaming the shared
// structure once per sweep for all lanes (analysis.
// AnalyzeBatchCompiledContext). Configurations spread over a worker pool;
// within one, groups run sequentially and stride the pending points so
// group g+1's lanes sit one stride from group g's and warm-start from its
// freshly solved vectors. onDone keeps the solo contract — exactly once
// per task, serialized — and every emitted value is bitwise identical to
// the solo path's: batching changes scheduling, never results.
func (s *Service) solveTasksBatched(ctx context.Context, opts SweepOptions, bases []*core.Compiled, workers, lanes int,
	resume map[sweepResumeKey]SweepPoint, tasks []gridTask, onDone func(ti int, errev float64, sweeps int)) error {
	var doneMu sync.Mutex
	done := func(ti int, errev float64, sweeps int) {
		doneMu.Lock()
		defer doneMu.Unlock()
		onDone(ti, errev, sweeps)
	}
	// Pass 1: answer every point that needs no solve; the rest queue per
	// configuration, in task order (config-major, ascending p).
	pending := make([][]int, len(opts.Configs))
	for idx, tk := range tasks {
		if err := ctx.Err(); err != nil {
			return cancelError(err, nil)
		}
		cfg := opts.Configs[tk.ci]
		if tk.p == 0 {
			done(idx, 0, 0) // no resource, no revenue; the p=0 MDP is degenerate
			continue
		}
		if pt, ok := resume[sweepResumeKey{cfg.Depth, cfg.Forks, math.Float64bits(tk.p)}]; ok {
			done(idx, pt.ERRev, pt.Sweeps)
			continue
		}
		if a, ok := s.results.Get(s.sweepPointKey(opts, cfg, tk.p)); ok {
			s.sweepPoints.Add(1)
			done(idx, a.ERRev, a.Sweeps)
			continue
		}
		pending[tk.ci] = append(pending[tk.ci], idx)
	}
	work := make([]int, 0, len(pending))
	for ci := range pending {
		if len(pending[ci]) > 0 {
			work = append(work, ci)
		}
	}
	if len(work) == 0 {
		return nil
	}
	// Pass 2: a pool over configurations. The outer level stops at the
	// configuration (not the point, as in solveTasks): lane groups already
	// use the point-level parallelism budget, and a group must see its
	// predecessor's vectors to warm-start.
	poolSize := min(workers, len(work))
	errs := make([]error, len(work))
	var cursor atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		innerWorkers := splitWorkers(workers, poolSize, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				wi := int(cursor.Add(1)) - 1
				if wi >= len(work) {
					return
				}
				ci := work[wi]
				if err := s.solveConfigBatched(ctx, opts, bases[ci], innerWorkers, lanes, tasks, pending[ci], done); err != nil {
					errs[wi] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// solveConfigBatched solves one configuration's pending points on one
// clone of its base structure, in contiguous lane groups of at most
// `lanes` points: group g takes the next `lanes` pending points in
// ascending p. Neighboring p values converge at similar speeds, so the
// lanes of a group finish their searches close together and the batch
// stays at full width — the dense specialized sweep — for almost the
// whole run; a spread-out group would leave its slowest lane running
// alone in a long thin tail. Each group seeds from the previous group's
// converged vectors (nearest p per lane, the batched analog of the warm
// cache's nearest-p rule), which adjoins it in p. A group that
// degenerates to one point takes the solo sweepPoint path, which also
// coalesces it with identical in-flight requests.
func (s *Service) solveConfigBatched(ctx context.Context, opts SweepOptions, base *core.Compiled,
	innerWorkers, lanes int, tasks []gridTask, idxs []int, done func(ti int, errev float64, sweeps int)) error {
	cfg := opts.Configs[tasks[idxs[0]].ci]
	comp := base.Clone()
	comp.SetWorkers(innerWorkers)
	groups := (len(idxs) + lanes - 1) / lanes
	var prevPs []float64
	var prevVals [][]float64
	for g := 0; g < groups; g++ {
		group := idxs[g*lanes : min((g+1)*lanes, len(idxs))]
		if len(group) == 1 {
			batchSoloPoints.Inc()
			tk := tasks[group[0]]
			res, err := s.sweepPoint(ctx, comp, cfg, tk.p, opts)
			if err != nil {
				return fmt.Errorf("selfishmining: sweeping d=%d f=%d: p=%g: %w", cfg.Depth, cfg.Forks, tk.p, err)
			}
			done(group[0], res.ERRev, res.Sweeps)
			continue
		}
		batchGroupsScheduled.Inc()
		batchGroupLanes.Add(uint64(len(group)))
		ps := make([]float64, len(group))
		seeds := make([][]float64, len(group))
		for i, idx := range group {
			ps[i] = tasks[idx].p
			seeds[i] = nearestSeed(prevPs, prevVals, ps[i])
		}
		as, vals, err := s.sweepBatch(ctx, comp, cfg, ps, seeds, opts, innerWorkers)
		if err != nil {
			return fmt.Errorf("selfishmining: sweeping d=%d f=%d (batch of %d): %w", cfg.Depth, cfg.Forks, len(group), err)
		}
		for i, idx := range group {
			done(idx, as[i].ERRev, as[i].Sweeps)
		}
		prevPs, prevVals = ps, vals
	}
	return nil
}

// nearestSeed picks the previous lane group's converged vector closest in
// p to the queried point. Seeds change sweep counts, never results (see
// the Service determinism notes), so a nil return — first group, or a
// previous lane without a vector — just means a colder start.
func nearestSeed(ps []float64, vals [][]float64, p float64) []float64 {
	best := -1
	for i := range ps {
		if vals[i] == nil {
			continue
		}
		if best < 0 || math.Abs(ps[i]-p) < math.Abs(ps[best]-p) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return vals[best]
}

// sweepConfigs computes the attack curves of a uniform-grid panel with a
// worker pool over all (configuration, p) points. Completed points are
// streamed through opts.OnPoint (serialized) as they finish.
func (s *Service) sweepConfigs(ctx context.Context, opts SweepOptions, workers int, progress func(string, ...any)) ([][]float64, error) {
	bases, err := s.sweepBases(opts, workers)
	if err != nil {
		return nil, err
	}
	tasks := make([]gridTask, 0, len(opts.Configs)*len(opts.PGrid))
	for ci := range opts.Configs {
		for pi, p := range opts.PGrid {
			tasks = append(tasks, gridTask{ci: ci, wi: pi, pIndex: pi, p: p})
		}
	}
	out := make([][]float64, len(opts.Configs))
	for ci := range out {
		out[ci] = make([]float64, len(opts.PGrid))
	}
	resume := resumePoints(opts.Resume)
	err = s.solveTasks(ctx, opts, bases, workers, resume, tasks, func(ti int, errev float64, sweeps int) {
		tk := tasks[ti]
		cfg := opts.Configs[tk.ci]
		out[tk.ci][tk.pIndex] = errev
		if opts.OnPoint != nil {
			opts.OnPoint(SweepPoint{
				Config: cfg, Series: attackSeriesName(opts, cfg),
				PIndex: tk.pIndex, P: tk.p, Gamma: opts.Gamma,
				ERRev: errev, Sweeps: sweeps,
			})
		}
		if tk.p != 0 {
			progress("d=%d f=%d p=%.2f gamma=%g: ERRev=%.5f (%d sweeps)",
				cfg.Depth, cfg.Forks, tk.p, opts.Gamma, errev, sweeps)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sweepAdaptive computes the attack curves of an adaptive panel: the
// refinement engine decides which points exist, wave by wave, and each
// wave is solved over the same worker pool (and caches) uniform sweeps
// use. Refined midpoints warm-start from their freshly solved neighbors
// through the service's warm-start cache — the solved corners of a cell
// are exactly the nearest-p vectors when its midpoint solves.
//
// Emission is deterministic: within a wave, completed points are held
// back until every earlier task of the wave (config-major, ascending p)
// has finished, so the OnPoint stream — and any checkpoint built from a
// prefix of it — is reproducible point for point.
func (s *Service) sweepAdaptive(ctx context.Context, opts SweepOptions, workers int, progress func(string, ...any)) (*adaptive.Result, error) {
	bases, err := s.sweepBases(opts, workers)
	if err != nil {
		return nil, err
	}
	resume := resumePoints(opts.Resume)
	solve := func(ps []float64, depth int) ([][]float64, error) {
		tasks := make([]gridTask, 0, len(ps)*len(opts.Configs))
		for ci := range opts.Configs {
			for wi, p := range ps {
				pIndex := -1
				if depth == 0 {
					pIndex = wi // the coarse wave IS the requested grid
				}
				tasks = append(tasks, gridTask{ci: ci, wi: wi, pIndex: pIndex, depth: depth, p: p})
			}
		}
		vals := make([][]float64, len(opts.Configs))
		for ci := range vals {
			vals[ci] = make([]float64, len(ps))
		}
		pts := make([]SweepPoint, len(tasks))
		completed := make([]bool, len(tasks))
		frontier := 0
		err := s.solveTasks(ctx, opts, bases, workers, resume, tasks, func(ti int, errev float64, sweeps int) {
			tk := tasks[ti]
			cfg := opts.Configs[tk.ci]
			vals[tk.ci][tk.wi] = errev
			pts[ti] = SweepPoint{
				Config: cfg, Series: attackSeriesName(opts, cfg),
				PIndex: tk.pIndex, P: tk.p, Gamma: opts.Gamma, Depth: tk.depth,
				ERRev: errev, Sweeps: sweeps,
			}
			completed[ti] = true
			for frontier < len(tasks) && completed[frontier] {
				pt := pts[frontier]
				if opts.OnPoint != nil {
					opts.OnPoint(pt)
				}
				if pt.P != 0 {
					progress("d=%d f=%d p=%g gamma=%g depth=%d: ERRev=%.5f (%d sweeps)",
						pt.Config.Depth, pt.Config.Forks, pt.P, opts.Gamma, pt.Depth, pt.ERRev, pt.Sweeps)
				}
				frontier++
			}
		})
		if err != nil {
			return nil, err
		}
		return vals, nil
	}
	res, err := adaptive.Refine(adaptive.Options{
		Grid:      opts.PGrid,
		Configs:   len(opts.Configs),
		Tolerance: opts.Tolerance,
		MaxDepth:  opts.MaxDepth,
		MaxPoints: opts.MaxPoints,
		Force:     opts.Exhaustive,
	}, solve)
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		progress("refinement budget exhausted after %d refined points (max %d)", res.Refined, opts.MaxPoints)
	}
	progress("adaptive refinement done: %d x-values (%d coarse + %d refined)",
		len(res.X), len(opts.PGrid), res.Refined)
	return res, nil
}

// sweepPoint answers one grid point: from the result cache when available,
// coalesced with an identical in-flight point otherwise, and solved on the
// calling worker's clone as the singleflight leader — seeded from the
// nearest solved p — when the point is genuinely new. A cancellation
// interrupts the solve at its next sweep boundary and stores nothing.
func (s *Service) sweepPoint(ctx context.Context, comp *core.Compiled, cfg AttackConfig, p float64, opts SweepOptions) (*Analysis, error) {
	s.sweepPoints.Add(1)
	params := AttackParams{
		Model:     sweepModel(opts),
		Adversary: p, Switching: opts.Gamma,
		Depth: cfg.Depth, Forks: cfg.Forks, MaxForkLen: opts.MaxForkLen,
	}
	pointCfg := config{epsilon: opts.Epsilon, boundOnly: true, skipEval: true, kernel: opts.Kernel}
	key := s.key(params, &pointCfg)
	for {
		if a, ok := s.results.Get(key); ok {
			return a, nil
		}
		a, err, shared := s.flight.DoContext(ctx, key, func() (*Analysis, error) {
			// The global solve limit covers sweep points too: a single sweep's
			// pool is already capped, but concurrent sweeps and analyzes share
			// this semaphore.
			if err := s.acquire(ctx); err != nil {
				return nil, cancelError(err, nil)
			}
			defer s.release()
			start := time.Now()
			if err := comp.SetChainParams(p, opts.Gamma); err != nil {
				return nil, err
			}
			sk := structKey{sweepModel(opts), cfg.Depth, cfg.Forks, opts.MaxForkLen}
			kv, _ := kernel.ParseVariant(opts.Kernel) // validated by SweepContext
			aOpts := analysis.Options{Epsilon: opts.Epsilon, SkipStrategyEval: true, SkipStrategy: true, Kernel: kv}
			if seed, ok := s.warmSeed(sk, opts.Gamma, p, comp.NumStates()); ok {
				aOpts.InitialValues = seed
			}
			s.solves.Add(1)
			res, err := analysis.AnalyzeCompiledContext(ctx, comp, aOpts)
			if err != nil {
				return nil, cancelError(err, res)
			}
			res.Duration = time.Since(start)
			s.warmPut(sk, opts.Gamma, p, comp)
			a, err := newAnalysis(params, params.core(), res, false, comp.NumStates())
			if err != nil {
				return nil, err
			}
			s.results.Add(key, a)
			return a, nil
		})
		if err != nil {
			// A point coalesced across CONCURRENT sweeps can inherit the
			// other sweep's cancellation; while this sweep's own context
			// is live, retry as a fresh leader (see the matching branch in
			// AnalyzeDetailedContext).
			if shared && isCtxErr(err) && ctx.Err() == nil {
				continue
			}
			return nil, cancelError(err, nil)
		}
		return a, nil
	}
}

// sweepBatch answers one lane group of a batched sweep: len(ps) same-
// configuration points solved in a single multi-lane bound-only analysis
// over comp's shared structure, occupying one MaxConcurrent slot for the
// whole group. Each lane's result is bitwise identical to the solo
// sweepPoint solve at that (p, γ), so the lanes populate the solo path's
// result-cache entries and warm-start neighborhoods. Unlike sweepPoint,
// lanes are not singleflight-coalesced: the batched scheduler filters
// cached points before grouping, and a concurrent identical sweep merely
// duplicates work, never diverges results.
//
// seeds[i], when non-nil, warm-starts lane i (the caller passes the
// previous group's vectors); other lanes fall back to the warm cache.
// Returns the per-lane analyses plus each lane's converged value vector
// for seeding the caller's next group.
func (s *Service) sweepBatch(ctx context.Context, comp *core.Compiled, cfg AttackConfig, ps []float64,
	seeds [][]float64, opts SweepOptions, workers int) ([]*Analysis, [][]float64, error) {
	s.sweepPoints.Add(uint64(len(ps)))
	if err := s.acquire(ctx); err != nil {
		return nil, nil, cancelError(err, nil)
	}
	defer s.release()
	sk := structKey{sweepModel(opts), cfg.Depth, cfg.Forks, opts.MaxForkLen}
	lanes := make([]analysis.BatchLane, len(ps))
	for i, p := range ps {
		lanes[i] = analysis.BatchLane{P: p, Gamma: opts.Gamma}
		if i < len(seeds) && seeds[i] != nil {
			lanes[i].InitialValues = seeds[i]
		} else if seed, ok := s.warmSeed(sk, opts.Gamma, p, comp.NumStates()); ok {
			lanes[i].InitialValues = seed
		}
	}
	// On hardware with the assembly dense sweep, pad a short group to the
	// dense width by duplicating its last lane: the full-width sweep costs
	// less than two generic per-lane passes, so burning padded lanes on
	// duplicate work is faster than running narrow. Padding never reaches
	// the results — duplicate lanes are sliced off below — and cannot
	// change them anyway (lanes never interact; see kernel.Batch).
	if kernel.DenseBatchAsm() && len(lanes) > 1 && len(lanes) < kernel.DenseBatchWidth {
		for len(lanes) < kernel.DenseBatchWidth {
			lanes = append(lanes, lanes[len(ps)-1])
		}
	}
	s.solves.Add(uint64(len(ps)))
	lrs, err := analysis.AnalyzeBatchCompiledContext(ctx, comp, lanes, analysis.Options{
		Epsilon: opts.Epsilon, SkipStrategyEval: true, SkipStrategy: true, Workers: workers,
	})
	if err != nil {
		return nil, nil, cancelError(err, nil)
	}
	out := make([]*Analysis, len(ps))
	vals := make([][]float64, len(ps))
	for i, lr := range lrs[:len(ps)] {
		vals[i] = lr.Values
		s.warmPutVec(sk, opts.Gamma, ps[i], comp.NumStates(), lr.Values)
		params := AttackParams{
			Model:     sweepModel(opts),
			Adversary: ps[i], Switching: opts.Gamma,
			Depth: cfg.Depth, Forks: cfg.Forks, MaxForkLen: opts.MaxForkLen,
		}
		a, err := newAnalysis(params, params.core(), &lr.Result, false, comp.NumStates())
		if err != nil {
			return nil, nil, err
		}
		s.results.Add(s.sweepPointKey(opts, cfg, ps[i]), a)
		out[i] = a
	}
	return out, vals, nil
}
