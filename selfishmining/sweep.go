package selfishmining

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/results"
)

// AttackConfig names one (d, f) curve of the paper's Figure 2.
type AttackConfig struct {
	Depth, Forks int
}

// Figure2Configs are the five attack configurations evaluated in the paper.
var Figure2Configs = []AttackConfig{
	{Depth: 1, Forks: 1},
	{Depth: 2, Forks: 1},
	{Depth: 2, Forks: 2},
	{Depth: 3, Forks: 2},
	{Depth: 4, Forks: 2},
}

// SweepOptions configures a Figure-2-style parameter sweep for one γ.
type SweepOptions struct {
	// Gamma is the switching probability of the sweep.
	Gamma float64
	// PGrid lists the adversary resource fractions (x-axis). Defaults to
	// 0..0.3 in steps of 0.01, as in the paper.
	PGrid []float64
	// Configs lists the attack curves to compute. Defaults to
	// Figure2Configs.
	Configs []AttackConfig
	// MaxForkLen is the fork length bound l (default 4, as in the paper).
	MaxForkLen int
	// TreeWidth is the single-tree baseline width (default 5, as in the
	// paper; its depth equals MaxForkLen).
	TreeWidth int
	// Epsilon is the per-point analysis precision (default 1e-4).
	Epsilon float64
	// Workers is the size of the worker pool the (configuration, p) grid
	// points are distributed over; 0, the default, uses runtime.NumCPU().
	// Each attack structure is compiled once and shared; every worker
	// solves on its own clone (private probability and value buffers).
	// The computed figure is bitwise identical at every worker count.
	Workers int
	// Progress, if non-nil, receives one line per completed point. Calls
	// are serialized, but their order across points follows the parallel
	// completion order.
	Progress func(format string, args ...any)
}

func (o *SweepOptions) defaults() {
	if o.PGrid == nil {
		o.PGrid = results.Grid(0, 0.3, 0.01)
	}
	if o.Configs == nil {
		o.Configs = Figure2Configs
	}
	if o.MaxForkLen <= 0 {
		o.MaxForkLen = 4
	}
	if o.TreeWidth <= 0 {
		o.TreeWidth = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// Sweep regenerates one panel of the paper's Figure 2: ERRev as a function
// of the adversary's resource p for the honest baseline, the single-tree
// baseline, and each requested attack configuration, at fixed γ.
//
// Each attack configuration is compiled once; the (configuration, p) grid
// points are then distributed over a pool of Workers goroutines, each
// solving on its own clone of the compiled structure (the immutable
// transition arrays are shared, the probability and value buffers are
// private). Every point is solved exactly as in a serial sweep and results
// land in grid order, so the figure is bitwise identical at every worker
// count.
func Sweep(opts SweepOptions) (*results.Figure, error) {
	opts.defaults()
	if opts.Gamma < 0 || opts.Gamma > 1 || math.IsNaN(opts.Gamma) {
		return nil, fmt.Errorf("selfishmining: sweep gamma = %v outside [0, 1]", opts.Gamma)
	}
	workers := par.Workers(opts.Workers)
	var progressMu sync.Mutex
	progress := func(format string, args ...any) {
		progressMu.Lock()
		defer progressMu.Unlock()
		opts.Progress(format, args...)
	}
	fig := &results.Figure{
		Title:  fmt.Sprintf("Expected relative revenue vs adversary resource (gamma=%g)", opts.Gamma),
		XLabel: "p",
		YLabel: "ERRev",
		X:      opts.PGrid,
	}

	honest := make([]float64, len(opts.PGrid))
	for i, p := range opts.PGrid {
		v, err := baseline.HonestERRev(p)
		if err != nil {
			return nil, err
		}
		honest[i] = v
	}
	if err := fig.AddSeries("honest", honest); err != nil {
		return nil, err
	}

	// The single-tree baseline points are independent exact chain analyses;
	// spread them over the pool too.
	tree := make([]float64, len(opts.PGrid))
	treeErrs := make([]error, len(opts.PGrid))
	par.For(len(opts.PGrid), workers, func(_, from, to int) {
		for i := from; i < to; i++ {
			tree[i], treeErrs[i] = baseline.SingleTreeERRev(baseline.SingleTreeParams{
				P: opts.PGrid[i], Gamma: opts.Gamma, MaxDepth: opts.MaxForkLen, MaxWidth: opts.TreeWidth,
			})
		}
	})
	for _, err := range treeErrs {
		if err != nil {
			return nil, err
		}
	}
	if err := fig.AddSeries(fmt.Sprintf("single-tree(f=%d)", opts.TreeWidth), tree); err != nil {
		return nil, err
	}
	progress("baselines done (gamma=%g, %d points)", opts.Gamma, len(opts.PGrid))

	series, err := sweepConfigs(opts, workers, progress)
	if err != nil {
		return nil, err
	}
	for ci, cfg := range opts.Configs {
		if err := fig.AddSeries(fmt.Sprintf("ours(d=%d,f=%d)", cfg.Depth, cfg.Forks), series[ci]); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// sweepConfigs computes the attack curves of a panel with a worker pool
// over all (configuration, p) points. The bases' own mutable buffers stay
// idle while workers solve on clones — one extra solver instance per config
// (the serial footprint) — because a worker adopting a base would race its
// parameter mutation against other workers cloning from it.
func sweepConfigs(opts SweepOptions, workers int, progress func(string, ...any)) ([][]float64, error) {
	// Compile each (d, f, l) structure once, in parallel across configs.
	bases := make([]*core.Compiled, len(opts.Configs))
	compileErrs := make([]error, len(opts.Configs))
	par.For(len(opts.Configs), workers, func(_, from, to int) {
		for ci := from; ci < to; ci++ {
			cfg := opts.Configs[ci]
			bases[ci], compileErrs[ci] = core.Compile(core.Params{
				P:      0.1, // placeholder; set per grid point
				Gamma:  opts.Gamma,
				Depth:  cfg.Depth,
				Forks:  cfg.Forks,
				MaxLen: opts.MaxForkLen,
			})
		}
	})
	for ci, err := range compileErrs {
		if err != nil {
			return nil, fmt.Errorf("selfishmining: compiling d=%d f=%d: %w",
				opts.Configs[ci].Depth, opts.Configs[ci].Forks, err)
		}
	}

	type point struct{ ci, pi int }
	tasks := make([]point, 0, len(opts.Configs)*len(opts.PGrid))
	for ci := range opts.Configs {
		for pi := range opts.PGrid {
			tasks = append(tasks, point{ci, pi})
		}
	}
	out := make([][]float64, len(opts.Configs))
	for ci := range out {
		out[ci] = make([]float64, len(opts.PGrid))
	}
	if len(tasks) == 0 {
		return out, nil
	}
	errs := make([]error, len(tasks))

	poolSize := workers
	if poolSize > len(tasks) {
		poolSize = len(tasks)
	}
	// Split the worker budget: the pool takes the outer (point) level; any
	// leftover cores deepen the per-solve sweep parallelism. Neither split
	// affects results.
	innerWorkers := workers / poolSize
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	var cursor atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker solves on a clone of the drawn config's base:
			// shared immutable structure, private buffers. Only the current
			// config's clone is retained — tasks are drawn in config-major
			// order, so a worker re-clones at most once per config while
			// peak memory stays at one clone per worker even when the panel
			// includes multi-million-state configurations.
			cloneOf := -1
			var comp *core.Compiled
			for !failed.Load() {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(tasks) {
					return
				}
				tk := tasks[idx]
				cfg := opts.Configs[tk.ci]
				p := opts.PGrid[tk.pi]
				if p == 0 {
					out[tk.ci][tk.pi] = 0 // no resource, no revenue; the p=0 MDP is degenerate
					continue
				}
				if cloneOf != tk.ci {
					comp = bases[tk.ci].Clone()
					comp.SetWorkers(innerWorkers)
					cloneOf = tk.ci
				}
				if err := comp.SetChainParams(p, opts.Gamma); err != nil {
					errs[idx] = fmt.Errorf("selfishmining: sweeping d=%d f=%d: p=%g: %w", cfg.Depth, cfg.Forks, p, err)
					failed.Store(true)
					return
				}
				res, err := analysis.AnalyzeCompiled(comp, analysis.Options{
					Epsilon:          opts.Epsilon,
					SkipStrategyEval: true,
				})
				if err != nil {
					errs[idx] = fmt.Errorf("selfishmining: sweeping d=%d f=%d: p=%g: %w", cfg.Depth, cfg.Forks, p, err)
					failed.Store(true)
					return
				}
				out[tk.ci][tk.pi] = res.ERRev
				progress("d=%d f=%d p=%.2f gamma=%g: ERRev=%.5f (%d sweeps, %v)",
					cfg.Depth, cfg.Forks, p, opts.Gamma, res.ERRev, res.Sweeps, res.Duration.Round(time.Millisecond))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
