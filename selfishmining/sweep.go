package selfishmining

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/families"
	"repro/internal/kernel"
	"repro/internal/par"
	"repro/internal/results"
)

// sweepModel canonicalizes the sweep's family name for cache keys.
func sweepModel(opts SweepOptions) string {
	if opts.Model == "" {
		return families.DefaultName
	}
	return opts.Model
}

// attackSeriesName names one attack curve of a panel. The assembled figure
// and every streamed SweepPoint use this single naming, which is what lets
// stream consumers (like cmd/serve's NDJSON endpoint) match points to the
// summary's series by string equality.
func attackSeriesName(opts SweepOptions, cfg AttackConfig) string {
	model := sweepModel(opts)
	if model == families.DefaultName {
		return fmt.Sprintf("ours(d=%d,f=%d)", cfg.Depth, cfg.Forks)
	}
	return fmt.Sprintf("%s(d=%d,f=%d)", model, cfg.Depth, cfg.Forks)
}

// AttackConfig names one (d, f) curve of the paper's Figure 2.
type AttackConfig struct {
	Depth, Forks int
}

// DefaultSweepMaxForkLen is the fork length bound SweepOptions defaults to
// (the paper's l = 4). Exported so callers that must size-check a sweep
// before running it (cmd/serve's -max-states guard) resolve the same
// default the sweep will use.
const DefaultSweepMaxForkLen = 4

// Figure2Configs are the five attack configurations evaluated in the paper.
var Figure2Configs = []AttackConfig{
	{Depth: 1, Forks: 1},
	{Depth: 2, Forks: 1},
	{Depth: 2, Forks: 2},
	{Depth: 3, Forks: 2},
	{Depth: 4, Forks: 2},
}

// SweepOptions configures a Figure-2-style parameter sweep for one γ.
type SweepOptions struct {
	// Model selects the attack-model family the attack curves are computed
	// over ("" means DefaultModel, the paper's fork model). The honest
	// baseline is included for every family; the single-tree baseline
	// series only accompanies the fork family (it is that figure's
	// comparator).
	Model string
	// Gamma is the switching probability of the sweep.
	Gamma float64
	// PGrid lists the adversary resource fractions (x-axis). Defaults to
	// 0..0.3 in steps of 0.01, as in the paper.
	PGrid []float64
	// Configs lists the attack curves to compute. Defaults to
	// Figure2Configs for the fork family and to the family's default shape
	// otherwise.
	Configs []AttackConfig
	// MaxForkLen is the length bound l (default 4 for the fork family, as
	// in the paper; the family default shape's bound otherwise).
	MaxForkLen int
	// TreeWidth is the single-tree baseline width (default 5, as in the
	// paper; its depth equals MaxForkLen).
	TreeWidth int
	// Epsilon is the per-point analysis precision (default 1e-4).
	Epsilon float64
	// Kernel selects the value-iteration kernel variant every grid point is
	// solved with ("" or "jacobi" for the bitwise-deterministic default; see
	// KernelVariants). All variants certify the same ERRev values — the
	// figure is identical — but their sweep counts and runtimes differ.
	Kernel string
	// Workers is the size of the worker pool the (configuration, p) grid
	// points are distributed over; 0, the default, uses runtime.NumCPU().
	// Each attack structure is compiled once and shared; every worker
	// solves on its own clone (private probability and value buffers).
	// The computed figure is bitwise identical at every worker count.
	Workers int
	// Progress, if non-nil, receives one line per completed point. Calls
	// are serialized, but their order across points follows the parallel
	// completion order.
	Progress func(format string, args ...any)
	// OnPoint, if non-nil, streams every attack-curve grid point as soon as
	// it completes — solved, coalesced, answered from the result cache, or
	// short-circuited (p = 0) — instead of only appearing in the final
	// figure. Calls are serialized but follow the parallel completion
	// order; the values streamed are exactly the values the final figure
	// will carry (bitwise — streaming changes delivery, never results).
	// The callback runs on sweep worker goroutines and must return
	// promptly. Baseline series (honest, single-tree) are not streamed;
	// they arrive with the figure.
	OnPoint func(SweepPoint)
}

// SweepPoint is one completed attack-curve grid point of a streaming sweep
// (SweepOptions.OnPoint).
type SweepPoint struct {
	// Config is the attack configuration (d, f) the point belongs to, and
	// Series the name of the figure series that will carry it — the same
	// string SweepContext puts on the assembled panel, so streamed points
	// can be matched to the final figure without re-deriving the naming.
	Config AttackConfig
	Series string
	// PIndex is the point's index into SweepOptions.PGrid; P is the grid
	// value there and Gamma the sweep's switching probability.
	PIndex int
	P      float64
	Gamma  float64
	// ERRev is the certified lower bound at this point, bitwise equal to
	// the final figure's value.
	ERRev float64
	// Sweeps reports the value-iteration sweeps the point's analysis
	// performed when it was first solved (0 for the p = 0 shortcut; the
	// originally recorded count when served from the result cache).
	Sweeps int
}

func (o *SweepOptions) defaults() {
	if o.PGrid == nil {
		o.PGrid = results.Grid(0, 0.3, 0.01)
	}
	isFork := o.Model == "" || o.Model == families.DefaultName
	if o.Configs == nil {
		if isFork {
			o.Configs = Figure2Configs
		} else if fam, err := families.Get(o.Model); err == nil {
			d, f, _ := fam.DefaultShape()
			o.Configs = []AttackConfig{{Depth: d, Forks: f}}
		}
	}
	if o.MaxForkLen <= 0 {
		o.MaxForkLen = DefaultSweepMaxForkLen
		if !isFork {
			if fam, err := families.Get(o.Model); err == nil {
				_, _, l := fam.DefaultShape()
				o.MaxForkLen = l
			}
		}
	}
	if o.TreeWidth <= 0 {
		o.TreeWidth = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// Sweep is SweepContext under context.Background().
//
// Deprecated: use SweepContext, the canonical v2 entry point, which adds
// cancellation, deadlines and point streaming. Sweep remains a thin
// wrapper and computes bit-identical figures.
func Sweep(opts SweepOptions) (*results.Figure, error) {
	return SweepContext(context.Background(), opts)
}

// SweepContext regenerates one panel of the paper's Figure 2: ERRev as a
// function of the adversary's resource p for the honest baseline, the
// single-tree baseline, and each requested attack configuration, at fixed
// γ.
//
// SweepContext runs through an ephemeral Service, so every call benefits
// from the serving layer's structure sharing (each attack structure is
// compiled once) and warm starts (each grid point seeds value iteration
// from the nearest solved p). Long-lived callers that sweep repeatedly
// should hold their own Service and call its SweepContext method, which
// additionally reuses results and structures across calls. The computed
// figure is bitwise identical at every worker count and cache state.
func SweepContext(ctx context.Context, opts SweepOptions) (*results.Figure, error) {
	return NewService(ServiceConfig{}).SweepContext(ctx, opts)
}

// Sweep is SweepContext under context.Background().
//
// Deprecated: use SweepContext, which adds cancellation, deadlines and
// point streaming; this wrapper computes bit-identical figures.
func (s *Service) Sweep(opts SweepOptions) (*results.Figure, error) {
	return s.SweepContext(context.Background(), opts)
}

// SweepContext computes one Figure-2 panel through the service's caches:
// attack structures come from the structure cache, every grid point is
// answered from the result cache when possible (and coalesced with
// identical in-flight points otherwise), and fresh points warm-start from
// the nearest solved p. See the package-level SweepContext for the panel's
// contents.
//
// The figure is bitwise identical at every worker count and cache state:
// grid points are bound-only analyses, whose certified bracket depends
// only on exact sign decisions (see the Service determinism notes).
//
// ctx cancels the sweep: workers stop drawing new grid points, the point
// being solved stops at its next value-iteration sweep boundary, and the
// call returns a *CancelError (ErrCanceled). Completed points stay in the
// result and warm-start caches — they are full, untainted solves — so a
// re-run resumes from them and still produces the bitwise-identical
// panel. SweepOptions.OnPoint streams each completed point; points
// delivered before a cancellation are exactly the values the full panel
// would have carried.
func (s *Service) SweepContext(ctx context.Context, opts SweepOptions) (*results.Figure, error) {
	opts.defaults()
	if opts.Gamma < 0 || opts.Gamma > 1 || math.IsNaN(opts.Gamma) {
		return nil, fmt.Errorf("selfishmining: sweep gamma = %v outside [0, 1]", opts.Gamma)
	}
	if err := ValidateKernel(opts.Kernel); err != nil {
		return nil, fmt.Errorf("selfishmining: %w", err)
	}
	fam, err := families.Get(opts.Model)
	if err != nil {
		return nil, err
	}
	isFork := fam.Name() == families.DefaultName
	// Validate every (config, p) grid point up front, so one bad point
	// cannot waste a partially solved panel.
	for _, cfg := range opts.Configs {
		for _, p := range opts.PGrid {
			if p == 0 {
				continue // served by the no-resource shortcut, any family
			}
			cp := core.Params{P: p, Gamma: opts.Gamma, Depth: cfg.Depth, Forks: cfg.Forks, MaxLen: opts.MaxForkLen}
			if err := fam.Validate(cp); err != nil {
				return nil, fmt.Errorf("selfishmining: sweep point %v: %w", cp, err)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, s.countCancel(cancelError(err, nil))
	}
	workers := par.Workers(opts.Workers)
	if s.cfg.MaxConcurrent > 0 && workers > s.cfg.MaxConcurrent {
		workers = s.cfg.MaxConcurrent
	}
	var progressMu sync.Mutex
	progress := func(format string, args ...any) {
		progressMu.Lock()
		defer progressMu.Unlock()
		opts.Progress(format, args...)
	}
	title := fmt.Sprintf("Expected relative revenue vs adversary resource (gamma=%g)", opts.Gamma)
	if !isFork {
		title = fmt.Sprintf("Expected relative revenue vs adversary resource (model=%s, gamma=%g)", fam.Name(), opts.Gamma)
	}
	fig := &results.Figure{
		Title:  title,
		XLabel: "p",
		YLabel: "ERRev",
		X:      opts.PGrid,
	}

	honest := make([]float64, len(opts.PGrid))
	for i, p := range opts.PGrid {
		v, err := baseline.HonestERRev(p)
		if err != nil {
			return nil, err
		}
		honest[i] = v
	}
	if err := fig.AddSeries("honest", honest); err != nil {
		return nil, err
	}

	if isFork {
		// The single-tree baseline points are independent exact chain
		// analyses; spread them over the pool too. The baseline accompanies
		// the fork figure only — for the singletree family it IS the curve.
		tree := make([]float64, len(opts.PGrid))
		treeErrs := make([]error, len(opts.PGrid))
		par.For(len(opts.PGrid), workers, func(_, from, to int) {
			for i := from; i < to; i++ {
				tree[i], treeErrs[i] = baseline.SingleTreeERRev(baseline.SingleTreeParams{
					P: opts.PGrid[i], Gamma: opts.Gamma, MaxDepth: opts.MaxForkLen, MaxWidth: opts.TreeWidth,
				})
			}
		})
		for _, err := range treeErrs {
			if err != nil {
				return nil, err
			}
		}
		if err := fig.AddSeries(fmt.Sprintf("single-tree(f=%d)", opts.TreeWidth), tree); err != nil {
			return nil, err
		}
	}
	progress("baselines done (gamma=%g, %d points)", opts.Gamma, len(opts.PGrid))

	series, err := s.sweepConfigs(ctx, opts, workers, progress)
	if err != nil {
		return nil, s.countCancel(err)
	}
	for ci, cfg := range opts.Configs {
		if err := fig.AddSeries(attackSeriesName(opts, cfg), series[ci]); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// sweepConfigs computes the attack curves of a panel with a worker pool
// over all (configuration, p) points. Structures come from the service's
// structure cache; the bases' own mutable buffers stay idle while workers
// solve on clones, because a worker adopting a base would race its
// parameter mutation against other workers cloning from it. Completed
// points are streamed through opts.OnPoint (serialized) as they finish;
// ctx stops workers from drawing new points and interrupts the one being
// solved at its next sweep boundary.
func (s *Service) sweepConfigs(ctx context.Context, opts SweepOptions, workers int, progress func(string, ...any)) ([][]float64, error) {
	// Resolve each (d, f, l) structure once, in parallel across configs
	// (cache hits return immediately; misses compile).
	bases := make([]*core.Compiled, len(opts.Configs))
	structErrs := make([]error, len(opts.Configs))
	par.For(len(opts.Configs), workers, func(_, from, to int) {
		for ci := from; ci < to; ci++ {
			cfg := opts.Configs[ci]
			bases[ci], structErrs[ci] = s.structure(structKey{sweepModel(opts), cfg.Depth, cfg.Forks, opts.MaxForkLen})
		}
	})
	for ci, err := range structErrs {
		if err != nil {
			return nil, fmt.Errorf("selfishmining: compiling d=%d f=%d: %w",
				opts.Configs[ci].Depth, opts.Configs[ci].Forks, err)
		}
	}

	type point struct{ ci, pi int }
	tasks := make([]point, 0, len(opts.Configs)*len(opts.PGrid))
	for ci := range opts.Configs {
		for pi := range opts.PGrid {
			tasks = append(tasks, point{ci, pi})
		}
	}
	out := make([][]float64, len(opts.Configs))
	for ci := range out {
		out[ci] = make([]float64, len(opts.PGrid))
	}
	if len(tasks) == 0 {
		return out, nil
	}
	errs := make([]error, len(tasks))

	// emit serializes the OnPoint stream across workers.
	var emitMu sync.Mutex
	emit := func(pt SweepPoint) {
		if opts.OnPoint == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		opts.OnPoint(pt)
	}

	poolSize := workers
	if poolSize > len(tasks) {
		poolSize = len(tasks)
	}
	// Split the worker budget: the pool takes the outer (point) level; any
	// leftover cores deepen the per-solve sweep parallelism. Neither split
	// affects results.
	innerWorkers := workers / poolSize
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	var cursor atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker solves on a clone of the drawn config's base:
			// shared immutable structure, private buffers. Only the current
			// config's clone is retained — tasks are drawn in config-major
			// order, so a worker re-clones at most once per config while
			// peak memory stays at one clone per worker even when the panel
			// includes multi-million-state configurations.
			cloneOf := -1
			var comp *core.Compiled
			for !failed.Load() {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(tasks) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[idx] = cancelError(err, nil)
					failed.Store(true)
					return
				}
				tk := tasks[idx]
				cfg := opts.Configs[tk.ci]
				p := opts.PGrid[tk.pi]
				if p == 0 {
					out[tk.ci][tk.pi] = 0 // no resource, no revenue; the p=0 MDP is degenerate
					emit(SweepPoint{Config: cfg, Series: attackSeriesName(opts, cfg), PIndex: tk.pi, P: p, Gamma: opts.Gamma})
					continue
				}
				if cloneOf != tk.ci {
					comp = bases[tk.ci].Clone()
					comp.SetWorkers(innerWorkers)
					cloneOf = tk.ci
				}
				res, err := s.sweepPoint(ctx, comp, cfg, p, opts)
				if err != nil {
					errs[idx] = fmt.Errorf("selfishmining: sweeping d=%d f=%d: p=%g: %w", cfg.Depth, cfg.Forks, p, err)
					failed.Store(true)
					return
				}
				out[tk.ci][tk.pi] = res.ERRev
				emit(SweepPoint{Config: cfg, Series: attackSeriesName(opts, cfg), PIndex: tk.pi, P: p, Gamma: opts.Gamma, ERRev: res.ERRev, Sweeps: res.Sweeps})
				progress("d=%d f=%d p=%.2f gamma=%g: ERRev=%.5f (%d sweeps)",
					cfg.Depth, cfg.Forks, p, opts.Gamma, res.ERRev, res.Sweeps)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepPoint answers one grid point: from the result cache when available,
// coalesced with an identical in-flight point otherwise, and solved on the
// calling worker's clone as the singleflight leader — seeded from the
// nearest solved p — when the point is genuinely new. A cancellation
// interrupts the solve at its next sweep boundary and stores nothing.
func (s *Service) sweepPoint(ctx context.Context, comp *core.Compiled, cfg AttackConfig, p float64, opts SweepOptions) (*Analysis, error) {
	s.sweepPoints.Add(1)
	params := AttackParams{
		Model:     sweepModel(opts),
		Adversary: p, Switching: opts.Gamma,
		Depth: cfg.Depth, Forks: cfg.Forks, MaxForkLen: opts.MaxForkLen,
	}
	pointCfg := config{epsilon: opts.Epsilon, boundOnly: true, skipEval: true, kernel: opts.Kernel}
	key := s.key(params, &pointCfg)
	for {
		if a, ok := s.results.Get(key); ok {
			return a, nil
		}
		a, err, shared := s.flight.DoContext(ctx, key, func() (*Analysis, error) {
			// The global solve limit covers sweep points too: a single sweep's
			// pool is already capped, but concurrent sweeps and analyzes share
			// this semaphore.
			if err := s.acquire(ctx); err != nil {
				return nil, cancelError(err, nil)
			}
			defer s.release()
			start := time.Now()
			if err := comp.SetChainParams(p, opts.Gamma); err != nil {
				return nil, err
			}
			sk := structKey{sweepModel(opts), cfg.Depth, cfg.Forks, opts.MaxForkLen}
			kv, _ := kernel.ParseVariant(opts.Kernel) // validated by SweepContext
			aOpts := analysis.Options{Epsilon: opts.Epsilon, SkipStrategyEval: true, SkipStrategy: true, Kernel: kv}
			if seed, ok := s.warmSeed(sk, opts.Gamma, p, comp.NumStates()); ok {
				aOpts.InitialValues = seed
			}
			s.solves.Add(1)
			res, err := analysis.AnalyzeCompiledContext(ctx, comp, aOpts)
			if err != nil {
				return nil, cancelError(err, res)
			}
			res.Duration = time.Since(start)
			s.warmPut(sk, opts.Gamma, p, comp)
			a, err := newAnalysis(params, params.core(), res, false, comp.NumStates())
			if err != nil {
				return nil, err
			}
			s.results.Add(key, a)
			return a, nil
		})
		if err != nil {
			// A point coalesced across CONCURRENT sweeps can inherit the
			// other sweep's cancellation; while this sweep's own context
			// is live, retry as a fresh leader (see the matching branch in
			// AnalyzeDetailedContext).
			if shared && isCtxErr(err) && ctx.Err() == nil {
				continue
			}
			return nil, cancelError(err, nil)
		}
		return a, nil
	}
}
