package selfishmining

import (
	"fmt"
	"math"
	"time"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/results"
)

// AttackConfig names one (d, f) curve of the paper's Figure 2.
type AttackConfig struct {
	Depth, Forks int
}

// Figure2Configs are the five attack configurations evaluated in the paper.
var Figure2Configs = []AttackConfig{
	{Depth: 1, Forks: 1},
	{Depth: 2, Forks: 1},
	{Depth: 2, Forks: 2},
	{Depth: 3, Forks: 2},
	{Depth: 4, Forks: 2},
}

// SweepOptions configures a Figure-2-style parameter sweep for one γ.
type SweepOptions struct {
	// Gamma is the switching probability of the sweep.
	Gamma float64
	// PGrid lists the adversary resource fractions (x-axis). Defaults to
	// 0..0.3 in steps of 0.01, as in the paper.
	PGrid []float64
	// Configs lists the attack curves to compute. Defaults to
	// Figure2Configs.
	Configs []AttackConfig
	// MaxForkLen is the fork bound l (default 4, as in the paper).
	MaxForkLen int
	// TreeWidth is the single-tree baseline width (default 5, as in the
	// paper; its depth equals MaxForkLen).
	TreeWidth int
	// Epsilon is the per-point analysis precision (default 1e-4).
	Epsilon float64
	// Progress, if non-nil, receives one line per completed point.
	Progress func(format string, args ...any)
}

func (o *SweepOptions) defaults() {
	if o.PGrid == nil {
		o.PGrid = results.Grid(0, 0.3, 0.01)
	}
	if o.Configs == nil {
		o.Configs = Figure2Configs
	}
	if o.MaxForkLen <= 0 {
		o.MaxForkLen = 4
	}
	if o.TreeWidth <= 0 {
		o.TreeWidth = 5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
}

// Sweep regenerates one panel of the paper's Figure 2: ERRev as a function
// of the adversary's resource p for the honest baseline, the single-tree
// baseline, and each requested attack configuration, at fixed γ.
//
// Each attack configuration is compiled once and re-solved across the p
// grid by re-resolving transition probabilities, which is what makes the
// full grid tractable.
func Sweep(opts SweepOptions) (*results.Figure, error) {
	opts.defaults()
	if opts.Gamma < 0 || opts.Gamma > 1 || math.IsNaN(opts.Gamma) {
		return nil, fmt.Errorf("selfishmining: sweep gamma = %v outside [0, 1]", opts.Gamma)
	}
	fig := &results.Figure{
		Title:  fmt.Sprintf("Expected relative revenue vs adversary resource (gamma=%g)", opts.Gamma),
		XLabel: "p",
		YLabel: "ERRev",
		X:      opts.PGrid,
	}

	honest := make([]float64, len(opts.PGrid))
	for i, p := range opts.PGrid {
		v, err := baseline.HonestERRev(p)
		if err != nil {
			return nil, err
		}
		honest[i] = v
	}
	if err := fig.AddSeries("honest", honest); err != nil {
		return nil, err
	}

	tree := make([]float64, len(opts.PGrid))
	for i, p := range opts.PGrid {
		v, err := baseline.SingleTreeERRev(baseline.SingleTreeParams{
			P: p, Gamma: opts.Gamma, MaxDepth: opts.MaxForkLen, MaxWidth: opts.TreeWidth,
		})
		if err != nil {
			return nil, err
		}
		tree[i] = v
	}
	if err := fig.AddSeries(fmt.Sprintf("single-tree(f=%d)", opts.TreeWidth), tree); err != nil {
		return nil, err
	}
	opts.Progress("baselines done (gamma=%g, %d points)", opts.Gamma, len(opts.PGrid))

	for _, cfg := range opts.Configs {
		series, err := sweepConfig(cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("selfishmining: sweeping d=%d f=%d: %w", cfg.Depth, cfg.Forks, err)
		}
		if err := fig.AddSeries(fmt.Sprintf("ours(d=%d,f=%d)", cfg.Depth, cfg.Forks), series); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

func sweepConfig(cfg AttackConfig, opts SweepOptions) ([]float64, error) {
	params := core.Params{
		P:      0.1, // placeholder; set per grid point
		Gamma:  opts.Gamma,
		Depth:  cfg.Depth,
		Forks:  cfg.Forks,
		MaxLen: opts.MaxForkLen,
	}
	comp, err := core.Compile(params)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(opts.PGrid))
	for i, p := range opts.PGrid {
		if p == 0 {
			out[i] = 0 // no resource, no revenue; the p=0 MDP is degenerate
			continue
		}
		if err := comp.SetChainParams(p, opts.Gamma); err != nil {
			return nil, err
		}
		res, err := analysis.AnalyzeCompiled(comp, analysis.Options{
			Epsilon:          opts.Epsilon,
			SkipStrategyEval: true,
		})
		if err != nil {
			return nil, fmt.Errorf("p=%g: %w", p, err)
		}
		out[i] = res.ERRev
		opts.Progress("d=%d f=%d p=%.2f gamma=%g: ERRev=%.5f (%d sweeps, %v)",
			cfg.Depth, cfg.Forks, p, opts.Gamma, res.ERRev, res.Sweeps, res.Duration.Round(time.Millisecond))
	}
	return out, nil
}
