package selfishmining

import "repro/internal/analysis"

// Checkpoint is a resumable snapshot of Algorithm 1's binary search at a
// step boundary: the certified ERRev bracket narrowed so far, the step and
// sweep counters, and the converged value vector the next inner solve
// would warm-start from. WithCheckpoints emits one after every completed
// step; WithResume replays the remainder of the search from one.
//
// Resuming from a checkpoint as emitted — against the same model family,
// attack parameters and options — is bitwise identical to never having
// stopped: the binary search's decisions are exact sign certifications
// (independent of the starting vector), and Values is exactly the vector
// the uninterrupted run would have carried into its next solve, so the
// resumed trajectory — ERRev, bracket, iteration and sweep counts, and the
// full extracted strategy — reproduces the uninterrupted computation float
// for float. This is what lets the jobs subsystem cancel a long analysis,
// persist its checkpoint, and later resume it (even in a new process) with
// a result indistinguishable from an uninterrupted solve. A checkpoint
// resumed without its Values still reproduces ERRev, the bracket and the
// step count exactly, but sweep counts and the low-order bits of a full
// analysis's strategy may then differ.
type Checkpoint struct {
	// BetaLow and BetaUp are the certified ERRev bracket at the snapshot.
	BetaLow, BetaUp float64
	// Iterations and Sweeps are the binary-search steps and total
	// value-iteration sweeps completed at the snapshot.
	Iterations, Sweeps int
	// Values is a private copy of the converged value vector of the last
	// completed inner solve (length NumStates of the analyzed model).
	Values []float64
}

// WithCheckpoints registers a callback invoked after every completed
// binary-search step with a resumable Checkpoint. The callback runs on the
// solving goroutine, owns the Checkpoint it receives, and must return
// promptly. Each snapshot copies the O(states) value vector, so register a
// checkpoint sink only when resumability is wanted. Through a Service,
// checkpoints fire only on requests that actually solve — answers served
// from the result cache or coalesced behind another request's solve emit
// none — and the callback is not part of the service's cache key.
func WithCheckpoints(f func(Checkpoint)) Option {
	return func(c *config) { c.checkpoint = f }
}

// WithResume replays Algorithm 1 from a checkpoint instead of the trivial
// [0, 1] bracket: the search continues from ck's bracket with its counters,
// seeded with its value vector. See Checkpoint for the bitwise-identity
// guarantee; the checkpoint is trusted and must come from a run over the
// same model family, attack parameters and analysis options. WithResume
// takes precedence over any warm-start seed the serving layer would apply,
// and never changes what a completed analysis returns — so resumed results
// share the service's result cache with cold ones.
func WithResume(ck *Checkpoint) Option {
	return func(c *config) { c.resume = ck }
}

// analysisCheckpointOpts maps the public checkpoint/resume configuration
// onto analysis.Options (shared by the package-level entry point and the
// service's solve path).
func (c *config) analysisCheckpointOpts(aOpts *analysis.Options) {
	if c.checkpoint != nil {
		sink := c.checkpoint
		aOpts.OnCheckpoint = func(ck analysis.Checkpoint) { sink(Checkpoint(ck)) }
	}
	if c.resume != nil {
		ck := analysis.Checkpoint(*c.resume)
		aOpts.Resume = &ck
	}
}
