package selfishmining

import (
	"bytes"
	"math"
	"testing"
)

func smallParams() AttackParams {
	return AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 4}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	res, err := Analyze(smallParams())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.ERRev < 0.3 || res.ERRev > 1 {
		t.Errorf("ERRev = %v, want in [0.3, 1] (attack at least matches honest)", res.ERRev)
	}
	if math.Abs(res.StrategyERRev-res.ERRev) > 0.01 {
		t.Errorf("strategy ERRev %v far from bound %v", res.StrategyERRev, res.ERRev)
	}
	if got := res.ChainQuality(); math.Abs(got-(1-res.ERRev)) > 1e-12 {
		t.Errorf("ChainQuality = %v, want %v", got, 1-res.ERRev)
	}
	if len(res.Strategy) != smallParams().NumStates() {
		t.Errorf("strategy covers %d states, want %d", len(res.Strategy), smallParams().NumStates())
	}
}

func TestAnalyzeBackendsAgree(t *testing.T) {
	p := smallParams()
	generic, err := Analyze(p, WithCompiled(false))
	if err != nil {
		t.Fatalf("generic: %v", err)
	}
	compiled, err := Analyze(p, WithCompiled(true))
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	if math.Abs(generic.ERRev-compiled.ERRev) > 2e-4 {
		t.Errorf("backends disagree: generic %v, compiled %v", generic.ERRev, compiled.ERRev)
	}
}

func TestAnalyzeInvalidParams(t *testing.T) {
	bad := smallParams()
	bad.Adversary = 1.5
	if _, err := Analyze(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestAnalyzeWithoutStrategyEval(t *testing.T) {
	res, err := Analyze(smallParams(), WithoutStrategyEval(), WithEpsilon(1e-3))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !IsSkipped(res.StrategyERRev) {
		t.Errorf("StrategyERRev = %v, want skipped marker", res.StrategyERRev)
	}
}

func TestAnalysisSimulateAgrees(t *testing.T) {
	res, err := Analyze(smallParams())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	st, err := res.Simulate(200000, 42)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if math.Abs(st.ERRev-res.StrategyERRev) > 5*st.StdErr+1e-3 {
		t.Errorf("simulated ERRev %v vs exact %v (stderr %v)", st.ERRev, res.StrategyERRev, st.StdErr)
	}
}

func TestAnalysisProfile(t *testing.T) {
	res, err := Analyze(smallParams())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	prof, err := res.Profile()
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if prof.DecisionStates == 0 {
		t.Error("profile found no decision states")
	}
	// The optimal d=2 strategy must actually use releases.
	if prof.Counts[1]+prof.Counts[2] == 0 {
		t.Error("optimal strategy never releases")
	}
}

func TestStrategyRoundTripViaAPI(t *testing.T) {
	res, err := Analyze(smallParams(), WithEpsilon(1e-3))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteStrategy(&buf); err != nil {
		t.Fatalf("WriteStrategy: %v", err)
	}
	got, err := ReadStrategy(&buf, smallParams())
	if err != nil {
		t.Fatalf("ReadStrategy: %v", err)
	}
	for i := range got {
		if got[i] != res.Strategy[i] {
			t.Fatalf("strategy round trip diverged at state %d", i)
		}
	}
}

func TestBaselineWrappers(t *testing.T) {
	if v, err := HonestRevenue(0.25); err != nil || v != 0.25 {
		t.Errorf("HonestRevenue = %v, %v", v, err)
	}
	v, err := SingleTreeRevenue(0.3, 0.5, 4, 5)
	if err != nil {
		t.Fatalf("SingleTreeRevenue: %v", err)
	}
	if v <= 0 || v >= 1 {
		t.Errorf("SingleTreeRevenue = %v, want in (0, 1)", v)
	}
	es, err := EyalSirerRevenue(0.35, 0.5)
	if err != nil {
		t.Fatalf("EyalSirerRevenue: %v", err)
	}
	if es <= 0.35 {
		t.Errorf("EyalSirerRevenue(0.35, 0.5) = %v, should beat honest", es)
	}
}

func TestSweepSmallGrid(t *testing.T) {
	fig, err := Sweep(SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.2, 0.3},
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	// Series: honest, single-tree, two attack configs.
	if len(fig.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(fig.Series))
	}
	honest := fig.Series[0]
	ours21 := fig.Series[3]
	for i := range fig.X {
		if ours21.Values[i] < honest.Values[i]-2e-3 {
			t.Errorf("p=%v: ours(2,1) %v below honest %v", fig.X[i], ours21.Values[i], honest.Values[i])
		}
	}
	// Paper headline at the sweep level: the d=2 attack beats the
	// single-tree baseline at p=0.3.
	tree := fig.Series[1]
	last := len(fig.X) - 1
	if ours21.Values[last] < tree.Values[last] {
		t.Errorf("ours(2,1) %v below single-tree %v at p=0.3", ours21.Values[last], tree.Values[last])
	}
}

func TestSweepRejectsBadGamma(t *testing.T) {
	if _, err := Sweep(SweepOptions{Gamma: 1.5}); err == nil {
		t.Fatal("bad gamma accepted")
	}
}

// TestAnalyzeTwoSidedBound: within the MDP, the optimum is bracketed by
// [ERRev, ERRevUpper] with width below epsilon, and the independently
// evaluated strategy revenue falls inside the bracket (up to solver
// tolerance).
func TestAnalyzeTwoSidedBound(t *testing.T) {
	const eps = 1e-4
	res, err := Analyze(smallParams(), WithEpsilon(eps))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.ERRevUpper < res.ERRev {
		t.Fatalf("bracket inverted: [%v, %v]", res.ERRev, res.ERRevUpper)
	}
	if res.ERRevUpper-res.ERRev >= eps {
		t.Errorf("bracket width %v, want < eps %v", res.ERRevUpper-res.ERRev, eps)
	}
	if res.StrategyERRev < res.ERRev-5e-4 || res.StrategyERRev > res.ERRevUpper+5e-4 {
		t.Errorf("strategy revenue %v outside bracket [%v, %v]", res.StrategyERRev, res.ERRev, res.ERRevUpper)
	}
}
