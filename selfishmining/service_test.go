package selfishmining

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/results"
)

func newTestService(cfg ServiceConfig) *Service { return NewService(cfg) }

// TestServiceAnalyzeMatchesPackageAnalyze: the service's compiled, cached
// path returns results bitwise identical to the package-level compiled
// analysis.
func TestServiceAnalyzeMatchesPackageAnalyze(t *testing.T) {
	p := smallParams()
	direct, err := Analyze(p, WithCompiled(true))
	if err != nil {
		t.Fatalf("package Analyze: %v", err)
	}
	svc := newTestService(ServiceConfig{})
	served, err := svc.Analyze(p)
	if err != nil {
		t.Fatalf("service Analyze: %v", err)
	}
	equalAnalyses(t, "service vs package", direct, served)
}

// TestServiceCacheHitBitwise: a repeated query is served from the cache,
// bitwise identical, with hit/miss/solve accounting to match.
func TestServiceCacheHitBitwise(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	p := smallParams()
	first, info1, err := svc.AnalyzeDetailed(p)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if info1.Cached {
		t.Error("first call reported Cached")
	}
	second, info2, err := svc.AnalyzeDetailed(p)
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if !info2.Cached {
		t.Error("second call not served from cache")
	}
	equalAnalyses(t, "cached vs solved", first, second)

	st := svc.Stats()
	if st.Solves != 1 {
		t.Errorf("Solves = %d, want 1", st.Solves)
	}
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", st.Compiles)
	}
	if st.Results.Hits != 1 || st.Results.Misses != 1 {
		t.Errorf("result cache hits/misses = %d/%d, want 1/1", st.Results.Hits, st.Results.Misses)
	}
	// The copies must have independent simulation substrates.
	var wg sync.WaitGroup
	for _, a := range []*Analysis{first, second} {
		wg.Add(1)
		go func(a *Analysis) {
			defer wg.Done()
			if _, err := a.Simulate(2000, 7); err != nil {
				t.Errorf("Simulate on served copy: %v", err)
			}
		}(a)
	}
	wg.Wait()
}

// TestServiceStructureShared: distinct (p, γ) points of one attack shape
// compile the structure exactly once.
func TestServiceStructureShared(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	base := smallParams()
	for _, p := range []float64{0.2, 0.25, 0.3} {
		q := base
		q.Adversary = p
		if _, err := svc.Analyze(q); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
	}
	st := svc.Stats()
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (structure shared across p)", st.Compiles)
	}
	if st.Solves != 3 {
		t.Errorf("Solves = %d, want 3", st.Solves)
	}
	if st.Structures.Hits < 2 {
		t.Errorf("structure cache hits = %d, want >= 2", st.Structures.Hits)
	}
}

// TestServiceCoalescesConcurrentIdentical: many concurrent identical
// requests produce exactly one solve; every caller gets a bitwise identical
// answer. (Run under -race in CI, this also checks the flight/cache
// synchronization.)
func TestServiceCoalescesConcurrentIdentical(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	p := smallParams()
	const callers = 8
	res := make([]*Analysis, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i], errs[i] = svc.Analyze(p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		equalAnalyses(t, "concurrent caller", res[0], res[i])
	}
	st := svc.Stats()
	if st.Solves != 1 {
		t.Errorf("Solves = %d, want 1 (coalesced+cached)", st.Solves)
	}
	t.Logf("coalesced %d of %d callers, %d cache hits", st.Coalesced, callers, st.Results.Hits)
}

// TestServiceBoundOnly: a bound-only request certifies the same bracket as
// the full analysis, carries no strategy, and strategy-dependent methods
// fail cleanly.
func TestServiceBoundOnly(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	p := smallParams()
	full, err := svc.Analyze(p)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	bound, err := svc.Analyze(p, WithBoundOnly())
	if err != nil {
		t.Fatalf("bound-only: %v", err)
	}
	if math.Float64bits(bound.ERRev) != math.Float64bits(full.ERRev) ||
		math.Float64bits(bound.ERRevUpper) != math.Float64bits(full.ERRevUpper) {
		t.Errorf("bound-only bracket [%v, %v] != full [%v, %v]",
			bound.ERRev, bound.ERRevUpper, full.ERRev, full.ERRevUpper)
	}
	if bound.Strategy != nil || !IsSkipped(bound.StrategyERRev) {
		t.Error("bound-only result carries a strategy")
	}
	if _, err := bound.Simulate(100, 1); !errors.Is(err, ErrBoundOnly) {
		t.Errorf("Simulate on bound-only = %v, want ErrBoundOnly", err)
	}
	if _, err := bound.Profile(); !errors.Is(err, ErrBoundOnly) {
		t.Errorf("Profile on bound-only = %v, want ErrBoundOnly", err)
	}
}

// TestServiceWarmVsColdBitwise is the warm-start acceptance test: a fine
// p-grid swept with warm starts enabled is bitwise identical to the same
// sweep with warm starts disabled, while the warm service demonstrably
// seeds solves and does less sweep work.
func TestServiceWarmVsColdBitwise(t *testing.T) {
	opts := SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3},
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
		Workers:    1, // sequential grid maximizes warm reuse
	}
	warmSvc := newTestService(ServiceConfig{})
	warmFig, err := warmSvc.Sweep(opts)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	coldSvc := newTestService(ServiceConfig{WarmCacheSize: -1})
	coldFig, err := coldSvc.Sweep(opts)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	if len(warmFig.Series) != len(coldFig.Series) {
		t.Fatalf("series count %d != %d", len(warmFig.Series), len(coldFig.Series))
	}
	for si := range warmFig.Series {
		for pi := range warmFig.X {
			w, c := warmFig.Series[si].Values[pi], coldFig.Series[si].Values[pi]
			if math.Float64bits(w) != math.Float64bits(c) {
				t.Errorf("series %q p=%v: warm %v != cold %v",
					warmFig.Series[si].Name, warmFig.X[pi], w, c)
			}
		}
	}
	wst, cst := warmSvc.Stats(), coldSvc.Stats()
	if wst.WarmHits == 0 {
		t.Error("warm service never used a seed")
	}
	if cst.WarmHits != 0 {
		t.Errorf("cold service used %d seeds with warm cache disabled", cst.WarmHits)
	}
	t.Logf("warm hits: %d of %d solves", wst.WarmHits, wst.Solves)
}

// TestSweepDegenerateGridDeterminism pins a regression: at dyadic grid
// points of the d=1, f=1 curve (e.g. p = 0.25), the binary search probes
// β = p exactly, where the optimal mean payoff is exactly zero. The
// sign-only solve then bottoms out at its width floor, and the decision
// must come from the fixed numerically-zero rule — deciding by the bracket
// midpoint's sign (noise at 1e-17) made the panel differ between worker
// counts, because warm-start seeding varies with pool scheduling.
func TestSweepDegenerateGridDeterminism(t *testing.T) {
	run := func(workers int) *results.Figure {
		fig, err := NewService(ServiceConfig{}).Sweep(SweepOptions{
			Gamma:   0.5,
			PGrid:   []float64{0.125, 0.25, 0.3}, // dyadic points probe beta = p exactly
			Configs: []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fig
	}
	ref := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		for si := range ref.Series {
			for pi := range ref.X {
				a, b := ref.Series[si].Values[pi], got.Series[si].Values[pi]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Errorf("series %q p=%v: workers=1 %v != workers=%d %v",
						ref.Series[si].Name, ref.X[pi], a, w, b)
				}
			}
		}
	}
	// The degenerate point itself: the d=1 attack cannot beat honest mining
	// at p = 0.25, and the fixed rule recovers the exact bound.
	var ours []float64
	for _, series := range ref.Series {
		if series.Name == "ours(d=1,f=1)" {
			ours = series.Values
		}
	}
	if ours == nil {
		t.Fatal("ours(d=1,f=1) series missing")
	}
	if ours[1] != 0.25 {
		t.Errorf("d=1 f=1 at p=0.25: ERRev %v, want exactly 0.25", ours[1])
	}
}

// TestServiceSweepResultReuse: sweeping the same panel twice on one service
// answers every attack point from the result cache, bitwise identically.
func TestServiceSweepResultReuse(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	opts := SweepOptions{
		Gamma:      0.25,
		PGrid:      []float64{0, 0.1, 0.2},
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
	}
	first, err := svc.Sweep(opts)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	solvesAfterFirst := svc.Stats().Solves
	second, err := svc.Sweep(opts)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if st := svc.Stats(); st.Solves != solvesAfterFirst {
		t.Errorf("second sweep solved %d new points, want 0", st.Solves-solvesAfterFirst)
	}
	for si := range first.Series {
		for pi := range first.X {
			a, b := first.Series[si].Values[pi], second.Series[si].Values[pi]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Errorf("series %q p=%v: %v != %v on cached resweep", first.Series[si].Name, first.X[pi], a, b)
			}
		}
	}
}

// TestServiceAnalyzeBatch: duplicates inside a batch are deduplicated to
// one solve each, results align with requests, and copies are independent.
func TestServiceAnalyzeBatch(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	a := smallParams()
	b := smallParams()
	b.Adversary = 0.2
	reqs := []AttackParams{a, b, a, a, b}
	out, err := svc.AnalyzeBatch(reqs)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	if len(out) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(out), len(reqs))
	}
	if st := svc.Stats(); st.Solves != 2 {
		t.Errorf("Solves = %d, want 2 (batch deduplication)", st.Solves)
	}
	equalAnalyses(t, "batch dup a", out[0], out[2])
	equalAnalyses(t, "batch dup a", out[0], out[3])
	equalAnalyses(t, "batch dup b", out[1], out[4])
	if out[0].Params != a || out[1].Params != b {
		t.Error("batch results misaligned with requests")
	}
	if out[0] == out[2] {
		t.Error("duplicate requests share one result instance")
	}
}

func TestServiceAnalyzeBatchError(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	bad := smallParams()
	bad.Adversary = 1.5
	if _, err := svc.AnalyzeBatch([]AttackParams{smallParams(), bad}); err == nil {
		t.Fatal("invalid batch request accepted")
	}
	if out, err := svc.AnalyzeBatch(nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

// TestServiceMaxConcurrent: a concurrency limit of 1 serializes solves
// without deadlocking or changing results.
func TestServiceMaxConcurrent(t *testing.T) {
	svc := newTestService(ServiceConfig{MaxConcurrent: 1})
	ref := newTestService(ServiceConfig{})
	ps := []float64{0.2, 0.25, 0.3}
	res := make([]*Analysis, len(ps))
	var wg sync.WaitGroup
	for i, p := range ps {
		wg.Add(1)
		go func(i int, p float64) {
			defer wg.Done()
			q := smallParams()
			q.Adversary = p
			var err error
			if res[i], err = svc.Analyze(q); err != nil {
				t.Errorf("p=%v: %v", p, err)
			}
		}(i, p)
	}
	wg.Wait()
	for i, p := range ps {
		q := smallParams()
		q.Adversary = p
		want, err := ref.Analyze(q)
		if err != nil {
			t.Fatalf("ref p=%v: %v", p, err)
		}
		equalAnalyses(t, "limited vs unlimited", want, res[i])
	}
}

// TestServiceGenericBypass: WithCompiled(false) routes around the caches
// and matches the package-level generic backend bitwise.
func TestServiceGenericBypass(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	p := smallParams()
	served, err := svc.Analyze(p, WithCompiled(false))
	if err != nil {
		t.Fatalf("service generic: %v", err)
	}
	direct, err := Analyze(p, WithCompiled(false))
	if err != nil {
		t.Fatalf("package generic: %v", err)
	}
	equalAnalyses(t, "generic bypass", direct, served)
	if st := svc.Stats(); st.Solves != 0 || st.Compiles != 0 {
		t.Errorf("generic bypass touched the serving caches: %+v", st)
	}
}

// TestNonFiniteEpsilonRejected: a NaN ε would end the binary search
// immediately (every comparison false) and poison the service's map keys
// (NaN never compares equal, so singleflight entries could never be
// removed); both entry points must reject it.
func TestNonFiniteEpsilonRejected(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	for _, eps := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := svc.Analyze(smallParams(), WithEpsilon(eps)); err == nil {
			t.Errorf("service accepted epsilon %v", eps)
		}
		if _, err := Analyze(smallParams(), WithEpsilon(eps)); err == nil {
			t.Errorf("package Analyze accepted epsilon %v", eps)
		}
	}
	if st := svc.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight = %d after rejected requests, want 0", st.InFlight)
	}
}

// TestServiceKeyCanonicalization: requests that differ only in redundant
// option spellings (default ε vs explicit, -0 vs 0) share a cache entry.
func TestServiceKeyCanonicalization(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	p := smallParams()
	p.Switching = 0.0
	if _, err := svc.Analyze(p); err != nil {
		t.Fatal(err)
	}
	q := p
	q.Switching = math.Copysign(0, -1) // -0.0
	_, info, err := svc.AnalyzeDetailed(q, WithEpsilon(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Error("canonically equal request missed the cache")
	}
}

// TestServiceRepeatedQueryThroughput is the acceptance check that the
// result cache delivers at least a 10x repeated-query speedup over
// uncached analysis. The real margin is orders of magnitude; 10x leaves
// plenty of room for noisy CI machines.
func TestServiceRepeatedQueryThroughput(t *testing.T) {
	svc := newTestService(ServiceConfig{})
	p := smallParams()
	start := time.Now()
	if _, err := svc.Analyze(p); err != nil {
		t.Fatal(err)
	}
	uncached := time.Since(start)

	const repeats = 50
	start = time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := svc.Analyze(p); err != nil {
			t.Fatal(err)
		}
	}
	perCached := time.Since(start) / repeats
	if perCached*10 > uncached {
		t.Errorf("cached query %v not 10x faster than uncached %v", perCached, uncached)
	}
	t.Logf("uncached %v, cached %v (%.0fx)", uncached, perCached, float64(uncached)/float64(perCached))
}

// BenchmarkServiceAnalyzeCached measures repeated-query throughput with a
// hot result cache — compare against BenchmarkServiceAnalyzeUncached for
// the serving layer's speedup (acceptance: >= 10x).
func BenchmarkServiceAnalyzeCached(b *testing.B) {
	svc := NewService(ServiceConfig{})
	p := AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 2, MaxForkLen: 4}
	if _, err := svc.Analyze(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceAnalyzeUncached disables the result cache, so every
// query re-solves (the structure cache still avoids recompilation).
func BenchmarkServiceAnalyzeUncached(b *testing.B) {
	svc := NewService(ServiceConfig{ResultCacheSize: -1})
	p := AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 2, MaxForkLen: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSweepWarm measures a fine-grid bound-only sweep with the
// full serving stack (structure cache + warm starts), sequential to expose
// the per-point cost.
func BenchmarkServiceSweepWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		svc := NewService(ServiceConfig{})
		if _, err := svc.Sweep(SweepOptions{
			Gamma:   0.5,
			PGrid:   []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3},
			Configs: []AttackConfig{{Depth: 2, Forks: 1}},
			Epsilon: 1e-4,
			Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSweepCold is BenchmarkServiceSweepWarm with warm starts
// disabled; the delta is the warm-start saving.
func BenchmarkServiceSweepCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		svc := NewService(ServiceConfig{WarmCacheSize: -1})
		if _, err := svc.Sweep(SweepOptions{
			Gamma:   0.5,
			PGrid:   []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3},
			Configs: []AttackConfig{{Depth: 2, Forks: 1}},
			Epsilon: 1e-4,
			Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
