package selfishmining

import (
	"repro/internal/cache"
	"repro/selfishmining/obs"
)

// Batched-sweep scheduling instruments, on the shared default registry:
// how the lane scheduler carved pending grid points into multi-lane
// groups versus solo fallbacks.
var (
	batchGroupsScheduled = obs.Default().Counter("sweep_batch_groups_total",
		"Multi-lane groups scheduled by batched sweeps.")
	batchGroupLanes = obs.Default().Counter("sweep_batch_group_lanes_total",
		"Grid points scheduled into multi-lane batch groups.")
	batchSoloPoints = obs.Default().Counter("sweep_batch_solo_points_total",
		"Single-point groups that fell back to the solo per-point path.")
)

// RegisterMetrics wires this service's accounting into a metrics registry
// as scrape-time collector series: the three LRU caches (results,
// structures, warm-start vectors), the singleflight coalescing counters,
// and the solve/cancel tallies of ServiceStats. Values are snapshot from
// Stats() at each exposition — the analyze/sweep hot path is not touched —
// so register a Service on at most one registry (typically the per-server
// registry cmd/serve exposes on /metrics, merged with obs.Default()).
func (s *Service) RegisterMetrics(r *obs.Registry) {
	cache.RegisterLRU(r, "results", s.results)
	cache.RegisterLRU(r, "structures", s.structures)
	cache.RegisterLRU(r, "warm", s.warm)

	solves := r.Counter("service_solves_total",
		"Analyses actually executed by the service (cache misses that solved).")
	compiles := r.Counter("service_compiles_total",
		"Family structure compiles executed by the service.")
	coalesced := r.Counter("service_coalesced_total",
		"Requests answered by another request's in-flight solve.")
	warmHits := r.Counter("service_warm_hits_total",
		"Bound-only solves seeded from a cached warm-start vector.")
	warmMisses := r.Counter("service_warm_misses_total",
		"Bound-only solves with no usable warm-start vector.")
	warmPuts := r.Counter("service_warm_puts_total",
		"Warm-start vectors retained after a solve.")
	sweepPoints := r.Counter("service_sweep_points_total",
		"Sweep grid points served (cached or solved).")
	canceled := r.Counter("service_canceled_total",
		"Requests ended by explicit context cancellation.")
	deadline := r.Counter("service_deadline_total",
		"Requests ended by a context deadline.")
	inflight := r.Gauge("service_inflight_solves",
		"Distinct analyses currently executing.")
	r.OnCollect(func() {
		st := s.Stats()
		solves.Store(st.Solves)
		compiles.Store(st.Compiles)
		coalesced.Store(st.Coalesced)
		warmHits.Store(st.WarmHits)
		warmMisses.Store(st.WarmMisses)
		warmPuts.Store(st.WarmPuts)
		sweepPoints.Store(st.SweepPoints)
		canceled.Store(st.Canceled)
		deadline.Store(st.DeadlineExceeded)
		inflight.Set(float64(st.InFlight))
	})
}
