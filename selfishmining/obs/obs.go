// Package obs is the public facade over the repository's zero-dependency
// observability core (internal/obs): a Prometheus-text metrics registry,
// slog-based structured logging with per-request/per-job IDs carried in
// contexts, and span-style phase timers.
//
// The internal package holds the implementation so every layer — kernel,
// solver, analysis, sweep, service, jobs — can instrument itself without a
// dependency on the public API; this facade re-exports the pieces
// embedders and tools (cmd/serve, cmd/bench) need:
//
//   - NewRegistry / Default / Handler for building and serving /metrics,
//   - NewLogger / ParseLevel / Discard for the structured logger,
//   - WithRequestID / RequestIDFrom (and the job-ID twins) for tracing,
//   - SetEnabled for overhead measurement (see cmd/bench's obs cell).
//
// See docs/OBSERVABILITY.md for the metric catalog and label conventions.
package obs

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"repro/internal/obs"
)

// Core metric types, aliased so instruments cross the facade untranslated.
type (
	Registry     = obs.Registry
	Counter      = obs.Counter
	Gauge        = obs.Gauge
	Histogram    = obs.Histogram
	CounterVec   = obs.CounterVec
	GaugeVec     = obs.GaugeVec
	HistogramVec = obs.HistogramVec
	Span         = obs.Span
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Default is the process-wide registry the solver-phase and job-latency
// instruments live on.
func Default() *Registry { return obs.Default() }

// Handler serves the merged Prometheus text exposition of regs.
func Handler(regs ...*Registry) http.Handler { return obs.Handler(regs...) }

// DefBuckets is the default latency bucket layout in seconds.
func DefBuckets() []float64 { return obs.DefBuckets() }

// SetEnabled turns instrument updates on or off process-wide; it exists
// for overhead measurement (cmd/bench), not operation.
func SetEnabled(v bool) { obs.SetEnabled(v) }

// Enabled reports whether instrument updates are currently recorded.
func Enabled() bool { return obs.Enabled() }

// StartSpan begins timing a phase recorded into h on End.
func StartSpan(h *Histogram) Span { return obs.StartSpan(h) }

// NewLogger builds a text or json slog logger that stamps context-carried
// request/job IDs onto every record.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// ParseLevel maps -log-level flag values (debug, info, warn, error) to
// slog levels.
func ParseLevel(s string) (slog.Level, error) { return obs.ParseLevel(s) }

// Discard returns a logger that drops every record.
func Discard() *slog.Logger { return obs.Discard() }

// NewID returns a fresh 16-hex-character random ID.
func NewID() string { return obs.NewID() }

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context { return obs.WithRequestID(ctx, id) }

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string { return obs.RequestIDFrom(ctx) }

// WithJobID returns a context carrying the job ID.
func WithJobID(ctx context.Context, id string) context.Context { return obs.WithJobID(ctx, id) }

// JobIDFrom returns the job ID carried by ctx, or "".
func JobIDFrom(ctx context.Context) string { return obs.JobIDFrom(ctx) }
