package selfishmining

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/families"
	"repro/internal/kernel"
)

// Default sizing of a Service's caches. All are entry counts; memory per
// entry depends on the model size (see ServiceConfig.MaxCachedStates).
const (
	DefaultResultCacheSize    = 4096
	DefaultStructureCacheSize = 8
	DefaultWarmCacheSize      = 64
	DefaultMaxCachedStates    = 4 << 20

	// warmPointsPerStore bounds the value vectors retained per
	// (structure, γ) neighborhood; nearest-p lookup scans them linearly.
	warmPointsPerStore = 4
)

// ServiceConfig sizes and tunes a Service. The zero value gives sensible
// serving defaults; negative cache sizes disable the respective cache.
type ServiceConfig struct {
	// ResultCacheSize bounds the solved-analysis LRU (default 4096
	// entries). Full results retain their strategy, so entries for an
	// n-state model cost O(n) memory; see MaxCachedStates.
	ResultCacheSize int
	// StructureCacheSize bounds the compiled-structure LRU keyed by
	// (Model, Depth, Forks, MaxForkLen) — distinct (p, γ) points share one
	// families.Compile and only re-derive probabilities (default 8
	// entries).
	StructureCacheSize int
	// WarmCacheSize bounds the warm-start LRU of (structure, γ)
	// neighborhoods, each holding up to a handful of converged value
	// vectors used to seed bound-only solves at nearby p (default 64).
	// Negative disables warm starts.
	WarmCacheSize int
	// MaxCachedStates is the model size (in states) above which full
	// results and warm-start vectors are not retained — the solve still
	// runs, is coalesced, and benefits from the structure cache, but its
	// O(states) payload is handed to the caller only. Default 4Mi states.
	// Bound-only results are always cacheable (they are O(1)).
	MaxCachedStates int
	// Workers is the default per-solve sweep parallelism (see
	// WithWorkers); a per-call WithWorkers overrides it. Worker counts
	// never change results, so they are not part of cache keys.
	Workers int
	// MaxConcurrent bounds the number of solves executing at once across
	// Analyze, AnalyzeBatch and Sweep (0 = unlimited). Queued requests
	// wait; coalesced and cached requests do not consume a slot.
	MaxConcurrent int
}

func (c *ServiceConfig) defaults() {
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = DefaultResultCacheSize
	}
	if c.StructureCacheSize == 0 {
		c.StructureCacheSize = DefaultStructureCacheSize
	}
	if c.WarmCacheSize == 0 {
		c.WarmCacheSize = DefaultWarmCacheSize
	}
	if c.MaxCachedStates == 0 {
		c.MaxCachedStates = DefaultMaxCachedStates
	}
}

// structKey identifies a compiled transition structure: the model family
// and everything of AttackParams except the chain parameters (p, γ), which
// the structure is reused across.
type structKey struct {
	model                string
	depth, forks, maxLen int
}

// resultKey canonically identifies one solved analysis: the model family,
// the attack point, and every option that can change the result. Worker
// counts are absent by design — results are bitwise identical at any
// parallelism — and so are checkpoint sinks and resume seeds: a resumed
// solve reproduces the uninterrupted result float for float, so it shares
// the cold solve's cache entry.
type resultKey struct {
	model                string
	p, gamma             float64
	depth, forks, maxLen int
	epsilon              float64
	maxIter              int
	skipEval             bool
	boundOnly            bool
	// kernel is the canonical kernel-variant name (kernel.Variant.String();
	// "jacobi" for the default). Variants certify the same results, but their
	// performance counters (Sweeps) differ, so they get distinct entries.
	kernel string
}

// warmKey addresses one warm-start neighborhood: value vectors transfer
// across p (and β) but not across model families, structures or γ (the
// family rides in via structKey).
type warmKey struct {
	sk    structKey
	gamma float64
}

// warmStore holds up to warmPointsPerStore converged value vectors of one
// neighborhood. Vectors are immutable once stored.
type warmStore struct {
	mu     sync.Mutex
	points []warmPoint
}

type warmPoint struct {
	p      float64
	values []float64
}

// nearest returns the stored vector whose p is closest to the query.
func (w *warmStore) nearest(p float64) ([]float64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	best := -1
	for i := range w.points {
		if best < 0 || math.Abs(w.points[i].p-p) < math.Abs(w.points[best].p-p) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	return w.points[best].values, true
}

// put stores values for p, replacing an existing entry at the same p, or —
// when the store is full — the entry farthest from p, keeping the
// neighborhood local to the sweep's moving frontier.
func (w *warmStore) put(p float64, values []float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.points {
		if w.points[i].p == p {
			w.points[i].values = values
			return
		}
	}
	if len(w.points) < warmPointsPerStore {
		w.points = append(w.points, warmPoint{p, values})
		return
	}
	far := 0
	for i := range w.points {
		if math.Abs(w.points[i].p-p) > math.Abs(w.points[far].p-p) {
			far = i
		}
	}
	w.points[far] = warmPoint{p, values}
}

// Service is the caching, request-coalescing serving layer over the
// analysis pipeline. It answers AnalyzeContext, AnalyzeBatchContext and
// SweepContext through three cooperating caches:
//
//   - a result LRU keyed by the model family, the canonicalized attack
//     parameters and the analysis options, so repeated queries cost a map
//     lookup;
//   - a structure LRU keyed by (Model, Depth, Forks, MaxForkLen), so
//     distinct (p, γ) points share one expensive compilation and only
//     re-resolve transition probabilities;
//   - a warm-start LRU of converged value vectors, seeding bound-only
//     solves from the nearest solved p to cut sweeps on fine grids.
//
// Concurrent identical requests are coalesced into a single solve
// (singleflight), and MaxConcurrent bounds the solves in flight. Every
// request is governed by its caller's context end to end: queued and
// coalesced waiters unblock the moment their own context ends (without
// disturbing the leader's solve or the caches), solves stop cooperatively
// at value-iteration sweep boundaries, and interruptions surface as
// *CancelError (ErrCanceled) tallied in Stats.
//
// # Determinism
//
// Results are bitwise identical regardless of cache state, warm starts,
// coalescing and worker counts. Cache hits replay stored results verbatim;
// warm starts are confined to sign-only binary-search solves, which iterate
// until the gain's sign is certified and therefore make the exact same
// decisions from any starting vector; and full analyses (which extract a
// strategy) always solve cold. The one exception is the Sweeps performance
// counter of bound-only results, which reports the work actually done and
// so shrinks as the warm cache fills.
//
// Analyses handed out by a Service may share their Strategy slice with the
// cache; treat it as read-only. Simulate and Profile are safe on concurrent
// copies.
type Service struct {
	cfg ServiceConfig

	results    *cache.LRU[resultKey, *Analysis]
	structures *cache.LRU[structKey, *core.Compiled]
	warm       *cache.LRU[warmKey, *warmStore]

	flight       cache.Group[resultKey, *Analysis]
	structFlight cache.Group[structKey, *core.Compiled]

	sem chan struct{}

	solves, compiles               atomic.Uint64
	warmHits, warmMisses, warmPuts atomic.Uint64
	sweepPoints                    atomic.Uint64
	canceled, deadline             atomic.Uint64
}

// NewService builds a Service with the given configuration (zero value =
// defaults).
func NewService(cfg ServiceConfig) *Service {
	cfg.defaults()
	s := &Service{
		cfg:        cfg,
		results:    cache.NewLRU[resultKey, *Analysis](max(cfg.ResultCacheSize, 0)),
		structures: cache.NewLRU[structKey, *core.Compiled](max(cfg.StructureCacheSize, 0)),
		warm:       cache.NewLRU[warmKey, *warmStore](max(cfg.WarmCacheSize, 0)),
	}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return s
}

// AnalyzeInfo reports how a request was served.
type AnalyzeInfo struct {
	// Cached: answered from the result cache without any solving.
	Cached bool
	// Coalesced: answered by an identical concurrent request's solve.
	Coalesced bool
}

// Analyze is AnalyzeContext under context.Background().
//
// Deprecated: use AnalyzeContext, the canonical v2 entry point, which adds
// cancellation, deadlines and partial-progress errors. Analyze remains a
// thin wrapper and computes bit-identical results.
func (s *Service) Analyze(p AttackParams, opts ...Option) (*Analysis, error) {
	return s.AnalyzeContext(context.Background(), p, opts...)
}

// AnalyzeContext runs (or replays) the fully automated analysis for one
// attack configuration. Options mirror the package-level AnalyzeContext;
// WithCompiled(false) bypasses the service and runs the generic backend
// uncached.
//
// ctx governs the whole request: a cancellation or deadline unblocks it
// promptly whether it is solving (checked at sweep boundaries), queued on
// the MaxConcurrent limit, or coalesced behind an identical in-flight
// request — a canceled follower stops waiting without disturbing the
// leader's solve, and a canceled solve stores nothing, so the caches are
// never poisoned by interruptions. Interrupted requests return a
// *CancelError (ErrCanceled) and are tallied in Stats as Canceled or
// DeadlineExceeded, never as Solves.
func (s *Service) AnalyzeContext(ctx context.Context, p AttackParams, opts ...Option) (*Analysis, error) {
	a, _, err := s.AnalyzeDetailedContext(ctx, p, opts...)
	return a, err
}

// AnalyzeDetailed is AnalyzeDetailedContext under context.Background().
//
// Deprecated: use AnalyzeDetailedContext, which adds cancellation and
// deadlines; this wrapper computes bit-identical results.
func (s *Service) AnalyzeDetailed(p AttackParams, opts ...Option) (*Analysis, AnalyzeInfo, error) {
	return s.AnalyzeDetailedContext(context.Background(), p, opts...)
}

// AnalyzeDetailedContext is AnalyzeContext plus serving metadata, for
// callers (like cmd/serve) that surface cache behavior.
func (s *Service) AnalyzeDetailedContext(ctx context.Context, p AttackParams, opts ...Option) (*Analysis, AnalyzeInfo, error) {
	cfg := config{epsilon: 1e-4}
	for _, o := range opts {
		o(&cfg)
	}
	// A NaN epsilon would both disable the binary search (every comparison
	// is false) and poison the map keys below: NaN never compares equal,
	// so singleflight entries could never be deleted again.
	if math.IsNaN(cfg.epsilon) || math.IsInf(cfg.epsilon, 0) {
		return nil, AnalyzeInfo{}, fmt.Errorf("selfishmining: epsilon = %v is not a finite precision", cfg.epsilon)
	}
	if _, err := kernel.ParseVariant(cfg.kernel); err != nil {
		return nil, AnalyzeInfo{}, fmt.Errorf("selfishmining: %w", err)
	}
	if cfg.useCompiled != nil && !*cfg.useCompiled {
		// Explicitly requested generic backend: serve uncached for exact
		// drop-in semantics with the package-level AnalyzeContext (which
		// rejects the request for families without a generic backend).
		a, err := AnalyzeContext(ctx, p, opts...)
		return a, AnalyzeInfo{}, s.countCancel(err)
	}
	cp := p.core()
	if err := p.Validate(); err != nil {
		return nil, AnalyzeInfo{}, err
	}
	key := s.key(p, &cfg)
	for {
		if a, ok := s.results.Get(key); ok {
			return a.clone(), AnalyzeInfo{Cached: true}, nil
		}
		a, err, shared := s.flight.DoContext(ctx, key, func() (*Analysis, error) {
			return s.solve(ctx, key, p, cp, &cfg)
		})
		if err != nil {
			// A follower can inherit a cancellation that belongs to the
			// LEADER's context (the leader's deadline fired mid-solve).
			// This request's own context is what governs it: while that
			// is still live, retry — the dead flight entry is gone, so
			// the retry solves as a fresh leader (or coalesces behind a
			// healthier one). Genuine solver errors are shared as-is.
			if shared && isCtxErr(err) && ctx.Err() == nil {
				continue
			}
			return nil, AnalyzeInfo{Coalesced: shared}, s.countCancel(cancelError(err, nil))
		}
		return a.clone(), AnalyzeInfo{Coalesced: shared}, nil
	}
}

// countCancel tallies a request-ending context interruption in the serving
// counters and passes err through for the caller to return.
func (s *Service) countCancel(err error) error {
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.deadline.Add(1)
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
	}
	return err
}

// key canonicalizes a request so that equivalent requests collide: the
// empty model name maps to the default family, negative zeros are
// normalized, and out-of-range option values are replaced by the defaults
// the solver would substitute anyway.
func (s *Service) key(p AttackParams, cfg *config) resultKey {
	model := p.Model
	if model == "" {
		model = families.DefaultName
	}
	k := resultKey{
		model: model,
		p:     p.Adversary, gamma: p.Switching,
		depth: p.Depth, forks: p.Forks, maxLen: p.MaxForkLen,
		epsilon:   cfg.epsilon,
		maxIter:   cfg.maxIter,
		skipEval:  cfg.skipEval || cfg.boundOnly,
		boundOnly: cfg.boundOnly,
	}
	// Canonicalize the kernel name so aliases ("", "default", "gauss-seidel")
	// collide with their canonical spelling. Unknown names were rejected
	// before keying, so the parse cannot fail here.
	kv, _ := kernel.ParseVariant(cfg.kernel)
	k.kernel = kv.String()
	if k.p == 0 {
		k.p = 0 // collapse -0.0 onto +0.0
	}
	if k.gamma == 0 {
		k.gamma = 0
	}
	if k.epsilon <= 0 {
		k.epsilon = 1e-4 // the analysis default for non-positive ε
	}
	if k.maxIter <= 0 {
		k.maxIter = 0 // all non-positive budgets mean "solver default"
	}
	return k
}

// structure returns the shared compiled structure for sk, compiling it at
// most once across all concurrent requests. The returned instance is a
// clone source only and is never solved on directly.
func (s *Service) structure(sk structKey) (*core.Compiled, error) {
	if c, ok := s.structures.Get(sk); ok {
		return c, nil
	}
	c, err, _ := s.structFlight.Do(sk, func() (*core.Compiled, error) {
		if c, ok := s.structures.Get(sk); ok {
			return c, nil
		}
		s.compiles.Add(1)
		// Chain parameters are placeholders: every solver clone installs
		// its own (p, γ) via SetChainParams before solving.
		comp, err := families.Compile(sk.model, core.Params{
			P: 0.1, Gamma: 0.5,
			Depth: sk.depth, Forks: sk.forks, MaxLen: sk.maxLen,
		})
		if err != nil {
			return nil, err
		}
		s.structures.Add(sk, comp)
		return comp, nil
	})
	return c, err
}

// solver clones the shared structure for sk and points it at (p, γ) with
// the effective worker count.
func (s *Service) solver(sk structKey, p, gamma float64, workers int) (*core.Compiled, error) {
	base, err := s.structure(sk)
	if err != nil {
		return nil, err
	}
	comp := base.Clone()
	if workers == 0 {
		workers = s.cfg.Workers
	}
	comp.SetWorkers(workers)
	if err := comp.SetChainParams(p, gamma); err != nil {
		return nil, err
	}
	return comp, nil
}

// solve is the singleflight leader body for one AnalyzeContext request.
// Nothing is cached on failure, so an interrupted solve cannot poison the
// result or warm-start caches.
func (s *Service) solve(ctx context.Context, key resultKey, p AttackParams, cp core.Params, cfg *config) (*Analysis, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, cancelError(err, nil)
	}
	defer s.release()
	sk := structKey{key.model, p.Depth, p.Forks, p.MaxForkLen}
	comp, err := s.solver(sk, p.Adversary, p.Switching, cfg.workers)
	if err != nil {
		return nil, err
	}
	kv, _ := kernel.ParseVariant(cfg.kernel) // validated before keying
	aOpts := analysis.Options{
		Epsilon:          cfg.epsilon,
		SolverMaxIter:    cfg.maxIter,
		SkipStrategyEval: cfg.skipEval,
		SkipStrategy:     cfg.boundOnly,
		Progress:         cfg.progress,
		Kernel:           kv,
	}
	cfg.analysisCheckpointOpts(&aOpts)
	if cfg.boundOnly && cfg.resume == nil {
		// Warm starts are confined to bound-only analyses: a full analysis
		// extracts its strategy from the final value vector, which a seed
		// would perturb in the low bits; the bound is seed-independent. A
		// resumed request carries its own seed — the checkpoint's vector,
		// which the resume guarantee requires verbatim.
		if seed, ok := s.warmSeed(sk, p.Switching, p.Adversary, comp.NumStates()); ok {
			aOpts.InitialValues = seed
		}
	}
	s.solves.Add(1)
	res, err := analysis.AnalyzeCompiledContext(ctx, comp, aOpts)
	if err != nil {
		return nil, analysisError(p, res, err)
	}
	s.warmPut(sk, p.Switching, p.Adversary, comp)
	a, err := newAnalysis(p, cp, res, !cfg.boundOnly && p.isFork(), comp.NumStates())
	if err != nil {
		return nil, err
	}
	if cfg.boundOnly || comp.NumStates() <= s.cfg.MaxCachedStates {
		s.results.Add(key, a)
	}
	return a, nil
}

// warmSeed returns the cached value vector nearest to p for (sk, γ).
func (s *Service) warmSeed(sk structKey, gamma, p float64, n int) ([]float64, bool) {
	store, ok := s.warm.Get(warmKey{sk, gamma})
	if !ok {
		s.warmMisses.Add(1)
		return nil, false
	}
	seed, ok := store.nearest(p)
	if !ok || len(seed) != n {
		s.warmMisses.Add(1)
		return nil, false
	}
	s.warmHits.Add(1)
	return seed, true
}

// warmPut retains comp's converged value vector as a future seed, unless
// the model is too large or warm starts are disabled.
func (s *Service) warmPut(sk structKey, gamma, p float64, comp *core.Compiled) {
	if s.cfg.WarmCacheSize < 0 || comp.NumStates() > s.cfg.MaxCachedStates {
		return
	}
	s.warmPutVec(sk, gamma, p, comp.NumStates(), comp.Values())
}

// warmPutVec retains an explicit converged value vector as a future seed —
// the batched sweep path hands lane vectors here directly, since they live
// on the kernel batch rather than on a Compiled. The vector must not be
// mutated after the call (warmStore vectors are immutable once stored).
func (s *Service) warmPutVec(sk structKey, gamma, p float64, n int, values []float64) {
	if s.cfg.WarmCacheSize < 0 || n > s.cfg.MaxCachedStates || len(values) != n {
		return
	}
	// GetOrAdd keeps two racing solves of the same neighborhood from each
	// installing a store and losing the other's vector.
	store, _ := s.warm.GetOrAdd(warmKey{sk, gamma}, &warmStore{})
	store.put(p, values)
	s.warmPuts.Add(1)
}

// acquire takes a MaxConcurrent slot, or returns ctx.Err() as soon as the
// caller's context ends while queued — a waiting request never burns a slot
// it no longer wants.
func (s *Service) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.sem == nil {
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// AnalyzeBatch is AnalyzeBatchContext under context.Background().
//
// Deprecated: use AnalyzeBatchContext, which adds cancellation and
// deadlines; this wrapper computes bit-identical results.
func (s *Service) AnalyzeBatch(reqs []AttackParams, opts ...Option) ([]*Analysis, error) {
	return s.AnalyzeBatchContext(context.Background(), reqs, opts...)
}

// AnalyzeBatchContext answers many analysis requests, deduplicating
// identical parameter sets (each distinct set is solved at most once per
// batch), serving repeats from the result cache, and fanning distinct
// solves out over a worker pool bounded by MaxConcurrent. Results align
// with the request slice; duplicates receive independent copies. The first
// error aborts the batch.
//
// ctx covers every solve of the batch: once it ends, in-flight solves stop
// at their next sweep boundary and the batch returns a *CancelError.
func (s *Service) AnalyzeBatchContext(ctx context.Context, reqs []AttackParams, opts ...Option) ([]*Analysis, error) {
	out := make([]*Analysis, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	distinct := make(map[AttackParams][]int, len(reqs))
	order := make([]AttackParams, 0, len(reqs))
	for i, r := range reqs {
		if _, ok := distinct[r]; !ok {
			order = append(order, r)
		}
		distinct[r] = append(distinct[r], i)
	}
	pool := len(order)
	if n := runtime.NumCPU(); pool > n {
		pool = n
	}
	if s.cfg.MaxConcurrent > 0 && pool > s.cfg.MaxConcurrent {
		pool = s.cfg.MaxConcurrent
	}
	solved := make([]*Analysis, len(order))
	errs := make([]error, len(order))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(order) {
					return
				}
				solved[i], errs[i] = s.AnalyzeContext(ctx, order[i], opts...)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("selfishmining: batch request for %v: %w", order[i], err)
		}
	}
	for i, r := range order {
		idxs := distinct[r]
		out[idxs[0]] = solved[i]
		for _, idx := range idxs[1:] {
			out[idx] = solved[i].clone()
		}
	}
	return out, nil
}

// ServiceStats is a point-in-time snapshot of a Service's serving counters.
type ServiceStats struct {
	// Results, Structures and WarmStores are the LRU accounting of the
	// three caches (warm-store hits count neighborhood lookups, not
	// vector reuse — see WarmHits).
	Results, Structures, WarmStores cache.Stats
	// Solves counts analyses actually executed; Compiles counts
	// families.Compile runs (structure-cache misses that did the work).
	Solves, Compiles uint64
	// Coalesced counts requests answered by another request's in-flight
	// solve.
	Coalesced uint64
	// WarmHits / WarmMisses count bound-only solves seeded / not seeded
	// from a cached value vector; WarmPuts counts vectors retained.
	WarmHits, WarmMisses, WarmPuts uint64
	// SweepPoints counts grid points served by Sweep (cached or solved).
	SweepPoints uint64
	// Canceled and DeadlineExceeded count requests that ended with a
	// context interruption (explicit cancel vs deadline) — whether solving,
	// queued on MaxConcurrent, or coalesced behind a leader. They tally
	// request outcomes, not solver work: a coalesced follower that cancels
	// its wait shows up here and nowhere else (its leader's solve, caches
	// and warm stores are untouched).
	Canceled, DeadlineExceeded uint64
	// InFlight is the number of distinct analyses currently executing.
	InFlight int
}

// Stats snapshots the serving counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Results:          s.results.Stats(),
		Structures:       s.structures.Stats(),
		WarmStores:       s.warm.Stats(),
		Solves:           s.solves.Load(),
		Compiles:         s.compiles.Load(),
		Coalesced:        s.flight.Coalesced(),
		WarmHits:         s.warmHits.Load(),
		WarmMisses:       s.warmMisses.Load(),
		WarmPuts:         s.warmPuts.Load(),
		SweepPoints:      s.sweepPoints.Load(),
		Canceled:         s.canceled.Load(),
		DeadlineExceeded: s.deadline.Load(),
		InFlight:         s.flight.InFlight(),
	}
}
