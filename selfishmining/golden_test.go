package selfishmining

import (
	"math"
	"testing"
)

// The constants below were captured from the pre-kernel-refactor pipeline
// (the PR-2 service layer) at the test points of that PR's suite, printed
// with %.17g. The fork family's Analyze and Sweep outputs must stay
// BITWISE identical across the kernel/registry refactor: every retained
// quantity is a pure function of the binary search's exact sign decisions,
// so any drift here means the fork family's compiled structure, law
// resolution, or solver semantics changed.

type goldenAnalyze struct {
	params AttackParams
	errev  float64 // certified lower bound (BetaLow)
	upper  float64 // BetaUp
	iters  int
}

var goldenAnalyzePoints = []goldenAnalyze{
	{params: AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 1, MaxForkLen: 4}, errev: 0.41046142578125, upper: 0.4105224609375, iters: 14},
	{params: AttackParams{Adversary: 0.3, Switching: 0.5, Depth: 1, Forks: 1, MaxForkLen: 4}, errev: 0.29998779296875, upper: 0.300048828125, iters: 14},
	{params: AttackParams{Adversary: 0.15, Switching: 0.25, Depth: 2, Forks: 2, MaxForkLen: 3}, errev: 0.18115234375, upper: 0.18121337890625, iters: 14},
	{params: AttackParams{Adversary: 0.35, Switching: 0, Depth: 2, Forks: 2, MaxForkLen: 4}, errev: 0.492431640625, upper: 0.49249267578125, iters: 14},
}

// TestGoldenForkAnalyzeBitwise pins the refactor's headline acceptance
// criterion: fork-family bound-only analyses through the service are
// bitwise identical to their pre-refactor values.
func TestGoldenForkAnalyzeBitwise(t *testing.T) {
	svc := NewService(ServiceConfig{})
	for _, g := range goldenAnalyzePoints {
		res, err := svc.Analyze(g.params, WithEpsilon(1e-4), WithBoundOnly())
		if err != nil {
			t.Fatalf("%v: %v", g.params, err)
		}
		if math.Float64bits(res.ERRev) != math.Float64bits(g.errev) {
			t.Errorf("%v: ERRev %.17g, golden %.17g", g.params, res.ERRev, g.errev)
		}
		if math.Float64bits(res.ERRevUpper) != math.Float64bits(g.upper) {
			t.Errorf("%v: ERRevUpper %.17g, golden %.17g", g.params, res.ERRevUpper, g.upper)
		}
		if res.Iterations != g.iters {
			t.Errorf("%v: %d binary-search iterations, golden %d", g.params, res.Iterations, g.iters)
		}
	}
}

// TestGoldenForkAnalyzeExplicitModelName: naming the default family must
// produce (and cache) exactly the same result as leaving Model empty.
func TestGoldenForkAnalyzeExplicitModelName(t *testing.T) {
	svc := NewService(ServiceConfig{})
	g := goldenAnalyzePoints[0]
	named := g.params
	named.Model = "fork"
	res, err := svc.Analyze(named, WithEpsilon(1e-4), WithBoundOnly())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.ERRev) != math.Float64bits(g.errev) {
		t.Errorf("explicit fork model: ERRev %.17g, golden %.17g", res.ERRev, g.errev)
	}
	// The empty name must hit the cache entry of the explicit name.
	_, info, err := svc.AnalyzeDetailed(g.params, WithEpsilon(1e-4), WithBoundOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Error("empty model name missed the cache entry of the explicit \"fork\" name")
	}
}

// goldenSweepSeries are the full series of the PR-2 sweep test grid
// (gamma=0.5, p in {0, 0.1, 0.2, 0.3}, configs 1x1 and 2x1, l=3,
// tree width 3, eps=1e-3).
var goldenSweepSeries = map[string][]float64{
	"honest":           {0, 0.10000000000000001, 0.20000000000000001, 0.29999999999999999},
	"single-tree(f=3)": {0, 0.066582005540850905, 0.16850161146596046, 0.29890943722204039},
	"ours(d=1,f=1)":    {0, 0.099609375, 0.19921875, 0.2998046875},
	"ours(d=2,f=1)":    {0, 0.1142578125, 0.2451171875, 0.40234375},
}

// TestGoldenForkSweepBitwise pins the sweep half of the parity criterion.
func TestGoldenForkSweepBitwise(t *testing.T) {
	fig, err := Sweep(SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.2, 0.3},
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(fig.Series) != len(goldenSweepSeries) {
		t.Fatalf("got %d series, golden %d", len(fig.Series), len(goldenSweepSeries))
	}
	for _, s := range fig.Series {
		want, ok := goldenSweepSeries[s.Name]
		if !ok {
			t.Errorf("unexpected series %q", s.Name)
			continue
		}
		for i := range want {
			if math.Float64bits(s.Values[i]) != math.Float64bits(want[i]) {
				t.Errorf("series %q point %d: %.17g, golden %.17g", s.Name, i, s.Values[i], want[i])
			}
		}
	}
}

// goldenAdaptiveX and goldenAdaptiveSeries pin a small adaptive fork
// sweep (gamma=0.5, coarse grid {0, 0.1, 0.2, 0.3}, config 2x1, l=3,
// tree width 3, eps=1e-3, tolerance 1e-3, max depth 2). At this coarse a
// grid every cell legitimately proves curvature beyond the tolerance, so
// the pinned refinement is the full depth-2 bisection — 13 x-values —
// and the pin covers the midpoint arithmetic, the refinement decisions
// and the solved values at once.
var (
	goldenAdaptiveX = []float64{
		0, 0.025000000000000001, 0.050000000000000003, 0.075000000000000011,
		0.10000000000000001, 0.125, 0.15000000000000002, 0.17500000000000002,
		0.20000000000000001, 0.22500000000000001, 0.25, 0.27500000000000002,
		0.29999999999999999,
	}
	goldenAdaptiveSeries = map[string][]float64{
		"honest": {
			0, 0.025000000000000001, 0.050000000000000003, 0.075000000000000011,
			0.10000000000000001, 0.125, 0.15000000000000002, 0.17500000000000002,
			0.20000000000000001, 0.22500000000000001, 0.25, 0.27500000000000002,
			0.29999999999999999,
		},
		"single-tree(f=3)": {
			0, 0.013467308905562523, 0.02897585763155645, 0.046653869825599686,
			0.066582005540850905, 0.088787935061800383, 0.11324292240205282,
			0.13986107624869495, 0.16850161146596046, 0.19897407235061304,
			0.2310461186895009, 0.26445321755430612, 0.29890943722204039,
		},
		"ours(d=2,f=1)": {
			0, 0.025390625, 0.0537109375, 0.0830078125, 0.1142578125,
			0.1455078125, 0.177734375, 0.2109375, 0.2451171875, 0.279296875,
			0.318359375, 0.3603515625, 0.40234375,
		},
	}
)

// TestGoldenAdaptiveForkSweepBitwise pins an adaptive sweep end to end:
// refined x-axis and every series value, bit for bit.
func TestGoldenAdaptiveForkSweepBitwise(t *testing.T) {
	fig, err := Sweep(SweepOptions{
		Gamma:      0.5,
		PGrid:      []float64{0, 0.1, 0.2, 0.3},
		Configs:    []AttackConfig{{Depth: 2, Forks: 1}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-3,
		Adaptive:   true,
		Tolerance:  1e-3,
		MaxDepth:   2,
	})
	if err != nil {
		t.Fatalf("adaptive Sweep: %v", err)
	}
	if len(fig.X) != len(goldenAdaptiveX) {
		t.Fatalf("got %d x-values, golden %d: %v", len(fig.X), len(goldenAdaptiveX), fig.X)
	}
	for i, want := range goldenAdaptiveX {
		if math.Float64bits(fig.X[i]) != math.Float64bits(want) {
			t.Errorf("X[%d]: %.17g, golden %.17g", i, fig.X[i], want)
		}
	}
	if len(fig.Series) != len(goldenAdaptiveSeries) {
		t.Fatalf("got %d series, golden %d", len(fig.Series), len(goldenAdaptiveSeries))
	}
	for _, s := range fig.Series {
		want, ok := goldenAdaptiveSeries[s.Name]
		if !ok {
			t.Errorf("unexpected series %q", s.Name)
			continue
		}
		for i := range want {
			if math.Float64bits(s.Values[i]) != math.Float64bits(want[i]) {
				t.Errorf("series %q point %d: %.17g, golden %.17g", s.Name, i, s.Values[i], want[i])
			}
		}
	}
}
