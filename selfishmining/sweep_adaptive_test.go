package selfishmining

import (
	"context"
	"math"
	"testing"

	"repro/internal/results"
)

// adaptiveTestOptions is the small fork panel the adaptive tests share:
// cheap enough to solve exhaustively, with the d=2 f=2 threshold kink
// inside the grid so refinement has something to find.
func adaptiveTestOptions() SweepOptions {
	return SweepOptions{
		Gamma:      0.5,
		PGrid:      results.Grid(0, 0.3, 0.05),
		Configs:    []AttackConfig{{Depth: 1, Forks: 1}, {Depth: 2, Forks: 2}},
		MaxForkLen: 3,
		TreeWidth:  3,
		Epsilon:    1e-4,
		Adaptive:   true,
		Tolerance:  1e-3,
		MaxDepth:   3,
	}
}

func collectPoints(opts *SweepOptions) *[]SweepPoint {
	pts := &[]SweepPoint{}
	opts.OnPoint = func(pt SweepPoint) { *pts = append(*pts, pt) }
	return pts
}

// xIndex maps each x of a figure to its position, keyed by exact bits.
func xIndex(xs []float64) map[uint64]int {
	m := make(map[uint64]int, len(xs))
	for i, x := range xs {
		m[math.Float64bits(x)] = i
	}
	return m
}

// TestAdaptiveSupersetAndBitwiseVsUniform is the tentpole property test:
// the adaptive point set contains the full coarse grid; every adaptive
// point appears in the equal-fidelity exhaustive (uniform) refinement at
// a bitwise-identical x with bitwise-identical values; and coarse-grid
// values are bitwise equal to a plain uniform sweep over PGrid.
func TestAdaptiveSupersetAndBitwiseVsUniform(t *testing.T) {
	opts := adaptiveTestOptions()
	fig, err := NewService(ServiceConfig{}).SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	exOpts := adaptiveTestOptions()
	exOpts.Exhaustive = true
	exhaustive, err := NewService(ServiceConfig{}).SweepContext(context.Background(), exOpts)
	if err != nil {
		t.Fatal(err)
	}

	uniOpts := adaptiveTestOptions()
	uniOpts.Adaptive = false
	uniform, err := NewService(ServiceConfig{}).SweepContext(context.Background(), uniOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Superset of the coarse grid, and strictly finer than it.
	byX := xIndex(fig.X)
	for _, p := range opts.PGrid {
		if _, ok := byX[math.Float64bits(p)]; !ok {
			t.Fatalf("adaptive X is missing coarse grid point %v", p)
		}
	}
	if len(fig.X) <= len(opts.PGrid) {
		t.Fatalf("adaptive sweep refined nothing: %d x-values for a %d-point grid", len(fig.X), len(opts.PGrid))
	}
	if len(fig.X) >= len(exhaustive.X) {
		t.Fatalf("adaptive solved %d x-values, exhaustive %d — no savings", len(fig.X), len(exhaustive.X))
	}

	// Bitwise equality against the exhaustive reference at every shared x.
	exByX := xIndex(exhaustive.X)
	for si, s := range fig.Series {
		ex := exhaustive.Series[si]
		if s.Name != ex.Name {
			t.Fatalf("series %d: adaptive %q vs exhaustive %q", si, s.Name, ex.Name)
		}
		for i, x := range fig.X {
			j, ok := exByX[math.Float64bits(x)]
			if !ok {
				t.Fatalf("adaptive x = %v missing from exhaustive grid", x)
			}
			if math.Float64bits(s.Values[i]) != math.Float64bits(ex.Values[j]) {
				t.Fatalf("series %q at p = %v: adaptive %.17g != exhaustive %.17g", s.Name, x, s.Values[i], ex.Values[j])
			}
		}
	}

	// Coarse points are bitwise equal to the plain uniform sweep's.
	for si, s := range fig.Series {
		uni := uniform.Series[si]
		for pi, p := range opts.PGrid {
			i := byX[math.Float64bits(p)]
			if math.Float64bits(s.Values[i]) != math.Float64bits(uni.Values[pi]) {
				t.Fatalf("series %q at coarse p = %v: adaptive %.17g != uniform %.17g", s.Name, p, s.Values[i], uni.Values[pi])
			}
		}
	}
}

// TestAdaptiveStreamDeterministicAndMatchesFigure checks the adaptive
// OnPoint contract: the stream is identical across worker counts and
// fresh services (values, order, metadata), wave depths never decrease,
// and every streamed value is the figure's value at that x, bitwise.
func TestAdaptiveStreamDeterministicAndMatchesFigure(t *testing.T) {
	run := func(workers int) ([]SweepPoint, *results.Figure) {
		opts := adaptiveTestOptions()
		opts.Workers = workers
		pts := collectPoints(&opts)
		fig, err := NewService(ServiceConfig{}).SweepContext(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return *pts, fig
	}
	one, figOne := run(1)
	eight, figEight := run(8)

	if len(one) != len(eight) {
		t.Fatalf("streamed %d points at 1 worker, %d at 8", len(one), len(eight))
	}
	for i := range one {
		// Sweeps is the documented exception to the determinism contract:
		// it reports work actually done, which warm-start order changes.
		a, b := one[i], eight[i]
		a.Sweeps, b.Sweeps = 0, 0
		if a != b {
			t.Fatalf("stream diverges at %d: 1 worker %+v, 8 workers %+v", i, one[i], eight[i])
		}
	}

	depth := 0
	for i, pt := range one {
		if pt.Depth < depth {
			t.Fatalf("stream depth went backwards at %d: %d after %d", i, pt.Depth, depth)
		}
		depth = pt.Depth
		if pt.Depth > 0 && pt.PIndex != -1 {
			t.Fatalf("refined point %d carries PIndex %d, want -1", i, pt.PIndex)
		}
		if pt.Depth == 0 && (pt.PIndex < 0 || math.Float64bits(figOne.X[xIndex(figOne.X)[math.Float64bits(pt.P)]]) != math.Float64bits(pt.P)) {
			t.Fatalf("coarse point %d not anchored to the grid: %+v", i, pt)
		}
	}

	// Streamed values are the figure's values, bitwise, on both runs.
	for _, tc := range []struct {
		pts []SweepPoint
		fig *results.Figure
	}{{one, figOne}, {eight, figEight}} {
		byX := xIndex(tc.fig.X)
		series := map[string][]float64{}
		for _, s := range tc.fig.Series {
			series[s.Name] = s.Values
		}
		for _, pt := range tc.pts {
			vals, ok := series[pt.Series]
			if !ok {
				t.Fatalf("streamed series %q missing from figure", pt.Series)
			}
			i, ok := byX[math.Float64bits(pt.P)]
			if !ok {
				t.Fatalf("streamed p = %v missing from figure X", pt.P)
			}
			if math.Float64bits(vals[i]) != math.Float64bits(pt.ERRev) {
				t.Fatalf("streamed %q at p = %v: %.17g, figure %.17g", pt.Series, pt.P, pt.ERRev, vals[i])
			}
		}
	}
}

// TestAdaptiveResumeSkipsSolvesBitwise replays a full checkpoint into a
// cold service and expects the identical figure with zero solves; a
// prefix checkpoint must re-solve only the missing points.
func TestAdaptiveResumeSkipsSolvesBitwise(t *testing.T) {
	opts := adaptiveTestOptions()
	pts := collectPoints(&opts)
	want, err := NewService(ServiceConfig{}).SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	all := *pts

	assertSameFigure := func(got *results.Figure) {
		t.Helper()
		if len(got.X) != len(want.X) {
			t.Fatalf("resumed figure has %d x-values, want %d", len(got.X), len(want.X))
		}
		for i := range want.X {
			if math.Float64bits(got.X[i]) != math.Float64bits(want.X[i]) {
				t.Fatalf("resumed X[%d] = %v, want %v", i, got.X[i], want.X[i])
			}
		}
		for si, s := range want.Series {
			for i := range s.Values {
				if math.Float64bits(got.Series[si].Values[i]) != math.Float64bits(s.Values[i]) {
					t.Fatalf("resumed series %q differs at %d", s.Name, i)
				}
			}
		}
	}

	full := adaptiveTestOptions()
	full.Resume = &SweepCheckpoint{Points: all}
	svc := NewService(ServiceConfig{})
	got, err := svc.SweepContext(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFigure(got)
	if solves := svc.Stats().Solves; solves != 0 {
		t.Fatalf("full checkpoint still solved %d points", solves)
	}

	partial := adaptiveTestOptions()
	partial.Resume = &SweepCheckpoint{Points: all[:len(all)/2]}
	svc = NewService(ServiceConfig{})
	got, err = svc.SweepContext(context.Background(), partial)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFigure(got)
	resolved := int(svc.Stats().Solves)
	if resolved == 0 || resolved >= len(all) {
		t.Fatalf("prefix checkpoint of %d/%d points re-solved %d", len(all)/2, len(all), resolved)
	}
}

// TestUniformResumeSkipsSolves: the checkpoint path covers uniform sweeps
// too (jobs resume them through the same field).
func TestUniformResumeSkipsSolves(t *testing.T) {
	opts := adaptiveTestOptions()
	opts.Adaptive = false
	pts := collectPoints(&opts)
	want, err := NewService(ServiceConfig{}).SweepContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	resumed := adaptiveTestOptions()
	resumed.Adaptive = false
	resumed.Resume = &SweepCheckpoint{Points: *pts}
	svc := NewService(ServiceConfig{})
	got, err := svc.SweepContext(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if solves := svc.Stats().Solves; solves != 0 {
		t.Fatalf("full uniform checkpoint still solved %d points", solves)
	}
	for si, s := range want.Series {
		for i := range s.Values {
			if math.Float64bits(got.Series[si].Values[i]) != math.Float64bits(s.Values[i]) {
				t.Fatalf("resumed uniform series %q differs at %d", s.Name, i)
			}
		}
	}
}

// TestAdaptiveWarmStartsNeighbors: refined midpoints must seed from their
// freshly solved cell corners through the warm-start cache.
func TestAdaptiveWarmStartsNeighbors(t *testing.T) {
	opts := adaptiveTestOptions()
	svc := NewService(ServiceConfig{})
	if _, err := svc.SweepContext(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if hits := svc.Stats().WarmHits; hits == 0 {
		t.Fatal("adaptive refinement recorded no warm-start hits")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	base := adaptiveTestOptions()
	for _, tc := range []struct {
		name   string
		mutate func(*SweepOptions)
	}{
		{"single point grid", func(o *SweepOptions) { o.PGrid = []float64{0.1} }},
		{"unsorted grid", func(o *SweepOptions) { o.PGrid = []float64{0, 0.2, 0.1} }},
		{"duplicate grid", func(o *SweepOptions) { o.PGrid = []float64{0, 0.1, 0.1} }},
		{"nan tolerance", func(o *SweepOptions) { o.Tolerance = math.NaN() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mutate(&opts)
			if _, err := SweepContext(context.Background(), opts); err == nil {
				t.Fatalf("%s: expected error", tc.name)
			}
		})
	}
}

// TestAdaptiveMaxPointsBudget caps refinement and still returns a valid,
// deterministic figure.
func TestAdaptiveMaxPointsBudget(t *testing.T) {
	run := func() *results.Figure {
		opts := adaptiveTestOptions()
		opts.MaxPoints = 3
		fig, err := NewService(ServiceConfig{}).SweepContext(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	a, b := run(), run()
	if len(a.X) > len(adaptiveTestOptions().PGrid)+3 {
		t.Fatalf("budget of 3 refined points yielded %d x-values", len(a.X))
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("budgeted refinement nondeterministic: %d vs %d x-values", len(a.X), len(b.X))
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			t.Fatalf("budgeted X differs at %d", i)
		}
	}
}
