// Package selfishmining is the public API of the reproduction of
// "Fully Automated Selfish Mining Analysis in Efficient Proof Systems
// Blockchains" (Chatterjee et al., PODC 2024).
//
// It exposes the paper's pipeline end to end:
//
//   - AnalyzeContext runs the fully automated analysis (Algorithm 1) for an
//     attack configuration, returning an ε-tight lower bound on the optimal
//     expected relative revenue (ERRev) and a strategy achieving it.
//   - Analysis.Simulate replays the computed strategy on a physical
//     longest-chain block tree as an independent Monte-Carlo check.
//   - HonestRevenue and SingleTreeRevenue evaluate the paper's two
//     baselines.
//   - SweepContext regenerates the ERRev-vs-p curves of the paper's
//     Figure 2, optionally streaming each grid point as it completes.
//
// A minimal session:
//
//	params := selfishmining.AttackParams{
//		Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 2, MaxForkLen: 4,
//	}
//	res, err := selfishmining.AnalyzeContext(ctx, params)
//	if err != nil { ... }
//	fmt.Printf("ERRev >= %.4f\n", res.ERRev)
//
// # Cancellation and deadlines
//
// Every entry point takes a context.Context as its first argument (the
// context-free names are thin context.Background() wrappers kept for
// compatibility). Cancellation is cooperative and deterministic: Algorithm
// 1's nested structure — binary search on β, value-iteration solves per
// step, sweeps per solve — is checked at every level, but only at sweep
// BOUNDARIES, never inside a sweep, so a solve that completes performs
// exactly the floating-point computation it would have performed with no
// context attached. Interrupted calls return a *CancelError (matching
// ErrCanceled, and context.Canceled or context.DeadlineExceeded via
// errors.Is) carrying the certified partial progress: the binary-search
// bracket narrowed so far and the work done. Cancelling a solve never
// poisons a Service's caches — a canceled solve stores nothing, and
// re-running it yields a result bitwise identical to an uninterrupted one.
// WithProgress observes the live bracket after each binary-search step.
//
// # Model families
//
// Algorithm 1 is model-agnostic — a binary search on β over any MDP whose
// transition probabilities are parametric in the chain parameters — and
// the pipeline is generic over pluggable attack-model families compiled
// onto one protocol-agnostic kernel. AttackParams.Model selects the
// family: "fork" (the paper's model, the default), "singletree" (the
// Eyal–Sirer baseline as a decision-free MDP, cross-validated against the
// exact stationary chain analysis), and "nakamoto" (the classic d=1
// selfish-mining state space). Models lists the registered families with
// their parameter semantics; unknown names fail with the valid list. Only
// the fork family carries the physical simulation substrate — Simulate,
// Profile and strategy files return ErrNoSubstrate elsewhere.
//
// # Parallelism
//
// The whole pipeline scales across cores by default. Analyze fans every
// inner value-iteration sweep out over runtime.NumCPU() goroutines
// (override with WithWorkers), and Sweep additionally distributes the
// (configuration, p) grid points of a panel over a worker pool
// (SweepOptions.Workers), compiling each attack structure once and giving
// every worker its own solver buffers. Parallel execution is exactly
// reproducible: results are bitwise identical at every worker count, a
// property enforced by this package's determinism tests.
//
// # Serving
//
// Service wraps the pipeline in a serving layer for repeated and
// concurrent traffic: an LRU result cache keyed by the canonicalized
// parameters and options, a compiled-structure cache shared by all (p, γ)
// points of an attack shape, singleflight coalescing of concurrent
// identical requests, a concurrency limit, and warm-started value
// iteration that seeds each bound-only solve from the nearest solved p.
// Cached, coalesced and warm-started answers are bitwise identical to
// cold serial solves. SweepContext and the analyze/sweep CLIs run through
// a Service, so those paths share the same machinery; cmd/serve exposes it
// over HTTP/JSON:
//
//	svc := selfishmining.NewService(selfishmining.ServiceConfig{})
//	res, err := svc.AnalyzeContext(ctx, params)  // solved once...
//	res2, err := svc.AnalyzeContext(ctx, params) // ...then from cache
//	batch, err := svc.AnalyzeBatchContext(ctx, manyParams) // deduplicated
//	fmt.Printf("%+v\n", svc.Stats())
//
// The serving layer is fully context-aware: a request queued on the
// MaxConcurrent limit or coalesced behind an identical in-flight solve
// unblocks immediately when its own context ends, without disturbing the
// leader's solve or the caches, and the Stats counters record canceled and
// deadline-exceeded requests separately from solves.
//
// # Streaming sweeps
//
// SweepOptions.OnPoint streams a sweep's attack-curve grid points as they
// complete (in parallel completion order), so consumers can render or
// forward partial panels while the sweep is still running; cmd/serve's
// POST /v1/sweep/stream endpoint forwards them as NDJSON lines.
package selfishmining

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/families"
	"repro/internal/kernel"
	"repro/internal/simulate"
	"repro/internal/strategy"
)

// AttackParams configures the selfish-mining attack MDP of one model
// family. The shape fields (Depth, Forks, MaxForkLen) are interpreted by
// the selected family — for the default fork family they are the paper's
// (d, f, l) of Section 3.2; see Models for every family's reading.
type AttackParams struct {
	// Model selects the attack-model family ("" means DefaultModel, the
	// paper's fork model). See Models for the registered families.
	Model string
	// Adversary is the fraction p ∈ [0, 1] of the total mining resource
	// held by the adversarial coalition.
	Adversary float64
	// Switching is the probability γ ∈ [0, 1] that honest miners adopt the
	// adversary's chain when a revealed fork ties the public chain in a
	// broadcast race.
	Switching float64
	// Depth is the attack depth d ≥ 1: for the fork family, private forks
	// are grown on each of the last d main-chain blocks.
	Depth int
	// Forks is the forking number f ≥ 1: for the fork family, private
	// forks per forked block; for singletree, the tree width bound.
	Forks int
	// MaxForkLen is the length bound l ≥ 1 that keeps the MDP finite.
	MaxForkLen int
}

func (p AttackParams) core() core.Params {
	return core.Params{
		P:      p.Adversary,
		Gamma:  p.Switching,
		Depth:  p.Depth,
		Forks:  p.Forks,
		MaxLen: p.MaxForkLen,
	}
}

// family resolves the model family, normalizing the empty name to the
// default.
func (p AttackParams) family() (families.Family, error) {
	return families.Get(p.Model)
}

// isFork reports whether the parameters select the default fork family
// (the only family with a physical simulation substrate).
func (p AttackParams) isFork() bool { return IsDefaultModel(p.Model) }

// Validate checks the family name, parameter ranges and model size.
func (p AttackParams) Validate() error {
	fam, err := p.family()
	if err != nil {
		return err
	}
	return fam.Validate(p.core())
}

// String renders the parameters compactly.
func (p AttackParams) String() string {
	if p.isFork() {
		return p.core().String()
	}
	return fmt.Sprintf("model=%s %s", p.Model, p.core())
}

// NumStates returns the size of the induced MDP state space (0 if the
// family or parameters are invalid; use Validate for the error).
func (p AttackParams) NumStates() int {
	fam, err := p.family()
	if err != nil {
		return 0
	}
	n, err := fam.NumStates(p.core())
	if err != nil {
		return 0
	}
	return n
}

// config collects analysis options.
type config struct {
	epsilon     float64
	maxIter     int
	workers     int
	useCompiled *bool // nil = auto by state count and kernel variant
	kernel      string
	skipEval    bool
	boundOnly   bool
	progress    func(betaLow, betaUp float64, iteration int)
	checkpoint  func(Checkpoint)
	resume      *Checkpoint
}

// Option customizes Analyze.
type Option func(*config)

// WithEpsilon sets the binary-search precision ε (default 1e-4): the
// returned ERRev lies in [ERRev* − ε, ERRev*].
func WithEpsilon(eps float64) Option { return func(c *config) { c.epsilon = eps } }

// WithSolverMaxIter bounds value-iteration sweeps per solve.
func WithSolverMaxIter(n int) Option { return func(c *config) { c.maxIter = n } }

// WithWorkers sets the number of goroutines each inner value-iteration
// sweep is fanned out across. n > 0 is honored exactly; the default uses
// every core (runtime.NumCPU()), falling back to serial sweeps on models
// too small to benefit. The analysis result is bitwise identical at every
// worker count — each sweep reads only the previous value vector, so
// chunked execution reproduces the serial floating-point computation
// exactly — only wall-clock time changes.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithCompiled forces the compiled (flattened) solver backend on or off;
// by default models with at least 50 000 states — and every analysis with a
// non-default WithKernel variant — use it.
func WithCompiled(on bool) Option { return func(c *config) { c.useCompiled = &on } }

// WithKernel selects the value-iteration sweep variant of the inner solves
// by name: "jacobi" (the default — the bitwise-deterministic kernel all
// golden results pin), "spec" (branch-free specialized rows), "gs"
// (Gauss-Seidel relaxation bursts), "sor" (over-relaxed bursts), or
// "explore32" (float32 exploration warm-starting exact float64 decisions).
// See KernelVariants. Non-default variants certify the same ERRev bracket
// as the default — every binary-search decision is an exact sign
// certification — but take a different sweep trajectory, and default to
// the compiled backend regardless of model size. "spec" and "explore32"
// exist only there; combining them with WithCompiled(false) fails.
func WithKernel(name string) Option { return func(c *config) { c.kernel = name } }

// KernelVariants lists the kernel variant names accepted by WithKernel,
// default first.
func KernelVariants() []string { return kernel.VariantNames() }

// ValidateKernel checks a kernel variant name as accepted by WithKernel,
// with the valid list in the error.
func ValidateKernel(name string) error {
	_, err := kernel.ParseVariant(name)
	return err
}

// WithoutStrategyEval skips the independent exact evaluation of the final
// strategy, saving time on very large models.
func WithoutStrategyEval() Option { return func(c *config) { c.skipEval = true } }

// WithBoundOnly restricts the analysis to the certified ERRev bracket: the
// final full-precision solve and strategy extraction are skipped entirely,
// so the result has no Strategy (Simulate, Profile and WriteStrategy return
// errors) and StrategyERRev is the skipped marker. Every retained output is
// a pure function of the binary search's exact sign decisions, which is
// what lets sweeps and the Service warm-start bound-only solves from
// cached value vectors without changing a single bit of the result.
func WithBoundOnly() Option { return func(c *config) { c.boundOnly = true } }

// WithProgress registers a callback invoked after every binary-search step
// with the certified ERRev bracket [betaLow, betaUp] narrowed so far and
// the number of steps completed. It observes progress only — it cannot
// change any result — and runs on the solving goroutine between inner
// solves, so it must return promptly. Through a Service, progress fires
// only on requests that actually solve: answers served from the result
// cache or coalesced behind another request's solve report nothing (they
// did no search). The callback is not part of the service's cache key.
func WithProgress(f func(betaLow, betaUp float64, iteration int)) Option {
	return func(c *config) { c.progress = f }
}

// compiledThreshold is the state count above which Analyze defaults to the
// compiled backend.
const compiledThreshold = 50000

// Analysis is the outcome of the automated analysis for one configuration.
type Analysis struct {
	// Params echoes the analyzed configuration.
	Params AttackParams
	// ERRev is the certified ε-tight lower bound on the optimal expected
	// relative revenue (Corollary 3.3). The chain quality under the attack
	// is 1 − ERRev.
	ERRev float64
	// ERRevUpper is the final upper end of the binary-search bracket:
	// within the MDP model (bounded forks, disjoint fork growth) the
	// optimal ERRev lies in [ERRev, ERRevUpper]. Note this is NOT an upper
	// bound for unrestricted selfish mining — the paper leaves general
	// upper bounds as future work; this exposes the two-sided bound that
	// Algorithm 1 already certifies for the modeled strategy class.
	ERRevUpper float64
	// StrategyERRev is the independently computed exact revenue of
	// Strategy (NaN if skipped via WithoutStrategyEval).
	StrategyERRev float64
	// Strategy is the ε-optimal positional strategy (an action index per
	// MDP state).
	Strategy []int
	// Iterations and Sweeps report binary-search steps and total
	// value-iteration sweeps.
	Iterations, Sweeps int
	// NumStates is the size of the solved MDP state space, recorded at
	// solve time — for families with explored state spaces this avoids
	// re-deriving it from Params (which would rebuild the exploration).
	NumStates int

	model *core.Model
}

// Analyze is AnalyzeContext under context.Background().
//
// Deprecated: use AnalyzeContext, the canonical v2 entry point, which adds
// cancellation, deadlines and partial-progress errors. Analyze remains a
// thin wrapper and computes bit-identical results.
func Analyze(p AttackParams, opts ...Option) (*Analysis, error) {
	return AnalyzeContext(context.Background(), p, opts...)
}

// AnalyzeContext runs the paper's Algorithm 1 on the given configuration of
// any registered model family (AttackParams.Model). Non-fork families
// always use the compiled kernel backend; WithCompiled(false) is only
// meaningful for the fork family, whose on-the-fly state machine doubles as
// a generic mdp.Model.
//
// ctx cancels the analysis cooperatively at deterministic checkpoints
// (value-iteration sweep and binary-search step boundaries); an interrupted
// call returns a *CancelError carrying the certified partial progress (see
// the package's cancellation notes). A call that completes is bitwise
// identical to one with no cancelable context attached.
func AnalyzeContext(ctx context.Context, p AttackParams, opts ...Option) (*Analysis, error) {
	cfg := config{epsilon: 1e-4}
	for _, o := range opts {
		o(&cfg)
	}
	// A NaN epsilon makes every bracket comparison false, silently ending
	// the binary search at ERRev = 0; reject it like any other bad input.
	if math.IsNaN(cfg.epsilon) || math.IsInf(cfg.epsilon, 0) {
		return nil, fmt.Errorf("selfishmining: epsilon = %v is not a finite precision", cfg.epsilon)
	}
	fam, err := p.family()
	if err != nil {
		return nil, err
	}
	cp := p.core()
	if err := fam.Validate(cp); err != nil {
		return nil, err
	}
	kv, err := kernel.ParseVariant(cfg.kernel)
	if err != nil {
		return nil, fmt.Errorf("selfishmining: %w", err)
	}
	if !p.isFork() && cfg.useCompiled != nil && !*cfg.useCompiled {
		return nil, fmt.Errorf("selfishmining: model family %q has no generic (non-compiled) backend; only %q does", fam.Name(), families.DefaultName)
	}
	useCompiled := !p.isFork() || cp.NumStates() >= compiledThreshold || kv != kernel.VariantJacobi
	if cfg.useCompiled != nil {
		useCompiled = *cfg.useCompiled
	}
	if !useCompiled && (kv == kernel.VariantSpec || kv == kernel.VariantExplore32) {
		return nil, fmt.Errorf("selfishmining: kernel variant %q requires the compiled backend (drop WithCompiled(false))", kv)
	}
	aOpts := analysis.Options{
		Epsilon:          cfg.epsilon,
		SolverMaxIter:    cfg.maxIter,
		SkipStrategyEval: cfg.skipEval,
		SkipStrategy:     cfg.boundOnly,
		Workers:          cfg.workers,
		Progress:         cfg.progress,
		Kernel:           kv,
	}
	cfg.analysisCheckpointOpts(&aOpts)
	var res *analysis.Result
	var numStates int
	if useCompiled {
		comp, err := families.Compile(fam.Name(), cp)
		if err != nil {
			return nil, err
		}
		numStates = comp.NumStates()
		res, err = analysis.AnalyzeCompiledContext(ctx, comp, aOpts)
		if err != nil {
			return nil, analysisError(p, res, err)
		}
	} else {
		m, err := core.NewModel(cp)
		if err != nil {
			return nil, err
		}
		numStates = m.NumStates()
		res, err = analysis.AnalyzeContext(ctx, m, aOpts)
		if err != nil {
			return nil, analysisError(p, res, err)
		}
	}
	return newAnalysis(p, cp, res, !cfg.boundOnly && p.isFork(), numStates)
}

// analysisError classifies an inner analysis failure: context
// interruptions become the public *CancelError (with partial progress);
// everything else keeps the parameter-tagged solver wrap.
func analysisError(p AttackParams, res *analysis.Result, err error) error {
	if isCtxErr(err) {
		return cancelError(err, res)
	}
	return fmt.Errorf("selfishmining: analysis of %v failed: %w", p, err)
}

// newAnalysis assembles the public result from an internal one. withModel
// attaches the simulation substrate (skipped for bound-only analyses,
// which carry no strategy to replay, and for non-fork families, which
// have none); numStates is the solved state count, recorded to spare
// result consumers a re-derivation.
func newAnalysis(p AttackParams, cp core.Params, res *analysis.Result, withModel bool, numStates int) (*Analysis, error) {
	a := &Analysis{
		Params:        p,
		ERRev:         res.ERRev,
		ERRevUpper:    res.BetaUp,
		StrategyERRev: res.StrategyERRev,
		Strategy:      res.Strategy,
		Iterations:    res.Iterations,
		Sweeps:        res.Sweeps,
		NumStates:     numStates,
	}
	if withModel {
		model, err := core.NewModel(cp)
		if err != nil {
			return nil, err
		}
		a.model = model
	}
	return a, nil
}

// clone returns a shallow copy with an independent simulation substrate, so
// concurrent callers handed the same cached analysis can Simulate and
// Profile without sharing mutable scratch. The Strategy slice is shared and
// must be treated as read-only.
func (a *Analysis) clone() *Analysis {
	cp := *a
	if cp.model != nil {
		cp.model = cp.model.Clone()
	}
	return &cp
}

// ChainQuality returns 1 − ERRev, the paper's chain-quality measure under
// the computed attack.
func (a *Analysis) ChainQuality() float64 { return 1 - a.ERRev }

// ErrBoundOnly is returned by strategy-dependent methods of an Analysis
// computed with WithBoundOnly (or a bound-only service request), which
// certifies the revenue bracket without extracting a strategy.
var ErrBoundOnly = errors.New("selfishmining: bound-only analysis has no strategy")

// ErrNoSubstrate is returned by the physical-simulation methods (Simulate,
// Profile, WriteStrategy) of analyses over non-fork model families: the
// longest-chain block-tree substrate replays fork-model strategies only.
var ErrNoSubstrate = errors.New("selfishmining: simulation substrate is only available for the fork family")

// Simulate replays the computed strategy on the physical chain substrate
// for the given number of MDP steps, returning empirical statistics. The
// run self-checks that chain ownership matches the MDP ledger. Only the
// fork family carries a substrate (ErrNoSubstrate otherwise).
func (a *Analysis) Simulate(steps int, seed int64) (*simulate.Stats, error) {
	if a.Strategy == nil {
		return nil, ErrBoundOnly
	}
	if a.model == nil {
		return nil, ErrNoSubstrate
	}
	return simulate.Run(a.model, a.Strategy, steps, seed)
}

// Profile summarizes the structure of the computed strategy (how often it
// withholds, races, or overtakes). Fork family only (ErrNoSubstrate
// otherwise).
func (a *Analysis) Profile() (*strategy.Profile, error) {
	if a.Strategy == nil {
		return nil, ErrBoundOnly
	}
	if a.model == nil {
		return nil, ErrNoSubstrate
	}
	return strategy.Profiled(a.model, a.Strategy)
}

// WriteStrategy serializes the strategy with a parameter header. The
// header format is fork-specific, so non-fork analyses return
// ErrNoSubstrate.
func (a *Analysis) WriteStrategy(w io.Writer) error {
	if a.Strategy == nil {
		return ErrBoundOnly
	}
	if !a.Params.isFork() {
		return ErrNoSubstrate
	}
	return strategy.Write(w, a.Params.core(), a.Strategy)
}

// ReadStrategy loads a strategy previously saved with WriteStrategy,
// verifying the parameter header.
func ReadStrategy(r io.Reader, p AttackParams) ([]int, error) {
	return strategy.Read(r, p.core())
}

// HonestRevenue returns the expected relative revenue of honest mining
// (baseline 1 of the paper): exactly p.
func HonestRevenue(p float64) (float64, error) { return baseline.HonestERRev(p) }

// SingleTreeRevenue evaluates the paper's second baseline — the direct
// extension of classic Bitcoin selfish mining that grows one private tree
// of bounded depth and width — by exact Markov-chain analysis.
func SingleTreeRevenue(p, gamma float64, maxDepth, maxWidth int) (float64, error) {
	return baseline.SingleTreeERRev(baseline.SingleTreeParams{
		P: p, Gamma: gamma, MaxDepth: maxDepth, MaxWidth: maxWidth,
	})
}

// EyalSirerRevenue returns the classic PoW SM1 selfish-mining revenue from
// the published closed form, for reference comparisons.
func EyalSirerRevenue(p, gamma float64) (float64, error) {
	return baseline.EyalSirerClosedForm(p, gamma)
}

// IsSkipped reports whether a revenue value is the NaN marker used when
// strategy evaluation was skipped.
func IsSkipped(v float64) bool { return math.IsNaN(v) }
