// Package selfishmining is the public API of the reproduction of
// "Fully Automated Selfish Mining Analysis in Efficient Proof Systems
// Blockchains" (Chatterjee et al., PODC 2024).
//
// It exposes the paper's pipeline end to end:
//
//   - Analyze runs the fully automated analysis (Algorithm 1) for an attack
//     configuration, returning an ε-tight lower bound on the optimal
//     expected relative revenue (ERRev) and a strategy achieving it.
//   - Analysis.Simulate replays the computed strategy on a physical
//     longest-chain block tree as an independent Monte-Carlo check.
//   - HonestRevenue and SingleTreeRevenue evaluate the paper's two
//     baselines.
//   - Sweep regenerates the ERRev-vs-p curves of the paper's Figure 2.
//
// A minimal session:
//
//	params := selfishmining.AttackParams{
//		Adversary: 0.3, Switching: 0.5, Depth: 2, Forks: 2, MaxForkLen: 4,
//	}
//	res, err := selfishmining.Analyze(params)
//	if err != nil { ... }
//	fmt.Printf("ERRev >= %.4f\n", res.ERRev)
//
// # Parallelism
//
// The whole pipeline scales across cores by default. Analyze fans every
// inner value-iteration sweep out over runtime.NumCPU() goroutines
// (override with WithWorkers), and Sweep additionally distributes the
// (configuration, p) grid points of a panel over a worker pool
// (SweepOptions.Workers), compiling each attack structure once and giving
// every worker its own solver buffers. Parallel execution is exactly
// reproducible: results are bitwise identical at every worker count, a
// property enforced by this package's determinism tests.
//
// # Serving
//
// Service wraps the pipeline in a serving layer for repeated and
// concurrent traffic: an LRU result cache keyed by the canonicalized
// parameters and options, a compiled-structure cache shared by all (p, γ)
// points of an attack shape, singleflight coalescing of concurrent
// identical requests, a concurrency limit, and warm-started value
// iteration that seeds each bound-only solve from the nearest solved p.
// Cached, coalesced and warm-started answers are bitwise identical to
// cold serial solves. Sweep and the analyze/sweep CLIs run through a
// Service, so those paths share the same machinery; cmd/serve exposes it
// over HTTP/JSON:
//
//	svc := selfishmining.NewService(selfishmining.ServiceConfig{})
//	res, err := svc.Analyze(params)           // solved once...
//	res2, err := svc.Analyze(params)          // ...then served from cache
//	batch, err := svc.AnalyzeBatch(manyParams) // deduplicated fan-out
//	fmt.Printf("%+v\n", svc.Stats())
package selfishmining

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/simulate"
	"repro/internal/strategy"
)

// AttackParams configures the selfish-mining attack MDP (Section 3.2 of
// the paper).
type AttackParams struct {
	// Adversary is the fraction p ∈ [0, 1] of the total mining resource
	// held by the adversarial coalition.
	Adversary float64
	// Switching is the probability γ ∈ [0, 1] that honest miners adopt the
	// adversary's chain when a revealed fork ties the public chain in a
	// broadcast race.
	Switching float64
	// Depth is the attack depth d ≥ 1: private forks are grown on each of
	// the last d main-chain blocks.
	Depth int
	// Forks is the forking number f ≥ 1: private forks per forked block.
	Forks int
	// MaxForkLen is the fork length bound l ≥ 1 that keeps the MDP finite.
	MaxForkLen int
}

func (p AttackParams) core() core.Params {
	return core.Params{
		P:      p.Adversary,
		Gamma:  p.Switching,
		Depth:  p.Depth,
		Forks:  p.Forks,
		MaxLen: p.MaxForkLen,
	}
}

// Validate checks parameter ranges and model size.
func (p AttackParams) Validate() error { return p.core().Validate() }

// String renders the parameters compactly.
func (p AttackParams) String() string { return p.core().String() }

// NumStates returns the size of the induced MDP state space.
func (p AttackParams) NumStates() int { return p.core().NumStates() }

// config collects analysis options.
type config struct {
	epsilon     float64
	maxIter     int
	workers     int
	useCompiled *bool // nil = auto by state count
	skipEval    bool
	boundOnly   bool
}

// Option customizes Analyze.
type Option func(*config)

// WithEpsilon sets the binary-search precision ε (default 1e-4): the
// returned ERRev lies in [ERRev* − ε, ERRev*].
func WithEpsilon(eps float64) Option { return func(c *config) { c.epsilon = eps } }

// WithSolverMaxIter bounds value-iteration sweeps per solve.
func WithSolverMaxIter(n int) Option { return func(c *config) { c.maxIter = n } }

// WithWorkers sets the number of goroutines each inner value-iteration
// sweep is fanned out across. n > 0 is honored exactly; the default uses
// every core (runtime.NumCPU()), falling back to serial sweeps on models
// too small to benefit. The analysis result is bitwise identical at every
// worker count — each sweep reads only the previous value vector, so
// chunked execution reproduces the serial floating-point computation
// exactly — only wall-clock time changes.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithCompiled forces the compiled (flattened) solver backend on or off;
// by default models with at least 50 000 states use it.
func WithCompiled(on bool) Option { return func(c *config) { c.useCompiled = &on } }

// WithoutStrategyEval skips the independent exact evaluation of the final
// strategy, saving time on very large models.
func WithoutStrategyEval() Option { return func(c *config) { c.skipEval = true } }

// WithBoundOnly restricts the analysis to the certified ERRev bracket: the
// final full-precision solve and strategy extraction are skipped entirely,
// so the result has no Strategy (Simulate, Profile and WriteStrategy return
// errors) and StrategyERRev is the skipped marker. Every retained output is
// a pure function of the binary search's exact sign decisions, which is
// what lets sweeps and the Service warm-start bound-only solves from
// cached value vectors without changing a single bit of the result.
func WithBoundOnly() Option { return func(c *config) { c.boundOnly = true } }

// compiledThreshold is the state count above which Analyze defaults to the
// compiled backend.
const compiledThreshold = 50000

// Analysis is the outcome of the automated analysis for one configuration.
type Analysis struct {
	// Params echoes the analyzed configuration.
	Params AttackParams
	// ERRev is the certified ε-tight lower bound on the optimal expected
	// relative revenue (Corollary 3.3). The chain quality under the attack
	// is 1 − ERRev.
	ERRev float64
	// ERRevUpper is the final upper end of the binary-search bracket:
	// within the MDP model (bounded forks, disjoint fork growth) the
	// optimal ERRev lies in [ERRev, ERRevUpper]. Note this is NOT an upper
	// bound for unrestricted selfish mining — the paper leaves general
	// upper bounds as future work; this exposes the two-sided bound that
	// Algorithm 1 already certifies for the modeled strategy class.
	ERRevUpper float64
	// StrategyERRev is the independently computed exact revenue of
	// Strategy (NaN if skipped via WithoutStrategyEval).
	StrategyERRev float64
	// Strategy is the ε-optimal positional strategy (an action index per
	// MDP state).
	Strategy []int
	// Iterations and Sweeps report binary-search steps and total
	// value-iteration sweeps.
	Iterations, Sweeps int

	model *core.Model
}

// Analyze runs the paper's Algorithm 1 on the given configuration.
func Analyze(p AttackParams, opts ...Option) (*Analysis, error) {
	cfg := config{epsilon: 1e-4}
	for _, o := range opts {
		o(&cfg)
	}
	// A NaN epsilon makes every bracket comparison false, silently ending
	// the binary search at ERRev = 0; reject it like any other bad input.
	if math.IsNaN(cfg.epsilon) || math.IsInf(cfg.epsilon, 0) {
		return nil, fmt.Errorf("selfishmining: epsilon = %v is not a finite precision", cfg.epsilon)
	}
	cp := p.core()
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	useCompiled := cp.NumStates() >= compiledThreshold
	if cfg.useCompiled != nil {
		useCompiled = *cfg.useCompiled
	}
	aOpts := analysis.Options{
		Epsilon:          cfg.epsilon,
		SolverMaxIter:    cfg.maxIter,
		SkipStrategyEval: cfg.skipEval,
		SkipStrategy:     cfg.boundOnly,
		Workers:          cfg.workers,
	}
	var res *analysis.Result
	var err error
	if useCompiled {
		var comp *core.Compiled
		comp, err = core.Compile(cp)
		if err != nil {
			return nil, err
		}
		res, err = analysis.AnalyzeCompiled(comp, aOpts)
	} else {
		var m *core.Model
		m, err = core.NewModel(cp)
		if err != nil {
			return nil, err
		}
		res, err = analysis.Analyze(m, aOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("selfishmining: analysis of %v failed: %w", p, err)
	}
	return newAnalysis(p, cp, res, !cfg.boundOnly)
}

// newAnalysis assembles the public result from an internal one. withModel
// attaches the simulation substrate (skipped for bound-only analyses, which
// carry no strategy to replay).
func newAnalysis(p AttackParams, cp core.Params, res *analysis.Result, withModel bool) (*Analysis, error) {
	a := &Analysis{
		Params:        p,
		ERRev:         res.ERRev,
		ERRevUpper:    res.BetaUp,
		StrategyERRev: res.StrategyERRev,
		Strategy:      res.Strategy,
		Iterations:    res.Iterations,
		Sweeps:        res.Sweeps,
	}
	if withModel {
		model, err := core.NewModel(cp)
		if err != nil {
			return nil, err
		}
		a.model = model
	}
	return a, nil
}

// clone returns a shallow copy with an independent simulation substrate, so
// concurrent callers handed the same cached analysis can Simulate and
// Profile without sharing mutable scratch. The Strategy slice is shared and
// must be treated as read-only.
func (a *Analysis) clone() *Analysis {
	cp := *a
	if cp.model != nil {
		cp.model = cp.model.Clone()
	}
	return &cp
}

// ChainQuality returns 1 − ERRev, the paper's chain-quality measure under
// the computed attack.
func (a *Analysis) ChainQuality() float64 { return 1 - a.ERRev }

// ErrBoundOnly is returned by strategy-dependent methods of an Analysis
// computed with WithBoundOnly (or a bound-only service request), which
// certifies the revenue bracket without extracting a strategy.
var ErrBoundOnly = errors.New("selfishmining: bound-only analysis has no strategy")

// Simulate replays the computed strategy on the physical chain substrate
// for the given number of MDP steps, returning empirical statistics. The
// run self-checks that chain ownership matches the MDP ledger.
func (a *Analysis) Simulate(steps int, seed int64) (*simulate.Stats, error) {
	if a.model == nil || a.Strategy == nil {
		return nil, ErrBoundOnly
	}
	return simulate.Run(a.model, a.Strategy, steps, seed)
}

// Profile summarizes the structure of the computed strategy (how often it
// withholds, races, or overtakes).
func (a *Analysis) Profile() (*strategy.Profile, error) {
	if a.model == nil || a.Strategy == nil {
		return nil, ErrBoundOnly
	}
	return strategy.Profiled(a.model, a.Strategy)
}

// WriteStrategy serializes the strategy with a parameter header.
func (a *Analysis) WriteStrategy(w io.Writer) error {
	if a.Strategy == nil {
		return ErrBoundOnly
	}
	return strategy.Write(w, a.Params.core(), a.Strategy)
}

// ReadStrategy loads a strategy previously saved with WriteStrategy,
// verifying the parameter header.
func ReadStrategy(r io.Reader, p AttackParams) ([]int, error) {
	return strategy.Read(r, p.core())
}

// HonestRevenue returns the expected relative revenue of honest mining
// (baseline 1 of the paper): exactly p.
func HonestRevenue(p float64) (float64, error) { return baseline.HonestERRev(p) }

// SingleTreeRevenue evaluates the paper's second baseline — the direct
// extension of classic Bitcoin selfish mining that grows one private tree
// of bounded depth and width — by exact Markov-chain analysis.
func SingleTreeRevenue(p, gamma float64, maxDepth, maxWidth int) (float64, error) {
	return baseline.SingleTreeERRev(baseline.SingleTreeParams{
		P: p, Gamma: gamma, MaxDepth: maxDepth, MaxWidth: maxWidth,
	})
}

// EyalSirerRevenue returns the classic PoW SM1 selfish-mining revenue from
// the published closed form, for reference comparisons.
func EyalSirerRevenue(p, gamma float64) (float64, error) {
	return baseline.EyalSirerClosedForm(p, gamma)
}

// IsSkipped reports whether a revenue value is the NaN marker used when
// strategy evaluation was skipped.
func IsSkipped(v float64) bool { return math.IsNaN(v) }
