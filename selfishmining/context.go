package selfishmining

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/analysis"
)

// ErrCanceled is the sentinel of the cancellation taxonomy: every analysis,
// batch or sweep interrupted by its context — whether by explicit cancel or
// by a deadline, whether it was solving, queued on the service's
// concurrency limit, or coalesced behind another request's solve — returns
// an error matching errors.Is(err, ErrCanceled). It is distinct from
// invalid-parameter and solver errors, so callers can branch on "the work
// was fine, the caller stopped wanting it" without string inspection.
//
// The concrete error is a *CancelError, which additionally matches the
// underlying context cause (context.Canceled or context.DeadlineExceeded)
// via errors.Is and carries partial-progress metadata.
var ErrCanceled = errors.New("selfishmining: analysis interrupted by context")

// CancelError reports an analysis interrupted by its context, with the
// progress Algorithm 1 had certified at the moment the cancellation was
// observed. All interruption paths produce it: a solve stopped at a
// value-iteration sweep boundary, a binary search stopped between steps, a
// request abandoned while queued on the service's MaxConcurrent limit, and
// a coalesced follower that stopped waiting for its leader.
//
// errors.Is(err, ErrCanceled) matches any CancelError;
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) distinguish the cause.
type CancelError struct {
	// Cause is the context's error: context.Canceled or
	// context.DeadlineExceeded.
	Cause error
	// Iterations and Sweeps are the binary-search steps and total
	// value-iteration sweeps completed before the interruption (zero when
	// the request never started solving — queued or coalesced waits).
	Iterations, Sweeps int
	// BetaLow and BetaUp are the certified ERRev bracket narrowed so far:
	// the optimal ERRev of the modeled strategy class was already proven to
	// lie in [BetaLow, BetaUp] when the search stopped.
	BetaLow, BetaUp float64
}

// Error renders the cause and the certified partial progress.
func (e *CancelError) Error() string {
	if e.Iterations == 0 && e.Sweeps == 0 {
		return fmt.Sprintf("selfishmining: %v before solving started", e.Cause)
	}
	return fmt.Sprintf("selfishmining: %v after %d binary-search steps (%d sweeps), ERRev bracket [%g, %g]",
		e.Cause, e.Iterations, e.Sweeps, e.BetaLow, e.BetaUp)
}

// Unwrap exposes the context cause to errors.Is/As chains.
func (e *CancelError) Unwrap() error { return e.Cause }

// Is makes every CancelError match the ErrCanceled sentinel.
func (e *CancelError) Is(target error) bool { return target == ErrCanceled }

// isCtxErr reports whether err is rooted in a context interruption.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ctxCause normalizes err's context cause for CancelError.Cause.
func ctxCause(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return context.DeadlineExceeded
	}
	return context.Canceled
}

// cancelError folds a context-rooted failure into the public taxonomy,
// attaching whatever partial progress res carries (res may be nil for
// interruptions before solving started). Non-context errors pass through
// unchanged.
func cancelError(err error, res *analysis.Result) error {
	if err == nil || !isCtxErr(err) {
		return err
	}
	var existing *CancelError
	if errors.As(err, &existing) {
		return err // already classified, with its own progress metadata
	}
	ce := &CancelError{Cause: ctxCause(err)}
	if res != nil {
		ce.Iterations, ce.Sweeps = res.Iterations, res.Sweeps
		ce.BetaLow, ce.BetaUp = res.BetaLow, res.BetaUp
	}
	return ce
}
