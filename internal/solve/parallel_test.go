package solve

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mdp"
)

// TestMeanPayoffWorkersDeterminism: the generic RVI returns bitwise equal
// brackets, sweep counts, value vectors, and policies at every worker
// count, on random unichain models large enough to split into chunks.
func TestMeanPayoffWorkersDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		m := randomUnichain(r, 60+r.Intn(40), 3)
		ref, refErr := MeanPayoff(m, Options{Tol: 1e-9, Workers: 1})
		for _, w := range []int{2, 4, 7} {
			got, gotErr := MeanPayoff(m, Options{Tol: 1e-9, Workers: w})
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d workers=%d: error mismatch: %v vs %v", trial, w, gotErr, refErr)
			}
			if got.Lo != ref.Lo || got.Hi != ref.Hi || got.Iters != ref.Iters {
				t.Errorf("trial %d workers=%d: (lo=%v, hi=%v, iters=%d) != serial (lo=%v, hi=%v, iters=%d)",
					trial, w, got.Lo, got.Hi, got.Iters, ref.Lo, ref.Hi, ref.Iters)
			}
			for s := range ref.Values {
				if math.Float64bits(got.Values[s]) != math.Float64bits(ref.Values[s]) {
					t.Fatalf("trial %d workers=%d: value vector diverges at state %d", trial, w, s)
				}
			}
			for s := range ref.Policy {
				if got.Policy[s] != ref.Policy[s] {
					t.Fatalf("trial %d workers=%d: policy diverges at state %d", trial, w, s)
				}
			}
		}
	}
}

// TestEvalPolicyIterativeWorkersDeterminism mirrors the check for the
// fixed-policy evaluator.
func TestEvalPolicyIterativeWorkersDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := randomUnichain(r, 80, 3)
	sr, err := MeanPayoff(m, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := EvalPolicyIterative(m, sr.Policy, Options{Tol: 1e-9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5} {
		got, err := EvalPolicyIterative(m, sr.Policy, Options{Tol: 1e-9, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got.Lo != ref.Lo || got.Hi != ref.Hi || got.Iters != ref.Iters {
			t.Errorf("workers=%d: (lo=%v, hi=%v, iters=%d) != serial (lo=%v, hi=%v, iters=%d)",
				w, got.Lo, got.Hi, got.Iters, ref.Lo, ref.Hi, ref.Iters)
		}
	}
}

// nonCloner hides the Cloner implementation of an Explicit model, checking
// the serial fallback path for models that cannot be read concurrently.
type nonCloner struct{ m *mdp.Explicit }

func (n nonCloner) NumStates() int       { return n.m.NumStates() }
func (n nonCloner) Initial() int         { return n.m.Initial() }
func (n nonCloner) NumActions(s int) int { return n.m.NumActions(s) }
func (n nonCloner) Transitions(s, a int, buf []mdp.Transition) []mdp.Transition {
	return n.m.Transitions(s, a, buf)
}

func TestMeanPayoffNonClonerFallsBackToSerial(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	e := randomUnichain(r, 50, 2)
	ref, err := MeanPayoff(e, Options{Tol: 1e-9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeanPayoff(nonCloner{e}, Options{Tol: 1e-9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got.Lo != ref.Lo || got.Hi != ref.Hi || got.Iters != ref.Iters {
		t.Errorf("non-cloner run diverged: (%v, %v, %d) vs (%v, %v, %d)",
			got.Lo, got.Hi, got.Iters, ref.Lo, ref.Hi, ref.Iters)
	}
}
