package solve

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mdp"
)

// TestWorkspaceBitwiseIdentical replays a binary-search-shaped chain of
// warm-started solves — each step's InitialValues is the previous step's
// (workspace-aliased) Result.Values — once with a shared Workspace and
// once with fresh per-solve vectors. Every step must be bitwise
// identical: the workspace changes allocation, never arithmetic, and the
// solvers must handle the warm vector aliasing their own scratch.
func TestWorkspaceBitwiseIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	m := randomUnichain(r, 80, 3)
	var ws Workspace
	var warmWS, warmFresh []float64
	for step := 0; step < 6; step++ {
		opts := Options{Tol: 1e-8, SignOnly: step%2 == 0, Workers: 1}
		opts.InitialValues = warmWS
		opts.Workspace = &ws
		got, err := MeanPayoff(m, opts)
		if err != nil {
			t.Fatalf("step %d (workspace): %v", step, err)
		}
		opts.InitialValues = warmFresh
		opts.Workspace = nil
		want, err := MeanPayoff(m, opts)
		if err != nil {
			t.Fatalf("step %d (fresh): %v", step, err)
		}
		if got.Lo != want.Lo || got.Hi != want.Hi || got.Iters != want.Iters {
			t.Fatalf("step %d: (lo=%v, hi=%v, iters=%d) != fresh (lo=%v, hi=%v, iters=%d)",
				step, got.Lo, got.Hi, got.Iters, want.Lo, want.Hi, want.Iters)
		}
		for s := range want.Values {
			if math.Float64bits(got.Values[s]) != math.Float64bits(want.Values[s]) {
				t.Fatalf("step %d: value vector diverges at state %d", step, s)
			}
		}
		// Result.Values must alias the workspace, per the documented
		// ownership rule (that is the point of the reuse).
		if &got.Values[0] != &ws.h[0] && &got.Values[0] != &ws.next[0] {
			t.Fatalf("step %d: workspace-backed Result.Values does not alias the workspace", step)
		}
		warmWS, warmFresh = got.Values, want.Values
	}
}

// TestWorkspacePolicyEval mirrors the bitwise check for the fixed-policy
// evaluator.
func TestWorkspacePolicyEval(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	m := randomUnichain(r, 60, 2)
	policy := make([]int, m.NumStates())
	for s := range policy {
		policy[s] = s % m.NumActions(s)
	}
	var ws Workspace
	var warm []float64
	for step := 0; step < 3; step++ {
		got, err := EvalPolicyIterative(m, policy, Options{Tol: 1e-8, Workers: 1, InitialValues: warm, Workspace: &ws})
		if err != nil {
			t.Fatalf("step %d (workspace): %v", step, err)
		}
		want, err := EvalPolicyIterative(m, policy, Options{Tol: 1e-8, Workers: 1, InitialValues: warm})
		if err != nil {
			t.Fatalf("step %d (fresh): %v", step, err)
		}
		if got.Lo != want.Lo || got.Hi != want.Hi || got.Iters != want.Iters {
			t.Fatalf("step %d: workspace eval diverges: %+v vs %+v", step, got, want)
		}
		for s := range want.Values {
			if math.Float64bits(got.Values[s]) != math.Float64bits(want.Values[s]) {
				t.Fatalf("step %d: value vector diverges at state %d", step, s)
			}
		}
		warm = want.Values // fresh copy keeps the two chains' inputs equal
	}
}

// TestGainRatioWorkspace: the workspace-backed ratio matches the
// allocating path exactly and reuses its entry buffer across calls.
func TestGainRatioWorkspace(t *testing.T) {
	m := &mdp.Explicit{
		Init: 0,
		Choices: [][]mdp.Choice{
			{{Succ: []mdp.Transition{{Dst: 1, Prob: 1, Reward: 1}}}},
			{{Succ: []mdp.Transition{{Dst: 0, Prob: 1, Reward: 0}}}},
		},
	}
	numFn := func(s, a int, tr mdp.Transition) float64 { return tr.Reward }
	denFn := func(s, a int, tr mdp.Transition) float64 { return 1 }
	want, err := GainRatio(m, []int{0, 0}, numFn, denFn)
	if err != nil {
		t.Fatalf("GainRatio: %v", err)
	}
	var ws Workspace
	for i := 0; i < 3; i++ {
		got, err := GainRatioWorkspace(m, []int{0, 0}, numFn, denFn, &ws)
		if err != nil {
			t.Fatalf("GainRatioWorkspace call %d: %v", i, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("call %d: ratio %v != %v", i, got, want)
		}
	}
	if cap(ws.entries) == 0 {
		t.Error("workspace did not retain the entry buffer")
	}
}

// TestWorkspaceShrinkAndGrow: a workspace survives being reused across
// models of different sizes (stale tail data must not leak into the
// smaller solve).
func TestWorkspaceShrinkAndGrow(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	big := randomUnichain(r, 90, 2)
	small := randomUnichain(r, 30, 2)
	var ws Workspace
	for _, m := range []mdp.Model{big, small, big} {
		got, err := MeanPayoff(m, Options{Tol: 1e-8, Workers: 1, Workspace: &ws})
		if err != nil {
			t.Fatalf("workspace solve: %v", err)
		}
		want, err := MeanPayoff(m, Options{Tol: 1e-8, Workers: 1})
		if err != nil {
			t.Fatalf("fresh solve: %v", err)
		}
		if got.Lo != want.Lo || got.Hi != want.Hi || got.Iters != want.Iters {
			t.Fatalf("reused workspace diverges: %+v vs %+v", got, want)
		}
		for s := range want.Values {
			if math.Float64bits(got.Values[s]) != math.Float64bits(want.Values[s]) {
				t.Fatalf("reused workspace: value vector diverges at state %d", s)
			}
		}
	}
}
