package solve

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kernel"
)

// TestVariantsAgreeOnRandomUnichains: the generic GS/SOR relaxation paths
// must converge to the same gain bracket as the default Jacobi iteration —
// the in-place bursts may reshape the value vector arbitrarily, but the
// certified bracket comes from Jacobi sweeps that bound the gain for any
// vector.
func TestVariantsAgreeOnRandomUnichains(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		m := randomUnichain(r, 2+r.Intn(30), 3)
		ref, err := MeanPayoff(m, Options{Tol: 1e-9})
		if err != nil {
			t.Fatalf("trial %d: jacobi: %v", trial, err)
		}
		for _, v := range []kernel.Variant{kernel.VariantGS, kernel.VariantSOR} {
			res, err := MeanPayoff(m, Options{Tol: 1e-9, Variant: v})
			if err != nil {
				t.Fatalf("trial %d: %v: %v", trial, v, err)
			}
			if math.Abs(res.Gain-ref.Gain) > 1e-8 {
				t.Errorf("trial %d: %v gain %v, jacobi %v", trial, v, res.Gain, ref.Gain)
			}
			if res.Lo > res.Hi {
				t.Errorf("trial %d: %v inverted bracket [%v, %v]", trial, v, res.Lo, res.Hi)
			}
		}
	}
}

// TestVariantSORHonorsOmega: an explicit in-range Omega is accepted, and the
// solve still certifies the Jacobi gain.
func TestVariantSORHonorsOmega(t *testing.T) {
	m := stayOrCycle()
	res, err := MeanPayoff(m, Options{Tol: 1e-9, Variant: kernel.VariantSOR, Omega: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gain-1) > 1e-8 {
		t.Errorf("gain = %v, want 1", res.Gain)
	}
}

// TestCompiledOnlyVariantsRejected: the generic backend has no specialized
// or float32 kernels; asking for them must be an explicit error, not a
// silent fallback.
func TestCompiledOnlyVariantsRejected(t *testing.T) {
	for _, v := range []kernel.Variant{kernel.VariantSpec, kernel.VariantExplore32} {
		_, err := MeanPayoff(chooseLoop(), Options{Tol: 1e-9, Variant: v})
		if err == nil || !strings.Contains(err.Error(), "requires the compiled backend") {
			t.Errorf("%v: err = %v, want compiled-backend rejection", v, err)
		}
	}
}

// TestVariantSignOnlyDecisionsMatch: sign-only solves drive binary-search
// decisions, so GS must certify the same sign as Jacobi from any start.
func TestVariantSignOnlyDecisionsMatch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := randomUnichain(r, 2+r.Intn(20), 3)
		ref, err := MeanPayoff(m, Options{Tol: 1e-6, SignOnly: true})
		if err != nil {
			t.Fatalf("trial %d: jacobi: %v", trial, err)
		}
		res, err := MeanPayoff(m, Options{Tol: 1e-6, SignOnly: true, Variant: kernel.VariantGS})
		if err != nil {
			t.Fatalf("trial %d: gs: %v", trial, err)
		}
		refSign, gsSign := sign(ref), sign(res)
		if refSign != 0 && gsSign != 0 && refSign != gsSign {
			t.Errorf("trial %d: gs sign %d, jacobi sign %d (brackets [%v,%v] vs [%v,%v])",
				trial, gsSign, refSign, res.Lo, res.Hi, ref.Lo, ref.Hi)
		}
	}
}

func sign(r *Result) int {
	switch {
	case r.Lo > 0:
		return 1
	case r.Hi < 0:
		return -1
	}
	return 0
}
