package solve

import (
	"math"
	"testing"

	"repro/internal/mdp"
)

// bigChain builds a deterministic n-state reward cycle, large enough that
// an explicit multi-worker request genuinely wants more than one chunk.
func bigChain(n int) *mdp.Explicit {
	choices := make([][]mdp.Choice, n)
	for s := 0; s < n; s++ {
		reward := 0.0
		if s == 0 {
			reward = 1
		}
		choices[s] = []mdp.Choice{{Succ: []mdp.Transition{{Dst: (s + 1) % n, Prob: 1, Reward: reward}}}}
	}
	return &mdp.Explicit{Init: 0, Choices: choices}
}

// TestSerialFallbackSurfaced: an explicit Workers > 1 on a model without
// mdp.Cloner must still solve correctly AND report the downgrade; the same
// request on a Cloner model, and any implicit (Workers <= 1) request, must
// not set the flag.
func TestSerialFallbackSurfaced(t *testing.T) {
	const n = 64
	cloner := bigChain(n)
	plain := nonCloner{m: bigChain(n)}

	parallel, err := MeanPayoff(cloner, Options{Tol: 1e-9, Workers: 4})
	if err != nil {
		t.Fatalf("cloner solve: %v", err)
	}
	if parallel.SerialFallback {
		t.Error("SerialFallback set although the model implements mdp.Cloner")
	}

	fallback, err := MeanPayoff(plain, Options{Tol: 1e-9, Workers: 4})
	if err != nil {
		t.Fatalf("non-cloner solve: %v", err)
	}
	if !fallback.SerialFallback {
		t.Error("Workers=4 on a non-Cloner model did not report SerialFallback")
	}
	if math.Abs(fallback.Gain-parallel.Gain) > 1e-12 {
		t.Errorf("fallback gain %v differs from parallel gain %v", fallback.Gain, parallel.Gain)
	}

	serial, err := MeanPayoff(nonCloner{m: bigChain(n)}, Options{Tol: 1e-9, Workers: 1})
	if err != nil {
		t.Fatalf("serial solve: %v", err)
	}
	if serial.SerialFallback {
		t.Error("explicit Workers=1 is not a fallback")
	}

	auto, err := MeanPayoff(nonCloner{m: bigChain(n)}, Options{Tol: 1e-9})
	if err != nil {
		t.Fatalf("default-workers solve: %v", err)
	}
	if auto.SerialFallback {
		t.Error("defaulted Workers=0 must not report a fallback")
	}
}

// TestSerialFallbackPolicyEval: EvalPolicyIterative surfaces the same
// downgrade.
func TestSerialFallbackPolicyEval(t *testing.T) {
	const n = 64
	policy := make([]int, n)
	res, err := EvalPolicyIterative(nonCloner{m: bigChain(n)}, policy, Options{Tol: 1e-9, Workers: 4})
	if err != nil {
		t.Fatalf("EvalPolicyIterative: %v", err)
	}
	if !res.SerialFallback {
		t.Error("policy evaluation did not report SerialFallback")
	}
	if got, err := EvalPolicyIterative(bigChain(n), policy, Options{Tol: 1e-9, Workers: 4}); err != nil {
		t.Fatal(err)
	} else if got.SerialFallback {
		t.Error("SerialFallback set for a Cloner model")
	}
}
