package solve

import (
	"fmt"
	"math"

	"repro/internal/mdp"
)

// MeanPayoff computes the optimal mean payoff of a unichain MDP by relative
// value iteration. It returns a certified bracket [Lo, Hi] containing the
// optimal gain g* = max_σ MP(σ) and a greedy positional strategy extracted
// from the final value vector.
//
// The bracket comes from the classical bounds for unichain MDPs:
//
//	min_s (T h - h)(s)  <=  g*  <=  max_s (T h - h)(s)
//
// for any value vector h, where T is the Bellman operator. Damping
// (Options.Damping) replaces T with (1-tau)I + tau*T to guarantee the
// bounds contract even for periodic transition structures; the observed
// differences are rescaled by 1/tau so the reported bracket refers to the
// undamped gain.
func MeanPayoff(m mdp.Model, opts Options) (*Result, error) {
	opts.defaults()
	n := m.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("solve: model has no states")
	}
	h := make([]float64, n)
	if opts.InitialValues != nil {
		if len(opts.InitialValues) != n {
			return nil, fmt.Errorf("solve: warm-start vector has %d entries, model has %d states", len(opts.InitialValues), n)
		}
		copy(h, opts.InitialValues)
	}
	next := make([]float64, n)
	tau := opts.Damping
	ref := m.Initial()
	var buf []mdp.Transition

	res := &Result{Lo: math.Inf(-1), Hi: math.Inf(1)}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for s := 0; s < n; s++ {
			best := math.Inf(-1)
			na := m.NumActions(s)
			for a := 0; a < na; a++ {
				buf = m.Transitions(s, a, buf[:0])
				var q float64
				for _, tr := range buf {
					q += tr.Prob * (tr.Reward + h[tr.Dst])
				}
				if q > best {
					best = q
				}
			}
			d := best - h[s] // (Th - h)(s)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
			next[s] = h[s] + tau*d
		}
		// Normalize relative to the reference state to keep values bounded.
		shift := next[ref]
		for s := range next {
			next[s] -= shift
		}
		h, next = next, h
		res.Iters = iter
		// Bracket tightening: brackets from successive iterations all
		// contain g*, so intersect them.
		if lo > res.Lo {
			res.Lo = lo
		}
		if hi < res.Hi {
			res.Hi = hi
		}
		if res.Hi-res.Lo < opts.Tol || (opts.SignOnly && (res.Lo > 0 || res.Hi < 0)) {
			res.Converged = true
			break
		}
	}
	res.Gain = (res.Lo + res.Hi) / 2
	res.Values = h
	res.Policy = GreedyPolicy(m, h)
	if !res.Converged {
		return res, fmt.Errorf("%w: bracket [%v, %v] after %d sweeps", ErrNoConvergence, res.Lo, res.Hi, res.Iters)
	}
	return res, nil
}

// GreedyPolicy extracts the positional strategy that is greedy with respect
// to the value vector h: in each state it picks the action maximizing the
// one-step lookahead Q(s, a) = Σ P(s,a,s')(r + h(s')).
func GreedyPolicy(m mdp.Model, h []float64) []int {
	n := m.NumStates()
	policy := make([]int, n)
	var buf []mdp.Transition
	for s := 0; s < n; s++ {
		best := math.Inf(-1)
		bestA := 0
		na := m.NumActions(s)
		for a := 0; a < na; a++ {
			buf = m.Transitions(s, a, buf[:0])
			var q float64
			for _, tr := range buf {
				q += tr.Prob * (tr.Reward + h[tr.Dst])
			}
			if q > best {
				best, bestA = q, a
			}
		}
		policy[s] = bestA
	}
	return policy
}
