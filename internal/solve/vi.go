package solve

import (
	"context"
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/mdp"
	"repro/internal/obs"
	"repro/internal/par"
)

// minStatesPerWorker keeps small models on the serial path when the worker
// count is defaulted: one generic sweep costs roughly a microsecond per
// state (transition enumeration dominates), so chunks below this size are
// not worth a goroutine.
const minStatesPerWorker = 256

// signOnlyFloorFrac scales Tol down to the bracket width at which a
// sign-only solve stops without a certified sign, concluding the gain is
// numerically zero. See the matching constant in internal/core: stopping at
// Tol with the sign open would make binary-search decisions depend on the
// solve's starting vector, breaking warm-start reproducibility.
const signOnlyFloorFrac = 1e-6

// signOnlyStallSweeps stops a sign-only solve whose sub-Tol bracket width
// has been pinned by floating-point noise for this many consecutive sweeps
// (see the matching constant in internal/core).
const signOnlyStallSweeps = 512

// sweepChunks resolves the number of chunks a sweep over n states is split
// into: an explicit workers > 0 is honored exactly (capped at n), while the
// default applies the small-model grain heuristic to runtime.NumCPU().
func sweepChunks(n, workers int) int {
	if workers > 0 {
		return par.NumChunks(n, workers)
	}
	return par.NumChunks(n, par.Grain(n, par.Workers(0), minStatesPerWorker))
}

// workerViews returns one model view per chunk. Chunk 0 uses the caller's
// model; the rest are independent views from mdp.Cloner. Models that do
// not implement Cloner cannot be read concurrently, so they get a single
// view, degrading the sweep to serial execution (the results are identical
// either way); fellBack reports that degradation so MeanPayoff can surface
// it on Result.SerialFallback instead of leaving an explicit multi-worker
// request silently unhonored.
func workerViews(m mdp.Model, chunks int) (views []mdp.Model, fellBack bool) {
	if chunks <= 1 {
		return []mdp.Model{m}, false
	}
	cl, ok := m.(mdp.Cloner)
	if !ok {
		return []mdp.Model{m}, true
	}
	views = make([]mdp.Model, chunks)
	views[0] = m
	for i := 1; i < chunks; i++ {
		views[i] = cl.CloneModel()
	}
	return views, false
}

// MeanPayoff computes the optimal mean payoff of a unichain MDP by relative
// value iteration. It returns a certified bracket [Lo, Hi] containing the
// optimal gain g* = max_σ MP(σ) and a greedy positional strategy extracted
// from the final value vector.
//
// The bracket comes from the classical bounds for unichain MDPs:
//
//	min_s (T h - h)(s)  <=  g*  <=  max_s (T h - h)(s)
//
// for any value vector h, where T is the Bellman operator. Damping
// (Options.Damping) replaces T with (1-tau)I + tau*T to guarantee the
// bounds contract even for periodic transition structures; the observed
// differences are rescaled by 1/tau so the reported bracket refers to the
// undamped gain.
//
// When Options.Workers allows and the model implements mdp.Cloner, each
// sweep is fanned out over contiguous state chunks, one model view per
// worker. Every state's update reads only the previous value vector and the
// bracket is reduced with exact min/max, so the parallel sweep is bitwise
// identical to the serial one at any worker count.
//
// MeanPayoff runs with no cancellation; it is MeanPayoffContext under
// context.Background().
func MeanPayoff(m mdp.Model, opts Options) (*Result, error) {
	return MeanPayoffContext(context.Background(), m, opts)
}

// MeanPayoffContext is MeanPayoff with cooperative cancellation: ctx is
// checked once per sweep, at the sweep boundary and never inside one, so a
// solve that completes performs exactly the same floating-point operations
// as an uncancellable one — the context decides only whether the next sweep
// starts. On cancellation the partial Result (sweeps done so far in Iters,
// the bracket intersected so far) is returned with an error wrapping
// ctx.Err().
func MeanPayoffContext(ctx context.Context, m mdp.Model, opts Options) (*Result, error) {
	opts.defaults()
	variant := opts.Variant.String()
	sp := obs.StartSpan(solveSeconds.With(variant))
	res, err := meanPayoffContext(ctx, m, opts)
	sp.End()
	solvesTotal.With(variant).Inc()
	if res != nil {
		solveSweeps.With(variant).Add(uint64(res.Iters))
	}
	return res, err
}

// meanPayoffContext is MeanPayoffContext behind the phase instruments.
func meanPayoffContext(ctx context.Context, m mdp.Model, opts Options) (*Result, error) {
	n := m.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("solve: model has no states")
	}
	// Variant resolution. GS/SOR interleave a serial in-place relaxation
	// pass between the (parallel, deterministic) certification sweeps; the
	// compiled-only variants have no generic implementation.
	burst := 0
	omega := 1.0
	switch opts.Variant {
	case kernel.VariantJacobi:
	case kernel.VariantGS:
		burst = 1
	case kernel.VariantSOR:
		burst = 1
		if opts.Omega > 0 && opts.Omega < 2 {
			omega = opts.Omega
		} else {
			omega = kernel.DefaultSOROmega
		}
	default:
		return nil, fmt.Errorf("solve: kernel variant %q requires the compiled backend", opts.Variant)
	}
	if opts.InitialValues != nil && len(opts.InitialValues) != n {
		return nil, fmt.Errorf("solve: warm-start vector has %d entries, model has %d states", len(opts.InitialValues), n)
	}
	h, next := solveVectors(opts.Workspace, n, opts.InitialValues)
	tau := opts.Damping
	ref := m.Initial()

	views, fellBack := workerViews(m, sweepChunks(n, opts.Workers))
	chunks := len(views)
	red := par.NewMinMax(chunks)
	bufs := make([][]mdp.Transition, chunks)

	res := &Result{Lo: math.Inf(-1), Hi: math.Inf(1)}
	// Only an explicit parallelism request counts as a fallback worth
	// reporting; the Workers=0 default may legitimately resolve to serial.
	res.SerialFallback = fellBack && opts.Workers > 1

	// gsPass runs one serial in-place relaxation pass over the full state
	// range (alternating direction) on views[0]. Subtracting the current
	// gain estimate per update is what lets in-place relaxation converge
	// for mean-payoff iteration at all — see kernel.Compiled's gsRound for
	// the full argument; this is its generic-backend twin.
	gsPass := func(h []float64, gEst float64, reverse bool) {
		mm := views[0]
		buf := bufs[0]
		step := tau * omega
		relax := func(s int) {
			best := math.Inf(-1)
			na := mm.NumActions(s)
			for a := 0; a < na; a++ {
				buf = mm.Transitions(s, a, buf[:0])
				var q float64
				for _, tr := range buf {
					q += tr.Prob * (tr.Reward + h[tr.Dst])
				}
				if q > best {
					best = q
				}
			}
			h[s] += step * (best - h[s] - gEst)
		}
		if reverse {
			for s := n - 1; s >= 0; s-- {
				relax(s)
			}
		} else {
			for s := 0; s < n; s++ {
				relax(s)
			}
		}
		bufs[0] = buf
		ofs := h[ref]
		for i := range h {
			h[i] -= ofs
		}
	}

	lastWidth, stall := math.Inf(1), 0
	reverse := false
	for res.Iters < opts.MaxIter {
		if err := ctx.Err(); err != nil {
			res.Gain = (res.Lo + res.Hi) / 2
			res.Values = h
			return res, fmt.Errorf("solve: canceled after %d sweeps: %w", res.Iters, err)
		}
		hv, nx := h, next // chunk workers read hv, write disjoint slots of nx
		par.For(n, chunks, func(chunk, from, to int) {
			mm := views[chunk]
			buf := bufs[chunk]
			lo, hi := math.Inf(1), math.Inf(-1)
			for s := from; s < to; s++ {
				best := math.Inf(-1)
				na := mm.NumActions(s)
				for a := 0; a < na; a++ {
					buf = mm.Transitions(s, a, buf[:0])
					var q float64
					for _, tr := range buf {
						q += tr.Prob * (tr.Reward + hv[tr.Dst])
					}
					if q > best {
						best = q
					}
				}
				d := best - hv[s] // (Th - h)(s)
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
				nx[s] = hv[s] + tau*d
			}
			bufs[chunk] = buf
			red.Set(chunk, lo, hi)
		})
		lo, hi := red.Reduce()
		// Normalize relative to the reference state to keep values bounded.
		par.Shift(next, next[ref], chunks)
		h, next = next, h
		res.Iters++
		// Bracket tightening: brackets from successive iterations all
		// contain g*, so intersect them.
		if lo > res.Lo {
			res.Lo = lo
		}
		if hi < res.Hi {
			res.Hi = hi
		}
		// Sign-only solves iterate until the bracket excludes zero: the
		// bracket contains g* for ANY starting vector, so the certified
		// sign is the true sign, making binary-search decisions identical
		// under any warm start. The width floor and the sub-Tol stall
		// counter guard termination when the gain is numerically zero.
		// Plain solves stop at the Tol width.
		width := res.Hi - res.Lo
		if opts.SignOnly {
			if width < opts.Tol {
				if width < lastWidth {
					stall = 0
				} else {
					stall++
				}
			}
			res.Converged = res.Lo > 0 || res.Hi < 0 ||
				width < opts.Tol*signOnlyFloorFrac ||
				stall >= signOnlyStallSweeps
		} else {
			res.Converged = width < opts.Tol
		}
		lastWidth = width
		if res.Converged {
			break
		}
		if burst > 0 && res.Iters+burst <= opts.MaxIter {
			gsPass(h, (res.Lo+res.Hi)/2, reverse)
			reverse = !reverse
			res.Iters += burst
		}
	}
	res.Gain = (res.Lo + res.Hi) / 2
	res.Values = h
	res.Policy = greedyPolicy(views, h)
	if !res.Converged {
		return res, fmt.Errorf("%w: bracket [%v, %v] after %d sweeps", ErrNoConvergence, res.Lo, res.Hi, res.Iters)
	}
	return res, nil
}

// GreedyPolicy extracts the positional strategy that is greedy with respect
// to the value vector h: in each state it picks the action maximizing the
// one-step lookahead Q(s, a) = Σ P(s,a,s')(r + h(s')).
func GreedyPolicy(m mdp.Model, h []float64) []int {
	return greedyPolicy([]mdp.Model{m}, h)
}

// greedyPolicy runs the extraction sweep with one chunk per model view.
// Each state's choice depends only on the frozen value vector, so the
// policy is identical at any view count.
func greedyPolicy(views []mdp.Model, h []float64) []int {
	n := views[0].NumStates()
	policy := make([]int, n)
	par.For(n, len(views), func(chunk, from, to int) {
		mm := views[chunk]
		var buf []mdp.Transition
		for s := from; s < to; s++ {
			best := math.Inf(-1)
			bestA := 0
			na := mm.NumActions(s)
			for a := 0; a < na; a++ {
				buf = mm.Transitions(s, a, buf[:0])
				var q float64
				for _, tr := range buf {
					q += tr.Prob * (tr.Reward + h[tr.Dst])
				}
				if q > best {
					best, bestA = q, a
				}
			}
			policy[s] = bestA
		}
	})
	return policy
}
