package solve

import "repro/internal/obs"

// Generic-backend (mdp.Model) solve instruments, on the shared default
// registry. Like the kernel's, these fire only at solve boundaries: the
// per-sweep loop body is untouched.
var (
	solvesTotal = obs.Default().CounterVec("solve_generic_solves_total",
		"Generic-backend mean-payoff solves, by kernel variant.", "variant")
	solveSweeps = obs.Default().CounterVec("solve_generic_sweeps_total",
		"Value-iteration sweeps run by generic-backend solves, by kernel variant.", "variant")
	solveSeconds = obs.Default().HistogramVec("solve_generic_seconds",
		"Wall time of one generic-backend mean-payoff solve, by kernel variant.",
		obs.DefBuckets(), "variant")
)
