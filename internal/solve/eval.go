package solve

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/mdp"
	"repro/internal/par"
)

// EvalPolicyExact computes the exact gain and bias of a fixed positional
// policy via a dense linear solve on the induced Markov chain. Intended for
// small and medium models; the model must be unichain under the policy.
func EvalPolicyExact(m mdp.Model, policy []int) (gain float64, bias []float64, err error) {
	chain, rewards, err := mdp.InducedChain(m, policy)
	if err != nil {
		return 0, nil, err
	}
	return linalg.GainBias(chain, rewards, m.Initial())
}

// EvalPolicyIterative brackets the gain of a fixed positional policy by
// relative value iteration restricted to that policy. It scales to large
// models where the dense solve of EvalPolicyExact is infeasible. Sweeps
// are parallelized like MeanPayoff and equally independent of the worker
// count.
func EvalPolicyIterative(m mdp.Model, policy []int, opts Options) (*Result, error) {
	opts.defaults()
	n := m.NumStates()
	if len(policy) != n {
		return nil, fmt.Errorf("solve: policy covers %d states, model has %d", len(policy), n)
	}
	if opts.InitialValues != nil && len(opts.InitialValues) != n {
		return nil, fmt.Errorf("solve: warm-start vector has %d entries, model has %d states", len(opts.InitialValues), n)
	}
	h, next := solveVectors(opts.Workspace, n, opts.InitialValues)
	tau := opts.Damping
	ref := m.Initial()

	views, fellBack := workerViews(m, sweepChunks(n, opts.Workers))
	chunks := len(views)
	red := par.NewMinMax(chunks)
	bufs := make([][]mdp.Transition, chunks)

	res := &Result{Lo: math.Inf(-1), Hi: math.Inf(1), Policy: policy}
	res.SerialFallback = fellBack && opts.Workers > 1
	for iter := 1; iter <= opts.MaxIter; iter++ {
		hv, nx := h, next
		par.For(n, chunks, func(chunk, from, to int) {
			mm := views[chunk]
			buf := bufs[chunk]
			lo, hi := math.Inf(1), math.Inf(-1)
			for s := from; s < to; s++ {
				buf = mm.Transitions(s, policy[s], buf[:0])
				var q float64
				for _, tr := range buf {
					q += tr.Prob * (tr.Reward + hv[tr.Dst])
				}
				d := q - hv[s]
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
				nx[s] = hv[s] + tau*d
			}
			bufs[chunk] = buf
			red.Set(chunk, lo, hi)
		})
		lo, hi := red.Reduce()
		par.Shift(next, next[ref], chunks)
		h, next = next, h
		res.Iters = iter
		if lo > res.Lo {
			res.Lo = lo
		}
		if hi < res.Hi {
			res.Hi = hi
		}
		if res.Hi-res.Lo < opts.Tol || (opts.SignOnly && (res.Lo > 0 || res.Hi < 0)) {
			res.Converged = true
			break
		}
	}
	res.Gain = (res.Lo + res.Hi) / 2
	res.Values = h
	if !res.Converged {
		return res, fmt.Errorf("%w: bracket [%v, %v] after %d sweeps", ErrNoConvergence, res.Lo, res.Hi, res.Iters)
	}
	return res, nil
}

// GainRatio evaluates the long-run ratio g_num / g_den of two reward
// structures under a fixed policy on the same chain, via exact stationary
// analysis. numFn and denFn map each transition (under the policy's action)
// to its contribution. This is how the expected relative revenue of a
// computed strategy is certified: ERRev(σ) = gain(r_A) / gain(r_A + r_H)
// by the renewal-reward theorem for ergodic chains.
func GainRatio(m mdp.Model, policy []int, numFn, denFn func(s, a int, tr mdp.Transition) float64) (float64, error) {
	return GainRatioWorkspace(m, policy, numFn, denFn, nil)
}

// GainRatioWorkspace is GainRatio with the per-state accumulators and the
// chain's entry buffer drawn from ws (when non-nil), so a caller
// certifying many strategies reuses one allocation. See Workspace for
// ownership rules.
func GainRatioWorkspace(m mdp.Model, policy []int, numFn, denFn func(s, a int, tr mdp.Transition) float64, ws *Workspace) (float64, error) {
	if err := mdp.Policy(policy).Validate(m); err != nil {
		return 0, err
	}
	n := m.NumStates()
	var numVec, denVec []float64
	var entries []linalg.Entry
	if ws != nil {
		numVec, denVec, entries = ws.ratioScratch(n)
	} else {
		numVec = make([]float64, n)
		denVec = make([]float64, n)
	}
	var buf []mdp.Transition
	for s := 0; s < n; s++ {
		buf = m.Transitions(s, policy[s], buf[:0])
		for _, tr := range buf {
			entries = append(entries, linalg.Entry{Row: s, Col: tr.Dst, Val: tr.Prob})
			numVec[s] += tr.Prob * numFn(s, policy[s], tr)
			denVec[s] += tr.Prob * denFn(s, policy[s], tr)
		}
	}
	if ws != nil {
		ws.entries = entries // keep the grown backing for the next call
	}
	chain, err := linalg.NewCSR(n, n, entries)
	if err != nil {
		return 0, err
	}
	pi, err := linalg.Stationary(chain, linalg.StationaryOptions{})
	if err != nil {
		return 0, err
	}
	var gNum, gDen float64
	for s := range pi {
		gNum += pi[s] * numVec[s]
		gDen += pi[s] * denVec[s]
	}
	if gDen <= 0 {
		return 0, fmt.Errorf("solve: denominator gain %v is not positive", gDen)
	}
	return gNum / gDen, nil
}
