package solve

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/mdp"
)

// PolicyIteration runs Howard's policy iteration with exact gain/bias
// evaluation via a dense linear solve. It is exact up to linear-algebra
// round-off and intended for small and medium models (the dense solve is
// O(n^3)); it serves as an independent cross-check of MeanPayoff.
//
// The model must be unichain: every positional strategy must induce a chain
// with a single recurrent class (so the gain is a scalar).
func PolicyIteration(m mdp.Model, maxIter int) (*Result, error) {
	if maxIter <= 0 {
		maxIter = 1000
	}
	n := m.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("solve: model has no states")
	}
	policy := make([]int, n)
	ref := m.Initial()
	var buf []mdp.Transition
	const improveTol = 1e-10

	var gain float64
	var bias []float64
	for iter := 1; iter <= maxIter; iter++ {
		chain, rewards, err := mdp.InducedChain(m, policy)
		if err != nil {
			return nil, fmt.Errorf("solve: inducing chain: %w", err)
		}
		gain, bias, err = linalg.GainBias(chain, rewards, ref)
		if err != nil {
			return nil, fmt.Errorf("solve: evaluating policy: %w", err)
		}
		improved := false
		for s := 0; s < n; s++ {
			bestQ := math.Inf(-1)
			bestA := policy[s]
			var curQ float64
			for a := 0; a < m.NumActions(s); a++ {
				buf = m.Transitions(s, a, buf[:0])
				var q float64
				for _, tr := range buf {
					q += tr.Prob * (tr.Reward + bias[tr.Dst])
				}
				if a == policy[s] {
					curQ = q
				}
				if q > bestQ {
					bestQ, bestA = q, a
				}
			}
			if bestA != policy[s] && bestQ > curQ+improveTol {
				policy[s] = bestA
				improved = true
			}
		}
		if !improved {
			return &Result{
				Gain:      gain,
				Lo:        gain,
				Hi:        gain,
				Policy:    policy,
				Values:    bias,
				Iters:     iter,
				Converged: true,
			}, nil
		}
	}
	return nil, fmt.Errorf("%w: policy iteration did not stabilize in %d rounds", ErrNoConvergence, maxIter)
}
