package solve

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

// errAfterChecks cancels after n Err() observations; the solver polls
// Err() once per sweep, so n pins the cancellation to an exact boundary.
type errAfterChecks struct {
	context.Context
	n     int64
	calls atomic.Int64
}

func (c *errAfterChecks) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

func TestMeanPayoffContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MeanPayoffContext(ctx, chooseLoop(), Options{Tol: 1e-9})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Iters != 0 {
		t.Fatalf("pre-canceled solve ran %d sweeps, want 0", res.Iters)
	}
}

func TestMeanPayoffContextCancelsAtBoundary(t *testing.T) {
	const n = 4
	ctx := &errAfterChecks{Context: context.Background(), n: n}
	// stayOrCycle's damped 2-cycle contracts slowly, so it cannot converge
	// before the fourth sweep boundary.
	res, err := MeanPayoffContext(ctx, stayOrCycle(), Options{Tol: 1e-15, MaxIter: 100000})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iters != n {
		t.Fatalf("canceled after %d sweeps, want exactly %d", res.Iters, n)
	}
}

// TestMeanPayoffContextCompletedBitwise: a live context changes nothing
// about a completed solve — the check sits between sweeps, never inside.
func TestMeanPayoffContextCompletedBitwise(t *testing.T) {
	ref, err := MeanPayoff(chooseLoop(), Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := MeanPayoffContext(ctx, chooseLoop(), Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Gain) != math.Float64bits(ref.Gain) || got.Iters != ref.Iters {
		t.Fatalf("ctx solve (gain %v, %d sweeps) != plain solve (gain %v, %d sweeps)",
			got.Gain, got.Iters, ref.Gain, ref.Iters)
	}
	for i := range ref.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(ref.Values[i]) {
			t.Fatalf("value vectors diverge at state %d", i)
		}
	}
}
