package solve

import (
	"context"

	"repro/internal/kernel"
)

// BatchOptions tunes one batched multi-lane solve; fields mirror Options
// lane-wise (see kernel.BatchOptions for the per-field semantics).
type BatchOptions struct {
	// Tol holds the per-lane gain bracket width target (len NumLanes);
	// nil or non-positive entries default to 1e-7.
	Tol []float64
	// MaxIter bounds the shared sweep count; default 500000.
	MaxIter int
	// Damping is the aperiodicity mix shared by all lanes; default 0.95.
	Damping float64
	// SignOnly stops each lane once its bracket excludes zero, with the
	// solo exact-sign semantics per lane.
	SignOnly bool
	// KeepValues warm-starts every lane from its current vector on the
	// Batch (previous solve or Batch.SetValues); lanes without one start
	// cold.
	KeepValues bool
}

// BatchMeanPayoff solves all lanes of b in one batched value-iteration
// loop, lane ln under reward r_{betas[ln]} — the multi-lane counterpart
// of MeanPayoffContext on the compiled backend. The shared transition
// structure is streamed once per sweep and applied to every live lane;
// each lane's Result is bitwise identical to a solo Jacobi solve at that
// lane's parameters (see kernel.Batch).
//
// The returned Results carry per-lane Gain/Lo/Hi/Iters/Converged;
// converged value vectors stay on b (Batch.Values) rather than on
// Result.Values, since the batch owns the lane-major storage. Policy
// extraction is intentionally absent: the batch path serves sign-only
// binary-search steps and bound-only sweeps, and single-point strategy
// work stays on the solo kernels.
//
// ctx is checked once per sweep; on cancellation the partial per-lane
// Results are returned with an error wrapping ctx.Err().
func BatchMeanPayoff(ctx context.Context, b *kernel.Batch, betas []float64, opts BatchOptions) ([]*Result, error) {
	krs, err := b.MeanPayoffCtx(ctx, betas, kernel.BatchOptions{
		Tol:        opts.Tol,
		MaxIter:    opts.MaxIter,
		Damping:    opts.Damping,
		SignOnly:   opts.SignOnly,
		KeepValues: opts.KeepValues,
	})
	if krs == nil {
		return nil, err
	}
	return wrapResults(krs), err
}

func wrapResults(krs []kernel.Result) []*Result {
	rs := make([]*Result, len(krs))
	for ln := range krs {
		rs[ln] = &Result{
			Gain:      krs[ln].Gain,
			Lo:        krs[ln].Lo,
			Hi:        krs[ln].Hi,
			Iters:     krs[ln].Iters,
			Converged: krs[ln].Converged,
		}
	}
	return rs
}

// LaneSolve is one solve request inside a batched run (see BatchRun): the
// β defining the lane's reward view and the gain bracket width target
// (non-positive defaults to 1e-7).
type LaneSolve struct {
	Beta float64
	Tol  float64
}

// BatchRunOptions tunes a batched run; fields are shared by every solve of
// every lane (β and tolerance arrive per solve via LaneSolve).
type BatchRunOptions struct {
	// MaxIter bounds each individual lane solve's sweep count; default
	// 500000.
	MaxIter int
	// Damping is the aperiodicity mix shared by all lanes; default 0.95.
	Damping float64
	// SignOnly stops each lane solve once its bracket excludes zero, with
	// the solo exact-sign semantics.
	SignOnly bool
	// KeepValues warm-starts every lane's FIRST solve from its current
	// vector on the Batch; later solves of a run always continue from the
	// previous solve's converged vector, like solo KeepValues chaining.
	KeepValues bool
}

// BatchRun drives each lane of b through its own stream of solves inside
// one shared value-iteration loop: next(ln, nil) supplies lane ln's first
// solve (or reports the lane idle), and each time a lane's solve
// converges, next(ln, result) either supplies the lane's next solve —
// warm-started in place from the converged vector — or retires the lane.
// Lanes advance asynchronously, so a lane never idles between its own
// solves waiting for slower lanes; see kernel.(*Batch).RunCtx for the
// bitwise-equivalence contract per lane.
//
// The returned Results hold each lane's last solve outcome (zero Result
// for lanes never issued a solve); converged vectors stay on b
// (Batch.Values). On cancellation or MaxIter exhaustion the partial
// Results return with a non-nil error.
func BatchRun(ctx context.Context, b *kernel.Batch, opts BatchRunOptions, next func(ln int, prev *Result) (LaneSolve, bool)) ([]*Result, error) {
	krs, err := b.RunCtx(ctx, kernel.BatchRunOptions{
		MaxIter:    opts.MaxIter,
		Damping:    opts.Damping,
		SignOnly:   opts.SignOnly,
		KeepValues: opts.KeepValues,
	}, func(ln int, prev *kernel.Result) (kernel.LaneSolve, bool) {
		var pr *Result
		if prev != nil {
			pr = &Result{
				Gain:      prev.Gain,
				Lo:        prev.Lo,
				Hi:        prev.Hi,
				Iters:     prev.Iters,
				Converged: prev.Converged,
			}
		}
		s, ok := next(ln, pr)
		return kernel.LaneSolve{Beta: s.Beta, Tol: s.Tol}, ok
	})
	if krs == nil {
		return nil, err
	}
	return wrapResults(krs), err
}
