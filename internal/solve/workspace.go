package solve

import "repro/internal/linalg"

// Workspace holds the scratch vectors of the iterative solvers so a caller
// running many related solves — e.g. the ~14 sign-only solves of one
// Algorithm 1 binary search — allocates them once instead of per solve.
// Pass it via Options.Workspace; the zero value is ready to use.
//
// A Workspace is owned by one solve at a time: it is not safe for
// concurrent use, and a Result obtained with a workspace aliases it —
// Result.Values points into workspace memory and is only valid until the
// next workspace-backed solve (copy it to keep it). Options.InitialValues
// may alias workspace memory (the typical warm-start chain feeds the
// previous Result.Values straight back in); the solvers handle the
// overlap.
//
// The workspace never changes results: the solvers' floating-point
// sequence is identical whether the vectors are fresh or reused.
type Workspace struct {
	h, next  []float64
	num, den []float64
	entries  []linalg.Entry
}

// vectors returns the two value-iteration buffers, grown to n. Contents
// are unspecified; the caller initializes h (warm copy or zero) and fully
// overwrites next each sweep.
func (w *Workspace) vectors(n int) (h, next []float64) {
	if cap(w.h) < n {
		w.h = make([]float64, n)
		w.next = make([]float64, n)
	}
	w.h, w.next = w.h[:cap(w.h)][:n], w.next[:cap(w.next)][:n]
	return w.h, w.next
}

// ratioScratch returns zeroed per-state accumulators and an empty entry
// buffer for GainRatioWorkspace, grown to n states.
func (w *Workspace) ratioScratch(n int) (num, den []float64, entries []linalg.Entry) {
	if cap(w.num) < n {
		w.num = make([]float64, n)
		w.den = make([]float64, n)
	}
	w.num, w.den = w.num[:cap(w.num)][:n], w.den[:cap(w.den)][:n]
	for i := range w.num {
		w.num[i] = 0
		w.den[i] = 0
	}
	return w.num, w.den, w.entries[:0]
}

// solveVectors resolves the h/next pair for one iterative solve: from the
// workspace when the caller supplied one, freshly allocated otherwise.
// h is initialized from iv (which may alias workspace memory — including
// the previous solve's Result.Values — so the copy happens before any
// clearing) or zeroed.
func solveVectors(ws *Workspace, n int, iv []float64) (h, next []float64) {
	if ws == nil {
		h, next = make([]float64, n), make([]float64, n)
		if iv != nil {
			copy(h, iv)
		}
		return h, next
	}
	h, next = ws.vectors(n)
	if iv != nil {
		// iv aliasing h is a no-op copy; iv aliasing next is safe because
		// every sweep fully overwrites next before reading it.
		copy(h, iv)
	} else {
		for i := range h {
			h[i] = 0
		}
	}
	return h, next
}
