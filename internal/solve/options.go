// Package solve implements mean-payoff (long-run average reward) solvers for
// finite unichain MDPs:
//
//   - relative value iteration (RVI) with certified gain brackets, damping
//     for aperiodicity, warm starts, and an optional sign-only early exit
//     used by the binary search of the paper's Algorithm 1;
//   - Howard policy iteration with exact gain/bias evaluation for small
//     models (used to cross-check RVI);
//   - policy evaluation, both exact (dense linear solve) and iterative.
//
// All solvers assume the MDP is unichain: under every positional strategy
// the induced Markov chain has a single recurrent class, so the optimal
// gain is constant across states. The selfish-mining MDP of the paper has
// this property (from any state, d consecutive honest blocks lead back to
// the initial state).
//
// # Parallel sweeps
//
// The iterative solvers fan each value-iteration sweep out across
// Options.Workers goroutines, partitioning the state space into contiguous
// chunks (one mdp.Cloner view per worker). This is deterministic by
// construction: a Jacobi-style sweep writes next[s] as a function of the
// previous vector h only, never of other next entries, so the chunked
// computation performs exactly the same floating-point operations in the
// same per-state order as the serial loop; and the gain bracket is reduced
// with min/max, which are exact, associative, and commutative. Results are
// therefore bitwise identical at every worker count — the property the
// determinism tests in package selfishmining pin down end to end.
package solve

import (
	"errors"

	"repro/internal/kernel"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before reaching the requested precision.
var ErrNoConvergence = errors.New("solve: iteration limit reached before convergence")

// Options configures the iterative solvers.
type Options struct {
	// Tol is the target width of the gain bracket [Lo, Hi]. Default 1e-7.
	Tol float64
	// MaxIter bounds the number of value-iteration sweeps. Default 500000.
	MaxIter int
	// Damping tau in (0, 1]: each sweep applies h' = (1-tau)h + tau*Th,
	// which preserves the optimal gain (after rescaling by 1/tau, handled
	// internally) and guarantees aperiodicity. Default 0.95.
	Damping float64
	// SignOnly stops as soon as the gain bracket excludes 0, returning a
	// possibly wide bracket whose sign is nevertheless certain. Unlike a
	// plain solve it does NOT stop at Tol with the sign still open — it
	// keeps sweeping until the sign is certified (or the bracket shrinks a
	// further factor 1e-6, the numerically-zero floor), so the decision it
	// feeds back is the true sign regardless of InitialValues.
	SignOnly bool
	// InitialValues warm-starts the value vector. Must have length
	// NumStates if non-nil; it is not modified.
	InitialValues []float64
	// Workers is the per-sweep parallelism of the iterative solvers. A
	// positive value is honored exactly (capped at the state count); 0, the
	// default, uses runtime.NumCPU() reduced for small models. Parallel
	// sweeps require the model to implement mdp.Cloner (one independent
	// view per worker); other models fall back to serial sweeps, which
	// Result.SerialFallback surfaces when the fallback overrode an
	// explicit Workers > 1 request. The worker count never changes
	// results — chunked sweeps are bitwise identical to serial ones — only
	// wall-clock time.
	Workers int
	// Variant selects the sweep kernel, mirroring kernel.Options.Variant.
	// The zero value is the bitwise-deterministic Jacobi default. The
	// generic backend supports VariantGS and VariantSOR (serial in-place
	// relaxation passes interleaved with the parallel certification
	// sweeps); VariantSpec and VariantExplore32 exist only on the compiled
	// backend and are rejected here.
	Variant kernel.Variant
	// Omega is the SOR over-relaxation factor in (0, 2); 0 picks the
	// default. Ignored outside VariantSOR.
	Omega float64
	// Workspace, when non-nil, supplies the solver's scratch vectors so
	// repeated solves (a binary search's inner steps) reuse one
	// allocation. See Workspace for ownership and aliasing rules; results
	// are bitwise identical with or without it.
	Workspace *Workspace
}

func (o *Options) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 500000
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.95
	}
}

// Result reports the outcome of a mean-payoff solve.
type Result struct {
	// Gain is the midpoint of the final bracket.
	Gain float64
	// Lo and Hi bracket the optimal gain: Lo <= g* <= Hi.
	Lo, Hi float64
	// Policy is a gain-optimal (within bracket width) positional strategy.
	Policy []int
	// Values is the final (relative) value vector; pass it back via
	// Options.InitialValues to warm-start a related solve.
	Values []float64
	// Iters is the number of sweeps performed.
	Iters int
	// Converged reports whether the bracket reached Tol (or, in SignOnly
	// mode, excluded zero) before MaxIter.
	Converged bool
	// SerialFallback reports that an explicit Options.Workers > 1 request
	// was downgraded to serial sweeps because the model does not implement
	// mdp.Cloner (concurrent chunk workers need independent views). The
	// numeric results are identical either way — only wall-clock time
	// differs — so the downgrade is surfaced here instead of failing the
	// solve.
	SerialFallback bool
}

// SignKnown reports whether the bracket determines the sign of the gain.
func (r *Result) SignKnown() bool { return r.Lo > 0 || r.Hi < 0 }
