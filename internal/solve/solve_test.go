package solve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mdp"
)

// chooseLoop is a 1-state MDP with two self-loop actions of rewards 0.3, 0.7.
func chooseLoop() *mdp.Explicit {
	return &mdp.Explicit{
		Init: 0,
		Choices: [][]mdp.Choice{
			{
				{Label: "low", Succ: []mdp.Transition{{Dst: 0, Prob: 1, Reward: 0.3}}},
				{Label: "high", Succ: []mdp.Transition{{Dst: 0, Prob: 1, Reward: 0.7}}},
			},
		},
	}
}

// stayOrCycle: state 0 may self-loop (reward 0.5) or enter a 2-cycle via
// state 1 with rewards 0 then 2 (average 1). Optimal gain is 1.
func stayOrCycle() *mdp.Explicit {
	return &mdp.Explicit{
		Init: 0,
		Choices: [][]mdp.Choice{
			{
				{Label: "stay", Succ: []mdp.Transition{{Dst: 0, Prob: 1, Reward: 0.5}}},
				{Label: "cycle", Succ: []mdp.Transition{{Dst: 1, Prob: 1, Reward: 0}}},
			},
			{
				{Label: "back", Succ: []mdp.Transition{{Dst: 0, Prob: 1, Reward: 2}}},
			},
		},
	}
}

func TestMeanPayoffChooseLoop(t *testing.T) {
	res, err := MeanPayoff(chooseLoop(), Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	if math.Abs(res.Gain-0.7) > 1e-9 {
		t.Errorf("gain = %v, want 0.7", res.Gain)
	}
	if res.Policy[0] != 1 {
		t.Errorf("policy picks action %d, want 1 (high)", res.Policy[0])
	}
}

func TestMeanPayoffStayOrCycle(t *testing.T) {
	res, err := MeanPayoff(stayOrCycle(), Options{Tol: 1e-9})
	if err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	if math.Abs(res.Gain-1) > 1e-7 {
		t.Errorf("gain = %v, want 1", res.Gain)
	}
	if res.Policy[0] != 1 {
		t.Errorf("policy picks action %d in state 0, want 1 (cycle)", res.Policy[0])
	}
	if res.Lo > 1 || res.Hi < 1 {
		t.Errorf("bracket [%v, %v] does not contain the true gain 1", res.Lo, res.Hi)
	}
}

func TestMeanPayoffPeriodicChain(t *testing.T) {
	// Pure 2-cycle with rewards 1, 0: gain 0.5. Undamped VI would oscillate;
	// damping must still converge.
	m := &mdp.Explicit{
		Init: 0,
		Choices: [][]mdp.Choice{
			{{Succ: []mdp.Transition{{Dst: 1, Prob: 1, Reward: 1}}}},
			{{Succ: []mdp.Transition{{Dst: 0, Prob: 1, Reward: 0}}}},
		},
	}
	res, err := MeanPayoff(m, Options{Tol: 1e-9})
	if err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	if math.Abs(res.Gain-0.5) > 1e-7 {
		t.Errorf("gain = %v, want 0.5", res.Gain)
	}
}

func TestMeanPayoffSignOnly(t *testing.T) {
	res, err := MeanPayoff(chooseLoop(), Options{SignOnly: true})
	if err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	if !res.SignKnown() || res.Lo <= 0 {
		t.Errorf("sign-only solve should certify positive gain, bracket [%v, %v]", res.Lo, res.Hi)
	}
	// Negative-gain variant.
	m := chooseLoop()
	m.Choices[0][0].Succ[0].Reward = -0.5
	m.Choices[0][1].Succ[0].Reward = -0.2
	res, err = MeanPayoff(m, Options{SignOnly: true})
	if err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	if !res.SignKnown() || res.Hi >= 0 {
		t.Errorf("sign-only solve should certify negative gain, bracket [%v, %v]", res.Lo, res.Hi)
	}
}

func TestMeanPayoffWarmStart(t *testing.T) {
	m := stayOrCycle()
	cold, err := MeanPayoff(m, Options{Tol: 1e-9})
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	warm, err := MeanPayoff(m, Options{Tol: 1e-9, InitialValues: cold.Values})
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Iters > cold.Iters {
		t.Errorf("warm start took %d sweeps, cold took %d; expected warm <= cold", warm.Iters, cold.Iters)
	}
	if math.Abs(warm.Gain-cold.Gain) > 1e-7 {
		t.Errorf("warm gain %v != cold gain %v", warm.Gain, cold.Gain)
	}
}

func TestMeanPayoffIterationLimit(t *testing.T) {
	res, err := MeanPayoff(stayOrCycle(), Options{Tol: 1e-12, MaxIter: 2})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("expected ErrNoConvergence, got %v", err)
	}
	if res == nil || res.Converged {
		t.Error("non-converged result should still carry the partial bracket")
	}
}

func TestMeanPayoffBadWarmStart(t *testing.T) {
	if _, err := MeanPayoff(chooseLoop(), Options{InitialValues: []float64{1, 2}}); err == nil {
		t.Fatal("expected error for mis-sized warm-start vector, got nil")
	}
}

func TestPolicyIterationChooseLoop(t *testing.T) {
	res, err := PolicyIteration(chooseLoop(), 0)
	if err != nil {
		t.Fatalf("PolicyIteration: %v", err)
	}
	if math.Abs(res.Gain-0.7) > 1e-10 {
		t.Errorf("gain = %v, want 0.7", res.Gain)
	}
}

func TestPolicyIterationStayOrCycle(t *testing.T) {
	res, err := PolicyIteration(stayOrCycle(), 0)
	if err != nil {
		t.Fatalf("PolicyIteration: %v", err)
	}
	if math.Abs(res.Gain-1) > 1e-10 {
		t.Errorf("gain = %v, want 1", res.Gain)
	}
	if res.Policy[0] != 1 {
		t.Errorf("policy picks %d, want 1", res.Policy[0])
	}
}

// randomUnichain builds a random MDP where every action mixes 10% of its
// probability into state 0, forcing a single recurrent class.
func randomUnichain(r *rand.Rand, n, maxActions int) *mdp.Explicit {
	choices := make([][]mdp.Choice, n)
	for s := 0; s < n; s++ {
		na := 1 + r.Intn(maxActions)
		for a := 0; a < na; a++ {
			d1 := r.Intn(n)
			d2 := r.Intn(n)
			p1 := 0.2 + 0.5*r.Float64()
			succ := []mdp.Transition{
				{Dst: 0, Prob: 0.1, Reward: r.Float64()},
				{Dst: d1, Prob: p1, Reward: r.Float64()},
				{Dst: d2, Prob: 0.9 - p1, Reward: r.Float64()},
			}
			choices[s] = append(choices[s], mdp.Choice{Succ: succ})
		}
	}
	return &mdp.Explicit{Init: 0, Choices: choices}
}

// TestRVIAgreesWithPolicyIteration is the central solver cross-check: on
// random unichain MDPs the iterative bracket must contain the exact gain
// computed by Howard policy iteration.
func TestRVIAgreesWithPolicyIteration(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomUnichain(r, 2+r.Intn(10), 3)
		if err := mdp.Validate(m, 1e-9); err != nil {
			t.Fatalf("generated invalid model: %v", err)
		}
		exact, err := PolicyIteration(m, 0)
		if err != nil {
			return false
		}
		iter, err := MeanPayoff(m, Options{Tol: 1e-9})
		if err != nil {
			return false
		}
		return math.Abs(iter.Gain-exact.Gain) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEvalPolicyExactMatchesIterative(t *testing.T) {
	m := stayOrCycle()
	policy := []int{1, 0}
	gain, _, err := EvalPolicyExact(m, policy)
	if err != nil {
		t.Fatalf("EvalPolicyExact: %v", err)
	}
	res, err := EvalPolicyIterative(m, policy, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("EvalPolicyIterative: %v", err)
	}
	if math.Abs(gain-res.Gain) > 1e-8 {
		t.Errorf("exact gain %v, iterative gain %v", gain, res.Gain)
	}
	if math.Abs(gain-1) > 1e-10 {
		t.Errorf("gain = %v, want 1", gain)
	}
}

func TestEvalPolicyIterativeSuboptimal(t *testing.T) {
	res, err := EvalPolicyIterative(stayOrCycle(), []int{0, 0}, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("EvalPolicyIterative: %v", err)
	}
	if math.Abs(res.Gain-0.5) > 1e-8 {
		t.Errorf("gain of stay policy = %v, want 0.5", res.Gain)
	}
}

func TestEvalPolicyWrongLength(t *testing.T) {
	if _, err := EvalPolicyIterative(stayOrCycle(), []int{0}, Options{}); err == nil {
		t.Fatal("expected error for short policy, got nil")
	}
}

func TestGainRatio(t *testing.T) {
	// 2-cycle; numerator counts reward on 0->1 (=1 per 2 steps), denominator
	// counts both transitions (=2 per 2 steps). Ratio = 0.5.
	m := &mdp.Explicit{
		Init: 0,
		Choices: [][]mdp.Choice{
			{{Succ: []mdp.Transition{{Dst: 1, Prob: 1, Reward: 1}}}},
			{{Succ: []mdp.Transition{{Dst: 0, Prob: 1, Reward: 0}}}},
		},
	}
	ratio, err := GainRatio(m, []int{0, 0},
		func(s, a int, tr mdp.Transition) float64 { return tr.Reward },
		func(s, a int, tr mdp.Transition) float64 { return 1 },
	)
	if err != nil {
		t.Fatalf("GainRatio: %v", err)
	}
	if math.Abs(ratio-0.5) > 1e-9 {
		t.Errorf("ratio = %v, want 0.5", ratio)
	}
}

func TestGainRatioZeroDenominator(t *testing.T) {
	m := chooseLoop()
	_, err := GainRatio(m, []int{0},
		func(s, a int, tr mdp.Transition) float64 { return 1 },
		func(s, a int, tr mdp.Transition) float64 { return 0 },
	)
	if err == nil {
		t.Fatal("expected error for zero denominator gain, got nil")
	}
}

func TestGreedyPolicy(t *testing.T) {
	m := chooseLoop()
	policy := GreedyPolicy(m, []float64{0})
	if policy[0] != 1 {
		t.Errorf("greedy policy = %v, want action 1", policy)
	}
}
