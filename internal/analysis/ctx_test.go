package analysis

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// errAfterChecks cancels after n Err() observations, landing the
// cancellation on an exact solver checkpoint (sweep or binary-search step
// boundary) with no timing involved.
type errAfterChecks struct {
	context.Context
	n     int64
	calls atomic.Int64
}

func (c *errAfterChecks) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

func testModel(t *testing.T) *core.Model {
	t.Helper()
	m, err := core.NewModel(core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAnalyzeContextCancelPartialResult: an interrupted binary search
// returns the bracket narrowed so far alongside the wrapped context error,
// on both solver backends.
func TestAnalyzeContextCancelPartialResult(t *testing.T) {
	run := func(name string, analyze func(ctx context.Context) (*Result, error)) {
		t.Run(name, func(t *testing.T) {
			ctx := &errAfterChecks{Context: context.Background(), n: 200}
			res, err := analyze(ctx)
			if err == nil {
				t.Skip("analysis finished before 200 checkpoints")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			if res == nil {
				t.Fatal("no partial result on cancellation")
			}
			if res.Sweeps == 0 {
				t.Error("partial result reports zero sweeps for a mid-solve cancel")
			}
			if res.BetaLow < 0 || res.BetaUp > 1 || res.BetaLow > res.BetaUp {
				t.Errorf("malformed partial bracket [%v, %v]", res.BetaLow, res.BetaUp)
			}
		})
	}
	run("generic", func(ctx context.Context) (*Result, error) {
		return AnalyzeContext(ctx, testModel(t), Options{Epsilon: 1e-3, SkipStrategy: true})
	})
	run("compiled", func(ctx context.Context) (*Result, error) {
		comp, err := core.Compile(core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		return AnalyzeCompiledContext(ctx, comp, Options{Epsilon: 1e-3, SkipStrategy: true})
	})
}

// TestAnalyzeContextCompletedBitwise: attaching a live context changes no
// bit of a completed analysis.
func TestAnalyzeContextCompletedBitwise(t *testing.T) {
	ref, err := Analyze(testModel(t), Options{Epsilon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := AnalyzeContext(ctx, testModel(t), Options{Epsilon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.ERRev) != math.Float64bits(ref.ERRev) ||
		math.Float64bits(got.BetaUp) != math.Float64bits(ref.BetaUp) ||
		got.Iterations != ref.Iterations || got.Sweeps != ref.Sweeps {
		t.Fatalf("ctx analysis %+v != plain analysis %+v", got, ref)
	}
}

// TestProgressReportsEveryStep: the Progress hook fires once per
// binary-search step with the live bracket, on both backends, and a hooked
// run stays bitwise identical to an unhooked one.
func TestProgressReportsEveryStep(t *testing.T) {
	var calls int
	var lastLo, lastUp float64
	opts := Options{Epsilon: 1e-3, SkipStrategy: true, Progress: func(lo, up float64, iter int) {
		calls++
		if iter != calls {
			t.Errorf("progress call %d reported iteration %d", calls, iter)
		}
		lastLo, lastUp = lo, up
	}}
	comp, err := core.Compile(core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeCompiled(comp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Errorf("progress fired %d times for %d iterations", calls, res.Iterations)
	}
	if math.Float64bits(lastLo) != math.Float64bits(res.BetaLow) || math.Float64bits(lastUp) != math.Float64bits(res.BetaUp) {
		t.Errorf("last progress bracket [%v, %v] != final [%v, %v]", lastLo, lastUp, res.BetaLow, res.BetaUp)
	}
	plain, err := AnalyzeCompiled(mustCompile(t), Options{Epsilon: 1e-3, SkipStrategy: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(plain.ERRev) != math.Float64bits(res.ERRev) {
		t.Errorf("hooked ERRev %v != plain %v", res.ERRev, plain.ERRev)
	}
}

func mustCompile(t *testing.T) *core.Compiled {
	t.Helper()
	comp, err := core.Compile(core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	return comp
}
