package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/solve"
)

func mustAnalyze(t *testing.T, p core.Params, eps float64) *Result {
	t.Helper()
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel(%v): %v", p, err)
	}
	res, err := Analyze(m, Options{Epsilon: eps})
	if err != nil {
		t.Fatalf("Analyze(%v): %v", p, err)
	}
	return res
}

// TestAnalyzeLowResourceMatchesHonest: with little resource and no network
// advantage, selfish mining cannot beat honest mining, so ERRev* = p.
func TestAnalyzeLowResourceMatchesHonest(t *testing.T) {
	p := core.Params{P: 0.1, Gamma: 0, Depth: 1, Forks: 1, MaxLen: 4}
	res := mustAnalyze(t, p, 1e-4)
	if res.ERRev < p.P-1e-4 || res.ERRev > p.P+2e-3 {
		t.Errorf("ERRev = %v, want ~%v", res.ERRev, p.P)
	}
}

// TestAnalyzeRacingPaysAtHighGamma reproduces the paper's observation that
// the d=f=1 attack starts to pay off for γ > 0.5 and p > 0.25.
func TestAnalyzeRacingPaysAtHighGamma(t *testing.T) {
	p := core.Params{P: 0.3, Gamma: 1, Depth: 1, Forks: 1, MaxLen: 4}
	res := mustAnalyze(t, p, 1e-4)
	if res.ERRev <= p.P+0.005 {
		t.Errorf("ERRev = %v at gamma=1, want clearly above p=%v", res.ERRev, p.P)
	}
}

// TestAnalyzeStrategyAchievesBound is the Theorem 3.1 consistency check:
// the independently evaluated revenue of the extracted strategy must agree
// with the certified bound up to ε.
func TestAnalyzeStrategyAchievesBound(t *testing.T) {
	configs := []core.Params{
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4},
		{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4},
		{P: 0.2, Gamma: 0.25, Depth: 2, Forks: 1, MaxLen: 3},
	}
	const eps = 1e-4
	for _, p := range configs {
		t.Run(p.String(), func(t *testing.T) {
			res := mustAnalyze(t, p, eps)
			if math.IsNaN(res.StrategyERRev) {
				t.Fatal("strategy evaluation skipped unexpectedly")
			}
			// The strategy's true revenue must be at least the certified
			// lower bound (up to solver tolerance) and within ε + slack of it.
			if res.StrategyERRev < res.ERRev-5e-4 {
				t.Errorf("strategy ERRev %v below certified bound %v", res.StrategyERRev, res.ERRev)
			}
			if res.StrategyERRev > res.ERRev+eps+5e-3 {
				t.Errorf("strategy ERRev %v too far above bound %v: binary search not tight", res.StrategyERRev, res.ERRev)
			}
		})
	}
}

// TestAnalyzeMonotoneInP: more resource, more revenue.
func TestAnalyzeMonotoneInP(t *testing.T) {
	prev := -1.0
	for _, pr := range []float64{0.1, 0.2, 0.3} {
		p := core.Params{P: pr, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
		res := mustAnalyze(t, p, 1e-4)
		if res.ERRev < prev-1e-4 {
			t.Errorf("ERRev not monotone in p: %v after %v", res.ERRev, prev)
		}
		prev = res.ERRev
	}
}

// TestAnalyzeMonotoneInGamma: network advantage helps.
func TestAnalyzeMonotoneInGamma(t *testing.T) {
	prev := -1.0
	for _, g := range []float64{0, 0.5, 1} {
		p := core.Params{P: 0.3, Gamma: g, Depth: 2, Forks: 1, MaxLen: 4}
		res := mustAnalyze(t, p, 1e-4)
		if res.ERRev < prev-1e-4 {
			t.Errorf("ERRev not monotone in gamma: %v after %v", res.ERRev, prev)
		}
		prev = res.ERRev
	}
}

// TestAnalyzeDeeperAttackDominates: d=2 must dominate d=1 (the d=1 attack
// is a restriction of the d=2 attack).
func TestAnalyzeDeeperAttackDominates(t *testing.T) {
	p1 := core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4}
	p2 := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
	r1 := mustAnalyze(t, p1, 1e-4)
	r2 := mustAnalyze(t, p2, 1e-4)
	if r2.ERRev < r1.ERRev-1e-4 {
		t.Errorf("d=2 ERRev %v below d=1 ERRev %v", r2.ERRev, r1.ERRev)
	}
}

// TestAnalyzeAboveHonest: the attack always embeds an honest-equivalent
// strategy, so ERRev* >= p.
func TestAnalyzeAboveHonest(t *testing.T) {
	for _, pr := range []float64{0.1, 0.25} {
		p := core.Params{P: pr, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 3}
		res := mustAnalyze(t, p, 1e-3)
		if res.ERRev < pr-1e-3 {
			t.Errorf("p=%v: ERRev %v below honest revenue", pr, res.ERRev)
		}
	}
}

// TestMeanPayoffMonotoneInBeta verifies the monotonicity that justifies the
// binary search (Section 3.3): MP*_β decreases in β, is >= 0 at β=0 and
// <= 0 at β=1.
func TestMeanPayoffMonotoneInBeta(t *testing.T) {
	p := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	m.SetMode(core.RewardBeta)
	prev := math.Inf(1)
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		m.SetBeta(beta)
		sr, err := solve.MeanPayoff(m, solve.Options{Tol: 1e-9})
		if err != nil {
			t.Fatalf("MeanPayoff(beta=%v): %v", beta, err)
		}
		if sr.Gain > prev+1e-7 {
			t.Errorf("MP*_beta increased at beta=%v: %v after %v", beta, sr.Gain, prev)
		}
		prev = sr.Gain
		switch beta {
		case 0:
			if sr.Gain < -1e-9 {
				t.Errorf("MP*_0 = %v, want >= 0", sr.Gain)
			}
		case 1:
			if sr.Gain > 1e-9 {
				t.Errorf("MP*_1 = %v, want <= 0", sr.Gain)
			}
		}
	}
}

// TestAnalyzeAgreesWithPolicyIteration cross-checks the two solver families
// end to end on the smallest configuration: the sign of MP*_β from RVI must
// match exact policy iteration at each binary-search midpoint.
func TestAnalyzeAgreesWithPolicyIteration(t *testing.T) {
	p := core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4}
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	m.SetMode(core.RewardBeta)
	for _, beta := range []float64{0.1, 0.3, 0.5} {
		m.SetBeta(beta)
		exact, err := solve.PolicyIteration(m, 0)
		if err != nil {
			t.Fatalf("PolicyIteration(beta=%v): %v", beta, err)
		}
		iter, err := solve.MeanPayoff(m, solve.Options{Tol: 1e-9})
		if err != nil {
			t.Fatalf("MeanPayoff(beta=%v): %v", beta, err)
		}
		if math.Abs(exact.Gain-iter.Gain) > 1e-6 {
			t.Errorf("beta=%v: PI gain %v vs RVI gain %v", beta, exact.Gain, iter.Gain)
		}
	}
}

// TestAnalyzeEdgeCaseZeroResource: with p=0 the adversary never mines a
// block, so ERRev* = 0.
func TestAnalyzeEdgeCaseZeroResource(t *testing.T) {
	p := core.Params{P: 0, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	res := mustAnalyze(t, p, 1e-4)
	if res.ERRev > 1e-4 {
		t.Errorf("ERRev = %v at p=0, want 0", res.ERRev)
	}
}

// TestAnalyzeSkipStrategyEval leaves StrategyERRev as NaN.
func TestAnalyzeSkipStrategyEval(t *testing.T) {
	p := core.Params{P: 0.2, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3}
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	res, err := Analyze(m, Options{Epsilon: 1e-3, SkipStrategyEval: true})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !math.IsNaN(res.StrategyERRev) {
		t.Errorf("StrategyERRev = %v, want NaN (skipped)", res.StrategyERRev)
	}
	if res.Strategy == nil {
		t.Error("Strategy missing")
	}
}

// TestCompiledBackendAgreesWithGeneric runs full Algorithm 1 through both
// solver backends on several configurations and requires bit-for-bit equal
// binary-search outcomes up to epsilon.
func TestCompiledBackendAgreesWithGeneric(t *testing.T) {
	configs := []core.Params{
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4},
		{P: 0.2, Gamma: 0.75, Depth: 2, Forks: 1, MaxLen: 4},
		{P: 0.3, Gamma: 0.25, Depth: 2, Forks: 2, MaxLen: 3},
	}
	const eps = 1e-4
	for _, p := range configs {
		t.Run(p.String(), func(t *testing.T) {
			m, err := core.NewModel(p)
			if err != nil {
				t.Fatalf("NewModel: %v", err)
			}
			gen, err := Analyze(m, Options{Epsilon: eps, SkipStrategyEval: true})
			if err != nil {
				t.Fatalf("generic: %v", err)
			}
			comp, err := core.Compile(p)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			fast, err := AnalyzeCompiled(comp, Options{Epsilon: eps, SkipStrategyEval: true})
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			if math.Abs(gen.ERRev-fast.ERRev) > 2*eps {
				t.Errorf("backends disagree: generic %v vs compiled %v", gen.ERRev, fast.ERRev)
			}
		})
	}
}

// TestAnalyzeResultBracket: the returned bracket is consistent and tighter
// than epsilon.
func TestAnalyzeResultBracket(t *testing.T) {
	p := core.Params{P: 0.25, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
	res := mustAnalyze(t, p, 1e-4)
	if res.BetaLow != res.ERRev {
		t.Errorf("ERRev %v != BetaLow %v", res.ERRev, res.BetaLow)
	}
	if res.BetaUp-res.BetaLow >= 1e-4 {
		t.Errorf("bracket width %v >= epsilon", res.BetaUp-res.BetaLow)
	}
	if res.BetaUp < res.BetaLow {
		t.Errorf("inverted bracket [%v, %v]", res.BetaLow, res.BetaUp)
	}
}
