package analysis

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
)

// AnalyzeCompiled runs Algorithm 1 against a compiled model of any
// registered attack-model family: the procedure is protocol-agnostic — a
// binary search on β over a kernel whose transition probabilities are
// parametric in the chain parameters. For the fork family semantics match
// Analyze; the compiled backend resolves probabilities once per (p, γ) and
// keeps value vectors warm across the binary search, making it suitable for
// the large configurations (d=3 and d=4) of the paper's evaluation.
//
// Chain parameters (p, γ) are those currently set on c (SetChainParams).
// A positive Options.Workers is installed on c (SetWorkers) so that every
// inner solve, the policy extraction, and the strategy evaluation share the
// same sweep parallelism.
//
// Options.InitialValues seeds the first solve (via c.SetValues): sign-only
// solves certify the true gain sign from any start, so the binary-search
// trajectory and the returned ERRev bracket are bitwise identical with or
// without the seed; only the sweep count changes. Options.SkipStrategy
// returns right after the search with the bound alone — the mode sweeps
// use, where the whole result is warm-start independent.
//
// AnalyzeCompiled runs with no cancellation; it is AnalyzeCompiledContext
// under context.Background().
func AnalyzeCompiled(c *kernel.Compiled, opts Options) (*Result, error) {
	return AnalyzeCompiledContext(context.Background(), c, opts)
}

// AnalyzeCompiledContext is AnalyzeCompiled with cooperative cancellation:
// ctx reaches every inner solve (checked at value-iteration sweep
// boundaries, never inside one) and is additionally checked between
// binary-search steps, giving Algorithm 1's nested structure deterministic
// cancellation checkpoints at every level. On cancellation the partial
// Result — bracket, steps, sweeps so far — returns with an error wrapping
// ctx.Err(). A run that completes is bitwise identical to one with no
// context attached; Options.Progress observes each step's bracket.
func AnalyzeCompiledContext(ctx context.Context, c *kernel.Compiled, opts Options) (*Result, error) {
	opts.defaults()
	analysisRuns.With(backendCompiled).Inc()
	sp := obs.StartSpan(analysisSeconds.With(backendCompiled))
	defer sp.End()
	start := time.Now()
	if opts.Workers > 0 {
		c.SetWorkers(opts.Workers)
	}

	// Gain resolution calibrated from the family's permanent-block-rate
	// lower bound, exactly as in Analyze.
	zeta := opts.Epsilon * c.BlockRate() / 4
	if zeta <= 0 {
		zeta = opts.Epsilon * 1e-3
	}

	// Kernel-variant resolution. Explore32 is a hybrid: each step runs a
	// float32 exploration solve whose promoted vector warm-starts an exact
	// float64 solve (with GS bursts) that makes the actual decision — so
	// every decision stays an exact sign certification, identical to the
	// default kernel's, while the heavy early sweeps run at half the
	// memory traffic. Once an exploration fails to resolve a sign (β close
	// enough to β* that the gain is below float32 resolution) exploration
	// is switched off for the remaining, necessarily-harder steps.
	inner := opts.Kernel
	f32Live := false
	if inner == kernel.VariantExplore32 {
		inner = kernel.VariantGS
		f32Live = true
	}
	warm32 := false

	res := &Result{BetaLow: 0, BetaUp: 1, StrategyERRev: math.NaN()}
	warm := false
	if opts.InitialValues != nil {
		if err := c.SetValues(opts.InitialValues); err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		warm = true
	}
	if ck := opts.Resume; ck != nil {
		if err := ck.validate(); err != nil {
			return nil, err
		}
		res.BetaLow, res.BetaUp = ck.BetaLow, ck.BetaUp
		res.Iterations, res.Sweeps = ck.Iterations, ck.Sweeps
		// SetValues copies into the kernel's buffer, so the caller's
		// checkpoint stays reusable. A nil Values resumes cold (overriding
		// any InitialValues, matching the documented precedence).
		if ck.Values != nil {
			if err := c.SetValues(ck.Values); err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			warm = true
		} else {
			warm = false
		}
	}
	for res.BetaUp-res.BetaLow >= opts.Epsilon {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("analysis: canceled after %d binary-search steps: %w", res.Iterations, err)
		}
		beta := (res.BetaLow + res.BetaUp) / 2
		if f32Live {
			er, err := c.ExploreMeanPayoff32(ctx, beta, kernel.Options{
				Tol:        zeta,
				MaxIter:    opts.SolverMaxIter,
				SignOnly:   true,
				KeepValues: warm32,
			})
			if er != nil {
				res.Sweeps += er.Iters
			}
			if err != nil {
				return res, fmt.Errorf("analysis: float32 exploration at beta=%v: %w", beta, err)
			}
			// Promote unconditionally: even a sign-unresolved exploration
			// leaves the vector far closer to the bias than the previous
			// step's float64 values.
			c.PromoteValues32()
			warm, warm32 = true, true
			f32Live = er.SignKnown()
		}
		sr, err := c.MeanPayoffCtx(ctx, beta, kernel.Options{
			Tol:        zeta,
			MaxIter:    opts.SolverMaxIter,
			SignOnly:   true,
			KeepValues: warm,
			Variant:    inner,
		})
		if sr != nil {
			res.Sweeps += sr.Iters
		}
		if err != nil {
			return res, fmt.Errorf("analysis: compiled solve at beta=%v: %w", beta, err)
		}
		warm = true
		res.Iterations++
		analysisSteps.With(backendCompiled).Inc()
		if sr.Hi < 0 {
			res.BetaUp = beta
		} else {
			// Certified positive, or a numerically-zero floor-out (MP*_β
			// within noise of zero): both map to beta <= β* by fixed rule,
			// never by the bracket midpoint's noise-level sign, keeping
			// every search decision bitwise identical under any warm start.
			// See the matching branch in Analyze.
			res.BetaLow = beta
		}
		if opts.Progress != nil {
			opts.Progress(res.BetaLow, res.BetaUp, res.Iterations)
		}
		if opts.OnCheckpoint != nil {
			// c.Values() copies the kernel's converged vector — exactly what
			// the next solve (here or in a resumed run) warm-starts from.
			opts.OnCheckpoint(Checkpoint{
				BetaLow: res.BetaLow, BetaUp: res.BetaUp,
				Iterations: res.Iterations, Sweeps: res.Sweeps,
				Values: c.Values(),
			})
		}
	}
	res.ERRev = res.BetaLow
	if opts.SkipStrategy {
		res.Duration = time.Since(start)
		return res, nil
	}

	sr, err := c.MeanPayoffCtx(ctx, res.BetaLow, kernel.Options{
		Tol:        zeta,
		MaxIter:    opts.SolverMaxIter,
		KeepValues: warm,
		Variant:    inner,
	})
	if sr != nil {
		res.Sweeps += sr.Iters
	}
	if err != nil {
		return res, fmt.Errorf("analysis: compiled final solve at beta=%v: %w", res.BetaLow, err)
	}
	res.Strategy = c.GreedyPolicy(res.BetaLow)

	if !opts.SkipStrategyEval {
		errev, err := c.EvalERRevCtx(ctx, res.Strategy, kernel.Options{Tol: zeta, MaxIter: opts.SolverMaxIter})
		if err != nil {
			return res, fmt.Errorf("analysis: evaluating final strategy: %w", err)
		}
		res.StrategyERRev = errev
	}
	res.Duration = time.Since(start)
	return res, nil
}
