// Package analysis implements the paper's formal analysis procedure
// (Algorithm 1): a binary search over β ∈ [0, 1] that locates the zero of
// the optimal mean payoff MP*_β under the reward family
// r_β = r_A − β(r_A + r_H), yielding an ε-tight lower bound on the optimal
// expected relative revenue ERRev* together with a strategy achieving it
// (Theorem 3.1 and Corollaries 3.2–3.3).
//
// Each binary-search step only needs the sign of MP*_β, so the inner
// mean-payoff solves run in sign-only mode with a gain tolerance
// calibrated from the chain's block production rate, and warm-start from
// the previous step's value vector.
package analysis

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/solve"
)

// Options tunes the analysis procedure.
type Options struct {
	// Epsilon is the precision of the binary search on β; the returned
	// ERRev lies in [ERRev* − ε, ERRev*]. Default 1e-4.
	Epsilon float64
	// SolverMaxIter bounds value-iteration sweeps per solve. Default 500000.
	SolverMaxIter int
	// SkipStrategyEval skips the exact stationary evaluation of the final
	// strategy (which materializes the induced chain); useful for large
	// models where only the bound is needed.
	SkipStrategyEval bool
	// SkipStrategy skips the final full-precision solve and strategy
	// extraction entirely, returning only the certified ERRev bracket
	// (Result.Strategy is nil, Result.StrategyERRev is NaN, and
	// SkipStrategyEval is implied). This is the bound-only mode used by
	// sweeps, where every retained output is a pure function of the
	// binary-search sign decisions and therefore bitwise independent of
	// warm starts.
	SkipStrategy bool
	// InitialValues warm-starts the first inner solve from this value
	// vector (length NumStates; typically the converged values of a nearby
	// (p, γ, β) point, via core.Compiled.Values). Sign-only solves certify
	// the true gain sign from any starting vector, so the binary-search
	// trajectory — and with it ERRev, BetaLow, BetaUp and Iterations — is
	// bitwise identical with or without a warm start; only Sweeps (and, in
	// full mode, low-order noise in the extracted strategy) can change.
	InitialValues []float64
	// Workers is the per-sweep parallelism of the inner value-iteration
	// solves (see solve.Options.Workers): a positive value is honored
	// exactly, 0 uses all cores with a small-model cutoff. Results are
	// bitwise identical at every worker count.
	Workers int
	// Progress, if non-nil, is called after every binary-search step with
	// the current certified bracket [betaLow, betaUp] and the number of
	// steps completed. It runs on the solving goroutine between inner
	// solves and must return promptly; it observes progress only and
	// cannot change any result.
	Progress func(betaLow, betaUp float64, iteration int)
	// OnCheckpoint, if non-nil, is called after every completed
	// binary-search step with a resumable snapshot of the search: the
	// certified bracket, the step and sweep counters, and a private copy of
	// the converged value vector the next step would warm-start from.
	// Feeding the latest snapshot back through Options.Resume replays the
	// remainder of the search exactly (see Checkpoint). The callback runs
	// on the solving goroutine and owns its Checkpoint; the O(states)
	// vector copy per step is the cost of resumability, so leave
	// OnCheckpoint nil when snapshots are not needed.
	OnCheckpoint func(Checkpoint)
	// Resume, if non-nil, restarts Algorithm 1 from a checkpoint instead of
	// the trivial bracket [0, 1]: the search continues from the
	// checkpoint's bracket with its step and sweep counters, seeded with
	// its value vector. A resumed run is bitwise identical to the
	// uninterrupted run the checkpoint came from — every subsequent inner
	// solve starts from exactly the vector it would have had — provided the
	// checkpoint is used as emitted, against the same model, chain
	// parameters and options. Resume takes precedence over InitialValues.
	Resume *Checkpoint
	// Kernel selects the value-iteration sweep variant of the inner solves
	// (see kernel.Variant). The zero value is the bitwise-deterministic
	// Jacobi default every golden test pins; the other variants accelerate
	// the solves while certifying the same final bracket: every
	// binary-search decision remains an exact sign certification, so
	// ERRev, BetaLow, BetaUp and Iterations match the default — only sweep
	// counts (and, in full mode, low-order strategy noise) differ.
	// VariantExplore32 additionally runs a float32 exploration solve per
	// step to warm-start the exact float64 decision solve; it requires the
	// compiled backend, as does VariantSpec.
	Kernel kernel.Variant
}

// Checkpoint is a resumable snapshot of Algorithm 1 at a binary-search
// step boundary, as emitted by Options.OnCheckpoint and consumed by
// Options.Resume.
//
// Resuming from a checkpoint is bitwise identical to never having stopped:
// the binary search's decisions are exact sign certifications (independent
// of the starting vector), and Values is the converged vector of the last
// completed step — exactly what the uninterrupted run would warm-start the
// next solve from — so the resumed trajectory, including the final
// full-precision solve and the extracted strategy, reproduces the
// uninterrupted computation float for float. A checkpoint resumed without
// its Values (nil) still yields the identical ERRev, bracket and step
// count — the sign decisions do not depend on the seed — but the sweep
// counts and the low-order bits of a full mode's extracted strategy may
// then differ from the uninterrupted run.
type Checkpoint struct {
	// BetaLow and BetaUp are the certified bracket at the snapshot.
	BetaLow, BetaUp float64
	// Iterations and Sweeps are the search counters at the snapshot, so a
	// resumed run's final counters match the uninterrupted run's.
	Iterations, Sweeps int
	// Values is a copy of the converged value vector of the last completed
	// inner solve (length NumStates).
	Values []float64
}

// validate rejects checkpoints no run could have emitted. The value vector
// itself is checked downstream (SetValues / the solver) against the model's
// state count.
func (ck *Checkpoint) validate() error {
	if math.IsNaN(ck.BetaLow) || math.IsNaN(ck.BetaUp) ||
		ck.BetaLow < 0 || ck.BetaUp > 1 || ck.BetaLow > ck.BetaUp {
		return fmt.Errorf("analysis: resume checkpoint has malformed bracket [%v, %v]", ck.BetaLow, ck.BetaUp)
	}
	if ck.Iterations < 0 || ck.Sweeps < 0 {
		return fmt.Errorf("analysis: resume checkpoint has negative counters (%d iterations, %d sweeps)", ck.Iterations, ck.Sweeps)
	}
	return nil
}

func (o *Options) defaults() {
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.SolverMaxIter <= 0 {
		o.SolverMaxIter = 500000
	}
}

// Result is the output of Algorithm 1.
type Result struct {
	// ERRev is the certified lower bound β_low on the optimal expected
	// relative revenue: ERRev ∈ [ERRev* − ε, ERRev*].
	ERRev float64
	// Strategy is a positional strategy achieving ERRev (Corollary 3.2).
	Strategy []int
	// StrategyERRev is the exact expected relative revenue of Strategy,
	// computed independently by stationary analysis (NaN if skipped).
	StrategyERRev float64
	// BetaLow and BetaUp are the final binary-search bracket.
	BetaLow, BetaUp float64
	// Iterations is the number of binary-search steps.
	Iterations int
	// Sweeps is the total number of value-iteration sweeps across all solves.
	Sweeps int
	// Duration is the wall-clock analysis time.
	Duration time.Duration
}

// Analyze runs Algorithm 1 on the attack MDP with no cancellation; it is
// AnalyzeContext under context.Background().
func Analyze(m *core.Model, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), m, opts)
}

// AnalyzeContext runs Algorithm 1 on the attack MDP. The model's β is
// mutated during the search; its final value is β_low.
//
// ctx is threaded into every inner solve (checked at value-iteration sweep
// boundaries, never inside a sweep) and additionally checked between
// binary-search steps. On cancellation the partial Result — the bracket
// narrowed so far, the steps and sweeps completed — is returned together
// with an error wrapping ctx.Err(), so callers can report how far the
// search got. Completed analyses are bitwise identical whether or not a
// (never-fired) context was attached.
func AnalyzeContext(ctx context.Context, m *core.Model, opts Options) (*Result, error) {
	opts.defaults()
	analysisRuns.With(backendGeneric).Inc()
	sp := obs.StartSpan(analysisSeconds.With(backendGeneric))
	defer sp.End()
	start := time.Now()
	params := m.Params()

	// Gain resolution needed so that a sign decision at distance ε from
	// β* is reliable: |dMP*_β/dβ| equals the long-run rate of permanent
	// blocks per step, which is at least BlockRate()/2 (each block event
	// takes a mining step plus a decision step). A quarter of that per ε
	// leaves a 2x safety margin.
	zeta := opts.Epsilon * params.BlockRate() / 4
	if zeta <= 0 { // p = 1 edge case
		zeta = opts.Epsilon * 1e-3
	}

	m.SetMode(core.RewardBeta)
	res := &Result{BetaLow: 0, BetaUp: 1, StrategyERRev: math.NaN()}
	// One workspace per search: the ~log2(1/ε) inner solves and the final
	// strategy solve all draw their scratch vectors from it instead of
	// allocating per solve. The warm vector returned by each solve aliases
	// the workspace; everything escaping the search (checkpoints, the
	// strategy) is copied, and the solvers handle the warm-start self-alias.
	var ws solve.Workspace
	warm := opts.InitialValues
	if ck := opts.Resume; ck != nil {
		if err := ck.validate(); err != nil {
			return nil, err
		}
		res.BetaLow, res.BetaUp = ck.BetaLow, ck.BetaUp
		res.Iterations, res.Sweeps = ck.Iterations, ck.Sweeps
		// The copy keeps the caller's checkpoint reusable: inner solves may
		// reuse the warm slice as scratch. A nil Values resumes cold.
		warm = append([]float64(nil), ck.Values...)
	}
	for res.BetaUp-res.BetaLow >= opts.Epsilon {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("analysis: canceled after %d binary-search steps: %w", res.Iterations, err)
		}
		beta := (res.BetaLow + res.BetaUp) / 2
		m.SetBeta(beta)
		sr, err := solve.MeanPayoffContext(ctx, m, solve.Options{
			Tol:           zeta,
			MaxIter:       opts.SolverMaxIter,
			SignOnly:      true,
			InitialValues: warm,
			Workers:       opts.Workers,
			Variant:       opts.Kernel,
			Workspace:     &ws,
		})
		if sr != nil {
			res.Sweeps += sr.Iters
			warm = sr.Values
		}
		if err != nil {
			return res, fmt.Errorf("analysis: solving MP*_beta at beta=%v: %w", beta, err)
		}
		res.Iterations++
		analysisSteps.With(backendGeneric).Inc()
		if sr.Hi < 0 {
			res.BetaUp = beta
		} else {
			// Either the sign is certified positive, or the solve bottomed
			// out at the numerically-zero width floor without a certified
			// sign — which can only happen with MP*_β vanishingly close to
			// zero, i.e. beta within ~ε·10⁻⁶ of β*. Treating that case as
			// beta <= β* is a fixed rule: unlike the bracket midpoint's
			// sign (noise at the 1e-17 scale), it cannot differ between
			// solver trajectories, so the search decisions — and the final
			// ERRev — are bitwise identical under any warm start.
			res.BetaLow = beta
		}
		if opts.Progress != nil {
			opts.Progress(res.BetaLow, res.BetaUp, res.Iterations)
		}
		if opts.OnCheckpoint != nil {
			// warm is this step's converged vector — exactly what the next
			// solve (or a resumed run's next solve) starts from.
			opts.OnCheckpoint(Checkpoint{
				BetaLow: res.BetaLow, BetaUp: res.BetaUp,
				Iterations: res.Iterations, Sweeps: res.Sweeps,
				Values: append([]float64(nil), warm...),
			})
		}
	}
	res.ERRev = res.BetaLow
	if opts.SkipStrategy {
		res.Duration = time.Since(start)
		return res, nil
	}

	// Final solve at β_low for the ε-optimal strategy (Theorem 3.1, part 2).
	m.SetBeta(res.BetaLow)
	sr, err := solve.MeanPayoffContext(ctx, m, solve.Options{
		Tol:           zeta,
		MaxIter:       opts.SolverMaxIter,
		InitialValues: warm,
		Workers:       opts.Workers,
		Variant:       opts.Kernel,
		Workspace:     &ws,
	})
	if sr != nil {
		res.Sweeps += sr.Iters
	}
	if err != nil {
		return res, fmt.Errorf("analysis: final solve at beta=%v: %w", res.BetaLow, err)
	}
	res.Strategy = sr.Policy

	if !opts.SkipStrategyEval {
		errev, err := core.ERRevOfPolicy(m, res.Strategy)
		if err != nil {
			return res, fmt.Errorf("analysis: evaluating final strategy: %w", err)
		}
		res.StrategyERRev = errev
	}
	res.Duration = time.Since(start)
	return res, nil
}
