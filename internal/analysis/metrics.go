package analysis

import "repro/internal/obs"

// Algorithm 1 instruments, on the shared default registry, labeled by the
// solving backend: "generic" (mdp.Model value iteration), "compiled"
// (flat-CSR kernel), and "batch" (multi-lane engine, one run per lane
// group). Step counters tick at binary-search step boundaries — where the
// context checks and Progress hooks already fire — never inside a solve.
var (
	analysisRuns = obs.Default().CounterVec("analysis_runs_total",
		"Algorithm 1 threshold analyses started, by solving backend.", "backend")
	analysisSteps = obs.Default().CounterVec("analysis_steps_total",
		"Binary-search steps taken by Algorithm 1, by solving backend.", "backend")
	analysisSeconds = obs.Default().HistogramVec("analysis_seconds",
		"Wall time of one Algorithm 1 analysis, by solving backend.",
		obs.DefBuckets(), "backend")
)

const (
	backendGeneric  = "generic"
	backendCompiled = "compiled"
	backendBatch    = "batch"
)
