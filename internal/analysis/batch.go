package analysis

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/solve"
)

// BatchLane describes one lane of a batched analysis: a (p, γ) parameter
// point plus an optional warm-start vector for its first inner solve
// (same semantics as Options.InitialValues — sweep counts may change,
// results cannot).
type BatchLane struct {
	P, Gamma      float64
	InitialValues []float64
}

// LaneResult is one lane's Algorithm 1 outcome plus the lane's final
// converged value vector (the batched counterpart of reading
// Compiled.Values after AnalyzeCompiledContext), for warm-starting
// neighboring points.
type LaneResult struct {
	Result
	Values []float64
}

// AnalyzeBatchCompiledContext runs Algorithm 1 for K lanes over ONE shared
// compiled structure in a single batched value-iteration loop
// (kernel.Batch.RunCtx): per sweep, the structure's column indices and law
// metadata are streamed once and applied to every lane, so the irregular
// structure traffic that dominates a sweep is amortized K ways.
//
// Lanes advance asynchronously, each through its own binary search: the
// moment a lane's sign-only solve converges, the lane's bracket is halved
// and its next β midpoint is installed in place, warm-started from the
// converged vector — the lane never idles in the batch waiting for slower
// lanes' solves. That keeps the batch at full width for almost the entire
// run (only the final tail thins out as lanes finish their whole
// searches), which is what lets the dense specialized sweep carry the
// work.
//
// Per lane, the procedure is bitwise identical to a solo
// AnalyzeCompiledContext at that lane's (p, γ) with the default Jacobi
// kernel: the same per-lane ζ calibration from the family block rate, the
// same β midpoints, the same exact-sign decisions (warm-start
// independent), the same ERRev/BetaLow/BetaUp/Iterations, and — because
// each batched inner solve is bitwise equal to the solo solve — the same
// per-lane Sweeps.
//
// The batch path is bound-only: opts.SkipStrategy must be set (strategy
// extraction is a single-point concern, kept on the solo kernels), the
// kernel variant must be the default VariantJacobi, and the
// Resume/OnCheckpoint hooks must be nil — the sweep scheduler keeps its
// per-point checkpoint semantics one level up, where completed lanes are
// recorded as completed points. Options.Progress is ignored: lanes hold K
// independent brackets, which do not fit the single-bracket callback.
//
// ctx is checked between steps and at every inner sweep boundary; on
// cancellation the partial per-lane results (bracket, steps, sweeps so
// far) return with an error wrapping ctx.Err().
func AnalyzeBatchCompiledContext(ctx context.Context, c *kernel.Compiled, lanes []BatchLane, opts Options) ([]*LaneResult, error) {
	opts.defaults()
	analysisRuns.With(backendBatch).Inc()
	sp := obs.StartSpan(analysisSeconds.With(backendBatch))
	defer sp.End()
	start := time.Now()
	if len(lanes) == 0 {
		return nil, fmt.Errorf("analysis: batched analysis needs at least one lane")
	}
	if !opts.SkipStrategy {
		return nil, fmt.Errorf("analysis: batched analysis is bound-only; set Options.SkipStrategy")
	}
	if opts.Kernel != kernel.VariantJacobi {
		return nil, fmt.Errorf("analysis: batched analysis supports only the default %q kernel, got %q", kernel.VariantJacobi, opts.Kernel)
	}
	if opts.Resume != nil || opts.OnCheckpoint != nil {
		return nil, fmt.Errorf("analysis: batched analysis does not support Resume/OnCheckpoint; checkpoint per point above the batch")
	}

	lps := make([]kernel.LaneParams, len(lanes))
	for i, l := range lanes {
		lps[i] = kernel.LaneParams{P: l.P, Gamma: l.Gamma}
	}
	b, err := kernel.NewBatch(c, lps)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	if opts.Workers > 0 {
		b.SetWorkers(opts.Workers)
	}

	// Per-lane gain resolution, calibrated from the family block rate at
	// each lane's own (p, γ) — exactly the solo ζ.
	zetas := make([]float64, len(lanes))
	for i, l := range lanes {
		zetas[i] = opts.Epsilon * c.BlockRateAt(l.P, l.Gamma) / 4
		if zetas[i] <= 0 {
			zetas[i] = opts.Epsilon * 1e-3
		}
	}
	for i, l := range lanes {
		if l.InitialValues == nil {
			continue
		}
		if err := b.SetValues(i, l.InitialValues); err != nil {
			return nil, fmt.Errorf("analysis: lane %d: %w", i, err)
		}
	}

	results := make([]*LaneResult, len(lanes))
	for i := range results {
		results[i] = &LaneResult{Result: Result{BetaLow: 0, BetaUp: 1, StrategyERRev: math.NaN()}}
	}
	// Each lane's binary search lives in the run callback: fold the finished
	// solve into the lane's bracket, then either issue the next midpoint or
	// report the lane done. The per-lane sequence of (β, ζ, warm start)
	// triples is exactly the solo Algorithm 1's, so Iterations, Sweeps and
	// the final bracket stay bitwise equal to the solo analysis.
	betas := make([]float64, len(lanes))
	srs, err := solve.BatchRun(ctx, b, solve.BatchRunOptions{
		MaxIter:    opts.SolverMaxIter,
		SignOnly:   true,
		KeepValues: true, // unseeded lanes start from zero = solo cold
	}, func(ln int, prev *solve.Result) (solve.LaneSolve, bool) {
		r := results[ln]
		if prev != nil {
			r.Sweeps += prev.Iters
			r.Iterations++
			analysisSteps.With(backendBatch).Inc()
			if prev.Hi < 0 {
				r.BetaUp = betas[ln]
			} else {
				// Certified positive or numerically-zero floor-out: both map
				// to beta <= β* by fixed rule (see AnalyzeCompiledContext).
				r.BetaLow = betas[ln]
			}
		}
		if r.BetaUp-r.BetaLow < opts.Epsilon {
			return solve.LaneSolve{}, false
		}
		betas[ln] = (r.BetaLow + r.BetaUp) / 2
		return solve.LaneSolve{Beta: betas[ln], Tol: zetas[ln]}, true
	})
	if err != nil {
		// In-flight (unconverged) solves never reached the callback: fold
		// their partial sweeps in so the totals reflect work actually done.
		for i, sr := range srs {
			if sr != nil && !sr.Converged {
				results[i].Sweeps += sr.Iters
			}
		}
		return results, fmt.Errorf("analysis: batched solve: %w", err)
	}
	dur := time.Since(start)
	for i, r := range results {
		r.ERRev = r.BetaLow
		r.Duration = dur
		r.Values = b.Values(i)
	}
	return results, nil
}
