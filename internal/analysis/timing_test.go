package analysis

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestTimingCompiled reports compiled-path analysis timings on the medium
// configurations (informational; run with -v).
func TestTimingCompiled(t *testing.T) {
	if testing.Short() {
		t.Skip("timing probe")
	}
	for _, cfg := range []core.Params{
		{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 4},
		{P: 0.3, Gamma: 0.5, Depth: 3, Forks: 2, MaxLen: 4},
	} {
		start := time.Now()
		c, err := core.Compile(cfg)
		if err != nil {
			t.Fatalf("Compile(%v): %v", cfg, err)
		}
		compileTime := time.Since(start)
		res, err := AnalyzeCompiled(c, Options{Epsilon: 1e-4})
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		t.Logf("%v: ERRev=%.5f stratERRev=%.5f iters=%d sweeps=%d compile=%v solve=%v",
			cfg, res.ERRev, res.StrategyERRev, res.Iterations, res.Sweeps, compileTime, res.Duration)
	}
}
