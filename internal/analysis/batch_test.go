package analysis

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/families"
	"repro/internal/kernel"
)

// batchLaneGrid spreads K lanes over (p, γ) so lanes converge at different
// speeds and retire from the batched solves in scrambled orders.
func batchLaneGrid(k int) []BatchLane {
	lanes := make([]BatchLane, k)
	for i := range lanes {
		lanes[i] = BatchLane{
			P:     0.05 + 0.3*float64(i)/float64(k),
			Gamma: float64(i%3) / 2,
		}
	}
	return lanes
}

func soloCompiled(t *testing.T, name string, lane BatchLane, shape core.Params, opts Options) *Result {
	t.Helper()
	p := shape
	p.P, p.Gamma = lane.P, lane.Gamma
	comp, err := families.Compile(name, p)
	if err != nil {
		t.Fatalf("families.Compile(%s, p=%v): %v", name, lane.P, err)
	}
	if lane.InitialValues != nil {
		opts.InitialValues = lane.InitialValues
	}
	opts.SkipStrategy = true
	res, err := AnalyzeCompiledContext(context.Background(), comp, opts)
	if err != nil {
		t.Fatalf("solo AnalyzeCompiledContext(%s, p=%v): %v", name, lane.P, err)
	}
	return res
}

func sameAnalysis(t *testing.T, tag string, ln int, got, want *Result) {
	t.Helper()
	if math.Float64bits(got.ERRev) != math.Float64bits(want.ERRev) ||
		math.Float64bits(got.BetaLow) != math.Float64bits(want.BetaLow) ||
		math.Float64bits(got.BetaUp) != math.Float64bits(want.BetaUp) {
		t.Errorf("%s lane %d: ERRev %v [%v, %v] != solo %v [%v, %v]",
			tag, ln, got.ERRev, got.BetaLow, got.BetaUp, want.ERRev, want.BetaLow, want.BetaUp)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("%s lane %d: Iterations = %d, solo = %d", tag, ln, got.Iterations, want.Iterations)
	}
	if got.Sweeps != want.Sweeps {
		t.Errorf("%s lane %d: Sweeps = %d, solo = %d", tag, ln, got.Sweeps, want.Sweeps)
	}
}

// TestAnalyzeBatchMatchesSoloPerFamily is the analysis-level pin of the
// batching contract: for every registered family and lane counts
// {1, 2, 7, 8, 16} with mixed (p, γ) per lane, the batched
// Algorithm 1 must reproduce each lane's solo compiled analysis bitwise —
// ERRev, final bracket, binary-search steps, and (because every inner
// batched solve is bitwise equal to its solo counterpart) the per-lane
// sweep totals.
func TestAnalyzeBatchMatchesSoloPerFamily(t *testing.T) {
	const eps = 1e-3
	for _, name := range families.Names() {
		fam, err := families.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		d, f, l := fam.DefaultShape()
		shape := core.Params{Depth: d, Forks: f, MaxLen: l}
		for _, k := range []int{1, 2, 7, 8, 16} {
			lanes := batchLaneGrid(k)
			p := shape
			p.P, p.Gamma = lanes[0].P, lanes[0].Gamma
			comp, err := families.Compile(name, p)
			if err != nil {
				t.Fatalf("families.Compile(%s): %v", name, err)
			}
			opts := Options{Epsilon: eps, SkipStrategy: true}
			got, err := AnalyzeBatchCompiledContext(context.Background(), comp, lanes, opts)
			if err != nil {
				t.Fatalf("AnalyzeBatchCompiledContext(%s, k=%d): %v", name, k, err)
			}
			for ln := range lanes {
				want := soloCompiled(t, name, lanes[ln], shape, Options{Epsilon: eps})
				sameAnalysis(t, name, ln, &got[ln].Result, want)
				if got[ln].Values == nil {
					t.Errorf("%s lane %d: batched analysis returned no values", name, ln)
				}
			}
		}
	}
}

// TestAnalyzeBatchWarmLanesMatchSolo seeds some lanes of one batch while
// others run cold: per lane the trajectory must match the solo analysis
// with the identical seed — including Sweeps, which DO depend on the seed.
func TestAnalyzeBatchWarmLanesMatchSolo(t *testing.T) {
	const eps = 1e-3
	shape := core.Params{Depth: 2, Forks: 1, MaxLen: 4}
	lanes := batchLaneGrid(5)
	// Seed odd lanes with the converged values of a neighboring point.
	for i := range lanes {
		if i%2 == 0 {
			continue
		}
		p := shape
		p.P, p.Gamma = math.Min(1, lanes[i].P+0.01), lanes[i].Gamma
		comp, err := core.Compile(p)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if _, err := AnalyzeCompiledContext(context.Background(), comp, Options{Epsilon: eps, SkipStrategy: true}); err != nil {
			t.Fatalf("seed analysis: %v", err)
		}
		lanes[i].InitialValues = comp.Values()
	}
	p := shape
	p.P, p.Gamma = lanes[0].P, lanes[0].Gamma
	comp, err := core.Compile(p)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	got, err := AnalyzeBatchCompiledContext(context.Background(), comp, lanes, Options{Epsilon: eps, SkipStrategy: true})
	if err != nil {
		t.Fatalf("AnalyzeBatchCompiledContext: %v", err)
	}
	for ln := range lanes {
		want := soloCompiled(t, "fork", lanes[ln], shape, Options{Epsilon: eps})
		sameAnalysis(t, "warm", ln, &got[ln].Result, want)
	}
}

func TestAnalyzeBatchValidation(t *testing.T) {
	comp, err := core.Compile(core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	lanes := batchLaneGrid(2)
	bg := context.Background()
	if _, err := AnalyzeBatchCompiledContext(bg, comp, nil, Options{SkipStrategy: true}); err == nil {
		t.Error("batched analysis accepted zero lanes")
	}
	if _, err := AnalyzeBatchCompiledContext(bg, comp, lanes, Options{}); err == nil {
		t.Error("batched analysis accepted SkipStrategy=false")
	}
	if _, err := AnalyzeBatchCompiledContext(bg, comp, lanes, Options{SkipStrategy: true, Kernel: kernel.VariantGS}); err == nil {
		t.Error("batched analysis accepted a non-default kernel variant")
	}
	if _, err := AnalyzeBatchCompiledContext(bg, comp, lanes, Options{SkipStrategy: true, Resume: &Checkpoint{BetaUp: 1}}); err == nil {
		t.Error("batched analysis accepted Resume")
	}
	if _, err := AnalyzeBatchCompiledContext(bg, comp, lanes, Options{SkipStrategy: true, OnCheckpoint: func(Checkpoint) {}}); err == nil {
		t.Error("batched analysis accepted OnCheckpoint")
	}
	bad := batchLaneGrid(2)
	bad[1].InitialValues = make([]float64, 3)
	if _, err := AnalyzeBatchCompiledContext(bg, comp, bad, Options{SkipStrategy: true}); err == nil {
		t.Error("batched analysis accepted a wrong-length warm-start vector")
	}
}

// TestAnalyzeBatchCancel: cancellation surfaces the partial per-lane
// brackets with an error wrapping ctx.Err, mirroring the solo contract.
func TestAnalyzeBatchCancel(t *testing.T) {
	comp, err := core.Compile(core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnalyzeBatchCompiledContext(ctx, comp, batchLaneGrid(3), Options{Epsilon: 1e-4, SkipStrategy: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batched analysis: err = %v, want context.Canceled", err)
	}
	if len(res) != 3 {
		t.Fatalf("partial results cover %d lanes, want 3", len(res))
	}
	for ln, r := range res {
		if r.BetaLow != 0 || r.BetaUp != 1 || r.Iterations != 0 {
			t.Errorf("lane %d: partial result %+v after zero steps", ln, r.Result)
		}
	}
}
