package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
)

func compileFor(t *testing.T, p core.Params) *core.Compiled {
	t.Helper()
	c, err := core.Compile(p)
	if err != nil {
		t.Fatalf("Compile(%v): %v", p, err)
	}
	return c
}

// TestSkipStrategyMatchesFullBound: bound-only mode returns the same ERRev
// bracket as the full analysis, with no strategy attached, on both backends.
func TestSkipStrategyMatchesFullBound(t *testing.T) {
	params := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}

	full, err := AnalyzeCompiled(compileFor(t, params), Options{Epsilon: 1e-3})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	bound, err := AnalyzeCompiled(compileFor(t, params), Options{Epsilon: 1e-3, SkipStrategy: true})
	if err != nil {
		t.Fatalf("bound-only: %v", err)
	}
	if math.Float64bits(bound.ERRev) != math.Float64bits(full.ERRev) ||
		math.Float64bits(bound.BetaUp) != math.Float64bits(full.BetaUp) {
		t.Errorf("bound-only bracket [%v, %v] != full [%v, %v]",
			bound.ERRev, bound.BetaUp, full.ERRev, full.BetaUp)
	}
	if bound.Strategy != nil || !math.IsNaN(bound.StrategyERRev) {
		t.Errorf("bound-only result carries a strategy: %d states, ERRev %v",
			len(bound.Strategy), bound.StrategyERRev)
	}
	if bound.Sweeps >= full.Sweeps {
		t.Errorf("bound-only used %d sweeps, full %d; skipping the final solve should save sweeps",
			bound.Sweeps, full.Sweeps)
	}

	m, err := core.NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := Analyze(m, Options{Epsilon: 1e-3, SkipStrategy: true})
	if err != nil {
		t.Fatalf("generic bound-only: %v", err)
	}
	if generic.Strategy != nil || !math.IsNaN(generic.StrategyERRev) {
		t.Error("generic bound-only result carries a strategy")
	}
	if math.Abs(generic.ERRev-bound.ERRev) > 2e-3 {
		t.Errorf("backends disagree: generic %v, compiled %v", generic.ERRev, bound.ERRev)
	}
}

// TestWarmSeedBitwiseDeterminism is the warm-start half of the service
// determinism contract: seeding the binary search with the converged value
// vector of a *different* p must leave the certified bracket and the
// iteration trajectory bitwise unchanged — only the sweep count may move.
func TestWarmSeedBitwiseDeterminism(t *testing.T) {
	base := core.Params{P: 0.25, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 3}

	// Solve a neighbor point and capture its value vector as the seed.
	neighbor := compileFor(t, base)
	if _, err := AnalyzeCompiled(neighbor, Options{Epsilon: 1e-3, SkipStrategy: true}); err != nil {
		t.Fatalf("neighbor: %v", err)
	}
	seed := neighbor.Values()

	target := base
	target.P = 0.3
	cold, err := AnalyzeCompiled(compileFor(t, target), Options{Epsilon: 1e-3, SkipStrategy: true})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := AnalyzeCompiled(compileFor(t, target), Options{
		Epsilon: 1e-3, SkipStrategy: true, InitialValues: seed,
	})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if math.Float64bits(warm.ERRev) != math.Float64bits(cold.ERRev) {
		t.Errorf("warm ERRev %v != cold %v", warm.ERRev, cold.ERRev)
	}
	if math.Float64bits(warm.BetaUp) != math.Float64bits(cold.BetaUp) {
		t.Errorf("warm BetaUp %v != cold %v", warm.BetaUp, cold.BetaUp)
	}
	if warm.Iterations != cold.Iterations {
		t.Errorf("warm took %d binary-search steps, cold %d; the trajectory must not depend on the seed",
			warm.Iterations, cold.Iterations)
	}
	t.Logf("sweeps: warm %d vs cold %d", warm.Sweeps, cold.Sweeps)
}

// TestWarmSeedWrongLengthRejected: a seed for a different structure errors
// out instead of corrupting the solve.
func TestWarmSeedWrongLengthRejected(t *testing.T) {
	c := compileFor(t, core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3})
	_, err := AnalyzeCompiled(c, Options{Epsilon: 1e-2, InitialValues: []float64{1, 2, 3}})
	if err == nil {
		t.Fatal("mismatched warm-start vector accepted")
	}
}
