package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
)

// equalResults asserts bitwise equality of everything Algorithm 1 certifies:
// the ERRev bracket, the search counters, and the extracted strategy.
func equalResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if math.Float64bits(want.ERRev) != math.Float64bits(got.ERRev) {
		t.Errorf("%s: ERRev %v != %v", label, got.ERRev, want.ERRev)
	}
	if math.Float64bits(want.BetaLow) != math.Float64bits(got.BetaLow) ||
		math.Float64bits(want.BetaUp) != math.Float64bits(got.BetaUp) {
		t.Errorf("%s: bracket [%v, %v] != [%v, %v]", label, got.BetaLow, got.BetaUp, want.BetaLow, want.BetaUp)
	}
	if math.Float64bits(want.StrategyERRev) != math.Float64bits(got.StrategyERRev) {
		t.Errorf("%s: StrategyERRev %v != %v", label, got.StrategyERRev, want.StrategyERRev)
	}
	if want.Iterations != got.Iterations || want.Sweeps != got.Sweeps {
		t.Errorf("%s: search (%d iters, %d sweeps) != (%d iters, %d sweeps)",
			label, got.Iterations, got.Sweeps, want.Iterations, want.Sweeps)
	}
	if len(want.Strategy) != len(got.Strategy) {
		t.Fatalf("%s: strategy lengths %d != %d", label, len(got.Strategy), len(want.Strategy))
	}
	for s := range want.Strategy {
		if want.Strategy[s] != got.Strategy[s] {
			t.Fatalf("%s: strategy diverges at state %d: %d vs %d", label, s, got.Strategy[s], want.Strategy[s])
		}
	}
}

// TestResumeBitwiseCompiled: resuming the compiled analysis from any
// checkpoint reproduces the uninterrupted run bitwise — bracket, counters,
// sweeps, and the full extracted strategy.
func TestResumeBitwiseCompiled(t *testing.T) {
	params := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
	var cks []Checkpoint
	ref, err := AnalyzeCompiled(compileFor(t, params), Options{
		Epsilon:      1e-3,
		OnCheckpoint: func(ck Checkpoint) { cks = append(cks, ck) },
	})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if len(cks) != ref.Iterations {
		t.Fatalf("got %d checkpoints for %d binary-search steps", len(cks), ref.Iterations)
	}
	// Resume from the first, a middle, and the final checkpoint.
	for _, i := range []int{0, len(cks) / 2, len(cks) - 1} {
		ck := cks[i]
		got, err := AnalyzeCompiled(compileFor(t, params), Options{Epsilon: 1e-3, Resume: &ck})
		if err != nil {
			t.Fatalf("resume from step %d: %v", ck.Iterations, err)
		}
		equalResults(t, "resumed from step "+string(rune('0'+i)), ref, got)
	}
}

// TestResumeBitwiseGeneric: the same property on the generic (on-the-fly
// fork model) backend.
func TestResumeBitwiseGeneric(t *testing.T) {
	params := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	newModel := func() *core.Model {
		m, err := core.NewModel(params)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	var cks []Checkpoint
	ref, err := Analyze(newModel(), Options{
		Epsilon:      1e-3,
		OnCheckpoint: func(ck Checkpoint) { cks = append(cks, ck) },
	})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	ck := cks[len(cks)/2]
	got, err := Analyze(newModel(), Options{Epsilon: 1e-3, Resume: &ck})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	equalResults(t, "generic resume", ref, got)
}

// TestResumeCheckpointReusable: resuming must not corrupt the caller's
// checkpoint — the same snapshot resumes twice with identical outcomes.
func TestResumeCheckpointReusable(t *testing.T) {
	params := core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3}
	var cks []Checkpoint
	if _, err := AnalyzeCompiled(compileFor(t, params), Options{
		Epsilon:      1e-3,
		OnCheckpoint: func(ck Checkpoint) { cks = append(cks, ck) },
	}); err != nil {
		t.Fatal(err)
	}
	ck := cks[0]
	saved := append([]float64(nil), ck.Values...)
	first, err := AnalyzeCompiled(compileFor(t, params), Options{Epsilon: 1e-3, Resume: &ck})
	if err != nil {
		t.Fatal(err)
	}
	for i := range saved {
		if math.Float64bits(saved[i]) != math.Float64bits(ck.Values[i]) {
			t.Fatalf("resume mutated checkpoint values at %d", i)
		}
	}
	second, err := AnalyzeCompiled(compileFor(t, params), Options{Epsilon: 1e-3, Resume: &ck})
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "second resume", first, second)
}

// TestResumeRejectsMalformedCheckpoints: brackets and counters no run could
// have produced are rejected up front, on both backends.
func TestResumeRejectsMalformedCheckpoints(t *testing.T) {
	params := core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 3}
	bad := []Checkpoint{
		{BetaLow: 0.7, BetaUp: 0.3},
		{BetaLow: -0.1, BetaUp: 0.5},
		{BetaLow: 0.1, BetaUp: 1.5},
		{BetaLow: math.NaN(), BetaUp: 0.5},
		{BetaLow: 0.1, BetaUp: 0.5, Iterations: -1},
	}
	for i, ck := range bad {
		if _, err := AnalyzeCompiled(compileFor(t, params), Options{Epsilon: 1e-3, Resume: &ck}); err == nil {
			t.Errorf("compiled accepted malformed checkpoint %d: %+v", i, ck)
		}
	}
	m, err := core.NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(m, Options{Epsilon: 1e-3, Resume: &bad[0]}); err == nil {
		t.Error("generic backend accepted an inverted bracket")
	}
	// A wrong-length value vector is caught by the solver's length check.
	ck := Checkpoint{BetaLow: 0.1, BetaUp: 0.5, Values: []float64{1, 2, 3}}
	if _, err := AnalyzeCompiled(compileFor(t, params), Options{Epsilon: 1e-3, Resume: &ck}); err == nil {
		t.Error("compiled accepted a wrong-length value vector")
	}
}
