package kernel

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

// errAfterChecks cancels after n Err() observations, pinning the solve to
// an exact sweep boundary (the kernel polls Err() once per sweep).
type errAfterChecks struct {
	context.Context
	n     int64
	calls atomic.Int64
}

func (c *errAfterChecks) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

// compileTwoState compiles the deterministic two-state cycle, whose
// damped value iteration contracts slowly enough (~0.9 per sweep) that
// early-sweep cancellation points are never outrun by convergence.
func compileTwoState(t *testing.T) *Compiled {
	t.Helper()
	c, err := Compile(cycleSource{}, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMeanPayoffCtxPreCanceled: a context that is already dead does zero
// sweeps.
func TestMeanPayoffCtxPreCanceled(t *testing.T) {
	c := compileTwoState(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.MeanPayoffCtx(ctx, 0.3, Options{Tol: 1e-9})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Iters != 0 {
		t.Fatalf("pre-canceled solve ran %+v, want 0 sweeps", res)
	}
}

// TestMeanPayoffCtxCancelsAtBoundary: cancellation lands exactly at the
// requested sweep boundary and reports the sweeps completed.
func TestMeanPayoffCtxCancelsAtBoundary(t *testing.T) {
	c := compileTwoState(t)
	const n = 3
	ctx := &errAfterChecks{Context: context.Background(), n: n}
	res, err := c.MeanPayoffCtx(ctx, 0.3, Options{Tol: 1e-12, MaxIter: 100000})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iters != n {
		t.Fatalf("canceled after %d sweeps, want exactly %d (the checkpoint is the sweep boundary)", res.Iters, n)
	}
}

// TestMeanPayoffCtxCompletedBitwise: attaching a live (never-fired)
// context changes nothing about a completed solve.
func TestMeanPayoffCtxCompletedBitwise(t *testing.T) {
	a := compileTwoState(t)
	b := compileTwoState(t)
	ref, err := a.MeanPayoff(0.3, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := b.MeanPayoffCtx(ctx, 0.3, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Gain) != math.Float64bits(ref.Gain) ||
		math.Float64bits(got.Lo) != math.Float64bits(ref.Lo) ||
		math.Float64bits(got.Hi) != math.Float64bits(ref.Hi) ||
		got.Iters != ref.Iters {
		t.Fatalf("ctx solve %+v != plain solve %+v", got, ref)
	}
}

// TestEvalERRevCtxCancel: fixed-policy evaluation honors the context too.
func TestEvalERRevCtxCancel(t *testing.T) {
	c := compileTwoState(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.EvalERRevCtx(ctx, []int{0, 0}, Options{Tol: 1e-10}); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
