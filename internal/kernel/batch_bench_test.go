package kernel

import (
	"context"
	"testing"
)

func benchRing(b *testing.B, n int) *Compiled {
	b.Helper()
	c, err := Compile(ringSource{n: n}, 0.25, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkSoloSolve(b *testing.B) {
	c := benchRing(b, 20000)
	c.SetWorkers(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MeanPayoffCtx(context.Background(), 0.3, Options{Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatch8SameLane(b *testing.B) {
	c := benchRing(b, 20000)
	lanes := make([]LaneParams, 8)
	betas := make([]float64, 8)
	tols := make([]float64, 8)
	for i := range lanes {
		lanes[i] = LaneParams{P: 0.25, Gamma: 0.5}
		betas[i] = 0.3
		tols[i] = 1e-6
	}
	bt, err := NewBatch(c, lanes)
	if err != nil {
		b.Fatal(err)
	}
	bt.SetWorkers(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.MeanPayoffCtx(context.Background(), betas, BatchOptions{Tol: tols}); err != nil {
			b.Fatal(err)
		}
	}
}
