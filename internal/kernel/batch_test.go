package kernel

import (
	"context"
	"math"
	"strings"
	"testing"
)

// laneFixture builds K lanes with spread-out parameters so convergence
// speeds differ across lanes (mixed retirement orders).
func laneFixture(k int) ([]LaneParams, []float64, []float64) {
	lanes := make([]LaneParams, k)
	betas := make([]float64, k)
	tols := make([]float64, k)
	for i := range lanes {
		lanes[i] = LaneParams{
			P:     0.05 + 0.9*float64(i)/float64(k),
			Gamma: float64(i%3) / 2,
		}
		betas[i] = 0.1 + 0.8*float64(k-1-i)/float64(k)
		tols[i] = []float64{1e-6, 1e-8, 1e-7}[i%3]
	}
	return lanes, betas, tols
}

// soloSolve runs the reference solo Jacobi solve for one lane on a fresh
// clone of the shared structure.
func soloSolve(t *testing.T, c *Compiled, lp LaneParams, beta float64, opts Options, warm []float64) (*Result, []float64) {
	t.Helper()
	sc := c.Clone()
	if err := sc.SetChainParams(lp.P, lp.Gamma); err != nil {
		t.Fatalf("SetChainParams: %v", err)
	}
	if warm != nil {
		if err := sc.SetValues(warm); err != nil {
			t.Fatalf("SetValues: %v", err)
		}
		opts.KeepValues = true
	}
	res, err := sc.MeanPayoffCtx(context.Background(), beta, opts)
	if err != nil {
		t.Fatalf("solo MeanPayoffCtx(p=%v, beta=%v): %v", lp.P, beta, err)
	}
	return res, sc.Values()
}

func sameResult(t *testing.T, tag string, ln int, got, want *Result) {
	t.Helper()
	if math.Float64bits(got.Gain) != math.Float64bits(want.Gain) ||
		math.Float64bits(got.Lo) != math.Float64bits(want.Lo) ||
		math.Float64bits(got.Hi) != math.Float64bits(want.Hi) {
		t.Errorf("%s lane %d: bracket (%v [%v, %v]) != solo (%v [%v, %v])",
			tag, ln, got.Gain, got.Lo, got.Hi, want.Gain, want.Lo, want.Hi)
	}
	if got.Iters != want.Iters {
		t.Errorf("%s lane %d: Iters = %d, solo = %d", tag, ln, got.Iters, want.Iters)
	}
	if got.Converged != want.Converged {
		t.Errorf("%s lane %d: Converged = %v, solo = %v", tag, ln, got.Converged, want.Converged)
	}
}

func sameValues(t *testing.T, tag string, ln int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s lane %d: %d values, solo has %d", tag, ln, len(got), len(want))
	}
	for s := range got {
		if math.Float64bits(got[s]) != math.Float64bits(want[s]) {
			t.Errorf("%s lane %d: values diverge at state %d: %v != %v", tag, ln, s, got[s], want[s])
			return
		}
	}
}

// TestBatchMatchesSoloBitwise is the kernel-level pin of the batching
// contract: for lane counts {1, 2, 7, 8, 16}, mixed (p, γ, β, Tol) per lane
// (so lanes retire in scrambled orders), in both full and sign-only
// modes, every lane of one batched solve must be bitwise identical to a
// solo Jacobi solve — Result fields and the converged value vector alike.
func TestBatchMatchesSoloBitwise(t *testing.T) {
	c := compileRing(t, 300, 0.3)
	for _, k := range []int{1, 2, 7, 8, 16} {
		lanes, betas, tols := laneFixture(k)
		for _, signOnly := range []bool{false, true} {
			b, err := NewBatch(c, lanes)
			if err != nil {
				t.Fatalf("NewBatch(k=%d): %v", k, err)
			}
			got, err := BatchMeanPayoff(context.Background(), b, betas, BatchOptions{
				Tol: tols, SignOnly: signOnly,
			})
			if err != nil {
				t.Fatalf("BatchMeanPayoff(k=%d, signOnly=%v): %v", k, signOnly, err)
			}
			tag := "full"
			if signOnly {
				tag = "sign-only"
			}
			for ln := 0; ln < k; ln++ {
				want, wantVals := soloSolve(t, c, lanes[ln], betas[ln],
					Options{Tol: tols[ln], SignOnly: signOnly}, nil)
				sameResult(t, tag, ln, &got[ln], want)
				sameValues(t, tag, ln, b.Values(ln), wantVals)
			}
		}
	}
}

// TestBatchWarmStartMatchesSolo: a warm-started batched lane (SetValues,
// KeepValues) replays the warm solo solve bit for bit, including the
// reduced sweep count.
func TestBatchWarmStartMatchesSolo(t *testing.T) {
	c := compileRing(t, 300, 0.3)
	const k = 5
	lanes, betas, tols := laneFixture(k)
	// Converged vectors at slightly shifted p serve as warm starts for
	// odd lanes; even lanes stay cold inside the same batch.
	warms := make([][]float64, k)
	for ln := 0; ln < k; ln++ {
		if ln%2 == 0 {
			continue
		}
		near := lanes[ln]
		near.P = math.Min(1, near.P+0.01)
		_, warms[ln] = soloSolve(t, c, near, betas[ln], Options{Tol: tols[ln]}, nil)
	}
	b, err := NewBatch(c, lanes)
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	for ln, warm := range warms {
		if warm == nil {
			continue
		}
		if err := b.SetValues(ln, warm); err != nil {
			t.Fatalf("SetValues(%d): %v", ln, err)
		}
	}
	got, err := BatchMeanPayoff(context.Background(), b, betas, BatchOptions{
		Tol: tols, SignOnly: true, KeepValues: true,
	})
	if err != nil {
		t.Fatalf("BatchMeanPayoff: %v", err)
	}
	for ln := 0; ln < k; ln++ {
		want, wantVals := soloSolve(t, c, lanes[ln], betas[ln],
			Options{Tol: tols[ln], SignOnly: true}, warms[ln])
		sameResult(t, "warm", ln, &got[ln], want)
		sameValues(t, "warm", ln, b.Values(ln), wantVals)
	}
}

// TestBatchChainedSolvesMatchSolo replays Algorithm 1's shape — repeated
// KeepValues solves at moving β over one Batch — against per-lane solo
// chains. Retired-lane buffer reuse across solves must not leak between
// steps.
func TestBatchChainedSolvesMatchSolo(t *testing.T) {
	c := compileRing(t, 200, 0.3)
	const k = 4
	lanes, betas, tols := laneFixture(k)
	b, err := NewBatch(c, lanes)
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	solos := make([]*Compiled, k)
	for ln := range solos {
		solos[ln] = c.Clone()
		if err := solos[ln].SetChainParams(lanes[ln].P, lanes[ln].Gamma); err != nil {
			t.Fatalf("SetChainParams: %v", err)
		}
	}
	step := append([]float64(nil), betas...)
	for iter := 0; iter < 4; iter++ {
		got, err := BatchMeanPayoff(context.Background(), b, step, BatchOptions{
			Tol: tols, SignOnly: true, KeepValues: true,
		})
		if err != nil {
			t.Fatalf("step %d: BatchMeanPayoff: %v", iter, err)
		}
		for ln := 0; ln < k; ln++ {
			want, err := solos[ln].MeanPayoffCtx(context.Background(), step[ln], Options{
				Tol: tols[ln], SignOnly: true, KeepValues: true,
			})
			if err != nil {
				t.Fatalf("step %d lane %d solo: %v", iter, ln, err)
			}
			sameResult(t, "chained", ln, &got[ln], want)
			sameValues(t, "chained", ln, b.Values(ln), solos[ln].Values())
			// Halve β toward the decision boundary like a binary search.
			if got[ln].Hi < 0 {
				step[ln] /= 2
			} else {
				step[ln] = (step[ln] + 1) / 2
			}
		}
	}
}

// TestBatchWorkerCountInvariance: the batched sweep partitions states into
// chunks exactly like the solo kernel, so results are bitwise identical at
// any worker count.
func TestBatchWorkerCountInvariance(t *testing.T) {
	c := compileRing(t, 301, 0.35) // odd count: uneven chunk boundaries
	const k = 3
	lanes, betas, tols := laneFixture(k)
	var ref []Result
	var refVals [][]float64
	for _, workers := range []int{1, 2, 4, 7} {
		b, err := NewBatch(c, lanes)
		if err != nil {
			t.Fatalf("NewBatch: %v", err)
		}
		b.SetWorkers(workers)
		got, err := BatchMeanPayoff(context.Background(), b, betas, BatchOptions{Tol: tols})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		vals := make([][]float64, k)
		for ln := range vals {
			vals[ln] = b.Values(ln)
		}
		if ref == nil {
			ref, refVals = got, vals
			continue
		}
		for ln := 0; ln < k; ln++ {
			sameResult(t, "workers", ln, &got[ln], &ref[ln])
			sameValues(t, "workers", ln, vals[ln], refVals[ln])
		}
	}
}

func TestBatchValidation(t *testing.T) {
	c := compileRing(t, 50, 0.3)
	if _, err := NewBatch(c, nil); err == nil {
		t.Error("NewBatch accepted zero lanes")
	}
	if _, err := NewBatch(c, []LaneParams{{P: 1.5}}); err == nil {
		t.Error("NewBatch accepted p outside [0, 1]")
	}
	if _, err := NewBatch(c, []LaneParams{{P: 0.3, Gamma: math.NaN()}}); err == nil {
		t.Error("NewBatch accepted NaN gamma")
	}
	b, err := NewBatch(c, []LaneParams{{P: 0.3, Gamma: 0.5}, {P: 0.2, Gamma: 0.5}})
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	if _, err := b.MeanPayoffCtx(context.Background(), []float64{0.5}, BatchOptions{}); err == nil {
		t.Error("batched solve accepted a betas slice shorter than the lane count")
	}
	if _, err := b.MeanPayoffCtx(context.Background(), []float64{0.5, 0.5}, BatchOptions{Tol: []float64{1e-7}}); err == nil {
		t.Error("batched solve accepted a Tol slice shorter than the lane count")
	}
	if err := b.SetValues(0, make([]float64, 7)); err == nil {
		t.Error("SetValues accepted a wrong-length vector")
	}
	if b.Values(0) != nil {
		t.Error("Values returned a vector for a lane that has none")
	}
}

// TestBatchCancel: a canceled batched solve returns partial per-lane
// results plus an error wrapping ctx.Err, and keeps each lane's vector
// for a KeepValues resume — mirroring the solo contract.
func TestBatchCancel(t *testing.T) {
	c := compileRing(t, 100, 0.3)
	lanes, betas, tols := laneFixture(3)
	b, err := NewBatch(c, lanes)
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BatchMeanPayoff(ctx, b, betas, BatchOptions{Tol: tols})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("pre-canceled solve: err = %v, want cancellation", err)
	}
	if len(res) != len(lanes) {
		t.Fatalf("partial results cover %d lanes, want %d", len(res), len(lanes))
	}
	for ln := range res {
		if res[ln].Converged || res[ln].Iters != 0 {
			t.Errorf("lane %d: partial result %+v after zero sweeps", ln, res[ln])
		}
	}
}

// TestBatchSteadyStateAllocs is the allocation regression guard on the
// batched sweep loop: a warm re-solve over an existing Batch must stay
// allocation-free apart from the results slice and the loop's two
// closures — per-sweep allocations (the historical failure mode: a
// closure or scratch slice born inside the sweep loop) would show up
// hundreds of times over this budget.
func TestBatchSteadyStateAllocs(t *testing.T) {
	c := compileRing(t, 200, 0.3)
	lanes, betas, tols := laneFixture(4)
	b, err := NewBatch(c, lanes)
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	b.SetWorkers(1) // single-chunk par.For runs inline: no goroutine allocs
	opts := BatchOptions{Tol: tols, SignOnly: true, KeepValues: true}
	if _, err := b.MeanPayoffCtx(context.Background(), betas, opts); err != nil {
		t.Fatalf("priming solve: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := b.MeanPayoffCtx(context.Background(), betas, opts); err != nil {
			t.Fatalf("steady-state solve: %v", err)
		}
	})
	const maxAllocs = 16
	if allocs > maxAllocs {
		t.Errorf("steady-state batched solve: %.0f allocs/run, budget %d", allocs, maxAllocs)
	}
}
