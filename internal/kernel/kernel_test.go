package kernel

import (
	"math"
	"strings"
	"testing"
)

// coinSource is a minimal parametric family: one state, two actions.
// Action 0 ("idle") surely loops with no reward; action 1 ("bet") loops
// while paying an adversary block w.p. p and an honest block w.p. 1−p.
// The optimal mean payoff of r_β is therefore max(0, p−β).
type coinSource struct{}

func (coinSource) NumStates() int     { return 1 }
func (coinSource) NumActions(int) int { return 2 }
func (coinSource) Laws() []ProbLaw {
	return []ProbLaw{
		func(_, _ float64, _ int) float64 { return 1 },
		func(p, _ float64, _ int) float64 { return p },
		func(p, _ float64, _ int) float64 { return 1 - p },
	}
}
func (coinSource) BlockRate(p, _ float64) float64 { return 1 }
func (coinSource) RawTransitions(s, a int, buf []Raw) []Raw {
	if a == 0 {
		return append(buf, Raw{Dst: 0, Kind: 0})
	}
	return append(buf,
		Raw{Dst: 0, Kind: 1, RA: 1},
		Raw{Dst: 0, Kind: 2, RH: 1},
	)
}

// cycleSource is a deterministic two-state cycle paying one adversary and
// one honest block per lap: gain of r_β is (1−2β)/2 and ERRev is 1/2.
type cycleSource struct{}

func (cycleSource) NumStates() int     { return 2 }
func (cycleSource) NumActions(int) int { return 1 }
func (cycleSource) Laws() []ProbLaw {
	return []ProbLaw{func(_, _ float64, _ int) float64 { return 1 }}
}
func (cycleSource) BlockRate(_, _ float64) float64 { return 1 }
func (cycleSource) RawTransitions(s, a int, buf []Raw) []Raw {
	if s == 0 {
		return append(buf, Raw{Dst: 1, Kind: 0, RA: 1})
	}
	return append(buf, Raw{Dst: 0, Kind: 0, RH: 1})
}

func TestCompileCoinGainAndPolicy(t *testing.T) {
	c, err := Compile(coinSource{}, 0.3, 0.5)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := c.CheckStochastic(1e-12); err != nil {
		t.Fatal(err)
	}
	res, err := c.MeanPayoff(0.1, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	if math.Abs(res.Gain-0.2) > 1e-6 {
		t.Errorf("gain at beta=0.1: %v, want 0.2", res.Gain)
	}
	if pol := c.GreedyPolicy(0.1); pol[0] != 1 {
		t.Errorf("greedy policy at beta=0.1: %v, want [1]", pol)
	}
	if pol := c.GreedyPolicy(0.5); pol[0] != 0 {
		t.Errorf("greedy policy at beta=0.5: %v, want [0]", pol)
	}
	errev, err := c.EvalERRev([]int{1}, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("EvalERRev: %v", err)
	}
	if math.Abs(errev-0.3) > 1e-6 {
		t.Errorf("ERRev of bet policy: %v, want 0.3", errev)
	}
}

// TestSetChainParamsReResolvesLaws: re-pointing the compiled structure at
// new chain parameters must re-evaluate the family's law table.
func TestSetChainParamsReResolvesLaws(t *testing.T) {
	c, err := Compile(coinSource{}, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetChainParams(0.7, 0.5); err != nil {
		t.Fatal(err)
	}
	if c.P() != 0.7 || c.Gamma() != 0.5 {
		t.Fatalf("chain params (%v, %v), want (0.7, 0.5)", c.P(), c.Gamma())
	}
	errev, err := c.EvalERRev([]int{1}, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(errev-0.7) > 1e-6 {
		t.Errorf("ERRev after re-resolution: %v, want 0.7", errev)
	}
	if err := c.SetChainParams(1.5, 0); err == nil {
		t.Error("p=1.5 accepted")
	}
	if err := c.SetChainParams(0.5, math.NaN()); err == nil {
		t.Error("NaN gamma accepted")
	}
}

func TestCycleERRev(t *testing.T) {
	c, err := Compile(cycleSource{}, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.MeanPayoff(0.25, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gain-0.25) > 1e-9 {
		t.Errorf("cycle gain at beta=0.25: %v, want 0.25", res.Gain)
	}
	errev, err := c.EvalERRev([]int{0, 0}, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(errev-0.5) > 1e-9 {
		t.Errorf("cycle ERRev: %v, want 0.5", errev)
	}
}

// TestCloneSharesStructure: clones share the immutable arrays and copy the
// mutable per-solve state — the invariant the sweep orchestration relies
// on to run many solvers over one compilation.
func TestCloneSharesStructure(t *testing.T) {
	c, err := Compile(cycleSource{}, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	if &cl.transStart[0] != &c.transStart[0] || &cl.dst[0] != &c.dst[0] || &cl.meta[0] != &c.meta[0] {
		t.Error("clone does not share the immutable transition structure")
	}
	if &cl.probs[0] == &c.probs[0] {
		t.Error("clone shares the mutable probability buffer")
	}
	if err := cl.SetChainParams(0.1, 0.2); err != nil {
		t.Fatal(err)
	}
	if c.P() != 0.5 {
		t.Errorf("clone's SetChainParams leaked into base: p=%v", c.P())
	}
}

// badSource exercises the compile-time structural validation paths.
type badSource struct {
	coinSource
	mode string
}

func (b badSource) RawTransitions(s, a int, buf []Raw) []Raw {
	switch b.mode {
	case "law":
		return append(buf, Raw{Dst: 0, Kind: 7})
	case "reward":
		return append(buf, Raw{Dst: 0, Kind: 0, RA: MaxReward + 1})
	case "dst":
		return append(buf, Raw{Dst: 99, Kind: 0})
	case "empty":
		return buf
	}
	return b.coinSource.RawTransitions(s, a, buf)
}

func TestCompileRejectsMalformedSources(t *testing.T) {
	for _, mode := range []string{"law", "reward", "dst", "empty"} {
		if _, err := Compile(badSource{mode: mode}, 0.3, 0.5); err == nil {
			t.Errorf("mode %q: malformed source accepted", mode)
		} else if !strings.HasPrefix(err.Error(), "kernel:") {
			t.Errorf("mode %q: error %q lacks kernel prefix", mode, err)
		}
	}
}

// leakySource under-sums its probabilities; CheckStochastic must notice.
type leakySource struct{ coinSource }

func (leakySource) Laws() []ProbLaw {
	return []ProbLaw{
		func(_, _ float64, _ int) float64 { return 0.9 },
		func(p, _ float64, _ int) float64 { return p },
		func(p, _ float64, _ int) float64 { return 1 - p },
	}
}

func TestCheckStochasticCatchesLeaks(t *testing.T) {
	c, err := Compile(leakySource{}, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckStochastic(1e-6); err == nil {
		t.Error("leaky action distribution passed CheckStochastic")
	}
}
