//go:build amd64

package kernel

// AVX2 acceleration of the dense 8-lane batched sweep. The vector code
// performs, per lane, exactly the scalar sweep's floating-point sequence —
// elementwise VADDPD/VMULPD/VSUBPD and one float32→float64 VCVTPS2PD are
// IEEE-identical to their scalar counterparts, no FMA contraction is used
// (it would change rounding), and every max/min is a VCMPPD($GT_OQ/$LT_OQ)
// + VBLENDVPD pair replicating Go's `if x > y` NaN semantics bit for bit —
// so the kernel's bitwise contract (lane == solo Jacobi solve) holds on
// the assembly path too, and the same bitwise pins cover it on amd64.

// sweepArgs is the argument block for sweep8AVX2. Field offsets are
// hard-coded in batch_avx2_amd64.s and pinned by TestSweepArgsOffsets.
type sweepArgs struct {
	transStart *int64   // CSR row starts, len n+1
	tp         *uint64  // packed transition program (buildTransProgram)
	probs      *float32 // lane-major probabilities, 8 per transition
	rwd        *float64 // lane-major β-view reward table, 8 per row
	hv         *float64 // lane-major current values, 8 per state
	nx         *float64 // lane-major next values, 8 per state
	lo, hi     *float64 // this chunk's 8 bracket extrema outputs
	tau        float64  // damping mix
	from, to   int64    // state range [from, to)
}

// sweep8AVX2 runs states [from, to) of one dense 8-lane sweep.
//
//go:noescape
func sweep8AVX2(a *sweepArgs)

func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var haveAVX2 = detectAVX2()

// detectAVX2 reports AVX2 with OS-saved YMM state, via raw CPUID/XGETBV
// (the stdlib's internal/cpu is not importable). The sweep itself only
// needs AVX, but gating on AVX2 keeps us on hardware modern enough that
// the 256-bit path is a win.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if eax, _ := xgetbv(); eax&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	return ebx&(1<<5) != 0 // AVX2
}

// DenseBatchAsm reports whether this machine runs the assembly dense
// sweep, i.e. whether padding lane groups to DenseBatchWidth pays off.
func DenseBatchAsm() bool { return haveAVX2 }

// maxAsmStates bounds the models the packed transition program can
// address: destination byte offsets (state*64) must fit the word's high
// 32 bits.
const maxAsmStates = 1 << 26

// asmSweep returns the dense 8-lane assembly sweep body, or false when
// the hardware or the model shape rules it out (then the scalar
// makeSweep8 specialization runs instead).
func (b *Batch) asmSweep(tau float64, hvp, nxp *[]float64) (func(chunk, from, to int), bool) {
	c := b.c
	if !haveAVX2 || b.k != denseLaneWidth || len(c.meta) == 0 || c.NumStates() >= maxAsmStates {
		return nil, false
	}
	b.buildTransProgram()
	args := sweepArgs{
		transStart: &c.transStart[0],
		tp:         &b.tp[0],
		probs:      &b.probs[0],
		rwd:        &b.rwd[0],
		tau:        tau,
	}
	return func(chunk, from, to int) {
		hv, nx := *hvp, *nxp
		a := args
		a.hv = &hv[0]
		a.nx = &nx[0]
		a.lo = &b.los[chunk*denseLaneWidth]
		a.hi = &b.his[chunk*denseLaneWidth]
		a.from = int64(from)
		a.to = int64(to)
		sweep8AVX2(&a)
	}, true
}
