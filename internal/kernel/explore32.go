package kernel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/par"
)

// float32 exploration kernel. One transition costs 8 bytes of stream here
// (dst + probs + wr32) against 16 in the float64 kernels, so an exploration
// sweep moves half the memory — the win that matters on memory-bound
// models. The catch is that float32 cannot certify anything: its brackets
// carry ~1e-7-relative noise, so the analysis layer (see
// analysis.AnalyzeCompiledContext) only uses this solver to produce a warm
// value vector and always re-derives the actual decision from an exact
// float64 solve seeded with PromoteValues32.

// explore32StallSweeps is the exploration give-up bound: once the per-sweep
// bracket width has not improved for this many consecutive certification
// sweeps, the vector is as converged as float32 resolution allows and
// further sweeps are wasted.
const explore32StallSweeps = 48

// ensureWeights32 mirrors ensureWeights for the float32 stream.
func (c *Compiled) ensureWeights32(beta float64) {
	if c.wr32Valid && c.wr32Beta == beta && len(c.wr32) == len(c.probs) {
		return
	}
	if len(c.wr32) != len(c.probs) {
		c.wr32 = make([]float32, len(c.probs))
	}
	var rwd [rwdTableSize]float64
	rewardTable(&rwd, beta)
	for k, mv := range c.meta {
		c.wr32[k] = c.probs[k] * float32(rwd[(mv>>metaRwdShift)&metaRwdMask])
	}
	c.wr32Beta, c.wr32Valid = beta, true
}

func (c *Compiled) ensureBuffers32() {
	if n := c.NumStates(); len(c.h32) != n {
		c.h32 = make([]float32, n)
		c.next32 = make([]float32, n)
	}
}

// spec32Sweep is the float32 twin of specSweep. The returned extrema are
// this sweep's span only — float32 noise makes cross-sweep intersection
// unsound (it could invert the bracket), so the caller keeps per-sweep
// brackets instead.
func (c *Compiled) spec32Sweep(hv, nx []float32, tau float32, w int, red *par.MinMax) (lo, hi float64) {
	par.For(c.NumStates(), w, func(chunk, from, to int) {
		clo, chi := math.Inf(1), math.Inf(-1)
		for s := from; s < to; s++ {
			aEnd := c.stateAct[s+1]
			best := float32(math.Inf(-1))
			for a := c.stateAct[s]; a < aEnd; a++ {
				kEnd := c.actStart[a+1]
				var q float32
				for k := c.actStart[a]; k < kEnd; k++ {
					q += c.wr32[k] + c.probs[k]*hv[c.dst[k]]
				}
				if q > best {
					best = q
				}
			}
			d := best - hv[s]
			fd := float64(d)
			if fd < clo {
				clo = fd
			}
			if fd > chi {
				chi = fd
			}
			nx[s] = hv[s] + tau*d
		}
		red.Set(chunk, clo, chi)
	})
	return red.Reduce()
}

// gs32Round is the float32 twin of gsRound (plain Gauss-Seidel, ω = 1).
// gEst must be subtracted per in-place update for the same reason as in
// gsRound: without it mean-payoff relaxation tilts instead of converging.
func (c *Compiled) gs32Round(h []float32, tau, gEst float32, reps int, reverse bool) {
	relax := func(s int) {
		aEnd := c.stateAct[s+1]
		best := float32(math.Inf(-1))
		for a := c.stateAct[s]; a < aEnd; a++ {
			kEnd := c.actStart[a+1]
			var q float32
			for k := c.actStart[a]; k < kEnd; k++ {
				q += c.wr32[k] + c.probs[k]*h[c.dst[k]]
			}
			if q > best {
				best = q
			}
		}
		h[s] += tau * (best - h[s] - gEst)
	}
	nt := len(c.tiles) - 1
	for t := 0; t < nt; t++ {
		ti := t
		if reverse {
			ti = nt - 1 - t
		}
		from, to := int(c.tiles[ti]), int(c.tiles[ti+1])
		for r := 0; r < reps; r++ {
			if reverse {
				for s := to - 1; s >= from; s-- {
					relax(s)
				}
			} else {
				for s := from; s < to; s++ {
					relax(s)
				}
			}
		}
	}
	ref := h[0]
	for i := range h {
		h[i] -= ref
	}
}

// ExploreMeanPayoff32 runs the float32 exploration solve for reward r_β.
// With KeepValues it resumes from the previous exploration vector (the
// float32 buffers, not the float64 ones). It stops when this sweep's span
// excludes zero, drops below Tol, the width stalls at float32 resolution,
// or MaxIter runs out — and, unlike the exact solvers, reports all of those
// as success with Converged reflecting whether the last bracket met the
// target: exploration cannot fail, it just warms the vector less. The only
// error is context cancellation.
//
// The result's Lo/Hi are the LAST sweep's span, a heuristic indicator only;
// nothing downstream may treat them as certified. Call PromoteValues32 to
// copy the explored vector into the float64 warm-start slot.
func (c *Compiled) ExploreMeanPayoff32(ctx context.Context, beta float64, opts Options) (*Result, error) {
	opts.defaults()
	c.ensureWeights32(beta)
	c.ensureBuffers32()
	if !opts.KeepValues {
		for i := range c.h32 {
			c.h32[i] = 0
		}
	}
	tau := float32(opts.Damping)
	res := &Result{Lo: math.Inf(-1), Hi: math.Inf(1)}
	h, next := c.h32, c.next32
	w := c.sweepWorkers()
	red := par.NewMinMax(par.NumChunks(c.NumStates(), w))
	bestWidth, stale := math.Inf(1), 0
	reverse := false
	for res.Iters < opts.MaxIter {
		if err := ctx.Err(); err != nil {
			c.h32, c.next32 = h, next
			res.Gain = (res.Lo + res.Hi) / 2
			return res, fmt.Errorf("kernel: float32 exploration canceled after %d sweeps: %w", res.Iters, err)
		}
		lo, hi := c.spec32Sweep(h, next, tau, w, red)
		ref := next[0]
		for i := range next {
			next[i] -= ref
		}
		h, next = next, h
		res.Iters++
		res.Lo, res.Hi = lo, hi
		width := hi - lo
		if (opts.SignOnly && res.SignKnown()) || width < opts.Tol {
			res.Converged = true
			break
		}
		if width < bestWidth {
			bestWidth, stale = width, 0
		} else {
			stale++
			if stale >= explore32StallSweeps {
				break // pinned at float32 resolution
			}
		}
		if res.Iters+gsBurstSweeps <= opts.MaxIter {
			c.gs32Round(h, tau, float32((res.Lo+res.Hi)/2), gsBurstSweeps, reverse)
			reverse = !reverse
			res.Iters += gsBurstSweeps
		}
	}
	c.h32, c.next32 = h, next
	res.Gain = (res.Lo + res.Hi) / 2
	return res, nil
}

// PromoteValues32 copies the float32 exploration vector into the float64
// value slot, so the next exact solve with KeepValues warm-starts from the
// explored values. It is a no-op if no exploration has run.
func (c *Compiled) PromoteValues32() {
	if len(c.h32) != len(c.h) {
		return
	}
	for i, v := range c.h32 {
		c.h[i] = float64(v)
	}
}
