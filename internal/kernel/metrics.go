package kernel

import "repro/internal/obs"

// Compiled-backend phase instruments, on the shared default registry (see
// docs/OBSERVABILITY.md). All hooks fire at phase boundaries — a whole
// compile, a whole solve — never inside a value-iteration sweep, so the
// kernel inner loops carry zero instrumentation and bitwise determinism
// is untouched.
var (
	compilesTotal = obs.Default().Counter("kernel_compiles_total",
		"Flat-CSR structure compiles (kernel.Compile calls).")
	compileSeconds = obs.Default().Histogram("kernel_compile_seconds",
		"Time to compile one family source into the flat-CSR structure.", obs.DefBuckets())
	solvesTotal = obs.Default().CounterVec("kernel_solves_total",
		"Compiled-backend mean-payoff solves, by kernel variant.", "variant")
	solveSweeps = obs.Default().CounterVec("kernel_solve_sweeps_total",
		"Value-iteration sweeps run by compiled-backend solves, by kernel variant.", "variant")
	solveSeconds = obs.Default().HistogramVec("kernel_solve_seconds",
		"Wall time of one compiled-backend mean-payoff solve, by kernel variant.",
		obs.DefBuckets(), "variant")
	batchRunsTotal = obs.Default().Counter("kernel_batch_runs_total",
		"Multi-lane batch engine runs (Batch.RunCtx calls).")
	batchLanesTotal = obs.Default().Counter("kernel_batch_lanes_total",
		"Lanes solved by the multi-lane batch engine, summed over runs.")
	batchRunSeconds = obs.Default().Histogram("kernel_batch_run_seconds",
		"Wall time of one multi-lane batch engine run.", obs.DefBuckets())
)
