//go:build amd64

package kernel

import (
	"testing"
	"unsafe"
)

// TestSweepArgsOffsets pins the sweepArgs layout the assembly hard-codes.
func TestSweepArgsOffsets(t *testing.T) {
	var a sweepArgs
	for _, f := range []struct {
		name string
		got  uintptr
		want uintptr
	}{
		{"transStart", unsafe.Offsetof(a.transStart), 0},
		{"tp", unsafe.Offsetof(a.tp), 8},
		{"probs", unsafe.Offsetof(a.probs), 16},
		{"rwd", unsafe.Offsetof(a.rwd), 24},
		{"hv", unsafe.Offsetof(a.hv), 32},
		{"nx", unsafe.Offsetof(a.nx), 40},
		{"lo", unsafe.Offsetof(a.lo), 48},
		{"hi", unsafe.Offsetof(a.hi), 56},
		{"tau", unsafe.Offsetof(a.tau), 64},
		{"from", unsafe.Offsetof(a.from), 72},
		{"to", unsafe.Offsetof(a.to), 80},
	} {
		if f.got != f.want {
			t.Errorf("offsetof(sweepArgs.%s) = %d, assembly assumes %d", f.name, f.got, f.want)
		}
	}
	if got, want := unsafe.Sizeof(a), uintptr(88); got != want {
		t.Errorf("sizeof(sweepArgs) = %d, want %d", got, want)
	}
}

// TestAsmSweepMatchesScalar runs one full solve through the assembly
// dense sweep and through the scalar specialization (asm disabled), and
// requires bitwise-identical results — the amd64-specific leg of the
// batch bitwise contract. Skipped where the hardware lacks AVX2.
func TestAsmSweepMatchesScalar(t *testing.T) {
	if !haveAVX2 {
		t.Skip("no AVX2")
	}
	c := compileRing(t, 300, 0.3)
	lanes, betas, tols := laneFixture(denseLaneWidth)
	run := func() ([]Result, [][]float64) {
		b, err := NewBatch(c, lanes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BatchMeanPayoff(t.Context(), b, betas, BatchOptions{Tol: tols})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([][]float64, denseLaneWidth)
		for ln := range vals {
			vals[ln] = b.Values(ln)
		}
		return res, vals
	}
	asm, asmVals := run()
	defer func(v bool) { haveAVX2 = v }(haveAVX2)
	haveAVX2 = false
	scalar, scalarVals := run()
	for ln := range asm {
		if asm[ln] != scalar[ln] {
			t.Errorf("lane %d: asm %+v != scalar %+v", ln, asm[ln], scalar[ln])
		}
		for s := range asmVals[ln] {
			if asmVals[ln][s] != scalarVals[ln][s] {
				t.Fatalf("lane %d state %d: asm value %v != scalar %v", ln, s, asmVals[ln][s], scalarVals[ln][s])
			}
		}
	}
}
