// Package kernel is the protocol-agnostic compiled mean-payoff engine of
// the reproduction: a flat-CSR representation of a finite attack MDP whose
// transition probabilities are parametric in the chain parameters (p, γ),
// with fast relative value iteration, greedy policy extraction and
// fixed-policy evaluation on top.
//
// The kernel knows nothing about any concrete protocol. A model family
// describes itself through the Source interface: it enumerates raw
// transitions whose probability is an index into a family-supplied table of
// probability laws — functions of (p, γ) and a per-transition σ annotation.
// The paper's fork model (package core), the single-tree Eyal–Sirer
// baseline and the classic Nakamoto selfish-mining state space (package
// families) all compile onto this one kernel, so Algorithm 1's binary
// search, the serving layer's structure cache and the sweep orchestration
// are shared across families.
//
// Compiling a Source is done once per attack shape; re-pointing the
// compiled structure at new chain parameters (SetChainParams) only
// re-evaluates the law table. Probability laws are deterministic pure
// functions, so compiled results inherit the repository-wide bitwise
// reproducibility guarantees (see the Compiled type).
package kernel

// ProbLaw resolves a transition probability from the chain parameters
// (p, γ) and the transition's σ annotation (for mining-race laws, the
// number of concurrent proof targets; 0 when unused). Laws must be pure:
// the same arguments always yield the same float64.
type ProbLaw func(p, gamma float64, sigma int) float64

// Raw is a transition with its probability law and block-finalization
// counts, before concrete chain parameters are applied.
type Raw struct {
	// Dst is the destination state index.
	Dst int
	// Kind indexes the Source's law table (at most MaxLaws entries): the
	// transition's probability at chain parameters (p, γ) is
	// Laws()[Kind](p, γ, Sigma).
	Kind uint8
	// Sigma is the σ annotation passed to the law (0 when unused).
	Sigma uint8
	// RA and RH are the adversary/honest blocks made permanent by this
	// transition; each must fit MaxReward.
	RA uint8
	// RH is the honest counterpart of RA.
	RH uint8
}

// Source is a model family's description of one attack MDP instance: the
// state space, the per-state actions, the raw transition structure, and
// the probability-law table the raw transitions index into. Sources are
// consumed once by Compile; they may keep internal scratch and need not be
// safe for concurrent use.
type Source interface {
	// NumStates returns the number of states; states are 0..NumStates()-1
	// and state 0 by convention contains the initial state's solve (the
	// kernel's mean-payoff is constant across states for unichain models,
	// so the choice does not matter to the certified gain).
	NumStates() int
	// NumActions returns the number of actions available in state s (≥ 1).
	NumActions(s int) int
	// RawTransitions appends the successors of (s, a) to buf and returns
	// the extended slice.
	RawTransitions(s, a int, buf []Raw) []Raw
	// Laws returns the probability-law table the Raw.Law indices refer to.
	Laws() []ProbLaw
	// BlockRate lower-bounds the long-run rate of permanent blocks per MDP
	// step at chain parameters (p, γ). It calibrates the solver precision
	// that makes a binary search on β reliable at a given ε (it bounds
	// |dMP*_β/dβ| from below); a conservative underestimate costs sweeps,
	// never correctness, because sign-only solves certify exact signs.
	BlockRate(p, gamma float64) float64
}

// Structural limits of the packed transition metadata.
const (
	// MaxLaws is the largest law table a Source may use (3 packed bits).
	MaxLaws = 1 << 3
	// MaxSigma is the largest σ annotation (8 packed bits).
	MaxSigma = 1<<8 - 1
	// MaxReward is the largest per-transition RA or RH count (6 packed
	// bits each, jointly indexing the 4096-entry reward lookup table).
	MaxReward = 1<<6 - 1
)
