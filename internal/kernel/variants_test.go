package kernel

import (
	"context"
	"math"
	"strings"
	"testing"
)

// ringSource is a larger fixture exercising the tiled fast paths: n states
// on a ring. Action 0 advances, paying an adversary block w.p. p and an
// honest block otherwise; action 1 jumps home to state 0 paying an honest
// block surely. Multiple states and transitions per row give the
// specialized layout, the cache tiling, and the in-place relaxation real
// work while staying unichain for any p in (0, 1).
type ringSource struct{ n int }

func (r ringSource) NumStates() int   { return r.n }
func (ringSource) NumActions(int) int { return 2 }
func (ringSource) Laws() []ProbLaw {
	return []ProbLaw{
		func(_, _ float64, _ int) float64 { return 1 },
		func(p, _ float64, _ int) float64 { return 0.9 * p },
		func(p, _ float64, _ int) float64 { return 0.9 * (1 - p) },
		func(_, _ float64, _ int) float64 { return 0.1 },
	}
}
func (ringSource) BlockRate(_, _ float64) float64 { return 1 }
func (r ringSource) RawTransitions(s, a int, buf []Raw) []Raw {
	if a == 0 {
		// State-dependent rewards keep the model far from symmetric (a
		// symmetric ring converges in one sweep and exercises nothing); the
		// 10% mix into state 0 keeps it aperiodic and fast-mixing, like the
		// generic backend's randomUnichain fixture.
		next := (s + 1) % r.n
		return append(buf,
			Raw{Dst: next, Kind: 1, RA: uint8(1 + s%3)},
			Raw{Dst: next, Kind: 2, RH: uint8(1 + s%2)},
			Raw{Dst: 0, Kind: 3},
		)
	}
	return append(buf, Raw{Dst: 0, Kind: 0, RH: uint8(1 + s%5)})
}

func compileRing(t *testing.T, n int, p float64) *Compiled {
	t.Helper()
	c, err := Compile(ringSource{n: n}, p, 0.5)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Probabilities are resolved into float32; the row sums carry float32
	// rounding.
	if err := c.CheckStochastic(1e-6); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseVariant(t *testing.T) {
	aliases := map[string]Variant{
		"":             VariantJacobi,
		"default":      VariantJacobi,
		"Jacobi":       VariantJacobi,
		" spec ":       VariantSpec,
		"gauss-seidel": VariantGS,
		"SOR":          VariantSOR,
		"f32":          VariantExplore32,
		"float32":      VariantExplore32,
	}
	for name, want := range aliases {
		if got, err := ParseVariant(name); err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	// Canonical names round-trip through String.
	for _, name := range VariantNames() {
		v, err := ParseVariant(name)
		if err != nil {
			t.Fatalf("ParseVariant(%q): %v", name, err)
		}
		if v.String() != name {
			t.Errorf("ParseVariant(%q).String() = %q", name, v.String())
		}
	}
	if _, err := ParseVariant("turbo"); err == nil || !strings.Contains(err.Error(), "jacobi") {
		t.Errorf("unknown variant error %v does not list the valid names", err)
	}
}

// TestVariantGainsAgree: every fast variant must certify the Jacobi gain to
// within the solve tolerance — the variants change the trajectory, never
// the certified bracket's meaning.
func TestVariantGainsAgree(t *testing.T) {
	c := compileRing(t, 500, 0.3)
	const tol = 1e-9
	for _, beta := range []float64{0.05, 0.25, 0.4} {
		ref, err := c.MeanPayoff(beta, Options{Tol: tol})
		if err != nil {
			t.Fatalf("jacobi at beta=%v: %v", beta, err)
		}
		for _, v := range []Variant{VariantSpec, VariantGS, VariantSOR, VariantExplore32} {
			res, err := c.MeanPayoffCtx(context.Background(), beta, Options{Tol: tol, Variant: v})
			if err != nil {
				t.Fatalf("%v at beta=%v: %v", v, beta, err)
			}
			if math.Abs(res.Gain-ref.Gain) > 10*tol {
				t.Errorf("%v at beta=%v: gain %v, jacobi %v", v, beta, res.Gain, ref.Gain)
			}
			if res.Lo > res.Hi || !res.Converged {
				t.Errorf("%v at beta=%v: bad result %+v", v, beta, res)
			}
		}
	}
}

// TestSpecMatchesJacobiSweepForSweep: VariantSpec is the same damped Jacobi
// iteration through a specialized kernel, so it must take exactly as many
// sweeps as the default path.
func TestSpecMatchesJacobiSweepForSweep(t *testing.T) {
	c := compileRing(t, 200, 0.35)
	ref, err := c.MeanPayoff(0.2, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.MeanPayoffCtx(context.Background(), 0.2, Options{Tol: 1e-9, Variant: VariantSpec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != ref.Iters {
		t.Errorf("spec took %d sweeps, jacobi %d", res.Iters, ref.Iters)
	}
}

// TestVariantRunLeavesDefaultBitwise is the determinism contract: solving
// with a fast variant (which builds weight caches and scrambles the value
// buffers) must not perturb a subsequent default solve by a single bit.
func TestVariantRunLeavesDefaultBitwise(t *testing.T) {
	c := compileRing(t, 300, 0.3)
	before, err := c.MeanPayoff(0.15, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{VariantSpec, VariantGS, VariantSOR} {
		if _, err := c.MeanPayoffCtx(context.Background(), 0.15, Options{Tol: 1e-9, Variant: v}); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
	if _, err := c.ExploreMeanPayoff32(context.Background(), 0.15, Options{Tol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	after, err := c.MeanPayoff(0.15, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if before.Gain != after.Gain || before.Lo != after.Lo || before.Hi != after.Hi || before.Iters != after.Iters {
		t.Errorf("default solve changed after variant runs: %+v vs %+v", before, after)
	}
}

// TestVariantSignOnlyAgree: sign-only certification (what binary-search
// decisions consume) must match the default kernel's sign.
func TestVariantSignOnlyAgree(t *testing.T) {
	c := compileRing(t, 400, 0.3)
	for _, beta := range []float64{0.1, 0.29, 0.31} {
		ref, err := c.MeanPayoff(beta, Options{Tol: 1e-7, SignOnly: true})
		if err != nil {
			t.Fatalf("jacobi at beta=%v: %v", beta, err)
		}
		for _, v := range []Variant{VariantSpec, VariantGS, VariantSOR} {
			res, err := c.MeanPayoffCtx(context.Background(), beta, Options{Tol: 1e-7, SignOnly: true, Variant: v})
			if err != nil {
				t.Fatalf("%v at beta=%v: %v", v, beta, err)
			}
			refPos, resPos := ref.Lo > 0, res.Lo > 0
			refNeg, resNeg := ref.Hi < 0, res.Hi < 0
			if (refPos && resNeg) || (refNeg && resPos) {
				t.Errorf("%v at beta=%v certified the opposite sign: [%v,%v] vs jacobi [%v,%v]",
					v, beta, res.Lo, res.Hi, ref.Lo, ref.Hi)
			}
		}
	}
}

// TestExplore32PromoteWarmStart: the float32 exploration's promoted vector
// must warm-start an exact solve to the same gain in fewer sweeps than a
// cold solve.
func TestExplore32PromoteWarmStart(t *testing.T) {
	c := compileRing(t, 500, 0.3)
	const beta, tol = 0.2, 1e-9
	cold, err := c.MeanPayoff(beta, Options{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	er, err := c.ExploreMeanPayoff32(context.Background(), beta, Options{Tol: tol})
	if err != nil {
		t.Fatalf("explore32: %v", err)
	}
	if er.Iters == 0 {
		t.Fatal("explore32 did no sweeps")
	}
	c.PromoteValues32()
	warm, err := c.MeanPayoffCtx(context.Background(), beta, Options{Tol: tol, KeepValues: true, Variant: VariantGS})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Gain-cold.Gain) > 10*tol {
		t.Errorf("warm certified gain %v, cold %v", warm.Gain, cold.Gain)
	}
	if warm.Iters >= cold.Iters {
		t.Errorf("warm exact solve took %d sweeps, cold %d — float32 exploration bought nothing", warm.Iters, cold.Iters)
	}
}

// TestExplore32NonConvergenceIsNotAnError: the exploration pass is advisory
// — running out of budget must hand back the partial result without error
// (the exact solve that follows does the certifying).
func TestExplore32NonConvergenceIsNotAnError(t *testing.T) {
	c := compileRing(t, 500, 0.3)
	er, err := c.ExploreMeanPayoff32(context.Background(), 0.2, Options{Tol: 1e-12, MaxIter: 3})
	if err != nil {
		t.Fatalf("budget exhaustion errored: %v", err)
	}
	if er.Converged {
		t.Error("3 sweeps at Tol=1e-12 reported convergence")
	}
	if er.Iters != 3 {
		t.Errorf("Iters = %d, want 3", er.Iters)
	}
}

// TestExplore32Canceled: the float32 loop honors its context at sweep
// boundaries like every other solve.
func TestExplore32Canceled(t *testing.T) {
	c := compileRing(t, 100, 0.3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExploreMeanPayoff32(ctx, 0.2, Options{Tol: 1e-9}); err == nil {
		t.Error("pre-canceled exploration succeeded")
	}
}

// TestVariantWorkersBitwiseOnCertPath: certification sweeps of the fast
// paths reduce their bracket exactly, so the certified gain of a variant
// run must not depend on the worker count.
func TestVariantWorkersBitwiseOnCertPath(t *testing.T) {
	base := compileRing(t, 300, 0.3)
	var gains []float64
	for _, w := range []int{1, 4} {
		c := base.Clone()
		c.SetWorkers(w)
		res, err := c.MeanPayoffCtx(context.Background(), 0.2, Options{Tol: 1e-9, Variant: VariantSpec})
		if err != nil {
			t.Fatal(err)
		}
		gains = append(gains, res.Gain)
	}
	if gains[0] != gains[1] {
		t.Errorf("spec gain differs across worker counts: %v vs %v", gains[0], gains[1])
	}
}
