//go:build !amd64

package kernel

// asmSweep has no implementation off amd64; the dense 8-lane path runs
// the scalar makeSweep8 specialization instead.
func (b *Batch) asmSweep(tau float64, hvp, nxp *[]float64) (func(chunk, from, to int), bool) {
	return nil, false
}

// DenseBatchAsm reports whether this machine runs the assembly dense
// sweep; off amd64 it never does.
func DenseBatchAsm() bool { return false }
