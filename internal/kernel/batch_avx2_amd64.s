//go:build amd64

#include "textflag.h"

// Dense 8-lane batched value-iteration sweep, AVX (256-bit) form.
//
// Bitwise contract with the scalar sweep (see batch_avx2_amd64.go):
// elementwise VADDPD/VMULPD/VSUBPD/VCVTPS2PD only — no FMA — and every
// conditional max/min is VCMPPD(GT_OQ=$30 / LT_OQ=$17) + VBLENDVPD,
// which keeps Go's `if x > y { y = x }` NaN behavior (comparison with a
// NaN is false, so the old value stays).
//
// Register plan (whole call):
//   Y0,Y1   q accumulators, lanes 0-3 / 4-7
//   Y2,Y3   per-state action maxima b
//   Y4,Y5   chunk bracket minima lo   (live across states)
//   Y6,Y7   chunk bracket maxima hi   (live across states)
//   Y8      tau broadcast
//   Y14     -inf broadcast
//   Y9..Y13,Y15 scratch
//   SI transStart, R8 tp, R9 probs, R10 rwd, R11 hv, R12 nx
//   R13 state s, R14 to, BX t, CX kEnd, DX tp ptr, R15 probs ptr
//   AX/DI scratch (packed entry decode)

DATA posInf<>+0(SB)/8, $0x7FF0000000000000
GLOBL posInf<>(SB), RODATA|NOPTR, $8
DATA negInf<>+0(SB)/8, $0xFFF0000000000000
GLOBL negInf<>(SB), RODATA|NOPTR, $8

// sweepArgs field offsets, pinned by TestSweepArgsOffsets.
#define A_TRANSSTART 0
#define A_TP 8
#define A_PROBS 16
#define A_RWD 24
#define A_HV 32
#define A_NX 40
#define A_LO 48
#define A_HI 56
#define A_TAU 64
#define A_FROM 72
#define A_TO 80

// func sweep8AVX2(a *sweepArgs)
TEXT ·sweep8AVX2(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ A_TRANSSTART(AX), SI
	MOVQ A_TP(AX), R8
	MOVQ A_PROBS(AX), R9
	MOVQ A_RWD(AX), R10
	MOVQ A_HV(AX), R11
	MOVQ A_NX(AX), R12
	VBROADCASTSD A_TAU(AX), Y8
	MOVQ A_FROM(AX), R13
	MOVQ A_TO(AX), R14
	VBROADCASTSD posInf<>(SB), Y4
	VMOVAPD Y4, Y5
	VBROADCASTSD negInf<>(SB), Y14
	VMOVAPD Y14, Y6
	VMOVAPD Y14, Y7

state_loop:
	CMPQ R13, R14
	JGE  store_extrema
	MOVQ (SI)(R13*8), BX   // kStart
	MOVQ 8(SI)(R13*8), CX  // kEnd
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VMOVAPD Y14, Y2
	VMOVAPD Y14, Y3
	LEAQ (R8)(BX*8), DX    // &tp[kStart]
	MOVQ BX, AX
	SHLQ $5, AX
	LEAQ (R9)(AX*1), R15   // &probs[kStart*8]
	CMPQ BX, CX
	JGE  state_epilogue    // empty row: flush q=0 in the epilogue
	// First transition of a state starts its span unconditionally —
	// its new-action flag must not flush (scalar: `t > span`).
	MOVQ (DX), AX
	JMP  accum

trans_loop:
	CMPQ BX, CX
	JGE  state_epilogue
	MOVQ (DX), AX
	TESTB $1, AX
	JEQ  accum
	// New action span: flush q into b, reset q.
	VCMPPD $30, Y2, Y0, Y13
	VBLENDVPD Y13, Y0, Y2, Y2
	VCMPPD $30, Y3, Y1, Y13
	VBLENDVPD Y13, Y1, Y3, Y3
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

accum:
	// q += p * (rw + h[dst]), all 8 lanes.
	MOVL AX, DI            // low half: rwd byte offset | flag
	ANDQ $-64, DI
	SHRQ $32, AX           // high half: dst byte offset
	VCVTPS2PD (R15), Y9
	VCVTPS2PD 16(R15), Y10
	VMOVUPD (R10)(DI*1), Y11
	VMOVUPD 32(R10)(DI*1), Y12
	VADDPD (R11)(AX*1), Y11, Y11
	VADDPD 32(R11)(AX*1), Y12, Y12
	VMULPD Y9, Y11, Y11
	VMULPD Y10, Y12, Y12
	VADDPD Y11, Y0, Y0
	VADDPD Y12, Y1, Y1
	INCQ BX
	ADDQ $8, DX
	ADDQ $32, R15
	JMP  trans_loop

state_epilogue:
	// Final flush of the last span.
	VCMPPD $30, Y2, Y0, Y13
	VBLENDVPD Y13, Y0, Y2, Y2
	VCMPPD $30, Y3, Y1, Y13
	VBLENDVPD Y13, Y1, Y3, Y3
	// d = b - h[s]; lo = min(lo, d); hi = max(hi, d); nx[s] = h[s] + tau*d.
	MOVQ R13, AX
	SHLQ $6, AX
	VMOVUPD (R11)(AX*1), Y9
	VMOVUPD 32(R11)(AX*1), Y10
	VSUBPD Y9, Y2, Y11
	VSUBPD Y10, Y3, Y12
	VCMPPD $17, Y4, Y11, Y13
	VBLENDVPD Y13, Y11, Y4, Y4
	VCMPPD $17, Y5, Y12, Y13
	VBLENDVPD Y13, Y12, Y5, Y5
	VCMPPD $30, Y6, Y11, Y13
	VBLENDVPD Y13, Y11, Y6, Y6
	VCMPPD $30, Y7, Y12, Y13
	VBLENDVPD Y13, Y12, Y7, Y7
	VMULPD Y8, Y11, Y15
	VADDPD Y9, Y15, Y15
	VMOVUPD Y15, (R12)(AX*1)
	VMULPD Y8, Y12, Y15
	VADDPD Y10, Y15, Y15
	VMOVUPD Y15, 32(R12)(AX*1)
	INCQ R13
	JMP  state_loop

store_extrema:
	MOVQ a+0(FP), AX
	MOVQ A_LO(AX), BX
	VMOVUPD Y4, (BX)
	VMOVUPD Y5, 32(BX)
	MOVQ A_HI(AX), BX
	VMOVUPD Y6, (BX)
	VMOVUPD Y7, 32(BX)
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
