package kernel

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/par"
)

// This file holds the opt-in fast sweep variants layered over the compiled
// structure. The default VariantJacobi path in compiled.go is the bitwise
// determinism contract and is untouched by everything here; the variants
// trade sweep-by-sweep reproducibility for throughput while keeping every
// certified gain bracket sound:
//
//   - VariantSpec runs the same damped Jacobi iteration through a
//     branch-free row kernel (stateAct/actStart layout, β-weighted rewards
//     folded into a per-transition table), removing the per-transition flag
//     decode and reward lookup from the hot loop.
//   - VariantGS / VariantSOR interleave those certification sweeps with
//     bursts of in-place (Gauss-Seidel) relaxation, tiled so one tile's
//     transition stream stays L2-resident across the burst. In-place
//     updates converge far faster but their span is not a valid gain
//     bracket, so brackets are taken only from the Jacobi certification
//     sweeps — which bound the optimal gain for ANY value vector, no
//     matter what the bursts did to it in between.
//   - VariantExplore32 is an analysis-level mode (see explore32.go): a
//     float32 exploration pass warm-starts an exact float64 solve; when it
//     reaches MeanPayoffCtx directly it behaves as VariantGS.
//
// Certified outcomes (final brackets, sign decisions) therefore agree with
// the default kernel up to the solver's documented tolerance semantics;
// only the trajectory and sweep counts differ.

// Variant selects a sweep kernel for the compiled solver. The zero value is
// the default, bitwise-deterministic Jacobi kernel.
type Variant uint8

const (
	// VariantJacobi is the default damped Jacobi kernel of MeanPayoffCtx —
	// bitwise identical across worker counts and releases.
	VariantJacobi Variant = iota
	// VariantSpec is the branch-free specialization of the same iteration.
	VariantSpec
	// VariantGS interleaves tiled in-place Gauss-Seidel bursts with Jacobi
	// certification sweeps.
	VariantGS
	// VariantSOR is VariantGS with over-relaxation (see Options.Omega).
	VariantSOR
	// VariantExplore32 runs a float32 exploration solve before an exact
	// float64 certification (analysis-level; see ExploreMeanPayoff32).
	VariantExplore32
)

// String returns the canonical variant name accepted by ParseVariant.
func (v Variant) String() string {
	switch v {
	case VariantJacobi:
		return "jacobi"
	case VariantSpec:
		return "spec"
	case VariantGS:
		return "gs"
	case VariantSOR:
		return "sor"
	case VariantExplore32:
		return "explore32"
	}
	return fmt.Sprintf("kernel.Variant(%d)", uint8(v))
}

// VariantNames lists the canonical kernel variant names, default first.
func VariantNames() []string {
	return []string{"jacobi", "spec", "gs", "sor", "explore32"}
}

// ParseVariant resolves a user-facing kernel name. The empty string and
// "default" mean the Jacobi default; "gauss-seidel", "f32" and "float32" are
// accepted aliases.
func ParseVariant(name string) (Variant, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "jacobi", "default":
		return VariantJacobi, nil
	case "spec":
		return VariantSpec, nil
	case "gs", "gauss-seidel":
		return VariantGS, nil
	case "sor":
		return VariantSOR, nil
	case "explore32", "f32", "float32":
		return VariantExplore32, nil
	}
	return VariantJacobi, fmt.Errorf("kernel: unknown kernel variant %q (have %s)", name, strings.Join(VariantNames(), ", "))
}

const (
	// gsTileTransitions bounds one cache tile's transition stream. A
	// transition costs 16 bytes of stream (dst + meta + probs + wr), so
	// 16Ki transitions ≈ 256 KiB — comfortably L2-resident while a burst
	// re-iterates the tile.
	gsTileTransitions = 16 << 10
	// gsBurstSweeps is how many in-place relaxation passes a burst runs
	// over each tile between certification sweeps. Measured on the fork and
	// nakamoto families, 1 beats longer bursts: each relaxation pass needs
	// the freshest possible gain estimate (see gsRound), and that estimate
	// only improves when a certification sweep refines the bracket.
	gsBurstSweeps = 1
	// fastStallRounds is the degradation safeguard: if this many
	// consecutive certification sweeps fail to improve the best certified
	// width, the bursts are assumed to be hurting (oscillation) and the
	// solve degrades to the pure specialized Jacobi iteration.
	fastStallRounds = 64
	// DefaultSOROmega is the default over-relaxation factor of VariantSOR,
	// shared with the generic backend (see solve.Options.Omega).
	DefaultSOROmega = 1.1
)

// ensureWeights (re)builds the per-transition β-weighted reward cache
// wr[k] = P(k) · r_β(k), so the hot loops fold the reward lookup and the
// probability multiply into one fused multiply-add stream. Invalidated by
// SetChainParams and by a β change.
func (c *Compiled) ensureWeights(beta float64) {
	if c.wrValid && c.wrBeta == beta && len(c.wr) == len(c.probs) {
		return
	}
	if len(c.wr) != len(c.probs) {
		c.wr = make([]float64, len(c.probs))
	}
	var rwd [rwdTableSize]float64
	rewardTable(&rwd, beta)
	for k, mv := range c.meta {
		c.wr[k] = float64(c.probs[k]) * rwd[(mv>>metaRwdShift)&metaRwdMask]
	}
	c.wrBeta, c.wrValid = beta, true
}

// specSweep runs one damped Jacobi sweep through the branch-free row layout,
// writing next from h only, and returns the exact span extrema of the sweep
// — a valid gain bracket for any input vector. Parallel chunking matches the
// default kernel (contiguous chunks, exact min/max reduction).
func (c *Compiled) specSweep(hv, nx []float64, tau float64, w int, red *par.MinMax) (lo, hi float64) {
	par.For(c.NumStates(), w, func(chunk, from, to int) {
		clo, chi := math.Inf(1), math.Inf(-1)
		for s := from; s < to; s++ {
			aEnd := c.stateAct[s+1]
			best := math.Inf(-1)
			for a := c.stateAct[s]; a < aEnd; a++ {
				kEnd := c.actStart[a+1]
				var q float64
				for k := c.actStart[a]; k < kEnd; k++ {
					q += c.wr[k] + float64(c.probs[k])*hv[c.dst[k]]
				}
				if q > best {
					best = q
				}
			}
			d := best - hv[s]
			if d < clo {
				clo = d
			}
			if d > chi {
				chi = d
			}
			nx[s] = hv[s] + tau*d
		}
		red.Set(chunk, clo, chi)
	})
	return red.Reduce()
}

// gsRound runs reps in-place relaxation passes over each cache tile before
// moving to the next tile (block Gauss-Seidel with inner iterations), so the
// tile's transition stream is read once from memory and re-iterated from
// cache. Alternate rounds reverse both tile and state order so information
// propagates in both directions of the state numbering. The vector is
// re-anchored at state 0 afterwards, like every Jacobi sweep.
//
// gEst is the caller's current gain estimate, and subtracting it per update
// is what makes in-place relaxation converge at all for MEAN-PAYOFF
// iteration: an undiscounted in-place update feeds values already advanced
// by one Bellman step — gain included — to later states of the same pass,
// so without the subtraction the vector accumulates a non-uniform tilt of
// order g per pass that end-of-pass normalization (which removes only
// uniform shifts) cannot undo, and the relaxation orbits instead of
// converging. With it, the fixed point is Th − h = gEst·1, i.e. the bias
// vector up to the (certified, shrinking) error in gEst.
func (c *Compiled) gsRound(h []float64, tau, omega, gEst float64, reps int, reverse bool) {
	step := tau * omega
	relax := func(s int) {
		aEnd := c.stateAct[s+1]
		best := math.Inf(-1)
		for a := c.stateAct[s]; a < aEnd; a++ {
			kEnd := c.actStart[a+1]
			var q float64
			for k := c.actStart[a]; k < kEnd; k++ {
				q += c.wr[k] + float64(c.probs[k])*h[c.dst[k]]
			}
			if q > best {
				best = q
			}
		}
		h[s] += step * (best - h[s] - gEst)
	}
	nt := len(c.tiles) - 1
	for t := 0; t < nt; t++ {
		ti := t
		if reverse {
			ti = nt - 1 - t
		}
		from, to := int(c.tiles[ti]), int(c.tiles[ti+1])
		for r := 0; r < reps; r++ {
			if reverse {
				for s := to - 1; s >= from; s-- {
					relax(s)
				}
			} else {
				for s := from; s < to; s++ {
					relax(s)
				}
			}
		}
	}
	ref := h[0]
	for i := range h {
		h[i] -= ref
	}
}

// meanPayoffFast is the non-default-variant body of MeanPayoffCtx: damped
// Jacobi certification sweeps through the specialized kernel, optionally
// interleaved with tiled in-place relaxation bursts. Convergence policy
// (Tol, SignOnly semantics, stall handling, MaxIter accounting across every
// sweep run) matches the default kernel, so callers observe identical
// Result semantics.
func (c *Compiled) meanPayoffFast(ctx context.Context, beta float64, opts Options) (*Result, error) {
	n := c.NumStates()
	c.ensureWeights(beta)
	if !opts.KeepValues {
		for i := range c.h {
			c.h[i] = 0
		}
	}
	tau := opts.Damping
	burst := gsBurstSweeps
	omega := 1.0
	switch opts.Variant {
	case VariantSpec:
		burst = 0
	case VariantSOR:
		if opts.Omega > 0 && opts.Omega < 2 {
			omega = opts.Omega
		} else {
			omega = DefaultSOROmega
		}
	}
	res := &Result{Lo: math.Inf(-1), Hi: math.Inf(1)}
	h, next := c.h, c.next
	w := c.sweepWorkers()
	red := par.NewMinMax(par.NumChunks(n, w))
	lastWidth, stall := math.Inf(1), 0
	bestWidth, stale := math.Inf(1), 0
	reverse := false
	for res.Iters < opts.MaxIter {
		if err := ctx.Err(); err != nil {
			c.h, c.next = h, next
			res.Gain = (res.Lo + res.Hi) / 2
			return res, fmt.Errorf("kernel: compiled solve canceled after %d sweeps: %w", res.Iters, err)
		}
		lo, hi := c.specSweep(h, next, tau, w, red)
		par.Shift(next, next[0], w)
		h, next = next, h
		res.Iters++
		if lo > res.Lo {
			res.Lo = lo
		}
		if hi < res.Hi {
			res.Hi = hi
		}
		width := res.Hi - res.Lo
		if opts.SignOnly {
			if width < opts.Tol {
				if width < lastWidth {
					stall = 0
				} else {
					stall++
				}
			}
			res.Converged = res.SignKnown() ||
				width < opts.Tol*signOnlyFloorFrac ||
				stall >= signOnlyStallSweeps
		} else {
			res.Converged = width < opts.Tol
		}
		lastWidth = width
		if res.Converged {
			break
		}
		if width < bestWidth {
			bestWidth, stale = width, 0
		} else {
			stale++
			if stale >= fastStallRounds {
				burst = 0
			}
		}
		if burst > 0 && res.Iters+burst <= opts.MaxIter {
			c.gsRound(h, tau, omega, (res.Lo+res.Hi)/2, burst, reverse)
			reverse = !reverse
			res.Iters += burst
		}
	}
	c.h, c.next = h, next
	res.Gain = (res.Lo + res.Hi) / 2
	if !res.Converged {
		return res, fmt.Errorf("kernel: compiled solve: bracket [%v, %v] after %d sweeps without convergence", res.Lo, res.Hi, res.Iters)
	}
	return res, nil
}
