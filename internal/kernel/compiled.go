package kernel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/par"
)

// metaTrans packs per-transition metadata into a uint32:
//
//	bits 0..2   law index
//	bit  3      first transition of a new action
//	bits 4..11  sigma (law annotation)
//	bits 12..17 rh
//	bits 18..23 ra
//
// Bits 12..23 double as an index into a 4096-entry reward lookup table.
const (
	metaLawMask    = 0x7
	metaNewAction  = 1 << 3
	metaSigmaShift = 4
	metaRwdShift   = 12
	metaRwdMask    = 0xFFF
	metaRHShift    = 12
	metaRAShift    = 18
	rwdTableSize   = 1 << 12
)

// Compiled is a flattened, solver-friendly representation of an attack MDP
// transition structure for one fixed shape. The structure is shared by
// every (p, γ, β): probabilities are resolved by SetChainParams through the
// family's probability-law table and the scalar β-reward by a lookup table
// per sweep. It implements fast mean-payoff value iteration and
// fixed-policy evaluation for large models.
//
// A Compiled instance is not safe for concurrent use, but Clone produces
// independent instances that share the immutable transition structure, so
// many clones can solve in parallel over one compilation.
//
// Every solver sweep may be parallelized across SetWorkers goroutines.
// Results are bitwise identical at any worker count: a sweep writes
// next[s] from the previous vector h only, states are partitioned into
// contiguous chunks (par.For), and the lo/hi gain brackets are reduced
// with exact min/max — so chunked execution reproduces the serial sweep
// exactly. See the package par documentation for the full argument.
type Compiled struct {
	p, gamma float64 // values last passed to SetChainParams

	laws     []ProbLaw                      // family law table; shared by clones
	rate     func(p, gamma float64) float64 // family block-rate bound; shared
	maxSigma int                            // largest σ annotation observed at compile time

	transStart []int64   // per-state transition range, len n+1; shared by clones
	dst        []int32   // transition destinations; shared by clones
	meta       []uint32  // packed law/flag/sigma/ra/rh; shared by clones
	probs      []float32 // resolved probabilities for current (p, γ); per-instance

	// Branch-free row layout, derived once at Compile time and shared by
	// clones: stateAct[s] is the index of state s's first action and
	// actStart[a] the index of action a's first transition, so the fast
	// sweep variants (see fast.go) walk rows without decoding the
	// metaNewAction flag per transition.
	stateAct []int32
	actStart []int64
	// tiles are the cache-block boundaries of the relaxation sweeps: tile
	// t covers states [tiles[t], tiles[t+1]), cut so one tile's transition
	// stream fits in an L2-sized block. Shared by clones.
	tiles []int32

	h, next []float64 // value-iteration buffers; per-instance

	// Per-instance scratch of the fast sweep variants, built lazily and
	// never shared: wr caches the β-weighted rewards wr[k] = P(k)·r_β(k)
	// of the current (probs, β) resolution, and the 32-suffixed fields are
	// the float32 explorer's buffers (see explore32.go).
	wr          []float64
	wrBeta      float64
	wrValid     bool
	wr32        []float32
	wr32Beta    float64
	wr32Valid   bool
	h32, next32 []float32

	workers int // sweep parallelism; 0 = runtime.NumCPU()
}

// minStatesPerWorker keeps small models on the serial fast path: one
// compiled value-iteration sweep costs tens of nanoseconds per state, so a
// goroutine is only worth spawning for chunks of at least this many states.
const minStatesPerWorker = 1 << 11

// SetWorkers sets the number of goroutines used per value-iteration sweep
// by MeanPayoff, GreedyPolicy and EvalERRev on this instance. n > 0 forces
// exactly n (capped at the state count); n <= 0 — the initial state — uses
// runtime.NumCPU(), reduced automatically when the model is too small for
// fan-out to pay off. The worker count never affects results, only
// wall-clock time.
func (c *Compiled) SetWorkers(n int) { c.workers = n }

// sweepWorkers resolves the effective per-sweep parallelism for this model
// size.
func (c *Compiled) sweepWorkers() int {
	if c.workers > 0 {
		return c.workers
	}
	return par.Grain(c.NumStates(), par.Workers(0), minStatesPerWorker)
}

// Clone returns an independent solver over the same compiled transition
// structure. The immutable arrays (transition ranges, destinations,
// metadata, law table) are shared with the receiver; the mutable per-solve
// state (resolved probabilities, value vectors, parameters, worker count)
// is copied. Distinct clones are safe for concurrent use, which is how the
// sweep orchestration in package selfishmining gives each worker its own
// solver while compiling every attack shape once.
func (c *Compiled) Clone() *Compiled {
	nc := &Compiled{
		p:          c.p,
		gamma:      c.gamma,
		laws:       c.laws,
		rate:       c.rate,
		maxSigma:   c.maxSigma,
		transStart: c.transStart,
		dst:        c.dst,
		meta:       c.meta,
		stateAct:   c.stateAct,
		actStart:   c.actStart,
		tiles:      c.tiles,
		probs:      append([]float32(nil), c.probs...),
		h:          append([]float64(nil), c.h...),
		next:       make([]float64, len(c.next)),
		workers:    c.workers,
	}
	// The fast-path scratch (wr, the float32 buffers) is deliberately not
	// carried over: it is lazily rebuilt per instance on first use.
	return nc
}

// Compile builds the flattened transition structure from a family source
// and resolves probabilities at the initial chain parameters (p, γ).
//
// The returned Compiled retains src's BlockRate method (and therefore the
// source value) for its lifetime; sources holding large exploration state
// should free everything that bound does not need once Compile returns
// (see families.Compile).
func Compile(src Source, p, gamma float64) (*Compiled, error) {
	sp := obs.StartSpan(compileSeconds)
	defer func() { sp.End(); compilesTotal.Inc() }()
	laws := src.Laws()
	if len(laws) == 0 || len(laws) > MaxLaws {
		return nil, fmt.Errorf("kernel: law table has %d entries, need 1..%d", len(laws), MaxLaws)
	}
	n := src.NumStates()
	if n <= 0 {
		return nil, fmt.Errorf("kernel: source has %d states", n)
	}
	c := &Compiled{
		laws:       laws,
		rate:       src.BlockRate,
		transStart: make([]int64, n+1),
	}
	// First pass: count transitions.
	var buf []Raw
	var total int64
	for s := 0; s < n; s++ {
		c.transStart[s] = total
		na := src.NumActions(s)
		if na <= 0 {
			return nil, fmt.Errorf("kernel: state %d has %d actions, need >= 1", s, na)
		}
		for a := 0; a < na; a++ {
			buf = src.RawTransitions(s, a, buf[:0])
			if len(buf) == 0 {
				return nil, fmt.Errorf("kernel: state %d action %d has no successors", s, a)
			}
			total += int64(len(buf))
		}
	}
	c.transStart[n] = total
	c.dst = make([]int32, total)
	c.meta = make([]uint32, total)
	c.probs = make([]float32, total)
	// Second pass: fill.
	var k int64
	for s := 0; s < n; s++ {
		na := src.NumActions(s)
		for a := 0; a < na; a++ {
			buf = src.RawTransitions(s, a, buf[:0])
			for i, r := range buf {
				if int(r.Kind) >= len(laws) {
					return nil, fmt.Errorf("kernel: state %d action %d: law index %d outside table of %d", s, a, r.Kind, len(laws))
				}
				if r.RA > MaxReward || r.RH > MaxReward {
					return nil, fmt.Errorf("kernel: state %d action %d: reward counts (%d, %d) exceed %d", s, a, r.RA, r.RH, MaxReward)
				}
				if r.Dst < 0 || r.Dst >= n {
					return nil, fmt.Errorf("kernel: state %d action %d: destination %d out of range", s, a, r.Dst)
				}
				if int(r.Sigma) > c.maxSigma {
					c.maxSigma = int(r.Sigma)
				}
				mv := uint32(r.Kind) |
					uint32(r.Sigma)<<metaSigmaShift |
					uint32(r.RH)<<metaRHShift |
					uint32(r.RA)<<metaRAShift
				if i == 0 {
					mv |= metaNewAction
				}
				c.dst[k] = int32(r.Dst)
				c.meta[k] = mv
				k++
			}
		}
	}
	c.h = make([]float64, n)
	c.next = make([]float64, n)
	c.buildRowLayout()
	if err := c.SetChainParams(p, gamma); err != nil {
		return nil, err
	}
	return c, nil
}

// buildRowLayout derives the branch-free row layout and the cache-block
// tiling from the packed metadata (see the struct fields). It runs once
// per Compile; the derived arrays are immutable and shared by clones.
func (c *Compiled) buildRowLayout() {
	n := c.NumStates()
	var actions int64
	for _, mv := range c.meta {
		if mv&metaNewAction != 0 {
			actions++
		}
	}
	c.stateAct = make([]int32, n+1)
	c.actStart = make([]int64, actions+1)
	var a int64
	for s := 0; s < n; s++ {
		c.stateAct[s] = int32(a)
		for k := c.transStart[s]; k < c.transStart[s+1]; k++ {
			if c.meta[k]&metaNewAction != 0 {
				c.actStart[a] = k
				a++
			}
		}
	}
	c.stateAct[n] = int32(a)
	c.actStart[a] = c.transStart[n]
	// Tile boundaries: cut whenever the pending tile's transition stream
	// would exceed the L2-sized block (every tile holds >= 1 state).
	c.tiles = c.tiles[:0]
	c.tiles = append(c.tiles, 0)
	var inTile int64
	for s := 0; s < n; s++ {
		rowTrans := c.transStart[s+1] - c.transStart[s]
		if inTile > 0 && inTile+rowTrans > gsTileTransitions {
			c.tiles = append(c.tiles, int32(s))
			inTile = 0
		}
		inTile += rowTrans
	}
	c.tiles = append(c.tiles, int32(n))
}

// P returns the adversary resource fraction last set.
func (c *Compiled) P() float64 { return c.p }

// Gamma returns the switching probability last set.
func (c *Compiled) Gamma() float64 { return c.gamma }

// BlockRate evaluates the family's permanent-block-rate lower bound at the
// current chain parameters; it calibrates the gain tolerance an ε-accurate
// binary search on β needs (see analysis.AnalyzeCompiled).
func (c *Compiled) BlockRate() float64 { return c.rate(c.p, c.gamma) }

// BlockRateAt evaluates the family's permanent-block-rate lower bound at
// explicit chain parameters, without touching the instance's resolved
// state — the batched analysis driver uses it to calibrate each lane's
// tolerance from one shared Compiled.
func (c *Compiled) BlockRateAt(p, gamma float64) float64 { return c.rate(p, gamma) }

// Values returns a copy of the current value vector — after a solve, the
// converged relative values. Feed it to SetValues on a Compiled over the
// same structure (any chain parameters) to warm-start a related solve; the
// service layer uses this to seed solves at nearby p from solved neighbors.
func (c *Compiled) Values() []float64 {
	return append([]float64(nil), c.h...)
}

// SetValues installs v as the value vector, to be picked up by the next
// MeanPayoff call with KeepValues set. The warm start changes only the
// number of sweeps a solve needs, never a certified outcome: every sweep's
// gain bracket contains the optimal gain regardless of the starting vector,
// so sign-only solves still decide the true sign (see MeanPayoff).
func (c *Compiled) SetValues(v []float64) error {
	if len(v) != len(c.h) {
		return fmt.Errorf("kernel: warm-start vector has %d entries, model has %d states", len(v), len(c.h))
	}
	copy(c.h, v)
	return nil
}

// NumStates returns the state count.
func (c *Compiled) NumStates() int { return len(c.transStart) - 1 }

// NumTransitions returns the total transition count.
func (c *Compiled) NumTransitions() int64 { return c.transStart[c.NumStates()] }

// SetChainParams re-resolves transition probabilities for new (p, γ)
// through the family's law table without recompiling the structure, and
// clears the warm-start state.
func (c *Compiled) SetChainParams(p, gamma float64) error {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("kernel: adversary resource p = %v outside [0, 1]", p)
	}
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return fmt.Errorf("kernel: switching probability gamma = %v outside [0, 1]", gamma)
	}
	c.p, c.gamma = p, gamma
	c.resolveProbs()
	// The cached weighted rewards fold the probabilities in, so they are
	// stale for the new resolution.
	c.wrValid, c.wr32Valid = false, false
	return nil
}

// resolveProbs evaluates the law table for the current chain parameters.
// Laws are pure in (p, γ, σ), so each (law, σ) pair is evaluated exactly
// once into a lookup table and the per-transition loop is pure reads.
func (c *Compiled) resolveProbs() {
	p, gamma := c.p, c.gamma
	vals := make([][]float64, len(c.laws))
	for li, law := range c.laws {
		lv := make([]float64, c.maxSigma+1)
		for s := 0; s <= c.maxSigma; s++ {
			lv[s] = law(p, gamma, s)
		}
		vals[li] = lv
	}
	for k := range c.meta {
		mv := c.meta[k]
		sigma := (mv >> metaSigmaShift) & 0xFF
		c.probs[k] = float32(vals[mv&metaLawMask][sigma])
	}
}

// CheckStochastic verifies that every action's resolved probabilities are
// non-negative, finite, and sum to 1 within tol at the current chain
// parameters — the structural well-formedness check model families run in
// their tests.
func (c *Compiled) CheckStochastic(tol float64) error {
	n := c.NumStates()
	for s := 0; s < n; s++ {
		var sum float64
		first := true
		check := func() error {
			if math.Abs(sum-1) > tol {
				return fmt.Errorf("kernel: state %d: action probabilities sum to %v, want 1", s, sum)
			}
			return nil
		}
		for k := c.transStart[s]; k < c.transStart[s+1]; k++ {
			if c.meta[k]&metaNewAction != 0 && !first {
				if err := check(); err != nil {
					return err
				}
				sum = 0
			}
			first = false
			pr := float64(c.probs[k])
			if pr < 0 || math.IsNaN(pr) || math.IsInf(pr, 0) {
				return fmt.Errorf("kernel: state %d: transition probability %v", s, pr)
			}
			sum += pr
		}
		if err := check(); err != nil {
			return err
		}
	}
	return nil
}

// rewardTable fills tab with the β-view rewards indexed by the packed
// (ra, rh) bits.
func rewardTable(tab *[rwdTableSize]float64, beta float64) {
	for idx := 0; idx < rwdTableSize; idx++ {
		ra := float64(idx >> (metaRAShift - metaRwdShift))
		rh := float64(idx & ((1 << (metaRAShift - metaRwdShift)) - 1))
		tab[idx] = ra - beta*(ra+rh)
	}
}

// Result reports a compiled solve, mirroring solve.Result.
type Result struct {
	Gain      float64
	Lo, Hi    float64
	Iters     int
	Converged bool
}

// SignKnown reports whether the bracket determines the sign of the gain.
func (r *Result) SignKnown() bool { return r.Lo > 0 || r.Hi < 0 }

// Options tunes the compiled solver.
type Options struct {
	Tol      float64 // gain bracket width target; default 1e-7
	MaxIter  int     // sweep budget; default 500000
	Damping  float64 // aperiodicity mix; default 0.95
	SignOnly bool    // stop when the bracket excludes zero
	// KeepValues reuses the value vector currently on this Compiled
	// instance — from the previous solve, or installed with SetValues — as
	// a warm start (valid across β and nearby (p, γ)).
	KeepValues bool
	// Variant selects the sweep kernel. The zero value (VariantJacobi) is
	// the bitwise-deterministic default documented on MeanPayoffCtx; any
	// other variant routes through the fast path in fast.go, which keeps
	// the certified bracket sound but not the sweep-by-sweep trajectory.
	Variant Variant
	// Omega is the SOR over-relaxation factor in (0, 2); 0 picks the
	// variant's default. Ignored outside VariantSOR.
	Omega float64
}

// signOnlyFloorFrac scales Tol down to the bracket width at which a
// sign-only solve gives up on certifying a sign and concludes the gain is
// numerically zero. Sign-only solves deliberately do NOT stop at Tol with
// the sign still open: a trajectory-dependent near-zero midpoint would make
// binary-search decisions depend on the starting vector, breaking the
// bitwise reproducibility of warm-started analyses. Iterating until the
// bracket excludes zero makes every decision exact — identical for any warm
// start and worker count — and the Tol·1e-6 floor merely guards termination
// when the gain is indistinguishable from zero.
const signOnlyFloorFrac = 1e-6

// signOnlyStallSweeps bounds the post-Tol grind: on large models the
// per-sweep floating-point noise in the chunk extrema can hold the bracket
// width above the Tol·signOnlyFloorFrac floor indefinitely. Once the width
// is below Tol (where a plain solve would already have stopped) and has
// not improved for this many consecutive sweeps, the solve concludes the
// gain is numerically zero rather than burning the whole MaxIter budget.
//
// While the bracket contracts geometrically (anywhere above the noise
// floor) every sweep improves the width by far more than one ULP, so the
// counter never fires and cannot perturb the exact-sign determinism
// argument; it engages only when the width is pinned at the noise floor,
// where a |gain| on the order of that noise (~1e-14 of the value scale) is
// the one residual case in which two solver trajectories could still
// disagree — a band six orders of magnitude narrower than the Tol-width
// midpoint rule this scheme replaced.
const signOnlyStallSweeps = 512

func (o *Options) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 500000
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.95
	}
}

// MeanPayoff runs relative value iteration for reward r_β over the compiled
// structure with no cancellation; it is MeanPayoffCtx under
// context.Background().
func (c *Compiled) MeanPayoff(beta float64, opts Options) (*Result, error) {
	return c.MeanPayoffCtx(context.Background(), beta, opts)
}

// MeanPayoffCtx runs relative value iteration for reward r_β over the
// compiled structure. Semantics match solve.MeanPayoff on the equivalent
// model.
//
// Each sweep is parallelized across SetWorkers goroutines; the result is
// bitwise identical at any worker count (see the Compiled type comment).
// In SignOnly mode the solve runs until the bracket excludes zero (or
// shrinks below Tol·signOnlyFloorFrac), so the certified sign is the true
// sign of the gain — independent of any KeepValues warm start.
//
// ctx is checked once per sweep, at the sweep boundary and never inside
// one, so a solve that runs to completion performs exactly the serial
// floating-point computation regardless of the context — cancellation can
// only decide WHETHER the next sweep starts, not what any sweep computes.
// On cancellation the partial Result (with the sweeps done so far in
// Iters) is returned alongside an error wrapping ctx.Err().
func (c *Compiled) MeanPayoffCtx(ctx context.Context, beta float64, opts Options) (*Result, error) {
	opts.defaults()
	variant := opts.Variant.String()
	sp := obs.StartSpan(solveSeconds.With(variant))
	res, err := c.meanPayoffCtx(ctx, beta, opts)
	sp.End()
	solvesTotal.With(variant).Inc()
	if res != nil {
		solveSweeps.With(variant).Add(uint64(res.Iters))
	}
	return res, err
}

// meanPayoffCtx is MeanPayoffCtx behind the phase instruments.
func (c *Compiled) meanPayoffCtx(ctx context.Context, beta float64, opts Options) (*Result, error) {
	if opts.Variant != VariantJacobi {
		return c.meanPayoffFast(ctx, beta, opts)
	}
	n := c.NumStates()
	if !opts.KeepValues {
		for i := range c.h {
			c.h[i] = 0
		}
	}
	var rwd [rwdTableSize]float64
	rewardTable(&rwd, beta)
	tau := opts.Damping
	res := &Result{Lo: math.Inf(-1), Hi: math.Inf(1)}
	h, next := c.h, c.next
	w := c.sweepWorkers()
	red := par.NewMinMax(par.NumChunks(n, w))
	lastWidth, stall := math.Inf(1), 0
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			c.h, c.next = h, next
			res.Gain = (res.Lo + res.Hi) / 2
			return res, fmt.Errorf("kernel: compiled solve canceled after %d sweeps: %w", res.Iters, err)
		}
		hv, nx := h, next // chunk workers read hv, write disjoint slots of nx
		par.For(n, w, func(chunk, from, to int) {
			lo, hi := math.Inf(1), math.Inf(-1)
			for s := from; s < to; s++ {
				kEnd := c.transStart[s+1]
				best := math.Inf(-1)
				var q float64
				for k := c.transStart[s]; k < kEnd; k++ {
					mv := c.meta[k]
					if mv&metaNewAction != 0 && k > c.transStart[s] {
						if q > best {
							best = q
						}
						q = 0
					}
					q += float64(c.probs[k]) * (rwd[(mv>>metaRwdShift)&metaRwdMask] + hv[c.dst[k]])
				}
				if q > best {
					best = q
				}
				d := best - hv[s]
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
				nx[s] = hv[s] + tau*d
			}
			red.Set(chunk, lo, hi)
		})
		lo, hi := red.Reduce()
		par.Shift(next, next[0], w)
		h, next = next, h
		res.Iters = iter
		if lo > res.Lo {
			res.Lo = lo
		}
		if hi < res.Hi {
			res.Hi = hi
		}
		width := res.Hi - res.Lo
		if opts.SignOnly {
			if width < opts.Tol {
				if width < lastWidth {
					stall = 0
				} else {
					stall++
				}
			}
			res.Converged = res.SignKnown() ||
				width < opts.Tol*signOnlyFloorFrac ||
				stall >= signOnlyStallSweeps
		} else {
			res.Converged = width < opts.Tol
		}
		lastWidth = width
		if res.Converged {
			break
		}
	}
	c.h, c.next = h, next
	res.Gain = (res.Lo + res.Hi) / 2
	if !res.Converged {
		return res, fmt.Errorf("kernel: compiled solve: bracket [%v, %v] after %d sweeps without convergence", res.Lo, res.Hi, res.Iters)
	}
	return res, nil
}

// GreedyPolicy extracts the policy that is greedy with respect to the
// current value vector (from the last MeanPayoff call) under reward r_β.
// The extraction sweep is parallelized across SetWorkers goroutines; each
// state's choice depends only on the frozen value vector, so the policy is
// identical at any worker count.
func (c *Compiled) GreedyPolicy(beta float64) []int {
	n := c.NumStates()
	var rwd [rwdTableSize]float64
	rewardTable(&rwd, beta)
	policy := make([]int, n)
	h := c.h
	par.For(n, c.sweepWorkers(), func(_, from, to int) {
		c.greedyRange(policy, h, &rwd, from, to)
	})
	return policy
}

// greedyRange fills policy[from:to] with the r_β-greedy action indices.
func (c *Compiled) greedyRange(policy []int, h []float64, rwd *[rwdTableSize]float64, from, to int) {
	for s := from; s < to; s++ {
		kEnd := c.transStart[s+1]
		best := math.Inf(-1)
		bestA, curA := 0, -1
		var q float64
		for k := c.transStart[s]; k < kEnd; k++ {
			mv := c.meta[k]
			if mv&metaNewAction != 0 {
				if curA >= 0 && q > best {
					best, bestA = q, curA
				}
				curA++
				q = 0
			}
			q += float64(c.probs[k]) * (rwd[(mv>>metaRwdShift)&metaRwdMask] + h[c.dst[k]])
		}
		if curA >= 0 && q > best {
			bestA = curA
		}
		policy[s] = bestA
	}
}

// EvalERRev brackets the expected relative revenue of a fixed policy with
// no cancellation; it is EvalERRevCtx under context.Background().
func (c *Compiled) EvalERRev(policy []int, opts Options) (float64, error) {
	return c.EvalERRevCtx(context.Background(), policy, opts)
}

// EvalERRevCtx brackets the expected relative revenue of a fixed policy by
// two iterative fixed-policy gain evaluations: gain(r_A) / gain(r_A + r_H).
// ctx is checked at sweep boundaries, exactly as in MeanPayoffCtx.
func (c *Compiled) EvalERRevCtx(ctx context.Context, policy []int, opts Options) (float64, error) {
	gainA, err := c.evalPolicyGain(ctx, policy, true, opts)
	if err != nil {
		return 0, fmt.Errorf("kernel: evaluating adversary gain: %w", err)
	}
	gainTotal, err := c.evalPolicyGain(ctx, policy, false, opts)
	if err != nil {
		return 0, fmt.Errorf("kernel: evaluating total gain: %w", err)
	}
	if gainTotal <= 0 {
		return 0, fmt.Errorf("kernel: total block rate %v is not positive", gainTotal)
	}
	return gainA / gainTotal, nil
}

// evalPolicyGain runs fixed-policy relative value iteration with reward
// r_A (advOnly) or r_A + r_H. Sweeps are parallelized like MeanPayoff and
// equally independent of the worker count; ctx is checked between sweeps.
func (c *Compiled) evalPolicyGain(ctx context.Context, policy []int, advOnly bool, opts Options) (float64, error) {
	opts.defaults()
	n := c.NumStates()
	if len(policy) != n {
		return 0, fmt.Errorf("kernel: policy covers %d states, model has %d", len(policy), n)
	}
	var rwd [rwdTableSize]float64
	for idx := 0; idx < rwdTableSize; idx++ {
		ra := float64(idx >> (metaRAShift - metaRwdShift))
		rh := float64(idx & ((1 << (metaRAShift - metaRwdShift)) - 1))
		if advOnly {
			rwd[idx] = ra
		} else {
			rwd[idx] = ra + rh
		}
	}
	h := make([]float64, n)
	next := make([]float64, n)
	tau := opts.Damping
	resLo, resHi := math.Inf(-1), math.Inf(1)
	w := c.sweepWorkers()
	red := par.NewMinMax(par.NumChunks(n, w))
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return (resLo + resHi) / 2, fmt.Errorf("kernel: policy evaluation canceled after %d sweeps: %w", iter-1, err)
		}
		hv, nx := h, next
		par.For(n, w, func(chunk, from, to int) {
			lo, hi := math.Inf(1), math.Inf(-1)
			for s := from; s < to; s++ {
				// Walk to the policy[s]-th action of state s.
				k := c.transStart[s]
				kEnd := c.transStart[s+1]
				act := -1
				var q float64
				for ; k < kEnd; k++ {
					mv := c.meta[k]
					if mv&metaNewAction != 0 {
						act++
						if act > policy[s] {
							break
						}
					}
					if act == policy[s] {
						q += float64(c.probs[k]) * (rwd[(mv>>metaRwdShift)&metaRwdMask] + hv[c.dst[k]])
					}
				}
				d := q - hv[s]
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
				nx[s] = hv[s] + tau*d
			}
			red.Set(chunk, lo, hi)
		})
		lo, hi := red.Reduce()
		par.Shift(next, next[0], w)
		h, next = next, h
		if lo > resLo {
			resLo = lo
		}
		if hi < resHi {
			resHi = hi
		}
		if resHi-resLo < opts.Tol {
			return (resLo + resHi) / 2, nil
		}
	}
	return (resLo + resHi) / 2, fmt.Errorf("kernel: policy evaluation did not converge: bracket [%v, %v]", resLo, resHi)
}
