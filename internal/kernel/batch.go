package kernel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/par"
)

// This file implements the batched multi-lane mean-payoff kernel: K
// parameter instances ("lanes") over ONE shared compiled transition
// structure, solved in a single value-iteration loop. Per sweep, each CSR
// row's column indices and packed law/reward metadata are read once and
// applied to K interleaved value lanes, so the irregular structure traffic
// that dominates a sweep is amortized K ways while the per-lane
// floating-point work stays exactly the solo Jacobi sequence.
//
// Bitwise contract: lane ln of a batched solve is bitwise identical to a
// solo Compiled.MeanPayoffCtx at the same (p, γ, β, Tol, warm start) —
// same Gain/Lo/Hi, same Iters, same converged value vector. The argument:
//
//   - Lanes never mix. Every floating-point op indexes a single lane's
//     probability, reward and value slots, in the same order (transition
//     ascending, action flush points unchanged) as the solo sweep.
//   - The per-lane probabilities are materialized through the identical
//     law-table path as Compiled.resolveProbs (float64 law evaluation,
//     then one float64→float32 round), so pr[lane] equals the solo probs[k].
//   - The gain bracket uses the same exact min/max chunk reduction as the
//     solo kernel; min/max are order-independent, so the chunk count (and
//     therefore the worker count and lane count) cannot perturb it.
//   - A converged lane retires: its slots are frozen (copied out, never
//     read or written again) and the remaining lanes' per-lane op
//     sequences are unaffected — each lane's arithmetic never touched the
//     retired lane's slots in the first place.
//
// Retirement also means a batch of lanes with different convergence speeds
// costs max(iters) sweeps of structure traffic, not sum(iters).

// LaneParams fixes one lane's chain parameters. The β view of the reward
// is chosen per solve (the betas argument of BatchMeanPayoff), matching
// Algorithm 1's shape: (p, γ) stays constant across a binary search on β.
type LaneParams struct {
	P     float64 // adversary resource fraction in [0, 1]
	Gamma float64 // switching probability in [0, 1]
}

// BatchOptions tunes one batched solve. Fields mirror Options lane-wise.
type BatchOptions struct {
	// Tol holds the per-lane gain bracket width target, len NumLanes; nil
	// or non-positive entries default to 1e-7. Algorithm 1 calibrates it
	// per lane because the required gain resolution scales with the lane's
	// block rate at (p, γ).
	Tol []float64
	// MaxIter bounds the shared sweep count; default 500000.
	MaxIter int
	// Damping is the aperiodicity mix shared by all lanes; default 0.95.
	Damping float64
	// SignOnly stops each lane as soon as its bracket excludes zero, with
	// exactly the floor and stall semantics of Options.SignOnly.
	SignOnly bool
	// KeepValues starts every lane from its current vector (the previous
	// solve's result, or SetValues); lanes without one start from zero,
	// exactly like a cold solo solve.
	KeepValues bool
}

// Batch solves K parameter lanes over one shared compiled structure. It
// borrows the donor's immutable arrays (transition ranges, destinations,
// metadata, law table) and owns lane-major value/probability strips, so
// constructing a Batch does not clone the structure.
//
// A Batch is not safe for concurrent use, and the donor Compiled must not
// be recompiled while the Batch is alive (SetChainParams on the donor is
// fine: the Batch materialized its own per-lane probabilities).
type Batch struct {
	c     *Compiled
	k     int
	lanes []LaneParams

	probs []float32 // lane-major probabilities: probs[t*k+lane]
	rwd   []float64 // lane-major β-view reward table: rwd[idx*k+lane]

	h, next []float64 // lane-major value buffers: h[s*k+lane]

	cur [][]float64 // per-lane value vectors carried between solves
	has []bool      // cur[lane] holds a vector

	workers int

	// Per-solve scratch, sized on first use and reused so the steady-state
	// solve loop allocates nothing beyond the results slice.
	act       []int     // active lanes, ascending
	q, best   []float64 // per-chunk action/state accumulators, chunks*k
	los, his  []float64 // per-chunk bracket extrema, chunks*k
	shift     []float64 // per-lane relative-value normalization shift
	tol       []float64
	resLo     []float64
	resHi     []float64
	lastWidth []float64
	stall     []int
	laneStart []int // global sweep index each lane's current solve began after

	tp []uint64 // packed transition program for the assembly sweep; see buildTransProgram
}

// NewBatch builds a batch of lanes over c's compiled structure, resolving
// each lane's transition probabilities through the family law table
// exactly as Compiled.SetChainParams would.
func NewBatch(c *Compiled, lanes []LaneParams) (*Batch, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("kernel: batch needs at least one lane")
	}
	for i, lp := range lanes {
		if lp.P < 0 || lp.P > 1 || math.IsNaN(lp.P) {
			return nil, fmt.Errorf("kernel: lane %d: adversary resource p = %v outside [0, 1]", i, lp.P)
		}
		if lp.Gamma < 0 || lp.Gamma > 1 || math.IsNaN(lp.Gamma) {
			return nil, fmt.Errorf("kernel: lane %d: switching probability gamma = %v outside [0, 1]", i, lp.Gamma)
		}
	}
	n := c.NumStates()
	k := len(lanes)
	b := &Batch{
		c:     c,
		k:     k,
		lanes: append([]LaneParams(nil), lanes...),
		probs: make([]float32, int(c.NumTransitions())*k),
		rwd:   make([]float64, rwdTableSize*k),
		h:     make([]float64, n*k),
		next:  make([]float64, n*k),
		cur:   make([][]float64, k),
		has:   make([]bool, k),
	}
	for ln := range b.cur {
		b.cur[ln] = make([]float64, n)
	}
	for ln := range lanes {
		b.resolveLane(ln)
	}
	return b, nil
}

// resolveLane materializes lane ln's probability strip, replicating the
// solo resolveProbs path bit for bit: each (law, σ) pair is evaluated once
// in float64 and the per-transition value rounds through float32 exactly
// as the solo probs array does.
func (b *Batch) resolveLane(ln int) {
	c, k := b.c, b.k
	p, gamma := b.lanes[ln].P, b.lanes[ln].Gamma
	vals := make([][]float64, len(c.laws))
	for li, law := range c.laws {
		lv := make([]float64, c.maxSigma+1)
		for s := 0; s <= c.maxSigma; s++ {
			lv[s] = law(p, gamma, s)
		}
		vals[li] = lv
	}
	for t := range c.meta {
		mv := c.meta[t]
		sigma := (mv >> metaSigmaShift) & 0xFF
		b.probs[t*k+ln] = float32(vals[mv&metaLawMask][sigma])
	}
}

// NumLanes returns the lane count K.
func (b *Batch) NumLanes() int { return b.k }

// NumStates returns the shared structure's state count.
func (b *Batch) NumStates() int { return b.c.NumStates() }

// Lane returns lane ln's chain parameters.
func (b *Batch) Lane(ln int) LaneParams { return b.lanes[ln] }

// SetWorkers sets the per-sweep goroutine count, with the same semantics
// as Compiled.SetWorkers; n <= 0 auto-sizes to the machine and the model
// (scaled by the lane count, since each state carries K lanes of work).
func (b *Batch) SetWorkers(n int) { b.workers = n }

func (b *Batch) sweepWorkers() int {
	if b.workers > 0 {
		return b.workers
	}
	per := minStatesPerWorker / b.k
	if per < 1 {
		per = 1
	}
	return par.Grain(b.c.NumStates(), par.Workers(0), per)
}

// Values returns a copy of lane ln's current value vector — after a
// solve, the lane's converged relative values — or nil if the lane has
// none yet. The vector is interchangeable with Compiled.Values.
func (b *Batch) Values(ln int) []float64 {
	if !b.has[ln] {
		return nil
	}
	return append([]float64(nil), b.cur[ln]...)
}

// SetValues installs v as lane ln's value vector, picked up by the next
// solve with KeepValues set — the batched equivalent of
// Compiled.SetValues, with the same warm-start soundness argument.
func (b *Batch) SetValues(ln int, v []float64) error {
	if len(v) != b.c.NumStates() {
		return fmt.Errorf("kernel: warm-start vector has %d entries, model has %d states", len(v), b.c.NumStates())
	}
	copy(b.cur[ln], v)
	b.has[ln] = true
	return nil
}

// ClearValues drops lane ln's value vector, so its next KeepValues solve
// starts cold.
func (b *Batch) ClearValues(ln int) { b.has[ln] = false }

// sizeScratch (re)sizes the per-solve scratch for the given chunk count.
func (b *Batch) sizeScratch(chunks int) {
	k := b.k
	if cap(b.act) < k {
		b.act = make([]int, 0, k)
	}
	if need := chunks * k; cap(b.q) < need {
		b.q = make([]float64, need)
		b.best = make([]float64, need)
		b.los = make([]float64, need)
		b.his = make([]float64, need)
	}
	if b.shift == nil {
		b.shift = make([]float64, k)
		b.tol = make([]float64, k)
		b.resLo = make([]float64, k)
		b.resHi = make([]float64, k)
		b.lastWidth = make([]float64, k)
		b.stall = make([]int, k)
		b.laneStart = make([]int, k)
	}
}

// buildTransProgram packs each transition's sweep-ready operands into one
// word, built once per Batch and shared by every solve: the destination
// row's byte offset (state*64, the 8-lane float64 stride) in the high
// half, the reward row's byte offset in bits 6..31, and the new-action
// flag in bit 0. The assembly sweep then advances two pointers per
// transition (probs +32B, program +8B) instead of decoding meta.
func (b *Batch) buildTransProgram() {
	if b.tp != nil {
		return
	}
	c := b.c
	tp := make([]uint64, len(c.meta))
	for t, mv := range c.meta {
		e := uint64(c.dst[t])*64<<32 | uint64((mv>>metaRwdShift)&metaRwdMask)*64
		if mv&metaNewAction != 0 {
			e |= 1
		}
		tp[t] = e
	}
	b.tp = tp
}

// BatchMeanPayoff runs one batched relative-value-iteration solve over b's
// lanes, lane ln at reward r_{betas[ln]}. It is (*Batch).MeanPayoffCtx by
// another entry point; see there for semantics.
func BatchMeanPayoff(ctx context.Context, b *Batch, betas []float64, opts BatchOptions) ([]Result, error) {
	return b.MeanPayoffCtx(ctx, betas, opts)
}

// LaneSolve is one solve request inside a batched run: the β defining the
// lane's reward view r_β, and the gain bracket width target (non-positive
// defaults to 1e-7, like BatchOptions.Tol entries).
type LaneSolve struct {
	Beta float64
	Tol  float64
}

// BatchRunOptions tunes a batched run; fields are shared by every solve of
// every lane (the per-solve β and tolerance arrive via LaneSolve).
type BatchRunOptions struct {
	// MaxIter bounds each individual lane solve's sweep count; default
	// 500000, exactly the solo Options.MaxIter semantics.
	MaxIter int
	// Damping is the aperiodicity mix shared by all lanes; default 0.95.
	Damping float64
	// SignOnly stops each lane solve as soon as its bracket excludes zero,
	// with the floor and stall semantics of Options.SignOnly.
	SignOnly bool
	// KeepValues starts every lane from its current vector (the previous
	// solve's result, or SetValues); lanes without one start from zero.
	KeepValues bool
}

// MeanPayoffCtx runs relative value iteration for all lanes in one loop,
// lane ln under reward r_{betas[ln]}. Per sweep, the shared structure is
// streamed once; each lane's value update, normalization shift, gain
// bracket and convergence test are computed independently with exactly
// the solo MeanPayoffCtx semantics (including SignOnly's exact-sign rule),
// so every lane's Result and value vector are bitwise identical to a solo
// solve at that lane's parameters and warm start (see the file comment).
//
// Converged lanes retire from the sweep; the solve returns when every
// lane has converged or MaxIter is exhausted (then Converged reports the
// per-lane outcome and the error names the first unconverged lane).
//
// ctx is checked once per sweep, exactly like the solo kernel: the partial
// per-lane Results are returned alongside an error wrapping ctx.Err(),
// and each lane keeps its current vector for a later KeepValues resume.
func (b *Batch) MeanPayoffCtx(ctx context.Context, betas []float64, opts BatchOptions) ([]Result, error) {
	k := b.k
	if len(betas) != k {
		return nil, fmt.Errorf("kernel: batched solve got %d betas for %d lanes", len(betas), k)
	}
	if opts.Tol != nil && len(opts.Tol) != k {
		return nil, fmt.Errorf("kernel: batched solve got %d tolerances for %d lanes", len(opts.Tol), k)
	}
	return b.RunCtx(ctx, BatchRunOptions{
		MaxIter:    opts.MaxIter,
		Damping:    opts.Damping,
		SignOnly:   opts.SignOnly,
		KeepValues: opts.KeepValues,
	}, func(ln int, prev *Result) (LaneSolve, bool) {
		if prev != nil {
			return LaneSolve{}, false // one solve per lane
		}
		t := 0.0
		if opts.Tol != nil {
			t = opts.Tol[ln]
		}
		return LaneSolve{Beta: betas[ln], Tol: t}, true
	})
}

// installSolve arms lane ln for a new solve starting after global sweep
// iter: it materializes the lane's β-view reward column (the same table
// rewardTable builds per lane), resets the lane's bracket and stall state,
// and re-bases the lane's sweep counter. The lane's value column is left
// in place — exactly the solo KeepValues chaining, where solve i+1 starts
// from solve i's converged vector.
func (b *Batch) installSolve(ln int, s LaneSolve, iter int, r *Result) {
	k := b.k
	for idx := 0; idx < rwdTableSize; idx++ {
		ra := float64(idx >> (metaRAShift - metaRwdShift))
		rh := float64(idx & ((1 << (metaRAShift - metaRwdShift)) - 1))
		b.rwd[idx*k+ln] = ra - s.Beta*(ra+rh)
	}
	t := s.Tol
	if t <= 0 {
		t = 1e-7
	}
	b.tol[ln] = t
	b.resLo[ln] = math.Inf(-1)
	b.resHi[ln] = math.Inf(1)
	b.lastWidth[ln] = math.Inf(1)
	b.stall[ln] = 0
	b.laneStart[ln] = iter
	*r = Result{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// RunCtx is the batched solve engine: each lane works through its own
// stream of solves, supplied one at a time by src, while every sweep of
// the shared loop advances all lanes together over one pass of the shared
// structure. src(ln, nil) supplies lane ln's first solve (or reports the
// lane idle); when a lane's solve converges, src(ln, &result) is called
// with the finished Result and either supplies the lane's next solve —
// the lane continues in place, warm-started from its converged vector,
// exactly like solo KeepValues chaining — or retires the lane.
//
// This asynchronous per-lane advancement is what keeps the batch dense: a
// lane that finishes a cheap solve immediately starts its next one instead
// of idling while slower lanes converge, so the full-width sweep (the
// specialized dense path) carries almost all of the work. Per lane the
// solve sequence is bitwise identical to the solo chained solves, since
// lanes never mix and each lane's install/convergence logic is exactly the
// solo kernel's.
//
// The returned slice holds each lane's LAST solve result (zero Result for
// lanes never issued a solve). On cancellation or a lane exhausting
// MaxIter, partial results return with a non-nil error.
func (b *Batch) RunCtx(ctx context.Context, opts BatchRunOptions, src func(ln int, prev *Result) (LaneSolve, bool)) ([]Result, error) {
	sp := obs.StartSpan(batchRunSeconds)
	defer sp.End()
	batchRunsTotal.Inc()
	batchLanesTotal.Add(uint64(b.k))
	k := b.k
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500000
	}
	if opts.Damping <= 0 || opts.Damping > 1 {
		opts.Damping = 0.95
	}
	c := b.c
	n := c.NumStates()
	w := b.sweepWorkers()
	chunks := par.NumChunks(n, w)
	b.sizeScratch(chunks)
	// Pack each lane's starting vector into the lane-major buffer.
	for ln := 0; ln < k; ln++ {
		if opts.KeepValues && b.has[ln] {
			cv := b.cur[ln]
			for s := 0; s < n; s++ {
				b.h[s*k+ln] = cv[s]
			}
		} else {
			for s := 0; s < n; s++ {
				b.h[s*k+ln] = 0
			}
		}
	}
	res := make([]Result, k)
	act := b.act[:0]
	for ln := 0; ln < k; ln++ {
		if s, ok := src(ln, nil); ok {
			b.installSolve(ln, s, 0, &res[ln])
			act = append(act, ln)
		}
	}
	tau := opts.Damping
	h, next := b.h, b.next

	// unpack freezes lane ln's current vector (from the lane-major buffer
	// v) into cur[ln], so retired slots are never read again.
	unpack := func(ln int, v []float64) {
		cv := b.cur[ln]
		for s := 0; s < n; s++ {
			cv[s] = v[s*k+ln]
		}
		b.has[ln] = true
	}

	// The sweep and shift closures are created once per solve and read the
	// loop-carried variables (hv/nx swap, act, dense) through their
	// environment, keeping the steady-state loop allocation-free.
	var hv, nx []float64
	var dense bool
	sweep8 := b.makeSweep8(tau, &hv, &nx)
	asm8, haveAsm := b.asmSweep(tau, &hv, &nx)
	sweep := func(chunk, from, to int) {
		qv := b.q[chunk*k : chunk*k+k]
		bv := b.best[chunk*k : chunk*k+k]
		lov := b.los[chunk*k : chunk*k+k]
		hiv := b.his[chunk*k : chunk*k+k]
		for _, ln := range act {
			lov[ln] = math.Inf(1)
			hiv[ln] = math.Inf(-1)
		}
		for s := from; s < to; s++ {
			kStart, kEnd := c.transStart[s], c.transStart[s+1]
			for _, ln := range act {
				bv[ln] = math.Inf(-1)
				qv[ln] = 0
			}
			for t := kStart; t < kEnd; t++ {
				mv := c.meta[t]
				if mv&metaNewAction != 0 && t > kStart {
					if dense {
						for ln := 0; ln < k; ln++ {
							if qv[ln] > bv[ln] {
								bv[ln] = qv[ln]
							}
							qv[ln] = 0
						}
					} else {
						for _, ln := range act {
							if qv[ln] > bv[ln] {
								bv[ln] = qv[ln]
							}
							qv[ln] = 0
						}
					}
				}
				pb := int(t) * k
				rb := int((mv>>metaRwdShift)&metaRwdMask) * k
				db := int(c.dst[t]) * k
				pr := b.probs[pb : pb+k]
				rw := b.rwd[rb : rb+k]
				hh := hv[db : db+k]
				if dense {
					// All lanes live: a dense inner loop the compiler can
					// bounds-check-eliminate and keep in registers.
					for ln := 0; ln < k; ln++ {
						qv[ln] += float64(pr[ln]) * (rw[ln] + hh[ln])
					}
				} else {
					for _, ln := range act {
						qv[ln] += float64(pr[ln]) * (rw[ln] + hh[ln])
					}
				}
			}
			sb := s * k
			hs := hv[sb : sb+k]
			ns := nx[sb : sb+k]
			for _, ln := range act {
				if qv[ln] > bv[ln] {
					bv[ln] = qv[ln]
				}
				d := bv[ln] - hs[ln]
				if d < lov[ln] {
					lov[ln] = d
				}
				if d > hiv[ln] {
					hiv[ln] = d
				}
				ns[ln] = hs[ln] + tau*d
			}
		}
	}
	shiftFn := func(_, from, to int) {
		for s := from; s < to; s++ {
			sb := s * k
			ns := nx[sb : sb+k]
			if dense {
				for ln := 0; ln < k; ln++ {
					ns[ln] -= b.shift[ln]
				}
			} else {
				for _, ln := range act {
					ns[ln] -= b.shift[ln]
				}
			}
		}
	}

	for iter := 1; len(act) > 0; iter++ {
		if err := ctx.Err(); err != nil {
			for _, ln := range act {
				unpack(ln, h)
				r := &res[ln]
				r.Lo, r.Hi = b.resLo[ln], b.resHi[ln]
				r.Gain = (r.Lo + r.Hi) / 2
			}
			b.h, b.next = h, next
			b.act = act[:0]
			return res, fmt.Errorf("kernel: batched solve canceled after %d sweeps: %w", iter-1, err)
		}
		hv, nx = h, next
		dense = len(act) == k
		// Dispatch order: the assembly sweep, when present, stays on even
		// after lanes retire — it always computes all 8 lanes, and its
		// whole-batch cost is low enough that recomputing a few retired
		// lanes' (frozen-elsewhere, never re-read) slots beats the generic
		// per-lane loop down to two live lanes. Retired slots are write-only
		// from the batch's point of view: their results were frozen by
		// unpack, and the reductions below only visit live lanes, so the
		// extra arithmetic cannot perturb anything (the bitwise argument in
		// the file comment — lanes never mix — covers it).
		switch {
		case haveAsm && k == denseLaneWidth && len(act) >= 2:
			par.For(n, w, asm8)
		case dense && k == denseLaneWidth:
			par.For(n, w, sweep8)
		default:
			par.For(n, w, sweep)
		}
		// Per-lane normalization: capture each lane's new state-0 value
		// before shifting, exactly like par.Shift(next, next[0], w).
		for _, ln := range act {
			b.shift[ln] = nx[ln]
		}
		par.For(n, w, shiftFn)
		h, next = next, h
		// Per-lane exact min/max reduction over chunks, bracket
		// intersection and the solo convergence rule.
		keep := act[:0]
		exhausted := -1
		for _, ln := range act {
			lo, hi := b.los[ln], b.his[ln]
			for ci := 1; ci < chunks; ci++ {
				lo = math.Min(lo, b.los[ci*k+ln])
				hi = math.Max(hi, b.his[ci*k+ln])
			}
			r := &res[ln]
			r.Iters = iter - b.laneStart[ln]
			if lo > b.resLo[ln] {
				b.resLo[ln] = lo
			}
			if hi < b.resHi[ln] {
				b.resHi[ln] = hi
			}
			width := b.resHi[ln] - b.resLo[ln]
			if opts.SignOnly {
				if width < b.tol[ln] {
					if width < b.lastWidth[ln] {
						b.stall[ln] = 0
					} else {
						b.stall[ln]++
					}
				}
				r.Converged = b.resLo[ln] > 0 || b.resHi[ln] < 0 ||
					width < b.tol[ln]*signOnlyFloorFrac ||
					b.stall[ln] >= signOnlyStallSweeps
			} else {
				r.Converged = width < b.tol[ln]
			}
			b.lastWidth[ln] = width
			switch {
			case r.Converged:
				r.Lo, r.Hi = b.resLo[ln], b.resHi[ln]
				r.Gain = (r.Lo + r.Hi) / 2
				if s, ok := src(ln, r); ok {
					// Next solve for this lane: continue in place from the
					// converged vector, exactly solo KeepValues chaining.
					b.installSolve(ln, s, iter, r)
					keep = append(keep, ln)
				} else {
					unpack(ln, h) // freeze at exactly the solo stopping sweep
				}
			case r.Iters >= opts.MaxIter:
				if exhausted < 0 {
					exhausted = ln
				}
				r.Lo, r.Hi = b.resLo[ln], b.resHi[ln]
				r.Gain = (r.Lo + r.Hi) / 2
				unpack(ln, h)
			default:
				keep = append(keep, ln)
			}
		}
		act = keep
		if exhausted >= 0 {
			for _, ln := range act {
				r := &res[ln]
				r.Lo, r.Hi = b.resLo[ln], b.resHi[ln]
				r.Gain = (r.Lo + r.Hi) / 2
				unpack(ln, h)
			}
			b.h, b.next = h, next
			b.act = act[:0]
			return res, fmt.Errorf("kernel: batched solve: lane %d bracket [%v, %v] after %d sweeps without convergence",
				exhausted, res[exhausted].Lo, res[exhausted].Hi, res[exhausted].Iters)
		}
	}
	b.h, b.next = h, next
	b.act = act
	return res, nil
}

// DenseBatchWidth is the lane count the specialized dense sweeps (scalar
// and assembly) are built for. Callers sizing lane groups should prefer
// exactly this width; see denseLaneWidth. When DenseBatchAsm reports true,
// padding a smaller group to this width with duplicate lanes is usually a
// win: the assembly sweep's whole-batch cost is well under two generic
// per-lane passes.
const DenseBatchWidth = denseLaneWidth

// denseLaneWidth is the lane count the hand-specialized dense sweep is
// built for. autoBatchLanes-style sizing should prefer this width: the
// specialized sweep keeps all 8 action accumulators in registers across an
// action span and fully unrolls the lane math behind array-pointer
// conversions, which is where the batched kernel's per-lane advantage over
// the solo sweep actually comes from. Other lane counts run the generic
// sweep, which is correct but carries per-lane loop and bounds-check
// overhead that roughly cancels the shared-structure savings.
const denseLaneWidth = 8

// makeSweep8 builds the dense 8-lane sweep body. It is only called while
// all 8 lanes are active (dense); per lane it performs exactly the solo
// sweep's floating-point sequence — q accumulation in transition order,
// flush-on-new-action maxima, d = best-h, min/max bracket update, damped
// write — so the bitwise contract of the generic sweep carries over
// unchanged. hvp/nxp indirect through the caller's swap variables.
func (b *Batch) makeSweep8(tau float64, hvp, nxp *[]float64) func(chunk, from, to int) {
	c := b.c
	transStart, dst, meta := c.transStart, c.dst, c.meta
	return func(chunk, from, to int) {
		hv, nx := *hvp, *nxp
		probs, rwd := b.probs, b.rwd
		lov := (*[8]float64)(b.los[chunk*8:])
		hiv := (*[8]float64)(b.his[chunk*8:])
		negInf := math.Inf(-1)
		lo0, lo1, lo2, lo3 := math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
		lo4, lo5, lo6, lo7 := math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)
		hi0, hi1, hi2, hi3 := negInf, negInf, negInf, negInf
		hi4, hi5, hi6, hi7 := negInf, negInf, negInf, negInf
		for s := from; s < to; s++ {
			kStart, kEnd := transStart[s], transStart[s+1]
			b0, b1, b2, b3 := negInf, negInf, negInf, negInf
			b4, b5, b6, b7 := negInf, negInf, negInf, negInf
			for t := kStart; ; {
				// One action span: accumulate q in registers, flush once.
				// The flush runs even for an empty transition range, exactly
				// like the generic sweep's final qv-vs-bv comparison.
				var q0, q1, q2, q3, q4, q5, q6, q7 float64
				for span := t; t < kEnd; t++ {
					mv := meta[t]
					if mv&metaNewAction != 0 && t > span {
						break
					}
					pr := (*[8]float32)(probs[int(t)*8:])
					rw := (*[8]float64)(rwd[int((mv>>metaRwdShift)&metaRwdMask)*8:])
					hh := (*[8]float64)(hv[int(dst[t])*8:])
					q0 += float64(pr[0]) * (rw[0] + hh[0])
					q1 += float64(pr[1]) * (rw[1] + hh[1])
					q2 += float64(pr[2]) * (rw[2] + hh[2])
					q3 += float64(pr[3]) * (rw[3] + hh[3])
					q4 += float64(pr[4]) * (rw[4] + hh[4])
					q5 += float64(pr[5]) * (rw[5] + hh[5])
					q6 += float64(pr[6]) * (rw[6] + hh[6])
					q7 += float64(pr[7]) * (rw[7] + hh[7])
				}
				if q0 > b0 {
					b0 = q0
				}
				if q1 > b1 {
					b1 = q1
				}
				if q2 > b2 {
					b2 = q2
				}
				if q3 > b3 {
					b3 = q3
				}
				if q4 > b4 {
					b4 = q4
				}
				if q5 > b5 {
					b5 = q5
				}
				if q6 > b6 {
					b6 = q6
				}
				if q7 > b7 {
					b7 = q7
				}
				if t >= kEnd {
					break
				}
			}
			hs := (*[8]float64)(hv[s*8:])
			ns := (*[8]float64)(nx[s*8:])
			d := b0 - hs[0]
			if d < lo0 {
				lo0 = d
			}
			if d > hi0 {
				hi0 = d
			}
			ns[0] = hs[0] + tau*d
			d = b1 - hs[1]
			if d < lo1 {
				lo1 = d
			}
			if d > hi1 {
				hi1 = d
			}
			ns[1] = hs[1] + tau*d
			d = b2 - hs[2]
			if d < lo2 {
				lo2 = d
			}
			if d > hi2 {
				hi2 = d
			}
			ns[2] = hs[2] + tau*d
			d = b3 - hs[3]
			if d < lo3 {
				lo3 = d
			}
			if d > hi3 {
				hi3 = d
			}
			ns[3] = hs[3] + tau*d
			d = b4 - hs[4]
			if d < lo4 {
				lo4 = d
			}
			if d > hi4 {
				hi4 = d
			}
			ns[4] = hs[4] + tau*d
			d = b5 - hs[5]
			if d < lo5 {
				lo5 = d
			}
			if d > hi5 {
				hi5 = d
			}
			ns[5] = hs[5] + tau*d
			d = b6 - hs[6]
			if d < lo6 {
				lo6 = d
			}
			if d > hi6 {
				hi6 = d
			}
			ns[6] = hs[6] + tau*d
			d = b7 - hs[7]
			if d < lo7 {
				lo7 = d
			}
			if d > hi7 {
				hi7 = d
			}
			ns[7] = hs[7] + tau*d
		}
		lov[0], lov[1], lov[2], lov[3] = lo0, lo1, lo2, lo3
		lov[4], lov[5], lov[6], lov[7] = lo4, lo5, lo6, lo7
		hiv[0], hiv[1], hiv[2], hiv[3] = hi0, hi1, hi2, hi3
		hiv[4], hiv[5], hiv[6], hiv[7] = hi4, hi5, hi6, hi7
	}
}
