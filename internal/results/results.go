// Package results holds the experiment output types shared by the command
// line tools and the benchmark harness: named data series over a parameter
// grid (the paper's Figure 2), runtime tables (the paper's Table 1), and
// CSV / Markdown renderers.
package results

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one curve of a figure: a name and y-values over a shared x-grid.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a set of series over one x-grid.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// AddSeries appends a curve; its length must match the x-grid.
func (f *Figure) AddSeries(name string, values []float64) error {
	if len(values) != len(f.X) {
		return fmt.Errorf("results: series %q has %d values for %d x-points", name, len(values), len(f.X))
	}
	f.Series = append(f.Series, Series{Name: name, Values: values})
	return nil
}

// WriteCSV renders the figure as a CSV with the x column first.
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range f.X {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, formatCell(x))
		for _, s := range f.Series {
			row = append(row, formatCell(s.Values[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the figure as a Markdown table with a title.
func (f *Figure) WriteMarkdown(w io.Writer) error {
	if f.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", f.Title); err != nil {
			return err
		}
	}
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for i, x := range f.X {
		row := make([]string, 0, len(header))
		row = append(row, formatCell(x))
		for _, s := range f.Series {
			row = append(row, formatCell(s.Values[i]))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

func formatCell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.5g", v)
}

// Table is a generic labelled table (used for Table 1 runtimes).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; its length must match the columns.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("results: row has %d cells for %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// Grid builds an inclusive float grid from lo to hi in the given step,
// guarding against floating-point drift on the final point.
func Grid(lo, hi, step float64) []float64 {
	if step <= 0 || hi < lo {
		return nil
	}
	var out []float64
	for i := 0; ; i++ {
		x := lo + float64(i)*step
		if x > hi+step/2 {
			break
		}
		if x > hi {
			x = hi
		}
		out = append(out, x)
	}
	return out
}
