package results

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGrid(t *testing.T) {
	g := Grid(0, 0.3, 0.1)
	want := []float64{0, 0.1, 0.2, 0.3}
	if len(g) != len(want) {
		t.Fatalf("Grid = %v, want %v", g, want)
	}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-9 {
			t.Fatalf("Grid = %v, want %v", g, want)
		}
	}
}

func TestGridSinglePoint(t *testing.T) {
	g := Grid(0.5, 0.5, 0.1)
	if len(g) != 1 || g[0] != 0.5 {
		t.Errorf("Grid = %v, want [0.5]", g)
	}
}

func TestGridInvalid(t *testing.T) {
	if g := Grid(0, 1, 0); g != nil {
		t.Errorf("Grid with zero step = %v, want nil", g)
	}
	if g := Grid(1, 0, 0.1); g != nil {
		t.Errorf("Grid with hi < lo = %v, want nil", g)
	}
}

func TestGridFloatDrift(t *testing.T) {
	// 31 points from 0 to 0.3 in 0.01 steps; drift must not drop the last.
	g := Grid(0, 0.3, 0.01)
	if len(g) != 31 {
		t.Fatalf("len(Grid) = %d, want 31", len(g))
	}
	if math.Abs(g[30]-0.3) > 1e-12 {
		t.Errorf("last point = %v, want 0.3", g[30])
	}
}

func TestFigureAddSeriesValidates(t *testing.T) {
	f := &Figure{X: []float64{1, 2}}
	if err := f.AddSeries("bad", []float64{1}); err == nil {
		t.Fatal("mismatched series accepted")
	}
	if err := f.AddSeries("ok", []float64{1, 2}); err != nil {
		t.Fatalf("AddSeries: %v", err)
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{XLabel: "p", X: []float64{0.1, 0.2}}
	if err := f.AddSeries("honest", []float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSeries("ours", []float64{0.15, math.NaN()}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := buf.String()
	want := "p,honest,ours\n0.1,0.1,0.15\n0.2,0.2,-\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFigureWriteMarkdown(t *testing.T) {
	f := &Figure{Title: "Fig", XLabel: "p", X: []float64{0.1}}
	if err := f.AddSeries("v", []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteMarkdown(&buf); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	out := buf.String()
	for _, frag := range []string{"### Fig", "| p | v |", "| 0.1 | 0.5 |"} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	tb := &Table{Title: "Runtimes", Columns: []string{"attack", "time"}}
	if err := tb.AddRow("d=1", "3.8s"); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	if err := tb.AddRow("only-one-cell"); err == nil {
		t.Fatal("short row accepted")
	}
	var csv, md bytes.Buffer
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(csv.String(), "d=1,3.8s") {
		t.Errorf("CSV missing row: %q", csv.String())
	}
	if err := tb.WriteMarkdown(&md); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	if !strings.Contains(md.String(), "| d=1 | 3.8s |") {
		t.Errorf("markdown missing row: %q", md.String())
	}
}
