package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestGrain(t *testing.T) {
	cases := []struct{ n, workers, min, want int }{
		{100, 8, 10, 8},   // plenty of work per worker
		{100, 8, 25, 4},   // capped at n/min
		{100, 8, 1000, 1}, // too small to split
		{0, 8, 10, 1},     // empty range
		{100, 1, 1, 1},    // serial stays serial
		{100, 8, 0, 8},    // min clamped to 1
	}
	for _, c := range cases {
		if got := Grain(c.n, c.workers, c.min); got != c.want {
			t.Errorf("Grain(%d, %d, %d) = %d, want %d", c.n, c.workers, c.min, got, c.want)
		}
	}
}

// TestForCoversExactly checks that every index of [0, n) is visited exactly
// once, chunks are contiguous, and the chunk count matches NumChunks, for a
// grid of (n, workers) shapes including the degenerate ones.
func TestForCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, w := range []int{-1, 0, 1, 2, 3, 8, 1001} {
			visits := make([]int32, n+1) // +1 so n=0 still allocates
			var calls int32
			For(n, w, func(chunk, lo, hi int) {
				atomic.AddInt32(&calls, 1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i := 0; i < n; i++ {
				if visits[i] != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, visits[i])
				}
			}
			if want := int32(NumChunks(n, w)); calls != want {
				t.Errorf("n=%d w=%d: %d chunk calls, want %d", n, w, calls, want)
			}
		}
	}
}

// TestMinMaxMatchesSerial: the chunked reduction equals a serial running
// min/max for every chunk layout.
func TestMinMaxMatchesSerial(t *testing.T) {
	vals := []float64{3, -1, 4, -1, 5, -9, 2, 6, -5, 3, 5}
	wantLo, wantHi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < wantLo {
			wantLo = v
		}
		if v > wantHi {
			wantHi = v
		}
	}
	for _, w := range []int{1, 2, 3, 5, 11} {
		chunks := NumChunks(len(vals), w)
		red := NewMinMax(chunks)
		For(len(vals), w, func(chunk, lo, hi int) {
			cLo, cHi := vals[lo], vals[lo]
			for i := lo + 1; i < hi; i++ {
				if vals[i] < cLo {
					cLo = vals[i]
				}
				if vals[i] > cHi {
					cHi = vals[i]
				}
			}
			red.Set(chunk, cLo, cHi)
		})
		lo, hi := red.Reduce()
		if lo != wantLo || hi != wantHi {
			t.Errorf("workers=%d: Reduce() = (%v, %v), want (%v, %v)", w, lo, hi, wantLo, wantHi)
		}
	}
}

func TestShift(t *testing.T) {
	for _, w := range []int{1, 3} {
		v := []float64{1, 2, 3, 4, 5}
		Shift(v, v[0], w)
		for i, want := range []float64{0, 1, 2, 3, 4} {
			if v[i] != want {
				t.Fatalf("workers=%d: v[%d] = %v, want %v", w, i, v[i], want)
			}
		}
	}
}

// TestForChunkBoundsStable verifies the determinism contract: boundaries are
// a pure function of (n, workers).
func TestForChunkBoundsStable(t *testing.T) {
	record := func() [][2]int {
		bounds := make([][2]int, NumChunks(1000, 4))
		For(1000, 4, func(chunk, lo, hi int) { bounds[chunk] = [2]int{lo, hi} })
		return bounds
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d bounds changed between runs: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0][0] != 0 || a[len(a)-1][1] != 1000 {
		t.Errorf("chunks do not span [0, 1000): %v", a)
	}
}
