// Package par provides the small deterministic parallelism primitives used
// by the solvers and the sweep orchestration: worker-count normalization and
// a chunked parallel-for over contiguous index ranges.
//
// Determinism contract: For partitions [0, n) into contiguous chunks whose
// boundaries are a pure function of (n, workers). Callers that (a) write
// only to per-index slots of shared output slices and (b) reduce per-chunk
// results with associative, commutative, exact operations (min, max, integer
// sums) produce results bitwise identical to a serial loop, for every worker
// count. This is the argument that makes the parallel value-iteration sweeps
// in internal/core and internal/solve reproducible at any -workers setting.
package par

import (
	"math"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count option: n if positive, otherwise
// runtime.NumCPU(). This is the single defaulting rule for every Workers
// knob in the repository (solve.Options, analysis.Options, the
// selfishmining functional options, and the -workers CLI flags).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Grain caps a worker count so that each worker receives at least min
// indices of an n-sized range, always returning at least 1. It keeps tiny
// problems on the serial fast path where goroutine fan-out would dominate
// the useful work.
func Grain(n, workers, min int) int {
	if min < 1 {
		min = 1
	}
	if w := n / min; workers > w {
		workers = w
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// NumChunks returns the number of chunks For will use: min(workers, n), at
// least 1. Callers size per-chunk reduction buffers with it.
func NumChunks(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// MinMax merges per-chunk extrema of a chunked sweep. Min and max are
// exact, associative, and commutative, so the merged result is bitwise
// identical to a serial running min/max regardless of the chunk layout —
// the reduction half of the package's determinism contract.
type MinMax struct {
	los, his []float64
}

// NewMinMax sizes a reducer for the given chunk count (NumChunks).
func NewMinMax(chunks int) *MinMax {
	return &MinMax{los: make([]float64, chunks), his: make([]float64, chunks)}
}

// Set records chunk's extrema; each chunk owns its slot, so concurrent
// calls from distinct chunks need no locking.
func (r *MinMax) Set(chunk int, lo, hi float64) {
	r.los[chunk], r.his[chunk] = lo, hi
}

// Reduce merges all chunks, after the For call that filled them returned.
func (r *MinMax) Reduce() (lo, hi float64) {
	lo, hi = r.los[0], r.his[0]
	for i := 1; i < len(r.los); i++ {
		lo = math.Min(lo, r.los[i])
		hi = math.Max(hi, r.his[i])
	}
	return lo, hi
}

// Shift subtracts shift from every element of v, chunked over workers: the
// normalization step of relative value iteration. Element updates are
// independent, so the result is identical at any worker count.
func Shift(v []float64, shift float64, workers int) {
	For(len(v), workers, func(_, from, to int) {
		for i := from; i < to; i++ {
			v[i] -= shift
		}
	})
}

// For runs fn over [0, n) split into NumChunks(n, workers) contiguous
// near-equal chunks: fn(chunk, lo, hi) handles indices [lo, hi). The last
// chunk runs inline on the caller's goroutine — the value-iteration loops
// call For twice per sweep, so saving one spawn plus one context switch per
// call matters on the hot path — and the remaining chunks each get a
// goroutine; For returns after all complete.
//
// Chunk boundaries depend only on (n, workers), so any per-chunk state
// indexed by the chunk number is stable across runs.
func For(n, workers int, fn func(chunk, lo, hi int)) {
	chunks := NumChunks(n, workers)
	if chunks == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	for c := 0; c < chunks-1; c++ {
		go func(c int) {
			defer wg.Done()
			fn(c, c*n/chunks, (c+1)*n/chunks)
		}(c)
	}
	fn(chunks-1, (chunks-1)*n/chunks, n)
	wg.Wait()
}
