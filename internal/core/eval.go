package core

import (
	"fmt"

	"repro/internal/linalg"
)

// ERRevOfPolicy computes the exact expected relative revenue of a fixed
// positional strategy σ in the attack MDP:
//
//	ERRev(σ) = gain(r_A) / gain(r_A + r_H)
//
// via stationary analysis of the induced ergodic Markov chain (this is the
// ratio form used in the proof of Theorem 3.1). It materializes the chain
// and is therefore intended for small and medium configurations; large
// configurations use the compiled evaluator.
func ERRevOfPolicy(m *Model, policy []int) (float64, error) {
	n := m.NumStates()
	if len(policy) != n {
		return 0, fmt.Errorf("core: policy covers %d states, model has %d", len(policy), n)
	}
	numVec := make([]float64, n)
	denVec := make([]float64, n)
	entries := make([]linalg.Entry, 0, 4*n)
	var buf []Raw
	p, gamma := m.params.P, m.params.Gamma
	for s := 0; s < n; s++ {
		a := policy[s]
		if a < 0 || a >= m.NumActions(s) {
			return 0, fmt.Errorf("core: policy selects action %d in state %d with %d actions", a, s, m.NumActions(s))
		}
		buf = m.RawTransitions(s, a, buf[:0])
		for _, r := range buf {
			pr := RawProb(r, p, gamma)
			entries = append(entries, linalg.Entry{Row: s, Col: r.Dst, Val: pr})
			numVec[s] += pr * float64(r.RA)
			denVec[s] += pr * (float64(r.RA) + float64(r.RH))
		}
	}
	chain, err := linalg.NewCSR(n, n, entries)
	if err != nil {
		return 0, err
	}
	pi, err := linalg.Stationary(chain, linalg.StationaryOptions{})
	if err != nil {
		return 0, err
	}
	var gNum, gDen float64
	for s := range pi {
		gNum += pi[s] * numVec[s]
		gDen += pi[s] * denVec[s]
	}
	if gDen <= 0 {
		return 0, fmt.Errorf("core: total block rate %v is not positive (degenerate chain)", gDen)
	}
	return gNum / gDen, nil
}
