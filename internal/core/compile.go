package core

import "repro/internal/kernel"

// Compiled is the protocol-agnostic flat-CSR solver of package kernel; the
// fork model compiles onto it via Compile. The alias keeps the historical
// name for callers that predate the kernel split.
type Compiled = kernel.Compiled

// CompiledOptions tunes the compiled solver (kernel.Options).
type CompiledOptions = kernel.Options

// CompiledResult reports a compiled solve (kernel.Result).
type CompiledResult = kernel.Result

// Compile builds the flattened kernel structure for the fork model at the
// given parameters. Only Depth, Forks and MaxLen matter at compile time; P
// and Gamma seed the initial probability resolution and can be changed
// with SetChainParams.
func Compile(params Params) (*Compiled, error) {
	m, err := NewModel(params)
	if err != nil {
		return nil, err
	}
	return kernel.Compile(m, params.P, params.Gamma)
}
