// Package core implements the paper's primary contribution: the selfish
// mining attack on unpredictable efficient-proof-systems blockchains,
// formally modelled as a finite-state MDP (Section 3.2 of the paper).
//
// # State space
//
// A state is a triple (C, O, type):
//
//   - C is a d×f matrix; C[i][j] ∈ {0..l} is the length of the j-th private
//     fork rooted at the main-chain block at depth i (depth 1 = tip).
//   - O ∈ {honest, adversary}^(d-1) records the owners of the main-chain
//     blocks at depths 1..d-1 — exactly the blocks that a fork release can
//     still orphan. Blocks at depth ≥ d are permanent.
//   - type ∈ {mining, honest, adversary} distinguishes the probabilistic
//     mining phase from the adversary's decision points after a block is
//     found.
//
// # Decision-point semantics
//
// At type = honest, the freshly found honest block is *pending*: it has not
// yet landed on the main chain, and the adversary may race it by revealing
// a private fork in the same broadcast round (this is the γ-race). Choosing
// "mine" lets the pending block land, shifting the fork window. At
// type = adversary the adversary's new block has already been appended to
// its private fork (forks are private, so no broadcast race is possible —
// the paper notes a stale tie always loses). This "pending block" reading
// is required to reproduce the paper's experimental observations for
// d = f = 1 (γ-dependence and racing of a single withheld block); the
// paper's printed transition equations apply the honest block inside the
// mining transition, which would make d = 1 attacks γ-independent,
// contradicting Figure 2. The two readings agree on the reachable attack
// dynamics for d ≥ 2 up to re-indexing of fork rows.
//
// # Rewards
//
// A block pays reward at the moment it becomes permanent (its depth reaches
// d): +1 to the adversary counter r_A or the honest counter r_H. The β-family
// of scalar rewards of Section 3.3 is r_β = r_A − β(r_A + r_H); Algorithm 1
// binary-searches β for the zero of the optimal mean payoff.
//
// # Compilation onto the protocol-agnostic kernel
//
// Model implements kernel.Source: its transition kinds are indices into a
// probability-law table (Laws), so Compile flattens the state machine onto
// the shared flat-CSR mean-payoff kernel of package kernel — the same
// kernel every other registered attack-model family (package families)
// solves on. The kernel fans every value-iteration sweep out across worker
// goroutines with bitwise-identical results at any worker count, and its
// Clone support lets one compilation serve a whole pool of concurrent
// solvers (see selfishmining.Sweep); the determinism argument lives with
// the kernel and package par.
package core

import (
	"fmt"
	"math"
)

// Params defines the attack MDP of Section 3.2.
type Params struct {
	// P is the adversary's fraction of the total mining resource, in [0, 1].
	P float64
	// Gamma is the switching probability: the chance honest miners adopt
	// the adversary's chain when a revealed fork ties the pending honest
	// block in a broadcast race. In [0, 1].
	Gamma float64
	// Depth d >= 1: the adversary forks on each of the last d main-chain blocks.
	Depth int
	// Forks f >= 1: private forks maintained per forked block.
	Forks int
	// MaxLen l >= 1: maximal private fork length (finiteness bound).
	MaxLen int
}

// MaxStates bounds the state-space sizes this package will materialize;
// (l+1)^(d·f) · 2^(d-1) · 3 must stay below it.
const MaxStates = 1 << 31

// Validate checks parameter ranges and that the induced state space is
// representable.
func (p Params) Validate() error {
	if p.P < 0 || p.P > 1 || math.IsNaN(p.P) {
		return fmt.Errorf("core: adversary resource P = %v outside [0, 1]", p.P)
	}
	if p.Gamma < 0 || p.Gamma > 1 || math.IsNaN(p.Gamma) {
		return fmt.Errorf("core: switching probability Gamma = %v outside [0, 1]", p.Gamma)
	}
	if p.Depth < 1 {
		return fmt.Errorf("core: attack depth d = %d, need >= 1", p.Depth)
	}
	if p.Forks < 1 {
		return fmt.Errorf("core: forking number f = %d, need >= 1", p.Forks)
	}
	if p.MaxLen < 1 {
		return fmt.Errorf("core: maximal fork length l = %d, need >= 1", p.MaxLen)
	}
	if n, ok := p.stateCount(); !ok {
		return fmt.Errorf("core: state space for d=%d f=%d l=%d exceeds %d states", p.Depth, p.Forks, p.MaxLen, MaxStates)
	} else if n <= 0 {
		return fmt.Errorf("core: degenerate state space size %d", n)
	}
	return nil
}

// stateCount returns 3 · (l+1)^(d·f) · 2^(d-1) and whether it fits MaxStates.
func (p Params) stateCount() (int, bool) {
	n := 3
	for i := 0; i < p.Depth-1; i++ {
		n *= 2
		if n > MaxStates {
			return 0, false
		}
	}
	for i := 0; i < p.Depth*p.Forks; i++ {
		n *= p.MaxLen + 1
		if n > MaxStates {
			return 0, false
		}
	}
	return n, true
}

// NumStates returns the size of the dense state space.
// Params must have been validated.
func (p Params) NumStates() int {
	n, _ := p.stateCount()
	return n
}

// MaxSigma is the largest possible number of concurrent adversary mining
// targets: every fork slot occupied, d·f.
func (p Params) MaxSigma() int { return p.Depth * p.Forks }

// BlockRate returns δ = (1−p)/(1−p+p·d·f), a lower bound on the per-step
// probability that the main chain (eventually) gains a permanent block; it
// lower-bounds |d MP*_β / dβ| and calibrates the solver precision needed for
// an ε-accurate binary search (see the proof of Theorem 3.1 in the paper).
func (p Params) BlockRate() float64 {
	return (1 - p.P) / (1 - p.P + p.P*float64(p.MaxSigma()))
}

func (p Params) String() string {
	return fmt.Sprintf("p=%g gamma=%g d=%d f=%d l=%d", p.P, p.Gamma, p.Depth, p.Forks, p.MaxLen)
}
