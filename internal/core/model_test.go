package core

import (
	"math"
	"testing"

	"repro/internal/mdp"
)

func mustModel(t *testing.T, p Params) *Model {
	t.Helper()
	m, err := NewModel(p)
	if err != nil {
		t.Fatalf("NewModel(%v): %v", p, err)
	}
	return m
}

// TestModelIsValidMDP runs full structural validation (probabilities sum to
// one, destinations in range, every state has an action) on several
// configurations, for both interior and boundary (p, γ).
func TestModelIsValidMDP(t *testing.T) {
	configs := []Params{
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4},
		{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4},
		{P: 0.1, Gamma: 0.25, Depth: 2, Forks: 2, MaxLen: 3},
		{P: 0, Gamma: 0, Depth: 2, Forks: 1, MaxLen: 2},
		{P: 1, Gamma: 1, Depth: 2, Forks: 1, MaxLen: 2},
		{P: 0.3, Gamma: 0.5, Depth: 3, Forks: 1, MaxLen: 3},
	}
	for _, p := range configs {
		t.Run(p.String(), func(t *testing.T) {
			m := mustModel(t, p)
			if err := mdp.Validate(m, 1e-9); err != nil {
				t.Errorf("model invalid: %v", err)
			}
		})
	}
}

// TestMiningTransitionsInitial hand-checks the nature move from the initial
// state of the d=1, f=1 model: σ=1, adversary starts fork (1,1) with
// probability p, honest block pending with probability 1−p.
func TestMiningTransitionsInitial(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4}
	m := mustModel(t, p)
	raw := m.RawTransitions(m.Initial(), 0, nil)
	if len(raw) != 2 {
		t.Fatalf("got %d transitions from initial state, want 2", len(raw))
	}
	s := m.Codec().NewState()
	var sawAdv, sawHon bool
	for _, r := range raw {
		pr := RawProb(r, p.P, p.Gamma)
		m.Codec().Decode(r.Dst, s)
		switch r.Kind {
		case KindAdvMine:
			sawAdv = true
			if math.Abs(pr-0.3) > 1e-12 {
				t.Errorf("adversary win probability = %v, want 0.3 (sigma=1)", pr)
			}
			if s.Phase != AdvTurn || s.ForkLen(1, 1, 1) != 1 {
				t.Errorf("adversary successor wrong: %v", s)
			}
		case KindHonMine:
			sawHon = true
			if math.Abs(pr-0.7) > 1e-12 {
				t.Errorf("honest win probability = %v, want 0.7", pr)
			}
			if s.Phase != PendingHonest || s.ForkLen(1, 1, 1) != 0 {
				t.Errorf("honest successor wrong: %v", s)
			}
		}
		if r.RA != 0 || r.RH != 0 {
			t.Errorf("mining transition carries rewards ra=%d rh=%d, want none", r.RA, r.RH)
		}
	}
	if !sawAdv || !sawHon {
		t.Errorf("missing branches: adv=%v hon=%v", sawAdv, sawHon)
	}
}

// TestSigmaCountsFreshForkPerDepth checks σ at the initial state of d=3,
// f=2: three fresh-fork targets, no nonempty forks.
func TestSigmaCountsFreshForkPerDepth(t *testing.T) {
	p := Params{P: 0.2, Gamma: 0.5, Depth: 3, Forks: 2, MaxLen: 3}
	m := mustModel(t, p)
	raw := m.RawTransitions(m.Initial(), 0, nil)
	// d fresh-fork targets + 1 honest branch.
	if len(raw) != 4 {
		t.Fatalf("got %d transitions, want 4", len(raw))
	}
	for _, r := range raw {
		if r.Sigma != 3 {
			t.Errorf("sigma = %d, want 3", r.Sigma)
		}
	}
	var total float64
	for _, r := range raw {
		total += RawProb(r, p.P, p.Gamma)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", total)
	}
}

// TestForkCapWastesAttempt: a fork at MaxLen still counts toward σ but its
// extension leaves the state's fork lengths unchanged.
func TestForkCapWastesAttempt(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 2}
	m := mustModel(t, p)
	c := m.Codec()
	s := c.NewState()
	s.SetForkLen(1, 1, 1, 2) // at cap
	s.Phase = Mining
	raw := m.RawTransitions(c.Encode(s), 0, nil)
	dst := c.NewState()
	for _, r := range raw {
		if r.Kind != KindAdvMine {
			continue
		}
		c.Decode(r.Dst, dst)
		if dst.ForkLen(1, 1, 1) != 2 {
			t.Errorf("capped fork grew to %d", dst.ForkLen(1, 1, 1))
		}
		if dst.Phase != AdvTurn {
			t.Errorf("phase = %v, want adversary", dst.Phase)
		}
	}
}

// TestPendingHonestRace hand-checks the d=1, f=1 race: with a withheld
// block and a pending honest block, release(1,1,1) must branch γ / 1−γ;
// the win finalizes one adversary block, the loss one honest block.
func TestPendingHonestRace(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.25, Depth: 1, Forks: 1, MaxLen: 4}
	m := mustModel(t, p)
	c := m.Codec()
	s := c.NewState()
	s.SetForkLen(1, 1, 1, 1)
	s.Phase = PendingHonest
	sIdx := c.Encode(s)

	if got := m.NumActions(sIdx); got != 2 {
		t.Fatalf("NumActions = %d, want 2 (mine + one release)", got)
	}
	raw := m.RawTransitions(sIdx, 1, nil)
	if len(raw) != 2 {
		t.Fatalf("race should have 2 branches, got %d", len(raw))
	}
	dst := c.NewState()
	var sawWin, sawLose bool
	for _, r := range raw {
		c.Decode(r.Dst, dst)
		switch r.Kind {
		case KindRaceWin:
			sawWin = true
			if pr := RawProb(r, p.P, p.Gamma); math.Abs(pr-0.25) > 1e-12 {
				t.Errorf("win probability %v, want 0.25", pr)
			}
			// d=1: the revealed block is immediately permanent.
			if r.RA != 1 || r.RH != 0 {
				t.Errorf("win rewards ra=%d rh=%d, want 1,0", r.RA, r.RH)
			}
			if dst.ForkLen(1, 1, 1) != 0 || dst.Phase != Mining {
				t.Errorf("win successor wrong: %v", dst)
			}
		case KindRaceLose:
			sawLose = true
			if pr := RawProb(r, p.P, p.Gamma); math.Abs(pr-0.75) > 1e-12 {
				t.Errorf("lose probability %v, want 0.75", pr)
			}
			if r.RA != 0 || r.RH != 1 {
				t.Errorf("lose rewards ra=%d rh=%d, want 0,1", r.RA, r.RH)
			}
			// The pending honest block lands; the withheld fork shifts out
			// of the d=1 window.
			if dst.ForkLen(1, 1, 1) != 0 || dst.Phase != Mining {
				t.Errorf("lose successor wrong: %v", dst)
			}
		default:
			t.Errorf("unexpected kind %d in race", r.Kind)
		}
	}
	if !sawWin || !sawLose {
		t.Errorf("missing race branches: win=%v lose=%v", sawWin, sawLose)
	}
}

// TestOvertakeOutright: with a fork of length 2 at depth 1 and a pending
// honest block, release(1,1,2) beats the extended chain outright (k > i).
func TestOvertakeOutright(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0, Depth: 1, Forks: 1, MaxLen: 4}
	m := mustModel(t, p)
	c := m.Codec()
	s := c.NewState()
	s.SetForkLen(1, 1, 1, 2)
	s.Phase = PendingHonest
	sIdx := c.Encode(s)
	// Actions: mine, release k=1 (race), release k=2 (outright).
	if got := m.NumActions(sIdx); got != 3 {
		t.Fatalf("NumActions = %d, want 3", got)
	}
	raw := m.RawTransitions(sIdx, 2, nil)
	if len(raw) != 1 || raw[0].Kind != KindSure {
		t.Fatalf("outright overtake should be a single sure transition, got %+v", raw)
	}
	if raw[0].RA != 2 || raw[0].RH != 0 {
		t.Errorf("rewards ra=%d rh=%d, want 2,0 (both revealed blocks final at d=1)", raw[0].RA, raw[0].RH)
	}
	dst := c.NewState()
	c.Decode(raw[0].Dst, dst)
	if dst.ForkLen(1, 1, 1) != 0 || dst.Phase != Mining {
		t.Errorf("successor wrong: %v", dst)
	}
}

// TestReleaseShiftsOwnersAndForks checks the d=3 bookkeeping of a k=i race
// win: owners shift by δ=1, deep forks carry over, the released row's slot
// is consumed.
func TestReleaseShiftsOwnersAndForks(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 3, Forks: 2, MaxLen: 4}
	m := mustModel(t, p)
	c := m.Codec()
	s := c.NewState()
	// Row 2 holds the fork to be released (length 3) and a sibling fork
	// (length 2) that must carry over; row 3 holds a fork whose root falls
	// out of the window after the release. Owners: depth1=honest,
	// depth2=adversary.
	s.SetForkLen(2, 2, 1, 3)
	s.SetForkLen(2, 2, 2, 2)
	s.SetForkLen(2, 3, 1, 1)
	s.O[0] = Honest
	s.O[1] = Adversary
	s.Phase = AdvTurn
	sIdx := c.Encode(s)

	// Find the release(i=2,j=1,k=2) action.
	var relIdx int
	for a := 1; a < m.NumActions(sIdx); a++ {
		if m.ActionLabel(sIdx, a) == "release(i=2,j=1,k=2)" {
			relIdx = a
			break
		}
	}
	if relIdx == 0 {
		t.Fatalf("release(i=2,j=1,k=2) not found among actions")
	}
	raw := m.RawTransitions(sIdx, relIdx, nil)
	if len(raw) != 1 || raw[0].Kind != KindSure {
		t.Fatalf("adversary-turn overtake should be sure, got %+v", raw)
	}
	// δ = k−i+1 = 1. Old depth-2 block (adversary) moves to depth 3 = d:
	// finalized, ra=1. Old tip (honest) is orphaned: no reward.
	if raw[0].RA != 1 || raw[0].RH != 0 {
		t.Errorf("rewards ra=%d rh=%d, want 1,0", raw[0].RA, raw[0].RH)
	}
	dst := c.NewState()
	c.Decode(raw[0].Dst, dst)
	// New owners: depths 1..2 = adversary (k=2 revealed blocks).
	if dst.O[0] != Adversary || dst.O[1] != Adversary {
		t.Errorf("new owners = %v, want [a a]", dst.O)
	}
	// δ = 1, so new row 3 inherits old row 2: the released slot (j=1) is
	// consumed, the sibling fork (j=2, length 2) carries over. The old
	// row-3 fork's root sinks to depth 4 > d and is dropped. The remainder
	// (3−2 = 1 block) rides on the new tip.
	if got := dst.ForkLen(2, 1, 1); got != 1 {
		t.Errorf("remainder fork length = %d, want 1", got)
	}
	if got := dst.ForkLen(2, 2, 1); got != 0 || dst.ForkLen(2, 2, 2) != 0 {
		t.Errorf("row 2 should be fresh, got %v", dst.C)
	}
	if got := dst.ForkLen(2, 3, 1); got != 0 {
		t.Errorf("consumed slot should be empty, got %d", got)
	}
	if got := dst.ForkLen(2, 3, 2); got != 2 {
		t.Errorf("carried sibling fork length = %d, want 2", got)
	}
	if dst.Phase != Mining {
		t.Errorf("phase = %v, want mining", dst.Phase)
	}
}

// TestLandPendingFinalizesWindowTail: at d=2 the block at depth 1 moves to
// depth 2 = d when an honest block lands, finalizing it for its owner.
func TestLandPendingFinalizesWindowTail(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
	m := mustModel(t, p)
	c := m.Codec()
	s := c.NewState()
	s.O[0] = Adversary
	s.SetForkLen(1, 1, 1, 2)
	s.Phase = PendingHonest
	raw := m.RawTransitions(c.Encode(s), 0, nil)
	if len(raw) != 1 {
		t.Fatalf("landing should be deterministic, got %d transitions", len(raw))
	}
	if raw[0].RA != 1 || raw[0].RH != 0 {
		t.Errorf("rewards ra=%d rh=%d, want 1,0 (adversary block leaves window)", raw[0].RA, raw[0].RH)
	}
	dst := c.NewState()
	c.Decode(raw[0].Dst, dst)
	if dst.O[0] != Honest {
		t.Errorf("new tip owner = %d, want honest", dst.O[0])
	}
	if dst.ForkLen(1, 1, 1) != 0 || dst.ForkLen(1, 2, 1) != 2 {
		t.Errorf("fork shift wrong: %v", dst.C)
	}
}

// TestRewardsBounded: along every transition of a small model,
// ra + rh <= MaxLen (at most one fork of ≤ l blocks finalizes per step,
// plus window spill bounded by the same release).
func TestRewardsBounded(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 3}
	m := mustModel(t, p)
	var buf []Raw
	for s := 0; s < m.NumStates(); s++ {
		for a := 0; a < m.NumActions(s); a++ {
			buf = m.RawTransitions(s, a, buf[:0])
			for _, r := range buf {
				if int(r.RA)+int(r.RH) > p.MaxLen {
					t.Fatalf("state %d action %d: ra+rh = %d exceeds l=%d", s, a, int(r.RA)+int(r.RH), p.MaxLen)
				}
			}
		}
	}
}

// honestEquivalentPolicy releases fork (1,1) immediately whenever it holds a
// block, at adversary decision points, and otherwise keeps mining. Its
// expected relative revenue is exactly p: the released stream and the honest
// stream win mining races in ratio p : (1−p), and no other fork ever
// publishes.
func honestEquivalentPolicy(m *Model) []int {
	c := m.Codec()
	s := c.NewState()
	policy := make([]int, m.NumStates())
	for idx := range policy {
		c.Decode(idx, s)
		if s.Phase == AdvTurn && s.ForkLen(m.Params().Forks, 1, 1) >= 1 {
			policy[idx] = 1 // first enumerated release is (i=1, j=1, k=1)
		}
	}
	return policy
}

// TestHonestEquivalentPolicyERRevIsP is an exact model-level invariant from
// the paper's system model: an adversary that immediately publishes every
// tip-fork block earns relative revenue p, for every γ.
func TestHonestEquivalentPolicyERRevIsP(t *testing.T) {
	for _, gamma := range []float64{0, 0.5, 1} {
		for _, pr := range []float64{0.1, 0.3} {
			p := Params{P: pr, Gamma: gamma, Depth: 2, Forks: 1, MaxLen: 3}
			m := mustModel(t, p)
			policy := honestEquivalentPolicy(m)
			got, err := ERRevOfPolicy(m, policy)
			if err != nil {
				t.Fatalf("ERRevOfPolicy(%v): %v", p, err)
			}
			if math.Abs(got-pr) > 1e-8 {
				t.Errorf("p=%v gamma=%v: ERRev = %v, want %v", pr, gamma, got, pr)
			}
		}
	}
}

// TestNeverReleaseERRevIsZero: a strategy that never publishes earns nothing.
func TestNeverReleaseERRevIsZero(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m := mustModel(t, p)
	policy := make([]int, m.NumStates()) // all zeros: always mine
	got, err := ERRevOfPolicy(m, policy)
	if err != nil {
		t.Fatalf("ERRevOfPolicy: %v", err)
	}
	if math.Abs(got) > 1e-9 {
		t.Errorf("ERRev = %v, want 0", got)
	}
}

// TestBetaRewardConsistency: the RewardBeta view must equal
// r_A − β(r_A + r_H) transition by transition.
func TestBetaRewardConsistency(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m := mustModel(t, p)
	m.SetBeta(0.37)
	var trs []mdp.Transition
	var raws []Raw
	for s := 0; s < m.NumStates(); s++ {
		for a := 0; a < m.NumActions(s); a++ {
			raws = m.RawTransitions(s, a, raws[:0])
			trs = m.Transitions(s, a, trs[:0])
			if len(raws) != len(trs) {
				t.Fatalf("transition count mismatch at (%d,%d)", s, a)
			}
			for i := range raws {
				ra, rh := float64(raws[i].RA), float64(raws[i].RH)
				want := ra - 0.37*(ra+rh)
				if math.Abs(trs[i].Reward-want) > 1e-12 {
					t.Fatalf("reward mismatch at (%d,%d): got %v want %v", s, a, trs[i].Reward, want)
				}
			}
		}
	}
}

// TestModelUnichainProperty: under the always-mine policy the initial state
// must be reachable from every reachable state (the paper's ergodicity
// argument: d consecutive honest landings reset the window).
func TestModelUnichainProperty(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 2}
	m := mustModel(t, p)
	policy := make([]int, m.NumStates())
	chain, _, err := mdp.InducedChain(m, policy)
	if err != nil {
		t.Fatalf("InducedChain: %v", err)
	}
	// Breadth-first search from each state along positive-probability edges
	// must reach state 0.
	n := m.NumStates()
	for start := 0; start < n; start++ {
		if !reaches(chain.RowPtr, chain.ColIdx, chain.Val, start, 0, n) {
			t.Fatalf("state %d cannot reach the initial state under always-mine", start)
		}
	}
}

func reaches(rowPtr []int64, colIdx []int32, val []float64, from, to, n int) bool {
	seen := make([]bool, n)
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s == to {
			return true
		}
		for k := rowPtr[s]; k < rowPtr[s+1]; k++ {
			if val[k] > 0 && !seen[colIdx[k]] {
				seen[colIdx[k]] = true
				stack = append(stack, int(colIdx[k]))
			}
		}
	}
	return false
}

// TestCloneIndependence: clones share no mutable scratch.
func TestCloneIndependence(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m := mustModel(t, p)
	m.SetBeta(0.5)
	c := m.Clone()
	if c.Beta() != 0.5 {
		t.Errorf("clone beta = %v, want 0.5", c.Beta())
	}
	// Interleaved use must not corrupt either.
	r1 := m.RawTransitions(0, 0, nil)
	r2 := c.RawTransitions(0, 0, nil)
	if len(r1) != len(r2) {
		t.Errorf("clone transitions differ: %d vs %d", len(r1), len(r2))
	}
}
