package core

import (
	"math"
	"testing"
)

// TestCompiledValuesRoundTrip: Values returns an independent copy of the
// converged vector, and installing it on a fresh instance warm-starts the
// same solve down to a handful of sweeps with an identical certified gain.
func TestCompiledValuesRoundTrip(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	a := mustCompile(t, p)
	cold, err := a.MeanPayoff(0.35, CompiledOptions{Tol: 1e-8})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	vals := a.Values()
	if len(vals) != a.NumStates() {
		t.Fatalf("Values() has %d entries, model %d states", len(vals), a.NumStates())
	}
	// Mutating the returned slice must not reach into the solver.
	saved := vals[0]
	vals[0] = 1e9
	if got := a.Values()[0]; got != saved {
		t.Fatalf("Values() aliases solver state: %v became %v", saved, got)
	}
	vals[0] = saved

	b := mustCompile(t, p)
	if err := b.SetValues(vals); err != nil {
		t.Fatalf("SetValues: %v", err)
	}
	warm, err := b.MeanPayoff(0.35, CompiledOptions{Tol: 1e-8, KeepValues: true})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Iters > cold.Iters/2 {
		t.Errorf("warm solve took %d sweeps, cold %d; transplanted vector ineffective", warm.Iters, cold.Iters)
	}
	if math.Abs(warm.Gain-cold.Gain) > 1e-7 {
		t.Errorf("warm gain %v != cold gain %v", warm.Gain, cold.Gain)
	}
}

func TestCompiledSetValuesWrongLength(t *testing.T) {
	c := mustCompile(t, Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 2})
	if err := c.SetValues(make([]float64, 3)); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}

// TestSignOnlySurvivesAdversarialSeed: a sign-only solve seeded with a
// wildly wrong vector must still certify the same (true) sign as a cold
// solve — the property that makes warm-started binary searches bitwise
// reproducible.
func TestSignOnlySurvivesAdversarialSeed(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	for _, beta := range []float64{0.2, 0.35, 0.5} {
		a := mustCompile(t, p)
		cold, err := a.MeanPayoff(beta, CompiledOptions{Tol: 1e-6, SignOnly: true})
		if err != nil {
			t.Fatalf("beta=%v cold: %v", beta, err)
		}
		bad := make([]float64, a.NumStates())
		for i := range bad {
			bad[i] = float64((i%17)-8) * 100
		}
		b := mustCompile(t, p)
		if err := b.SetValues(bad); err != nil {
			t.Fatal(err)
		}
		seeded, err := b.MeanPayoff(beta, CompiledOptions{Tol: 1e-6, SignOnly: true, KeepValues: true})
		if err != nil {
			t.Fatalf("beta=%v seeded: %v", beta, err)
		}
		if !cold.SignKnown() || !seeded.SignKnown() {
			t.Fatalf("beta=%v: sign not certified (cold [%v,%v], seeded [%v,%v])",
				beta, cold.Lo, cold.Hi, seeded.Lo, seeded.Hi)
		}
		if (cold.Gain > 0) != (seeded.Gain > 0) {
			t.Errorf("beta=%v: cold sign %v, seeded sign %v", beta, cold.Gain > 0, seeded.Gain > 0)
		}
	}
}
