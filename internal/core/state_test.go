package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCodec(t *testing.T, p Params) *Codec {
	t.Helper()
	c, err := NewCodec(p)
	if err != nil {
		t.Fatalf("NewCodec(%v): %v", p, err)
	}
	return c
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"ok small", Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 4}, false},
		{"ok boundary p", Params{P: 1, Gamma: 0, Depth: 1, Forks: 1, MaxLen: 1}, false},
		{"negative p", Params{P: -0.1, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 1}, true},
		{"p above one", Params{P: 1.5, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 1}, true},
		{"bad gamma", Params{P: 0.3, Gamma: 2, Depth: 1, Forks: 1, MaxLen: 1}, true},
		{"zero depth", Params{P: 0.3, Gamma: 0.5, Depth: 0, Forks: 1, MaxLen: 1}, true},
		{"zero forks", Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 0, MaxLen: 1}, true},
		{"zero maxlen", Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 0}, true},
		{"state explosion", Params{P: 0.3, Gamma: 0.5, Depth: 10, Forks: 10, MaxLen: 10}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNumStates(t *testing.T) {
	tests := []struct {
		d, f, l int
		want    int
	}{
		{1, 1, 4, 15},      // 3 * 5^1 * 1
		{2, 1, 4, 150},     // 3 * 5^2 * 2
		{2, 2, 4, 3750},    // 3 * 5^4 * 2
		{3, 2, 4, 187500},  // 3 * 5^6 * 4
		{4, 2, 4, 9375000}, // 3 * 5^8 * 8
	}
	for _, tt := range tests {
		p := Params{P: 0.3, Gamma: 0.5, Depth: tt.d, Forks: tt.f, MaxLen: tt.l}
		if got := p.NumStates(); got != tt.want {
			t.Errorf("NumStates(d=%d,f=%d,l=%d) = %d, want %d", tt.d, tt.f, tt.l, got, tt.want)
		}
	}
}

func TestCodecRoundTripExhaustive(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 2}
	c := mustCodec(t, p)
	s := c.NewState()
	for idx := 0; idx < c.NumStates(); idx++ {
		c.Decode(idx, s)
		if got := c.Encode(s); got != idx {
			t.Fatalf("round trip failed: %d -> %v -> %d", idx, s, got)
		}
	}
}

func TestCodecRoundTripRandomLarge(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 4, Forks: 2, MaxLen: 4}
	c := mustCodec(t, p)
	s := c.NewState()
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		idx := r.Intn(c.NumStates())
		c.Decode(idx, s)
		return c.Encode(s) == idx
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecInitialState(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 3, Forks: 2, MaxLen: 4}
	c := mustCodec(t, p)
	s := c.NewState()
	c.Decode(c.InitialIndex(), s)
	if s.Phase != Mining {
		t.Errorf("initial phase = %v, want mining", s.Phase)
	}
	for _, v := range s.C {
		if v != 0 {
			t.Errorf("initial fork lengths not all zero: %v", s.C)
			break
		}
	}
	for _, o := range s.O {
		if o != Honest {
			t.Errorf("initial owners not all honest: %v", s.O)
			break
		}
	}
}

func TestCodecDistinctStatesDistinctIndices(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 2}
	c := mustCodec(t, p)
	seen := make(map[int]string, c.NumStates())
	s := c.NewState()
	for idx := 0; idx < c.NumStates(); idx++ {
		c.Decode(idx, s)
		key := s.String()
		if prev, dup := seen[idx]; dup {
			t.Fatalf("index %d decoded twice: %s and %s", idx, prev, key)
		}
		seen[idx] = key
	}
	uniq := make(map[string]bool, len(seen))
	for _, v := range seen {
		if uniq[v] {
			t.Fatalf("two indices decode to the same state %s", v)
		}
		uniq[v] = true
	}
}

func TestForkLenAccessors(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 3, Forks: 2, MaxLen: 4}
	c := mustCodec(t, p)
	s := c.NewState()
	s.SetForkLen(2, 3, 2, 4)
	if got := s.ForkLen(2, 3, 2); got != 4 {
		t.Errorf("ForkLen(3,2) = %d, want 4", got)
	}
	if s.C[5] != 4 { // (3-1)*2 + (2-1) = 5
		t.Errorf("row-major layout wrong: C = %v", s.C)
	}
}

func TestStateString(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
	c := mustCodec(t, p)
	s := c.NewState()
	s.SetForkLen(1, 1, 1, 2)
	s.O[0] = Adversary
	s.Phase = PendingHonest
	got := s.String()
	want := "C=[[2][0]] O=[a] honest"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestBlockRate(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 4, Forks: 2, MaxLen: 4}
	want := 0.7 / (0.7 + 0.3*8)
	if got := p.BlockRate(); almostNe(got, want) {
		t.Errorf("BlockRate = %v, want %v", got, want)
	}
}

func almostNe(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d > 1e-12
}
