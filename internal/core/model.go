package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mdp"
)

// TransKind classifies a transition's probability law, so that the same
// compiled structure can be reused for every (p, γ): the probability of a
// transition is a function of its kind (and σ) only. Kinds are indices
// into the fork family's probability-law table (see Laws).
type TransKind = uint8

// Transition kinds of the fork model.
const (
	// KindAdvMine: the adversary wins the mining race on one of σ targets;
	// probability p/(1−p+p·σ).
	KindAdvMine TransKind = iota
	// KindHonMine: the honest miners win; probability (1−p)/(1−p+p·σ).
	KindHonMine
	// KindSure: deterministic, probability 1.
	KindSure
	// KindRaceWin: a revealed fork ties the pending honest block and wins
	// the broadcast race; probability γ.
	KindRaceWin
	// KindRaceLose: the tie race is lost; probability 1−γ.
	KindRaceLose
)

// Raw is a transition with its probability law and block-finalization
// counts, before a concrete (p, γ, β) is applied. It is the kernel's
// transition type; Kind holds the TransKind law index.
type Raw = kernel.Raw

// forkLaws is the fork family's probability-law table, indexed by
// TransKind. The closures mirror the closed forms in the kind comments;
// the compiled kernel evaluates them once per (kind, σ) on every
// SetChainParams.
var forkLaws = []kernel.ProbLaw{
	KindAdvMine:  func(p, _ float64, sigma int) float64 { return p / (1 - p + p*float64(sigma)) },
	KindHonMine:  func(p, _ float64, sigma int) float64 { return (1 - p) / (1 - p + p*float64(sigma)) },
	KindSure:     func(_, _ float64, _ int) float64 { return 1 },
	KindRaceWin:  func(_, gamma float64, _ int) float64 { return gamma },
	KindRaceLose: func(_, gamma float64, _ int) float64 { return 1 - gamma },
}

// RawProb resolves the transition probability of a fork-model transition
// for concrete chain parameters.
func RawProb(r Raw, p, gamma float64) float64 {
	return forkLaws[r.Kind](p, gamma, int(r.Sigma))
}

// RewardMode selects which scalar reward the mdp.Model view exposes.
type RewardMode uint8

// Reward views over the (r_A, r_H) block counters.
const (
	// RewardBeta exposes r_β = r_A − β(r_A + r_H), the paper's Section 3.3
	// reward family.
	RewardBeta RewardMode = iota
	// RewardAdv exposes r_A.
	RewardAdv
	// RewardHon exposes r_H.
	RewardHon
	// RewardTotal exposes r_A + r_H.
	RewardTotal
)

// Model is the attack MDP. It implements mdp.Model; the scalar reward seen
// by solvers is selected by Mode (and Beta for RewardBeta).
//
// A Model keeps internal decoding scratch and is NOT safe for concurrent
// use; create one Model per goroutine with Clone.
type Model struct {
	params Params
	codec  *Codec
	beta   float64
	mode   RewardMode

	s      *State // decode scratch
	tmp    *State // successor-construction scratch
	rawBuf []Raw  // reusable buffer for the Transitions hot path
}

var _ mdp.Model = (*Model)(nil)
var _ mdp.ActionLabeler = (*Model)(nil)
var _ mdp.Cloner = (*Model)(nil)
var _ kernel.Source = (*Model)(nil)

// NewModel constructs the MDP for validated parameters.
func NewModel(p Params) (*Model, error) {
	codec, err := NewCodec(p)
	if err != nil {
		return nil, err
	}
	m := &Model{params: p, codec: codec}
	m.s = codec.NewState()
	m.tmp = codec.NewState()
	return m, nil
}

// Clone returns an independent view of the same MDP (own scratch buffers),
// preserving Beta and Mode.
func (m *Model) Clone() *Model {
	c := &Model{params: m.params, codec: m.codec, beta: m.beta, mode: m.mode}
	c.s = m.codec.NewState()
	c.tmp = m.codec.NewState()
	return c
}

// CloneModel implements mdp.Cloner, letting the parallel solvers in package
// solve give each sweep worker its own scratch-carrying view.
func (m *Model) CloneModel() mdp.Model { return m.Clone() }

// Params returns the model parameters.
func (m *Model) Params() Params { return m.params }

// Codec returns the state codec.
func (m *Model) Codec() *Codec { return m.codec }

// SetBeta sets β for the RewardBeta view.
func (m *Model) SetBeta(beta float64) { m.beta = beta }

// Beta returns the current β.
func (m *Model) Beta() float64 { return m.beta }

// SetMode selects the reward view.
func (m *Model) SetMode(mode RewardMode) { m.mode = mode }

// NumStates implements mdp.Model.
func (m *Model) NumStates() int { return m.codec.NumStates() }

// Initial implements mdp.Model.
func (m *Model) Initial() int { return m.codec.InitialIndex() }

// releaseCount returns the number of legal release actions in a decision
// state: Σ_{i,j} max(0, C[i,j] − i + 1). A release of the first k blocks of
// fork (i, j) is legal when i ≤ k ≤ C[i,j]: the revealed chain then matches
// or exceeds the current public chain.
func (m *Model) releaseCount(s *State) int {
	n := 0
	d, f := m.params.Depth, m.params.Forks
	for i := 1; i <= d; i++ {
		for j := 1; j <= f; j++ {
			if c := int(s.ForkLen(f, i, j)); c >= i {
				n += c - i + 1
			}
		}
	}
	return n
}

// NumActions implements mdp.Model. Action 0 is always "mine" (continue);
// decision states additionally offer every legal release.
func (m *Model) NumActions(sIdx int) int {
	m.codec.Decode(sIdx, m.s)
	if m.s.Phase == Mining {
		return 1
	}
	return 1 + m.releaseCount(m.s)
}

// actionRelease resolves decision-state action a ≥ 1 to (i, j, k), 1-based.
func (m *Model) actionRelease(s *State, a int) (i, j, k int) {
	rem := a - 1
	d, f := m.params.Depth, m.params.Forks
	for i = 1; i <= d; i++ {
		for j = 1; j <= f; j++ {
			c := int(s.ForkLen(f, i, j))
			if c < i {
				continue
			}
			cnt := c - i + 1
			if rem < cnt {
				return i, j, i + rem
			}
			rem -= cnt
		}
	}
	panic(fmt.Sprintf("core: release action %d out of range in state %v", a, s))
}

// ActionLabel implements mdp.ActionLabeler.
func (m *Model) ActionLabel(sIdx, a int) string {
	if a == 0 {
		m.codec.Decode(sIdx, m.s)
		if m.s.Phase == PendingHonest {
			return "mine (let pending honest block land)"
		}
		return "mine"
	}
	m.codec.Decode(sIdx, m.s)
	i, j, k := m.actionRelease(m.s, a)
	return fmt.Sprintf("release(i=%d,j=%d,k=%d)", i, j, k)
}

// RawTransitions appends the raw successors of (sIdx, a) to buf. This is
// the single source of truth for the transition function; the mdp.Model
// view and the compiled solver both derive from it.
func (m *Model) RawTransitions(sIdx, a int, buf []Raw) []Raw {
	m.codec.Decode(sIdx, m.s)
	s := m.s
	switch s.Phase {
	case Mining:
		return m.miningRaw(s, buf)
	case PendingHonest:
		if a == 0 {
			dst, ra, rh := m.landPending(s)
			return append(buf, Raw{Dst: dst, Kind: KindSure, RA: ra, RH: rh})
		}
		i, j, k := m.actionRelease(s, a)
		accDst, accRA, accRH := m.acceptRelease(s, i, j, k)
		if k == i {
			// Tie against the pending block: broadcast race.
			loseDst, loseRA, loseRH := m.landPending(s)
			buf = append(buf, Raw{Dst: accDst, Kind: KindRaceWin, RA: accRA, RH: accRH})
			return append(buf, Raw{Dst: loseDst, Kind: KindRaceLose, RA: loseRA, RH: loseRH})
		}
		// k > i: strictly longer even after the pending block lands.
		return append(buf, Raw{Dst: accDst, Kind: KindSure, RA: accRA, RH: accRH})
	case AdvTurn:
		if a == 0 {
			// Continue withholding; back to the mining phase.
			m.tmp.Phase = Mining
			copy(m.tmp.C, s.C)
			copy(m.tmp.O, s.O)
			return append(buf, Raw{Dst: m.codec.Encode(m.tmp), Kind: KindSure})
		}
		// k ≥ i beats the current public chain outright; a stale tie would
		// lose, and k = i here already yields a strictly longer chain
		// because no pending honest block exists.
		i, j, k := m.actionRelease(s, a)
		dst, ra, rh := m.acceptRelease(s, i, j, k)
		return append(buf, Raw{Dst: dst, Kind: KindSure, RA: ra, RH: rh})
	default:
		panic(fmt.Sprintf("core: invalid phase %d", s.Phase))
	}
}

// miningRaw emits the nature move from a Mining state: each of the σ
// adversary targets wins with probability p/(1−p+pσ), honest with
// (1−p)/(1−p+pσ).
func (m *Model) miningRaw(s *State, buf []Raw) []Raw {
	d, f, l := m.params.Depth, m.params.Forks, m.params.MaxLen
	// σ = nonempty forks + one fresh-fork attempt per depth with a free slot.
	sigma := 0
	for i := 1; i <= d; i++ {
		hasEmpty := false
		for j := 1; j <= f; j++ {
			if s.ForkLen(f, i, j) > 0 {
				sigma++
			} else {
				hasEmpty = true
			}
		}
		if hasEmpty {
			sigma++
		}
	}
	sg := uint8(sigma)

	// Adversary extends an existing fork (capped at l) or starts the first
	// empty slot of a depth.
	for i := 1; i <= d; i++ {
		fresh := false
		for j := 1; j <= f; j++ {
			c := s.ForkLen(f, i, j)
			switch {
			case c > 0:
				copy(m.tmp.C, s.C)
				copy(m.tmp.O, s.O)
				m.tmp.Phase = AdvTurn
				if int(c) < l {
					m.tmp.SetForkLen(f, i, j, c+1)
				}
				buf = append(buf, Raw{Dst: m.codec.Encode(m.tmp), Kind: KindAdvMine, Sigma: sg})
			case !fresh:
				fresh = true
				copy(m.tmp.C, s.C)
				copy(m.tmp.O, s.O)
				m.tmp.Phase = AdvTurn
				m.tmp.SetForkLen(f, i, j, 1)
				buf = append(buf, Raw{Dst: m.codec.Encode(m.tmp), Kind: KindAdvMine, Sigma: sg})
			}
		}
	}
	// Honest miners find a block; it is pending until the adversary's
	// decision resolves.
	copy(m.tmp.C, s.C)
	copy(m.tmp.O, s.O)
	m.tmp.Phase = PendingHonest
	return append(buf, Raw{Dst: m.codec.Encode(m.tmp), Kind: KindHonMine, Sigma: sg})
}

// landPending applies the pending honest block: fork rows and the owner
// window shift one deeper; the block leaving the window (or the landing
// block itself when d = 1) becomes permanent.
func (m *Model) landPending(s *State) (dst int, ra, rh uint8) {
	d, f := m.params.Depth, m.params.Forks
	if d == 1 {
		rh = 1
	} else if s.O[d-2] == Adversary { // old depth d-1 reaches depth d
		ra = 1
	} else {
		rh = 1
	}
	// Shift fork rows down; row 1 becomes the fresh (empty) row of the new tip.
	for j := 0; j < f; j++ {
		m.tmp.C[j] = 0
	}
	copy(m.tmp.C[f:], s.C[:(d-1)*f])
	// Shift owners; the new tip is honest.
	if d >= 2 {
		m.tmp.O[0] = Honest
		copy(m.tmp.O[1:], s.O[:d-2])
	}
	m.tmp.Phase = Mining
	return m.codec.Encode(m.tmp), ra, rh
}

// acceptRelease constructs the state after the first k blocks of fork (i, j)
// are revealed and adopted as the main chain (legal when k ≥ i). The chain
// height grows by δ = k−i+1; the i−1 public blocks above the fork root (and
// any pending honest block) are orphaned; tracked blocks pushed to depth ≥ d
// and revealed blocks entering at depth ≥ d become permanent.
func (m *Model) acceptRelease(s *State, i, j, k int) (dst int, ra, rh uint8) {
	d, f := m.params.Depth, m.params.Forks
	delta := k - i + 1

	// Revealed adversary blocks occupy depths 1..k; those at depth ≥ d are
	// immediately permanent.
	if k >= d {
		ra += uint8(k - d + 1)
	}
	// Old tracked blocks at depths m ≥ i move to depth m+δ; they finalize
	// when m+δ ≥ d. (Blocks at depths < i are orphaned and pay nothing.)
	for mDepth := max(i, d-delta); mDepth <= d-1; mDepth++ {
		if s.O[mDepth-1] == Adversary {
			ra++
		} else {
			rh++
		}
	}

	// New owner window.
	for pos := 1; pos <= d-1; pos++ {
		if pos <= k {
			m.tmp.O[pos-1] = Adversary
		} else {
			m.tmp.O[pos-1] = s.O[pos-delta-1]
		}
	}

	// New fork rows. Row 1 holds the unreleased remainder of the revealed
	// fork, now rooted at the new tip.
	for idx := range m.tmp.C {
		m.tmp.C[idx] = 0
	}
	m.tmp.SetForkLen(f, 1, 1, s.ForkLen(f, i, j)-uint8(k))
	// Rows 2..min(k, d) root at freshly revealed blocks: empty.
	// Rows k+1..d carry over old rows i..d−δ (the revealed fork's slot is
	// consumed; its row maps to new row k+1 with slot j cleared).
	for r := k + 1; r <= d; r++ {
		oldRow := r - delta // ∈ [i, d-δ]
		for jj := 1; jj <= f; jj++ {
			if oldRow == i && jj == j {
				continue // consumed fork slot stays empty
			}
			m.tmp.SetForkLen(f, r, jj, s.ForkLen(f, oldRow, jj))
		}
	}
	m.tmp.Phase = Mining
	return m.codec.Encode(m.tmp), ra, rh
}

// rewardOf maps block counters to the scalar reward of the current view.
func (m *Model) rewardOf(ra, rh uint8) float64 {
	a, h := float64(ra), float64(rh)
	switch m.mode {
	case RewardBeta:
		return a - m.beta*(a+h)
	case RewardAdv:
		return a
	case RewardHon:
		return h
	case RewardTotal:
		return a + h
	default:
		return 0
	}
}

// Transitions implements mdp.Model.
func (m *Model) Transitions(sIdx, a int, buf []mdp.Transition) []mdp.Transition {
	raw := m.RawTransitions(sIdx, a, m.rawBuf[:0])
	m.rawBuf = raw[:0]
	for _, r := range raw {
		pr := RawProb(r, m.params.P, m.params.Gamma)
		buf = append(buf, mdp.Transition{Dst: r.Dst, Prob: pr, Reward: m.rewardOf(r.RA, r.RH)})
	}
	return buf
}

// Laws implements kernel.Source: the fork family's probability-law table,
// indexed by TransKind.
func (m *Model) Laws() []kernel.ProbLaw { return forkLaws }

// BlockRate implements kernel.Source: δ = (1−p)/(1−p+p·d·f), a lower bound
// on the per-step rate of permanent blocks (see Params.BlockRate).
func (m *Model) BlockRate(p, gamma float64) float64 {
	pr := m.params
	pr.P, pr.Gamma = p, gamma
	return pr.BlockRate()
}
