package core

import (
	"fmt"
	"strings"
)

// Phase is the "type" component of an MDP state.
type Phase uint8

// Phases of a state: Mining means proofs are being computed; PendingHonest
// means honest miners found a block that has not yet landed (the adversary
// may race it); AdvTurn means the adversary just extended one of its private
// forks and decides whether to keep mining or reveal.
const (
	Mining Phase = iota
	PendingHonest
	AdvTurn
	numPhases
)

func (ph Phase) String() string {
	switch ph {
	case Mining:
		return "mining"
	case PendingHonest:
		return "honest"
	case AdvTurn:
		return "adversary"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(ph))
	}
}

// Owner identifies who mined a main-chain block.
type Owner = uint8

// Owners of main-chain blocks.
const (
	Honest    Owner = 0
	Adversary Owner = 1
)

// State is a decoded MDP state. C is row-major d×f (C[(i-1)*f + (j-1)] is
// fork j at depth i, 1-based i, j); O has d-1 entries (O[i-1] owns the block
// at depth i).
type State struct {
	C     []uint8
	O     []uint8
	Phase Phase
}

// Codec converts between State values and dense indices
// 0..Params.NumStates()-1. The layout is index = (cIdx·2^(d-1) + oIdx)·3 + phase
// with cIdx a base-(l+1) little-endian number over the d·f fork lengths and
// oIdx the owner bits.
type Codec struct {
	d, f, l int
	oCount  int
	n       int
}

// NewCodec builds the codec for validated parameters.
func NewCodec(p Params) (*Codec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	oCount := 1 << (p.Depth - 1)
	return &Codec{d: p.Depth, f: p.Forks, l: p.MaxLen, oCount: oCount, n: p.NumStates()}, nil
}

// NumStates returns the dense state-space size.
func (c *Codec) NumStates() int { return c.n }

// InitialIndex returns the index of the initial state: all forks empty, all
// tracked owners honest, phase Mining.
func (c *Codec) InitialIndex() int { return 0 }

// NewState allocates a zero state with the codec's dimensions.
func (c *Codec) NewState() *State {
	return &State{C: make([]uint8, c.d*c.f), O: make([]uint8, c.d-1), Phase: Mining}
}

// Encode maps a state to its dense index. The state must be dimensionally
// consistent with the codec and within value bounds.
func (c *Codec) Encode(s *State) int {
	cIdx := 0
	base := c.l + 1
	for i := len(s.C) - 1; i >= 0; i-- {
		cIdx = cIdx*base + int(s.C[i])
	}
	oIdx := 0
	for i := len(s.O) - 1; i >= 0; i-- {
		oIdx = oIdx<<1 | int(s.O[i])
	}
	return (cIdx*c.oCount+oIdx)*int(numPhases) + int(s.Phase)
}

// Decode fills dst with the state for the given index. dst must have been
// allocated with NewState (or have matching dimensions).
func (c *Codec) Decode(idx int, dst *State) {
	dst.Phase = Phase(idx % int(numPhases))
	idx /= int(numPhases)
	oIdx := idx % c.oCount
	for i := range dst.O {
		dst.O[i] = uint8(oIdx & 1)
		oIdx >>= 1
	}
	cIdx := idx / c.oCount
	base := c.l + 1
	for i := range dst.C {
		dst.C[i] = uint8(cIdx % base)
		cIdx /= base
	}
}

// ForkLen returns C[i,j] with 1-based i ∈ [1,d], j ∈ [1,f].
func (s *State) ForkLen(f int, i, j int) uint8 { return s.C[(i-1)*f+(j-1)] }

// SetForkLen sets C[i,j] with 1-based indices.
func (s *State) SetForkLen(f int, i, j int, v uint8) { s.C[(i-1)*f+(j-1)] = v }

// String renders the state compactly, e.g. "C=[[2 0][1 0]] O=[ha] mining".
func (s *State) String() string {
	var b strings.Builder
	b.WriteString("C=[")
	f := 1
	if len(s.O)+1 > 0 && len(s.C) > 0 {
		f = len(s.C) / (len(s.O) + 1)
	}
	for i := 0; i < len(s.C); i += f {
		b.WriteString("[")
		for j := 0; j < f; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", s.C[i+j])
		}
		b.WriteString("]")
	}
	b.WriteString("] O=[")
	for _, o := range s.O {
		if o == Honest {
			b.WriteByte('h')
		} else {
			b.WriteByte('a')
		}
	}
	b.WriteString("] ")
	b.WriteString(s.Phase.String())
	return b.String()
}
