package core

import (
	"math"
	"testing"

	"repro/internal/mdp"
	"repro/internal/solve"
)

func mustCompile(t *testing.T, p Params) *Compiled {
	t.Helper()
	c, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile(%v): %v", p, err)
	}
	return c
}

// TestCompiledMatchesGenericGain is the central compiled-path cross-check:
// the compiled mean-payoff must agree with the generic interface-based
// solver over several configurations and β values.
func TestCompiledMatchesGenericGain(t *testing.T) {
	configs := []Params{
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4},
		{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4},
		{P: 0.15, Gamma: 0.25, Depth: 2, Forks: 2, MaxLen: 3},
	}
	for _, p := range configs {
		t.Run(p.String(), func(t *testing.T) {
			m := mustModel(t, p)
			m.SetMode(RewardBeta)
			c := mustCompile(t, p)
			for _, beta := range []float64{0.1, 0.35, 0.6} {
				m.SetBeta(beta)
				want, err := solve.MeanPayoff(m, solve.Options{Tol: 1e-9})
				if err != nil {
					t.Fatalf("generic solve: %v", err)
				}
				got, err := c.MeanPayoff(beta, CompiledOptions{Tol: 1e-9})
				if err != nil {
					t.Fatalf("compiled solve: %v", err)
				}
				if math.Abs(got.Gain-want.Gain) > 1e-6 {
					t.Errorf("beta=%v: compiled gain %v, generic gain %v", beta, got.Gain, want.Gain)
				}
			}
		})
	}
}

// TestCompiledTransitionCountsMatch: the flattened structure must contain
// exactly the transitions the model enumerates.
func TestCompiledTransitionCountsMatch(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 2}
	m := mustModel(t, p)
	c := mustCompile(t, p)
	var buf []Raw
	var want int64
	for s := 0; s < m.NumStates(); s++ {
		for a := 0; a < m.NumActions(s); a++ {
			buf = m.RawTransitions(s, a, buf[:0])
			want += int64(len(buf))
		}
	}
	if got := c.NumTransitions(); got != want {
		t.Errorf("NumTransitions = %d, want %d", got, want)
	}
	if c.NumStates() != m.NumStates() {
		t.Errorf("NumStates = %d, want %d", c.NumStates(), m.NumStates())
	}
}

// TestCompiledProbsStochastic: per action, resolved probabilities sum to 1,
// both at compile-time parameters and after a re-resolution.
func TestCompiledProbsStochastic(t *testing.T) {
	p := Params{P: 0.25, Gamma: 0.4, Depth: 2, Forks: 1, MaxLen: 3}
	c := mustCompile(t, p)
	if err := c.CheckStochastic(1e-6); err != nil {
		t.Fatal(err)
	}
	if err := c.SetChainParams(0.4, 0.9); err != nil {
		t.Fatalf("SetChainParams: %v", err)
	}
	if err := c.CheckStochastic(1e-6); err != nil {
		t.Fatal(err)
	}
}

// TestCompiledSetChainParams: re-resolving (p, γ) must change the solve
// result accordingly and match a fresh compile.
func TestCompiledSetChainParams(t *testing.T) {
	p := Params{P: 0.1, Gamma: 0, Depth: 2, Forks: 1, MaxLen: 3}
	c := mustCompile(t, p)
	if err := c.SetChainParams(0.3, 0.75); err != nil {
		t.Fatalf("SetChainParams: %v", err)
	}
	got, err := c.MeanPayoff(0.3, CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	fresh := mustCompile(t, Params{P: 0.3, Gamma: 0.75, Depth: 2, Forks: 1, MaxLen: 3})
	want, err := fresh.MeanPayoff(0.3, CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatalf("fresh MeanPayoff: %v", err)
	}
	if math.Abs(got.Gain-want.Gain) > 1e-9 {
		t.Errorf("re-resolved gain %v != fresh gain %v", got.Gain, want.Gain)
	}
}

func TestCompiledSetChainParamsRejectsBad(t *testing.T) {
	c := mustCompile(t, Params{P: 0.1, Gamma: 0, Depth: 1, Forks: 1, MaxLen: 2})
	if err := c.SetChainParams(1.5, 0); err == nil {
		t.Fatal("expected error for p=1.5, got nil")
	}
}

// TestCompiledGreedyPolicyEval: the greedy policy extracted after a solve
// must evaluate (iteratively) to the same ERRev as the exact stationary
// evaluation on the generic model.
func TestCompiledGreedyPolicyEval(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
	c := mustCompile(t, p)
	if _, err := c.MeanPayoff(0.35, CompiledOptions{Tol: 1e-9}); err != nil {
		t.Fatalf("MeanPayoff: %v", err)
	}
	policy := c.GreedyPolicy(0.35)
	got, err := c.EvalERRev(policy, CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatalf("EvalERRev: %v", err)
	}
	m := mustModel(t, p)
	want, err := ERRevOfPolicy(m, policy)
	if err != nil {
		t.Fatalf("ERRevOfPolicy: %v", err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("compiled ERRev %v, exact %v", got, want)
	}
}

// TestCompiledWarmStart: re-solving the same β from the converged value
// vector must be much cheaper than the cold solve and give the same gain.
func TestCompiledWarmStart(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 3}
	c := mustCompile(t, p)
	cold, err := c.MeanPayoff(0.4, CompiledOptions{Tol: 1e-8})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := c.MeanPayoff(0.4, CompiledOptions{Tol: 1e-8, KeepValues: true})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Iters > cold.Iters/2 {
		t.Errorf("warm solve took %d sweeps, cold %d; warm start ineffective", warm.Iters, cold.Iters)
	}
	if math.Abs(warm.Gain-cold.Gain) > 1e-7 {
		t.Errorf("warm gain %v != cold gain %v", warm.Gain, cold.Gain)
	}
}

// TestCompiledEvalPolicyWrongLength exercises the failure path.
func TestCompiledEvalPolicyWrongLength(t *testing.T) {
	c := mustCompile(t, Params{P: 0.2, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 2})
	if _, err := c.EvalERRev([]int{0}, CompiledOptions{}); err == nil {
		t.Fatal("expected error for short policy, got nil")
	}
}

// TestReachableSubmodelSameGain: restricting the attack MDP to its
// reachable states (via mdp.Materialize) must not change the optimal mean
// payoff — the binary search operates on gains from the initial state.
func TestReachableSubmodelSameGain(t *testing.T) {
	p := Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m := mustModel(t, p)
	m.SetMode(RewardBeta)
	m.SetBeta(0.35)
	full, err := solve.MeanPayoff(m, solve.Options{Tol: 1e-9})
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	sub, err := mdp.Materialize(m, true)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if sub.NumStates() > m.NumStates() {
		t.Fatalf("reachable model larger than full: %d > %d", sub.NumStates(), m.NumStates())
	}
	restricted, err := solve.MeanPayoff(sub, solve.Options{Tol: 1e-9})
	if err != nil {
		t.Fatalf("restricted solve: %v", err)
	}
	if math.Abs(full.Gain-restricted.Gain) > 1e-7 {
		t.Errorf("gain changed under reachability restriction: %v vs %v", full.Gain, restricted.Gain)
	}
}
