package core

import (
	"math"
	"sync"
	"testing"
)

// solveAll runs a full-precision solve, policy extraction, and policy
// evaluation at the given worker count, returning every numeric output.
func solveAll(t *testing.T, workers int) (*CompiledResult, []int, float64, []float64) {
	t.Helper()
	c, err := Compile(Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(workers)
	res, err := c.MeanPayoff(0.35, CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatalf("workers=%d: MeanPayoff: %v", workers, err)
	}
	policy := c.GreedyPolicy(0.35)
	errev, err := c.EvalERRev(policy, CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatalf("workers=%d: EvalERRev: %v", workers, err)
	}
	return res, policy, errev, c.Values()
}

// TestCompiledParallelDeterminism is the solver-level half of the chunked
// sweep determinism argument: every output of the compiled solver —
// brackets, sweep counts, value vector, greedy policy, and policy revenue —
// is bitwise identical at 1, 2, 4, and 7 workers (7 exercises uneven
// chunks).
func TestCompiledParallelDeterminism(t *testing.T) {
	refRes, refPolicy, refERRev, refH := solveAll(t, 1)
	for _, w := range []int{2, 4, 7} {
		res, policy, errev, h := solveAll(t, w)
		if res.Lo != refRes.Lo || res.Hi != refRes.Hi || res.Gain != refRes.Gain {
			t.Errorf("workers=%d: bracket (%v, %v, %v) != serial (%v, %v, %v)",
				w, res.Lo, res.Hi, res.Gain, refRes.Lo, refRes.Hi, refRes.Gain)
		}
		if res.Iters != refRes.Iters {
			t.Errorf("workers=%d: %d sweeps, serial %d", w, res.Iters, refRes.Iters)
		}
		if errev != refERRev {
			t.Errorf("workers=%d: ERRev %v != serial %v", w, errev, refERRev)
		}
		for s := range refPolicy {
			if policy[s] != refPolicy[s] {
				t.Fatalf("workers=%d: policy diverges at state %d: %d vs %d", w, s, policy[s], refPolicy[s])
			}
		}
		for s := range refH {
			if math.Float64bits(h[s]) != math.Float64bits(refH[s]) {
				t.Fatalf("workers=%d: value vector diverges at state %d: %v vs %v", w, s, h[s], refH[s])
			}
		}
	}
}

// TestCompiledCloneIndependence: clones share the immutable structure but
// carry independent parameters, probabilities, and value state.
func TestCompiledCloneIndependence(t *testing.T) {
	base, err := Compile(Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl := base.Clone()
	// Structure sharing itself is pinned down by the kernel package's own
	// clone tests; here the fork-level check is behavioral independence.
	if err := cl.SetChainParams(0.2, 0.1); err != nil {
		t.Fatal(err)
	}
	if base.P() != 0.3 || base.Gamma() != 0.5 {
		t.Errorf("clone's SetChainParams leaked into base: p=%v gamma=%v", base.P(), base.Gamma())
	}
	// Both still solve, to different gains (different p).
	rb, err := base.MeanPayoff(0.35, CompiledOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cl.MeanPayoff(0.35, CompiledOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Gain == rc.Gain {
		t.Errorf("distinct chain parameters produced equal gains %v", rb.Gain)
	}
}

// TestCompiledClonesConcurrent solves on many clones of one compilation
// concurrently with multi-worker sweeps; run under -race this is the
// shared-structure race check for the sweep orchestration.
func TestCompiledClonesConcurrent(t *testing.T) {
	base, err := Compile(Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 2, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := base.Clone().MeanPayoff(0.35, CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	pGrid := []float64{0.15, 0.25, 0.3, 0.35}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := base.Clone()
			cl.SetWorkers(2)
			if err := cl.SetChainParams(pGrid[i], 0.5); err != nil {
				t.Error(err)
				return
			}
			res, err := cl.MeanPayoff(0.35, CompiledOptions{Tol: 1e-9})
			if err != nil {
				t.Errorf("p=%v: %v", pGrid[i], err)
				return
			}
			if pGrid[i] == 0.3 && (res.Lo != serial.Lo || res.Hi != serial.Hi) {
				t.Errorf("concurrent clone at p=0.3 got bracket (%v, %v), serial (%v, %v)",
					res.Lo, res.Hi, serial.Lo, serial.Hi)
			}
		}(i)
	}
	wg.Wait()
}
