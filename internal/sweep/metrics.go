package sweep

import "repro/internal/obs"

// Adaptive-refinement instruments, on the shared default registry. Hooks
// tick at wave boundaries (the engine's natural checkpoints), never inside
// the per-point solves the callback fans out.
var (
	refineRuns = obs.Default().Counter("sweep_refine_runs_total",
		"Adaptive refinements run (Refine calls).")
	refineWaves = obs.Default().Counter("sweep_refine_waves_total",
		"Waves solved by adaptive refinement, including each run's coarse wave.")
	refinePoints = obs.Default().Counter("sweep_refine_points_total",
		"Refined (depth >= 1) points solved by adaptive refinement.")
	refineTruncated = obs.Default().Counter("sweep_refine_truncated_total",
		"Adaptive refinements cut short by the MaxPoints budget.")
	refineSeconds = obs.Default().Histogram("sweep_refine_seconds",
		"Wall time of one adaptive refinement, including all solves.", obs.DefBuckets())
)
