// Package sweep implements the adaptive grid-refinement engine behind
// selfish-mining parameter sweeps.
//
// A sweep evaluates one or more curves (attack configurations) over a
// shared x-grid of adversary resource fractions. Uniform grids waste most
// of their solves far from the profitability threshold the analysis cares
// about; this engine instead runs a coarse pass over the requested grid
// and then recursively bisects only the cells whose solved values prove
// more resolution is needed, in the refine-only-when-the-bound-demands-it
// style of Hoeffding-tree split tests.
//
// Refinement of a cell [a, b] proceeds in two certified stages:
//
//  1. Bracket-gap test: if every curve moves by at most Tolerance across
//     the cell (max over configs of |v(b) − v(a)| ≤ Tolerance), the corner
//     values already bracket everything inside to within the tolerance and
//     the cell is left alone. This is what skips flat regions.
//  2. Curvature test: otherwise the midpoint m = a + (b−a)/2 is solved,
//     and the cell recurses only if some curve's midpoint value deviates
//     from the secant by more than Tolerance (|v(m) − (v(a)+v(b))/2| >
//     Tolerance). A curve that is linear within the tolerance is rendered
//     exactly as well by its endpoints, so steep-but-straight regions stop
//     after one confirming midpoint; only genuine curvature — the
//     threshold kink — recurses to depth.
//
// The engine is deterministic by construction: work proceeds in waves
// (all cells of one depth), cells within a wave are ordered by ascending
// x, and the solve callback receives each wave as a single ordered batch.
// The refined point set, and therefore the output, depends only on the
// options and the solved values — never on timing, parallelism, or cache
// state of the caller's solver.
package sweep

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// SolveBatch solves one wave of grid points. ps is strictly increasing;
// depth is the bisection depth shared by every point of the wave (0 for
// the coarse grid). The callback returns one value slice per config, each
// aligned with ps: values[config][i] is curve config at ps[i]. The
// callback may solve the batch in parallel internally, but the values it
// returns must not depend on scheduling — the engine's refinement
// decisions, and thus the next waves it asks for, derive from them.
type SolveBatch func(ps []float64, depth int) ([][]float64, error)

// Options configures one adaptive refinement run.
type Options struct {
	// Grid is the coarse x-grid, strictly increasing with at least two
	// points. Every grid point is solved; refinement inserts midpoints
	// between them, so the output is always a superset of Grid.
	Grid []float64
	// Configs is the number of curves solved at each x (≥ 1). Refinement
	// is shared across curves: a cell recurses if any curve's test fires,
	// and every curve is solved at every emitted x, keeping the output a
	// dense table over one shared x-axis.
	Configs int
	// Tolerance is the refinement tolerance (≥ 0) used by both the
	// bracket-gap and curvature tests. Smaller tolerances refine harder.
	Tolerance float64
	// MaxDepth bounds the bisection depth (≥ 0; refined points have depth
	// 1..MaxDepth, so each coarse cell splits into at most 2^MaxDepth
	// subcells). 0 disables refinement entirely.
	MaxDepth int
	// MaxPoints, when > 0, caps the number of refined (depth ≥ 1) points
	// solved. The cap truncates deterministically: cells within a wave are
	// ordered by ascending x, and a wave that would overrun the budget is
	// cut at the cap, dropping its ascending-order tail.
	MaxPoints int
	// Force disables both refinement tests and bisects every cell to
	// MaxDepth. The result is the uniformly refined grid with bitwise the
	// same midpoint arithmetic as an adaptive run — the equal-fidelity
	// uniform reference adaptive runs are benchmarked against.
	Force bool
}

// Result is the refined grid with its solved values.
type Result struct {
	// X is the union of the coarse grid and every refined midpoint, in
	// ascending order.
	X []float64
	// Values holds one curve per config: Values[config][i] is the solved
	// value at X[i].
	Values [][]float64
	// Depths gives each X point's bisection depth (0 for coarse points).
	Depths []int
	// Refined counts the refined (depth ≥ 1) points solved.
	Refined int
	// Truncated reports whether MaxPoints cut refinement short: some cell
	// whose test fired was left unbisected because the budget ran out.
	Truncated bool
}

// pt is one solved grid point: its x, bisection depth, and one value per
// config.
type pt struct {
	x     float64
	depth int
	v     []float64
}

// cell is one refinement interval between two solved points.
type cell struct {
	lo, hi *pt
}

func (o Options) validate() error {
	if len(o.Grid) < 2 {
		return fmt.Errorf("sweep: refinement needs a coarse grid of >= 2 points, got %d", len(o.Grid))
	}
	for i, x := range o.Grid {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("sweep: grid[%d] = %v is not finite", i, x)
		}
		if i > 0 && x <= o.Grid[i-1] {
			return fmt.Errorf("sweep: grid must be strictly increasing, got grid[%d] = %v after %v", i, x, o.Grid[i-1])
		}
	}
	if o.Configs < 1 {
		return fmt.Errorf("sweep: refinement needs >= 1 config, got %d", o.Configs)
	}
	if o.Tolerance < 0 || math.IsNaN(o.Tolerance) {
		return fmt.Errorf("sweep: tolerance = %v outside [0, inf)", o.Tolerance)
	}
	if o.MaxDepth < 0 {
		return fmt.Errorf("sweep: max depth = %d negative", o.MaxDepth)
	}
	return nil
}

// solveWave runs the callback on one wave and transposes its per-config
// values into per-point slices.
func solveWave(solve SolveBatch, ps []float64, depth int, configs int) ([]*pt, error) {
	vals, err := solve(ps, depth)
	if err != nil {
		return nil, err
	}
	if len(vals) != configs {
		return nil, fmt.Errorf("sweep: solve returned %d config slices, want %d", len(vals), configs)
	}
	for c, vs := range vals {
		if len(vs) != len(ps) {
			return nil, fmt.Errorf("sweep: solve config %d returned %d values for %d points", c, len(vs), len(ps))
		}
	}
	pts := make([]*pt, len(ps))
	for i, x := range ps {
		v := make([]float64, configs)
		for c := range v {
			v[c] = vals[c][i]
		}
		pts[i] = &pt{x: x, depth: depth, v: v}
	}
	return pts, nil
}

// gap reports the largest per-config value change across the cell.
func (c cell) gap() float64 {
	g := 0.0
	for i := range c.lo.v {
		if d := math.Abs(c.hi.v[i] - c.lo.v[i]); d > g {
			g = d
		}
	}
	return g
}

// deviation reports the largest per-config distance between the midpoint
// value and the cell's secant.
func (c cell) deviation(mid *pt) float64 {
	dev := 0.0
	for i := range c.lo.v {
		if d := math.Abs(mid.v[i] - (c.lo.v[i]+c.hi.v[i])/2); d > dev {
			dev = d
		}
	}
	return dev
}

// Refine runs the adaptive refinement: the coarse grid first, then one
// wave per bisection depth until every cell passes its tests or hits a
// limit. Waves are solved through the callback as ordered batches so the
// caller can parallelize each wave internally while the refinement
// decisions stay deterministic.
func Refine(opts Options, solve SolveBatch) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if solve == nil {
		return nil, fmt.Errorf("sweep: nil solve callback")
	}

	refineRuns.Inc()
	sp := obs.StartSpan(refineSeconds)
	defer sp.End()

	coarse, err := solveWave(solve, opts.Grid, 0, opts.Configs)
	if err != nil {
		return nil, err
	}
	refineWaves.Inc()
	points := append([]*pt(nil), coarse...)
	cells := make([]cell, 0, len(coarse)-1)
	for i := 0; i+1 < len(coarse); i++ {
		cells = append(cells, cell{coarse[i], coarse[i+1]})
	}

	res := &Result{}
	for depth := 1; depth <= opts.MaxDepth && len(cells) > 0; depth++ {
		// Select the cells whose corners demand a midpoint. Cells arrive
		// in ascending-x order and children are appended in order below,
		// so every wave is ascending without re-sorting.
		active := cells[:0:0]
		for _, c := range cells {
			mid := c.lo.x + (c.hi.x-c.lo.x)/2
			if !(mid > c.lo.x && mid < c.hi.x) {
				continue // float resolution exhausted; cannot bisect further
			}
			if opts.Force || c.gap() > opts.Tolerance {
				active = append(active, c)
			}
		}
		if opts.MaxPoints > 0 {
			if remaining := opts.MaxPoints - res.Refined; len(active) > remaining {
				if !res.Truncated {
					refineTruncated.Inc()
				}
				res.Truncated = true
				active = active[:remaining]
			}
		}
		if len(active) == 0 {
			break
		}
		mids := make([]float64, len(active))
		for i, c := range active {
			mids[i] = c.lo.x + (c.hi.x-c.lo.x)/2
		}
		wave, err := solveWave(solve, mids, depth, opts.Configs)
		if err != nil {
			return nil, err
		}
		points = append(points, wave...)
		refineWaves.Inc()
		refinePoints.Add(uint64(len(wave)))
		res.Refined += len(wave)
		next := make([]cell, 0, 2*len(active))
		for i, c := range active {
			mid := wave[i]
			if opts.Force || c.deviation(mid) > opts.Tolerance {
				next = append(next, cell{c.lo, mid}, cell{mid, c.hi})
			}
		}
		cells = next
	}

	// Merge the waves into one ascending grid. Every wave is ascending
	// and refined points interleave strictly between their parents, so a
	// single stable merge sort by x suffices; no two points share an x.
	sortPoints(points)
	res.X = make([]float64, len(points))
	res.Depths = make([]int, len(points))
	res.Values = make([][]float64, opts.Configs)
	for c := range res.Values {
		res.Values[c] = make([]float64, len(points))
	}
	for i, p := range points {
		res.X[i] = p.x
		res.Depths[i] = p.depth
		for c := range res.Values {
			res.Values[c][i] = p.v[c]
		}
	}
	return res, nil
}

// sortPoints orders points by ascending x (no duplicates exist by
// construction: midpoints are strictly interior to their cells).
func sortPoints(points []*pt) {
	sort.Slice(points, func(i, j int) bool { return points[i].x < points[j].x })
}
