package sweep

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// grid builds lo..hi inclusive in n-1 equal steps.
func grid(lo, hi float64, n int) []float64 {
	g := make([]float64, n)
	for i := range g {
		g[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return g
}

// solver adapts plain functions of x to the SolveBatch signature and
// counts solved points.
func solver(count *int, fns ...func(float64) float64) SolveBatch {
	return func(ps []float64, depth int) ([][]float64, error) {
		out := make([][]float64, len(fns))
		for c, fn := range fns {
			out[c] = make([]float64, len(ps))
			for i, p := range ps {
				out[c][i] = fn(p)
			}
		}
		if count != nil {
			*count += len(ps) * len(fns)
		}
		return out, nil
	}
}

// kink is a hockey-stick curve: flat before the threshold, slope 2 after.
// The threshold at x = 0.157 falls strictly inside a coarse cell (and off
// every bisection midpoint), so only deep refinement can localize it.
func kink(x float64) float64 {
	return 2 * math.Max(0, x-0.157)
}

func TestRefineFlatCurveStopsAtCoarseGrid(t *testing.T) {
	g := grid(0, 0.3, 7)
	res, err := Refine(Options{Grid: g, Configs: 1, Tolerance: 1e-3, MaxDepth: 8},
		solver(nil, func(float64) float64 { return 0.25 }))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.X, g) {
		t.Fatalf("flat curve refined: X = %v, want coarse grid %v", res.X, g)
	}
	if res.Refined != 0 || res.Truncated {
		t.Fatalf("flat curve: Refined = %d, Truncated = %v", res.Refined, res.Truncated)
	}
}

func TestRefineLinearCurveStopsAfterOneWave(t *testing.T) {
	// A steep straight line fails the bracket-gap test everywhere, so
	// every coarse cell solves its midpoint — but each midpoint confirms
	// the secant, so refinement stops at depth 1.
	g := grid(0, 0.3, 7)
	res, err := Refine(Options{Grid: g, Configs: 1, Tolerance: 1e-6, MaxDepth: 10},
		solver(nil, func(x float64) float64 { return x }))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*len(g) - 1; len(res.X) != want {
		t.Fatalf("linear curve: len(X) = %d, want %d (one midpoint per coarse cell)", len(res.X), want)
	}
	for i, d := range res.Depths {
		if d > 1 {
			t.Fatalf("linear curve refined past depth 1: depth %d at X[%d] = %v", d, i, res.X[i])
		}
	}
}

func TestRefineLocalizesKink(t *testing.T) {
	g := grid(0, 0.3, 7) // cells of width 0.05; the kink sits inside [0.15, 0.2]
	const depth = 8
	res, err := Refine(Options{Grid: g, Configs: 1, Tolerance: 1e-3, MaxDepth: depth},
		solver(nil, kink))
	if err != nil {
		t.Fatal(err)
	}
	// The refined set must be a strict superset of the coarse grid...
	assertSuperset(t, res.X, g)
	// ...far smaller than the uniform equivalent...
	uniform := (len(g)-1)*(1<<depth) + 1
	if len(res.X) >= uniform/5 {
		t.Fatalf("adaptive solved %d points; uniform equivalent is %d, want < 1/5", len(res.X), uniform)
	}
	// ...and dense near the kink: the deepest points must straddle 0.15.
	maxDepth, lo, hi := 0, math.Inf(1), math.Inf(-1)
	for i, d := range res.Depths {
		if d > maxDepth {
			maxDepth, lo, hi = d, res.X[i], res.X[i]
		} else if d == maxDepth {
			lo, hi = math.Min(lo, res.X[i]), math.Max(hi, res.X[i])
		}
	}
	if maxDepth < 4 || maxDepth > depth {
		t.Fatalf("deepest refinement %d, want within [4, %d] (kink drives depth until its cell is ~tolerance wide)", maxDepth, depth)
	}
	if hi < 0.157-0.02 || lo > 0.157+0.02 {
		t.Fatalf("deepest points span [%v, %v], want a straddle of the kink at 0.157", lo, hi)
	}
	assertAscending(t, res.X)
}

func TestRefineForceMatchesUniformBisection(t *testing.T) {
	g := grid(0, 0.3, 4)
	const depth = 3
	res, err := Refine(Options{Grid: g, Configs: 1, MaxDepth: depth, Force: true},
		solver(nil, kink))
	if err != nil {
		t.Fatal(err)
	}
	want := uniformBisect(g, depth)
	if len(res.X) != len(want) {
		t.Fatalf("force: len(X) = %d, want %d", len(res.X), len(want))
	}
	for i := range want {
		if math.Float64bits(res.X[i]) != math.Float64bits(want[i]) {
			t.Fatalf("force X[%d] = %v (bits %#x), want %v (bits %#x)",
				i, res.X[i], math.Float64bits(res.X[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// uniformBisect reproduces the engine's midpoint arithmetic by recursive
// bisection, independently of its wave scheduling.
func uniformBisect(g []float64, depth int) []float64 {
	xs := append([]float64(nil), g...)
	for d := 0; d < depth; d++ {
		next := make([]float64, 0, 2*len(xs)-1)
		for i := range xs {
			if i > 0 {
				next = append(next, xs[i-1]+(xs[i]-xs[i-1])/2)
			}
			next = append(next, xs[i])
		}
		xs = next
	}
	return xs
}

func TestRefineAdaptiveSubsetOfForceBitwise(t *testing.T) {
	// Every adaptive point must appear in the Force (uniform) run at a
	// bitwise-identical x with bitwise-identical values: adaptivity may
	// only skip points, never perturb them.
	g := grid(0, 0.3, 7)
	const depth = 6
	adaptive, err := Refine(Options{Grid: g, Configs: 2, Tolerance: 1e-3, MaxDepth: depth},
		solver(nil, kink, math.Sqrt))
	if err != nil {
		t.Fatal(err)
	}
	force, err := Refine(Options{Grid: g, Configs: 2, MaxDepth: depth, Force: true},
		solver(nil, kink, math.Sqrt))
	if err != nil {
		t.Fatal(err)
	}
	byBits := map[uint64]int{}
	for i, x := range force.X {
		byBits[math.Float64bits(x)] = i
	}
	for i, x := range adaptive.X {
		j, ok := byBits[math.Float64bits(x)]
		if !ok {
			t.Fatalf("adaptive X[%d] = %v missing from force grid", i, x)
		}
		for c := range adaptive.Values {
			if math.Float64bits(adaptive.Values[c][i]) != math.Float64bits(force.Values[c][j]) {
				t.Fatalf("config %d at x = %v: adaptive %v != force %v", c, x, adaptive.Values[c][i], force.Values[c][j])
			}
		}
	}
}

func TestRefineSharedAcrossConfigs(t *testing.T) {
	// A flat curve alongside a kinked one: refinement is driven by the
	// union, and the flat curve is solved at every refined x too (dense
	// table, shared axis).
	g := grid(0, 0.3, 7)
	res, err := Refine(Options{Grid: g, Configs: 2, Tolerance: 1e-3, MaxDepth: 5},
		solver(nil, func(float64) float64 { return 0.5 }, kink))
	if err != nil {
		t.Fatal(err)
	}
	if res.Refined == 0 {
		t.Fatal("kinked config should have driven refinement")
	}
	for i, v := range res.Values[0] {
		if v != 0.5 {
			t.Fatalf("flat config not solved at X[%d] = %v: got %v", i, res.X[i], v)
		}
	}
	if len(res.Values[1]) != len(res.X) {
		t.Fatalf("config 1 has %d values for %d xs", len(res.Values[1]), len(res.X))
	}
}

func TestRefineMaxPointsTruncatesDeterministically(t *testing.T) {
	g := grid(0, 0.3, 7)
	run := func() *Result {
		res, err := Refine(Options{Grid: g, Configs: 1, Tolerance: 1e-6, MaxDepth: 10, MaxPoints: 9},
			solver(nil, kink))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Truncated {
		t.Fatal("budget of 9 refined points should truncate a depth-10 kink refinement")
	}
	if a.Refined > 9 {
		t.Fatalf("Refined = %d exceeds MaxPoints = 9", a.Refined)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("truncated refinement differs between identical runs")
	}
	assertAscending(t, a.X)
	assertSuperset(t, a.X, g)
}

func TestRefineMaxDepthZeroDisablesRefinement(t *testing.T) {
	g := grid(0, 0.3, 7)
	calls := 0
	res, err := Refine(Options{Grid: g, Configs: 1, Tolerance: 0, MaxDepth: 0},
		solver(&calls, kink))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.X, g) || calls != len(g) {
		t.Fatalf("MaxDepth 0: X = %v (calls %d), want the coarse grid only", res.X, calls)
	}
}

func TestRefineValidation(t *testing.T) {
	ok := solver(nil, kink)
	cases := []struct {
		name string
		opts Options
		sb   SolveBatch
	}{
		{"short grid", Options{Grid: []float64{0.1}, Configs: 1}, ok},
		{"unsorted grid", Options{Grid: []float64{0, 0.2, 0.1}, Configs: 1}, ok},
		{"duplicate grid", Options{Grid: []float64{0, 0.1, 0.1}, Configs: 1}, ok},
		{"nan grid", Options{Grid: []float64{0, math.NaN()}, Configs: 1}, ok},
		{"no configs", Options{Grid: []float64{0, 0.1}}, ok},
		{"negative tolerance", Options{Grid: []float64{0, 0.1}, Configs: 1, Tolerance: -1}, ok},
		{"negative depth", Options{Grid: []float64{0, 0.1}, Configs: 1, MaxDepth: -1}, ok},
		{"nil solver", Options{Grid: []float64{0, 0.1}, Configs: 1}, nil},
		{"short values", Options{Grid: []float64{0, 0.1}, Configs: 2}, ok},
		{"solver error", Options{Grid: []float64{0, 0.1}, Configs: 1}, func([]float64, int) ([][]float64, error) {
			return nil, fmt.Errorf("boom")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Refine(tc.opts, tc.sb); err == nil {
				t.Fatalf("%s: expected error", tc.name)
			}
		})
	}
}

func TestRefineWaveOrderIsAscending(t *testing.T) {
	// The callback must see each wave strictly ascending with a constant
	// depth — that ordering is the engine's determinism contract with the
	// emitting layer above it.
	g := grid(0, 0.3, 7)
	wave := 0
	sb := func(ps []float64, depth int) ([][]float64, error) {
		if depth != wave {
			return nil, fmt.Errorf("wave %d arrived with depth %d", wave, depth)
		}
		wave++
		for i := 1; i < len(ps); i++ {
			if ps[i] <= ps[i-1] {
				return nil, fmt.Errorf("wave %d not ascending at %d: %v", depth, i, ps)
			}
		}
		out := [][]float64{make([]float64, len(ps))}
		for i, p := range ps {
			out[0][i] = kink(p)
		}
		return out, nil
	}
	if _, err := Refine(Options{Grid: g, Configs: 1, Tolerance: 1e-3, MaxDepth: 6}, sb); err != nil {
		t.Fatal(err)
	}
	if wave < 2 {
		t.Fatalf("refinement ran only %d waves", wave)
	}
}

func assertAscending(t *testing.T, xs []float64) {
	t.Helper()
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("X not strictly ascending at %d: %v <= %v", i, xs[i], xs[i-1])
		}
	}
}

func assertSuperset(t *testing.T, xs, sub []float64) {
	t.Helper()
	have := map[uint64]bool{}
	for _, x := range xs {
		have[math.Float64bits(x)] = true
	}
	for _, x := range sub {
		if !have[math.Float64bits(x)] {
			t.Fatalf("refined grid is missing coarse point %v", x)
		}
	}
}
