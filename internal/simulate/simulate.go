// Package simulate runs selfish-mining strategies from the attack MDP on
// the physical blockchain substrate (package chain) with the (p, k)-mining
// race (package mining), producing an empirical estimate of the expected
// relative revenue.
//
// The simulator maintains the real block tree and the MDP state mirror side
// by side and checks, at every mining phase, that the MDP's reward
// bookkeeping (blocks declared permanent) exactly matches ownership of the
// main chain beyond the contestable window in the tree. A divergence is
// returned as an error, making every Monte-Carlo run an end-to-end
// consistency test between the formal model and the chain semantics.
package simulate

import (
	"fmt"
	"math"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mining"
)

// Stats summarizes a simulation run.
type Stats struct {
	// Steps is the number of MDP steps executed.
	Steps int
	// AdvBlocks and HonestBlocks count permanent main-chain blocks.
	AdvBlocks, HonestBlocks int
	// ERRev is the empirical relative revenue AdvBlocks / total.
	ERRev float64
	// StdErr is the binomial standard error of ERRev (an approximation:
	// block outcomes are weakly dependent).
	StdErr float64
	// Races and RaceWins count γ-races fought and won.
	Races, RaceWins int
	// Releases counts fork reveals (including races).
	Releases int
	// Orphaned counts honest-mined blocks orphaned by accepted releases.
	Orphaned int
	// ChainLength is the final main-chain height.
	ChainLength int
}

// Run simulates the given positional strategy for the given number of MDP
// steps. The policy must cover the model's state space (as produced by the
// analysis package). The simulation is deterministic per seed.
func Run(m *core.Model, policy []int, steps int, seed int64) (*Stats, error) {
	if len(policy) != m.NumStates() {
		return nil, fmt.Errorf("simulate: policy covers %d states, model has %d", len(policy), m.NumStates())
	}
	if steps <= 0 {
		return nil, fmt.Errorf("simulate: steps = %d, need > 0", steps)
	}
	params := m.Params()
	race, err := mining.NewRace(params.P, seed)
	if err != nil {
		return nil, err
	}
	sim, err := newRun(m, race)
	if err != nil {
		return nil, err
	}
	for i := 0; i < steps; i++ {
		if err := sim.step(policy); err != nil {
			return nil, fmt.Errorf("simulate: step %d: %w", i, err)
		}
	}
	if err := sim.auditLedger(); err != nil {
		return nil, fmt.Errorf("simulate: final audit: %w", err)
	}
	st := sim.stats
	st.Steps = steps
	st.AdvBlocks = sim.rewardA
	st.HonestBlocks = sim.rewardH
	total := st.AdvBlocks + st.HonestBlocks
	if total > 0 {
		st.ERRev = float64(st.AdvBlocks) / float64(total)
		st.StdErr = math.Sqrt(st.ERRev * (1 - st.ERRev) / float64(total))
	}
	st.ChainLength = sim.tree.TipHeight()
	return &st, nil
}

// run is the mutable simulation state.
type run struct {
	m     *core.Model
	codec *core.Codec
	race  *mining.Race
	tree  *chain.Tree

	cur   int               // current MDP state index
	s     *core.State       // decode scratch
	forks [][]chain.BlockID // forks[(i-1)*f+(j-1)] = block IDs of fork (i,j), oldest first

	rewardA, rewardH int // accumulated permanent blocks per the MDP
	checks           int // consistency-check counter (drives periodic audits)
	stats            Stats
}

func newRun(m *core.Model, race *mining.Race) (*run, error) {
	params := m.Params()
	tree := chain.NewTree()
	// Seed the window: the MDP's initial owner vector O = [honest]^(d-1)
	// corresponds to d−1 pre-existing public honest blocks above genesis.
	parent := chain.GenesisID
	for i := 0; i < params.Depth-1; i++ {
		id, err := tree.Mine(parent, chain.Honest, 0, true)
		if err != nil {
			return nil, err
		}
		parent = id
	}
	forks := make([][]chain.BlockID, params.Depth*params.Forks)
	return &run{
		m:     m,
		codec: m.Codec(),
		race:  race,
		tree:  tree,
		cur:   m.Initial(),
		s:     m.Codec().NewState(),
		forks: forks,
	}, nil
}

func (r *run) fork(i, j int) []chain.BlockID {
	return r.forks[(i-1)*r.m.Params().Forks+(j-1)]
}

func (r *run) setFork(i, j int, ids []chain.BlockID) {
	r.forks[(i-1)*r.m.Params().Forks+(j-1)] = ids
}

// step advances the simulation by one MDP transition.
func (r *run) step(policy []int) error {
	r.codec.Decode(r.cur, r.s)
	switch r.s.Phase {
	case core.Mining:
		return r.stepMining()
	case core.PendingHonest:
		return r.stepPendingHonest(policy[r.cur])
	case core.AdvTurn:
		return r.stepAdvTurn(policy[r.cur])
	default:
		return fmt.Errorf("invalid phase %v", r.s.Phase)
	}
}

// miningTargets enumerates the adversary's σ mining targets in the same
// order as the MDP transition function: for each depth, nonempty forks
// first (row-major), then one fresh-fork attempt if a slot is free.
type target struct {
	i, j  int
	fresh bool
}

func (r *run) miningTargets() []target {
	params := r.m.Params()
	var out []target
	for i := 1; i <= params.Depth; i++ {
		freshJ := 0
		for j := 1; j <= params.Forks; j++ {
			if r.s.ForkLen(params.Forks, i, j) > 0 {
				out = append(out, target{i: i, j: j})
			} else if freshJ == 0 {
				freshJ = j
			}
		}
		if freshJ > 0 {
			out = append(out, target{i: i, j: freshJ, fresh: true})
		}
	}
	return out
}

func (r *run) stepMining() error {
	params := r.m.Params()
	targets := r.miningTargets()
	w := r.race.Winner(len(targets))
	next := r.codec.NewState()
	copy(next.C, r.s.C)
	copy(next.O, r.s.O)
	if w == mining.HonestWinner {
		// The honest block is pending: it is added to the tree only when
		// the adversary's decision resolves.
		next.Phase = core.PendingHonest
		r.cur = r.codec.Encode(next)
		return nil
	}
	tg := targets[w]
	cur := r.s.ForkLen(params.Forks, tg.i, tg.j)
	if int(cur) < params.MaxLen {
		// Physically mine the private block.
		parent, err := r.forkTipParent(tg.i, tg.j)
		if err != nil {
			return err
		}
		id, err := r.tree.Mine(parent, chain.Adversary, r.stats.Steps, false)
		if err != nil {
			return err
		}
		r.setFork(tg.i, tg.j, append(r.fork(tg.i, tg.j), id))
		next.SetForkLen(params.Forks, tg.i, tg.j, cur+1)
	}
	// At the cap the attempt is wasted: the model discards the block, so the
	// simulator does not materialize it either.
	next.Phase = core.AdvTurn
	r.cur = r.codec.Encode(next)
	return nil
}

// forkTipParent returns the block a new fork(i,j) block extends: the last
// private block of the fork, or the main-chain block at depth i for a
// fresh fork.
func (r *run) forkTipParent(i, j int) (chain.BlockID, error) {
	if ids := r.fork(i, j); len(ids) > 0 {
		return ids[len(ids)-1], nil
	}
	b, err := r.tree.AtDepth(i)
	if err != nil {
		return 0, fmt.Errorf("fresh fork root at depth %d: %w", i, err)
	}
	return b.ID, nil
}

func (r *run) stepPendingHonest(action int) error {
	// Whatever the decision, the pending honest block is broadcast: it
	// lands on the (old) tip first; races are then resolved against it.
	if _, err := r.tree.Mine(r.tree.Tip(), chain.Honest, r.stats.Steps, true); err != nil {
		return err
	}
	if action == 0 {
		return r.mirrorLand()
	}
	i, j, k := r.releaseAction(action)
	if k == i {
		// γ-race: the revealed fork ties the honest block's chain.
		r.stats.Races++
		if win := r.race.Bernoulli(r.m.Params().Gamma); win {
			r.stats.RaceWins++
			return r.acceptRelease(i, j, k, true, true)
		}
		// Lost race: the revealed blocks stay in the tree as a public
		// losing branch (the MDP keeps the fork available, matching
		// longest-chain semantics).
		lastRevealed := r.fork(i, j)[k-1]
		if adopted, err := r.tree.Publish(lastRevealed, false); err != nil {
			return err
		} else if adopted {
			return fmt.Errorf("lost race was adopted by the tree (fork(%d,%d) k=%d)", i, j, k)
		}
		return r.mirrorLand()
	}
	// k > i: strictly longer than even the extended public chain; the
	// honest block is orphaned outright.
	return r.acceptRelease(i, j, k, false, true)
}

func (r *run) stepAdvTurn(action int) error {
	next := r.codec.NewState()
	copy(next.C, r.s.C)
	copy(next.O, r.s.O)
	if action == 0 {
		next.Phase = core.Mining
		r.cur = r.codec.Encode(next)
		return r.checkConsistency()
	}
	i, j, k := r.releaseAction(action)
	return r.acceptRelease(i, j, k, false, false)
}

// releaseAction decodes a release action index against the current state
// using the model's own enumeration (via the action label is fragile;
// instead mirror the enumeration order).
func (r *run) releaseAction(action int) (i, j, k int) {
	params := r.m.Params()
	rem := action - 1
	for i = 1; i <= params.Depth; i++ {
		for j = 1; j <= params.Forks; j++ {
			c := int(r.s.ForkLen(params.Forks, i, j))
			if c < i {
				continue
			}
			cnt := c - i + 1
			if rem < cnt {
				return i, j, i + rem
			}
			rem -= cnt
		}
	}
	panic(fmt.Sprintf("simulate: release action %d out of range", action))
}

// mirrorLand applies the MDP-side shift after the pending honest block has
// been materialized on the tree: forks and owners shift one deeper, and the
// block leaving the window becomes permanent.
func (r *run) mirrorLand() error {
	params := r.m.Params()
	if params.Depth == 1 {
		r.rewardH++
	} else if r.s.O[params.Depth-2] == core.Adversary {
		r.rewardA++
	} else {
		r.rewardH++
	}
	next := r.codec.NewState()
	next.Phase = core.Mining
	copy(next.C[params.Forks:], r.s.C[:(params.Depth-1)*params.Forks])
	if params.Depth >= 2 {
		next.O[0] = core.Honest
		copy(next.O[1:], r.s.O[:params.Depth-2])
	}
	// Fork bookkeeping: row d is dropped, rows shift deeper.
	nf := make([][]chain.BlockID, len(r.forks))
	copy(nf[params.Forks:], r.forks[:(params.Depth-1)*params.Forks])
	r.forks = nf
	r.cur = r.codec.Encode(next)
	return r.checkConsistency()
}

// acceptRelease publishes the first k blocks of fork (i, j) and rebuilds
// the mirror exactly as the MDP's accept transition does. pendingLanded
// reports that a pending honest block was materialized at depth 1 just
// before the release (it is orphaned along with the old depths 1..i-1).
func (r *run) acceptRelease(i, j, k int, raceWin, pendingLanded bool) error {
	params := r.m.Params()
	d, f := params.Depth, params.Forks
	ids := r.fork(i, j)
	if len(ids) < k {
		return fmt.Errorf("release of %d blocks from fork(%d,%d) holding %d", k, i, j, len(ids))
	}
	r.stats.Releases++
	// Count orphaned honest main-chain blocks: the old depths 1..i-1, which
	// sit at current depths shifted by one if the pending block landed.
	orphanDepths := i - 1
	if pendingLanded {
		orphanDepths = i
	}
	for depth := 1; depth <= orphanDepths; depth++ {
		b, err := r.tree.AtDepth(depth)
		if err != nil {
			return err
		}
		if b.Owner == chain.Honest {
			r.stats.Orphaned++
		}
	}
	adopted, err := r.tree.Publish(ids[k-1], raceWin)
	if err != nil {
		return err
	}
	if !adopted {
		return fmt.Errorf("accepted release was not adopted by the tree (fork(%d,%d) k=%d)", i, j, k)
	}

	// Mirror rewards: identical arithmetic to core's acceptRelease.
	delta := k - i + 1
	if k >= d {
		r.rewardA += k - d + 1
	}
	for mDepth := max(i, d-delta); mDepth <= d-1; mDepth++ {
		if r.s.O[mDepth-1] == core.Adversary {
			r.rewardA++
		} else {
			r.rewardH++
		}
	}
	next := r.codec.NewState()
	next.Phase = core.Mining
	for pos := 1; pos <= d-1; pos++ {
		if pos <= k {
			next.O[pos-1] = core.Adversary
		} else {
			next.O[pos-1] = r.s.O[pos-delta-1]
		}
	}
	nf := make([][]chain.BlockID, len(r.forks))
	// Remainder rides the new tip.
	next.SetForkLen(f, 1, 1, r.s.ForkLen(f, i, j)-uint8(k))
	nf[0] = append([]chain.BlockID(nil), ids[k:]...)
	for row := k + 1; row <= d; row++ {
		oldRow := row - delta
		for jj := 1; jj <= f; jj++ {
			if oldRow == i && jj == j {
				continue
			}
			next.SetForkLen(f, row, jj, r.s.ForkLen(f, oldRow, jj))
			nf[(row-1)*f+(jj-1)] = r.forks[(oldRow-1)*f+(jj-1)]
		}
	}
	r.forks = nf
	r.cur = r.codec.Encode(next)
	return r.checkConsistency()
}

// checkEvery is how often (in calls) the full-ledger consistency audit
// runs. The audit walks the entire main chain, so auditing every step would
// make long simulations quadratic; periodic audits (plus one at every
// window check) retain full divergence detection at checkpoint granularity.
const checkEvery = 512

// checkConsistency verifies, after transitions back to the mining phase,
// that the contestable window owners agree between the tree and the MDP
// mirror, and — periodically — that the permanent-block ledger of the tree
// matches the MDP's accumulated rewards.
func (r *run) checkConsistency() error {
	params := r.m.Params()
	r.checks++
	if r.checks%checkEvery == 0 {
		if err := r.auditLedger(); err != nil {
			return err
		}
	}
	r.codec.Decode(r.cur, r.s)
	for depth := 1; depth <= params.Depth-1; depth++ {
		b, err := r.tree.AtDepth(depth)
		if err != nil {
			return fmt.Errorf("window owner at depth %d: %w", depth, err)
		}
		want := core.Honest
		if b.Owner == chain.Adversary {
			want = core.Adversary
		}
		if r.s.O[depth-1] != want {
			return fmt.Errorf("window divergence at depth %d: MDP %d vs tree %v", depth, r.s.O[depth-1], b.Owner)
		}
	}
	r.stats.AdvBlocks = r.rewardA
	r.stats.HonestBlocks = r.rewardH
	return nil
}

// auditLedger performs the full permanent-block reconciliation between the
// tree and the MDP reward stream.
func (r *run) auditLedger() error {
	h, a := r.tree.OwnerCounts(r.m.Params().Depth - 1)
	if h != r.rewardH || a != r.rewardA {
		return fmt.Errorf("ledger divergence: tree (honest=%d adv=%d) vs MDP rewards (honest=%d adv=%d)", h, a, r.rewardH, r.rewardA)
	}
	return nil
}
