package simulate

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

func analyzed(t *testing.T, p core.Params) (*core.Model, []int, float64) {
	t.Helper()
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel(%v): %v", p, err)
	}
	res, err := analysis.Analyze(m, analysis.Options{Epsilon: 1e-4})
	if err != nil {
		t.Fatalf("Analyze(%v): %v", p, err)
	}
	return m, res.Strategy, res.StrategyERRev
}

// TestSimulationMatchesExactERRev is the end-to-end integration check: the
// optimal strategy computed by Algorithm 1, replayed on the physical block
// tree for many steps, must reproduce the exact stationary ERRev within
// Monte-Carlo error. Every step also self-checks ledger and window
// consistency between the tree and the MDP mirror.
func TestSimulationMatchesExactERRev(t *testing.T) {
	configs := []core.Params{
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 4},
		{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4},
		{P: 0.25, Gamma: 0.75, Depth: 2, Forks: 2, MaxLen: 3},
		{P: 0.3, Gamma: 0, Depth: 2, Forks: 1, MaxLen: 4},
	}
	for _, p := range configs {
		t.Run(p.String(), func(t *testing.T) {
			m, policy, want := analyzed(t, p)
			st, err := Run(m, policy, 400000, 12345)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			tol := 5*st.StdErr + 1e-3
			if math.Abs(st.ERRev-want) > tol {
				t.Errorf("empirical ERRev %.5f vs exact %.5f (tol %.5f, stderr %.5f)", st.ERRev, want, tol, st.StdErr)
			}
		})
	}
}

// TestSimulationHonestPolicy: the never-release policy yields zero
// adversary revenue and an all-honest chain.
func TestSimulationHonestPolicy(t *testing.T) {
	p := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	policy := make([]int, m.NumStates())
	st, err := Run(m, policy, 50000, 7)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.AdvBlocks != 0 {
		t.Errorf("never-release policy committed %d adversary blocks", st.AdvBlocks)
	}
	if st.HonestBlocks == 0 {
		t.Error("no honest blocks committed in 50000 steps")
	}
	if st.Releases != 0 || st.Races != 0 {
		t.Errorf("never-release policy released %d times, raced %d times", st.Releases, st.Races)
	}
}

// TestSimulationDeterministicPerSeed: identical seeds give identical stats.
func TestSimulationDeterministicPerSeed(t *testing.T) {
	p := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m, policy, _ := analyzed(t, p)
	a, err := Run(m, policy, 20000, 99)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(m, policy, 20000, 99)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *a != *b {
		t.Errorf("same seed, different stats:\n%+v\n%+v", a, b)
	}
}

// TestSimulationRaceAccounting: with γ=1 every race is won; with γ=0 every
// race is lost.
func TestSimulationRaceAccounting(t *testing.T) {
	for _, gamma := range []float64{0, 1} {
		p := core.Params{P: 0.3, Gamma: gamma, Depth: 2, Forks: 1, MaxLen: 4}
		m, policy, _ := analyzed(t, p)
		st, err := Run(m, policy, 100000, 3)
		if err != nil {
			t.Fatalf("gamma=%v: %v", gamma, err)
		}
		switch gamma {
		case 0:
			if st.RaceWins != 0 {
				t.Errorf("gamma=0 won %d races", st.RaceWins)
			}
		case 1:
			if st.RaceWins != st.Races {
				t.Errorf("gamma=1 won %d of %d races", st.RaceWins, st.Races)
			}
		}
	}
}

// TestSimulationValidation: bad inputs error.
func TestSimulationValidation(t *testing.T) {
	p := core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 2}
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if _, err := Run(m, []int{0}, 100, 1); err == nil {
		t.Error("short policy accepted")
	}
	policy := make([]int, m.NumStates())
	if _, err := Run(m, policy, 0, 1); err == nil {
		t.Error("zero steps accepted")
	}
}

// TestSimulationChainGrows: the main chain makes progress under the
// optimal attack (liveness is preserved, only chain quality degrades).
func TestSimulationChainGrows(t *testing.T) {
	p := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 4}
	m, policy, _ := analyzed(t, p)
	st, err := Run(m, policy, 50000, 5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.ChainLength < 5000 {
		t.Errorf("chain length %d after 50000 steps: liveness broken?", st.ChainLength)
	}
	if st.ERRev <= p.P-0.02 {
		t.Errorf("optimal attack ERRev %v clearly below honest %v", st.ERRev, p.P)
	}
}
