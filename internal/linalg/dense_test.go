package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveDenseIdentity(t *testing.T) {
	n := 5
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	for i := range b {
		if !almostEq(x[i], b[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestSolveDenseKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("got (%v, %v), want (1, 3)", x[0], x[1])
	}
}

func TestSolveDenseRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewDense(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveDense(a, []float64{2, 7})
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Errorf("got (%v, %v), want (7, 2)", x[0], x[1])
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveDense(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for singular matrix, got nil")
	}
}

func TestSolveDenseNonSquare(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := SolveDense(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for non-square matrix, got nil")
	}
}

func TestLUSolveDimensionMismatch(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	if _, err := f.Solve([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected dimension-mismatch error, got nil")
	}
}

// TestSolveDenseRandomProperty checks A x = b residuals on random
// well-conditioned systems (diagonally dominant).
func TestSolveDenseRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Add(i, i, rowSum+1) // force diagonal dominance
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * want[j]
			}
			b[i] = s
		}
		got, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEq(got[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Errorf("Clone is not independent: original changed to %v", a.At(0, 0))
	}
}
