package linalg

import (
	"math"
	"testing"
)

func TestNewCSRAndMulVec(t *testing.T) {
	// [1 2 0; 0 0 3]
	m, err := NewCSR(2, 3, []Entry{
		{Row: 0, Col: 0, Val: 1},
		{Row: 0, Col: 1, Val: 2},
		{Row: 1, Col: 2, Val: 3},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	y := make([]float64, 2)
	if err := m.MulVec([]float64{1, 1, 1}, y); err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if y[0] != 3 || y[1] != 3 {
		t.Errorf("MulVec = %v, want [3 3]", y)
	}
}

func TestNewCSRSumsDuplicates(t *testing.T) {
	m, err := NewCSR(1, 1, []Entry{
		{Row: 0, Col: 0, Val: 0.25},
		{Row: 0, Col: 0, Val: 0.75},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (duplicates summed)", m.NNZ())
	}
	if m.Val[0] != 1 {
		t.Errorf("summed value = %v, want 1", m.Val[0])
	}
}

func TestNewCSROutOfBounds(t *testing.T) {
	if _, err := NewCSR(2, 2, []Entry{{Row: 2, Col: 0, Val: 1}}); err == nil {
		t.Fatal("expected out-of-bounds error, got nil")
	}
	if _, err := NewCSR(2, 2, []Entry{{Row: 0, Col: -1, Val: 1}}); err == nil {
		t.Fatal("expected out-of-bounds error for negative col, got nil")
	}
}

func TestMulVecT(t *testing.T) {
	// [0.5 0.5; 1 0]ᵀ x for x = [1, 2] => [0.5+2, 0.5]
	m, err := NewCSR(2, 2, []Entry{
		{Row: 0, Col: 0, Val: 0.5},
		{Row: 0, Col: 1, Val: 0.5},
		{Row: 1, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	y := make([]float64, 2)
	if err := m.MulVecT([]float64{1, 2}, y); err != nil {
		t.Fatalf("MulVecT: %v", err)
	}
	if y[0] != 2.5 || y[1] != 0.5 {
		t.Errorf("MulVecT = %v, want [2.5 0.5]", y)
	}
}

func TestIsStochastic(t *testing.T) {
	ok, err := NewCSR(2, 2, []Entry{
		{Row: 0, Col: 0, Val: 0.3}, {Row: 0, Col: 1, Val: 0.7},
		{Row: 1, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if !ok.IsStochastic(1e-12) {
		t.Error("expected stochastic matrix to be recognized")
	}
	bad, err := NewCSR(1, 2, []Entry{{Row: 0, Col: 0, Val: 0.3}})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if bad.IsStochastic(1e-12) {
		t.Error("substochastic row accepted as stochastic")
	}
}

func TestStationaryTwoState(t *testing.T) {
	// P = [0.9 0.1; 0.5 0.5]; stationary pi = (5/6, 1/6).
	p, err := NewCSR(2, 2, []Entry{
		{Row: 0, Col: 0, Val: 0.9}, {Row: 0, Col: 1, Val: 0.1},
		{Row: 1, Col: 0, Val: 0.5}, {Row: 1, Col: 1, Val: 0.5},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	pi, err := Stationary(p, StationaryOptions{})
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	if !almostEq(pi[0], 5.0/6, 1e-9) || !almostEq(pi[1], 1.0/6, 1e-9) {
		t.Errorf("pi = %v, want [5/6 1/6]", pi)
	}
}

func TestStationaryPeriodicChain(t *testing.T) {
	// Two-state flip-flop is periodic; damping must still find pi = (1/2, 1/2).
	p, err := NewCSR(2, 2, []Entry{
		{Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	pi, err := Stationary(p, StationaryOptions{})
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	if !almostEq(pi[0], 0.5, 1e-9) || !almostEq(pi[1], 0.5, 1e-9) {
		t.Errorf("pi = %v, want [0.5 0.5]", pi)
	}
}

func TestStationaryRejectsNonStochastic(t *testing.T) {
	p, err := NewCSR(1, 1, []Entry{{Row: 0, Col: 0, Val: 0.5}})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if _, err := Stationary(p, StationaryOptions{}); err == nil {
		t.Fatal("expected error for non-stochastic matrix, got nil")
	}
}

func TestAbsorbingCycle(t *testing.T) {
	// Single transient state looping with prob 0.5, reward 1 per step until
	// absorption: h = 1 + 0.5 h => h = 2.
	q, err := NewCSR(1, 1, []Entry{{Row: 0, Col: 0, Val: 0.5}})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	h, err := AbsorbingCycle(q, []float64{1})
	if err != nil {
		t.Fatalf("AbsorbingCycle: %v", err)
	}
	if !almostEq(h[0], 2, 1e-12) {
		t.Errorf("h = %v, want 2", h[0])
	}
}

func TestGainBiasTwoState(t *testing.T) {
	// P = [0 1; 1 0], r = [1, 0]: gain = 0.5.
	p, err := NewCSR(2, 2, []Entry{
		{Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	g, h, err := GainBias(p, []float64{1, 0}, 0)
	if err != nil {
		t.Fatalf("GainBias: %v", err)
	}
	if !almostEq(g, 0.5, 1e-12) {
		t.Errorf("gain = %v, want 0.5", g)
	}
	if h[0] != 0 {
		t.Errorf("bias at ref = %v, want 0", h[0])
	}
	// Check the evaluation equation g + h0 = r0 + h1.
	if !almostEq(g+h[0], 1+h[1], 1e-12) {
		t.Errorf("evaluation equation violated: %v != %v", g+h[0], 1+h[1])
	}
}

func TestGainBiasSelfLoop(t *testing.T) {
	p, err := NewCSR(1, 1, []Entry{{Row: 0, Col: 0, Val: 1}})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	g, _, err := GainBias(p, []float64{0.37}, 0)
	if err != nil {
		t.Fatalf("GainBias: %v", err)
	}
	if !almostEq(g, 0.37, 1e-12) {
		t.Errorf("gain = %v, want 0.37", g)
	}
}

func TestRowSums(t *testing.T) {
	m, err := NewCSR(2, 2, []Entry{
		{Row: 0, Col: 0, Val: 0.25}, {Row: 0, Col: 1, Val: 0.5},
	})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	sums := m.RowSums()
	if math.Abs(sums[0]-0.75) > 1e-12 || sums[1] != 0 {
		t.Errorf("RowSums = %v, want [0.75 0]", sums)
	}
}

func TestToDense(t *testing.T) {
	m, err := NewCSR(2, 2, []Entry{{Row: 1, Col: 0, Val: 4}})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	d := m.ToDense()
	if d.At(1, 0) != 4 || d.At(0, 0) != 0 {
		t.Errorf("ToDense mismatch: %v", d.Data)
	}
}
