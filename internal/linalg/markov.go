package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative method fails to reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("linalg: iteration limit reached before convergence")

// StationaryOptions configures the stationary-distribution power iteration.
type StationaryOptions struct {
	Tol     float64 // L1 stopping tolerance; default 1e-12
	MaxIter int     // default 200000
	Damping float64 // self-loop mixing in (0,1] to break periodicity; default 0.5
}

func (o *StationaryOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200000
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.5
	}
}

// Stationary computes the stationary distribution π of an irreducible
// row-stochastic matrix P via damped power iteration on πᵀ = πᵀP.
// The damping (π ← (1−τ)π + τ πP) leaves the fixed point unchanged while
// guaranteeing aperiodicity.
func Stationary(p *CSR, opts StationaryOptions) ([]float64, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("linalg: Stationary needs a square matrix, got %dx%d", p.Rows, p.Cols)
	}
	if !p.IsStochastic(1e-9) {
		return nil, errors.New("linalg: Stationary requires a row-stochastic matrix")
	}
	opts.defaults()
	n := p.Rows
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	tau := opts.Damping
	for iter := 0; iter < opts.MaxIter; iter++ {
		if err := p.MulVecT(pi, next); err != nil {
			return nil, err
		}
		var diff, sum float64
		for i := range next {
			next[i] = (1-tau)*pi[i] + tau*next[i]
			diff += math.Abs(next[i] - pi[i])
			sum += next[i]
		}
		// Renormalize to guard against drift.
		for i := range next {
			next[i] /= sum
		}
		pi, next = next, pi
		if diff < opts.Tol {
			return pi, nil
		}
	}
	return nil, ErrNoConvergence
}

// AbsorbingCycle solves the expected accumulated reward until absorption for
// a transient Markov chain: h = r + Q h where Q is the transient-to-transient
// transition matrix (substochastic) and r the expected one-step reward per
// transient state. Returns h (dense solve; intended for small chains).
func AbsorbingCycle(q *CSR, r []float64) ([]float64, error) {
	if q.Rows != q.Cols {
		return nil, fmt.Errorf("linalg: AbsorbingCycle needs a square matrix, got %dx%d", q.Rows, q.Cols)
	}
	if len(r) != q.Rows {
		return nil, fmt.Errorf("linalg: AbsorbingCycle reward length %d != %d states", len(r), q.Rows)
	}
	n := q.Rows
	// Build I - Q densely.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	for row := 0; row < n; row++ {
		for k := q.RowPtr[row]; k < q.RowPtr[row+1]; k++ {
			a.Add(row, int(q.ColIdx[k]), -q.Val[k])
		}
	}
	return SolveDense(a, r)
}

// GainBias solves the average-reward evaluation equations for an ergodic
// unichain Markov chain with transition matrix P and per-state expected
// reward r:
//
//	g + h(s) = r(s) + Σ_s' P(s,s') h(s'),   h(ref) = 0.
//
// It returns the gain g and bias vector h using a dense linear solve
// (intended for small chains; large chains should use iterative evaluation
// in package solve).
func GainBias(p *CSR, r []float64, ref int) (float64, []float64, error) {
	if p.Rows != p.Cols {
		return 0, nil, fmt.Errorf("linalg: GainBias needs a square matrix, got %dx%d", p.Rows, p.Cols)
	}
	n := p.Rows
	if len(r) != n {
		return 0, nil, fmt.Errorf("linalg: GainBias reward length %d != %d states", len(r), n)
	}
	if ref < 0 || ref >= n {
		return 0, nil, fmt.Errorf("linalg: GainBias reference state %d out of range [0,%d)", ref, n)
	}
	// Unknowns: [g, h_0, ..., h_{n-1}] with h_ref pinned to 0, so n+1
	// unknowns and n+1 equations (n evaluation equations + the pin).
	m := NewDense(n+1, n+1)
	b := make([]float64, n+1)
	for s := 0; s < n; s++ {
		m.Set(s, 0, 1)   // g
		m.Add(s, s+1, 1) // h(s)
		for k := p.RowPtr[s]; k < p.RowPtr[s+1]; k++ {
			m.Add(s, int(p.ColIdx[k])+1, -p.Val[k])
		}
		b[s] = r[s]
	}
	m.Set(n, ref+1, 1) // h(ref) = 0
	x, err := SolveDense(m, b)
	if err != nil {
		return 0, nil, err
	}
	return x[0], x[1 : n+1], nil
}
