// Package linalg provides the small dense and sparse linear-algebra
// routines needed by the Markov chain and MDP analyses: LU factorization
// with partial pivoting, CSR sparse matrices, power iteration, stationary
// distributions of stochastic matrices, and absorbing-chain solves.
//
// The package is intentionally minimal and dependency-free; it is not a
// general-purpose linear-algebra library. All matrices are row-major.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zero Rows-by-Cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the LU factorization with partial pivoting of a square
// matrix. The input is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: FactorLU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in column col.
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if ab := math.Abs(lu.At(r, col)); ab > maxAbs {
				maxAbs, p = ab, r
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != col {
			rowP := lu.Data[p*n : (p+1)*n]
			rowC := lu.Data[col*n : (col+1)*n]
			for j := 0; j < n; j++ {
				rowP[j], rowC[j] = rowC[j], rowP[j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		pivot := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / pivot
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rowR := lu.Data[r*n : (r+1)*n]
			rowC := lu.Data[col*n : (col+1)*n]
			for j := col + 1; j < n; j++ {
				rowR[j] -= f * rowC[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU.Solve dimension mismatch: matrix %d, rhs %d", n, len(b))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveDense solves A x = b for a square dense A.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
