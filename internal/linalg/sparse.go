package linalg

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64   // len Rows+1
	ColIdx     []int32   // len nnz
	Val        []float64 // len nnz
}

// Entry is a single (row, col, value) triple used to build sparse matrices.
type Entry struct {
	Row, Col int
	Val      float64
}

// NewCSR builds a CSR matrix from unordered entries. Duplicate (row, col)
// pairs are summed.
func NewCSR(rows, cols int, entries []Entry) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of bounds for %dx%d matrix", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, rows+1),
	}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, int32(sorted[i].Col))
		m.Val = append(m.Val, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = M x. y must have length Rows, x length Cols.
func (m *CSR) MulVec(x, y []float64) error {
	if len(x) != m.Cols || len(y) != m.Rows {
		return fmt.Errorf("linalg: MulVec dimension mismatch: matrix %dx%d, x %d, y %d", m.Rows, m.Cols, len(x), len(y))
	}
	for r := 0; r < m.Rows; r++ {
		var s float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
	return nil
}

// MulVecT computes y = Mᵀ x, i.e. y[c] = Σ_r M[r,c] x[r].
// y must have length Cols, x length Rows.
func (m *CSR) MulVecT(x, y []float64) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("linalg: MulVecT dimension mismatch: matrix %dx%d, x %d, y %d", m.Rows, m.Cols, len(x), len(y))
	}
	for i := range y {
		y[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			y[m.ColIdx[k]] += m.Val[k] * xr
		}
	}
	return nil
}

// RowSums returns the vector of row sums; useful to validate stochasticity.
func (m *CSR) RowSums() []float64 {
	sums := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var s float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k]
		}
		sums[r] = s
	}
	return sums
}

// IsStochastic reports whether every row sums to 1 within tol and all
// entries are non-negative.
func (m *CSR) IsStochastic(tol float64) bool {
	for _, v := range m.Val {
		if v < -tol {
			return false
		}
	}
	for _, s := range m.RowSums() {
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// ToDense expands the matrix; intended for tests and small systems only.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			d.Add(r, int(m.ColIdx[k]), m.Val[k])
		}
	}
	return d
}
