// Package mining implements the discrete-time (p, k)-mining race of the
// paper's system model (Section 2.1): in each time step, an adversary
// holding a p fraction of the resource and concurrently attempting σ block
// extensions wins on any particular target with probability p/(1−p+p·σ),
// and the honest miners (who extend only the public tip) win with
// probability (1−p)/(1−p+p·σ).
package mining

import (
	"fmt"
	"math"
	"math/rand"
)

// HonestWinner is the Winner result representing the honest miners.
const HonestWinner = -1

// Race samples per-step winners of the (p, k)-mining race.
type Race struct {
	p   float64
	rng *rand.Rand
}

// NewRace creates a race sampler. p must be in [0, 1].
func NewRace(p float64, seed int64) (*Race, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("mining: resource fraction p = %v outside [0, 1]", p)
	}
	return &Race{p: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// TargetProb returns the per-target adversary win probability for σ
// concurrent targets.
func TargetProb(p float64, sigma int) float64 {
	if sigma <= 0 {
		return 0
	}
	return p / (1 - p + p*float64(sigma))
}

// HonestProb returns the honest win probability for σ concurrent adversary
// targets.
func HonestProb(p float64, sigma int) float64 {
	return (1 - p) / (1 - p + p*float64(sigma))
}

// Winner samples the step's winner given σ adversary targets: it returns a
// target index in [0, σ) if the adversary wins on that target, or
// HonestWinner if the honest miners win.
func (r *Race) Winner(sigma int) int {
	if sigma < 0 {
		sigma = 0
	}
	u := r.rng.Float64()
	pt := TargetProb(r.p, sigma)
	advTotal := float64(sigma) * pt
	if u < advTotal {
		idx := int(u / pt)
		if idx >= sigma { // guard against floating-point edge
			idx = sigma - 1
		}
		return idx
	}
	return HonestWinner
}

// Bernoulli samples an event of the given probability (used for γ races).
func (r *Race) Bernoulli(prob float64) bool {
	return r.rng.Float64() < prob
}
