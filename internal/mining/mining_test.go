package mining

import (
	"math"
	"testing"
)

func TestTargetAndHonestProbsSumToOne(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.3, 0.9, 1} {
		for sigma := 1; sigma <= 8; sigma++ {
			total := float64(sigma)*TargetProb(p, sigma) + HonestProb(p, sigma)
			if math.Abs(total-1) > 1e-12 {
				t.Errorf("p=%v sigma=%d: probabilities sum to %v", p, sigma, total)
			}
		}
	}
}

func TestTargetProbZeroSigma(t *testing.T) {
	if got := TargetProb(0.3, 0); got != 0 {
		t.Errorf("TargetProb(0.3, 0) = %v, want 0", got)
	}
}

func TestNewRaceValidation(t *testing.T) {
	if _, err := NewRace(-0.1, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := NewRace(1.1, 1); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := NewRace(math.NaN(), 1); err == nil {
		t.Error("NaN p accepted")
	}
}

func TestWinnerFrequencies(t *testing.T) {
	const p = 0.3
	const sigma = 4
	r, err := NewRace(p, 42)
	if err != nil {
		t.Fatalf("NewRace: %v", err)
	}
	const trials = 200000
	counts := make([]int, sigma)
	honest := 0
	for i := 0; i < trials; i++ {
		w := r.Winner(sigma)
		if w == HonestWinner {
			honest++
		} else {
			counts[w]++
		}
	}
	wantTarget := TargetProb(p, sigma)
	for i, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-wantTarget) > 0.005 {
			t.Errorf("target %d rate %v, want ~%v", i, rate, wantTarget)
		}
	}
	honestRate := float64(honest) / trials
	if math.Abs(honestRate-HonestProb(p, sigma)) > 0.005 {
		t.Errorf("honest rate %v, want ~%v", honestRate, HonestProb(p, sigma))
	}
}

func TestWinnerDeterministicPerSeed(t *testing.T) {
	a, _ := NewRace(0.3, 7)
	b, _ := NewRace(0.3, 7)
	for i := 0; i < 100; i++ {
		if a.Winner(3) != b.Winner(3) {
			t.Fatal("same seed produced different winner sequences")
		}
	}
}

func TestWinnerHonestOnlyWhenNoTargets(t *testing.T) {
	r, _ := NewRace(0.9, 5)
	for i := 0; i < 100; i++ {
		if w := r.Winner(0); w != HonestWinner {
			t.Fatalf("sigma=0 produced adversary winner %d", w)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r, _ := NewRace(0.5, 11)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if rate := float64(hits) / trials; math.Abs(rate-0.25) > 0.005 {
		t.Errorf("Bernoulli(0.25) rate %v", rate)
	}
}
