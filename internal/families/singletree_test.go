package families

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/kernel"
)

// TestSingletreeMatchesBaselineGrid is the family's validation story: the
// ERRev certified by Algorithm 1 over the singletree MDP must match the
// independent exact stationary chain analysis of package baseline within
// 1e-6 across a (p, γ) grid. The two implementations share no code — the
// MDP source is built from the protocol description, the baseline folds
// expected rewards into a chain and solves for its stationary
// distribution — so agreement validates the kernel, the analysis layer and
// the family all at once.
func TestSingletreeMatchesBaselineGrid(t *testing.T) {
	const width, depth = 3, 3
	shape := core.Params{Depth: 1, Forks: width, MaxLen: depth}
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.45} {
		for _, gamma := range []float64{0, 0.5, 1} {
			params := shape
			params.P, params.Gamma = p, gamma
			c, err := Compile("singletree", params)
			if err != nil {
				t.Fatalf("p=%v gamma=%v: Compile: %v", p, gamma, err)
			}
			res, err := analysis.AnalyzeCompiled(c, analysis.Options{Epsilon: 1e-7, SkipStrategy: true})
			if err != nil {
				t.Fatalf("p=%v gamma=%v: AnalyzeCompiled: %v", p, gamma, err)
			}
			want, err := baseline.SingleTreeERRev(baseline.SingleTreeParams{
				P: p, Gamma: gamma, MaxDepth: depth, MaxWidth: width,
			})
			if err != nil {
				t.Fatalf("p=%v gamma=%v: baseline: %v", p, gamma, err)
			}
			if math.Abs(res.ERRev-want) > 1e-6 {
				t.Errorf("p=%v gamma=%v: family ERRev %.9f, baseline %.9f (diff %.2g)",
					p, gamma, res.ERRev, want, math.Abs(res.ERRev-want))
			}
		}
	}
}

// TestSingletreeStateSpaceMatchesBaseline: the independently explored MDP
// must visit exactly as many states as the baseline's chain exploration.
func TestSingletreeStateSpaceMatchesBaseline(t *testing.T) {
	fam, err := Get("singletree")
	if err != nil {
		t.Fatal(err)
	}
	shape := core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 4, MaxLen: 4}
	n, err := fam.NumStates(shape)
	if err != nil {
		t.Fatal(err)
	}
	st, err := baseline.NewSingleTree(baseline.SingleTreeParams{
		P: 0.3, Gamma: 0.5, MaxDepth: 4, MaxWidth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != st.NumStates() {
		t.Errorf("family explored %d states, baseline %d", n, st.NumStates())
	}
}

func TestSingletreeStochastic(t *testing.T) {
	for _, pt := range []struct{ p, gamma float64 }{{0.3, 0.5}, {0, 0}, {0.6, 1}} {
		c, err := Compile("singletree", core.Params{P: pt.p, Gamma: pt.gamma, Depth: 1, Forks: 3, MaxLen: 3})
		if err != nil {
			t.Fatalf("p=%v gamma=%v: %v", pt.p, pt.gamma, err)
		}
		if err := c.CheckStochastic(1e-6); err != nil {
			t.Errorf("p=%v gamma=%v: %v", pt.p, pt.gamma, err)
		}
	}
}

func TestSingletreeValidate(t *testing.T) {
	fam, err := Get("singletree")
	if err != nil {
		t.Fatal(err)
	}
	good := core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 5, MaxLen: 4}
	if err := fam.Validate(good); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []core.Params{
		{P: 1, Gamma: 0.5, Depth: 1, Forks: 5, MaxLen: 4},    // non-ergodic
		{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 5, MaxLen: 4},  // depth must be 1
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 0, MaxLen: 4},  // width
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 5, MaxLen: 9},  // tree depth bound
		{P: -0.1, Gamma: 0.5, Depth: 1, Forks: 5, MaxLen: 4}, // p range
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 10, MaxLen: 6}, // joint state bound
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 31, MaxLen: 8}, // joint state bound (extreme)
	}
	for _, b := range bad {
		if err := fam.Validate(b); err == nil {
			t.Errorf("invalid params %+v accepted", b)
		}
	}
}

// TestSingletreeSourceShape: one action per state, and every state's
// transition list is non-empty.
func TestSingletreeSourceShape(t *testing.T) {
	fam, err := Get("singletree")
	if err != nil {
		t.Fatal(err)
	}
	src, err := fam.Source(core.Params{P: 0.2, Gamma: 0.5, Depth: 1, Forks: 2, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf []kernel.Raw
	for s := 0; s < src.NumStates(); s++ {
		if na := src.NumActions(s); na != 1 {
			t.Fatalf("state %d has %d actions, want 1", s, na)
		}
		buf = src.RawTransitions(s, 0, buf[:0])
		if len(buf) == 0 {
			t.Fatalf("state %d has no transitions", s)
		}
	}
}
