package families

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestGetDefaultAndNamed(t *testing.T) {
	def, err := Get("")
	if err != nil {
		t.Fatalf("Get(\"\"): %v", err)
	}
	if def.Name() != DefaultName {
		t.Errorf("default family is %q, want %q", def.Name(), DefaultName)
	}
	for _, name := range []string{"fork", "singletree", "nakamoto"} {
		f, err := Get(name)
		if err != nil {
			t.Errorf("Get(%q): %v", name, err)
			continue
		}
		if f.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, f.Name())
		}
		if f.Description() == "" {
			t.Errorf("family %q has no description", name)
		}
		d, fk, l := f.DefaultShape()
		if err := f.Validate(core.Params{P: 0.1, Gamma: 0.5, Depth: d, Forks: fk, MaxLen: l}); err != nil {
			t.Errorf("family %q rejects its own default shape: %v", name, err)
		}
	}
}

func TestGetUnknownListsValidFamilies(t *testing.T) {
	_, err := Get("bogus")
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	msg := err.Error()
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid family %q", msg, name)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) < 3 {
		t.Errorf("expected at least 3 registered families, got %v", names)
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d families, Names() %d", len(all), len(names))
	}
	for i, f := range all {
		if f.Name() != names[i] {
			t.Errorf("All()[%d] = %q, want %q", i, f.Name(), names[i])
		}
	}
}

// TestForkCompileMatchesCore: the registry's fork path must produce the
// same compiled solver as the historical core.Compile entry point.
func TestForkCompileMatchesCore(t *testing.T) {
	params := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	viaRegistry, err := Compile("fork", params)
	if err != nil {
		t.Fatalf("families.Compile: %v", err)
	}
	viaCore, err := core.Compile(params)
	if err != nil {
		t.Fatalf("core.Compile: %v", err)
	}
	if viaRegistry.NumStates() != viaCore.NumStates() || viaRegistry.NumTransitions() != viaCore.NumTransitions() {
		t.Fatalf("structures differ: %d/%d states, %d/%d transitions",
			viaRegistry.NumStates(), viaCore.NumStates(), viaRegistry.NumTransitions(), viaCore.NumTransitions())
	}
	a, err := viaRegistry.MeanPayoff(0.35, core.CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaCore.MeanPayoff(0.35, core.CompiledOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Gain != b.Gain || a.Lo != b.Lo || a.Hi != b.Hi || a.Iters != b.Iters {
		t.Errorf("registry solve (%v, %v, %v, %d) != core solve (%v, %v, %v, %d)",
			a.Gain, a.Lo, a.Hi, a.Iters, b.Gain, b.Lo, b.Hi, b.Iters)
	}
}

func TestCompileUnknownFamily(t *testing.T) {
	if _, err := Compile("bogus", core.Params{P: 0.1, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 2}); err == nil {
		t.Fatal("Compile with unknown family succeeded")
	}
}
