package families

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/kernel"
)

// nakamotoFamily is the classic d=1 selfish-mining decision process on a
// Nakamoto-style longest-chain protocol, in the standard (a, h, fork)
// state space of Sapirshtein et al.: a private adversary chain of length
// a, a public honest chain of length h since the fork point, and a fork
// label recording whether the last block was the adversary's (irrelevant),
// the honest miners' (relevant: a match is possible), or whether a match
// is active (the network is split). Actions are adopt, override, wait and
// match; chain lengths are truncated at the bound l, which forces a
// decision at the boundary (the standard finite truncation, a lower bound
// on the unbounded optimum).
//
// The family is a cheap smoke test for the protocol-agnostic pipeline: its
// optimum is the honest revenue p below the classic profitability
// threshold and is lower-bounded by the published SM1 closed form above it
// (see the families tests).
//
// Shape mapping: Depth and Forks must be 1; MaxLen is the truncation bound
// on both chain lengths.
type nakamotoFamily struct{}

func init() { Register(nakamotoFamily{}) }

// nakamotoMaxLen keeps per-transition reward counts (up to l) within the
// kernel's 6-bit field.
const nakamotoMaxLen = 62

func (nakamotoFamily) Name() string { return "nakamoto" }

func (nakamotoFamily) Description() string {
	return "classic d=1 Nakamoto selfish mining (adopt/override/wait/match over private vs public chain lengths), a smoke-test family"
}

func (nakamotoFamily) ShapeDoc() ShapeDoc {
	return ShapeDoc{
		Depth:  "must be 1 (single private chain)",
		Forks:  "must be 1 (single private chain)",
		MaxLen: fmt.Sprintf("truncation bound on the private and public chain lengths, 1..%d", nakamotoMaxLen),
	}
}

func (nakamotoFamily) DefaultShape() (int, int, int) { return 1, 1, 20 }

func (nakamotoFamily) Validate(p core.Params) error {
	if p.P < 0 || p.P > 1 || math.IsNaN(p.P) {
		return fmt.Errorf("families: nakamoto adversary resource P = %v outside [0, 1]", p.P)
	}
	if p.Gamma < 0 || p.Gamma > 1 || math.IsNaN(p.Gamma) {
		return fmt.Errorf("families: nakamoto switching probability Gamma = %v outside [0, 1]", p.Gamma)
	}
	if p.Depth != 1 || p.Forks != 1 {
		return fmt.Errorf("families: nakamoto needs d = f = 1 (got d=%d f=%d); the family has a single private chain", p.Depth, p.Forks)
	}
	if p.MaxLen < 1 || p.MaxLen > nakamotoMaxLen {
		return fmt.Errorf("families: nakamoto chain bound l = %d, need 1..%d", p.MaxLen, nakamotoMaxLen)
	}
	return nil
}

func (f nakamotoFamily) NumStates(p core.Params) (int, error) {
	if err := f.Validate(p); err != nil {
		return 0, err
	}
	n := p.MaxLen + 1
	return n * n * 3, nil
}

func (f nakamotoFamily) Source(p core.Params) (kernel.Source, error) {
	if err := f.Validate(p); err != nil {
		return nil, err
	}
	return &nakamotoSource{l: p.MaxLen}, nil
}

// Fork labels.
const (
	nkIrrelevant = iota // last block was the adversary's
	nkRelevant          // last block was honest; a match is possible
	nkActive            // a match is published; the honest network is split
)

// Probability laws: the next block is the adversary's w.p. p; an honest
// block lands on the adversary's published branch w.p. γ(1−p) while a
// match is active, on the honest branch otherwise.
const (
	nkAdv uint8 = iota
	nkHon
	nkHonOnAdv
	nkHonOnHon
)

var nakamotoLaws = []kernel.ProbLaw{
	nkAdv:      func(p, _ float64, _ int) float64 { return p },
	nkHon:      func(p, _ float64, _ int) float64 { return 1 - p },
	nkHonOnAdv: func(p, gamma float64, _ int) float64 { return gamma * (1 - p) },
	nkHonOnHon: func(p, gamma float64, _ int) float64 { return (1 - gamma) * (1 - p) },
}

// Action identifiers (resolved per state in this fixed order).
const (
	nkAdopt = iota
	nkOverride
	nkWait // includes the active-fork wait, which races with γ
	nkMatch
)

// nakamotoSource enumerates the dense (a, h, fork) state space. Dense
// states that are unreachable under consistent play (e.g. an active fork
// with a < h) still carry well-formed dynamics (their match/active
// semantics simply degrade to wait), keeping the MDP total and
// communicating.
type nakamotoSource struct {
	l int
}

func (n *nakamotoSource) NumStates() int { return (n.l + 1) * (n.l + 1) * 3 }

func (n *nakamotoSource) decode(idx int) (a, h, fk int) {
	fk = idx % 3
	idx /= 3
	h = idx % (n.l + 1)
	a = idx / (n.l + 1)
	return
}

func (n *nakamotoSource) encode(a, h, fk int) int {
	return (a*(n.l+1)+h)*3 + fk
}

// actions lists the legal action identifiers of a state in fixed order.
func (n *nakamotoSource) actions(a, h, fk int) []int {
	acts := make([]int, 0, 4)
	if h >= 1 {
		acts = append(acts, nkAdopt)
	}
	if a > h {
		acts = append(acts, nkOverride)
	}
	active := fk == nkActive && a >= h && h >= 1
	if active {
		if a < n.l {
			acts = append(acts, nkWait)
		}
	} else if a < n.l && h < n.l {
		acts = append(acts, nkWait)
	}
	if fk == nkRelevant && a >= h && h >= 1 && a < n.l {
		acts = append(acts, nkMatch)
	}
	return acts
}

func (n *nakamotoSource) NumActions(s int) int {
	return len(n.actions(n.decode(s)))
}

func (n *nakamotoSource) Laws() []kernel.ProbLaw { return nakamotoLaws }

func (n *nakamotoSource) RawTransitions(s, act int, buf []kernel.Raw) []kernel.Raw {
	a, h, fk := n.decode(s)
	acts := n.actions(a, h, fk)
	if act < 0 || act >= len(acts) {
		panic(fmt.Sprintf("families: nakamoto action %d out of range in state (%d,%d,%d)", act, a, h, fk))
	}
	switch acts[act] {
	case nkAdopt:
		// Accept the public chain: its h blocks settle for the honest
		// miners; the race restarts at the new tip.
		return append(buf,
			kernel.Raw{Dst: n.encode(1, 0, nkIrrelevant), Kind: nkAdv, RH: uint8(h)},
			kernel.Raw{Dst: n.encode(0, 1, nkRelevant), Kind: nkHon, RH: uint8(h)},
		)
	case nkOverride:
		// Publish h+1 private blocks, orphaning the public chain: they
		// settle for the adversary; a−h−1 private blocks remain withheld.
		return append(buf,
			kernel.Raw{Dst: n.encode(a-h, 0, nkIrrelevant), Kind: nkAdv, RA: uint8(h + 1)},
			kernel.Raw{Dst: n.encode(a-h-1, 1, nkRelevant), Kind: nkHon, RA: uint8(h + 1)},
		)
	case nkWait:
		if fk == nkActive && a >= h && h >= 1 {
			// The network is split on a published h-block match: an honest
			// block lands on the adversary's branch w.p. γ(1−p), settling
			// the h matched blocks for the adversary.
			return append(buf,
				kernel.Raw{Dst: n.encode(a+1, h, nkActive), Kind: nkAdv},
				kernel.Raw{Dst: n.encode(a-h, 1, nkRelevant), Kind: nkHonOnAdv, RA: uint8(h)},
				kernel.Raw{Dst: n.encode(a, h+1, nkRelevant), Kind: nkHonOnHon},
			)
		}
		return append(buf,
			kernel.Raw{Dst: n.encode(a+1, h, nkIrrelevant), Kind: nkAdv},
			kernel.Raw{Dst: n.encode(a, h+1, nkRelevant), Kind: nkHon},
		)
	case nkMatch:
		// Publish h blocks tying the public chain; the next block resolves
		// the race exactly as an active wait.
		return append(buf,
			kernel.Raw{Dst: n.encode(a+1, h, nkActive), Kind: nkAdv},
			kernel.Raw{Dst: n.encode(a-h, 1, nkRelevant), Kind: nkHonOnAdv, RA: uint8(h)},
			kernel.Raw{Dst: n.encode(a, h+1, nkRelevant), Kind: nkHonOnHon},
		)
	}
	panic("families: unreachable nakamoto action")
}

// BlockRate is a conservative lower bound on the per-step settlement rate:
// honest blocks arrive at rate 1−p and at most l+1 steps separate
// consecutive settlement events (a wait run is bounded by the truncation).
// An underestimate only costs solver sweeps, never a wrong sign.
func (n *nakamotoSource) BlockRate(p, _ float64) float64 {
	return (1 - p) / float64(n.l+1)
}
