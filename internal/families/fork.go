package families

import (
	"repro/internal/core"
	"repro/internal/kernel"
)

// forkFamily adapts the paper's (d, f, l) fork model (package core) to the
// registry. It is the default family and the only one with a physical
// simulation substrate (selfishmining's Simulate/Profile).
type forkFamily struct{}

func init() { Register(forkFamily{}) }

func (forkFamily) Name() string { return "fork" }

func (forkFamily) Description() string {
	return "the paper's fork model: private forks on each of the last d main-chain blocks, f forks per block, length bound l"
}

func (forkFamily) ShapeDoc() ShapeDoc {
	return ShapeDoc{
		Depth:  "attack depth d >= 1: forks grow on each of the last d main-chain blocks",
		Forks:  "forking number f >= 1: private forks maintained per forked block",
		MaxLen: "fork length bound l >= 1 keeping the MDP finite",
	}
}

func (forkFamily) DefaultShape() (int, int, int) { return 2, 2, 4 }

func (forkFamily) Validate(p core.Params) error { return p.Validate() }

func (forkFamily) NumStates(p core.Params) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.NumStates(), nil
}

func (forkFamily) Source(p core.Params) (kernel.Source, error) {
	return core.NewModel(p)
}
