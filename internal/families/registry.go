// Package families is the attack-model family registry: the catalog of
// protocols whose selfish-mining MDPs the analysis pipeline can build and
// solve. Algorithm 1 of the paper is model-agnostic — a binary search on β
// over any MDP whose transition probabilities are parametric in the chain
// parameters — and this package supplies the "any MDP" part. Each family
// maps the shared shape parameters (Depth, Forks, MaxLen of core.Params)
// onto its own state machine and compiles it onto the protocol-agnostic
// kernel (package kernel).
//
// Registered families:
//
//   - fork: the paper's (d, f, l) fork model (package core), the primary
//     contribution and the default.
//   - singletree: the Eyal–Sirer single-tree baseline expressed as a
//     (decision-free) MDP family, cross-validated against the exact
//     stationary chain analysis in package baseline.
//   - nakamoto: the classic d=1 selfish-mining state space (à la
//     Sapirshtein et al.), a cheap smoke-test family with known anchors
//     (honest revenue below the profitability threshold, the SM1 closed
//     form as a lower bound).
//
// The family identifier threads end to end: selfishmining.AttackParams
// carries it, the Service keys caches and warm-start neighborhoods by it,
// sweeps panel over it, and every CLI exposes it as -model (cmd/serve as
// the "model" JSON field plus the /v1/models discovery endpoint).
package families

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/kernel"
)

// DefaultName is the family used when no model is specified: the paper's
// fork model.
const DefaultName = "fork"

// ShapeDoc documents how a family interprets the three shared shape
// parameters.
type ShapeDoc struct {
	Depth, Forks, MaxLen string
}

// Family is one registered attack-model family. Implementations must be
// stateless and safe for concurrent use; per-instance state lives in the
// sources they build.
type Family interface {
	// Name is the registry identifier (lowercase, stable across versions).
	Name() string
	// Description is a one-line human summary for discovery endpoints.
	Description() string
	// ShapeDoc documents the family's reading of Depth/Forks/MaxLen.
	ShapeDoc() ShapeDoc
	// DefaultShape is a sensible small default (depth, forks, maxLen),
	// used by sweep defaults and discovery metadata.
	DefaultShape() (depth, forks, maxLen int)
	// Validate checks the full parameter set (chain and shape) for this
	// family.
	Validate(p core.Params) error
	// NumStates returns the size of the induced state space (validating
	// first). Families with explored state spaces may build to count.
	NumStates(p core.Params) (int, error)
	// Source builds the kernel source for validated parameters. The
	// returned source is consumed by kernel.Compile and need not be safe
	// for concurrent use.
	Source(p core.Params) (kernel.Source, error)
}

var (
	mu       sync.RWMutex
	registry = map[string]Family{}
)

// Register adds a family to the registry; duplicate names panic (families
// register from init functions, so a duplicate is a programming error).
func Register(f Family) {
	mu.Lock()
	defer mu.Unlock()
	name := f.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("families: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Names returns the sorted registered family names.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered families in name order.
func All() []Family {
	mu.RLock()
	defer mu.RUnlock()
	fams := make([]Family, 0, len(registry))
	for _, f := range registry {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name() < fams[j].Name() })
	return fams
}

// Get resolves a family name; the empty string means DefaultName. Unknown
// names fail with the list of valid families.
func Get(name string) (Family, error) {
	if name == "" {
		name = DefaultName
	}
	mu.RLock()
	f, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("families: unknown model family %q (valid families: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f, nil
}

// Compile resolves the family, validates p, builds the source and compiles
// it at p's chain parameters — the one-call path the serving layer uses.
func Compile(name string, p core.Params) (*kernel.Compiled, error) {
	f, err := Get(name)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(p); err != nil {
		return nil, err
	}
	src, err := f.Source(p)
	if err != nil {
		return nil, err
	}
	c, err := kernel.Compile(src, p.P, p.Gamma)
	if err != nil {
		return nil, err
	}
	// The kernel retains src.BlockRate for the compiled structure's
	// lifetime; sources with heavy exploration state free it here so a
	// structure-cache entry does not carry a second copy of its own
	// transition structure.
	if r, ok := src.(interface{ releaseExploration() }); ok {
		r.releaseExploration()
	}
	return c, nil
}
