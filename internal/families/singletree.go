package families

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/kernel"
)

// singletreeFamily is the Eyal–Sirer single-tree baseline expressed as an
// attack-model family: the adversary grows one private tree of bounded
// depth and per-level width rooted at the fork point and publishes by the
// fixed Eyal–Sirer rule, so every state has exactly one action and the MDP
// is a Markov chain. Running Algorithm 1 on it binary-searches β to the
// chain's exact expected relative revenue — which package baseline also
// computes by stationary analysis, giving an end-to-end cross-validation
// anchor for the whole kernel/analysis stack (see the families tests).
//
// Shape mapping: Depth must be 1 (unused), Forks is the tree width bound
// per level, MaxLen the tree depth bound.
type singletreeFamily struct{}

func init() { Register(singletreeFamily{}) }

// Structural bounds keeping the explored chain small and the σ annotation
// within the kernel's 8-bit field (σ ≤ 1 + width·(depth−1) ≤ 255).
// singletreeMaxStates additionally bounds the JOINT shape: the reachable
// chain grows combinatorially in (width, depth) — (f+1)^l·(l+1) dense
// upper bound — so wide-AND-deep trees are rejected up front rather than
// explored without limit (Validate), with a hard cap during exploration
// as a backstop.
const (
	singletreeMaxDepth  = 8
	singletreeMaxWidth  = 31
	singletreeMaxStates = 1 << 18
)

// singletreeStateBound returns the dense upper bound (f+1)^l · (l+1) on
// the explored chain, saturating at singletreeMaxStates+1 to avoid
// overflow.
func singletreeStateBound(l, f int) int {
	bound := l + 1
	for i := 0; i < l; i++ {
		bound *= f + 1
		if bound > singletreeMaxStates {
			return singletreeMaxStates + 1
		}
	}
	return bound
}

func (singletreeFamily) Name() string { return "singletree" }

func (singletreeFamily) Description() string {
	return "the Eyal-Sirer single-tree baseline as a decision-free MDP family, cross-validated against exact stationary chain analysis"
}

func (singletreeFamily) ShapeDoc() ShapeDoc {
	return ShapeDoc{
		Depth:  "must be 1 (the single tree roots at the fork point)",
		Forks:  fmt.Sprintf("tree width bound per level, 1..%d", singletreeMaxWidth),
		MaxLen: fmt.Sprintf("tree depth bound, 1..%d", singletreeMaxDepth),
	}
}

func (singletreeFamily) DefaultShape() (int, int, int) { return 1, 5, 4 }

func (singletreeFamily) Validate(p core.Params) error {
	if p.P < 0 || p.P >= 1 || math.IsNaN(p.P) {
		return fmt.Errorf("families: singletree adversary resource P = %v outside [0, 1) (P = 1 makes the chain non-ergodic)", p.P)
	}
	if p.Gamma < 0 || p.Gamma > 1 || math.IsNaN(p.Gamma) {
		return fmt.Errorf("families: singletree switching probability Gamma = %v outside [0, 1]", p.Gamma)
	}
	if p.Depth != 1 {
		return fmt.Errorf("families: singletree depth d = %d, need 1 (the family grows one tree at the fork point)", p.Depth)
	}
	if p.Forks < 1 || p.Forks > singletreeMaxWidth {
		return fmt.Errorf("families: singletree width f = %d, need 1..%d", p.Forks, singletreeMaxWidth)
	}
	if p.MaxLen < 1 || p.MaxLen > singletreeMaxDepth {
		return fmt.Errorf("families: singletree tree depth l = %d, need 1..%d", p.MaxLen, singletreeMaxDepth)
	}
	if singletreeStateBound(p.MaxLen, p.Forks) > singletreeMaxStates {
		return fmt.Errorf("families: singletree shape f=%d l=%d induces more than %d states ((f+1)^l·(l+1) bound); shrink the width or depth",
			p.Forks, p.MaxLen, singletreeMaxStates)
	}
	return nil
}

func (f singletreeFamily) NumStates(p core.Params) (int, error) {
	src, err := f.Source(p)
	if err != nil {
		return 0, err
	}
	return src.NumStates(), nil
}

func (f singletreeFamily) Source(p core.Params) (kernel.Source, error) {
	if err := f.Validate(p); err != nil {
		return nil, err
	}
	return newSingletreeSource(p.MaxLen, p.Forks)
}

// Probability laws of the single-tree chain. Mining races follow the same
// (p, σ)-model as the fork family; publications that tie the public chain
// race with γ.
const (
	stAdvMine uint8 = iota
	stHonMine
	stRaceWin
	stRaceLose
)

var singletreeLaws = []kernel.ProbLaw{
	stAdvMine:  func(p, _ float64, sigma int) float64 { return p / (1 - p + p*float64(sigma)) },
	stHonMine:  func(p, _ float64, sigma int) float64 { return (1 - p) / (1 - p + p*float64(sigma)) },
	stRaceWin:  func(p, gamma float64, sigma int) float64 { return gamma * (1 - p) / (1 - p + p*float64(sigma)) },
	stRaceLose: func(p, gamma float64, sigma int) float64 { return (1 - gamma) * (1 - p) / (1 - p + p*float64(sigma)) },
}

// stState is a node of the single-tree chain: per-level tree occupancy
// (levels 1..l in w[0..l-1]) and the public blocks mined since the fork
// point. It deliberately mirrors baseline.treeState — the two
// implementations are kept independent so their agreement is a real
// cross-check.
type stState struct {
	w [singletreeMaxDepth]uint8
	h uint8
}

// singletreeSource explores the reachable chain once at construction and
// serves it as a kernel source with one action per state.
type singletreeSource struct {
	l, f     int
	states   []stState
	trans    [][]kernel.Raw
	maxSigma int
}

func newSingletreeSource(l, f int) (*singletreeSource, error) {
	src := &singletreeSource{l: l, f: f}
	index := map[stState]int{}
	add := func(s stState) int {
		if i, ok := index[s]; ok {
			return i
		}
		i := len(src.states)
		index[s] = i
		src.states = append(src.states, s)
		return i
	}
	add(stState{})
	for i := 0; i < len(src.states); i++ {
		// Backstop to Validate's (f+1)^l·(l+1) pre-check: exploration can
		// never run away even if the bound's derivation rots.
		if len(src.states) > singletreeMaxStates {
			return nil, fmt.Errorf("families: singletree exploration exceeded %d states for f=%d l=%d", singletreeMaxStates, f, l)
		}
		s := src.states[i]
		var raws []kernel.Raw
		for _, sc := range src.successors(s) {
			sc.raw.Dst = add(sc.state)
			raws = append(raws, sc.raw)
		}
		src.trans = append(src.trans, raws)
	}
	return src, nil
}

// releaseExploration frees the exploration arrays once the kernel has
// consumed the source; only the scalar fields BlockRate needs (maxSigma
// and the depth bound) stay live. Compile retains src.BlockRate, so
// without this the structure cache would hold a second copy of the whole
// transition structure per entry.
func (src *singletreeSource) releaseExploration() { src.states, src.trans = nil, nil }

// stSucc pairs a successor state with its not-yet-indexed raw transition.
type stSucc struct {
	state stState
	raw   kernel.Raw
}

// depth returns the deepest occupied level of the tree.
func (src *singletreeSource) depth(s stState) int {
	for v := src.l; v >= 1; v-- {
		if s.w[v-1] > 0 {
			return v
		}
	}
	return 0
}

// successors enumerates the chain transitions out of s under the
// Eyal–Sirer publication rule (publish everything as soon as the public
// chain is within one block of the tree depth; a full catch-up at depth 1
// triggers a γ-race). Each adversary proof target is emitted as its own
// transition with the per-target law, so multiplicities need no law-side
// factors.
func (src *singletreeSource) successors(s stState) []stSucc {
	l, f := src.l, src.f
	// targets[v] = parents at level v (0 = fork-point root) that can spawn
	// a child at level v+1.
	var targets [singletreeMaxDepth]int
	sigma := 0
	for v := 0; v < l; v++ {
		occ := 1
		if v > 0 {
			occ = int(s.w[v-1])
		}
		if int(s.w[v]) < f && occ > 0 {
			targets[v] = occ
			sigma += occ
		}
	}
	if sigma > src.maxSigma {
		src.maxSigma = sigma
	}
	sg := uint8(sigma)
	var out []stSucc

	// Adversary grows the tree at level v+1 (one transition per target).
	for v := 0; v < l; v++ {
		ns := s
		ns.w[v]++
		for t := 0; t < targets[v]; t++ {
			out = append(out, stSucc{state: ns, raw: kernel.Raw{Kind: stAdvMine, Sigma: sg}})
		}
	}

	// Honest miners extend the public chain.
	d := src.depth(s)
	newH := int(s.h) + 1
	switch {
	case d == 0:
		// Nothing withheld: the honest block is final; re-fork at the tip.
		return append(out, stSucc{raw: kernel.Raw{Kind: stHonMine, Sigma: sg, RH: uint8(newH)}})
	case d >= 2 && newH == d-1:
		// Eyal–Sirer: the lead shrank to one; publish everything and win
		// outright (the tree's longest path exceeds the public chain).
		return append(out, stSucc{raw: kernel.Raw{Kind: stHonMine, Sigma: sg, RA: uint8(d)}})
	case newH == d:
		// Full catch-up: publish and race.
		return append(out,
			stSucc{raw: kernel.Raw{Kind: stRaceWin, Sigma: sg, RA: uint8(d)}},
			stSucc{raw: kernel.Raw{Kind: stRaceLose, Sigma: sg, RH: uint8(newH)}},
		)
	}
	// Public chain still behind: keep withholding.
	ns := s
	ns.h++
	return append(out, stSucc{state: ns, raw: kernel.Raw{Kind: stHonMine, Sigma: sg}})
}

func (src *singletreeSource) NumStates() int         { return len(src.states) }
func (src *singletreeSource) NumActions(int) int     { return 1 }
func (src *singletreeSource) Laws() []kernel.ProbLaw { return singletreeLaws }

func (src *singletreeSource) RawTransitions(s, a int, buf []kernel.Raw) []kernel.Raw {
	return append(buf, src.trans[s]...)
}

// BlockRate is a conservative lower bound on the per-step permanent-block
// rate: honest wins arrive at rate at least (1−p)/(1−p+p·σmax) and at most
// l of them separate consecutive finalization events, each of which pays
// at least one block. An underestimate here only costs solver sweeps (the
// binary search's sign decisions are exact regardless).
func (src *singletreeSource) BlockRate(p, _ float64) float64 {
	return (1 - p) / ((1 - p + p*float64(src.maxSigma)) * float64(src.l))
}
