package families

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
)

func nakamotoERRev(t *testing.T, p, gamma float64, l int, eps float64) float64 {
	t.Helper()
	c, err := Compile("nakamoto", core.Params{P: p, Gamma: gamma, Depth: 1, Forks: 1, MaxLen: l})
	if err != nil {
		t.Fatalf("p=%v gamma=%v: Compile: %v", p, gamma, err)
	}
	res, err := analysis.AnalyzeCompiled(c, analysis.Options{Epsilon: eps, SkipStrategy: true})
	if err != nil {
		t.Fatalf("p=%v gamma=%v: AnalyzeCompiled: %v", p, gamma, err)
	}
	return res.ERRev
}

// TestNakamotoHonestBelowThreshold: below the classic profitability
// threshold (1/3 for γ=0) selfish mining cannot beat honest mining, so the
// certified optimum is p itself.
func TestNakamotoHonestBelowThreshold(t *testing.T) {
	for _, p := range []float64{0.1, 0.2} {
		got := nakamotoERRev(t, p, 0, 15, 1e-5)
		if math.Abs(got-p) > 2e-5 {
			t.Errorf("p=%v gamma=0: ERRev %v, want honest %v", p, got, p)
		}
	}
}

// TestNakamotoBeatsSM1AboveThreshold: the optimal bounded strategy must be
// at least as good as the published SM1 closed form (the fixed Eyal–Sirer
// strategy) and strictly better than honest mining above the threshold.
func TestNakamotoBeatsSM1AboveThreshold(t *testing.T) {
	for _, pt := range []struct{ p, gamma float64 }{{0.4, 0}, {0.35, 0.5}, {0.4, 1}} {
		got := nakamotoERRev(t, pt.p, pt.gamma, 20, 1e-4)
		sm1, err := baseline.EyalSirerClosedForm(pt.p, pt.gamma)
		if err != nil {
			t.Fatal(err)
		}
		if got < sm1-2e-4 {
			t.Errorf("p=%v gamma=%v: optimal ERRev %v below SM1 closed form %v", pt.p, pt.gamma, got, sm1)
		}
		if got <= pt.p {
			t.Errorf("p=%v gamma=%v: optimal ERRev %v does not beat honest", pt.p, pt.gamma, got)
		}
		if got >= 1 {
			t.Errorf("p=%v gamma=%v: ERRev %v out of range", pt.p, pt.gamma, got)
		}
	}
}

// TestNakamotoGammaMonotone: winning more broadcast races cannot hurt.
func TestNakamotoGammaMonotone(t *testing.T) {
	lo := nakamotoERRev(t, 0.35, 0, 15, 1e-4)
	hi := nakamotoERRev(t, 0.35, 1, 15, 1e-4)
	if hi < lo-1e-4 {
		t.Errorf("ERRev(gamma=1) = %v below ERRev(gamma=0) = %v", hi, lo)
	}
}

func TestNakamotoStochastic(t *testing.T) {
	for _, pt := range []struct{ p, gamma float64 }{{0.3, 0.5}, {0, 0}, {1, 1}} {
		c, err := Compile("nakamoto", core.Params{P: pt.p, Gamma: pt.gamma, Depth: 1, Forks: 1, MaxLen: 8})
		if err != nil {
			t.Fatalf("p=%v gamma=%v: %v", pt.p, pt.gamma, err)
		}
		if err := c.CheckStochastic(1e-6); err != nil {
			t.Errorf("p=%v gamma=%v: %v", pt.p, pt.gamma, err)
		}
	}
}

func TestNakamotoValidate(t *testing.T) {
	fam, err := Get("nakamoto")
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Validate(core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 20}); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []core.Params{
		{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 20}, // depth
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 2, MaxLen: 20}, // forks
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 0},  // bound
		{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 63}, // reward packing
		{P: 1.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 20}, // p range
	}
	for _, b := range bad {
		if err := fam.Validate(b); err == nil {
			t.Errorf("invalid params %+v accepted", b)
		}
	}
	n, err := fam.NumStates(core.Params{P: 0.3, Gamma: 0.5, Depth: 1, Forks: 1, MaxLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if n != 11*11*3 {
		t.Errorf("NumStates = %d, want %d", n, 11*11*3)
	}
}
