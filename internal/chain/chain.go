// Package chain implements the longest-chain blockchain substrate used by
// the simulator: a block tree with public/private visibility, the
// longest-public-chain rule with first-seen tie-breaking, and fork
// switching. It is deliberately independent of the MDP machinery so that
// Monte-Carlo runs over real chain data structures can cross-validate the
// MDP's reward bookkeeping.
package chain

import (
	"errors"
	"fmt"
)

// Owner identifies who mined a block.
type Owner uint8

// Owners.
const (
	Honest Owner = iota
	Adversary
)

func (o Owner) String() string {
	if o == Honest {
		return "honest"
	}
	return "adversary"
}

// BlockID identifies a block within one Tree.
type BlockID uint64

// GenesisID is the ID of the genesis block of every Tree.
const GenesisID BlockID = 0

// Block is a node of the block tree.
type Block struct {
	ID     BlockID
	Parent BlockID
	Height int // genesis has height 0
	Owner  Owner
	Round  int  // time step at which the block was mined
	Public bool // whether the block has been broadcast
}

// ErrUnknownBlock is returned when a block ID is not present in the tree.
var ErrUnknownBlock = errors.New("chain: unknown block")

// Tree is an append-only block tree with a distinguished public tip (the
// head of the current main chain).
type Tree struct {
	blocks []Block // index = BlockID
	tip    BlockID // tip of the longest public chain (first-seen tie-break)
}

// NewTree creates a tree holding only the public genesis block.
func NewTree() *Tree {
	return &Tree{blocks: []Block{{ID: GenesisID, Public: true}}}
}

// Len returns the number of blocks (including genesis).
func (t *Tree) Len() int { return len(t.blocks) }

// Block returns a copy of the block with the given ID.
func (t *Tree) Block(id BlockID) (Block, error) {
	if int(id) >= len(t.blocks) {
		return Block{}, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	return t.blocks[id], nil
}

// Tip returns the main-chain tip ID.
func (t *Tree) Tip() BlockID { return t.tip }

// TipHeight returns the height of the main chain.
func (t *Tree) TipHeight() int { return t.blocks[t.tip].Height }

// Mine appends a new block under parent. Private blocks do not affect the
// main chain until published.
func (t *Tree) Mine(parent BlockID, owner Owner, round int, public bool) (BlockID, error) {
	if int(parent) >= len(t.blocks) {
		return 0, fmt.Errorf("%w: parent %d", ErrUnknownBlock, parent)
	}
	id := BlockID(len(t.blocks))
	t.blocks = append(t.blocks, Block{
		ID:     id,
		Parent: parent,
		Height: t.blocks[parent].Height + 1,
		Owner:  owner,
		Round:  round,
		Public: public,
	})
	if public && t.blocks[id].Height > t.blocks[t.tip].Height {
		t.tip = id
	}
	return id, nil
}

// Publish marks the chain ending at id (up to the first already-public
// ancestor) as public. If the published chain is strictly longer than the
// main chain it becomes the main chain; if it ties, win decides the race
// (true = honest miners switch to it). Returns whether the published chain
// became the main chain.
func (t *Tree) Publish(id BlockID, win bool) (bool, error) {
	if int(id) >= len(t.blocks) {
		return false, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	for b := id; !t.blocks[b].Public; b = t.blocks[b].Parent {
		t.blocks[b].Public = true
	}
	newH, curH := t.blocks[id].Height, t.blocks[t.tip].Height
	if newH > curH || (newH == curH && win && id != t.tip) {
		t.tip = id
		return true, nil
	}
	return false, nil
}

// MainChain returns the block IDs of the main chain from genesis to tip,
// inclusive.
func (t *Tree) MainChain() []BlockID {
	var rev []BlockID
	for b := t.tip; ; b = t.blocks[b].Parent {
		rev = append(rev, b)
		if b == GenesisID {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AtDepth returns the main-chain block at the given depth (1 = tip). An
// error is returned if the chain is shorter than depth.
func (t *Tree) AtDepth(depth int) (Block, error) {
	if depth < 1 {
		return Block{}, fmt.Errorf("chain: depth %d must be >= 1", depth)
	}
	b := t.tip
	for i := 1; i < depth; i++ {
		if b == GenesisID {
			return Block{}, fmt.Errorf("chain: main chain shorter than depth %d", depth)
		}
		b = t.blocks[b].Parent
	}
	return t.blocks[b], nil
}

// OwnerCounts tallies main-chain blocks by owner, excluding genesis and
// excluding the topmost skipTop blocks (the still-contestable window).
func (t *Tree) OwnerCounts(skipTop int) (honest, adversary int) {
	b := t.tip
	for i := 0; i < skipTop && b != GenesisID; i++ {
		b = t.blocks[b].Parent
	}
	for ; b != GenesisID; b = t.blocks[b].Parent {
		if t.blocks[b].Owner == Honest {
			honest++
		} else {
			adversary++
		}
	}
	return honest, adversary
}

// Descend returns the chain of length n under tip ending at id
// (id included), oldest first; used to inspect revealed segments.
func (t *Tree) Descend(id BlockID, n int) ([]Block, error) {
	if int(id) >= len(t.blocks) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlock, id)
	}
	out := make([]Block, 0, n)
	for b := id; len(out) < n; b = t.blocks[b].Parent {
		out = append(out, t.blocks[b])
		if b == GenesisID {
			break
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}
