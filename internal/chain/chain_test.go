package chain

import (
	"errors"
	"testing"
)

func TestNewTreeGenesis(t *testing.T) {
	tr := NewTree()
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	g, err := tr.Block(GenesisID)
	if err != nil {
		t.Fatalf("Block(genesis): %v", err)
	}
	if g.Height != 0 || !g.Public {
		t.Errorf("genesis = %+v, want height 0, public", g)
	}
	if tr.TipHeight() != 0 {
		t.Errorf("TipHeight = %d, want 0", tr.TipHeight())
	}
}

func TestMinePublicExtendsTip(t *testing.T) {
	tr := NewTree()
	b1, err := tr.Mine(GenesisID, Honest, 1, true)
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if tr.Tip() != b1 || tr.TipHeight() != 1 {
		t.Errorf("tip = %d height %d, want %d height 1", tr.Tip(), tr.TipHeight(), b1)
	}
}

func TestMinePrivateDoesNotMoveTip(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Mine(GenesisID, Adversary, 1, false); err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if tr.Tip() != GenesisID {
		t.Errorf("private block moved the tip to %d", tr.Tip())
	}
}

func TestMineUnknownParent(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Mine(99, Honest, 1, true); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("err = %v, want ErrUnknownBlock", err)
	}
}

func TestPublishLongerChainWins(t *testing.T) {
	tr := NewTree()
	h1, _ := tr.Mine(GenesisID, Honest, 1, true)
	a1, _ := tr.Mine(GenesisID, Adversary, 2, false)
	a2, _ := tr.Mine(a1, Adversary, 3, false)
	won, err := tr.Publish(a2, false)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if !won {
		t.Error("strictly longer chain should win regardless of the race flag")
	}
	if tr.Tip() != a2 {
		t.Errorf("tip = %d, want %d", tr.Tip(), a2)
	}
	// The honest block is now off the main chain.
	main := tr.MainChain()
	for _, id := range main {
		if id == h1 {
			t.Error("orphaned honest block still on the main chain")
		}
	}
}

func TestPublishTieRace(t *testing.T) {
	// Lose branch: tip unchanged.
	tr := NewTree()
	h1, _ := tr.Mine(GenesisID, Honest, 1, true)
	a1, _ := tr.Mine(GenesisID, Adversary, 2, false)
	won, err := tr.Publish(a1, false)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if won || tr.Tip() != h1 {
		t.Errorf("lost race must keep honest tip: won=%v tip=%d", won, tr.Tip())
	}
	// Win branch: tip switches.
	tr2 := NewTree()
	tr2.Mine(GenesisID, Honest, 1, true)
	b1, _ := tr2.Mine(GenesisID, Adversary, 2, false)
	won, err = tr2.Publish(b1, true)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if !won || tr2.Tip() != b1 {
		t.Errorf("won race must switch tip: won=%v tip=%d", won, tr2.Tip())
	}
}

func TestPublishMarksAncestors(t *testing.T) {
	tr := NewTree()
	a1, _ := tr.Mine(GenesisID, Adversary, 1, false)
	a2, _ := tr.Mine(a1, Adversary, 2, false)
	if _, err := tr.Publish(a2, false); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	b, _ := tr.Block(a1)
	if !b.Public {
		t.Error("ancestor of published block not public")
	}
}

func TestMainChainOrder(t *testing.T) {
	tr := NewTree()
	b1, _ := tr.Mine(GenesisID, Honest, 1, true)
	b2, _ := tr.Mine(b1, Adversary, 2, true)
	main := tr.MainChain()
	want := []BlockID{GenesisID, b1, b2}
	if len(main) != len(want) {
		t.Fatalf("MainChain = %v, want %v", main, want)
	}
	for i := range want {
		if main[i] != want[i] {
			t.Fatalf("MainChain = %v, want %v", main, want)
		}
	}
}

func TestAtDepth(t *testing.T) {
	tr := NewTree()
	b1, _ := tr.Mine(GenesisID, Honest, 1, true)
	b2, _ := tr.Mine(b1, Adversary, 2, true)
	got, err := tr.AtDepth(1)
	if err != nil || got.ID != b2 {
		t.Errorf("AtDepth(1) = %v, %v; want block %d", got.ID, err, b2)
	}
	got, err = tr.AtDepth(2)
	if err != nil || got.ID != b1 {
		t.Errorf("AtDepth(2) = %v, %v; want block %d", got.ID, err, b1)
	}
	if _, err := tr.AtDepth(5); err == nil {
		t.Error("AtDepth beyond genesis should error")
	}
	if _, err := tr.AtDepth(0); err == nil {
		t.Error("AtDepth(0) should error")
	}
}

func TestOwnerCounts(t *testing.T) {
	tr := NewTree()
	b1, _ := tr.Mine(GenesisID, Honest, 1, true)
	b2, _ := tr.Mine(b1, Adversary, 2, true)
	tr.Mine(b2, Honest, 3, true)
	h, a := tr.OwnerCounts(0)
	if h != 2 || a != 1 {
		t.Errorf("OwnerCounts(0) = %d honest, %d adversary; want 2, 1", h, a)
	}
	h, a = tr.OwnerCounts(1)
	if h != 1 || a != 1 {
		t.Errorf("OwnerCounts(1) = %d honest, %d adversary; want 1, 1", h, a)
	}
	h, a = tr.OwnerCounts(10)
	if h != 0 || a != 0 {
		t.Errorf("OwnerCounts(10) = %d, %d; want 0, 0", h, a)
	}
}

func TestDescend(t *testing.T) {
	tr := NewTree()
	b1, _ := tr.Mine(GenesisID, Adversary, 1, false)
	b2, _ := tr.Mine(b1, Adversary, 2, false)
	seg, err := tr.Descend(b2, 2)
	if err != nil {
		t.Fatalf("Descend: %v", err)
	}
	if len(seg) != 2 || seg[0].ID != b1 || seg[1].ID != b2 {
		t.Errorf("Descend = %v, want [%d %d] oldest-first", seg, b1, b2)
	}
	if _, err := tr.Descend(77, 1); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("err = %v, want ErrUnknownBlock", err)
	}
}

func TestPublishUnknownBlock(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Publish(42, true); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("err = %v, want ErrUnknownBlock", err)
	}
}
