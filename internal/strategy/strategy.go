// Package strategy provides tooling around computed selfish-mining
// strategies: human-readable summaries, serialization for reuse across
// runs, and structural statistics (how often the strategy withholds, races,
// or overtakes).
package strategy

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Kind classifies what a strategy does at a decision state.
type Kind uint8

// Decision kinds.
const (
	// KindMine continues withholding (or has nothing to release).
	KindMine Kind = iota
	// KindRace releases a fork that ties the pending honest block (k = i).
	KindRace
	// KindOvertake releases a fork strictly longer than the public chain.
	KindOvertake
)

func (k Kind) String() string {
	switch k {
	case KindMine:
		return "mine"
	case KindRace:
		return "race"
	case KindOvertake:
		return "overtake"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Profile summarizes the structure of a positional strategy.
type Profile struct {
	// DecisionStates is the number of states with more than one action.
	DecisionStates int
	// Counts tallies decision states by the kind of action chosen.
	Counts map[Kind]int
	// ReleaseDepths histograms the fork row i of chosen releases.
	ReleaseDepths map[int]int
	// ReleaseLengths histograms the revealed length k of chosen releases.
	ReleaseLengths map[int]int
}

// Profiled analyzes which kinds of actions the strategy uses where.
func Profiled(m *core.Model, policy []int) (*Profile, error) {
	if len(policy) != m.NumStates() {
		return nil, fmt.Errorf("strategy: policy covers %d states, model has %d", len(policy), m.NumStates())
	}
	p := &Profile{
		Counts:         make(map[Kind]int),
		ReleaseDepths:  make(map[int]int),
		ReleaseLengths: make(map[int]int),
	}
	st := m.Codec().NewState()
	for s := 0; s < m.NumStates(); s++ {
		na := m.NumActions(s)
		if na <= 1 {
			continue
		}
		p.DecisionStates++
		a := policy[s]
		if a == 0 {
			p.Counts[KindMine]++
			continue
		}
		m.Codec().Decode(s, st)
		i, _, k, err := parseRelease(m.ActionLabel(s, a))
		if err != nil {
			return nil, err
		}
		if k == i && st.Phase == core.PendingHonest {
			p.Counts[KindRace]++
		} else {
			p.Counts[KindOvertake]++
		}
		p.ReleaseDepths[i]++
		p.ReleaseLengths[k]++
	}
	return p, nil
}

func parseRelease(label string) (i, j, k int, err error) {
	if n, err := fmt.Sscanf(label, "release(i=%d,j=%d,k=%d)", &i, &j, &k); err != nil || n != 3 {
		return 0, 0, 0, fmt.Errorf("strategy: unparseable action label %q", label)
	}
	return i, j, k, nil
}

// Describe renders the profile as a short human-readable report.
func (p *Profile) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decision states: %d\n", p.DecisionStates)
	fmt.Fprintf(&b, "  keep mining:   %d\n", p.Counts[KindMine])
	fmt.Fprintf(&b, "  race releases: %d\n", p.Counts[KindRace])
	fmt.Fprintf(&b, "  overtakes:     %d\n", p.Counts[KindOvertake])
	if len(p.ReleaseDepths) > 0 {
		b.WriteString("  release fork rows:")
		for _, depth := range sortedKeys(p.ReleaseDepths) {
			fmt.Fprintf(&b, " i=%d:%d", depth, p.ReleaseDepths[depth])
		}
		b.WriteByte('\n')
	}
	if len(p.ReleaseLengths) > 0 {
		b.WriteString("  release lengths:")
		for _, k := range sortedKeys(p.ReleaseLengths) {
			fmt.Fprintf(&b, " k=%d:%d", k, p.ReleaseLengths[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Write serializes a policy as one action index per line, preceded by a
// header recording the model parameters for compatibility checking.
func Write(w io.Writer, params core.Params, policy []int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# selfish-mining strategy p=%g gamma=%g d=%d f=%d l=%d states=%d\n",
		params.P, params.Gamma, params.Depth, params.Forks, params.MaxLen, len(policy)); err != nil {
		return err
	}
	for _, a := range policy {
		if _, err := fmt.Fprintln(bw, a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a policy written by Write and checks it against the expected
// parameters.
func Read(r io.Reader, params core.Params) ([]int, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("strategy: empty input")
	}
	wantHeader := fmt.Sprintf("# selfish-mining strategy p=%g gamma=%g d=%d f=%d l=%d states=%d",
		params.P, params.Gamma, params.Depth, params.Forks, params.MaxLen, params.NumStates())
	if got := sc.Text(); got != wantHeader {
		return nil, fmt.Errorf("strategy: header mismatch:\n  got  %q\n  want %q", got, wantHeader)
	}
	policy := make([]int, 0, params.NumStates())
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		a, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("strategy: bad action line %q: %w", line, err)
		}
		policy = append(policy, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(policy) != params.NumStates() {
		return nil, fmt.Errorf("strategy: %d actions for %d states", len(policy), params.NumStates())
	}
	return policy, nil
}
