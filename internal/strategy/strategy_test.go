package strategy

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func testModel(t *testing.T) (*core.Model, core.Params) {
	t.Helper()
	p := core.Params{P: 0.3, Gamma: 0.5, Depth: 2, Forks: 1, MaxLen: 3}
	m, err := core.NewModel(p)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m, p
}

func TestProfiledNeverRelease(t *testing.T) {
	m, _ := testModel(t)
	policy := make([]int, m.NumStates())
	prof, err := Profiled(m, policy)
	if err != nil {
		t.Fatalf("Profiled: %v", err)
	}
	if prof.Counts[KindRace] != 0 || prof.Counts[KindOvertake] != 0 {
		t.Errorf("never-release profile has releases: %+v", prof.Counts)
	}
	if prof.Counts[KindMine] != prof.DecisionStates {
		t.Errorf("mine count %d != decision states %d", prof.Counts[KindMine], prof.DecisionStates)
	}
	if prof.DecisionStates == 0 {
		t.Error("no decision states found")
	}
}

func TestProfiledClassifiesRaceAndOvertake(t *testing.T) {
	m, _ := testModel(t)
	// Choose the first release action everywhere one exists.
	policy := make([]int, m.NumStates())
	for s := range policy {
		if m.NumActions(s) > 1 {
			policy[s] = 1
		}
	}
	prof, err := Profiled(m, policy)
	if err != nil {
		t.Fatalf("Profiled: %v", err)
	}
	if prof.Counts[KindRace] == 0 {
		t.Error("expected some race releases in the d=2 model")
	}
	if prof.Counts[KindOvertake] == 0 {
		t.Error("expected some overtake releases")
	}
	if len(prof.ReleaseDepths) == 0 || len(prof.ReleaseLengths) == 0 {
		t.Error("release histograms empty")
	}
}

func TestProfiledWrongLength(t *testing.T) {
	m, _ := testModel(t)
	if _, err := Profiled(m, []int{0}); err == nil {
		t.Fatal("short policy accepted")
	}
}

func TestDescribeMentionsCounts(t *testing.T) {
	m, _ := testModel(t)
	policy := make([]int, m.NumStates())
	prof, err := Profiled(m, policy)
	if err != nil {
		t.Fatalf("Profiled: %v", err)
	}
	out := prof.Describe()
	for _, want := range []string{"decision states", "keep mining", "race releases", "overtakes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe() missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, p := testModel(t)
	policy := make([]int, m.NumStates())
	for s := range policy {
		if m.NumActions(s) > 1 {
			policy[s] = 1
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, p, policy); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf, p)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(policy) {
		t.Fatalf("round trip length %d, want %d", len(got), len(policy))
	}
	for i := range policy {
		if got[i] != policy[i] {
			t.Fatalf("round trip mismatch at %d: %d vs %d", i, got[i], policy[i])
		}
	}
}

func TestReadRejectsWrongParams(t *testing.T) {
	m, p := testModel(t)
	policy := make([]int, m.NumStates())
	var buf bytes.Buffer
	if err := Write(&buf, p, policy); err != nil {
		t.Fatalf("Write: %v", err)
	}
	other := p
	other.P = 0.25
	if _, err := Read(&buf, other); err == nil {
		t.Fatal("mismatched parameters accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	_, p := testModel(t)
	if _, err := Read(strings.NewReader(""), p); err == nil {
		t.Fatal("empty input accepted")
	}
	header := "# selfish-mining strategy p=0.3 gamma=0.5 d=2 f=1 l=3 states=150"
	if _, err := Read(strings.NewReader(header+"\nnot-a-number\n"), p); err == nil {
		t.Fatal("garbage action line accepted")
	}
	if _, err := Read(strings.NewReader(header+"\n1\n2\n"), p); err == nil {
		t.Fatal("truncated policy accepted")
	}
}
