package mdp

import (
	"fmt"

	"repro/internal/linalg"
)

// Policy is a positional (memoryless, deterministic) strategy: an action
// index per state.
type Policy []int

// NewUniformPolicy returns the policy that picks action 0 everywhere.
func NewUniformPolicy(n int) Policy { return make(Policy, n) }

// Validate checks that the policy selects an available action in every state.
func (p Policy) Validate(m Model) error {
	if len(p) != m.NumStates() {
		return fmt.Errorf("mdp: policy covers %d states, model has %d", len(p), m.NumStates())
	}
	for s, a := range p {
		if a < 0 || a >= m.NumActions(s) {
			return fmt.Errorf("mdp: policy selects action %d in state %d which has %d actions", a, s, m.NumActions(s))
		}
	}
	return nil
}

// InducedChain builds the Markov chain obtained by fixing the policy:
// the row-stochastic transition matrix and the vector of expected one-step
// rewards r(s) = Σ_s' P(s, π(s), s') · reward(s, π(s), s').
//
// Intended for small and medium models (it materializes the chain).
func InducedChain(m Model, p Policy) (*linalg.CSR, []float64, error) {
	if err := p.Validate(m); err != nil {
		return nil, nil, err
	}
	n := m.NumStates()
	rewards := make([]float64, n)
	var entries []linalg.Entry
	var buf []Transition
	for s := 0; s < n; s++ {
		buf = m.Transitions(s, p[s], buf[:0])
		var r float64
		for _, tr := range buf {
			entries = append(entries, linalg.Entry{Row: s, Col: tr.Dst, Val: tr.Prob})
			r += tr.Prob * tr.Reward
		}
		rewards[s] = r
	}
	chain, err := linalg.NewCSR(n, n, entries)
	if err != nil {
		return nil, nil, err
	}
	return chain, rewards, nil
}

// InducedChainWith builds the induced chain together with a second reward
// vector computed by applying aux to each transition. This supports
// evaluating two reward structures (e.g. adversary and honest block counts)
// over the same policy in one pass.
func InducedChainWith(m Model, p Policy, aux func(s, a int, tr Transition) float64) (*linalg.CSR, []float64, []float64, error) {
	if err := p.Validate(m); err != nil {
		return nil, nil, nil, err
	}
	n := m.NumStates()
	rewards := make([]float64, n)
	auxRewards := make([]float64, n)
	var entries []linalg.Entry
	var buf []Transition
	for s := 0; s < n; s++ {
		buf = m.Transitions(s, p[s], buf[:0])
		var r, ar float64
		for _, tr := range buf {
			entries = append(entries, linalg.Entry{Row: s, Col: tr.Dst, Val: tr.Prob})
			r += tr.Prob * tr.Reward
			ar += tr.Prob * aux(s, p[s], tr)
		}
		rewards[s] = r
		auxRewards[s] = ar
	}
	chain, err := linalg.NewCSR(n, n, entries)
	if err != nil {
		return nil, nil, nil, err
	}
	return chain, rewards, auxRewards, nil
}
