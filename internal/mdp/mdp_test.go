package mdp

import (
	"math"
	"testing"
)

// twoState returns a simple 2-state MDP:
// state 0: action "stay" self-loops with reward 1; action "go" moves to 1, reward 0.
// state 1: single action back to 0, reward 5.
func twoState() *Explicit {
	return &Explicit{
		Init: 0,
		Choices: [][]Choice{
			{
				{Label: "stay", Succ: []Transition{{Dst: 0, Prob: 1, Reward: 1}}},
				{Label: "go", Succ: []Transition{{Dst: 1, Prob: 1, Reward: 0}}},
			},
			{
				{Label: "back", Succ: []Transition{{Dst: 0, Prob: 1, Reward: 5}}},
			},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := Validate(twoState(), 1e-9); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesNonStochastic(t *testing.T) {
	m := twoState()
	m.Choices[0][0].Succ[0].Prob = 0.5
	if err := Validate(m, 1e-9); err == nil {
		t.Fatal("expected error for substochastic action, got nil")
	}
}

func TestValidateCatchesBadDestination(t *testing.T) {
	m := twoState()
	m.Choices[0][0].Succ[0].Dst = 7
	if err := Validate(m, 1e-9); err == nil {
		t.Fatal("expected error for out-of-range destination, got nil")
	}
}

func TestValidateCatchesNegativeProb(t *testing.T) {
	m := &Explicit{
		Init: 0,
		Choices: [][]Choice{
			{{Succ: []Transition{{Dst: 0, Prob: -0.5}, {Dst: 0, Prob: 1.5}}}},
		},
	}
	if err := Validate(m, 1e-9); err == nil {
		t.Fatal("expected error for negative probability, got nil")
	}
}

func TestValidateCatchesActionlessState(t *testing.T) {
	m := &Explicit{Init: 0, Choices: [][]Choice{{}}}
	if err := Validate(m, 1e-9); err == nil {
		t.Fatal("expected error for state without actions, got nil")
	}
}

func TestValidateCatchesBadInitial(t *testing.T) {
	m := twoState()
	m.Init = 9
	if err := Validate(m, 1e-9); err == nil {
		t.Fatal("expected error for out-of-range initial state, got nil")
	}
}

func TestReachable(t *testing.T) {
	m := twoState()
	seen, count := Reachable(m)
	if count != 2 || !seen[0] || !seen[1] {
		t.Errorf("Reachable = %v (count %d), want both states", seen, count)
	}
}

func TestReachablePrunes(t *testing.T) {
	// State 2 is unreachable.
	m := &Explicit{
		Init: 0,
		Choices: [][]Choice{
			{{Succ: []Transition{{Dst: 1, Prob: 1}}}},
			{{Succ: []Transition{{Dst: 0, Prob: 1}}}},
			{{Succ: []Transition{{Dst: 2, Prob: 1}}}},
		},
	}
	seen, count := Reachable(m)
	if count != 2 || seen[2] {
		t.Errorf("Reachable count = %d, seen[2] = %v; want 2 states, state 2 unreachable", count, seen[2])
	}
}

func TestReachableIgnoresZeroProbEdges(t *testing.T) {
	m := &Explicit{
		Init: 0,
		Choices: [][]Choice{
			{{Succ: []Transition{{Dst: 0, Prob: 1}, {Dst: 1, Prob: 0}}}},
			{{Succ: []Transition{{Dst: 1, Prob: 1}}}},
		},
	}
	_, count := Reachable(m)
	if count != 1 {
		t.Errorf("Reachable count = %d, want 1 (zero-probability edge must not count)", count)
	}
}

func TestMaxBranching(t *testing.T) {
	m := &Explicit{
		Init: 0,
		Choices: [][]Choice{
			{{Succ: []Transition{{Dst: 0, Prob: 0.2}, {Dst: 1, Prob: 0.3}, {Dst: 0, Prob: 0.5}}}},
			{{Succ: []Transition{{Dst: 0, Prob: 1}}}},
		},
	}
	if got := MaxBranching(m); got != 3 {
		t.Errorf("MaxBranching = %d, want 3", got)
	}
}

func TestPolicyValidate(t *testing.T) {
	m := twoState()
	if err := (Policy{1, 0}).Validate(m); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := (Policy{2, 0}).Validate(m); err == nil {
		t.Error("expected error for unavailable action, got nil")
	}
	if err := (Policy{0}).Validate(m); err == nil {
		t.Error("expected error for wrong policy length, got nil")
	}
}

func TestInducedChain(t *testing.T) {
	m := twoState()
	chain, rewards, err := InducedChain(m, Policy{1, 0}) // go, back
	if err != nil {
		t.Fatalf("InducedChain: %v", err)
	}
	if !chain.IsStochastic(1e-12) {
		t.Error("induced chain is not stochastic")
	}
	if rewards[0] != 0 || rewards[1] != 5 {
		t.Errorf("rewards = %v, want [0 5]", rewards)
	}
}

func TestInducedChainWith(t *testing.T) {
	m := twoState()
	_, r, aux, err := InducedChainWith(m, Policy{0, 0}, func(s, a int, tr Transition) float64 {
		return 2 * tr.Reward
	})
	if err != nil {
		t.Fatalf("InducedChainWith: %v", err)
	}
	if r[0] != 1 || aux[0] != 2 {
		t.Errorf("r = %v aux = %v, want r[0]=1 aux[0]=2", r, aux)
	}
}

func TestExplicitActionLabel(t *testing.T) {
	m := twoState()
	if got := m.ActionLabel(0, 1); got != "go" {
		t.Errorf("ActionLabel = %q, want %q", got, "go")
	}
	m.Choices[0][0].Label = ""
	if got := m.ActionLabel(0, 0); got != "a0" {
		t.Errorf("ActionLabel fallback = %q, want %q", got, "a0")
	}
}

func TestTransitionsAppendSemantics(t *testing.T) {
	m := twoState()
	buf := make([]Transition, 0, 4)
	buf = m.Transitions(0, 0, buf)
	buf = m.Transitions(1, 0, buf)
	if len(buf) != 2 {
		t.Fatalf("buffer should accumulate, got len %d", len(buf))
	}
	if buf[1].Reward != 5 {
		t.Errorf("second transition reward = %v, want 5", buf[1].Reward)
	}
}

func TestProbabilitiesSumProperty(t *testing.T) {
	m := twoState()
	var buf []Transition
	for s := 0; s < m.NumStates(); s++ {
		for a := 0; a < m.NumActions(s); a++ {
			buf = m.Transitions(s, a, buf[:0])
			var sum float64
			for _, tr := range buf {
				sum += tr.Prob
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("state %d action %d: prob sum %v", s, a, sum)
			}
		}
	}
}
