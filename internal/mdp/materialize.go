package mdp

import "fmt"

// Materialize converts any (possibly implicit) model into an in-memory
// Explicit model, optionally restricted to the states reachable from the
// initial state. Restricting renumbers states (initial state becomes 0) and
// is useful to shrink implicit product spaces before exact analyses.
func Materialize(m Model, reachableOnly bool) (*Explicit, error) {
	n := m.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("mdp: cannot materialize an empty model")
	}
	var keep []bool
	if reachableOnly {
		keep, _ = Reachable(m)
	}
	// Renumber: old index -> new index.
	renum := make([]int, n)
	for i := range renum {
		renum[i] = -1
	}
	var order []int
	add := func(s int) {
		if renum[s] < 0 {
			renum[s] = len(order)
			order = append(order, s)
		}
	}
	add(m.Initial())
	for s := 0; s < n; s++ {
		if keep == nil || keep[s] {
			add(s)
		}
	}
	out := &Explicit{Init: 0, Choices: make([][]Choice, len(order))}
	var buf []Transition
	labeler, _ := m.(ActionLabeler)
	for newIdx, old := range order {
		na := m.NumActions(old)
		choices := make([]Choice, 0, na)
		for a := 0; a < na; a++ {
			buf = m.Transitions(old, a, buf[:0])
			succ := make([]Transition, 0, len(buf))
			for _, tr := range buf {
				dst := renum[tr.Dst]
				if dst < 0 {
					if tr.Prob == 0 {
						continue // unreachable zero-probability edge
					}
					return nil, fmt.Errorf("mdp: state %d action %d reaches pruned state %d with probability %v", old, a, tr.Dst, tr.Prob)
				}
				succ = append(succ, Transition{Dst: dst, Prob: tr.Prob, Reward: tr.Reward})
			}
			label := ""
			if labeler != nil {
				label = labeler.ActionLabel(old, a)
			}
			choices = append(choices, Choice{Label: label, Succ: succ})
		}
		out.Choices[newIdx] = choices
	}
	return out, nil
}
