package mdp

import (
	"math"
	"testing"
)

func TestMaterializeIdentity(t *testing.T) {
	m := twoState()
	got, err := Materialize(m, false)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got.NumStates() != m.NumStates() {
		t.Fatalf("states %d, want %d", got.NumStates(), m.NumStates())
	}
	if err := Validate(got, 1e-12); err != nil {
		t.Errorf("materialized model invalid: %v", err)
	}
	if got.ActionLabel(0, 1) != "go" {
		t.Errorf("labels not preserved: %q", got.ActionLabel(0, 1))
	}
}

func TestMaterializeReachablePrunes(t *testing.T) {
	m := &Explicit{
		Init: 1, // states 0 and 2 unreachable from 1
		Choices: [][]Choice{
			{{Succ: []Transition{{Dst: 0, Prob: 1}}}},
			{{Succ: []Transition{{Dst: 1, Prob: 1, Reward: 3}}}},
			{{Succ: []Transition{{Dst: 1, Prob: 1}}}},
		},
	}
	got, err := Materialize(m, true)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got.NumStates() != 1 {
		t.Fatalf("states = %d, want 1", got.NumStates())
	}
	if got.Initial() != 0 {
		t.Errorf("initial = %d, want renumbered 0", got.Initial())
	}
	if got.Choices[0][0].Succ[0].Reward != 3 {
		t.Errorf("rewards not preserved: %+v", got.Choices[0][0])
	}
}

// TestMaterializePreservesGain: solving the materialized reachable model
// must give the same mean payoff as the original (on the reachable part).
func TestMaterializePreservesGain(t *testing.T) {
	m := &Explicit{
		Init: 0,
		Choices: [][]Choice{
			{
				{Succ: []Transition{{Dst: 0, Prob: 0.5, Reward: 1}, {Dst: 1, Prob: 0.5, Reward: 0}}},
			},
			{
				{Succ: []Transition{{Dst: 0, Prob: 1, Reward: 2}}},
				{Succ: []Transition{{Dst: 1, Prob: 1, Reward: 0.1}}},
			},
			// State 2 unreachable, with a juicy reward that must not leak in.
			{{Succ: []Transition{{Dst: 2, Prob: 1, Reward: 100}}}},
		},
	}
	mat, err := Materialize(m, true)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if mat.NumStates() != 2 {
		t.Fatalf("states = %d, want 2", mat.NumStates())
	}
	chainA, rA, err := InducedChain(mat, Policy{0, 0})
	if err != nil {
		t.Fatalf("InducedChain: %v", err)
	}
	if !chainA.IsStochastic(1e-12) {
		t.Error("materialized induced chain not stochastic")
	}
	// Expected one-step rewards preserved under renumbering.
	if math.Abs(rA[0]-0.5) > 1e-12 || rA[1] != 2 {
		t.Errorf("rewards = %v, want [0.5 2]", rA)
	}
}

func TestMaterializeDropsZeroProbEdgesToPruned(t *testing.T) {
	m := &Explicit{
		Init: 0,
		Choices: [][]Choice{
			{{Succ: []Transition{{Dst: 0, Prob: 1}, {Dst: 1, Prob: 0}}}},
			{{Succ: []Transition{{Dst: 1, Prob: 1}}}},
		},
	}
	got, err := Materialize(m, true)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got.NumStates() != 1 {
		t.Fatalf("states = %d, want 1", got.NumStates())
	}
	if len(got.Choices[0][0].Succ) != 1 {
		t.Errorf("zero-probability edge to pruned state kept: %+v", got.Choices[0][0].Succ)
	}
}
