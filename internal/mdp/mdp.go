// Package mdp defines the finite Markov decision process abstractions used
// throughout the repository: an implicit (on-the-fly) model interface, an
// explicit in-memory model for small systems and tests, model validation,
// reachability analysis, and induction of the Markov chain obtained by
// fixing a positional strategy.
//
// The mean-payoff solvers live in package solve; the selfish-mining attack
// MDP of the paper is built in package core on top of these abstractions.
package mdp

import (
	"fmt"
	"math"
)

// Transition is a single probabilistic successor of a state-action pair.
// Reward is the transition reward r(s, a, s').
type Transition struct {
	Dst    int
	Prob   float64
	Reward float64
}

// Model is an implicit finite MDP. Implementations must be deterministic:
// repeated calls with the same arguments must return identical results.
//
// States are indexed 0..NumStates()-1 and actions per state are indexed
// 0..NumActions(s)-1. Every state must have at least one action, and each
// action's transition probabilities must sum to 1.
type Model interface {
	// NumStates returns the number of states.
	NumStates() int
	// Initial returns the initial state index.
	Initial() int
	// NumActions returns the number of actions available in state s.
	NumActions(s int) int
	// Transitions appends the successors of (s, a) to buf and returns the
	// extended slice. Implementations should not retain buf.
	Transitions(s, a int, buf []Transition) []Transition
}

// ActionLabeler is an optional interface for models that can describe
// actions in human-readable form.
type ActionLabeler interface {
	ActionLabel(s, a int) string
}

// Cloner is an optional interface for models that can produce independent
// views for concurrent readers. Implementations whose Transitions method
// uses internal scratch (like the on-the-fly attack MDP) return a view with
// its own scratch; implementations that are already safe for concurrent
// reads (like Explicit) may return the receiver. The parallel solvers in
// package solve fan a sweep out across goroutines only when the model
// implements Cloner, giving each worker its own view.
type Cloner interface {
	CloneModel() Model
}

// Choice is one action of an explicit model: a label and its successor
// distribution.
type Choice struct {
	Label string
	Succ  []Transition
}

// Explicit is an in-memory MDP, convenient for small systems and tests.
type Explicit struct {
	Init    int
	Choices [][]Choice // Choices[s] lists the actions available in s
}

var _ Model = (*Explicit)(nil)
var _ ActionLabeler = (*Explicit)(nil)
var _ Cloner = (*Explicit)(nil)

// CloneModel implements Cloner. An Explicit model is read-only during
// solving, so the receiver itself is a valid concurrent view.
func (e *Explicit) CloneModel() Model { return e }

// NumStates implements Model.
func (e *Explicit) NumStates() int { return len(e.Choices) }

// Initial implements Model.
func (e *Explicit) Initial() int { return e.Init }

// NumActions implements Model.
func (e *Explicit) NumActions(s int) int { return len(e.Choices[s]) }

// Transitions implements Model.
func (e *Explicit) Transitions(s, a int, buf []Transition) []Transition {
	return append(buf, e.Choices[s][a].Succ...)
}

// ActionLabel implements ActionLabeler.
func (e *Explicit) ActionLabel(s, a int) string {
	lbl := e.Choices[s][a].Label
	if lbl == "" {
		return fmt.Sprintf("a%d", a)
	}
	return lbl
}

// Validate checks structural well-formedness of a model: every state has at
// least one action, destinations are in range, probabilities are
// non-negative and sum to 1 within tol.
func Validate(m Model, tol float64) error {
	n := m.NumStates()
	if n <= 0 {
		return fmt.Errorf("mdp: model has %d states", n)
	}
	if init := m.Initial(); init < 0 || init >= n {
		return fmt.Errorf("mdp: initial state %d out of range [0,%d)", init, n)
	}
	var buf []Transition
	for s := 0; s < n; s++ {
		na := m.NumActions(s)
		if na <= 0 {
			return fmt.Errorf("mdp: state %d has no actions", s)
		}
		for a := 0; a < na; a++ {
			buf = m.Transitions(s, a, buf[:0])
			if len(buf) == 0 {
				return fmt.Errorf("mdp: state %d action %d has no successors", s, a)
			}
			var sum float64
			for _, tr := range buf {
				if tr.Dst < 0 || tr.Dst >= n {
					return fmt.Errorf("mdp: state %d action %d: destination %d out of range", s, a, tr.Dst)
				}
				if tr.Prob < 0 {
					return fmt.Errorf("mdp: state %d action %d: negative probability %v", s, a, tr.Prob)
				}
				sum += tr.Prob
			}
			if math.Abs(sum-1) > tol {
				return fmt.Errorf("mdp: state %d action %d: probabilities sum to %v, want 1", s, a, sum)
			}
		}
	}
	return nil
}

// Reachable returns the set of states reachable from the initial state under
// any strategy (i.e., exploring all actions), as a boolean mask and a count.
func Reachable(m Model) ([]bool, int) {
	n := m.NumStates()
	seen := make([]bool, n)
	stack := []int{m.Initial()}
	seen[m.Initial()] = true
	count := 1
	var buf []Transition
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := 0; a < m.NumActions(s); a++ {
			buf = m.Transitions(s, a, buf[:0])
			for _, tr := range buf {
				if tr.Prob > 0 && !seen[tr.Dst] {
					seen[tr.Dst] = true
					count++
					stack = append(stack, tr.Dst)
				}
			}
		}
	}
	return seen, count
}

// MaxBranching returns the largest number of successors over all
// state-action pairs; useful for sizing reusable buffers.
func MaxBranching(m Model) int {
	var buf []Transition
	best := 0
	for s := 0; s < m.NumStates(); s++ {
		for a := 0; a < m.NumActions(s); a++ {
			buf = m.Transitions(s, a, buf[:0])
			if len(buf) > best {
				best = len(buf)
			}
		}
	}
	return best
}
