package baseline

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// PublishRule selects when the single-tree baseline reveals its tree.
type PublishRule uint8

// Publish rules. The paper describes the baseline as "exactly following"
// the Eyal–Sirer attack but states the trigger as "whenever the length of
// the main chain catches up with the depth of the private tree"; the two
// readings differ, so both are implemented.
const (
	// PublishThreatened is the Eyal–Sirer rule: publish everything as soon
	// as the public chain is within one block of the tree depth (an
	// outright win for depth ≥ 2; from depth 1 the public catch-up is a tie
	// and triggers a γ-race). This is the default.
	PublishThreatened PublishRule = iota
	// PublishTie is the literal catch-up reading: publish only when the
	// public chain fully ties the tree depth, always racing with γ.
	PublishTie
)

// SingleTreeParams configures the single-tree selfish mining baseline.
type SingleTreeParams struct {
	// P is the adversary's resource fraction in [0, 1].
	P float64
	// Gamma is the switching probability for tie races in [0, 1].
	Gamma float64
	// MaxDepth is the maximal private tree depth (the paper uses l = 4).
	MaxDepth int
	// MaxWidth is the maximal number of tree nodes per level (the paper
	// uses f = 5).
	MaxWidth int
	// Rule selects the publication trigger (default PublishThreatened).
	Rule PublishRule
}

// Validate checks parameter ranges.
func (p SingleTreeParams) Validate() error {
	if p.P < 0 || p.P > 1 || math.IsNaN(p.P) {
		return fmt.Errorf("baseline: resource fraction P = %v outside [0, 1]", p.P)
	}
	if p.Gamma < 0 || p.Gamma > 1 || math.IsNaN(p.Gamma) {
		return fmt.Errorf("baseline: switching probability Gamma = %v outside [0, 1]", p.Gamma)
	}
	if p.MaxDepth < 1 {
		return fmt.Errorf("baseline: MaxDepth = %d, need >= 1", p.MaxDepth)
	}
	if p.MaxWidth < 1 {
		return fmt.Errorf("baseline: MaxWidth = %d, need >= 1", p.MaxWidth)
	}
	return nil
}

// treeState is a node of the baseline Markov chain: the per-level occupancy
// of the private tree (levels 1..MaxDepth) and the number of public blocks
// mined since the fork point. The strategy is fixed, so there are no
// decisions: the chain transitions by mining outcomes only.
type treeState struct {
	w [maxTreeDepth]uint8
	h uint8
}

// maxTreeDepth bounds the supported MaxDepth so states can be array-keyed.
const maxTreeDepth = 8

// SingleTree is the exact Markov-chain evaluation of the baseline.
type SingleTree struct {
	params SingleTreeParams

	// Explored chain.
	states  []treeState
	index   map[treeState]int
	chain   *linalg.CSR
	rewardA []float64
	rewardH []float64
}

// NewSingleTree explores the reachable chain for the given parameters.
func NewSingleTree(params SingleTreeParams) (*SingleTree, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.MaxDepth > maxTreeDepth {
		return nil, fmt.Errorf("baseline: MaxDepth %d exceeds supported maximum %d", params.MaxDepth, maxTreeDepth)
	}
	st := &SingleTree{params: params, index: make(map[treeState]int)}
	if params.P == 1 {
		// Degenerate: honest miners never mine, the tree never races; the
		// chain is not ergodic and ERRev is 1 by fiat. Skip materialization.
		return st, nil
	}
	if err := st.build(); err != nil {
		return nil, err
	}
	return st, nil
}

// depth returns the deepest occupied level of the tree.
func depth(s treeState, l int) int {
	for v := l; v >= 1; v-- {
		if s.w[v-1] > 0 {
			return v
		}
	}
	return 0
}

// succ describes one probabilistic successor during exploration.
type succ struct {
	state treeState
	prob  float64
	ra    float64
	rh    float64
}

// successors enumerates the transitions out of s. The mining race follows
// the same (p, k)-model as the attack MDP: the adversary mines on every
// tree node (and the fork-point root) that can still accept a child; each
// target wins with probability p/(1−p+p·σ), honest with (1−p)/(1−p+p·σ).
func (st *SingleTree) successors(s treeState) []succ {
	p := st.params.P
	gamma := st.params.Gamma
	l := st.params.MaxDepth
	f := st.params.MaxWidth

	// Targets per level v (0 = fork point root, occupancy 1): each node at
	// level v is a target iff level v+1 has spare width.
	var targets [maxTreeDepth]int // targets[v] = parents at level v that can spawn
	sigma := 0
	for v := 0; v < l; v++ {
		occ := 1
		if v > 0 {
			occ = int(s.w[v-1])
		}
		if int(s.w[v]) < f && occ > 0 {
			targets[v] = occ
			sigma += occ
		}
	}
	den := 1 - p + p*float64(sigma)
	var out []succ

	// Adversary grows the tree at level v+1.
	for v := 0; v < l; v++ {
		if targets[v] == 0 {
			continue
		}
		ns := s
		ns.w[v]++
		out = append(out, succ{state: ns, prob: float64(targets[v]) * p / den})
	}

	// Honest miners extend the public chain.
	hp := (1 - p) / den
	d := depth(s, l)
	newH := int(s.h) + 1
	publishAll := false
	switch {
	case d == 0:
		// Nothing withheld: the honest block is final; re-fork at the new tip.
		out = append(out, succ{state: treeState{}, prob: hp, rh: float64(newH)})
		return out
	case st.params.Rule == PublishThreatened && d >= 2 && newH == d-1:
		// Eyal–Sirer: the lead shrank to one; publish everything and win
		// outright (the tree's longest path exceeds the public chain).
		publishAll = true
	case newH == d:
		// The public chain fully caught up: publish and race.
		if gamma > 0 {
			out = append(out, succ{state: treeState{}, prob: hp * gamma, ra: float64(d)})
		}
		if gamma < 1 {
			out = append(out, succ{state: treeState{}, prob: hp * (1 - gamma), rh: float64(newH)})
		}
		return out
	}
	if publishAll {
		out = append(out, succ{state: treeState{}, prob: hp, ra: float64(d)})
		return out
	}
	// Public chain still behind: keep withholding.
	ns := s
	ns.h++
	out = append(out, succ{state: ns, prob: hp})
	return out
}

// build explores the reachable state space and materializes the chain.
func (st *SingleTree) build() error {
	start := treeState{}
	st.index[start] = 0
	st.states = append(st.states, start)
	var entries []linalg.Entry
	for i := 0; i < len(st.states); i++ {
		s := st.states[i]
		var ra, rh float64
		for _, sc := range st.successors(s) {
			j, ok := st.index[sc.state]
			if !ok {
				j = len(st.states)
				st.index[sc.state] = j
				st.states = append(st.states, sc.state)
			}
			entries = append(entries, linalg.Entry{Row: i, Col: j, Val: sc.prob})
			ra += sc.prob * sc.ra
			rh += sc.prob * sc.rh
		}
		st.rewardA = append(st.rewardA, ra)
		st.rewardH = append(st.rewardH, rh)
	}
	chain, err := linalg.NewCSR(len(st.states), len(st.states), entries)
	if err != nil {
		return fmt.Errorf("baseline: building single-tree chain: %w", err)
	}
	if !chain.IsStochastic(1e-9) {
		return fmt.Errorf("baseline: single-tree chain is not stochastic")
	}
	st.chain = chain
	return nil
}

// NumStates returns the size of the explored chain.
func (st *SingleTree) NumStates() int { return len(st.states) }

// ERRev computes the exact expected relative revenue of the baseline by
// stationary analysis: gain(r_A) / (gain(r_A) + gain(r_H)).
func (st *SingleTree) ERRev() (float64, error) {
	if st.params.P == 0 {
		return 0, nil
	}
	if st.params.P == 1 {
		// Honest miners never win a race; the adversary owns the chain.
		return 1, nil
	}
	pi, err := linalg.Stationary(st.chain, linalg.StationaryOptions{})
	if err != nil {
		return 0, fmt.Errorf("baseline: single-tree stationary distribution: %w", err)
	}
	var gA, gH float64
	for i := range pi {
		gA += pi[i] * st.rewardA[i]
		gH += pi[i] * st.rewardH[i]
	}
	if gA+gH <= 0 {
		return 0, fmt.Errorf("baseline: degenerate single-tree chain: total block rate %v", gA+gH)
	}
	return gA / (gA + gH), nil
}

// SingleTreeERRev is a convenience wrapper: build and evaluate in one call.
func SingleTreeERRev(params SingleTreeParams) (float64, error) {
	st, err := NewSingleTree(params)
	if err != nil {
		return 0, err
	}
	return st.ERRev()
}
