package baseline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHonestERRev(t *testing.T) {
	tests := []struct {
		p       float64
		want    float64
		wantErr bool
	}{
		{0, 0, false},
		{0.3, 0.3, false},
		{1, 1, false},
		{-0.1, 0, true},
		{1.1, 0, true},
		{math.NaN(), 0, true},
	}
	for _, tt := range tests {
		got, err := HonestERRev(tt.p)
		if (err != nil) != tt.wantErr {
			t.Errorf("HonestERRev(%v) error = %v, wantErr %v", tt.p, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("HonestERRev(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

// TestEyalSirerChainMatchesClosedForm anchors the stationary machinery to
// the published SM1 revenue formula across a grid of (p, γ).
func TestEyalSirerChainMatchesClosedForm(t *testing.T) {
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.45} {
		for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
			want, err := EyalSirerClosedForm(p, gamma)
			if err != nil {
				t.Fatalf("closed form(%v, %v): %v", p, gamma, err)
			}
			// maxLead=400 keeps the birth-death truncation error (p/(1-p))^maxLead
			// far below the comparison tolerance even at p=0.45.
			got, err := EyalSirerChainERRev(p, gamma, 400)
			if err != nil {
				t.Fatalf("chain(%v, %v): %v", p, gamma, err)
			}
			if math.Abs(got-want) > 1e-7 {
				t.Errorf("p=%v gamma=%v: chain %v vs closed form %v", p, gamma, got, want)
			}
		}
	}
}

// TestEyalSirerKnownThresholds: SM1 beats honest mining above the published
// profitability thresholds — p > 1/3 at γ=0 and p > 1/4 at γ=0.5 — and not
// below them.
func TestEyalSirerKnownThresholds(t *testing.T) {
	tests := []struct {
		p, gamma float64
		beats    bool
	}{
		{0.30, 0, false},
		{0.35, 0, true},
		{0.24, 0.5, false},
		{0.26, 0.5, true},
		{0.05, 1, true}, // at γ=1 SM1 is profitable for any p > 0
	}
	for _, tt := range tests {
		rev, err := EyalSirerChainERRev(tt.p, tt.gamma, 0)
		if err != nil {
			t.Fatalf("chain(%v, %v): %v", tt.p, tt.gamma, err)
		}
		if got := rev > tt.p; got != tt.beats {
			t.Errorf("p=%v gamma=%v: revenue %v, beats honest = %v, want %v", tt.p, tt.gamma, rev, got, tt.beats)
		}
	}
}

func TestEyalSirerValidation(t *testing.T) {
	if _, err := EyalSirerClosedForm(0.6, 0.5); err == nil {
		t.Error("closed form should reject p >= 0.5")
	}
	if _, err := EyalSirerChainERRev(0.3, 2, 0); err == nil {
		t.Error("chain should reject gamma > 1")
	}
	if _, err := EyalSirerChainERRev(0.3, 0.5, 2); err == nil {
		t.Error("chain should reject tiny maxLead")
	}
	if got, err := EyalSirerChainERRev(0, 0.5, 0); err != nil || got != 0 {
		t.Errorf("p=0: got %v, %v; want 0, nil", got, err)
	}
}

func TestSingleTreeValidation(t *testing.T) {
	bad := []SingleTreeParams{
		{P: -0.1, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5},
		{P: 0.3, Gamma: 1.5, MaxDepth: 4, MaxWidth: 5},
		{P: 0.3, Gamma: 0.5, MaxDepth: 0, MaxWidth: 5},
		{P: 0.3, Gamma: 0.5, MaxDepth: 4, MaxWidth: 0},
		{P: 0.3, Gamma: 0.5, MaxDepth: 99, MaxWidth: 5},
	}
	for _, p := range bad {
		if _, err := NewSingleTree(p); err == nil {
			t.Errorf("NewSingleTree(%+v) accepted invalid params", p)
		}
	}
}

func TestSingleTreeEdgeCases(t *testing.T) {
	if got, err := SingleTreeERRev(SingleTreeParams{P: 0, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5}); err != nil || got != 0 {
		t.Errorf("p=0: got %v, %v; want 0, nil", got, err)
	}
	if got, err := SingleTreeERRev(SingleTreeParams{P: 1, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5}); err != nil || got != 1 {
		t.Errorf("p=1: got %v, %v; want 1, nil", got, err)
	}
}

// TestSingleTreeERRevInUnitInterval: property over random parameters.
func TestSingleTreeERRevInUnitInterval(t *testing.T) {
	property := func(seedP, seedG uint8) bool {
		p := SingleTreeParams{
			P:        float64(seedP%100) / 100,
			Gamma:    float64(seedG%101) / 100,
			MaxDepth: 3,
			MaxWidth: 3,
		}
		got, err := SingleTreeERRev(p)
		if err != nil {
			return false
		}
		return got >= 0 && got <= 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleTreeMonotoneInGamma: a better network position cannot hurt a
// race-based strategy.
func TestSingleTreeMonotoneInGamma(t *testing.T) {
	prev := -1.0
	for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, err := SingleTreeERRev(SingleTreeParams{P: 0.3, Gamma: gamma, MaxDepth: 4, MaxWidth: 5})
		if err != nil {
			t.Fatalf("gamma=%v: %v", gamma, err)
		}
		if got < prev-1e-9 {
			t.Errorf("ERRev not monotone in gamma: %v after %v", got, prev)
		}
		prev = got
	}
}

// TestSingleTreeMonotoneInP: more resource, more revenue.
func TestSingleTreeMonotoneInP(t *testing.T) {
	prev := -1.0
	for _, p := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3} {
		got, err := SingleTreeERRev(SingleTreeParams{P: p, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5})
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if got < prev-1e-9 {
			t.Errorf("ERRev not monotone in p: %v after %v", got, prev)
		}
		prev = got
	}
}

// TestSingleTreeWiderTreeHelps: more width means more mining targets and a
// faster-growing tree, so revenue cannot decrease.
func TestSingleTreeWiderTreeHelps(t *testing.T) {
	narrow, err := SingleTreeERRev(SingleTreeParams{P: 0.3, Gamma: 0.5, MaxDepth: 4, MaxWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := SingleTreeERRev(SingleTreeParams{P: 0.3, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if wide < narrow-1e-9 {
		t.Errorf("wider tree lost revenue: width 5 %v < width 1 %v", wide, narrow)
	}
}

// TestSingleTreeStateInvariant: occupancy of level v+1 requires occupancy
// of level v in every reachable state (children need parents).
func TestSingleTreeStateInvariant(t *testing.T) {
	st, err := NewSingleTree(SingleTreeParams{P: 0.3, Gamma: 0.5, MaxDepth: 4, MaxWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st.states {
		for v := 1; v < st.params.MaxDepth; v++ {
			if s.w[v] > 0 && s.w[v-1] == 0 {
				t.Fatalf("reachable state with orphan level: %+v", s)
			}
		}
		d := depth(s, st.params.MaxDepth)
		if d > 0 && int(s.h) >= d {
			t.Fatalf("reachable state where public chain caught the tree without racing: %+v", s)
		}
	}
}

// TestSingleTreePublishRules: the Eyal–Sirer threatened rule dominates the
// literal tie rule (it converts γ-races into sure wins), and at the paper's
// operating point it beats honest mining, making it a meaningful baseline.
func TestSingleTreePublishRules(t *testing.T) {
	for _, p := range []float64{0.15, 0.25, 0.3} {
		tie, err := SingleTreeERRev(SingleTreeParams{P: p, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5, Rule: PublishTie})
		if err != nil {
			t.Fatalf("tie rule p=%v: %v", p, err)
		}
		thr, err := SingleTreeERRev(SingleTreeParams{P: p, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5, Rule: PublishThreatened})
		if err != nil {
			t.Fatalf("threatened rule p=%v: %v", p, err)
		}
		if thr < tie-1e-9 {
			t.Errorf("p=%v: threatened %v below tie %v", p, thr, tie)
		}
	}
	thr, err := SingleTreeERRev(SingleTreeParams{P: 0.3, Gamma: 0.5, MaxDepth: 4, MaxWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if thr <= 0.3 {
		t.Errorf("ES-style single-tree at p=0.3 gamma=0.5 = %v, want above honest 0.3", thr)
	}
}
