package baseline

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// EyalSirerClosedForm returns the relative revenue of the classic SM1
// selfish-mining strategy on a proof-of-work chain, as published in
// Eyal & Sirer, "Majority is not Enough: Bitcoin Mining is Vulnerable"
// (equation (8) with α = p and the γ tie-breaking parameter):
//
//	R = ( p(1−p)²(4p + γ(1−2p)) − p³ ) / ( 1 − p(1 + (2−p)p) )
//
// It serves as an independent published anchor for our stationary-analysis
// machinery (see EyalSirerChainERRev).
func EyalSirerClosedForm(p, gamma float64) (float64, error) {
	if p < 0 || p >= 0.5 || math.IsNaN(p) {
		return 0, fmt.Errorf("baseline: SM1 closed form needs p in [0, 0.5), got %v", p)
	}
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return 0, fmt.Errorf("baseline: gamma = %v outside [0, 1]", gamma)
	}
	num := p*(1-p)*(1-p)*(4*p+gamma*(1-2*p)) - p*p*p
	den := 1 - p*(1+(2-p)*p)
	return num / den, nil
}

// EyalSirerChainERRev evaluates the same SM1 strategy by building its
// Markov chain explicitly (lead states 0, 0', 1, 2, ..., maxLead) and
// computing the stationary reward ratio. maxLead truncates the birth-death
// chain; the truncation error is O(p^maxLead) (use >= 50 for 1e-9 accuracy
// at p <= 0.45). Pass maxLead <= 0 for the default of 64.
//
// Chain structure (lead = private − public):
//
//	lead 0:  adversary finds (p) → lead 1; honest finds (1−p) → honest
//	         block commits (rh=1), stay at 0.
//	lead 1:  honest finds → publish the withheld block: tie race state 0'.
//	lead 2:  honest finds → publish everything, adversary commits both
//	         blocks (ra=2) → 0.
//	lead n≥3: honest finds → reveal one block; the deepest private block
//	         effectively commits (ra=1) → n−1.
//	state 0' (tie): adversary finds on its branch (p): ra=2 → 0; honest
//	         finds on the adversary branch (γ(1−p)): ra=1, rh=1 → 0;
//	         honest finds on its own branch ((1−γ)(1−p)): rh=2 → 0.
func EyalSirerChainERRev(p, gamma float64, maxLead int) (float64, error) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("baseline: p = %v outside [0, 1)", p)
	}
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return 0, fmt.Errorf("baseline: gamma = %v outside [0, 1]", gamma)
	}
	if p == 0 {
		return 0, nil
	}
	if maxLead <= 0 {
		maxLead = 64
	}
	if maxLead < 3 {
		return 0, fmt.Errorf("baseline: maxLead = %d too small, need >= 3", maxLead)
	}
	// State layout: 0 → lead 0, 1 → tie state 0', k+1 → lead k (k = 1..maxLead).
	n := maxLead + 2
	idxLead := func(k int) int { return k + 1 }
	var entries []linalg.Entry
	ra := make([]float64, n)
	rh := make([]float64, n)
	add := func(from, to int, prob, a, h float64) {
		entries = append(entries, linalg.Entry{Row: from, Col: to, Val: prob})
		ra[from] += prob * a
		rh[from] += prob * h
	}
	q := 1 - p
	// lead 0.
	add(0, idxLead(1), p, 0, 0)
	add(0, 0, q, 0, 1)
	// tie state 0'.
	add(1, 0, p, 2, 0)
	add(1, 0, gamma*q, 1, 1)
	add(1, 0, (1-gamma)*q, 0, 2)
	// lead 1.
	add(idxLead(1), idxLead(2), p, 0, 0)
	add(idxLead(1), 1, q, 0, 0)
	// lead 2.
	add(idxLead(2), idxLead(3), p, 0, 0)
	add(idxLead(2), 0, q, 2, 0)
	// lead k >= 3.
	for k := 3; k <= maxLead; k++ {
		if k < maxLead {
			add(idxLead(k), idxLead(k+1), p, 0, 0)
		} else {
			// Truncation: a further adversary block is treated as an
			// immediate commit at the same lead (negligible for large caps).
			add(idxLead(k), idxLead(k), p, 1, 0)
		}
		add(idxLead(k), idxLead(k-1), q, 1, 0)
	}
	chain, err := linalg.NewCSR(n, n, entries)
	if err != nil {
		return 0, fmt.Errorf("baseline: building SM1 chain: %w", err)
	}
	pi, err := linalg.Stationary(chain, linalg.StationaryOptions{})
	if err != nil {
		return 0, fmt.Errorf("baseline: SM1 stationary distribution: %w", err)
	}
	var gA, gH float64
	for i := range pi {
		gA += pi[i] * ra[i]
		gH += pi[i] * rh[i]
	}
	if gA+gH <= 0 {
		return 0, fmt.Errorf("baseline: degenerate SM1 chain: block rate %v", gA+gH)
	}
	return gA / (gA + gH), nil
}
