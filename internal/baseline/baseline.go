// Package baseline implements the two baselines of the paper's evaluation
// (Section 4) plus a classical validation anchor:
//
//  1. Honest mining: the strategy that extends only the leading block of
//     the main chain; its expected relative revenue is exactly p.
//  2. Single-tree selfish mining: the direct extension of the classic
//     Bitcoin attack of Eyal–Sirer to efficient proof systems — the
//     adversary grows one private tree (of bounded depth l and width f)
//     rooted at the fork point and publishes its longest path when the
//     public chain catches up with the tree depth, triggering a γ-race.
//     Because the strategy is fixed, the system is a Markov chain and is
//     evaluated exactly by stationary analysis.
//  3. Classic Eyal–Sirer SM1 on proof of work, together with the closed
//     form revenue formula published in "Majority is not Enough"; the
//     agreement between our chain analysis and the published formula
//     validates the stationary-analysis machinery end to end.
package baseline

import (
	"fmt"
	"math"
)

// HonestERRev returns the expected relative revenue of honest mining with a
// p fraction of the resource. Honest participation wins each block race
// with probability exactly p (the (p,1)-mining race against the (1−p,1)
// rest), and every won block joins the main chain permanently, so the
// long-run block ratio is p.
func HonestERRev(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("baseline: resource fraction p = %v outside [0, 1]", p)
	}
	return p, nil
}
