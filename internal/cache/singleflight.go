package cache

import (
	"context"
	"errors"
	"sync"
)

// ErrLeaderPanicked is delivered to coalesced waiters when the leader's fn
// panicked instead of returning; the panic itself propagates on the leader.
var ErrLeaderPanicked = errors.New("cache: singleflight leader panicked")

// call tracks one in-flight execution and the callers waiting on it.
type call[V any] struct {
	done    chan struct{}
	value   V
	err     error
	waiters int // callers beyond the leader, i.e. coalesced duplicates
}

// Group coalesces concurrent calls with the same key into a single
// execution: the first caller (the leader) runs fn, every concurrent
// duplicate blocks until the leader finishes and receives the same value
// and error. Calls arriving after completion execute fn again — Group
// deduplicates in-flight work only; pair it with an LRU for result reuse.
//
// The zero value is ready to use. Group is safe for concurrent use.
type Group[K comparable, V any] struct {
	mu        sync.Mutex
	calls     map[K]*call[V]
	coalesced uint64
}

// Do executes fn under key, coalescing concurrent duplicates. It returns
// fn's value and error, and whether this call shared a leader's execution
// instead of running fn itself.
//
// fn runs on the leader's goroutine with no locks held, so it may itself
// use the Group (with a different key) or block at length. If fn panics,
// the panic propagates on the leader and waiters receive ErrLeaderPanicked.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (value V, err error, shared bool) {
	return g.DoContext(context.Background(), key, fn)
}

// DoContext is Do with a caller-scoped context governing the WAIT, not the
// work: a coalesced follower whose ctx is done stops waiting immediately
// and receives ctx.Err(), while the leader's execution of fn continues
// unaffected (other followers still receive its eventual result, and
// whatever fn populates — caches, warm-start stores — is untouched by the
// abandoned wait). The leader itself ignores ctx here; cancelling the
// leader's work is fn's business (fn typically closes over the same ctx).
func (g *Group[K, V]) DoContext(ctx context.Context, key K, fn func() (V, error)) (value V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.coalesced++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.value, c.err, true
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err(), true
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	normalReturn := false
	defer func() {
		if !normalReturn {
			c.err = ErrLeaderPanicked
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.value, c.err = fn()
	normalReturn = true
	return c.value, c.err, false
}

// Coalesced returns the total number of calls that were answered by another
// caller's execution since the Group was created.
func (g *Group[K, V]) Coalesced() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}

// InFlight returns the number of keys currently executing.
func (g *Group[K, V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
