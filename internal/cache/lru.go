// Package cache provides the serving-layer primitives of the repository: a
// generic LRU cache with hit/miss/eviction accounting and a generic
// singleflight group that coalesces concurrent identical requests into one
// execution.
//
// Both types are safe for concurrent use and dependency-free. They back
// selfishmining.Service, which layers them into a result cache (solved
// analyses), a structure cache (compiled attack MDPs shared across chain
// parameters), and a warm-start store (value vectors reused as solver
// seeds).
package cache

import "sync"

// Stats is a point-in-time snapshot of an LRU's accounting counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses uint64
	// Evictions counts entries displaced by Add on a full cache.
	Evictions uint64
	// Len and Cap are the current and maximal entry counts.
	Len, Cap int
}

// entry is a node of the intrusive doubly-linked recency list.
type entry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *entry[K, V]
}

// LRU is a fixed-capacity least-recently-used cache. The zero value is not
// usable; construct with NewLRU. All methods are safe for concurrent use.
//
// A capacity of zero disables the cache entirely: Add is a no-op and Get
// always misses (still counted), which gives callers a uniform way to run
// cache-free for comparisons.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*entry[K, V]
	// head is most recently used, tail least; nil when empty.
	head, tail *entry[K, V]
	stats      Stats
}

// NewLRU returns an empty cache holding at most capacity entries.
// A negative capacity is treated as zero (disabled).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU[K, V]{
		capacity: capacity,
		items:    make(map[K]*entry[K, V], capacity),
	}
}

// Get returns the value cached under key, marking it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		var zero V
		return zero, false
	}
	c.stats.Hits++
	c.moveToFront(e)
	return e.value, true
}

// Add stores value under key, evicting the least recently used entry if the
// cache is full. Adding an existing key updates its value and recency. It
// reports whether an eviction happened.
func (c *LRU[K, V]) Add(key K, value V) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.items[key]; ok {
		e.value = value
		c.moveToFront(e)
		return false
	}
	if len(c.items) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		c.stats.Evictions++
		evicted = true
	}
	e := &entry[K, V]{key: key, value: value}
	c.items[key] = e
	c.pushFront(e)
	return evicted
}

// GetOrAdd returns the value already cached under key (marking it most
// recently used), or stores and returns value if the key is absent — a
// single atomic step, so two racing callers always agree on one winner
// instead of silently replacing each other's entry.
func (c *LRU[K, V]) GetOrAdd(key K, value V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.stats.Hits++
		c.moveToFront(e)
		return e.value, true
	}
	c.stats.Misses++
	if c.capacity == 0 {
		return value, false
	}
	if len(c.items) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		c.stats.Evictions++
	}
	e := &entry[K, V]{key: key, value: value}
	c.items[key] = e
	c.pushFront(e)
	return value, false
}

// Remove drops key from the cache, reporting whether it was present.
// Removals are not counted as evictions.
func (c *LRU[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.items, key)
	return true
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns a snapshot of the accounting counters.
func (c *LRU[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Len = len(c.items)
	s.Cap = c.capacity
	return s
}

// moveToFront marks e most recently used. Caller holds mu.
func (c *LRU[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// pushFront links a detached e as the new head. Caller holds mu.
func (c *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink detaches e from the recency list. Caller holds mu.
func (c *LRU[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
