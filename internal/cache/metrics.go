package cache

import "repro/internal/obs"

// RegisterLRU wires one named LRU into a metrics registry as scrape-time
// collector series: the shared cache_* families gain a series labeled with
// this cache's name, refreshed from Stats() on every exposition. Counters
// are mirrored with Store rather than incremented in Get/Add, so the
// cache's hot path carries no extra instrumentation.
func RegisterLRU[K comparable, V any](r *obs.Registry, name string, c *LRU[K, V]) {
	hits := r.CounterVec("cache_hits_total",
		"LRU cache lookup hits, by cache.", "cache").With(name)
	misses := r.CounterVec("cache_misses_total",
		"LRU cache lookup misses, by cache.", "cache").With(name)
	evictions := r.CounterVec("cache_evictions_total",
		"LRU cache entries displaced by inserts on a full cache, by cache.", "cache").With(name)
	entries := r.GaugeVec("cache_entries",
		"Current LRU cache entry count, by cache.", "cache").With(name)
	capacity := r.GaugeVec("cache_capacity",
		"Maximum LRU cache entry count, by cache.", "cache").With(name)
	r.OnCollect(func() {
		st := c.Stats()
		hits.Store(st.Hits)
		misses.Store(st.Misses)
		evictions.Store(st.Evictions)
		entries.Set(float64(st.Len))
		capacity.Set(float64(st.Cap))
	})
}
