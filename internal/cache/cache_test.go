package cache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUHitMissAccounting(t *testing.T) {
	c := NewLRU[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Add("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Len != 1 || st.Cap != 2 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 0 evictions, len 1, cap 2", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	// Touch a so b becomes least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if evicted := c.Add("c", 3); !evicted {
		t.Error("Add on a full cache did not evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if evicted := c.Add("a", 10); evicted {
		t.Error("updating an existing key must not evict")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("a = %d after update, want 10", v)
	}
	// The update refreshed a's recency, so b is now the LRU entry.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted after a was refreshed")
	}
}

func TestLRUGetOrAdd(t *testing.T) {
	c := NewLRU[string, int](2)
	if v, loaded := c.GetOrAdd("a", 1); loaded || v != 1 {
		t.Errorf("GetOrAdd on empty = %v, %v; want 1, false", v, loaded)
	}
	// The existing entry must win over the proposed value.
	if v, loaded := c.GetOrAdd("a", 99); !loaded || v != 1 {
		t.Errorf("GetOrAdd on present = %v, %v; want 1, true", v, loaded)
	}
	c.GetOrAdd("b", 2)
	c.GetOrAdd("c", 3) // evicts a (LRU after the b insert? a was touched last by GetOrAdd)
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2 (capacity respected)", c.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 hit, 3 misses, 1 eviction", st)
	}
}

// TestLRUGetOrAddConcurrent: racing GetOrAdd calls for one key agree on a
// single winner — the lost-update shape that separate Get+Add suffers.
func TestLRUGetOrAddConcurrent(t *testing.T) {
	c := NewLRU[string, *int](4)
	var wg sync.WaitGroup
	winners := make([]*int, 16)
	for i := range winners {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := new(int)
			*v = i
			winners[i], _ = c.GetOrAdd("k", v)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(winners); i++ {
		if winners[i] != winners[0] {
			t.Fatalf("caller %d saw a different winner", i)
		}
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Add("a", 1)
	if !c.Remove("a") {
		t.Error("Remove(a) = false, want true")
	}
	if c.Remove("a") {
		t.Error("second Remove(a) = true, want false")
	}
	if c.Len() != 0 {
		t.Errorf("len = %d after remove, want 0", c.Len())
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Errorf("Remove counted as eviction: %+v", st)
	}
}

func TestLRUZeroCapacityDisabled(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
	if st := c.Stats(); st.Misses != 1 || st.Len != 0 {
		t.Errorf("stats = %+v, want 1 miss, len 0", st)
	}
}

func TestLRUSingleEntryChurn(t *testing.T) {
	c := NewLRU[int, int](1)
	for i := 0; i < 10; i++ {
		c.Add(i, i)
	}
	if v, ok := c.Get(9); !ok || v != 9 {
		t.Fatalf("Get(9) = %v, %v", v, ok)
	}
	if st := c.Stats(); st.Evictions != 9 || st.Len != 1 {
		t.Errorf("stats = %+v, want 9 evictions, len 1", st)
	}
}

// TestLRUConcurrent hammers one cache from many goroutines; run under
// -race this checks the locking discipline, and the final invariant checks
// the list/map stay consistent.
func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[int, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 40
				c.Add(k, k)
				if v, ok := c.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Errorf("len = %d exceeds capacity 16", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no accesses recorded")
	}
}

func TestSingleflightSequentialRunsEachCall(t *testing.T) {
	var g Group[string, int]
	var runs int
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (int, error) {
			runs++
			return runs, nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%d err=%v shared=%v", i, v, err, shared)
		}
	}
	if runs != 3 || g.Coalesced() != 0 {
		t.Errorf("runs=%d coalesced=%d, want 3 and 0", runs, g.Coalesced())
	}
}

// TestSingleflightCoalesces blocks a leader until N duplicates are queued,
// then verifies exactly one execution served all callers. Run under -race
// in CI, this is the coalescing-correctness test the service layer relies
// on.
func TestSingleflightCoalesces(t *testing.T) {
	const dups = 8
	var g Group[string, int]
	var runs atomic.Int64
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, dups+1)
	shareds := make([]bool, dups+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, shared := g.Do("k", func() (int, error) {
			close(leaderIn)
			<-release
			runs.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Errorf("leader err: %v", err)
		}
		results[0], shareds[0] = v, shared
	}()
	<-leaderIn // leader is inside fn; duplicates must now coalesce
	for i := 1; i <= dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (int, error) {
				runs.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("dup %d err: %v", i, err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	// Wait until all duplicates are registered, then release the leader.
	for g.Coalesced() < dups {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	sharedCount := 0
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != dups {
		t.Errorf("%d callers shared, want %d", sharedCount, dups)
	}
	if g.Coalesced() != dups {
		t.Errorf("Coalesced() = %d, want %d", g.Coalesced(), dups)
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight() = %d after completion, want 0", g.InFlight())
	}
}

func TestSingleflightErrorShared(t *testing.T) {
	var g Group[string, int]
	wantErr := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	// The key must be free again for the next call.
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("after error: v=%d err=%v", v, err)
	}
}

func TestSingleflightDistinctKeysRunConcurrently(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	var runs atomic.Int64
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err, _ := g.Do(k, func() (int, error) {
				runs.Add(1)
				return k * k, nil
			})
			if err != nil || v != k*k {
				t.Errorf("key %d: v=%d err=%v", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if runs.Load() != 4 {
		t.Errorf("runs = %d, want 4 (distinct keys must not coalesce)", runs.Load())
	}
}

func TestSingleflightLeaderPanic(t *testing.T) {
	var g Group[string, int]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		g.Do("k", func() (int, error) { panic("boom") })
	}()
	if g.InFlight() != 0 {
		t.Errorf("InFlight() = %d after panic, want 0", g.InFlight())
	}
	// Key usable again.
	if v, err, _ := g.Do("k", func() (int, error) { return 1, nil }); err != nil || v != 1 {
		t.Errorf("after panic: v=%d err=%v", v, err)
	}
}

func BenchmarkLRUGetHit(b *testing.B) {
	c := NewLRU[string, int](1024)
	for i := 0; i < 1024; i++ {
		c.Add(fmt.Sprintf("k%d", i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("k7"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSingleflightUncontended(b *testing.B) {
	var g Group[int, int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err, _ := g.Do(0, func() (int, error) { return 1, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSingleflightDoContextFollowerCancel: a coalesced follower whose
// context ends stops waiting immediately with ctx.Err(), while the leader
// keeps executing and later followers still receive its result.
func TestSingleflightDoContextFollowerCancel(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	gate := make(chan struct{})
	leaderDone := make(chan int, 1)
	go func() {
		v, err, shared := g.Do("k", func() (int, error) {
			close(started)
			<-gate
			return 42, nil
		})
		if err != nil || shared {
			t.Errorf("leader: v=%d err=%v shared=%v", v, err, shared)
		}
		leaderDone <- v
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, err, shared := g.DoContext(ctx, "k", func() (int, error) {
			t.Error("canceled follower executed fn")
			return 0, nil
		})
		if !shared {
			t.Error("follower did not coalesce")
		}
		followerErr <- err
	}()
	// Give the follower time to register as a waiter, then cancel it while
	// the leader is still parked.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-followerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled follower did not unblock")
	}

	close(gate)
	if v := <-leaderDone; v != 42 {
		t.Fatalf("leader returned %d after follower cancel, want 42", v)
	}
	if n := g.InFlight(); n != 0 {
		t.Fatalf("InFlight = %d after completion, want 0", n)
	}
	if n := g.Coalesced(); n != 1 {
		t.Fatalf("Coalesced = %d, want 1 (the canceled follower still coalesced)", n)
	}
}

// TestSingleflightDoContextLeaderIgnoresCtx: the context governs the wait,
// not the work — a leader with a dead context still runs fn (cancelling
// the work is fn's own business).
func TestSingleflightDoContextLeaderIgnoresCtx(t *testing.T) {
	var g Group[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err, shared := g.DoContext(ctx, "k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("leader under dead ctx: v=%d err=%v shared=%v, want 7/nil/false", v, err, shared)
	}
}
