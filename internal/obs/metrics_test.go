package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format byte-for-byte on a
// small fixed registry: HELP/TYPE lines, family ordering by name, series
// ordering by label values, cumulative histogram buckets with the
// implicit +Inf, and label escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "last family by name")
	c.Add(7)
	v := r.CounterVec("requests_total", "requests", "route", "code")
	v.With("/v1/analyze", "200").Add(3)
	v.With("/v1/analyze", "400").Inc()
	v.With("/metrics", "200").Inc()
	g := r.Gauge("in_flight", "now")
	g.Set(2.5)
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(10)
	e := r.CounterVec("escaped_total", `help with \ backslash`, "path")
	e.With("a\"b\\c\nd").Inc()

	var b strings.Builder
	r.WriteProm(&b)
	want := `# HELP escaped_total help with \\ backslash
# TYPE escaped_total counter
escaped_total{path="a\"b\\c\nd"} 1
# HELP in_flight now
# TYPE in_flight gauge
in_flight 2.5
# HELP latency_seconds latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 11.05
latency_seconds_count 4
# HELP requests_total requests
# TYPE requests_total counter
requests_total{route="/metrics",code="200"} 1
requests_total{route="/v1/analyze",code="200"} 3
requests_total{route="/v1/analyze",code="400"} 1
# HELP zz_total last family by name
# TYPE zz_total counter
zz_total 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestIdempotentRegistration: re-asking for an instrument returns the same
// one (shared Default-registry instruments depend on this), and a shape
// mismatch panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h")
	b := r.Counter("c_total", "h")
	if a != b {
		t.Fatal("same-name counter not shared")
	}
	h1 := r.HistogramVec("h_seconds", "h", []float64{1, 2}, "variant")
	h2 := r.HistogramVec("h_seconds", "h", []float64{1, 2}, "variant")
	if h1 != h2 {
		t.Fatal("same-shape histogram vec not shared")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type mismatch did not panic")
			}
		}()
		r.Gauge("c_total", "h")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bucket mismatch did not panic")
			}
		}()
		r.HistogramVec("h_seconds", "h", []float64{1, 2, 3}, "variant")
	}()
}

// TestConcurrentInstruments hammers inc/observe/with/collect from many
// goroutines; run under -race this is the registry's thread-safety pin,
// and the final counts double-check no update was lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	v := r.CounterVec("ops_by_kind_total", "ops", "kind")
	g := r.Gauge("depth", "depth")
	h := r.HistogramVec("dur_seconds", "dur", DefBuckets(), "variant")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"a", "b", "c"}[w%3]
			for i := 0; i < per; i++ {
				c.Inc()
				v.With(kind).Inc()
				g.Add(1)
				g.Add(-1)
				h.With(kind).Observe(float64(i%100) / 1000)
				if i%500 == 0 {
					var b strings.Builder
					r.WriteProm(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("ops_total = %d, want %d", got, workers*per)
	}
	var total uint64
	for _, k := range []string{"a", "b", "c"} {
		total += v.With(k).Value()
	}
	if total != workers*per {
		t.Errorf("sum over kinds = %d, want %d", total, workers*per)
	}
	var n uint64
	for _, k := range []string{"a", "b", "c"} {
		n += h.With(k).Count()
	}
	if n != workers*per {
		t.Errorf("histogram count = %d, want %d", n, workers*per)
	}
}

// TestEnabledSwitch: with instrumentation off, Inc/Observe/span updates
// are dropped while collector-style Store/Set still land — the contract
// the bench overhead cell relies on.
func TestEnabledSwitch(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	h := r.Histogram("h_seconds", "h", []float64{1})
	SetEnabled(false)
	c.Inc()
	h.Observe(0.5)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled updates recorded: counter=%d histogram=%d", c.Value(), h.Count())
	}
	c.Store(42)
	if c.Value() != 42 {
		t.Errorf("Store gated by enabled switch: got %d", c.Value())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 43 {
		t.Errorf("re-enabled counter = %d, want 43", c.Value())
	}
}

// TestNilSafety: nil instruments and zero spans are silent no-ops, so
// call sites never need guards.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	c.Store(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	StartSpan(h).End()
	StartSpan(nil).End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
}
