package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Context keys for the two IDs the system threads through its layers: a
// per-HTTP-request ID (accepted from or issued to the client as
// X-Request-ID) and a per-job ID. The ctx-aware slog handler injects both
// into every log record emitted under that context, and the jobs layer
// persists the request ID on the job record so async work stays traceable
// back to the submit call.
type ctxKey int

const (
	ctxRequestID ctxKey = iota + 1
	ctxJobID
)

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// WithJobID returns a context carrying the job ID.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxJobID, id)
}

// JobIDFrom returns the job ID carried by ctx, or "".
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxJobID).(string)
	return id
}

// NewID returns a fresh 16-hex-character random ID for requests that
// arrive without one.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of outside a broken platform;
		// a constant fallback keeps logging usable rather than panicking.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the service logger: slog in text or json format at the
// given level, wrapped so request/job IDs riding the context land on every
// record as request_id / job_id attributes.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	ho := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, ho)
	case "json":
		h = slog.NewJSONHandler(w, ho)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(ctxHandler{h}), nil
}

// Discard returns a logger that drops every record; the nil-logger
// default for libraries (jobs.Manager) whose caller did not wire one.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// ctxHandler injects the context-carried IDs into each record before
// delegating. WithAttrs/WithGroup re-wrap so derived loggers keep the
// behavior.
type ctxHandler struct{ inner slog.Handler }

func (h ctxHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := RequestIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("request_id", id))
	}
	if id := JobIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("job_id", id))
	}
	return h.inner.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{h.inner.WithGroup(name)}
}
