package obs

import "time"

// A Span times one named phase of the hot path — a compile, a full solve,
// an adaptive-refine wave — and records the elapsed seconds into a
// histogram when ended. It is a value type: starting and ending a span
// allocates nothing, and a span started while instrumentation is disabled
// (or against a nil histogram) is a no-op, so call sites need no guards.
//
// Spans wrap whole phases, never per-state or per-transition work: the
// clock is read at phase boundaries only, the same boundary contract the
// context checks follow, so solver inner loops stay instrumentation-free
// and bitwise determinism is preserved by construction.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a phase recorded into h on End.
func StartSpan(h *Histogram) Span {
	if h == nil || !enabled.Load() {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time. Safe on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// EndObserve records the elapsed time and returns it, for call sites that
// also want to log the duration.
func (s Span) EndObserve() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	return d
}
