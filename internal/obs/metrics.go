// Package obs is the repository's zero-dependency observability core: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms) with
// Prometheus text exposition, structured logging on log/slog with
// per-request/per-job IDs carried in contexts, and span-style phase timers
// for the solver hot path.
//
// Design constraints, in order:
//
//   - No dependencies beyond the standard library.
//   - Instrument updates are safe for concurrent use and cheap enough to
//     leave on in production: one atomic op (plus one atomic enabled-flag
//     load) per Inc/Add/Observe, no allocation after the instrument is
//     created.
//   - Instrumentation never fires inside a value-iteration sweep or a
//     bisection step — only at their boundaries, the same contract PR 4
//     established for context checks — so bitwise determinism of solver
//     results is untouchable by construction.
//   - Registration is idempotent: asking a registry for an instrument that
//     already exists returns the existing one (and panics on a type or
//     label mismatch, which is always a programming error). This lets
//     package-level instruments live on the shared Default registry while
//     tests boot any number of servers.
//
// The global enabled switch (SetEnabled) exists for one consumer: the
// cmd/bench instrumentation-overhead cell, which times the solver with
// hooks on versus off to prove the default-on cost is under 1%.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates every mutating instrument update. Default on; cmd/bench
// flips it off for the overhead-comparison cell. Collector-style Store/Set
// calls are not gated so scrape-time snapshots keep working regardless.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns instrument updates on or off process-wide. Off means
// Inc/Add/Observe and span timers become no-ops (scrape-time Store/Set
// still apply). It exists for overhead measurement, not operation.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether instrument updates are currently recorded.
func Enabled() bool { return enabled.Load() }

// metric family types, as exposed on the # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// A Registry owns a set of named metric families and renders them in
// Prometheus text exposition format. The zero value is not usable; use
// NewRegistry or the process-wide Default.
type Registry struct {
	mu       sync.Mutex
	fams     map[string]*family
	collects []func()
}

// family is one named metric: a fixed type, help string, label schema and
// (for histograms) bucket layout, holding either a single unlabeled
// instrument or a vec of labeled children.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64

	single any // *Counter | *Gauge | *Histogram when len(labels) == 0
	vec    any // *CounterVec | *GaugeVec | *HistogramVec otherwise
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry package-level instruments (solver
// phases, job latencies) register on. Servers typically expose it merged
// with their own per-server registry via Handler.
func Default() *Registry { return defaultRegistry }

// lookup returns the family for name, creating it on first use, and
// panics if a same-named family was registered with a different shape —
// always a programming error, never an operational condition.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labelNames []string, mk func(*family)) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labelNames) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type, label set, or buckets", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labelNames, buckets: buckets}
	mk(f) // under r.mu, so the instrument exists before any lookup returns it
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the unlabeled counter named name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, nil, nil, func(f *family) { f.single = &Counter{} })
	return f.single.(*Counter)
}

// Gauge returns the unlabeled gauge named name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, nil, nil, func(f *family) { f.single = &Gauge{} })
	return f.single.(*Gauge)
}

// Histogram returns the unlabeled fixed-bucket histogram named name,
// creating it if needed. buckets must be sorted ascending; a +Inf bucket
// is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, typeHistogram, buckets, nil, func(f *family) { f.single = newHistogram(f.buckets) })
	return f.single.(*Histogram)
}

// CounterVec returns the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.lookup(name, help, typeCounter, nil, labelNames, func(f *family) {
		f.vec = &CounterVec{labels: labelNames, m: make(map[string]*Counter)}
	})
	return f.vec.(*CounterVec)
}

// GaugeVec returns the labeled gauge family named name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	f := r.lookup(name, help, typeGauge, nil, labelNames, func(f *family) {
		f.vec = &GaugeVec{labels: labelNames, m: make(map[string]*Gauge)}
	})
	return f.vec.(*GaugeVec)
}

// HistogramVec returns the labeled histogram family named name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	f := r.lookup(name, help, typeHistogram, buckets, labelNames, func(f *family) {
		f.vec = &HistogramVec{labels: labelNames, buckets: f.buckets, m: make(map[string]*Histogram)}
	})
	return f.vec.(*HistogramVec)
}

// OnCollect registers fn to run at the start of every exposition, before
// series are rendered. Collectors copy externally-tracked snapshots (e.g.
// Service.Stats()) into registry instruments with Store/Set, so scrapes
// see current values without double-counting in the hot path.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.collects = append(r.collects, fn)
	r.mu.Unlock()
}

// --- instruments ---------------------------------------------------------

// A Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use; a nil Counter is a valid no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Store overwrites the counter with a snapshot value. For scrape-time
// collectors mirroring counters tracked elsewhere; not gated by the
// enabled switch.
func (c *Counter) Store(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a float64 that can go up and down. A nil Gauge is a valid
// no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge. Not gated by the enabled switch (collectors
// use it at scrape time).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// A Histogram counts observations into fixed buckets (cumulative at
// exposition, per-bucket internally) and tracks their sum. A nil Histogram
// is a valid no-op.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; the last slot is the +Inf overflow
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("obs: histogram buckets must be sorted strictly ascending")
		}
	}
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// --- labeled vecs --------------------------------------------------------

const labelSep = "\x00"

// A CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	labels []string
	mu     sync.RWMutex
	m      map[string]*Counter
}

// With returns the child counter for the given label values (one per
// registered label name, in order), creating it on first use. The child
// is cached; callers on hot paths should hold onto it.
func (v *CounterVec) With(vals ...string) *Counter {
	key := v.key(vals)
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[key]; c == nil {
		c = &Counter{}
		v.m[key] = c
	}
	return c
}

func (v *CounterVec) key(vals []string) string {
	if len(vals) != len(v.labels) {
		panic(fmt.Sprintf("obs: vec expects %d label values, got %d", len(v.labels), len(vals)))
	}
	return strings.Join(vals, labelSep)
}

// A GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	labels []string
	mu     sync.RWMutex
	m      map[string]*Gauge
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if len(vals) != len(v.labels) {
		panic(fmt.Sprintf("obs: vec expects %d label values, got %d", len(v.labels), len(vals)))
	}
	key := strings.Join(vals, labelSep)
	v.mu.RLock()
	g := v.m[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.m[key]; g == nil {
		g = &Gauge{}
		v.m[key] = g
	}
	return g
}

// A HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	labels  []string
	buckets []float64
	mu      sync.RWMutex
	m       map[string]*Histogram
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if len(vals) != len(v.labels) {
		panic(fmt.Sprintf("obs: vec expects %d label values, got %d", len(v.labels), len(vals)))
	}
	key := strings.Join(vals, labelSep)
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[key]; h == nil {
		h = newHistogram(v.buckets)
		v.m[key] = h
	}
	return h
}

// --- exposition ----------------------------------------------------------

// WriteProm renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series within a family sorted
// by label values, HELP/TYPE lines first. Collectors registered with
// OnCollect run before rendering.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	collects := append([]func(){}, r.collects...)
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	for _, fn := range collects {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	io.WriteString(w, b.String())
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if len(f.labels) == 0 {
		if f.single == nil {
			return
		}
		switch m := f.single.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s %s\n", f.name, formatValue(float64(m.Value())))
		case *Gauge:
			fmt.Fprintf(b, "%s %s\n", f.name, formatValue(m.Value()))
		case *Histogram:
			writeHistogram(b, f.name, "", m)
		}
		return
	}
	switch v := f.vec.(type) {
	case *CounterVec:
		v.mu.RLock()
		keys := sortedKeys(v.m)
		for _, k := range keys {
			fmt.Fprintf(b, "%s{%s} %s\n", f.name, renderLabels(f.labels, k), formatValue(float64(v.m[k].Value())))
		}
		v.mu.RUnlock()
	case *GaugeVec:
		v.mu.RLock()
		keys := sortedKeys(v.m)
		for _, k := range keys {
			fmt.Fprintf(b, "%s{%s} %s\n", f.name, renderLabels(f.labels, k), formatValue(v.m[k].Value()))
		}
		v.mu.RUnlock()
	case *HistogramVec:
		v.mu.RLock()
		keys := sortedKeys(v.m)
		for _, k := range keys {
			writeHistogram(b, f.name, renderLabels(f.labels, k), v.m[k])
		}
		v.mu.RUnlock()
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	var cum uint64
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joinLabels(labels, `le="`+formatValue(up)+`"`), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joinLabels(labels, `le="+Inf"`), h.Count())
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, formatValue(h.Sum()))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}

func joinLabels(labels, le string) string {
	if labels == "" {
		return le
	}
	return labels + "," + le
}

func renderLabels(names []string, key string) string {
	vals := strings.Split(key, labelSep)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + `="` + escapeLabel(vals[i]) + `"`
	}
	return strings.Join(parts, ",")
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// Handler returns an http.Handler that serves the merged exposition of
// regs in order — typically a per-server registry (HTTP, service, jobs
// collectors) followed by Default() (solver-phase instruments).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range regs {
			reg.WriteProm(w)
		}
	})
}

// DefBuckets is the default latency bucket layout in seconds, spanning
// 100µs to ~100s — wide enough for both per-sweep HTTP handlers and
// multi-minute batch jobs.
func DefBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}
}
