package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestLoggerCtxIDs: request/job IDs riding the context land on every
// record, in both formats, and derived (With) loggers keep the behavior.
func TestLoggerCtxIDs(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithJobID(WithRequestID(context.Background(), "req-1"), "job-7")
	lg.With("route", "/v1/jobs").InfoContext(ctx, "accepted", "status", 202)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, b.String())
	}
	for k, want := range map[string]any{
		"msg": "accepted", "request_id": "req-1", "job_id": "job-7",
		"route": "/v1/jobs", "status": float64(202),
	} {
		if rec[k] != want {
			t.Errorf("record[%q] = %v, want %v", k, rec[k], want)
		}
	}

	b.Reset()
	lg.Info("no ids") // background ctx: no request_id/job_id keys
	if s := b.String(); strings.Contains(s, "request_id") || strings.Contains(s, "job_id") {
		t.Errorf("IDs injected without ctx: %s", s)
	}

	text, err := NewLogger(&b, slog.LevelInfo, "text")
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	text.InfoContext(WithRequestID(context.Background(), "r2"), "hello")
	if !strings.Contains(b.String(), "request_id=r2") {
		t.Errorf("text format missing request_id: %s", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
	if _, err := NewLogger(&strings.Builder{}, slog.LevelInfo, "xml"); err == nil {
		t.Error("NewLogger accepted junk format")
	}
}

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("NewID lengths: %q %q", a, b)
	}
	if a == b {
		t.Error("NewID returned duplicates")
	}
}
