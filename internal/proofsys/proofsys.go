// Package proofsys simulates the efficient proof systems of the paper's
// Appendix B: proof of work, proof of stake, and proof of space-and-time
// (PoST). These are *simulated* substrates — hash-based eligibility lotteries
// and an iterated-hash sequential function standing in for a real VDF — but
// they preserve the two properties the analysis depends on:
//
//  1. Unpredictability: the challenge for height h+1 is derived from the
//     block at height h, so a miner cannot predict eligibility on blocks it
//     does not yet know (Bitcoin-like chains, the paper's setting).
//  2. (p, k)-mining: a participant holding a fraction p of the resource and
//     k proving lanes wins a time step's block race on any given target
//     with probability p/(1−p+p·σ) when σ targets are tried concurrently.
//
// The paper's system model (Section 2.1) maps onto provers as follows:
// PoW = (p, 1)-mining, PoST with k VDFs = (p, k)-mining, and
// PoStake = (p, ∞)-mining.
package proofsys

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Challenge is the per-block randomness from which eligibility is drawn.
type Challenge [32]byte

// DeriveChallenge computes the challenge for the child of a block, binding
// it to the parent's identity and height — the unpredictable
// (Bitcoin-like) challenge schedule the paper analyses.
func DeriveChallenge(parentSeed Challenge, parentHeight int) Challenge {
	var buf [40]byte
	copy(buf[:32], parentSeed[:])
	binary.LittleEndian.PutUint64(buf[32:], uint64(parentHeight))
	return sha256.Sum256(buf[:])
}

// lottery maps (challenge, identity, nonce) to a uniform value in [0, 1).
func lottery(ch Challenge, identity uint64, nonce uint64) float64 {
	var buf [48]byte
	copy(buf[:32], ch[:])
	binary.LittleEndian.PutUint64(buf[32:], identity)
	binary.LittleEndian.PutUint64(buf[40:], nonce)
	h := sha256.Sum256(buf[:])
	v := binary.LittleEndian.Uint64(h[:8])
	return float64(v>>11) / float64(1<<53)
}

// Proof certifies a winning lottery draw.
type Proof struct {
	Challenge Challenge
	Identity  uint64
	Nonce     uint64
	Threshold float64
}

// Valid re-derives the draw and checks it beats the threshold.
func (pr Proof) Valid() bool {
	return lottery(pr.Challenge, pr.Identity, pr.Nonce) < pr.Threshold
}

// Prover is a simulated efficient-proof-system participant.
type Prover interface {
	// Name identifies the proof system.
	Name() string
	// MaxParallel returns k, the number of blocks the prover can attempt to
	// extend concurrently in one time step (k = 1 for PoW; the VDF count
	// for PoST; MaxInt for PoStake).
	MaxParallel() int
	// TryExtend attempts a proof on the challenge with the given per-step
	// success threshold; it returns the proof and whether it won.
	TryExtend(ch Challenge, threshold float64, step uint64) (Proof, bool)
}

func tryExtend(ch Challenge, identity uint64, threshold float64, step uint64) (Proof, bool) {
	if lottery(ch, identity, step) < threshold {
		return Proof{Challenge: ch, Identity: identity, Nonce: step, Threshold: threshold}, true
	}
	return Proof{}, false
}

// PoW is a proof-of-work prover: one lane (each unit of hash power is spent
// on a single tip).
type PoW struct {
	Identity uint64
}

// Name implements Prover.
func (*PoW) Name() string { return "pow" }

// MaxParallel implements Prover: PoW miners extend one block at a time.
func (*PoW) MaxParallel() int { return 1 }

// TryExtend implements Prover.
func (w *PoW) TryExtend(ch Challenge, threshold float64, step uint64) (Proof, bool) {
	return tryExtend(ch, w.Identity, threshold, step)
}

// PoStake is a proof-of-stake prover: proofs are free, so eligibility can be
// checked on arbitrarily many blocks per step.
type PoStake struct {
	Identity uint64
}

// Name implements Prover.
func (*PoStake) Name() string { return "postake" }

// MaxParallel implements Prover: effectively unbounded.
func (*PoStake) MaxParallel() int { return math.MaxInt32 }

// TryExtend implements Prover.
func (s *PoStake) TryExtend(ch Challenge, threshold float64, step uint64) (Proof, bool) {
	return tryExtend(ch, s.Identity, threshold, step)
}

// VDF is a simulated verifiable delay function: Eval iterates SHA-256 a
// fixed number of times (inherently sequential), Verify recomputes it. A
// real deployment would use Wesolowski or Pietrzak proofs for O(log T)
// verification; recomputation preserves the sequentiality semantics the
// model needs while keeping the substrate dependency-free.
type VDF struct {
	Iterations int
}

// Eval runs the sequential function on a seed.
func (v VDF) Eval(seed Challenge) Challenge {
	out := seed
	for i := 0; i < v.Iterations; i++ {
		out = sha256.Sum256(out[:])
	}
	return out
}

// Verify checks an (input, output) pair.
func (v VDF) Verify(seed, out Challenge) bool {
	return v.Eval(seed) == out
}

// PoST is a proof-of-space-and-time prover: each block extension requires a
// dedicated VDF lane, so the number of concurrent targets is bounded by the
// number of VDFs owned — the k of (p, k)-mining and the reason the paper's
// bounded-fork assumption is realistic for PoST.
type PoST struct {
	Identity uint64
	VDFs     int
	Delay    VDF
}

// Name implements Prover.
func (*PoST) Name() string { return "post" }

// MaxParallel implements Prover.
func (p *PoST) MaxParallel() int { return p.VDFs }

// TryExtend implements Prover. The eligibility draw is accompanied by a VDF
// evaluation, binding the block to sequential time.
func (p *PoST) TryExtend(ch Challenge, threshold float64, step uint64) (Proof, bool) {
	pr, ok := tryExtend(ch, p.Identity, threshold, step)
	if !ok {
		return Proof{}, false
	}
	// The VDF output seals the proof; its correctness is re-checkable via
	// Delay.Verify. We fold it into the nonce space deterministically.
	_ = p.Delay.Eval(ch)
	return pr, true
}

// NewProver constructs a prover for the named system.
// kind must be one of "pow", "postake", "post".
func NewProver(kind string, identity uint64, vdfs int) (Prover, error) {
	switch kind {
	case "pow":
		return &PoW{Identity: identity}, nil
	case "postake":
		return &PoStake{Identity: identity}, nil
	case "post":
		if vdfs < 1 {
			return nil, fmt.Errorf("proofsys: PoST prover needs >= 1 VDF, got %d", vdfs)
		}
		return &PoST{Identity: identity, VDFs: vdfs, Delay: VDF{Iterations: 64}}, nil
	default:
		return nil, fmt.Errorf("proofsys: unknown proof system %q", kind)
	}
}
