package proofsys

import (
	"math"
	"testing"
)

func TestDeriveChallengeDeterministicAndBinding(t *testing.T) {
	var seed Challenge
	seed[0] = 7
	a := DeriveChallenge(seed, 5)
	b := DeriveChallenge(seed, 5)
	if a != b {
		t.Error("challenge derivation not deterministic")
	}
	if c := DeriveChallenge(seed, 6); c == a {
		t.Error("challenge does not bind the parent height")
	}
	var seed2 Challenge
	seed2[0] = 8
	if c := DeriveChallenge(seed2, 5); c == a {
		t.Error("challenge does not bind the parent seed")
	}
}

func TestLotteryFrequency(t *testing.T) {
	// The lottery must win at roughly the threshold rate.
	var ch Challenge
	const threshold = 0.2
	const trials = 20000
	w := &PoStake{Identity: 42}
	wins := 0
	for step := uint64(0); step < trials; step++ {
		if _, ok := w.TryExtend(ch, threshold, step); ok {
			wins++
		}
	}
	rate := float64(wins) / trials
	if math.Abs(rate-threshold) > 0.01 {
		t.Errorf("win rate %v, want ~%v", rate, threshold)
	}
}

func TestProofValid(t *testing.T) {
	var ch Challenge
	w := &PoW{Identity: 9}
	for step := uint64(0); step < 1000; step++ {
		if pr, ok := w.TryExtend(ch, 0.3, step); ok {
			if !pr.Valid() {
				t.Fatalf("winning proof at step %d does not verify", step)
			}
			return
		}
	}
	t.Fatal("no winning proof in 1000 steps at threshold 0.3")
}

func TestProofInvalidWhenTampered(t *testing.T) {
	var ch Challenge
	w := &PoW{Identity: 9}
	for step := uint64(0); step < 1000; step++ {
		if pr, ok := w.TryExtend(ch, 0.3, step); ok {
			pr.Identity++ // steal the proof
			if pr.Valid() {
				t.Fatal("tampered proof still verifies")
			}
			return
		}
	}
	t.Fatal("no winning proof found to tamper with")
}

func TestMaxParallelPerSystem(t *testing.T) {
	pow, err := NewProver("pow", 1, 0)
	if err != nil {
		t.Fatalf("NewProver(pow): %v", err)
	}
	if pow.MaxParallel() != 1 {
		t.Errorf("PoW MaxParallel = %d, want 1", pow.MaxParallel())
	}
	post, err := NewProver("post", 1, 4)
	if err != nil {
		t.Fatalf("NewProver(post): %v", err)
	}
	if post.MaxParallel() != 4 {
		t.Errorf("PoST MaxParallel = %d, want 4", post.MaxParallel())
	}
	stake, err := NewProver("postake", 1, 0)
	if err != nil {
		t.Fatalf("NewProver(postake): %v", err)
	}
	if stake.MaxParallel() < 1<<30 {
		t.Errorf("PoStake MaxParallel = %d, want effectively unbounded", stake.MaxParallel())
	}
}

func TestNewProverErrors(t *testing.T) {
	if _, err := NewProver("pos", 1, 0); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := NewProver("post", 1, 0); err == nil {
		t.Error("PoST without VDFs accepted")
	}
}

func TestVDFSequentialAndVerifiable(t *testing.T) {
	v := VDF{Iterations: 128}
	var seed Challenge
	seed[3] = 1
	out := v.Eval(seed)
	if !v.Verify(seed, out) {
		t.Error("VDF output does not verify")
	}
	var bad Challenge
	if v.Verify(seed, bad) {
		t.Error("wrong VDF output verifies")
	}
	// Different iteration counts give different outputs (sequential work
	// actually accumulates).
	if (VDF{Iterations: 127}).Eval(seed) == out {
		t.Error("iteration count does not affect the output")
	}
}

func TestProverIdentitiesIndependent(t *testing.T) {
	// Two identities must win on (mostly) different steps, i.e. the lottery
	// is per-identity randomness, not global.
	var ch Challenge
	a := &PoStake{Identity: 1}
	b := &PoStake{Identity: 2}
	same, wins := 0, 0
	for step := uint64(0); step < 5000; step++ {
		_, wa := a.TryExtend(ch, 0.1, step)
		_, wb := b.TryExtend(ch, 0.1, step)
		if wa {
			wins++
			if wb {
				same++
			}
		}
	}
	if wins == 0 {
		t.Fatal("identity 1 never won")
	}
	// Independent lotteries should coincide on ~10% of identity-1's wins.
	if float64(same)/float64(wins) > 0.3 {
		t.Errorf("lotteries look correlated: %d/%d coincide", same, wins)
	}
}
